// Quickstart: train Auto-Test on a synthetic table corpus, then detect the
// errors in the paper's Figure-2 example table.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/auto_test.h"
#include "datagen/corpus_gen.h"
#include "table/table.h"

using autotest::core::AutoTest;
using autotest::core::AutoTestConfig;
using autotest::core::Variant;

namespace {

autotest::table::Column MakeColumn(const char* name,
                                   std::initializer_list<const char*> vals) {
  autotest::table::Column c;
  c.name = name;
  for (const char* v : vals) c.values.emplace_back(v);
  return c;
}

}  // namespace

int main() {
  // 1. A training corpus of table columns. Auto-Test learns semantic-domain
  //    constraints from it fully unsupervised: no labels, no per-table rules.
  std::printf("Generating training corpus...\n");
  auto corpus = autotest::datagen::GenerateCorpus(
      autotest::datagen::RelationalTablesProfile(1500, 11));

  // 2. Offline training: candidate generation + statistical tests +
  //    LP-based selection (this is the expensive, run-once part).
  std::printf("Training Auto-Test (this builds CTA zoos, mines patterns, "
              "runs statistical tests)...\n");
  AutoTestConfig config;
  config.train_options.synthetic_count = 600;
  AutoTest at = AutoTest::Train(corpus, config);
  std::printf("Learned %zu semantic-domain constraints (from %zu candidates)\n",
              at.model().constraints.size(),
              at.model().candidates_enumerated);

  // 3. Online prediction. The demo uses the full calibrated rule set;
  //    production deployments use the compact Fine-Select distillate
  //    (see MakePredictor(Variant::kFineSelect) and the bench binaries).
  auto predictor = at.MakePredictor(Variant::kAllConstraints);
  auto fine = at.MakePredictor(Variant::kFineSelect);
  std::printf("Using all %zu rules (Fine-Select would keep %zu)\n\n",
              predictor.num_rules(), fine.num_rules());

  // The paper's Figure-2 columns, each with one real error.
  std::vector<autotest::table::Column> columns = {
      MakeColumn("C1 (country)",
                 {"germany", "austria", "france", "liechstein", "italy",
                  "switzerland", "poland", "spain", "portugal", "greece",
                  "sweden", "norway", "denmark", "finland", "ireland",
                  "belgium", "netherlands", "hungary", "romania",
                  "bulgaria"}),
      MakeColumn("C2 (state code)",
                 {"fl", "az", "ca", "ok", "germany", "al", "ga", "tx", "ny",
                  "wa", "or", "il", "mi", "oh", "pa", "nc", "va", "tn",
                  "mo", "md"}),
      MakeColumn("C3 (month)",
                 {"january", "febuary", "march", "april", "may", "june",
                  "july", "august", "september", "october", "november",
                  "december", "january", "march", "may", "july"}),
      MakeColumn("C5 (fiscal year)",
                 {"fy17", "fy18", "fy19", "fy20", "fy definition", "fy21",
                  "fy22", "fy16", "fy15", "fy14", "fy13", "fy12", "fy11",
                  "fy23", "fy24", "fy25"}),
      MakeColumn("C7 (date)",
                 {"12/3/2020", "11/5/2020", "2/5/2021", "10/23/2020",
                  "10/7/2020", "new facility", "3/26/2021", "4/2/2021",
                  "5/13/2020", "6/21/2020", "7/4/2020", "8/15/2020",
                  "9/9/2020", "1/1/2021", "2/14/2021", "3/17/2021"}),
  };

  for (const auto& column : columns) {
    std::printf("Column %s:\n", column.name.c_str());
    auto detections = predictor.Predict(column);
    if (detections.empty()) {
      std::printf("  (no errors detected)\n");
    }
    for (const auto& d : detections) {
      std::printf("  row %2zu: \"%s\" flagged with confidence %.2f\n",
                  d.row, d.value.c_str(), d.confidence);
      std::printf("          rule: %s\n", d.explanation.c_str());
    }
  }
  return 0;
}
