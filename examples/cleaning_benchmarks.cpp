// Applying learned SDCs to classic data-cleaning benchmarks (the paper's
// Section 6.7): for each of the nine datasets (adults, beers, ..., tax),
// report which columns gain new automatically-installed constraints and
// which cell errors they detect — including errors missing from the
// datasets' own ground truth (paper Table 11).
//
// Run: ./build/examples/cleaning_benchmarks

#include <cstdio>

#include "core/auto_test.h"
#include "datagen/cleaning_bench.h"
#include "datagen/corpus_gen.h"
#include "table/column.h"

using autotest::core::AutoTest;
using autotest::core::AutoTestConfig;
using autotest::core::Variant;

int main() {
  std::printf("Training Auto-Test on Relational-Tables...\n");
  auto corpus = autotest::datagen::GenerateCorpus(
      autotest::datagen::RelationalTablesProfile(1500, 11));
  AutoTestConfig config;
  config.train_options.synthetic_count = 600;
  AutoTest at = AutoTest::Train(corpus, config);
  auto predictor = at.MakePredictor(Variant::kFineSelect);
  std::printf("Fine-Select kept %zu rules\n\n", predictor.num_rules());

  auto datasets = autotest::datagen::BuildCleaningDatasets();
  for (const auto& ds : datasets) {
    std::printf("=== dataset %-8s (%zu columns x %zu rows, %zu labeled "
                "errors) ===\n",
                ds.name.c_str(), ds.data.num_columns(), ds.data.num_rows(),
                ds.errors.size());
    for (size_t c = 0; c < ds.data.columns.size(); ++c) {
      const auto& column = ds.data.columns[c];
      if (autotest::table::IsMostlyNumeric(column)) continue;
      auto detections = predictor.Predict(column);
      if (detections.empty()) continue;
      std::printf("  column \"%s\": %zu detection(s)\n",
                  column.name.c_str(), detections.size());
      size_t shown = 0;
      for (const auto& d : detections) {
        bool labeled = false;
        for (const auto& e : ds.errors) {
          if (e.column_index == c && e.row == d.row) {
            labeled = e.in_ground_truth;
          }
        }
        if (shown++ < 4) {
          std::printf("    row %3zu: \"%s\"  conf=%.2f%s\n", d.row,
                      d.value.c_str(), d.confidence,
                      labeled ? "" : "  <- not in existing ground truth");
        }
      }
      if (detections.size() > 4) {
        std::printf("    ... and %zu more\n", detections.size() - 4);
      }
    }
    std::printf("\n");
  }
  return 0;
}
