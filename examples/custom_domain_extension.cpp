// Extensibility demo (the paper's feature 3): plug a *custom* column-type
// detection method into the SDC framework. We register a validator for
// German-style license plates ("D-AB 1234") — a domain none of the
// built-in families knows precisely — and let Auto-Test learn a calibrated
// constraint for it from the corpus, fully unsupervised.
//
// Run: ./build/examples/custom_domain_extension

#include <cctype>
#include <cstdio>
#include <string_view>

#include "core/predictor.h"
#include "core/trainer.h"
#include "datagen/corpus_gen.h"
#include "typedet/eval_functions.h"
#include "util/rng.h"

namespace {

// Custom semantic type: license plates "X[XX]-A[B] 1[234]".
bool ValidatePlate(std::string_view v) {
  size_t dash = v.find('-');
  if (dash == std::string_view::npos || dash == 0 || dash > 3) return false;
  for (size_t i = 0; i < dash; ++i) {
    if (!std::isupper(static_cast<unsigned char>(v[i]))) return false;
  }
  size_t space = v.find(' ', dash);
  if (space == std::string_view::npos) return false;
  size_t letters = space - dash - 1;
  if (letters < 1 || letters > 2) return false;
  for (size_t i = dash + 1; i < space; ++i) {
    if (!std::isupper(static_cast<unsigned char>(v[i]))) return false;
  }
  if (space + 1 >= v.size() || v.size() - space - 1 > 4) return false;
  for (size_t i = space + 1; i < v.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(v[i]))) return false;
  }
  return true;
}

std::string RandomPlate(autotest::util::Rng& rng) {
  std::string out;
  int city = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < city; ++i) {
    out.push_back(static_cast<char>('A' + rng.UniformInt(0, 25)));
  }
  out.push_back('-');
  int mid = static_cast<int>(rng.UniformInt(1, 2));
  for (int i = 0; i < mid; ++i) {
    out.push_back(static_cast<char>('A' + rng.UniformInt(0, 25)));
  }
  out.push_back(' ');
  int digits = static_cast<int>(rng.UniformInt(1, 4));
  for (int i = 0; i < digits; ++i) {
    out.push_back(static_cast<char>('0' + rng.UniformInt(0, 9)));
  }
  return out;
}

}  // namespace

int main() {
  using namespace autotest;

  // A corpus that contains license-plate columns among everything else.
  auto corpus =
      datagen::GenerateCorpus(datagen::RelationalTablesProfile(900, 33));
  util::Rng rng(7);
  for (int c = 0; c < 30; ++c) {
    table::Column col;
    col.name = "plate_" + std::to_string(c);
    size_t n = static_cast<size_t>(rng.UniformInt(30, 120));
    for (size_t i = 0; i < n; ++i) col.values.push_back(RandomPlate(rng));
    corpus.push_back(std::move(col));
  }

  // Build the standard evaluation functions (CTA/embedding switched off to
  // keep the demo fast), then register the custom validator — one line.
  typedet::EvalFunctionSetOptions eval_opt;
  eval_opt.include_cta = false;
  eval_opt.include_embedding = false;
  auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);
  typedet::NamedValidator plate_validator{"validate_license_plate", "custom",
                                          &ValidatePlate};
  evals.Add(typedet::MakeFunctionEval(plate_validator));
  std::printf("Evaluation functions: %zu (incl. custom validator)\n",
              evals.size());

  // Train: the statistical tests calibrate the custom rule exactly like
  // the built-in ones.
  core::TrainOptions topt;
  topt.synthetic_count = 400;
  auto model = core::TrainAutoTest(corpus, evals, topt);
  std::printf("Learned %zu constraints\n", model.constraints.size());
  size_t custom_rules = 0;
  for (const auto& sdc : model.constraints) {
    if (sdc.eval->id() == "fun:validate_license_plate") {
      ++custom_rules;
      std::printf("  learned custom SDC: %s\n", sdc.Describe().c_str());
    }
  }
  std::printf("Custom-validator SDCs learned: %zu\n\n", custom_rules);

  // Online: the custom rule detects plate-format errors a generic pattern
  // misses (lowercase plate still matches the letter/digit run pattern).
  table::Column plates;
  plates.name = "plates";
  for (int i = 0; i < 40; ++i) plates.values.push_back(RandomPlate(rng));
  plates.values.push_back("not a plate");
  plates.values.push_back("d-xy 123");  // lowercase: invalid

  core::SdcPredictor predictor(model.constraints);
  for (const auto& d : predictor.Predict(plates)) {
    std::printf("row %2zu: \"%s\" conf=%.2f\n        %s\n", d.row,
                d.value.c_str(), d.confidence, d.explanation.c_str());
  }
  return 0;
}
