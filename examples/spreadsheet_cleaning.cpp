// End-user spreadsheet cleaning (the paper's Figure-1 scenario): load a
// dirty CSV, run Auto-Test, and print Excel-style "suggestion cards" the
// user could review and accept. Writes the cleaned-candidate CSV next to
// the input.
//
// Usage: ./build/examples/spreadsheet_cleaning [input.csv]
// Without an argument, a demo spreadsheet is generated in /tmp.

#include <cstdio>
#include <string>

#include "core/auto_test.h"
#include "datagen/corpus_gen.h"
#include "table/csv.h"
#include "table/table.h"

using autotest::core::AutoTest;
using autotest::core::AutoTestConfig;
using autotest::core::Variant;

namespace {

std::string WriteDemoSpreadsheet() {
  const char* path = "/tmp/autotest_demo_spreadsheet.csv";
  autotest::table::Table t;
  t.name = "orders";
  autotest::table::Column order;
  order.name = "order date";
  autotest::table::Column state;
  state.name = "ship state";
  autotest::table::Column email;
  email.name = "contact email";
  const char* dates[] = {"1/4/2023",  "1/9/2023",  "2/13/2023", "2/28/2023",
                         "3/2/2023",  "pending",   "3/19/2023", "4/1/2023",
                         "4/22/2023", "5/5/2023",  "5/30/2023", "6/6/2023",
                         "6/18/2023", "7/2/2023",  "7/7/2023",  "8/14/2023"};
  const char* states[] = {"wa", "ca", "or", "tx", "ny", "fl", "il", "zz",
                          "ga", "nc", "va", "pa", "oh", "mi", "az", "co"};
  const char* emails[] = {
      "ann@contoso.com",    "bo@fabrikam.net",   "cy@initech.org",
      "dee@acme.io",        "ed@globex.com",     "fi@contoso.com",
      "gus@fabrikam.net",   "hao@initech.org",   "ivy@acme.io",
      "jon@globex.com",     "kim at contoso",    "lou@fabrikam.net",
      "mia@initech.org",    "ned@acme.io",       "oda@globex.com",
      "pat@contoso.com"};
  for (int i = 0; i < 16; ++i) {
    order.values.push_back(dates[i]);
    state.values.push_back(states[i]);
    email.values.push_back(emails[i]);
  }
  t.columns = {order, state, email};
  autotest::table::WriteCsvFile(t, path);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : WriteDemoSpreadsheet();
  auto maybe_table = autotest::table::ReadCsvFile(path);
  if (!maybe_table) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  autotest::table::Table table = std::move(*maybe_table);
  std::printf("Loaded %s: %zu columns x %zu rows\n", path.c_str(),
              table.num_columns(), table.num_rows());

  std::printf("Training Auto-Test on a spreadsheet-style corpus...\n");
  auto corpus = autotest::datagen::GenerateCorpus(
      autotest::datagen::RelationalTablesProfile(1200, 22));
  AutoTestConfig config;
  config.train_options.synthetic_count = 500;
  AutoTest at = AutoTest::Train(corpus, config);
  auto predictor = at.MakePredictor(Variant::kFineSelect);
  std::printf("Using %zu learned constraints\n\n", predictor.num_rules());

  // Suggestion cards: one per detection, like the Excel side-pane.
  size_t cards = 0;
  for (size_t c = 0; c < table.columns.size(); ++c) {
    // Numeric columns are trivial to validate; skip like the paper does.
    if (autotest::table::IsMostlyNumeric(table.columns[c])) continue;
    for (const auto& d : predictor.Predict(table.columns[c])) {
      ++cards;
      std::printf("+----------------------- suggestion card #%zu ----+\n",
                  cards);
      std::printf("| column : %s\n", table.columns[c].name.c_str());
      std::printf("| cell   : row %zu = \"%s\"\n", d.row + 2,
                  d.value.c_str());
      std::printf("| issue  : value looks inconsistent with the column's "
                  "semantic domain\n");
      std::printf("| why    : %s\n", d.explanation.c_str());
      std::printf("| action : [review] [remove value] [keep as-is]\n");
      std::printf("+-------------------------------------------------+\n");
    }
  }
  if (cards == 0) {
    std::printf("No data-quality issues found.\n");
  } else {
    std::printf("\n%zu suggestion card(s) produced.\n", cards);
  }
  return 0;
}
