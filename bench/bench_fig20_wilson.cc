// Paper Figure 20: Wilson score interval vs raw-ratio confidence estimates.
// Retrains the statistical assessment with use_wilson toggled.

#include <cstdio>

#include "bench_common.h"
#include "core/trainer.h"
#include "typedet/eval_functions.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);

  auto corpus = datagen::GenerateCorpus(
      datagen::RelationalTablesProfile(scale.corpus_columns));
  typedet::EvalFunctionSetOptions eval_opt;
  eval_opt.embedding_centroids_per_model = scale.centroids_per_model;
  auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);
  auto st = datagen::GenerateBenchmark(
      datagen::StBenchProfile(scale.bench_columns));
  auto rt = datagen::GenerateBenchmark(
      datagen::RtBenchProfile(scale.bench_columns));

  benchx::PrintHeader("Figure 20: Wilson interval vs raw ratio");
  for (bool wilson : {true, false}) {
    core::TrainOptions topt;
    topt.synthetic_count = scale.synthetic_count;
    topt.use_wilson = wilson;
    auto model = core::TrainAutoTest(corpus, evals, topt);
    auto sel = core::FineSelect(model);
    std::vector<core::Sdc> rules;
    for (size_t i : sel.selected) rules.push_back(model.constraints[i]);
    core::SdcPredictor pred(std::move(rules));
    baselines::SdcDetector det(wilson ? "wilson" : "raw-ratio", &pred);
    auto st_run = RunDetector(det, st, 1);
    auto rt_run = RunDetector(det, rt, 1);
    std::printf("%-10s: ST (%.2f, %.2f)  RT (%.2f, %.2f)  rules=%zu\n",
                det.name().c_str(), st_run.f1_at_p08, st_run.pr_auc,
                rt_run.f1_at_p08, rt_run.pr_auc, pred.num_rules());
    benchx::PrintCurve(det.name() + " st", st_run.curve);
    benchx::PrintCurve(det.name() + " rt", rt_run.curve);
  }
  std::printf(
      "\nExpected shape (paper Fig 20): Wilson's conservative lower bound "
      "improves the\nhigh-precision end of the PR curve over the raw "
      "ratio.\n");
  return 0;
}
