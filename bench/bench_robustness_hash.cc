// Paper Section 6.5 robustness study: inject 1000 adversarial random-hash
// SDC candidates; all must be rejected by the statistical tests, and none
// may produce false positives on the benchmarks.

#include <cstdio>

#include "bench_common.h"
#include "core/trainer.h"
#include "typedet/eval_functions.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);

  auto corpus = datagen::GenerateCorpus(
      datagen::RelationalTablesProfile(scale.corpus_columns));

  typedet::EvalFunctionSetOptions eval_opt;
  eval_opt.embedding_centroids_per_model = scale.centroids_per_model;
  eval_opt.num_random_hash = 1000;  // the adversarial injection
  auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);

  core::TrainOptions topt;
  topt.synthetic_count = scale.synthetic_count;
  topt.min_confidence = 0.9;  // the paper's Appendix-B.1 c_thres
  auto model = core::TrainAutoTest(corpus, evals, topt);

  size_t hash_rules = 0;
  size_t real_rules = 0;
  for (const auto& sdc : model.constraints) {
    if (sdc.eval->family() == typedet::Family::kHash) {
      ++hash_rules;
    } else {
      ++real_rules;
    }
  }
  benchx::PrintHeader("Section 6.5: robustness to adversarial hash SDCs");
  std::printf("injected hash functions          : 1000\n");
  std::printf("hash candidates enumerated       : ~%zu\n",
              model.candidates_enumerated);
  std::printf("hash SDCs surviving the tests    : %zu\n", hash_rules);
  std::printf("legitimate SDCs surviving        : %zu\n", real_rules);

  // And no hash-driven false positives at prediction time.
  auto st = datagen::GenerateBenchmark(
      datagen::StBenchProfile(scale.bench_columns));
  std::vector<core::Sdc> hash_only;
  for (const auto& sdc : model.constraints) {
    if (sdc.eval->family() == typedet::Family::kHash) hash_only.push_back(sdc);
  }
  core::SdcPredictor pred(std::move(hash_only));
  size_t detections = 0;
  for (const auto& lc : st.columns) {
    detections += pred.Predict(lc.column).size();
  }
  std::printf("false positives from hash SDCs   : %zu\n", detections);
  std::printf(
      "\nExpected (paper Sec 6.5): adversarial candidates rejected and no "
      "false positives.\nIn our reproduction >99.99%% of hash candidates "
      "are rejected; a handful can\nsurvive on tiny-vocabulary columns at "
      "large corpus sizes (see EXPERIMENTS.md).\n");
  // Success = overwhelming rejection and (near-)zero false positives.
  double reject_rate =
      1.0 - static_cast<double>(hash_rules) /
                static_cast<double>(std::max<size_t>(
                    1, model.candidates_enumerated));
  return reject_rate > 0.999 && detections <= 2 ? 0 : 1;
}
