// Paper Figures 17/18: PR curves of Fine-Select and Coarse-Select as the
// rule-count budget B_size varies.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);
  benchx::Env env = benchx::BuildEnv("relational", scale);

  for (bool fine : {true, false}) {
    benchx::PrintHeader(fine ? "Figure 17: Fine-Select, varying B_size"
                             : "Figure 18: Coarse-Select, varying B_size");
    // Scaled: our LP dedupes interchangeable grid candidates before
    // selection, so the effective rule pool is ~100; sweep below that.
    for (size_t budget : {10, 25, 50, 100, 500}) {
      core::SelectionOptions opt = env.at->config().selection_options;
      opt.size_budget = budget;
      auto pred = env.at->MakePredictor(
          fine ? core::Variant::kFineSelect : core::Variant::kCoarseSelect,
          &opt);
      baselines::SdcDetector det("sdc", &pred);
      auto rt = RunDetector(det, env.rt, 1);
      auto st = RunDetector(det, env.st, 1);
      char label[64];
      std::snprintf(label, sizeof(label), "B_size=%zu st (%zu rules)",
                    budget, pred.num_rules());
      benchx::PrintCurve(label, st.curve);
      std::snprintf(label, sizeof(label), "B_size=%zu rt", budget);
      benchx::PrintCurve(label, rt.curve);
    }
  }
  {
    auto pred = env.at->MakePredictor(core::Variant::kAllConstraints);
    baselines::SdcDetector det("all", &pred);
    benchx::PrintCurve("all-constraints st", RunDetector(det, env.st, 1).curve);
    benchx::PrintCurve("all-constraints rt", RunDetector(det, env.rt, 1).curve);
  }
  std::printf(
      "\nExpected shape (paper Figs 17/18): quality grows with B_size; "
      "Fine-Select matches or\nbeats All-Constraints at 500-1000 rules.\n");
  return 0;
}
