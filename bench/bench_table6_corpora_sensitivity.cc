// Paper Table 6 / Table 12 + Figures 24/25: sensitivity to the training
// corpus — Fine-Select trained on Relational-Tables, Spreadsheet-Tables and
// Tablib, evaluated on both benchmarks at every error level.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);

  benchx::PrintHeader(
      "Table 6: Fine-Select quality per training corpus; columns = ST real, "
      "ST+5%, ST+10%, ST+20%, RT real, RT+5%, RT+10%, RT+20%");

  for (const char* corpus_name : {"relational", "spreadsheet", "tablib"}) {
    benchx::Env env = benchx::BuildEnv(corpus_name, scale);
    auto pred = env.at->MakePredictor(core::Variant::kFineSelect);
    baselines::SdcDetector det("fine-select", &pred);
    std::vector<eval::BenchmarkRun> runs;
    for (const auto& b : benchx::ErrorLevels(env.st)) {
      runs.push_back(RunDetector(det, b, 1));
    }
    for (const auto& b : benchx::ErrorLevels(env.rt)) {
      runs.push_back(RunDetector(det, b, 1));
    }
    benchx::PrintQualityRow(corpus_name, runs);

    // Figures 24/25 use the spreadsheet-trained PR curves.
    if (std::string(corpus_name) == "spreadsheet") {
      benchx::PrintHeader(
          "Figures 24/25: PR curves when trained on Spreadsheet-Tables");
      benchx::PrintCurve("fine-select st-real", runs[0].curve);
      benchx::PrintCurve("fine-select rt-real", runs[4].curve);
    }
  }
  std::printf(
      "\nExpected shape (paper Table 6): relational-tables and tablib "
      "training\nbeat the noisier spreadsheet-tables corpus.\n");
  return 0;
}
