// Paper Figure 12: online prediction latency — average time to process one
// column, for every method.

#include <chrono>
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 400);
  benchx::Env env = benchx::BuildEnv("relational", scale);

  auto all_pred = env.at->MakePredictor(core::Variant::kAllConstraints);
  auto fine_pred = env.at->MakePredictor(core::Variant::kFineSelect);
  auto coarse_pred = env.at->MakePredictor(core::Variant::kCoarseSelect);
  std::vector<std::unique_ptr<eval::ErrorDetector>> detectors;
  detectors.push_back(std::make_unique<baselines::SdcDetector>(
      "fine-select", &fine_pred));
  detectors.push_back(std::make_unique<baselines::SdcDetector>(
      "coarse-select", &coarse_pred));
  detectors.push_back(std::make_unique<baselines::SdcDetector>(
      "all-constraints", &all_pred));
  // AT_BENCH_SDC_ONLY skips the baseline roster: the CI regression gate
  // pins only the SDC variants and wants the fast path.
  if (!benchx::SdcOnly()) {
    for (auto& d : benchx::BuildBaselines(env)) {
      detectors.push_back(std::move(d));
    }
  }

  benchx::BenchMetrics bench_metrics("bench_fig12_latency");
  benchx::PrintHeader("Figure 12: average latency per column (seconds)");
  // In SDC-only (CI) mode the roster is tiny, so take a min-of-5 per
  // detector: single passes are too noisy for a 25% regression gate.
  const int reps = benchx::SdcOnly() ? 5 : 1;
  for (const auto& det : detectors) {
    eval::BenchmarkRun run = RunDetector(*det, env.rt, 1);
    double sec = run.seconds_per_column;
    for (int rep = 1; rep < reps; ++rep) {
      sec = std::min(sec,
                     RunDetector(*det, env.rt, 1).seconds_per_column);
    }
    // The GPT-4 rows in the paper are API-bound (~20 s/column); our LLM-sim
    // computes locally, so report its simulated service latency separately.
    bool is_llm = det->name().rfind("gpt", 0) == 0;
    std::printf("%-24s %12.6f s/col%s\n", det->name().c_str(), sec,
                is_llm ? "   (+~20 s/col API latency in the paper's setup)"
                       : "");
    std::string slug = det->name();
    for (char& c : slug) {
      if (c == '-' || c == '.') c = '_';
    }
    bench_metrics.Gauge("bench.fig12." + slug + "_s_per_col", sec);
  }
  bench_metrics.MaybeWriteEnv();
  std::printf(
      "\nExpected shape (paper Fig 12): fine-select is interactive and a\n"
      "multiple faster than all-constraints; GPT is orders of magnitude "
      "slower.\n");
  return 0;
}
