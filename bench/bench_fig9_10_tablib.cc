// Paper Figures 9/10: generalizability — PR curves on RT-Bench and
// ST-Bench when training on the Tablib corpus instead of
// Relational-Tables.

#include <cstdio>

#include <vector>

#include "bench_common.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);
  benchx::Env env = benchx::BuildEnv("tablib", scale);

  auto fine = env.at->MakePredictor(core::Variant::kFineSelect);
  auto coarse = env.at->MakePredictor(core::Variant::kCoarseSelect);
  auto all = env.at->MakePredictor(core::Variant::kAllConstraints);
  baselines::SdcDetector fine_det("fine-select", &fine);
  baselines::SdcDetector coarse_det("coarse-select", &coarse);
  baselines::SdcDetector all_det("all-constraints", &all);
  baselines::RegexDetector regex;
  baselines::KataraSim katara;

  benchx::PrintHeader("Figure 9: PR curves on RT-Bench, trained on Tablib");
  const std::vector<const eval::ErrorDetector*> detectors = {
      &fine_det, &coarse_det, &all_det, &regex, &katara};
  for (const eval::ErrorDetector* det : detectors) {
    auto run = RunDetector(*det, env.rt, 1);
    std::printf("%-16s (F1@P=0.8=%.2f, AUC=%.2f)\n", det->name().c_str(),
                run.f1_at_p08, run.pr_auc);
    benchx::PrintCurve(det->name(), run.curve);
  }
  benchx::PrintHeader("Figure 10: PR curves on ST-Bench, trained on Tablib");
  for (const eval::ErrorDetector* det : detectors) {
    auto run = RunDetector(*det, env.st, 1);
    std::printf("%-16s (F1@P=0.8=%.2f, AUC=%.2f)\n", det->name().c_str(),
                run.f1_at_p08, run.pr_auc);
    benchx::PrintCurve(det->name(), run.curve);
  }
  std::printf(
      "\nExpected shape (paper Figs 9/10): Tablib-trained Auto-Test "
      "dominates the baselines\non both benchmarks, like the "
      "Relational-Tables-trained model.\n");
  return 0;
}
