// Paper Table 8: ablation of the statistical machinery — Wilson score
// interval and Cohen's h — evaluated on All-Constraints.

#include <cstdio>

#include "bench_common.h"
#include "core/trainer.h"
#include "typedet/eval_functions.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.corpus_columns = std::min<size_t>(scale.corpus_columns, 1500);
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);

  auto corpus = datagen::GenerateCorpus(
      datagen::RelationalTablesProfile(scale.corpus_columns));
  typedet::EvalFunctionSetOptions eval_opt;
  eval_opt.embedding_centroids_per_model = scale.centroids_per_model;
  auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);
  auto st = datagen::GenerateBenchmark(
      datagen::StBenchProfile(scale.bench_columns));
  auto rt = datagen::GenerateBenchmark(
      datagen::RtBenchProfile(scale.bench_columns));

  benchx::PrintHeader("Table 8: statistical-test ablation (All-Constraints)");
  std::printf("%-26s | %12s | %12s | %12s | %12s\n", "variant",
              "ST F1@P=0.8", "ST PR-AUC", "RT F1@P=0.8", "RT PR-AUC");

  struct Setting {
    const char* name;
    bool wilson, cohen;
  };
  const Setting settings[] = {
      {"all-constraints", true, true},
      {"no wilson score interval", false, true},
      {"no cohen's h", true, false},
  };
  for (const auto& s : settings) {
    core::TrainOptions topt;
    topt.synthetic_count = scale.synthetic_count;
    topt.use_wilson = s.wilson;
    topt.use_cohens_h = s.cohen;
    auto model = core::TrainAutoTest(corpus, evals, topt);
    core::SdcPredictor pred(model.constraints);
    baselines::SdcDetector det(s.name, &pred);
    auto st_run = RunDetector(det, st, 1);
    auto rt_run = RunDetector(det, rt, 1);
    std::printf("%-26s | %12.2f | %12.2f | %12.2f | %12.2f  (rules=%zu)\n",
                s.name, st_run.f1_at_p08, st_run.pr_auc, rt_run.f1_at_p08,
                rt_run.pr_auc, pred.num_rules());
  }
  std::printf(
      "\nExpected shape (paper Table 8): dropping Wilson hurts the "
      "high-precision metric most;\ndropping Cohen's h hurts overall "
      "PR-AUC.\n");
  return 0;
}
