// Paper Figure 14: offline training time vs training corpus size, broken
// down into candidate-gen (enumeration + statistical tests), Coarse-Select
// and Fine-Select.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/selection.h"
#include "core/trainer.h"
#include "typedet/eval_functions.h"
#include "util/parallel/thread_pool.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  benchx::BenchMetrics bench_metrics("bench_fig14_training_time");
  double total_train_seconds = 0.0;
  double total_candidate_gen_seconds = 0.0;

  benchx::PrintHeader(
      "Figure 14: offline training time (seconds) vs corpus size");
  std::printf("%8s | %14s | %14s | %12s | %12s | %10s\n", "columns",
              "candidate-gen", "recall-est", "coarse-sel", "fine-sel",
              "#rules");

  for (size_t cols : {scale.corpus_columns / 8, scale.corpus_columns / 4,
                      scale.corpus_columns / 2, scale.corpus_columns}) {
    auto corpus =
        datagen::GenerateCorpus(datagen::RelationalTablesProfile(cols));
    typedet::EvalFunctionSetOptions eval_opt;
    eval_opt.embedding_centroids_per_model = scale.centroids_per_model;
    auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);

    core::TrainOptions topt;
    topt.synthetic_count = scale.synthetic_count;
    auto model = core::TrainAutoTest(corpus, evals, topt);

    auto t0 = std::chrono::steady_clock::now();
    auto coarse = core::CoarseSelect(model);
    auto t1 = std::chrono::steady_clock::now();
    auto fine = core::FineSelect(model);
    auto t2 = std::chrono::steady_clock::now();

    double coarse_seconds = std::chrono::duration<double>(t1 - t0).count();
    double fine_seconds = std::chrono::duration<double>(t2 - t1).count();
    std::printf("%8zu | %14.2f | %14.2f | %12.3f | %12.3f | %10zu\n", cols,
                model.timings.candidate_gen_seconds,
                model.timings.synthetic_seconds, coarse_seconds,
                fine_seconds, model.constraints.size());
    std::string prefix = "bench.fig14.cols" + std::to_string(cols) + ".";
    bench_metrics.Gauge(prefix + "candidate_gen_seconds",
                        model.timings.candidate_gen_seconds);
    bench_metrics.Gauge(prefix + "recall_est_seconds",
                        model.timings.synthetic_seconds);
    bench_metrics.Gauge(prefix + "coarse_select_seconds", coarse_seconds);
    bench_metrics.Gauge(prefix + "fine_select_seconds", fine_seconds);
    total_train_seconds += model.timings.candidate_gen_seconds +
                           model.timings.synthetic_seconds + coarse_seconds +
                           fine_seconds;
    total_candidate_gen_seconds += model.timings.candidate_gen_seconds;
    (void)coarse;
    (void)fine;
  }
  // The headline numbers the CI regression gate pins: total measured train
  // time across all corpus sizes, plus the candidate-generation share that
  // the columnar batch-eval path (DESIGN.md §4k) is responsible for
  // (scale-stable names, unlike the per-size gauges above).
  bench_metrics.Gauge("bench.fig14.train_seconds", total_train_seconds);
  bench_metrics.Gauge("bench.fig14.candidate_gen_seconds",
                      total_candidate_gen_seconds);
  bench_metrics.MaybeWriteEnv();
  std::printf(
      "\nExpected shape (paper Fig 14): candidate-gen dominates and grows "
      "~linearly with\ncorpus size; selection cost is negligible in "
      "comparison.\n\nNote: the CTA zoos and embedding models are "
      "process-wide singletons with\npersistent value caches, so a row only "
      "pays full scoring cost for values not\nseen in earlier (smaller) "
      "rows. The headline gauges sum every row and are\nmeasured from a "
      "cold cache at process start, which is what the CI gate pins.\n");
  std::printf("\n%s\n", util::parallel::FormatStats().c_str());
  return 0;
}
