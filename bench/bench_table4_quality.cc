// Paper Table 4 + Figures 7/8: quality comparison of all methods on
// ST-Bench and RT-Bench (real errors and +5%/+10%/+20% synthetic errors),
// trained on Relational-Tables. Prints (F1@P=0.8, PR-AUC) per cell plus the
// PR curves of the leading methods.

#include <cstdio>
#include <memory>

#include "bench_common.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  benchx::Env env = benchx::BuildEnv("relational", scale);

  // Auto-Test variants.
  auto all_pred = env.at->MakePredictor(core::Variant::kAllConstraints);
  auto fine_pred = env.at->MakePredictor(core::Variant::kFineSelect);
  auto coarse_pred = env.at->MakePredictor(core::Variant::kCoarseSelect);
  std::vector<std::unique_ptr<eval::ErrorDetector>> ours;
  ours.push_back(std::make_unique<baselines::SdcDetector>("all-constraints",
                                                          &all_pred));
  ours.push_back(
      std::make_unique<baselines::SdcDetector>("fine-select", &fine_pred));
  ours.push_back(std::make_unique<baselines::SdcDetector>("coarse-select",
                                                          &coarse_pred));
  auto baseline_detectors = benchx::BuildBaselines(env);

  auto st_levels = benchx::ErrorLevels(env.st);
  auto rt_levels = benchx::ErrorLevels(env.rt);

  benchx::PrintHeader(
      "Table 4: quality (F1@P=0.8, PR-AUC); columns = ST real, ST+5%, "
      "ST+10%, ST+20%, RT real, RT+5%, RT+10%, RT+20%");

  eval::BenchmarkRun fine_st_run;
  eval::BenchmarkRun fine_rt_run;
  std::vector<std::pair<std::string, eval::PrCurve>> curves_rt;
  std::vector<std::pair<std::string, eval::PrCurve>> curves_st;

  auto run_all = [&](const eval::ErrorDetector& det) {
    std::vector<eval::BenchmarkRun> runs;
    for (const auto& b : st_levels) runs.push_back(RunDetector(det, b));
    for (const auto& b : rt_levels) runs.push_back(RunDetector(det, b));
    benchx::PrintQualityRow(det.name(), runs);
    // Keep real-error curves of interesting methods for Figures 7/8.
    if (det.name() == "fine-select" || det.name() == "sentence-bert" ||
        det.name() == "regex" || det.name() == "dataprep" ||
        det.name() == "rkde" || det.name() == "gpt-few-shot-with-cot" ||
        det.name() == "katara-sim") {
      curves_st.push_back({det.name(), runs[0].curve});
      curves_rt.push_back({det.name(), runs[4].curve});
    }
    return runs;
  };

  for (const auto& det : ours) run_all(*det);
  for (const auto& det : baseline_detectors) run_all(*det);

  benchx::PrintHeader("Figure 7: PR curves on RT-Bench (real errors)");
  for (const auto& [name, curve] : curves_rt) benchx::PrintCurve(name, curve);
  benchx::PrintHeader("Figure 8: PR curves on ST-Bench (real errors)");
  for (const auto& [name, curve] : curves_st) benchx::PrintCurve(name, curve);

  std::printf(
      "\nExpected shape (paper Table 4 / Figs 7-8): fine-select dominates "
      "every baseline on\nboth metrics; quality improves as synthetic "
      "errors are added; GPT variants have F1@P=0.8 = 0.\n");
  return 0;
}
