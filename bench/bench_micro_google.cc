// Google-benchmark microbenchmarks for the per-component costs behind the
// paper's latency figures: distance evaluation, profile construction,
// pattern matching, validators, statistics, and the LP solver.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/sdc.h"
#include "datagen/column_gen.h"
#include "datagen/gazetteer.h"
#include "embed/embedding.h"
#include "lp/incremental.h"
#include "lp/simplex.h"
#include "pattern/pattern.h"
#include "stats/statistics.h"
#include "typedet/eval_functions.h"
#include "typedet/validators.h"
#include "util/rng.h"

namespace {

using namespace autotest;

table::Column MakeCityColumn(size_t n) {
  const auto& gaz = datagen::Gazetteer::Instance();
  util::Rng rng(1);
  datagen::ColumnGenOptions opt;
  opt.min_values = n;
  opt.max_values = n;
  return datagen::GenerateColumn(*gaz.Find("city_us"), opt, rng);
}

void BM_PatternMatch(benchmark::State& state) {
  auto p = pattern::Pattern::Parse("\\d{1,2}/\\d{1,2}/\\d{4}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(p->Matches("12/31/2020"));
    benchmark::DoNotOptimize(p->Matches("new facility"));
  }
}
BENCHMARK(BM_PatternMatch);

void BM_PatternGeneralize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern::Generalize(
        "b50005237", pattern::GeneralizationLevel::kGeneral));
  }
}
BENCHMARK(BM_PatternGeneralize);

void BM_ValidateDate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(typedet::ValidateDate("12/3/2020"));
    benchmark::DoNotOptimize(typedet::ValidateDate("not a date"));
  }
}
BENCHMARK(BM_ValidateDate);

void BM_ValidateCreditCard(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(typedet::ValidateCreditCard("4539578763621486"));
  }
}
BENCHMARK(BM_ValidateCreditCard);

void BM_SbertEmbed(benchmark::State& state) {
  auto model = embed::MakeSbertSim();
  embed::Vector v;
  int i = 0;
  for (auto _ : state) {
    // Defeat the cache with a rotating suffix.
    benchmark::DoNotOptimize(
        model->Embed("seattle" + std::to_string(i++ % 4096), &v));
  }
}
BENCHMARK(BM_SbertEmbed);

void BM_EmbeddingDistanceCached(benchmark::State& state) {
  auto model = embed::MakeSbertSim();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Distance("seattle", "chicago"));
  }
}
BENCHMARK(BM_EmbeddingDistanceCached);

void BM_ColumnProfile(benchmark::State& state) {
  auto column = MakeCityColumn(static_cast<size_t>(state.range(0)));
  auto distinct = table::Distinct(column);
  auto model = embed::MakeSbertSim();
  auto eval = typedet::MakeEmbeddingEval(model.get(), "seattle");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeProfile(*eval, distinct));
  }
}
BENCHMARK(BM_ColumnProfile)->Arg(50)->Arg(200);

void BM_WilsonInterval(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::WilsonLowerBound(990, 1000, 1.65));
  }
}
BENCHMARK(BM_WilsonInterval);

void BM_CohensH(benchmark::State& state) {
  stats::ContingencyTable t;
  t.covered_triggered = 10;
  t.covered_not_triggered = 990;
  t.uncovered_triggered = 160000;
  t.uncovered_not_triggered = 40000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::CohensH(t));
  }
}
BENCHMARK(BM_CohensH);

void BM_SimplexMaxCoverage(benchmark::State& state) {
  // A CSS-LP-shaped instance: n rules, 2n columns, 2 budgets.
  size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    lp::LinearProgram prog;
    std::vector<size_t> x(n);
    for (size_t i = 0; i < n; ++i) x[i] = prog.AddVariable(0.0, 1.0);
    for (size_t j = 0; j < 2 * n; ++j) {
      size_t y = prog.AddVariable(1.0, 1.0);
      lp::Constraint c;
      c.rhs = 0.0;
      c.terms.push_back({y, 1.0});
      for (int k = 0; k < 3; ++k) {
        c.terms.push_back(
            {x[static_cast<size_t>(rng.UniformInt(
                 0, static_cast<int64_t>(n) - 1))],
             -1.0});
      }
      prog.AddConstraint(std::move(c));
    }
    lp::Constraint size_c;
    size_c.rhs = static_cast<double>(n) / 4.0;
    for (size_t i = 0; i < n; ++i) size_c.terms.push_back({x[i], 1.0});
    prog.AddConstraint(std::move(size_c));
    state.ResumeTiming();
    benchmark::DoNotOptimize(lp::SolveLp(prog));
  }
}
// The 10000-rule instance takes minutes per solve; it exists for manual
// scaling runs (AT_BENCH_FULL=1) and is kept out of the CI gate, which
// repeats every benchmark 15 times.
BENCHMARK(BM_SimplexMaxCoverage)->Apply([](benchmark::internal::Benchmark* b) {
  b->Arg(50)->Arg(200)->Arg(1000);
  if (std::getenv("AT_BENCH_FULL") != nullptr) b->Arg(10000);
});

void BM_IncrementalReselect(benchmark::State& state) {
  // Warm incremental re-selection: a solved CSS-LP-shaped base gains a
  // small batch of candidate columns and re-prices from the previous
  // optimal basis. Measures the cost of one warm wave (16 column
  // additions + ReOptimize) against a 1000-rule base.
  // The base is built and cold-solved once, outside the timing loop; each
  // measured iteration then appends a fresh wave and re-solves warm, so the
  // LP grows slightly across iterations the way a real CSS->FSS candidate
  // stream does.
  constexpr size_t kBase = 1000;
  constexpr size_t kRows = 2 * kBase;
  constexpr size_t kWave = 16;
  util::Rng rng(5);
  lp::LinearProgram base;
  for (size_t j = 0; j < kRows; ++j) {
    lp::Constraint c;
    c.rhs = 0.0;
    base.AddConstraint(std::move(c));
  }
  lp::Constraint size_c;
  size_c.rhs = static_cast<double>(kBase) / 4.0;
  base.AddConstraint(std::move(size_c));
  lp::IncrementalSolver inc(base);
  for (size_t j = 0; j < kRows; ++j) {
    inc.AddVariable(1.0, 1.0, {{j, 1.0}});  // y_j
  }
  for (size_t i = 0; i < kBase; ++i) {
    std::vector<std::pair<size_t, double>> terms;
    for (int k = 0; k < 6; ++k) {
      terms.push_back(
          {static_cast<size_t>(rng.UniformInt(
               0, static_cast<int64_t>(kRows) - 1)),
           -1.0});
    }
    terms.push_back({kRows, 1.0});
    inc.AddVariable(0.0, 1.0, terms);
  }
  benchmark::DoNotOptimize(inc.Solve());
  for (auto _ : state) {
    for (size_t i = 0; i < kWave; ++i) {
      std::vector<std::pair<size_t, double>> terms;
      for (int k = 0; k < 6; ++k) {
        terms.push_back(
            {static_cast<size_t>(rng.UniformInt(
                 0, static_cast<int64_t>(kRows) - 1)),
             -1.0});
      }
      terms.push_back({kRows, 1.0});
      inc.AddVariable(0.0, 1.0, terms);
    }
    benchmark::DoNotOptimize(inc.Solve());
  }
}
BENCHMARK(BM_IncrementalReselect);

}  // namespace

BENCHMARK_MAIN();
