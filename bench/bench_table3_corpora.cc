// Paper Table 3: training table corpora — detailed statistics.
// Prints total columns, mean/median values per column, and mean/median
// distinct values per column for the three corpora.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "table/column.h"

namespace {

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

void Report(const char* name, const autotest::table::Corpus& corpus) {
  std::vector<double> lens;
  std::vector<double> distincts;
  for (const auto& c : corpus) {
    lens.push_back(static_cast<double>(c.values.size()));
    distincts.push_back(
        static_cast<double>(autotest::table::Distinct(c).size()));
  }
  double mean_len = 0.0;
  double mean_distinct = 0.0;
  for (double x : lens) mean_len += x;
  for (double x : distincts) mean_distinct += x;
  mean_len /= static_cast<double>(lens.size());
  mean_distinct /= static_cast<double>(distincts.size());
  std::printf("%-22s | %8zu | %10.2f | %8.0f | %10.2f | %8.0f\n", name,
              corpus.size(), mean_len, Median(lens), mean_distinct,
              Median(distincts));
}

}  // namespace

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  benchx::PrintHeader("Table 3: training corpora statistics");
  std::printf("%-22s | %8s | %10s | %8s | %10s | %8s\n", "corpus", "#cols",
              "mean vals", "med vals", "mean dist", "med dist");
  Report("relational-tables",
         datagen::GenerateCorpus(
             datagen::RelationalTablesProfile(scale.corpus_columns)));
  Report("spreadsheet-tables",
         datagen::GenerateCorpus(
             datagen::SpreadsheetTablesProfile(scale.corpus_columns)));
  Report("tablib", datagen::GenerateCorpus(
                       datagen::TablibProfile(scale.corpus_columns)));
  std::printf(
      "\nExpected shape (paper Table 3): relational columns are much longer\n"
      "than spreadsheet columns; distinct counts are comparable and small.\n");
  return 0;
}
