#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/check.h"

namespace autotest::benchx {

Scale GetScale() {
  Scale s;
  const char* env = std::getenv("AT_BENCH_SCALE");
  if (env != nullptr) {
    double f = std::atof(env);
    if (f > 0.0) {
      s.corpus_columns = static_cast<size_t>(s.corpus_columns * f);
      s.bench_columns = static_cast<size_t>(s.bench_columns * f);
      s.synthetic_count = static_cast<size_t>(s.synthetic_count * f);
      s.centroids_per_model =
          static_cast<size_t>(s.centroids_per_model * f);
    }
  }
  s.corpus_columns = std::max<size_t>(s.corpus_columns, 200);
  s.bench_columns = std::max<size_t>(s.bench_columns, 100);
  s.synthetic_count = std::max<size_t>(s.synthetic_count, 100);
  s.centroids_per_model = std::max<size_t>(s.centroids_per_model, 20);
  return s;
}

Env BuildEnv(const std::string& corpus_name, const Scale& scale,
             const core::AutoTestConfig* config_override) {
  Env env;
  env.scale = scale;
  env.corpus_name = corpus_name;
  datagen::CorpusProfile profile;
  if (corpus_name == "relational") {
    profile = datagen::RelationalTablesProfile(scale.corpus_columns);
  } else if (corpus_name == "spreadsheet") {
    profile = datagen::SpreadsheetTablesProfile(scale.corpus_columns);
  } else if (corpus_name == "tablib") {
    profile = datagen::TablibProfile(scale.corpus_columns);
  } else {
    std::fprintf(stderr, "unknown corpus %s\n", corpus_name.c_str());
    std::abort();
  }
  std::fprintf(stderr, "[bench] generating %s corpus (%zu columns)...\n",
               corpus_name.c_str(), scale.corpus_columns);
  env.corpus = datagen::GenerateCorpus(profile);

  core::AutoTestConfig config;
  if (config_override != nullptr) config = *config_override;
  config.eval_options.embedding_centroids_per_model =
      scale.centroids_per_model;
  config.train_options.synthetic_count = scale.synthetic_count;
  std::fprintf(stderr, "[bench] training Auto-Test...\n");
  env.at = std::make_unique<core::AutoTest>(
      core::AutoTest::Train(env.corpus, config));
  std::fprintf(stderr, "[bench] learned %zu constraints\n",
               env.at->model().constraints.size());

  env.st = datagen::GenerateBenchmark(
      datagen::StBenchProfile(scale.bench_columns));
  env.rt = datagen::GenerateBenchmark(
      datagen::RtBenchProfile(scale.bench_columns));
  return env;
}

std::vector<datagen::LabeledBenchmark> ErrorLevels(
    const datagen::LabeledBenchmark& bench) {
  std::vector<datagen::LabeledBenchmark> out;
  out.push_back(bench);
  out.push_back(datagen::WithSyntheticErrors(bench, 0.05, 1001));
  out.push_back(datagen::WithSyntheticErrors(bench, 0.10, 1002));
  out.push_back(datagen::WithSyntheticErrors(bench, 0.20, 1003));
  return out;
}

std::vector<std::unique_ptr<eval::ErrorDetector>> BuildBaselines(
    const Env& env) {
  std::vector<std::unique_ptr<eval::ErrorDetector>> out;
  const auto& evals = env.at->evals();

  // Column-type detection baselines.
  const auto& zoos = evals.cta_zoos();
  for (const auto& zoo : zoos) {
    out.push_back(std::make_unique<baselines::CtaZScoreDetector>(
        zoo->name() == "sherlock-sim" ? "sherlock" : "doduo", zoo.get()));
  }
  const auto& models = evals.embedding_models();
  for (const auto& model : models) {
    out.push_back(std::make_unique<baselines::EmbeddingZScoreDetector>(
        model->name() == "glove-sim" ? "glove" : "sentence-bert",
        model.get()));
  }
  out.push_back(std::make_unique<baselines::RegexDetector>());
  out.push_back(std::make_unique<baselines::FunctionDetector>(
      "dataprep", "dataprep-sim"));
  out.push_back(std::make_unique<baselines::FunctionDetector>(
      "validators", "validators-sim"));

  // Data-cleaning baselines.
  out.push_back(std::make_unique<baselines::AutoDetectSim>(
      baselines::AutoDetectSim::Train(env.corpus)));
  out.push_back(std::make_unique<baselines::KataraSim>());

  // Outlier-detection baselines.
  for (auto kind :
       {baselines::OutlierKind::kSvdd, baselines::OutlierKind::kDbod,
        baselines::OutlierKind::kLof, baselines::OutlierKind::kRkde,
        baselines::OutlierKind::kPpca, baselines::OutlierKind::kIForest}) {
    out.push_back(std::make_unique<baselines::OutlierDetectorBaseline>(kind));
  }

  // LLM simulations.
  for (const auto& cfg : baselines::LlmSim::PaperVariants()) {
    out.push_back(std::make_unique<baselines::LlmSim>(cfg));
  }

  // Commercial simulations.
  out.push_back(
      std::make_unique<baselines::VendorSim>(baselines::VendorSim::Kind::kA));
  out.push_back(
      std::make_unique<baselines::VendorSim>(baselines::VendorSim::Kind::kB));
  return out;
}

void PrintCurve(const std::string& label, const eval::PrCurve& curve,
                size_t max_points) {
  std::printf("curve %-28s :", label.c_str());
  size_t n = curve.points.size();
  if (n == 0) {
    std::printf(" (empty)\n");
    return;
  }
  size_t step = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += step) {
    std::printf(" (%.3f,%.3f)", curve.points[i].recall,
                curve.points[i].precision);
  }
  if ((n - 1) % step != 0) {
    std::printf(" (%.3f,%.3f)", curve.points[n - 1].recall,
                curve.points[n - 1].precision);
  }
  std::printf("\n");
}

void PrintQualityRow(const std::string& method,
                     const std::vector<eval::BenchmarkRun>& runs) {
  std::printf("%s\n", eval::FormatTableRow(method, runs).c_str());
}

void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

BenchMetrics::BenchMetrics(std::string source)
    : source_(std::move(source)) {}

void BenchMetrics::Gauge(const std::string& name, double value) {
  AT_CHECK_MSG(metrics::IsValidMetricName(name), "invalid bench metric name");
  for (metrics::MetricValue& m : values_) {
    if (m.name == name) {
      m.gauge = value;
      return;
    }
  }
  metrics::MetricValue m;
  m.name = name;
  m.kind = metrics::MetricKind::kGauge;
  m.gauge = value;
  values_.push_back(std::move(m));
}

std::string BenchMetrics::ToJson() const {
  std::vector<metrics::MetricValue> sorted = values_;
  std::sort(sorted.begin(), sorted.end(),
            [](const metrics::MetricValue& a, const metrics::MetricValue& b) {
              return a.name < b.name;
            });
  return metrics::FormatMetricsJson(sorted, source_);
}

bool BenchMetrics::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << ToJson();
  if (!out.flush()) {
    std::fprintf(stderr, "[bench] cannot write metrics JSON to %s\n",
                 path.c_str());
    return false;
  }
  return true;
}

void BenchMetrics::MaybeWriteEnv() const {
  const char* path = std::getenv("AT_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  if (WriteFile(path)) {
    std::fprintf(stderr, "[bench] wrote metrics JSON to %s\n", path);
  }
}

bool SdcOnly() {
  const char* env = std::getenv("AT_BENCH_SDC_ONLY");
  return env != nullptr && env[0] != '\0';
}

}  // namespace autotest::benchx
