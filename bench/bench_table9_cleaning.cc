// Paper Tables 9/10/11: applying learned SDCs to the nine data-cleaning
// benchmark datasets. Reports column-level coverage (columns gaining new
// constraints), cell-level true positives and precision — under both the
// datasets' existing ground truth and the augmented ground truth that
// includes the Table-11 "missed" errors.

#include <cstdio>
#include <set>

#include "bench_common.h"
#include "datagen/cleaning_bench.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  benchx::Env env = benchx::BuildEnv("relational", scale);
  auto pred = env.at->MakePredictor(core::Variant::kFineSelect);

  auto datasets = datagen::BuildCleaningDatasets();

  benchx::PrintHeader("Table 9: SDCs on data-cleaning benchmarks");
  std::printf(
      "%-10s | %9s | %11s | %10s | %7s | %14s | %14s\n", "dataset",
      "cat. cols", "cols w/ SDC", "detections", "TPs",
      "precision(GT)", "precision(aug)");

  size_t total_detections = 0;
  size_t total_tp_strict = 0;
  size_t total_tp_aug = 0;
  size_t total_cols = 0;
  size_t total_new_cols = 0;

  for (const auto& ds : datasets) {
    size_t detections = 0;
    size_t tp_strict = 0;  // detected cells labeled in existing GT
    size_t tp_aug = 0;     // + detected cells that are real-but-unlabeled
    std::set<size_t> columns_with_rules;
    for (size_t c = 0; c < ds.data.columns.size(); ++c) {
      const auto& column = ds.data.columns[c];
      if (table::IsMostlyNumeric(column)) continue;
      auto cells = pred.Predict(column);
      if (!cells.empty()) columns_with_rules.insert(c);
      for (const auto& cell : cells) {
        ++detections;
        for (const auto& e : ds.errors) {
          if (e.column_index == c && e.row == cell.row) {
            ++tp_aug;
            if (e.in_ground_truth) ++tp_strict;
          }
        }
      }
    }
    double prec_strict =
        detections ? 100.0 * tp_strict / detections : 0.0;
    double prec_aug = detections ? 100.0 * tp_aug / detections : 0.0;
    std::printf("%-10s | %9zu | %11zu | %10zu | %7zu | %13.0f%% | %13.0f%%\n",
                ds.name.c_str(), ds.data.num_columns(),
                columns_with_rules.size(), detections, tp_strict,
                prec_strict, prec_aug);
    total_detections += detections;
    total_tp_strict += tp_strict;
    total_tp_aug += tp_aug;
    total_cols += ds.data.num_columns();
    total_new_cols += columns_with_rules.size();
  }
  std::printf("%-10s | %9zu | %11zu | %10zu | %7zu | %13.0f%% | %13.0f%%\n",
              "overall", total_cols, total_new_cols, total_detections,
              total_tp_strict,
              total_detections ? 100.0 * total_tp_strict / total_detections
                               : 0.0,
              total_detections ? 100.0 * total_tp_aug / total_detections
                               : 0.0);

  // Table-10/11 style drill-down: the rules and the new errors they find.
  benchx::PrintHeader(
      "Table 10/11: example detections (incl. errors missing from GT)");
  for (const auto& ds : datasets) {
    for (size_t c = 0; c < ds.data.columns.size(); ++c) {
      const auto& column = ds.data.columns[c];
      if (table::IsMostlyNumeric(column)) continue;
      auto cells = pred.Predict(column);
      size_t shown = 0;
      for (const auto& cell : cells) {
        bool labeled_in_gt = false;
        bool real = false;
        for (const auto& e : ds.errors) {
          if (e.column_index == c && e.row == cell.row) {
            real = true;
            labeled_in_gt = e.in_ground_truth;
          }
        }
        if (shown++ < 2) {
          std::printf("%-8s %-18s \"%s\" conf=%.2f %s\n    %s\n",
                      ds.name.c_str(), column.name.c_str(),
                      cell.value.c_str(), cell.confidence,
                      real ? (labeled_in_gt ? "[in GT]" : "[MISSED BY GT]")
                           : "[not labeled: potential FP]",
                      cell.explanation.c_str());
        }
      }
    }
  }
  std::printf(
      "\nExpected shape (paper Tables 9-11): SDCs cover new columns with "
      "high precision;\naugmented-GT precision exceeds strict-GT precision "
      "because SDCs find real errors the\nbenchmarks' own labels miss.\n");
  return 0;
}
