// Paper Table 5: Fine-Select quality and latency as the constraint-count
// budget B_size varies, with All-Constraints as the reference point.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);
  benchx::Env env = benchx::BuildEnv("relational", scale);

  benchx::PrintHeader(
      "Table 5: Fine-Select vs constraint budget B_size (quality on real "
      "errors; latency per column)");
  std::printf("%18s | %12s | %12s | %12s | %12s | %8s\n", "budget",
              "ST F1@P=0.8", "ST PR-AUC", "RT F1@P=0.8", "RT PR-AUC",
              "sec/col");

  for (size_t budget : {100, 200, 500, 1000}) {
    core::SelectionOptions opt = env.at->config().selection_options;
    opt.size_budget = budget;
    auto pred = env.at->MakePredictor(core::Variant::kFineSelect, &opt);
    baselines::SdcDetector det("fine-select", &pred);
    auto st = RunDetector(det, env.st, 1);
    auto rt = RunDetector(det, env.rt, 1);
    char label[32];
    std::snprintf(label, sizeof(label), "B_size=%zu (%zu)", budget,
                  pred.num_rules());
    std::printf("%18s | %12.2f | %12.2f | %12.2f | %12.2f | %8.4f\n", label,
                st.f1_at_p08, st.pr_auc, rt.f1_at_p08, rt.pr_auc,
                (st.seconds_per_column + rt.seconds_per_column) / 2);
  }
  {
    auto pred = env.at->MakePredictor(core::Variant::kAllConstraints);
    baselines::SdcDetector det("all-constraints", &pred);
    auto st = RunDetector(det, env.st, 1);
    auto rt = RunDetector(det, env.rt, 1);
    char label[32];
    std::snprintf(label, sizeof(label), "all (%zu)", pred.num_rules());
    std::printf("%18s | %12.2f | %12.2f | %12.2f | %12.2f | %8.4f\n", label,
                st.f1_at_p08, st.pr_auc, rt.f1_at_p08, rt.pr_auc,
                (st.seconds_per_column + rt.seconds_per_column) / 2);
  }
  std::printf(
      "\nExpected shape (paper Table 5): quality grows with the budget and "
      "matches\nall-constraints by ~500 rules, at a fraction of the "
      "latency.\n");
  return 0;
}
