// Paper Figure 13: online prediction latency vs number of distinct values
// in the column, for Fine-Select vs All-Constraints (and the LLM-sim
// reference).

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "datagen/column_gen.h"
#include "datagen/gazetteer.h"
#include "util/rng.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = 200;
  benchx::Env env = benchx::BuildEnv("relational", scale);

  auto all_pred = env.at->MakePredictor(core::Variant::kAllConstraints);
  auto fine_pred = env.at->MakePredictor(core::Variant::kFineSelect);
  baselines::SdcDetector fine("fine-select", &fine_pred);
  baselines::SdcDetector all("all-constraints", &all_pred);
  baselines::LlmSim llm(baselines::LlmSim::PaperVariants().front());

  benchx::PrintHeader(
      "Figure 13: latency (s/column) vs distinct values per column");
  std::printf("%8s | %14s | %16s | %14s\n", "distinct", "fine-select",
              "all-constraints", "gpt-sim");

  const auto& gaz = datagen::Gazetteer::Instance();
  util::Rng rng(5);
  for (size_t distinct : {10, 25, 50, 100, 200, 400, 800}) {
    // Machine-generated columns give exactly `distinct` distinct values.
    datagen::ColumnGenOptions opt;
    opt.min_values = distinct;
    opt.max_values = distinct;
    std::vector<table::Column> cols;
    for (int i = 0; i < 12; ++i) {
      const char* domains[] = {"uuid", "url", "email", "movie_id"};
      cols.push_back(datagen::GenerateColumn(
          *gaz.Find(domains[i % 4]), opt, rng));
    }
    auto time_detector = [&](const eval::ErrorDetector& det) {
      auto t0 = std::chrono::steady_clock::now();
      for (const auto& c : cols) det.Detect(c);
      auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double>(t1 - t0).count() /
             static_cast<double>(cols.size());
    };
    std::printf("%8zu | %14.6f | %16.6f | %14.6f\n", distinct,
                time_detector(fine), time_detector(all), time_detector(llm));
  }
  std::printf(
      "\nExpected shape (paper Fig 13): latency grows with column size; "
      "fine-select stays\nseveral times faster than all-constraints at "
      "every size.\n");
  return 0;
}
