#ifndef AUTOTEST_BENCH_BENCH_COMMON_H_
#define AUTOTEST_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "core/auto_test.h"
#include "datagen/bench_gen.h"
#include "datagen/corpus_gen.h"
#include "eval/harness.h"
#include "util/metrics.h"

namespace autotest::benchx {

/// Scale knobs shared by every bench binary. Override with the environment
/// variable AT_BENCH_SCALE (e.g. AT_BENCH_SCALE=0.25 quarters the sizes)
/// when iterating locally; published numbers use the defaults.
struct Scale {
  size_t corpus_columns = 2400;
  size_t bench_columns = 1200;
  size_t synthetic_count = 800;
  size_t centroids_per_model = 120;
};

/// Reads AT_BENCH_SCALE and applies it to the default sizes.
Scale GetScale();

/// Everything a quality bench needs: a trained Auto-Test and the two
/// labeled benchmarks.
struct Env {
  Scale scale;
  std::string corpus_name;
  table::Corpus corpus;
  std::unique_ptr<core::AutoTest> at;
  datagen::LabeledBenchmark st;
  datagen::LabeledBenchmark rt;
};

/// Builds the environment: generates the named training corpus
/// ("relational" | "spreadsheet" | "tablib"), trains Auto-Test on it, and
/// generates ST-Bench / RT-Bench. Prints progress to stderr.
Env BuildEnv(const std::string& corpus_name, const Scale& scale,
             const core::AutoTestConfig* config_override = nullptr);

/// The benchmark variants of paper Table 4: real errors plus +5/+10/+20%
/// synthetic injections.
std::vector<datagen::LabeledBenchmark> ErrorLevels(
    const datagen::LabeledBenchmark& bench);

/// Builds the full roster of baseline detectors (column-type detection,
/// outlier detection, corpus baselines, LLM-sim variants, vendor-sims).
/// Returned detectors borrow models from `env` — keep it alive.
std::vector<std::unique_ptr<eval::ErrorDetector>> BuildBaselines(
    const Env& env);

/// Prints a PR curve as a machine-readable series (recall, precision).
void PrintCurve(const std::string& label, const eval::PrCurve& curve,
                size_t max_points = 24);

/// Prints the standard "(F1@P=0.8, PR-AUC)" quality row.
void PrintQualityRow(const std::string& method,
                     const std::vector<eval::BenchmarkRun>& runs);

/// Section header helper.
void PrintHeader(const std::string& title);

/// Collects bench results as named gauges and emits them in the exact
/// JSON shape the metrics registry dumps (`autotest.metrics.v1`), so the
/// bench-regression gate (tools/run_bench_ci.sh) and `--metrics-dump`
/// consumers share one parser. Names follow the registry contract with a
/// `bench.` prefix, e.g. `bench.fig12.fine_select_s_per_col`.
class BenchMetrics {
 public:
  explicit BenchMetrics(std::string source);

  /// Records (or overwrites) one result gauge. Invalid names AT_CHECK.
  void Gauge(const std::string& name, double value);

  /// The autotest.metrics.v1 document, gauges sorted by name.
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false (with a stderr diagnostic) on I/O
  /// failure.
  bool WriteFile(const std::string& path) const;

  /// Writes ToJson() to $AT_BENCH_JSON when that variable is set — the
  /// hook run_bench_ci.sh uses without touching each bench's stdout.
  void MaybeWriteEnv() const;

 private:
  std::string source_;
  std::vector<metrics::MetricValue> values_;
};

/// True when $AT_BENCH_SDC_ONLY is set non-empty: latency benches then
/// skip the (slow) baseline roster and time only the SDC variants, which
/// is what the CI regression gate pins.
bool SdcOnly();

}  // namespace autotest::benchx

#endif  // AUTOTEST_BENCH_BENCH_COMMON_H_
