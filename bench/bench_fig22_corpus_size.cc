// Paper Figure 22: quality vs training-corpus size.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);

  auto st = datagen::GenerateBenchmark(
      datagen::StBenchProfile(scale.bench_columns));
  auto rt = datagen::GenerateBenchmark(
      datagen::RtBenchProfile(scale.bench_columns));

  benchx::PrintHeader("Figure 22: Fine-Select quality vs corpus size");
  std::printf("%8s | %12s | %12s | %12s | %12s | %8s\n", "columns",
              "ST F1@P=0.8", "ST PR-AUC", "RT F1@P=0.8", "RT PR-AUC",
              "#rules");
  for (size_t cols : {scale.corpus_columns / 8, scale.corpus_columns / 4,
                      scale.corpus_columns / 2, scale.corpus_columns}) {
    benchx::Scale s = scale;
    s.corpus_columns = cols;
    benchx::Env env = benchx::BuildEnv("relational", s);
    auto pred = env.at->MakePredictor(core::Variant::kFineSelect);
    baselines::SdcDetector det("fine-select", &pred);
    auto st_run = RunDetector(det, st, 1);
    auto rt_run = RunDetector(det, rt, 1);
    std::printf("%8zu | %12.2f | %12.2f | %12.2f | %12.2f | %8zu\n", cols,
                st_run.f1_at_p08, st_run.pr_auc, rt_run.f1_at_p08,
                rt_run.pr_auc, pred.num_rules());
  }
  std::printf(
      "\nExpected shape (paper Fig 22): quality improves with more "
      "training data.\n");
  return 0;
}
