// Paper Figure 19: Fine-Select sensitivity to the confidence-approximation
// parameter delta. delta >= 1 degenerates to Coarse-Select.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);
  benchx::Env env = benchx::BuildEnv("relational", scale);

  benchx::PrintHeader("Figure 19: Fine-Select, varying delta");
  std::printf("%10s | %12s | %12s | %12s | %12s | %8s\n", "delta",
              "ST F1@P=0.8", "ST PR-AUC", "RT F1@P=0.8", "RT PR-AUC",
              "#rules");
  for (double delta : {0.001, 0.01, 0.1, 1.0}) {
    core::SelectionOptions opt = env.at->config().selection_options;
    opt.delta = delta;
    auto sel = core::FineSelect(env.at->model(), opt);
    auto pred = env.at->MakePredictorFor(sel.selected);
    baselines::SdcDetector det("fine-select", &pred);
    auto st = RunDetector(det, env.st, 1);
    auto rt = RunDetector(det, env.rt, 1);
    std::printf("%10.3f | %12.2f | %12.2f | %12.2f | %12.2f | %8zu\n", delta,
                st.f1_at_p08, st.pr_auc, rt.f1_at_p08, rt.pr_auc,
                pred.num_rules());
  }
  std::printf(
      "\nExpected shape (paper Fig 19): smaller delta preserves the "
      "confidence ranking and\nyields equal-or-better curves than delta=1 "
      "(Coarse-Select).\n");
  return 0;
}
