// Paper Figure 11: coverage of specialized content — columns with
// proprietary meanings (contract numbers, article numbers, order ids) are
// still covered by pattern-based SDCs, because the learner captures what a
// reliable pattern-domain looks like rather than specific vocabularies.

#include <cstdio>

#include "bench_common.h"
#include "datagen/column_gen.h"
#include "datagen/gazetteer.h"
#include "typedet/domain_eval.h"
#include "util/rng.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  benchx::Env env = benchx::BuildEnv("relational", scale);
  auto pred = env.at->MakePredictor(core::Variant::kAllConstraints);

  const char* specialized[] = {"contract_no",   "article_number",
                               "order_num",     "movie_id",
                               "product_code",  "gene"};
  benchx::PrintHeader(
      "Figure 11: specialized columns covered by pattern SDCs");
  const auto& gaz = datagen::Gazetteer::Instance();
  util::Rng rng(99);
  for (const char* name : specialized) {
    datagen::ColumnGenOptions opt;
    opt.min_values = 40;
    opt.max_values = 40;
    table::Column col = datagen::GenerateColumn(*gaz.Find(name), opt, rng);
    // Count the SDCs whose pre-condition covers this column, per family.
    size_t covered_pattern = 0;
    size_t covered_other = 0;
    table::DistinctValues distinct = table::Distinct(col);
    for (const auto& rule : env.at->model().constraints) {
      auto profile = core::ComputeProfile(*rule.eval, distinct);
      if (!profile.PreconditionHolds(rule.d_in, rule.m)) continue;
      if (rule.eval->family() == typedet::Family::kPattern) {
        ++covered_pattern;
      } else {
        ++covered_other;
      }
    }
    std::printf("%-16s first values: %s, %s, ...\n", name,
                col.values[0].c_str(), col.values[1].c_str());
    std::printf("%-16s covered by %zu pattern SDCs (+%zu other)\n", "",
                covered_pattern, covered_other);
    // And an injected alien value is detected:
    col.values.push_back("see attachment");
    auto detections = pred.Predict(col);
    bool caught = false;
    for (const auto& d : detections) {
      if (d.value == "see attachment") caught = true;
    }
    std::printf("%-16s alien value \"see attachment\" detected: %s\n\n", "",
                caught ? "yes" : "no");
  }
  std::printf(
      "Expected shape (paper Fig 11): specialized id-like columns are "
      "covered by pattern\nSDCs even though their vocabularies never occur "
      "in the training corpus.\n");
  return 0;
}
