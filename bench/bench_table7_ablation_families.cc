// Paper Table 7 + Figure 23: ablation — remove one column-type detection
// family at a time and measure Fine-Select quality.

#include <cstdio>

#include "bench_common.h"
#include "core/trainer.h"
#include "typedet/eval_functions.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.corpus_columns = std::min<size_t>(scale.corpus_columns, 1500);
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);

  auto corpus = datagen::GenerateCorpus(
      datagen::RelationalTablesProfile(scale.corpus_columns));
  auto st = datagen::GenerateBenchmark(
      datagen::StBenchProfile(scale.bench_columns));
  auto rt = datagen::GenerateBenchmark(
      datagen::RtBenchProfile(scale.bench_columns));

  benchx::PrintHeader(
      "Table 7 / Figure 23: ablation of detection families (Fine-Select)");
  std::printf("%-14s | %12s | %12s | %12s | %12s\n", "variant",
              "ST F1@P=0.8", "ST PR-AUC", "RT F1@P=0.8", "RT PR-AUC");

  struct Setting {
    const char* name;
    bool cta, emb, pat, fun;
  };
  const Setting settings[] = {
      {"fine-select", true, true, true, true},
      {"no-cta", false, true, true, true},
      {"no-embedding", true, false, true, true},
      {"no-pattern", true, true, false, true},
      {"no-function", true, true, true, false},
  };
  for (const auto& s : settings) {
    typedet::EvalFunctionSetOptions eval_opt;
    eval_opt.include_cta = s.cta;
    eval_opt.include_embedding = s.emb;
    eval_opt.include_pattern = s.pat;
    eval_opt.include_function = s.fun;
    eval_opt.embedding_centroids_per_model = scale.centroids_per_model;
    auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);
    core::TrainOptions topt;
    topt.synthetic_count = scale.synthetic_count;
    auto model = core::TrainAutoTest(corpus, evals, topt);
    auto sel = core::FineSelect(model);
    std::vector<core::Sdc> rules;
    for (size_t i : sel.selected) rules.push_back(model.constraints[i]);
    core::SdcPredictor pred(std::move(rules));
    baselines::SdcDetector det(s.name, &pred);
    auto st_run = RunDetector(det, st, 1);
    auto rt_run = RunDetector(det, rt, 1);
    std::printf("%-14s | %12.2f | %12.2f | %12.2f | %12.2f\n", s.name,
                st_run.f1_at_p08, st_run.pr_auc, rt_run.f1_at_p08,
                rt_run.pr_auc);
  }
  std::printf(
      "\nExpected shape (paper Table 7): every family contributes; removing "
      "any\nfamily degrades at least one benchmark.\n");
  return 0;
}
