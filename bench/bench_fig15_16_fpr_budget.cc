// Paper Figures 15/16: PR curves of Fine-Select and Coarse-Select as the
// FPR budget B_FPR varies — a precision/recall trade-off knob.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);
  benchx::Env env = benchx::BuildEnv("relational", scale);

  for (bool fine : {true, false}) {
    benchx::PrintHeader(fine ? "Figure 15: Fine-Select, varying B_FPR"
                             : "Figure 16: Coarse-Select, varying B_FPR");
    // Scaled to where the budget binds for our (smaller, cleaner)
    // corpus: most surviving rules have zero observed corpus triggers, so
    // the knob only bites near zero.
    for (double fpr : {0.0, 0.002, 0.01, 0.1}) {
      core::SelectionOptions opt = env.at->config().selection_options;
      opt.fpr_budget = fpr;
      auto pred = env.at->MakePredictor(
          fine ? core::Variant::kFineSelect : core::Variant::kCoarseSelect,
          &opt);
      baselines::SdcDetector det("sdc", &pred);
      auto st = RunDetector(det, env.st, 1);
      auto rt = RunDetector(det, env.rt, 1);
      char label[64];
      std::snprintf(label, sizeof(label), "B_FPR=%.2f st (%zu rules)", fpr,
                    pred.num_rules());
      benchx::PrintCurve(label, st.curve);
      std::snprintf(label, sizeof(label), "B_FPR=%.2f rt", fpr);
      benchx::PrintCurve(label, rt.curve);
    }
  }
  std::printf(
      "\nExpected shape (paper Figs 15/16): smaller B_FPR -> higher "
      "precision, lower recall\n(the rightmost turning point moves up and "
      "left).\n");
  return 0;
}
