// Paper Figure 21: sensitivity to the Cohen's h effect-size threshold,
// evaluated on All-Constraints (like the paper).

#include <cstdio>

#include "bench_common.h"
#include "core/trainer.h"
#include "typedet/eval_functions.h"

int main() {
  using namespace autotest;
  benchx::Scale scale = benchx::GetScale();
  scale.bench_columns = std::min<size_t>(scale.bench_columns, 600);

  auto st = datagen::GenerateBenchmark(
      datagen::StBenchProfile(scale.bench_columns));

  benchx::PrintHeader("Figure 21: All-Constraints vs Cohen's h threshold");
  std::printf("%6s | %12s | %12s | %10s\n", "h", "ST F1@P=0.8", "ST PR-AUC",
              "#rules");

  for (const char* corpus_name : {"relational", "spreadsheet"}) {
    std::printf("-- trained on %s --\n", corpus_name);
    auto corpus = datagen::GenerateCorpus(
        std::string(corpus_name) == "relational"
            ? datagen::RelationalTablesProfile(scale.corpus_columns)
            : datagen::SpreadsheetTablesProfile(scale.corpus_columns));
    typedet::EvalFunctionSetOptions eval_opt;
    eval_opt.embedding_centroids_per_model = scale.centroids_per_model;
    auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);
    // Our synthetic corpus yields cleaner separations than real web
    // tables: surviving candidates all have h >= ~2, so the sweep extends
    // into the range where the threshold actually prunes.
    for (double h : {0.0, 0.8, 1.2, 2.0, 2.6, 3.0}) {
      core::TrainOptions topt;
      topt.synthetic_count = scale.synthetic_count;
      topt.h_threshold = h;
      auto model = core::TrainAutoTest(corpus, evals, topt);
      core::SdcPredictor pred(model.constraints);
      baselines::SdcDetector det("all-constraints", &pred);
      auto run = RunDetector(det, st, 1);
      std::printf("%6.1f | %12.2f | %12.2f | %10zu\n", h, run.f1_at_p08,
                  run.pr_auc, pred.num_rules());
    }
  }
  std::printf(
      "\nExpected shape (paper Fig 21): quality improves up to h = 0.8 "
      "(large effect size)\nand flattens or dips slightly at 1.2.\n");
  return 0;
}
