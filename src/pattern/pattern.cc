#include "pattern/pattern.h"

#include <cctype>

#include "util/check.h"

namespace autotest::pattern {

namespace {

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }
bool IsAlpha(char c) { return std::isalpha(static_cast<unsigned char>(c)); }
bool IsLower(char c) { return std::islower(static_cast<unsigned char>(c)); }
bool IsUpper(char c) { return std::isupper(static_cast<unsigned char>(c)); }

// Parses a quantifier at position i (after a class token); defaults to {1}.
bool ParseQuantifier(std::string_view text, size_t* i, int* min_len,
                     int* max_len) {
  *min_len = 1;
  *max_len = 1;
  if (*i >= text.size()) return true;
  if (text[*i] == '+') {
    *min_len = 1;
    *max_len = Atom::kUnbounded;
    ++*i;
    return true;
  }
  if (text[*i] != '{') return true;
  size_t j = *i + 1;
  int lo = 0;
  bool have_lo = false;
  while (j < text.size() && IsDigit(text[j])) {
    lo = lo * 10 + (text[j] - '0');
    have_lo = true;
    ++j;
  }
  if (!have_lo) return false;
  int hi = lo;
  if (j < text.size() && text[j] == ',') {
    ++j;
    hi = 0;
    bool have_hi = false;
    while (j < text.size() && IsDigit(text[j])) {
      hi = hi * 10 + (text[j] - '0');
      have_hi = true;
      ++j;
    }
    if (!have_hi) return false;
  }
  if (j >= text.size() || text[j] != '}') return false;
  if (hi < lo) return false;
  *min_len = lo;
  *max_len = hi;
  *i = j + 1;
  return true;
}

std::string QuantifierString(const Atom& a) {
  if (a.min_len == 1 && a.max_len == 1) return "";
  if (a.min_len == 1 && a.max_len == Atom::kUnbounded) return "+";
  if (a.min_len == a.max_len) return "{" + std::to_string(a.min_len) + "}";
  return "{" + std::to_string(a.min_len) + "," + std::to_string(a.max_len) +
         "}";
}

bool IsPatternSpecial(char c) {
  return c == '\\' || c == '[' || c == ']' || c == '{' || c == '}' ||
         c == '+';
}

// Backtracking matcher over (atom index, value position).
bool MatchFrom(const std::vector<Atom>& atoms, size_t ai,
               std::string_view value, size_t pos) {
  if (ai == atoms.size()) return pos == value.size();
  const Atom& a = atoms[ai];
  // Consume the mandatory minimum.
  size_t taken = 0;
  size_t p = pos;
  while (taken < static_cast<size_t>(a.min_len)) {
    if (p >= value.size() || !a.MatchesChar(value[p])) return false;
    ++p;
    ++taken;
  }
  // Greedily extend, then backtrack.
  std::vector<size_t> stops;
  stops.push_back(p);
  while ((a.max_len == Atom::kUnbounded ||
          taken < static_cast<size_t>(a.max_len)) &&
         p < value.size() && a.MatchesChar(value[p])) {
    ++p;
    ++taken;
    stops.push_back(p);
  }
  for (size_t k = stops.size(); k > 0; --k) {
    if (MatchFrom(atoms, ai + 1, value, stops[k - 1])) return true;
  }
  return false;
}

}  // namespace

bool Atom::MatchesChar(char c) const {
  switch (cls) {
    case AtomClass::kDigit:
      return IsDigit(c);
    case AtomClass::kAlpha:
      return IsAlpha(c);
    case AtomClass::kLower:
      return IsLower(c);
    case AtomClass::kUpper:
      return IsUpper(c);
    case AtomClass::kLiteral:
      return c == literal;
  }
  return false;
}

std::optional<Pattern> Pattern::Parse(std::string_view text) {
  std::vector<Atom> atoms;
  size_t i = 0;
  while (i < text.size()) {
    Atom a;
    if (text[i] == '\\') {
      if (i + 1 >= text.size()) return std::nullopt;
      char c = text[i + 1];
      i += 2;
      if (c == 'd') {
        a.cls = AtomClass::kDigit;
        if (!ParseQuantifier(text, &i, &a.min_len, &a.max_len)) {
          return std::nullopt;
        }
      } else {
        a.cls = AtomClass::kLiteral;
        a.literal = c;
      }
    } else if (text[i] == '[') {
      AtomClass cls;
      size_t len;
      if (text.substr(i).starts_with("[a-zA-Z]")) {
        cls = AtomClass::kAlpha;
        len = 8;
      } else if (text.substr(i).starts_with("[a-z]")) {
        cls = AtomClass::kLower;
        len = 5;
      } else if (text.substr(i).starts_with("[A-Z]")) {
        cls = AtomClass::kUpper;
        len = 5;
      } else {
        return std::nullopt;
      }
      i += len;
      a.cls = cls;
      if (!ParseQuantifier(text, &i, &a.min_len, &a.max_len)) {
        return std::nullopt;
      }
    } else if (text[i] == '{' || text[i] == '}' || text[i] == '+' ||
               text[i] == ']') {
      return std::nullopt;  // specials must be escaped
    } else {
      a.cls = AtomClass::kLiteral;
      a.literal = text[i];
      ++i;
    }
    atoms.push_back(a);
  }
  return Pattern(std::move(atoms));
}

std::string Pattern::ToString() const {
  std::string out;
  for (const Atom& a : atoms_) {
    switch (a.cls) {
      case AtomClass::kDigit:
        out += "\\d";
        break;
      case AtomClass::kAlpha:
        out += "[a-zA-Z]";
        break;
      case AtomClass::kLower:
        out += "[a-z]";
        break;
      case AtomClass::kUpper:
        out += "[A-Z]";
        break;
      case AtomClass::kLiteral:
        if (IsPatternSpecial(a.literal)) out.push_back('\\');
        out.push_back(a.literal);
        break;
    }
    if (a.cls != AtomClass::kLiteral) out += QuantifierString(a);
  }
  return out;
}

bool Pattern::Matches(std::string_view value) const {
  if (atoms_.empty()) return value.empty();
  return MatchFrom(atoms_, 0, value, 0);
}

Pattern Generalize(std::string_view value, GeneralizationLevel level) {
  std::vector<Atom> atoms;
  size_t i = 0;
  while (i < value.size()) {
    char c = value[i];
    if (IsDigit(c)) {
      size_t j = i;
      while (j < value.size() && IsDigit(value[j])) ++j;
      Atom a;
      a.cls = AtomClass::kDigit;
      if (level == GeneralizationLevel::kExactDigits) {
        a.min_len = a.max_len = static_cast<int>(j - i);
      } else {
        a.min_len = 1;
        a.max_len = Atom::kUnbounded;
      }
      atoms.push_back(a);
      i = j;
    } else if (IsAlpha(c)) {
      size_t j = i;
      while (j < value.size() && IsAlpha(value[j])) ++j;
      Atom a;
      a.cls = AtomClass::kAlpha;
      a.min_len = 1;
      a.max_len = Atom::kUnbounded;
      atoms.push_back(a);
      i = j;
    } else {
      Atom a;
      a.cls = AtomClass::kLiteral;
      a.literal = c;
      atoms.push_back(a);
      ++i;
    }
  }
  return Pattern(std::move(atoms));
}

}  // namespace autotest::pattern
