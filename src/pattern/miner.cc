#include "pattern/miner.h"

#include <algorithm>
#include <unordered_map>

#include "table/column.h"

namespace autotest::pattern {

namespace {

bool IsTrivial(const Pattern& p) {
  if (p.atoms().size() != 1) return false;
  const Atom& a = p.atoms().front();
  if (a.cls != AtomClass::kAlpha && a.cls != AtomClass::kDigit) return false;
  return a.max_len == Atom::kUnbounded;
}

// Most common generalized pattern over distinct values; empty if below
// the dominance threshold.
Pattern Dominant(const table::DistinctValues& distinct,
                 GeneralizationLevel level, double dominance) {
  if (distinct.values.empty()) return Pattern();
  std::unordered_map<std::string, size_t> counts;
  for (const auto& v : distinct.values) {
    ++counts[Generalize(v, level).ToString()];
  }
  std::string best;
  size_t best_count = 0;
  for (const auto& [text, count] : counts) {
    if (count > best_count || (count == best_count && text < best)) {
      best = text;
      best_count = count;
    }
  }
  double frac = static_cast<double>(best_count) /
                static_cast<double>(distinct.values.size());
  if (frac < dominance) return Pattern();
  auto parsed = Pattern::Parse(best);
  return parsed ? *parsed : Pattern();
}

}  // namespace

Pattern DominantPattern(const table::Column& column,
                        GeneralizationLevel level, double dominance) {
  return Dominant(table::Distinct(column), level, dominance);
}

std::vector<MinedPattern> MinePatterns(const table::Corpus& corpus,
                                       const MinerOptions& options) {
  std::unordered_map<std::string, size_t> support;
  for (const auto& column : corpus) {
    table::DistinctValues distinct = table::Distinct(column);
    if (distinct.values.size() < options.min_distinct_values) continue;
    std::string exact =
        Dominant(distinct, GeneralizationLevel::kExactDigits,
                 options.column_dominance)
            .ToString();
    std::string general =
        Dominant(distinct, GeneralizationLevel::kGeneral,
                 options.column_dominance)
            .ToString();
    if (!exact.empty()) ++support[exact];
    if (!general.empty() && general != exact) ++support[general];
  }

  std::vector<MinedPattern> out;
  for (const auto& [text, count] : support) {
    if (count < options.min_column_support) continue;
    auto parsed = Pattern::Parse(text);
    if (!parsed || parsed->empty()) continue;
    if (options.drop_trivial && IsTrivial(*parsed)) continue;
    out.push_back(MinedPattern{*parsed, count});
  }
  std::sort(out.begin(), out.end(),
            [](const MinedPattern& a, const MinedPattern& b) {
              if (a.column_support != b.column_support) {
                return a.column_support > b.column_support;
              }
              return a.pattern.ToString() < b.pattern.ToString();
            });
  if (out.size() > options.max_patterns) out.resize(options.max_patterns);
  return out;
}

}  // namespace autotest::pattern
