#ifndef AUTOTEST_PATTERN_MINER_H_
#define AUTOTEST_PATTERN_MINER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "pattern/pattern.h"
#include "table/table.h"

namespace autotest::pattern {

/// A pattern mined from the corpus with the number of columns it dominates.
struct MinedPattern {
  Pattern pattern;
  size_t column_support = 0;
};

struct MinerOptions {
  /// Fraction of a column's distinct values that must share the pattern for
  /// the column to count as supporting it.
  double column_dominance = 0.9;
  /// Minimum distinct values for a column to be considered.
  size_t min_distinct_values = 5;
  /// Minimum number of supporting columns for a pattern to be emitted.
  size_t min_column_support = 3;
  /// Keep at most this many patterns (by descending support). The paper's
  /// deployment mined 45 patterns from its corpus.
  size_t max_patterns = 45;
  /// Drop patterns that are a single unbounded class atom ([a-zA-Z]+ or
  /// \d+): they describe "any word" / "any number" rather than a
  /// machine-generated syntax, and numeric columns are excluded anyway.
  bool drop_trivial = true;
};

/// Mines the dominant value patterns of a corpus: for every column, if one
/// generalized pattern (at either generalization level) covers at least
/// `column_dominance` of its distinct values, that pattern gains one column
/// of support. Returns the most-supported patterns.
std::vector<MinedPattern> MinePatterns(const table::Corpus& corpus,
                                       const MinerOptions& options = {});

/// Returns the dominant pattern of a single column at the given level, or
/// an empty pattern if no pattern reaches `dominance` over distinct values.
Pattern DominantPattern(const table::Column& column,
                        GeneralizationLevel level, double dominance);

}  // namespace autotest::pattern

#endif  // AUTOTEST_PATTERN_MINER_H_
