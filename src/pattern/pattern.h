#ifndef AUTOTEST_PATTERN_PATTERN_H_
#define AUTOTEST_PATTERN_PATTERN_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace autotest::pattern {

/// Character classes of the restricted pattern language used by
/// pattern-based semantic-type detection (paper Section 3, category 3).
enum class AtomClass {
  kDigit,    // \d
  kAlpha,    // [a-zA-Z]
  kLower,    // [a-z]
  kUpper,    // [A-Z]
  kLiteral,  // a single literal character
};

/// One pattern atom: a character class with a length quantifier.
/// max_len == kUnbounded encodes '+'-style repetition.
struct Atom {
  static constexpr int kUnbounded = -1;

  AtomClass cls = AtomClass::kLiteral;
  char literal = '\0';  // only meaningful for kLiteral
  int min_len = 1;
  int max_len = 1;

  bool MatchesChar(char c) const;
  bool operator==(const Atom& other) const = default;
};

/// A pattern is a sequence of atoms matched against the whole value.
/// Textual syntax (used in mined-rule explanations, mirroring the paper's
/// Table 1): `\d`, `[a-zA-Z]`, `[a-z]`, `[A-Z]` followed by `+` or `{n}`
/// or `{n,m}`; any other character is a literal (backslash escapes).
class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(std::vector<Atom> atoms) : atoms_(std::move(atoms)) {}

  /// Parses the textual syntax; nullopt on malformed input.
  static std::optional<Pattern> Parse(std::string_view text);

  /// Renders the canonical textual form.
  std::string ToString() const;

  /// True if the full value matches the pattern (anchored both ends).
  bool Matches(std::string_view value) const;

  const std::vector<Atom>& atoms() const { return atoms_; }
  bool empty() const { return atoms_.empty(); }

  bool operator==(const Pattern& other) const = default;

 private:
  std::vector<Atom> atoms_;
};

/// How aggressively Generalize abstracts a value.
enum class GeneralizationLevel {
  kExactDigits,  // digit runs keep their exact length: "fy17" -> [a-z]{2}\d{2}
  kGeneral,      // digit runs become \d+: "fy17" -> [a-z]+\d+
};

/// Generalizes a concrete value into a pattern: runs of digits and letters
/// become class atoms; every other character becomes a literal atom.
Pattern Generalize(std::string_view value, GeneralizationLevel level);

}  // namespace autotest::pattern

#endif  // AUTOTEST_PATTERN_PATTERN_H_
