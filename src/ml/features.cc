#include "ml/features.h"

#include <cctype>
#include <cmath>
#include <string>

#include "util/hashing.h"
#include "util/string_util.h"

namespace autotest::ml {

std::vector<float> FeatureExtractor::Extract(std::string_view value) const {
  std::vector<float> out(dim(), 0.0f);

  std::string lowered = util::ToLower(value);
  std::string marked = "^" + lowered + "$";

  for (int n = config_.min_n; n <= config_.max_n; ++n) {
    if (marked.size() < static_cast<size_t>(n)) continue;
    for (size_t i = 0; i + static_cast<size_t>(n) <= marked.size(); ++i) {
      std::string_view gram(marked.data() + i, static_cast<size_t>(n));
      uint64_t h = util::Fnv64Seeded(gram, config_.seed);
      size_t bucket = h % config_.hash_dim;
      // Signed hashing reduces collision bias.
      float sign = (util::SplitMix64(h) & 1) ? 1.0f : -1.0f;
      out[bucket] += sign;
    }
  }
  // L2-normalize the n-gram block.
  double norm = 0.0;
  for (size_t i = 0; i < config_.hash_dim; ++i) {
    norm += static_cast<double>(out[i]) * static_cast<double>(out[i]);
  }
  if (norm > 0.0) {
    float inv = static_cast<float>(1.0 / std::sqrt(norm));
    for (size_t i = 0; i < config_.hash_dim; ++i) out[i] *= inv;
  }

  // Shape features.
  size_t len = value.size();
  size_t digits = 0;
  size_t alphas = 0;
  size_t uppers = 0;
  size_t puncts = 0;
  size_t spaces = 0;
  for (unsigned char c : value) {
    if (std::isdigit(c)) ++digits;
    if (std::isalpha(c)) ++alphas;
    if (std::isupper(c)) ++uppers;
    if (std::ispunct(c)) ++puncts;
    if (std::isspace(c)) ++spaces;
  }
  double dlen = static_cast<double>(len);
  size_t base = config_.hash_dim;
  out[base + 0] = static_cast<float>(std::min(1.0, dlen / 32.0));
  out[base + 1] = len ? static_cast<float>(digits / dlen) : 0.0f;
  out[base + 2] = len ? static_cast<float>(alphas / dlen) : 0.0f;
  out[base + 3] = len ? static_cast<float>(uppers / dlen) : 0.0f;
  out[base + 4] = len ? static_cast<float>(puncts / dlen) : 0.0f;
  out[base + 5] = static_cast<float>(std::min<size_t>(spaces + 1, 5)) / 5.0f;
  out[base + 6] = (len > 0 && std::isdigit(static_cast<unsigned char>(
                                  value.front())))
                      ? 1.0f
                      : 0.0f;
  out[base + 7] = 1.0f;  // bias-like constant feature
  return out;
}

}  // namespace autotest::ml
