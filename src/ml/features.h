#ifndef AUTOTEST_ML_FEATURES_H_
#define AUTOTEST_ML_FEATURES_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace autotest::ml {

/// Configuration for hashed character-n-gram features. Different classifier
/// zoos (sherlock-sim vs doduo-sim) use different seeds/dimensions, so their
/// feature spaces — like the real Sherlock and Doduo — are unrelated.
struct FeatureConfig {
  size_t hash_dim = 248;  // n-gram buckets; total dim = hash_dim + kShapeDims
  int min_n = 2;
  int max_n = 3;
  uint64_t seed = 1;
};

/// Extracts a dense feature vector from a cell value: L2-normalized hashed
/// character n-grams (with ^/$ boundary markers) plus a fixed block of shape
/// features (length, digit/alpha/upper/punct ratios, token count, ...).
class FeatureExtractor {
 public:
  static constexpr size_t kShapeDims = 8;

  explicit FeatureExtractor(const FeatureConfig& config) : config_(config) {}

  size_t dim() const { return config_.hash_dim + kShapeDims; }

  /// Computes the feature vector (lowercased input; values are case-folded
  /// before hashing, with case information preserved in shape features).
  std::vector<float> Extract(std::string_view value) const;

  const FeatureConfig& config() const { return config_; }

 private:
  FeatureConfig config_;
};

}  // namespace autotest::ml

#endif  // AUTOTEST_ML_FEATURES_H_
