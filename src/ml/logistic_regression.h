#ifndef AUTOTEST_ML_LOGISTIC_REGRESSION_H_
#define AUTOTEST_ML_LOGISTIC_REGRESSION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace autotest::ml {

/// Training hyperparameters for binary logistic regression.
struct LogRegConfig {
  int epochs = 25;
  double learning_rate = 0.5;
  double l2 = 1e-4;
  uint64_t seed = 7;
};

/// Dense binary logistic regression trained with shuffled SGD.
/// This is the per-type scorer behind the CTA-sim classifier zoos:
/// Predict() returns P(value belongs to type) in [0, 1].
class LogisticRegression {
 public:
  LogisticRegression() = default;

  /// Trains on feature rows `x` with labels `y` (0/1). All rows must share
  /// the same dimension. Replaces any existing model.
  void Train(const std::vector<std::vector<float>>& x,
             const std::vector<int>& y, const LogRegConfig& config);

  /// Probability of the positive class; 0.5 for an untrained model on any
  /// input of matching dimension.
  double Predict(const std::vector<float>& x) const;

  /// Raw decision value w.x + b.
  double Decision(const std::vector<float>& x) const;

  bool trained() const { return !weights_.empty(); }
  size_t dim() const { return weights_.size(); }

  /// Trained coefficients, exposed for batched multi-model scoring (the
  /// CTA zoo packs all its models' weights into one transposed matrix).
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Numerically stable sigmoid.
double Sigmoid(double z);

}  // namespace autotest::ml

#endif  // AUTOTEST_ML_LOGISTIC_REGRESSION_H_
