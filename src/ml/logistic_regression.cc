#include "ml/logistic_regression.h"

#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace autotest::ml {

double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

void LogisticRegression::Train(const std::vector<std::vector<float>>& x,
                               const std::vector<int>& y,
                               const LogRegConfig& config) {
  AT_CHECK(!x.empty());
  AT_CHECK(x.size() == y.size());
  size_t dim = x.front().size();
  for (const auto& row : x) AT_CHECK(row.size() == dim);

  weights_.assign(dim, 0.0);
  bias_ = 0.0;

  std::vector<size_t> order(x.size());
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(config.seed);

  double n = static_cast<double>(x.size());
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    // 1/sqrt decay keeps early epochs aggressive and late epochs stable.
    double lr = config.learning_rate / std::sqrt(1.0 + epoch);
    for (size_t idx : order) {
      const auto& row = x[idx];
      double z = bias_;
      for (size_t j = 0; j < dim; ++j) {
        z += weights_[j] * static_cast<double>(row[j]);
      }
      double p = Sigmoid(z);
      double g = p - static_cast<double>(y[idx]);
      for (size_t j = 0; j < dim; ++j) {
        weights_[j] -= lr * (g * static_cast<double>(row[j]) +
                             config.l2 * weights_[j] / n);
      }
      bias_ -= lr * g;
    }
  }
}

double LogisticRegression::Decision(const std::vector<float>& x) const {
  AT_CHECK(x.size() == weights_.size());
  double z = bias_;
  for (size_t j = 0; j < weights_.size(); ++j) {
    z += weights_[j] * static_cast<double>(x[j]);
  }
  return z;
}

double LogisticRegression::Predict(const std::vector<float>& x) const {
  if (weights_.empty()) return 0.5;
  return Sigmoid(Decision(x));
}

}  // namespace autotest::ml
