#ifndef AUTOTEST_EVAL_HARNESS_H_
#define AUTOTEST_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "datagen/bench_gen.h"
#include "eval/detector.h"
#include "eval/metrics.h"

namespace autotest::eval {

/// Result of running one detector over one labeled benchmark.
struct BenchmarkRun {
  std::string method;
  std::string benchmark;
  PrCurve curve;
  double pr_auc = 0.0;
  double f1_at_p08 = 0.0;
  double seconds_per_column = 0.0;
  size_t num_predictions = 0;
  size_t total_true_errors = 0;
};

/// Runs the detector over every benchmark column, collects cell-level
/// predictions, and computes the paper's two summary metrics (PR-AUC and
/// F1@P=0.8) plus per-column latency.
BenchmarkRun RunDetector(const ErrorDetector& detector,
                         const datagen::LabeledBenchmark& bench,
                         size_t num_threads = 0);

/// Formats "(F1@P=0.8, PR-AUC)" the way the paper's tables print it.
std::string FormatQuality(const BenchmarkRun& run);

/// Prints a fixed-width table row: method, then (F1, AUC) per run.
std::string FormatTableRow(const std::string& method,
                           const std::vector<BenchmarkRun>& runs);

}  // namespace autotest::eval

#endif  // AUTOTEST_EVAL_HARNESS_H_
