#ifndef AUTOTEST_EVAL_DETECTOR_H_
#define AUTOTEST_EVAL_DETECTOR_H_

#include <string>
#include <vector>

#include "table/column.h"

namespace autotest::eval {

/// One flagged cell with a detection score (higher = more confident).
struct ScoredCell {
  size_t row = 0;
  double score = 0.0;
};

/// Common interface for every error-detection method compared in the
/// paper's Section 6: Auto-Test variants, column-type-detection baselines,
/// outlier detectors, LLM/vendor simulations.
class ErrorDetector {
 public:
  virtual ~ErrorDetector() = default;

  virtual std::string name() const = 0;

  /// Flags suspicious cells of one column. Must be deterministic.
  virtual std::vector<ScoredCell> Detect(const table::Column& column)
      const = 0;
};

}  // namespace autotest::eval

#endif  // AUTOTEST_EVAL_DETECTOR_H_
