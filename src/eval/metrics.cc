#include "eval/metrics.h"

#include <algorithm>

namespace autotest::eval {

PrCurve ComputePrCurve(std::vector<ScoredPrediction> predictions,
                       size_t total_true_errors) {
  PrCurve curve;
  if (predictions.empty() || total_true_errors == 0) return curve;
  std::sort(predictions.begin(), predictions.end(),
            [](const ScoredPrediction& a, const ScoredPrediction& b) {
              return a.score > b.score;
            });
  size_t tp = 0;
  size_t fp = 0;
  double prev_recall = 0.0;
  size_t i = 0;
  while (i < predictions.size()) {
    double s = predictions[i].score;
    // Consume the whole tie group: one operating point per threshold.
    while (i < predictions.size() && predictions[i].score == s) {
      if (predictions[i].is_true_error) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    PrPoint p;
    p.threshold = s;
    p.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
    p.recall =
        static_cast<double>(tp) / static_cast<double>(total_true_errors);
    curve.auc += (p.recall - prev_recall) * p.precision;
    prev_recall = p.recall;
    curve.points.push_back(p);
  }
  return curve;
}

double F1AtPrecision(const PrCurve& curve, double min_precision) {
  double best = 0.0;
  for (const auto& p : curve.points) {
    if (p.precision + 1e-12 < min_precision) continue;
    if (p.precision + p.recall == 0.0) continue;
    double f1 = 2.0 * p.precision * p.recall / (p.precision + p.recall);
    best = std::max(best, f1);
  }
  return best;
}

PrecisionRecall ComputePrecisionRecall(
    const std::vector<ScoredPrediction>& predictions,
    size_t total_true_errors) {
  PrecisionRecall pr;
  pr.predictions = predictions.size();
  for (const auto& p : predictions) {
    if (p.is_true_error) ++pr.true_positives;
  }
  if (pr.predictions > 0) {
    pr.precision = static_cast<double>(pr.true_positives) /
                   static_cast<double>(pr.predictions);
  }
  if (total_true_errors > 0) {
    pr.recall = static_cast<double>(pr.true_positives) /
                static_cast<double>(total_true_errors);
  }
  return pr;
}

}  // namespace autotest::eval
