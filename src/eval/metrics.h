#ifndef AUTOTEST_EVAL_METRICS_H_
#define AUTOTEST_EVAL_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace autotest::eval {

/// One scored cell-level prediction with its ground-truth label.
struct ScoredPrediction {
  size_t column = 0;
  size_t row = 0;
  double score = 0.0;  // higher = more confident it is an error
  bool is_true_error = false;
};

struct PrPoint {
  double precision = 0.0;
  double recall = 0.0;
  double threshold = 0.0;
};

/// Precision-recall curve with area under the curve (step interpolation).
struct PrCurve {
  std::vector<PrPoint> points;  // descending threshold order
  double auc = 0.0;
};

/// Computes the PR curve by sweeping the score threshold. Ties in score are
/// processed together (a single operating point). `total_true_errors` is
/// the number of ground-truth errors in the benchmark (recall denominator).
PrCurve ComputePrCurve(std::vector<ScoredPrediction> predictions,
                       size_t total_true_errors);

/// F1 at high precision (paper Section 6.1): the best F1 among operating
/// points whose precision is at least `min_precision`; 0 if none qualify.
double F1AtPrecision(const PrCurve& curve, double min_precision = 0.8);

/// Precision/recall of a fixed (unthresholded) prediction set.
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  size_t true_positives = 0;
  size_t predictions = 0;
};
PrecisionRecall ComputePrecisionRecall(
    const std::vector<ScoredPrediction>& predictions,
    size_t total_true_errors);

}  // namespace autotest::eval

#endif  // AUTOTEST_EVAL_METRICS_H_
