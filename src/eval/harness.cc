#include "eval/harness.h"

#include <chrono>
#include <cstdio>

#include "util/parallel/thread_pool.h"

namespace autotest::eval {

BenchmarkRun RunDetector(const ErrorDetector& detector,
                         const datagen::LabeledBenchmark& bench,
                         size_t num_threads) {
  BenchmarkRun run;
  run.method = detector.name();
  run.benchmark = bench.name;
  run.total_true_errors = bench.TotalErrors();

  std::vector<std::vector<ScoredCell>> per_column(bench.columns.size());
  auto t0 = std::chrono::steady_clock::now();
  // Per-column detection cost is skewed (column lengths vary widely), so
  // run one column per chunk and let idle workers steal.
  util::parallel::Options par_opt;
  par_opt.num_threads = num_threads;
  par_opt.grain = 1;
  util::parallel::ParallelFor(
      bench.columns.size(),
      [&](size_t c) {
        per_column[c] = detector.Detect(bench.columns[c].column);
      },
      par_opt);
  auto t1 = std::chrono::steady_clock::now();

  std::vector<ScoredPrediction> predictions;
  for (size_t c = 0; c < bench.columns.size(); ++c) {
    for (const auto& cell : per_column[c]) {
      ScoredPrediction p;
      p.column = c;
      p.row = cell.row;
      p.score = cell.score;
      p.is_true_error = bench.columns[c].IsErrorRow(cell.row);
      predictions.push_back(p);
    }
  }
  run.num_predictions = predictions.size();
  run.curve = ComputePrCurve(std::move(predictions), run.total_true_errors);
  run.pr_auc = run.curve.auc;
  run.f1_at_p08 = F1AtPrecision(run.curve, 0.8);
  run.seconds_per_column =
      std::chrono::duration<double>(t1 - t0).count() /
      static_cast<double>(std::max<size_t>(1, bench.columns.size()));
  return run;
}

std::string FormatQuality(const BenchmarkRun& run) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f, %.2f", run.f1_at_p08, run.pr_auc);
  return buf;
}

std::string FormatTableRow(const std::string& method,
                           const std::vector<BenchmarkRun>& runs) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-24s", method.c_str());
  std::string out = buf;
  for (const auto& run : runs) {
    std::snprintf(buf, sizeof(buf), " | %10s", FormatQuality(run).c_str());
    out += buf;
  }
  return out;
}

}  // namespace autotest::eval
