#ifndef AUTOTEST_LP_INCREMENTAL_H_
#define AUTOTEST_LP_INCREMENTAL_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "lp/revised_simplex.h"
#include "lp/simplex.h"

namespace autotest::lp {

/// Warm-started incremental LP solver for column-growing programs.
///
/// The constructor fixes the row skeleton (constraint senses and
/// right-hand sides, plus any initial columns); afterwards columns may be
/// appended with AddVariable or rewritten with ReplaceVariable, and Solve
/// re-prices from the previous optimal basis instead of restarting the
/// two-phase method — a new column enters nonbasic at its lower bound, so
/// an optimal basis stays primal feasible and only dual feasibility has
/// to be restored.
///
/// The wrapped LinearProgram mirror (`program()`) is kept in sync so a
/// reference solver (`SolveLpDense`) can be run on the byte-identical
/// program, which is how the selection layer proves solver equivalence.
class IncrementalSolver {
 public:
  explicit IncrementalSolver(LinearProgram base,
                             RevisedSimplexOptions options = {});

  /// Appends a variable with coefficients `terms` = (row index, coef).
  /// Returns the variable index.
  size_t AddVariable(double objective, double upper,
                     const std::vector<std::pair<size_t, double>>& terms);

  /// Rewrites an existing variable's objective, bound, and column. Warm
  /// starts survive while the variable sits nonbasic at its lower bound
  /// in the previous optimum; otherwise the next Solve restarts cold.
  void ReplaceVariable(size_t var, double objective, double upper,
                       const std::vector<std::pair<size_t, double>>& terms);

  /// Solves (warm-started when possible) and caches the result.
  const Solution& Solve();

  /// Whether the most recent Solve re-priced from a previous optimal
  /// basis rather than running the full two-phase method.
  bool last_solve_was_warm() const { return last_solve_was_warm_; }

  const LinearProgram& program() const { return program_; }
  size_t num_vars() const { return program_.num_vars; }
  size_t num_rows() const { return program_.constraints.size(); }

 private:
  LinearProgram program_;
  RevisedSimplex engine_;
  Solution solution_;
  bool solved_once_ = false;
  bool last_solve_was_warm_ = false;
};

}  // namespace autotest::lp

#endif  // AUTOTEST_LP_INCREMENTAL_H_
