// Reference dense tableau simplex, kept as SolveLpDense so the
// differential harness can prove the sparse revised simplex (SolveLp)
// equivalent. See simplex.h for the deprecation path.

#include <algorithm>
#include <cmath>

#include "lp/simplex.h"
#include "util/check.h"

namespace autotest::lp {

namespace {

constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

// Dense tableau simplex with native variable upper bounds.
//
// Invariant: for each row i, the variable basis[i] is basic with current
// value vals[i]; every nonbasic variable sits at 0 or (if at_upper) at its
// finite upper bound. T is the tableau of the full system after the pivots
// performed so far; d is the reduced-cost row for the current phase.
class Tableau {
 public:
  Tableau(const LinearProgram& lp) {
    n_struct_ = lp.num_vars;
    m_ = lp.constraints.size();

    // Count auxiliary columns.
    size_t num_artificial = 0;
    for (const auto& c : lp.constraints) {
      ConstraintType type = c.type;
      if (c.rhs < 0) type = Flip(type);
      if (type != ConstraintType::kLessEq) ++num_artificial;
    }
    slack_begin_ = n_struct_;
    art_begin_ = n_struct_ + m_;
    n_ = art_begin_ + num_artificial;

    upper_.assign(n_, kInf);
    for (size_t j = 0; j < n_struct_; ++j) upper_[j] = lp.upper_bounds[j];

    t_.assign(m_ * n_, 0.0);
    vals_.assign(m_, 0.0);
    basis_.assign(m_, 0);
    at_upper_.assign(n_, false);
    is_basic_.assign(n_, false);

    size_t art = art_begin_;
    for (size_t i = 0; i < m_; ++i) {
      const Constraint& c = lp.constraints[i];
      double sign = c.rhs < 0 ? -1.0 : 1.0;
      ConstraintType type = c.rhs < 0 ? Flip(c.type) : c.type;
      for (const auto& [var, coef] : c.terms) {
        AT_CHECK(var < n_struct_);
        At(i, var) += sign * coef;
      }
      double rhs = sign * c.rhs;
      size_t slack = slack_begin_ + i;
      switch (type) {
        case ConstraintType::kLessEq:
          At(i, slack) = 1.0;
          SetBasic(i, slack, rhs);
          break;
        case ConstraintType::kGreaterEq:
          At(i, slack) = -1.0;
          At(i, art) = 1.0;
          SetBasic(i, art, rhs);
          ++art;
          break;
        case ConstraintType::kEqual:
          upper_[slack] = 0.0;  // unused slack pinned at zero
          At(i, art) = 1.0;
          SetBasic(i, art, rhs);
          ++art;
          break;
      }
    }
  }

  // Runs both phases; returns the final status.
  SolveStatus Solve(const LinearProgram& lp) {
    if (art_begin_ < n_) {
      // Phase 1: maximize -sum(artificials).
      std::vector<double> cost(n_, 0.0);
      for (size_t j = art_begin_; j < n_; ++j) cost[j] = -1.0;
      SolveStatus s = RunSimplex(cost, /*allow_artificial_entering=*/true);
      if (s != SolveStatus::kOptimal) return s;
      double infeasibility = 0.0;
      for (size_t i = 0; i < m_; ++i) {
        if (basis_[i] >= art_begin_) infeasibility += std::fabs(vals_[i]);
      }
      for (size_t j = art_begin_; j < n_; ++j) {
        if (!is_basic_[j] && at_upper_[j]) infeasibility += upper_[j];
      }
      if (infeasibility > 1e-6) return SolveStatus::kInfeasible;
      DriveOutArtificials();
      for (size_t j = art_begin_; j < n_; ++j) upper_[j] = 0.0;
    }
    // Phase 2.
    std::vector<double> cost(n_, 0.0);
    for (size_t j = 0; j < n_struct_; ++j) cost[j] = lp.objective[j];
    return RunSimplex(cost, /*allow_artificial_entering=*/false);
  }

  void ExtractSolution(const LinearProgram& lp, Solution* out) const {
    out->values.assign(n_struct_, 0.0);
    for (size_t j = 0; j < n_struct_; ++j) {
      if (at_upper_[j]) out->values[j] = upper_[j];
    }
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_struct_) out->values[basis_[i]] = vals_[i];
    }
    out->objective = 0.0;
    for (size_t j = 0; j < n_struct_; ++j) {
      out->objective += lp.objective[j] * out->values[j];
    }
  }

 private:
  static ConstraintType Flip(ConstraintType t) {
    switch (t) {
      case ConstraintType::kLessEq:
        return ConstraintType::kGreaterEq;
      case ConstraintType::kGreaterEq:
        return ConstraintType::kLessEq;
      case ConstraintType::kEqual:
        return ConstraintType::kEqual;
    }
    return t;
  }

  double& At(size_t i, size_t j) { return t_[i * n_ + j]; }
  double At(size_t i, size_t j) const { return t_[i * n_ + j]; }

  void SetBasic(size_t row, size_t var, double value) {
    basis_[row] = var;
    vals_[row] = value;
    is_basic_[var] = true;
  }

  // Computes the reduced-cost row d_j = c_j - sum_i c_basis(i) * T(i, j).
  std::vector<double> ReducedCosts(const std::vector<double>& cost) const {
    std::vector<double> d = cost;
    for (size_t i = 0; i < m_; ++i) {
      double cb = cost[basis_[i]];
      if (cb == 0.0) continue;
      const double* row = &t_[i * n_];
      for (size_t j = 0; j < n_; ++j) d[j] -= cb * row[j];
    }
    return d;
  }

  // After phase 1: pivot basic artificials (at value 0) out of the basis
  // where possible; redundant rows keep their artificial pinned at 0.
  void DriveOutArtificials() {
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] < art_begin_) continue;
      size_t pivot_col = n_;
      for (size_t j = 0; j < art_begin_; ++j) {
        if (!is_basic_[j] && std::fabs(At(i, j)) > 1e-7) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col == n_) continue;  // redundant row
      Pivot(i, pivot_col, nullptr);
      at_upper_[pivot_col] = false;
    }
  }

  // Performs the elimination step of a pivot at (row, col). If d is
  // non-null the reduced-cost row is updated too. Basis bookkeeping
  // included; vals_ must already reflect the post-pivot basic values except
  // vals_[row], which the caller sets (or is preserved for degenerate
  // drive-out pivots where the value stays 0).
  void Pivot(size_t row, size_t col, std::vector<double>* d) {
    double piv = At(row, col);
    AT_CHECK(std::fabs(piv) > 1e-12);
    double inv = 1.0 / piv;
    double* prow = &t_[row * n_];
    for (size_t j = 0; j < n_; ++j) prow[j] *= inv;
    prow[col] = 1.0;  // exact
    for (size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      double f = At(i, col);
      if (f == 0.0) continue;
      double* irow = &t_[i * n_];
      for (size_t j = 0; j < n_; ++j) irow[j] -= f * prow[j];
      irow[col] = 0.0;  // exact
    }
    if (d != nullptr) {
      double f = (*d)[col];
      if (f != 0.0) {
        for (size_t j = 0; j < n_; ++j) (*d)[j] -= f * prow[j];
        (*d)[col] = 0.0;
      }
    }
    is_basic_[basis_[row]] = false;
    basis_[row] = col;
    is_basic_[col] = true;
  }

  SolveStatus RunSimplex(const std::vector<double>& cost,
                         bool allow_artificial_entering) {
    std::vector<double> d = ReducedCosts(cost);
    size_t limit_cols = allow_artificial_entering ? n_ : art_begin_;
    size_t max_iter = 200 * (m_ + n_) + 1000;
    size_t bland_after = 20 * (m_ + n_) + 200;

    for (size_t iter = 0; iter < max_iter; ++iter) {
      bool bland = iter >= bland_after;
      // Entering variable.
      size_t e = n_;
      double best = kEps;
      for (size_t j = 0; j < limit_cols; ++j) {
        if (is_basic_[j]) continue;
        if (upper_[j] == 0.0) continue;  // pinned
        double improvement = at_upper_[j] ? -d[j] : d[j];
        if (improvement > kEps) {
          if (bland) {
            e = j;
            break;
          }
          if (improvement > best) {
            best = improvement;
            e = j;
          }
        }
      }
      if (e == n_) return SolveStatus::kOptimal;

      double sigma = at_upper_[e] ? -1.0 : 1.0;
      // Ratio test.
      double t_best = upper_[e] == kInf ? kInf : upper_[e];
      size_t leave_row = m_;  // m_ = none (bound flip)
      bool leave_to_upper = false;
      for (size_t i = 0; i < m_; ++i) {
        double a = sigma * At(i, e);
        double t;
        bool to_upper;
        if (a > kEps) {
          t = std::max(0.0, vals_[i]) / a;
          to_upper = false;
        } else if (a < -kEps && upper_[basis_[i]] != kInf) {
          t = std::max(0.0, upper_[basis_[i]] - vals_[i]) / (-a);
          to_upper = true;
        } else {
          continue;
        }
        bool better = t < t_best - kEps;
        bool tie = !better && t < t_best + kEps;
        if (better ||
            (tie && (leave_row == m_ ||
                     (bland && leave_row != m_ &&
                      basis_[i] < basis_[leave_row])))) {
          t_best = t;
          leave_row = i;
          leave_to_upper = to_upper;
        }
      }
      if (t_best == kInf) return SolveStatus::kUnbounded;

      if (leave_row == m_) {
        // Bound flip: the entering variable jumps to its other bound.
        for (size_t i = 0; i < m_; ++i) {
          vals_[i] -= sigma * upper_[e] * At(i, e);
        }
        at_upper_[e] = !at_upper_[e];
        continue;
      }

      size_t l = basis_[leave_row];
      double entering_value = (at_upper_[e] ? upper_[e] : 0.0) +
                              sigma * t_best;
      for (size_t i = 0; i < m_; ++i) {
        if (i != leave_row) vals_[i] -= sigma * t_best * At(i, e);
      }
      Pivot(leave_row, e, &d);
      vals_[leave_row] = entering_value;
      at_upper_[e] = false;
      at_upper_[l] = leave_to_upper && upper_[l] != kInf;
    }
    return SolveStatus::kIterationLimit;
  }

  size_t n_struct_ = 0;
  size_t m_ = 0;
  size_t n_ = 0;
  size_t slack_begin_ = 0;
  size_t art_begin_ = 0;
  std::vector<double> t_;
  std::vector<double> vals_;
  std::vector<size_t> basis_;
  std::vector<bool> at_upper_;
  std::vector<bool> is_basic_;
  std::vector<double> upper_;
};

}  // namespace

Solution SolveLpDense(const LinearProgram& lp) {
  AT_CHECK(lp.objective.size() == lp.num_vars);
  AT_CHECK(lp.upper_bounds.size() == lp.num_vars);
  Solution out;
  if (lp.num_vars == 0 && lp.constraints.empty()) {
    // Empty LP: trivially optimal at objective 0 (regression: the
    // Solution default of kIterationLimit must not leak out).
    out.status = SolveStatus::kOptimal;
    return out;
  }
  Tableau tableau(lp);
  out.status = tableau.Solve(lp);
  if (out.status == SolveStatus::kOptimal) {
    tableau.ExtractSolution(lp, &out);
  }
  return out;
}

}  // namespace autotest::lp
