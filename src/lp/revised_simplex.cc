#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace autotest::lp {

namespace {

constexpr double kEps = 1e-9;
// Relative scale of the anti-degeneracy rhs shift applied during the main
// phase-2 run of a cold solve (see SolveFromScratch).
constexpr double kDegenShift = 1e-7;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr uint32_t kNoPos = 0xffffffffu;
// Eta entries below this magnitude are dropped; the periodic
// refactorization bounds the accumulated error.
constexpr double kEtaDropTol = 1e-13;

ConstraintType FlipType(ConstraintType t) {
  switch (t) {
    case ConstraintType::kLessEq:
      return ConstraintType::kGreaterEq;
    case ConstraintType::kGreaterEq:
      return ConstraintType::kLessEq;
    case ConstraintType::kEqual:
      return ConstraintType::kEqual;
  }
  return t;
}

}  // namespace

RevisedSimplex::RevisedSimplex(const LinearProgram& lp,
                               RevisedSimplexOptions options)
    : options_(options) {
  AT_CHECK(lp.objective.size() == lp.num_vars);
  AT_CHECK(lp.upper_bounds.size() == lp.num_vars);
  m_ = lp.constraints.size();
  row_sign_.assign(m_, 1.0);
  rhs_.assign(m_, 0.0);

  std::vector<ConstraintType> type(m_, ConstraintType::kLessEq);
  size_t num_artificial = 0;
  for (size_t i = 0; i < m_; ++i) {
    const Constraint& c = lp.constraints[i];
    double sign = c.rhs < 0 ? -1.0 : 1.0;
    row_sign_[i] = sign;
    rhs_[i] = sign * c.rhs;
    type[i] = sign < 0 ? FlipType(c.type) : c.type;
    if (type[i] != ConstraintType::kLessEq) ++num_artificial;
  }
  art_begin_ = m_;
  struct_begin_ = m_ + num_artificial;

  cols_.resize(struct_begin_);
  obj_.assign(struct_begin_, 0.0);
  upper_.assign(struct_begin_, kInf);
  vstate_.assign(struct_begin_, VState::kAtLower);
  basis_pos_.assign(struct_begin_, kNoPos);

  size_t art = art_begin_;
  for (size_t i = 0; i < m_; ++i) {
    switch (type[i]) {
      case ConstraintType::kLessEq:
        cols_[i].Push(static_cast<uint32_t>(i), 1.0);
        break;
      case ConstraintType::kGreaterEq:
        cols_[i].Push(static_cast<uint32_t>(i), -1.0);
        cols_[art].Push(static_cast<uint32_t>(i), 1.0);
        ++art;
        break;
      case ConstraintType::kEqual:
        // Unused slack pinned at zero, exactly like the dense tableau.
        cols_[i].Push(static_cast<uint32_t>(i), 1.0);
        upper_[i] = 0.0;
        cols_[art].Push(static_cast<uint32_t>(i), 1.0);
        ++art;
        break;
    }
  }

  // Gather the structural columns (column-major) from the row-major
  // constraint terms.
  std::vector<std::vector<std::pair<size_t, double>>> per_var(lp.num_vars);
  for (size_t i = 0; i < m_; ++i) {
    for (const auto& [var, coef] : lp.constraints[i].terms) {
      AT_CHECK(var < lp.num_vars);
      per_var[var].push_back({i, coef});
    }
  }
  for (size_t j = 0; j < lp.num_vars; ++j) {
    AddStructural(lp.objective[j], lp.upper_bounds[j], per_var[j]);
  }
}

void RevisedSimplex::SetColumn(
    size_t internal_j, const std::vector<std::pair<size_t, double>>& terms) {
  // Sum duplicate rows and apply the row sign normalization.
  rows_dirty_ = true;
  std::vector<std::pair<size_t, double>> sorted = terms;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SparseColumn& col = cols_[internal_j];
  col.Clear();
  size_t i = 0;
  while (i < sorted.size()) {
    size_t row = sorted[i].first;
    AT_CHECK(row < m_);
    double v = 0.0;
    while (i < sorted.size() && sorted[i].first == row) {
      v += sorted[i].second;
      ++i;
    }
    if (v != 0.0) col.Push(static_cast<uint32_t>(row), row_sign_[row] * v);
  }
}

size_t RevisedSimplex::AddStructural(
    double objective, double upper,
    const std::vector<std::pair<size_t, double>>& terms) {
  size_t var = num_struct_++;
  cols_.emplace_back();
  obj_.push_back(objective);
  upper_.push_back(upper);
  vstate_.push_back(VState::kAtLower);
  basis_pos_.push_back(kNoPos);
  SetColumn(InternalOf(var), terms);
  return var;
}

void RevisedSimplex::ReplaceStructural(
    size_t var, double objective, double upper,
    const std::vector<std::pair<size_t, double>>& terms) {
  AT_CHECK(var < num_struct_);
  size_t j = InternalOf(var);
  if (vstate_[j] != VState::kAtLower) {
    // The basis (or the nonbasic contribution to xB) depended on the old
    // column; force a cold restart on the next solve.
    basis_valid_ = false;
    factor_valid_ = false;
  }
  obj_[j] = objective;
  upper_[j] = upper;
  SetColumn(j, terms);
}

void RevisedSimplex::ResetToInitialBasis() {
  basis_.assign(m_, 0);
  std::fill(basis_pos_.begin(), basis_pos_.end(), kNoPos);
  std::fill(vstate_.begin(), vstate_.end(), VState::kAtLower);
  // Un-pin the artificials for a fresh phase 1.
  for (size_t j = art_begin_; j < struct_begin_; ++j) upper_[j] = kInf;
  artificials_pinned_ = false;

  // Crash pass (Bixby-style, restricted to the safe case): a structural
  // singleton column can seed the basis of its row instead of the slack
  // when its basic value rhs/a lands inside [0, upper]. The basis stays
  // diagonal, hence trivially nonsingular and primal feasible, and the
  // pivots that would otherwise pull these columns in are saved. Prefer
  // the highest objective, then the lowest column index (deterministic).
  std::vector<uint32_t> crash(m_, kNoPos);
  for (size_t j = struct_begin_; j < cols_.size(); ++j) {
    if (cols_[j].nnz() != 1) continue;
    uint32_t r = cols_[j].rows[0];
    double a = cols_[j].vals[0];
    if (a <= 0.0) continue;
    double value = rhs_[r] / a;
    if (value < 0.0 || value > upper_[j]) continue;
    uint32_t cur = crash[r];
    if (cur == kNoPos || obj_[j] > obj_[cur]) crash[r] = static_cast<uint32_t>(j);
  }

  xB_ = rhs_;
  size_t art = art_begin_;
  for (size_t i = 0; i < m_; ++i) {
    // LE rows have a +1 basic slack; GE/EQ rows carry an artificial. The
    // slack column of a GE row has coefficient -1, EQ slacks are pinned —
    // both are recognizable from the stored column/upper.
    bool needs_artificial =
        (cols_[i].nnz() == 1 && cols_[i].vals[0] < 0.0) || upper_[i] == 0.0;
    uint32_t b;
    if (needs_artificial) {
      b = static_cast<uint32_t>(art++);
    } else if (crash[i] != kNoPos) {
      b = crash[i];
      xB_[i] = rhs_[i] / cols_[b].vals[0];
    } else {
      b = static_cast<uint32_t>(i);
    }
    basis_[i] = b;
    basis_pos_[b] = static_cast<uint32_t>(i);
    vstate_[b] = VState::kBasic;
  }
  AT_CHECK(art == struct_begin_);
  etas_.clear();
  factor_valid_ = false;
  basis_valid_ = false;
}

bool RevisedSimplex::Refactorize() {
  std::vector<const SparseColumn*> cols(m_);
  for (size_t k = 0; k < m_; ++k) cols[k] = &cols_[basis_[k]];
  if (!lu_.Factorize(cols, options_.pivot_tol)) return false;
  etas_.clear();
  eta_nnz_ = 0;
  factor_valid_ = true;
  // Recompute the basic values from scratch: xB = B^{-1} (b - N_u u),
  // killing the error accumulated by incremental updates.
  std::vector<double>& r = rhs_work_;
  r = rhs_;
  for (size_t j = 0; j < cols_.size(); ++j) {
    if (vstate_[j] != VState::kAtUpper || upper_[j] == 0.0) continue;
    const SparseColumn& col = cols_[j];
    for (size_t i = 0; i < col.nnz(); ++i) {
      r[col.rows[i]] -= col.vals[i] * upper_[j];
    }
  }
  lu_.SolveForward(r, &xB_);
  return true;
}

void RevisedSimplex::Ftran(std::vector<double>* w) const {
  lu_.SolveForward(*w, &ftran_buf_);
  std::vector<double>& y = ftran_buf_;
  for (const Eta& e : etas_) {
    double zp = y[e.pos] / e.d_pos;
    if (zp != 0.0) {
      for (const auto& [i, di] : e.others) y[i] -= di * zp;
    }
    y[e.pos] = zp;
  }
  w->swap(y);
}

void RevisedSimplex::Btran(std::vector<double>* y) const {
  std::vector<double>& c = *y;
  for (size_t t = etas_.size(); t-- > 0;) {
    const Eta& e = etas_[t];
    double s = c[e.pos];
    for (const auto& [i, di] : e.others) s -= di * c[i];
    c[e.pos] = s / e.d_pos;
  }
  lu_.SolveTranspose(c, &btran_buf_);
  y->swap(btran_buf_);
}

SolveStatus RevisedSimplex::RunSimplex(const std::vector<double>& cost,
                                       bool allow_artificial_entering) {
  const size_t n_total = cols_.size();
  const size_t max_iter = 200 * (m_ + n_total) + 1000;
  const size_t bland_after = 20 * (m_ + n_total) + 200;

  // Reduced costs are maintained across pivots via the pivot row (the same
  // sweep that feeds the devex weights) and recomputed from pi = B^{-T} c_B
  // at every refactorization, which bounds the drift. Devex reference
  // weights start at 1 and persist across refactorizations — they encode
  // pivot history, not the factorization.
  auto recompute_reduced_costs = [&]() {
    cb_buf_.assign(m_, 0.0);
    for (size_t k = 0; k < m_; ++k) cb_buf_[k] = Cost(cost, basis_[k]);
    pi_buf_ = cb_buf_;
    Btran(&pi_buf_);
    d_buf_.assign(n_total, 0.0);
    for (size_t j = 0; j < n_total; ++j) {
      if (vstate_[j] == VState::kBasic || upper_[j] == 0.0) continue;
      const SparseColumn& col = cols_[j];
      double d = Cost(cost, j);
      for (size_t i = 0; i < col.nnz(); ++i) {
        d -= pi_buf_[col.rows[i]] * col.vals[i];
      }
      d_buf_[j] = d;
    }
  };
  devex_buf_.assign(n_total, 1.0);
  bool d_valid = false;

  if (rows_dirty_) {
    rows_.resize(m_);
    for (auto& r : rows_) r.Clear();
    for (size_t j = 0; j < n_total; ++j) {
      const SparseColumn& col = cols_[j];
      for (size_t i = 0; i < col.nnz(); ++i) {
        rows_[col.rows[i]].Push(static_cast<uint32_t>(j), col.vals[i]);
      }
    }
    rows_dirty_ = false;
  }
  alpha_buf_.assign(n_total, 0.0);
  alpha_mark_.assign(n_total, 0);

  for (size_t iter = 0; iter < max_iter; ++iter) {
    ++total_iterations_;
    // Refactorize on cadence, or early once the eta file costs more to
    // apply than a fresh factorization would (dense etas accumulate fast
    // on degenerate instances).
    if (!factor_valid_ || etas_.size() >= options_.refactor_interval ||
        eta_nnz_ > 4 * (lu_.factor_nnz() + m_)) {
      if (!Refactorize()) return SolveStatus::kIterationLimit;
      ++total_refactorizations_;
      d_valid = false;
    }
    const bool bland = iter >= bland_after;
    // Bland's anti-cycling guarantee needs exact reduced costs, so the
    // maintained ones are not trusted once the fallback engages.
    if (bland) d_valid = false;
    bool just_recomputed = !d_valid;
    if (!d_valid) {
      recompute_reduced_costs();
      d_valid = true;
    }

    // Devex pricing over the maintained reduced costs: maximize
    // improvement^2 / weight (ties toward the lowest index).
    size_t e = n_total;
    double best = 0.0;
    for (size_t j = 0; j < n_total; ++j) {
      if (vstate_[j] == VState::kBasic) continue;
      if (upper_[j] == 0.0) continue;  // pinned
      if (!allow_artificial_entering && j >= art_begin_ && j < struct_begin_) {
        continue;
      }
      double improvement =
          vstate_[j] == VState::kAtUpper ? -d_buf_[j] : d_buf_[j];
      if (improvement > kEps) {
        if (bland) {
          e = j;
          break;
        }
        double score = improvement * improvement / devex_buf_[j];
        if (score > best) {
          best = score;
          e = j;
        }
      }
    }
    if (e == n_total) {
      if (just_recomputed) return SolveStatus::kOptimal;
      // The maintained reduced costs may have drifted; confirm optimality
      // against freshly computed ones before declaring it.
      d_valid = false;
      continue;
    }

    const double sigma = vstate_[e] == VState::kAtUpper ? -1.0 : 1.0;

    // w = B^{-1} a_e.
    w_buf_.assign(m_, 0.0);
    {
      const SparseColumn& col = cols_[e];
      for (size_t i = 0; i < col.nnz(); ++i) w_buf_[col.rows[i]] = col.vals[i];
    }
    Ftran(&w_buf_);

    // Guard against drift in the maintained reduced cost: the exact value
    // is a cheap dot product once w is available. A pick that is not truly
    // improving forces a full recompute instead of a bogus pivot.
    double d_exact = Cost(cost, e);
    for (size_t k = 0; k < m_; ++k) d_exact -= cb_buf_[k] * w_buf_[k];
    if ((vstate_[e] == VState::kAtUpper ? -d_exact : d_exact) <= kEps) {
      d_buf_[e] = d_exact;
      d_valid = false;
      continue;
    }
    d_buf_[e] = d_exact;

    // Ratio test (same semantics and tie-breaks as the dense tableau).
    double t_best = upper_[e] == kInf ? kInf : upper_[e];
    size_t leave_row = m_;  // m_ = none (bound flip)
    bool leave_to_upper = false;
    for (size_t i = 0; i < m_; ++i) {
      double a = sigma * w_buf_[i];
      double t;
      bool to_upper;
      if (a > kEps) {
        t = std::max(0.0, xB_[i]) / a;
        to_upper = false;
      } else if (a < -kEps && upper_[basis_[i]] != kInf) {
        t = std::max(0.0, upper_[basis_[i]] - xB_[i]) / (-a);
        to_upper = true;
      } else {
        continue;
      }
      bool better = t < t_best - kEps;
      bool tie = !better && t < t_best + kEps;
      if (better || (tie && (leave_row == m_ ||
                             (bland && leave_row != m_ &&
                              basis_[i] < basis_[leave_row])))) {
        t_best = t;
        leave_row = i;
        leave_to_upper = to_upper;
      }
    }
    if (t_best == kInf) return SolveStatus::kUnbounded;

    if (leave_row == m_) {
      // Bound flip: the entering variable jumps to its other bound. The
      // basis is unchanged, so reduced costs and devex weights stay valid.
      for (size_t i = 0; i < m_; ++i) {
        if (w_buf_[i] != 0.0) xB_[i] -= sigma * upper_[e] * w_buf_[i];
      }
      vstate_[e] = vstate_[e] == VState::kAtUpper ? VState::kAtLower
                                                  : VState::kAtUpper;
      continue;
    }

    // Pivot row rho = B^{-T} e_r: feeds both the reduced-cost update
    // d_j -= (d_e / alpha_e) alpha_j and the devex weight update, with
    // alpha_j = rho . a_j gathered row-major over the nonzeros of rho.
    rho_buf_.assign(m_, 0.0);
    rho_buf_[leave_row] = 1.0;
    Btran(&rho_buf_);
    const double alpha_e = w_buf_[leave_row];
    const double ratio = d_exact / alpha_e;
    const double ge_over_ae2 = devex_buf_[e] / (alpha_e * alpha_e);
    touched_.clear();
    for (size_t r = 0; r < m_; ++r) {
      double rv = rho_buf_[r];
      if (rv == 0.0) continue;
      const SparseColumn& row = rows_[r];
      for (size_t i = 0; i < row.nnz(); ++i) {
        uint32_t j = row.rows[i];
        if (!alpha_mark_[j]) {
          alpha_mark_[j] = 1;
          alpha_buf_[j] = 0.0;
          touched_.push_back(j);
        }
        alpha_buf_[j] += rv * row.vals[i];
      }
    }
    for (uint32_t j : touched_) {
      alpha_mark_[j] = 0;
      if (vstate_[j] == VState::kBasic || upper_[j] == 0.0) continue;
      double alpha = alpha_buf_[j];
      if (alpha == 0.0) continue;
      d_buf_[j] -= ratio * alpha;
      double g = alpha * alpha * ge_over_ae2;
      if (g > devex_buf_[j]) devex_buf_[j] = g;
    }

    const uint32_t l = basis_[leave_row];
    const double entering_value =
        (vstate_[e] == VState::kAtUpper ? upper_[e] : 0.0) + sigma * t_best;
    for (size_t i = 0; i < m_; ++i) {
      if (i != leave_row) xB_[i] -= sigma * t_best * w_buf_[i];
    }
    xB_[leave_row] = entering_value;

    // Product-form update: record eta for w, then swap basis roles.
    Eta eta;
    eta.pos = static_cast<uint32_t>(leave_row);
    eta.d_pos = w_buf_[leave_row];
    AT_CHECK(std::fabs(eta.d_pos) > 1e-12);
    for (size_t i = 0; i < m_; ++i) {
      if (i != leave_row && std::fabs(w_buf_[i]) > kEtaDropTol) {
        eta.others.push_back({static_cast<uint32_t>(i), w_buf_[i]});
      }
    }
    eta_nnz_ += eta.others.size() + 1;
    etas_.push_back(std::move(eta));

    basis_[leave_row] = static_cast<uint32_t>(e);
    basis_pos_[e] = static_cast<uint32_t>(leave_row);
    vstate_[e] = VState::kBasic;
    basis_pos_[l] = kNoPos;
    vstate_[l] = (leave_to_upper && upper_[l] != kInf) ? VState::kAtUpper
                                                       : VState::kAtLower;
    d_buf_[e] = 0.0;
    d_buf_[l] = -ratio;
    devex_buf_[l] = std::max(ge_over_ae2, 1.0);
    cb_buf_[leave_row] = Cost(cost, e);
  }
  return SolveStatus::kIterationLimit;
}

SolveStatus RevisedSimplex::SolveFromScratch() {
  ResetToInitialBasis();
  if (struct_begin_ > art_begin_) {
    // Phase 1: maximize -sum(artificials).
    cost_buf_.assign(cols_.size(), 0.0);
    for (size_t j = art_begin_; j < struct_begin_; ++j) cost_buf_[j] = -1.0;
    SolveStatus s = RunSimplex(cost_buf_, /*allow_artificial_entering=*/true);
    if (s != SolveStatus::kOptimal) return s;
    double infeasibility = 0.0;
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] >= art_begin_ && basis_[i] < struct_begin_) {
        infeasibility += std::fabs(xB_[i]);
      }
    }
    if (infeasibility > 1e-6) return SolveStatus::kInfeasible;
    // Keep any residual basic artificials pinned at zero; the ratio test
    // forces them out (or keeps them degenerate) in phase 2.
    for (size_t j = art_begin_; j < struct_begin_; ++j) {
      upper_[j] = 0.0;
      if (vstate_[j] == VState::kAtUpper) vstate_[j] = VState::kAtLower;
    }
  }
  artificials_pinned_ = true;
  // Anti-degeneracy shift: zero-rhs rows make most phase-2 pivots
  // degenerate (zero step length), so the main run works on a rhs nudged
  // by a tiny deterministic per-row amount that breaks the ties. A final
  // run on the exact rhs restores the true optimum; it starts from the
  // perturbed optimal basis and almost always needs only a handful of
  // pivots. Infeasibility was already decided by phase 1 on exact data,
  // and an unbounded ray is rhs-independent, so those statuses pass
  // straight through.
  std::vector<double> rhs_saved = rhs_;
  for (size_t i = 0; i < m_; ++i) {
    double jitter =
        static_cast<double>(SplitMix64(i) >> 11) * 0x1.0p-53;
    rhs_[i] += kDegenShift * (1.0 + jitter) * (1.0 + rhs_[i]);
  }
  factor_valid_ = false;  // recompute xB against the shifted rhs
  SolveStatus s = RunSimplex(obj_, /*allow_artificial_entering=*/false);
  rhs_ = std::move(rhs_saved);
  factor_valid_ = false;  // recompute xB against the exact rhs
  if (s == SolveStatus::kOptimal) {
    s = RunSimplex(obj_, /*allow_artificial_entering=*/false);
  }
  basis_valid_ = s == SolveStatus::kOptimal;
  return s;
}

SolveStatus RevisedSimplex::ReOptimize() {
  if (!basis_valid_) return SolveFromScratch();
  SolveStatus s = RunSimplex(obj_, /*allow_artificial_entering=*/false);
  basis_valid_ = s == SolveStatus::kOptimal;
  return s;
}

void RevisedSimplex::Extract(Solution* out) const {
  out->values.assign(num_struct_, 0.0);
  out->objective = 0.0;
  for (size_t j = 0; j < num_struct_; ++j) {
    size_t in = struct_begin_ + j;
    double v = 0.0;
    switch (vstate_[in]) {
      case VState::kAtLower:
        v = 0.0;
        break;
      case VState::kAtUpper:
        v = upper_[in];
        break;
      case VState::kBasic:
        v = xB_[basis_pos_[in]];
        break;
    }
    out->values[j] = v;
    out->objective += obj_[in] * v;
  }
}

}  // namespace autotest::lp
