#ifndef AUTOTEST_LP_SPARSE_LU_H_
#define AUTOTEST_LP_SPARSE_LU_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace autotest::lp {

/// One sparse column: parallel (row, value) arrays.
struct SparseColumn {
  std::vector<uint32_t> rows;
  std::vector<double> vals;

  void Clear() {
    rows.clear();
    vals.clear();
  }
  void Push(uint32_t row, double val) {
    rows.push_back(row);
    vals.push_back(val);
  }
  size_t nnz() const { return rows.size(); }
};

/// Sparse LU factorization of a square basis matrix B given by columns,
/// using the Gilbert-Peierls left-looking algorithm: each column is
/// eliminated with a sparse triangular solve whose nonzero pattern is
/// discovered by depth-first search over the partially built L, followed
/// by partial pivoting over the not-yet-pivotal rows.
///
/// Columns are processed in position order, so elimination step k
/// corresponds to basis position k; `pivot_row(k)` is the matrix row
/// chosen as the k-th pivot. The factorization satisfies (conceptually)
/// P B = L U with L unit-lower-triangular and U upper-triangular in the
/// (step, position) ordering.
class SparseLu {
 public:
  /// Factorizes the m x m matrix whose k-th column is `cols[k]`.
  /// Returns false if the matrix is numerically singular (a pivot below
  /// `pivot_tol` in absolute value); the factorization is then unusable.
  bool Factorize(const std::vector<const SparseColumn*>& cols,
                 double pivot_tol = 1e-11);

  /// Solves B x = b. `b` is a dense row-space vector of size m and is
  /// left unmodified; `x` is dense in position space (x[k] multiplies
  /// basis column k). Aliasing x with b is not allowed.
  void SolveForward(const std::vector<double>& b, std::vector<double>* x) const;

  /// Solves B' y = c. `c` is dense in position space; `y` is dense in
  /// row space. Aliasing is not allowed.
  void SolveTranspose(const std::vector<double>& c,
                      std::vector<double>* y) const;

  size_t dim() const { return m_; }
  uint32_t pivot_row(size_t k) const { return pivot_row_[k]; }
  /// Total stored nonzeros in L and U (a growth diagnostic).
  size_t factor_nnz() const { return factor_nnz_; }

 private:
  size_t m_ = 0;
  size_t factor_nnz_ = 0;
  // L columns: multipliers at non-yet-pivotal matrix rows (unit diagonal
  // implicit). Row indices are matrix rows; each becomes pivotal at a
  // later step, recorded in row_step_.
  std::vector<SparseColumn> l_cols_;
  // U columns: entries (earlier step t, value) plus the diagonal.
  std::vector<SparseColumn> u_cols_;
  std::vector<double> u_diag_;
  std::vector<uint32_t> pivot_row_;  // step -> matrix row
  std::vector<uint32_t> row_step_;   // matrix row -> step
  // Fill-reducing column permutation: elimination step -> basis position.
  std::vector<uint32_t> col_of_step_;
  std::vector<uint32_t> row_degree_;
  // Scratch reused across Factorize and the (logically const) solves.
  mutable std::vector<double> work_;
  mutable std::vector<double> step_work_;
  std::vector<uint32_t> order_;
  std::vector<uint32_t> steps_;
  std::vector<uint32_t> stack_;
  std::vector<uint32_t> stack_pos_;
  std::vector<uint32_t> pattern_;
  std::vector<uint8_t> visited_;
};

}  // namespace autotest::lp

#endif  // AUTOTEST_LP_SPARSE_LU_H_
