#ifndef AUTOTEST_LP_SIMPLEX_H_
#define AUTOTEST_LP_SIMPLEX_H_

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace autotest::lp {

/// Constraint sense.
enum class ConstraintType { kLessEq, kGreaterEq, kEqual };

/// One linear constraint: sum(coef * x[var]) <type> rhs.
struct Constraint {
  std::vector<std::pair<size_t, double>> terms;  // (variable index, coef)
  ConstraintType type = ConstraintType::kLessEq;
  double rhs = 0.0;
};

/// A linear program in maximization form with variable bounds
/// 0 <= x_j <= upper_bounds[j] (may be +infinity).
struct LinearProgram {
  size_t num_vars = 0;
  std::vector<double> objective;     // size num_vars; maximize c'x
  std::vector<double> upper_bounds;  // size num_vars; use kInfinity
  std::vector<Constraint> constraints;

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// Adds a variable; returns its index.
  size_t AddVariable(double objective_coef, double upper_bound = kInfinity);
  /// Adds a constraint; returns its index.
  size_t AddConstraint(Constraint c);
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* SolveStatusName(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;  // size num_vars when kOptimal
};

/// Solves the LP with the sparse revised simplex (column-major sparse
/// storage, LU-factorized basis with a product-form eta file and periodic
/// refactorization, Dantzig pricing over nonzeros with a Bland
/// anti-cycling fallback, native variable upper bounds). An empty LP
/// (0 variables, 0 constraints) returns kOptimal with objective 0.
Solution SolveLp(const LinearProgram& lp);

/// Reference implementation: dense two-phase tableau simplex with the same
/// contract as SolveLp. Kept compiled so the differential test harness
/// (tests/lp_differential_test.cc) can prove the sparse solver equivalent,
/// and as the `SelectionSolver::kDenseTableau` opt-in. Deprecation path:
/// the dense path stays until two consecutive re-anchors of ROADMAP.md
/// report no differential divergence, after which it can be folded into
/// the test tree; it must never grow features the sparse solver lacks.
Solution SolveLpDense(const LinearProgram& lp);

}  // namespace autotest::lp

#endif  // AUTOTEST_LP_SIMPLEX_H_
