#ifndef AUTOTEST_LP_SIMPLEX_H_
#define AUTOTEST_LP_SIMPLEX_H_

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace autotest::lp {

/// Constraint sense.
enum class ConstraintType { kLessEq, kGreaterEq, kEqual };

/// One linear constraint: sum(coef * x[var]) <type> rhs.
struct Constraint {
  std::vector<std::pair<size_t, double>> terms;  // (variable index, coef)
  ConstraintType type = ConstraintType::kLessEq;
  double rhs = 0.0;
};

/// A linear program in maximization form with variable bounds
/// 0 <= x_j <= upper_bounds[j] (may be +infinity).
struct LinearProgram {
  size_t num_vars = 0;
  std::vector<double> objective;     // size num_vars; maximize c'x
  std::vector<double> upper_bounds;  // size num_vars; use kInfinity
  std::vector<Constraint> constraints;

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// Adds a variable; returns its index.
  size_t AddVariable(double objective_coef, double upper_bound = kInfinity);
  /// Adds a constraint; returns its index.
  size_t AddConstraint(Constraint c);
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* SolveStatusName(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;  // size num_vars when kOptimal
};

/// Solves the LP with a dense two-phase primal simplex supporting variable
/// upper bounds natively (bound flips), Dantzig pricing with a Bland
/// fallback for anti-cycling. Exact for the LP sizes Auto-Test produces
/// after its preprocessing (a few thousand variables/rows).
Solution SolveLp(const LinearProgram& lp);

}  // namespace autotest::lp

#endif  // AUTOTEST_LP_SIMPLEX_H_
