#ifndef AUTOTEST_LP_REVISED_SIMPLEX_H_
#define AUTOTEST_LP_REVISED_SIMPLEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/simplex.h"
#include "lp/sparse_lu.h"

namespace autotest::lp {

/// Tuning knobs for the sparse revised simplex.
struct RevisedSimplexOptions {
  /// Product-form eta vectors accumulated between LU refactorizations.
  size_t refactor_interval = 64;
  /// Absolute pivot threshold below which a basis is declared singular.
  double pivot_tol = 1e-11;
};

/// Sparse revised simplex engine: column-major sparse constraint storage,
/// LU-factorized basis with a product-form eta file and periodic
/// refactorization, Dantzig pricing over column nonzeros with a Bland
/// anti-cycling fallback, and native variable upper bounds (bound flips).
///
/// Internal column layout: row slacks occupy [0, m), artificials
/// [m, m + na), and structural (external) variables grow from m + na.
/// Structural columns may be appended (and, while nonbasic at their lower
/// bound, replaced) between solves; the factorized basis stays valid, so
/// `ReOptimize` re-prices from the previous optimum instead of restarting
/// the two-phase method.
class RevisedSimplex {
 public:
  explicit RevisedSimplex(const LinearProgram& lp,
                          RevisedSimplexOptions options = {});

  /// Appends a structural column. `terms` holds (constraint row, coef)
  /// pairs in external row ids; duplicates are summed. The new variable
  /// enters nonbasic at its lower bound, so a previously optimal basis
  /// stays primal feasible. Returns the external variable index.
  size_t AddStructural(double objective, double upper,
                       const std::vector<std::pair<size_t, double>>& terms);

  /// Rewrites structural column `var` in place. If the variable is
  /// currently basic or sitting at its upper bound the current basis no
  /// longer matches the data, and the next solve restarts from scratch;
  /// otherwise warm starts remain valid.
  void ReplaceStructural(size_t var, double objective, double upper,
                         const std::vector<std::pair<size_t, double>>& terms);

  /// Full two-phase solve from the initial slack/artificial basis.
  SolveStatus SolveFromScratch();

  /// Re-optimizes from the current basis (valid only after an optimal
  /// solve whose basis was not invalidated); falls back to
  /// SolveFromScratch otherwise.
  SolveStatus ReOptimize();

  /// Writes structural values and the phase-2 objective. Valid only after
  /// a solve that returned kOptimal.
  void Extract(Solution* out) const;

  size_t num_rows() const { return m_; }
  size_t num_structurals() const { return num_struct_; }
  /// True when the last solve left an optimal basis a later ReOptimize
  /// can warm-start from.
  bool basis_valid() const { return basis_valid_; }

  /// Diagnostics, cumulative since construction: simplex iterations
  /// (pivots + bound flips) and LU refactorizations.
  size_t total_iterations() const { return total_iterations_; }
  size_t total_refactorizations() const { return total_refactorizations_; }
  /// Stored nonzeros of the most recent LU factorization.
  size_t last_factor_nnz() const { return lu_.factor_nnz(); }

 private:
  enum class VState : uint8_t { kAtLower, kAtUpper, kBasic };
  struct Eta {
    uint32_t pos = 0;  // basis position replaced
    double d_pos = 1.0;
    std::vector<std::pair<uint32_t, double>> others;  // (position, d_i)
  };

  size_t InternalOf(size_t var) const { return struct_begin_ + var; }
  double Cost(const std::vector<double>& cost, size_t j) const {
    return j < cost.size() ? cost[j] : 0.0;
  }
  void SetColumn(size_t internal_j,
                 const std::vector<std::pair<size_t, double>>& terms);

  void ResetToInitialBasis();
  bool Refactorize();           // rebuild LU + xB; false if singular
  void Ftran(std::vector<double>* w) const;  // row space in, positions out
  void Btran(std::vector<double>* y) const;  // positions in, row space out
  SolveStatus RunSimplex(const std::vector<double>& cost,
                         bool allow_artificial_entering);

  RevisedSimplexOptions options_;
  size_t m_ = 0;            // rows
  size_t num_struct_ = 0;   // external variables
  size_t art_begin_ = 0;    // == m_
  size_t struct_begin_ = 0; // m_ + number of artificials
  std::vector<double> row_sign_;
  std::vector<double> rhs_;  // normalized, >= 0

  std::vector<SparseColumn> cols_;  // internal column id -> sparse column
  // Row-major mirror of cols_ (row -> (internal column, coef)), rebuilt
  // lazily per solve; lets the pivot-row sweep walk only the rows where
  // rho is nonzero instead of every column.
  std::vector<SparseColumn> rows_;
  bool rows_dirty_ = true;
  std::vector<double> obj_;         // phase-2 cost per internal column
  std::vector<double> upper_;

  std::vector<uint32_t> basis_;     // position -> internal column
  std::vector<uint32_t> basis_pos_; // internal column -> position or npos
  std::vector<VState> vstate_;
  std::vector<double> xB_;

  SparseLu lu_;
  std::vector<Eta> etas_;
  size_t eta_nnz_ = 0;  // stored entries across the eta file
  bool factor_valid_ = false;
  bool basis_valid_ = false;
  bool artificials_pinned_ = false;
  size_t total_iterations_ = 0;
  size_t total_refactorizations_ = 0;

  // Scratch buffers reused across iterations.
  mutable std::vector<double> ftran_buf_;
  mutable std::vector<double> btran_buf_;
  std::vector<double> cb_buf_;
  std::vector<double> pi_buf_;
  std::vector<double> w_buf_;
  std::vector<double> cost_buf_;
  std::vector<double> d_buf_;      // maintained reduced costs
  std::vector<double> devex_buf_;  // devex reference weights
  std::vector<double> rho_buf_;    // pivot row of B^{-1}
  std::vector<double> rhs_work_;
  std::vector<double> alpha_buf_;    // pivot-row coefficients, by column
  std::vector<uint8_t> alpha_mark_;  // which alpha_buf_ entries are live
  std::vector<uint32_t> touched_;
};

}  // namespace autotest::lp

#endif  // AUTOTEST_LP_REVISED_SIMPLEX_H_
