#include "lp/incremental.h"

#include <algorithm>

#include "util/check.h"

namespace autotest::lp {

IncrementalSolver::IncrementalSolver(LinearProgram base,
                                     RevisedSimplexOptions options)
    : program_(std::move(base)), engine_(program_, options) {}

size_t IncrementalSolver::AddVariable(
    double objective, double upper,
    const std::vector<std::pair<size_t, double>>& terms) {
  size_t var = program_.AddVariable(objective, upper);
  for (const auto& [row, coef] : terms) {
    AT_CHECK(row < program_.constraints.size());
    program_.constraints[row].terms.push_back({var, coef});
  }
  size_t engine_var = engine_.AddStructural(objective, upper, terms);
  AT_CHECK(engine_var == var);
  return var;
}

void IncrementalSolver::ReplaceVariable(
    size_t var, double objective, double upper,
    const std::vector<std::pair<size_t, double>>& terms) {
  AT_CHECK(var < program_.num_vars);
  program_.objective[var] = objective;
  program_.upper_bounds[var] = upper;
  // Drop the variable's old terms from the mirror, then splice in the new
  // ones (ReplaceVariable is rare — dedup representative swaps — so the
  // full sweep is fine).
  for (auto& c : program_.constraints) {
    c.terms.erase(std::remove_if(c.terms.begin(), c.terms.end(),
                                 [var](const std::pair<size_t, double>& t) {
                                   return t.first == var;
                                 }),
                  c.terms.end());
  }
  for (const auto& [row, coef] : terms) {
    AT_CHECK(row < program_.constraints.size());
    program_.constraints[row].terms.push_back({var, coef});
  }
  engine_.ReplaceStructural(var, objective, upper, terms);
}

const Solution& IncrementalSolver::Solve() {
  bool warm = solved_once_ && engine_.basis_valid() &&
              solution_.status == SolveStatus::kOptimal;
  solution_.status = warm ? engine_.ReOptimize() : engine_.SolveFromScratch();
  last_solve_was_warm_ = warm;
  solved_once_ = true;
  if (solution_.status == SolveStatus::kOptimal) {
    engine_.Extract(&solution_);
  } else {
    solution_.values.clear();
    solution_.objective = 0.0;
  }
  return solution_;
}

}  // namespace autotest::lp
