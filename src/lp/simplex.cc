#include "lp/simplex.h"

#include "lp/revised_simplex.h"
#include "util/check.h"

namespace autotest::lp {

size_t LinearProgram::AddVariable(double objective_coef, double upper_bound) {
  objective.push_back(objective_coef);
  upper_bounds.push_back(upper_bound);
  return num_vars++;
}

size_t LinearProgram::AddConstraint(Constraint c) {
  constraints.push_back(std::move(c));
  return constraints.size() - 1;
}

const char* SolveStatusName(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

Solution SolveLp(const LinearProgram& lp) {
  AT_CHECK(lp.objective.size() == lp.num_vars);
  AT_CHECK(lp.upper_bounds.size() == lp.num_vars);
  Solution out;
  if (lp.num_vars == 0 && lp.constraints.empty()) {
    // Empty LP: trivially optimal at objective 0 (regression: the
    // Solution default of kIterationLimit must not leak out).
    out.status = SolveStatus::kOptimal;
    return out;
  }
  RevisedSimplex solver(lp);
  out.status = solver.SolveFromScratch();
  if (out.status == SolveStatus::kOptimal) {
    solver.Extract(&out);
  }
  return out;
}

}  // namespace autotest::lp
