#include "lp/sparse_lu.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace autotest::lp {

namespace {
constexpr uint32_t kNoStep = 0xffffffffu;
// Threshold (Markowitz-style) pivoting: any row whose magnitude is within
// this factor of the column maximum is an acceptable pivot; among those
// the row with the lowest static degree wins, trading a bounded loss of
// numerical quality for much less fill.
constexpr double kPivotThreshold = 0.1;
}  // namespace

bool SparseLu::Factorize(const std::vector<const SparseColumn*>& cols,
                         double pivot_tol) {
  m_ = cols.size();
  // Clear() rather than assign: keeps the per-column capacity across the
  // frequent refactorizations instead of reallocating 2m vectors each time.
  l_cols_.resize(m_);
  u_cols_.resize(m_);
  for (size_t k = 0; k < m_; ++k) {
    l_cols_[k].Clear();
    u_cols_[k].Clear();
  }
  u_diag_.assign(m_, 0.0);
  pivot_row_.assign(m_, kNoStep);
  row_step_.assign(m_, kNoStep);
  col_of_step_.assign(m_, 0);
  work_.assign(m_, 0.0);
  step_work_.assign(m_, 0.0);
  visited_.assign(m_, 0);
  pattern_.clear();
  stack_.clear();

  // Fill-reducing static ordering: eliminate the sparsest columns first
  // (singleton slack/unit columns cause zero fill), densest last. A
  // counting sort keyed on nnz keeps this O(m) per refactorization and is
  // stable, so the order — and with it the numerics — is deterministic.
  std::vector<uint32_t>& order = order_;
  order.resize(m_);
  {
    std::vector<uint32_t>& bucket = steps_;  // scratch, repurposed
    bucket.assign(m_ + 1, 0);
    for (size_t k = 0; k < m_; ++k) {
      bucket[std::min(cols[k]->nnz(), m_)]++;
    }
    uint32_t base = 0;
    for (size_t c = 0; c <= m_; ++c) {
      uint32_t cnt = bucket[c];
      bucket[c] = base;
      base += cnt;
    }
    for (size_t k = 0; k < m_; ++k) {
      order[bucket[std::min(cols[k]->nnz(), m_)]++] = static_cast<uint32_t>(k);
    }
  }

  // Static row degrees (occurrences across all basis columns): the
  // tie-break side of the threshold pivot rule below.
  row_degree_.assign(m_, 0);
  for (size_t k = 0; k < m_; ++k) {
    for (uint32_t r : cols[k]->rows) row_degree_[r]++;
  }

  std::vector<uint32_t>& steps = steps_;  // pivotal steps this column reaches
  for (size_t k = 0; k < m_; ++k) {
    const SparseColumn& col = *cols[order[k]];
    col_of_step_[k] = order[k];
    // Scatter the column and discover its fill-in pattern by DFS over the
    // partially built L: a nonzero at a pivotal row triggers that step's
    // elimination, which fills the rows of its L column.
    pattern_.clear();
    stack_.clear();
    for (size_t t = 0; t < col.nnz(); ++t) {
      uint32_t r = col.rows[t];
      AT_CHECK(r < m_);
      work_[r] += col.vals[t];
      if (!visited_[r]) {
        visited_[r] = 1;
        pattern_.push_back(r);
        stack_.push_back(r);
      }
    }
    while (!stack_.empty()) {
      uint32_t r = stack_.back();
      stack_.pop_back();
      uint32_t step = row_step_[r];
      if (step == kNoStep) continue;
      for (uint32_t r2 : l_cols_[step].rows) {
        if (!visited_[r2]) {
          visited_[r2] = 1;
          pattern_.push_back(r2);
          stack_.push_back(r2);
        }
      }
    }

    // L's column t only touches rows that become pivotal later than t, so
    // ascending step order is a valid elimination order for the reach.
    steps.clear();
    for (uint32_t r : pattern_) {
      if (row_step_[r] != kNoStep) steps.push_back(row_step_[r]);
    }
    std::sort(steps.begin(), steps.end());

    SparseColumn& ucol = u_cols_[k];
    for (uint32_t t : steps) {
      double z = work_[pivot_row_[t]];
      if (z == 0.0) continue;
      ucol.Push(t, z);
      const SparseColumn& lcol = l_cols_[t];
      for (size_t i = 0; i < lcol.nnz(); ++i) {
        work_[lcol.rows[i]] -= z * lcol.vals[i];
      }
    }

    // Threshold pivoting over the not-yet-pivotal rows of the pattern:
    // among rows within kPivotThreshold of the column maximum, prefer the
    // lowest static degree (then the lowest row index, for determinism).
    double amax = 0.0;
    for (uint32_t r : pattern_) {
      if (row_step_[r] != kNoStep) continue;
      amax = std::max(amax, std::fabs(work_[r]));
    }
    uint32_t pivot = kNoStep;
    uint32_t best_degree = 0xffffffffu;
    if (amax > pivot_tol) {
      double accept = amax * kPivotThreshold;
      for (uint32_t r : pattern_) {
        if (row_step_[r] != kNoStep) continue;
        if (std::fabs(work_[r]) < accept) continue;
        if (pivot == kNoStep || row_degree_[r] < best_degree ||
            (row_degree_[r] == best_degree && r < pivot)) {
          pivot = r;
          best_degree = row_degree_[r];
        }
      }
    }
    if (pivot == kNoStep) {
      // Singular (structurally or numerically); reset scratch and bail.
      for (uint32_t r : pattern_) {
        work_[r] = 0.0;
        visited_[r] = 0;
      }
      return false;
    }
    u_diag_[k] = work_[pivot];
    pivot_row_[k] = pivot;
    row_step_[pivot] = static_cast<uint32_t>(k);

    SparseColumn& lcol = l_cols_[k];
    double inv = 1.0 / u_diag_[k];
    for (uint32_t r : pattern_) {
      if (row_step_[r] == kNoStep && work_[r] != 0.0) {
        lcol.Push(r, work_[r] * inv);
      }
      work_[r] = 0.0;
      visited_[r] = 0;
    }
  }
  factor_nnz_ = m_;  // diagonals
  for (const auto& c : l_cols_) factor_nnz_ += c.nnz();
  for (const auto& c : u_cols_) factor_nnz_ += c.nnz();
  return true;
}

void SparseLu::SolveForward(const std::vector<double>& b,
                            std::vector<double>* x) const {
  AT_CHECK(b.size() == m_ && x != &b);
  // L z = P b, forward in step order; the row-space residual lives in a
  // scratch copy of b.
  std::vector<double>& scratch = work_;
  scratch.assign(b.begin(), b.end());
  std::vector<double>& z = step_work_;
  z.assign(m_, 0.0);
  for (size_t k = 0; k < m_; ++k) {
    double zk = scratch[pivot_row_[k]];
    z[k] = zk;
    if (zk == 0.0) continue;
    const SparseColumn& lcol = l_cols_[k];
    for (size_t i = 0; i < lcol.nnz(); ++i) {
      scratch[lcol.rows[i]] -= zk * lcol.vals[i];
    }
  }
  // U x = z, backward; in place over z (still in elimination-step space).
  for (size_t k = m_; k-- > 0;) {
    double xk = z[k] / u_diag_[k];
    z[k] = xk;
    if (xk == 0.0) continue;
    const SparseColumn& ucol = u_cols_[k];
    for (size_t i = 0; i < ucol.nnz(); ++i) {
      z[ucol.rows[i]] -= xk * ucol.vals[i];
    }
  }
  // Undo the fill-reducing column permutation: step k solved for the
  // variable multiplying original column col_of_step_[k].
  x->assign(m_, 0.0);
  for (size_t k = 0; k < m_; ++k) (*x)[col_of_step_[k]] = z[k];
}

void SparseLu::SolveTranspose(const std::vector<double>& c,
                              std::vector<double>* y) const {
  AT_CHECK(c.size() == m_ && y != &c);
  // Permute the position-space cost into elimination-step space, then
  // solve U' w = c forward in step order.
  std::vector<double>& w = work_;
  w.assign(m_, 0.0);
  for (size_t k = 0; k < m_; ++k) w[k] = c[col_of_step_[k]];
  for (size_t k = 0; k < m_; ++k) {
    const SparseColumn& ucol = u_cols_[k];
    double s = w[k];
    for (size_t i = 0; i < ucol.nnz(); ++i) {
      s -= ucol.vals[i] * w[ucol.rows[i]];
    }
    w[k] = s / u_diag_[k];
  }
  // L' v = w, backward; v overwrites w. L column k's entries sit at matrix
  // rows pivotal at steps > k, so the backward sweep sees final values.
  for (size_t k = m_; k-- > 0;) {
    const SparseColumn& lcol = l_cols_[k];
    double s = w[k];
    for (size_t i = 0; i < lcol.nnz(); ++i) {
      s -= lcol.vals[i] * w[row_step_[lcol.rows[i]]];
    }
    w[k] = s;
  }
  y->assign(m_, 0.0);
  for (size_t k = 0; k < m_; ++k) (*y)[pivot_row_[k]] = w[k];
}

}  // namespace autotest::lp
