#include "util/failpoint.h"

#include <cstdio>
#include <cstdlib>

#include "util/hashing.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace autotest::util {

namespace {

bool IsKnownFailpoint(std::string_view name) {
  for (std::string_view fp : kAllFailpoints) {
    if (fp == name) return true;
  }
  return false;
}

std::string KnownFailpointList() {
  std::string out;
  for (std::string_view fp : kAllFailpoints) {
    if (!out.empty()) out += ", ";
    out += fp;
  }
  return out;
}

/// Maps a `code=` flavor token to the StatusCode it injects; nullopt for
/// "default" (restore per-site codes).
bool ParseCodeFlavor(std::string_view value,
                     std::optional<StatusCode>* out) {
  if (value == "io") {
    *out = StatusCode::kIoError;
  } else if (value == "exhausted") {
    *out = StatusCode::kResourceExhausted;
  } else if (value == "dataloss") {
    *out = StatusCode::kDataLoss;
  } else if (value == "default") {
    *out = std::nullopt;
  } else {
    return false;
  }
  return true;
}

}  // namespace

FailpointRegistry::FailpointRegistry() {
  for (std::string_view fp : kAllFailpoints) {
    // Per-site counters live in the global metrics registry under the
    // dynamic family `failpoint.<site>.evals|fires` (DESIGN.md §4f), so
    // one JSON dump carries them next to every other component.
    Point point;
    point.evaluations = &metrics::Registry::Global().GetCounter(
        "failpoint." + std::string(fp) + ".evals");
    point.fires = &metrics::Registry::Global().GetCounter(
        "failpoint." + std::string(fp) + ".fires");
    points_.emplace(std::string(fp), point);
  }
  if (const char* env = std::getenv("AT_FAILPOINTS")) {
    // Environment arming is best-effort: a bad spec must not turn a
    // production binary into an aborting one, so report and continue
    // disarmed rather than AT_CHECK-ing here.
    Status st = Configure(env);
    if (!st.ok()) {
      std::fprintf(stderr, "warning: ignoring bad AT_FAILPOINTS: %s\n",
                   st.ToString().c_str());
    }
  }
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

Status FailpointRegistry::Configure(std::string_view spec) {
  MutexLock lock(&mu_);
  for (const std::string& raw : Split(spec, ',')) {
    std::string_view entry = Trim(raw);
    if (entry.empty()) continue;

    size_t eq = entry.rfind('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == entry.size()) {
      return InvalidArgumentError("bad failpoint entry '" +
                                  std::string(entry) +
                                  "' (want name=on|off, name:p=<prob> or "
                                  "seed=<n>)");
    }
    std::string_view key = entry.substr(0, eq);
    std::string value(entry.substr(eq + 1));
    char* endp = nullptr;

    if (key == "seed") {
      uint64_t s = std::strtoull(value.c_str(), &endp, 10);
      if (endp == value.c_str() || *endp != '\0') {
        return InvalidArgumentError("bad failpoint seed '" + value + "'");
      }
      seed_ = s;
      continue;
    }

    if (key == "code") {
      if (!ParseCodeFlavor(value, &code_override_)) {
        return InvalidArgumentError(
            "bad failpoint code flavor '" + value +
            "' (want io, exhausted, dataloss or default)");
      }
      continue;
    }

    bool armed;
    double probability = 1.0;
    std::string_view name = key;
    if (EndsWith(key, ":p")) {
      name = key.substr(0, key.size() - 2);
      probability = std::strtod(value.c_str(), &endp);
      if (endp == value.c_str() || *endp != '\0' || probability < 0.0 ||
          probability > 1.0) {
        return InvalidArgumentError("bad failpoint probability '" + value +
                                    "' for '" + std::string(name) +
                                    "' (want a number in [0,1])");
      }
      armed = probability > 0.0;
    } else if (value == "on") {
      armed = true;
    } else if (value == "off") {
      armed = false;
    } else {
      return InvalidArgumentError("bad failpoint value '" + value +
                                  "' for '" + std::string(name) +
                                  "' (want on, off or :p=<prob>)");
    }

    if (name == "all") {
      for (auto& [fp, point] : points_) {
        (void)fp;
        point.armed = armed;
        point.probability = probability;
      }
    } else {
      auto it = points_.find(name);
      if (it == points_.end() || !IsKnownFailpoint(name)) {
        return InvalidArgumentError("unknown failpoint '" +
                                    std::string(name) + "' (known: " +
                                    KnownFailpointList() + ")");
      }
      it->second.armed = armed;
      it->second.probability = probability;
    }
  }
  any_armed_ = false;
  for (const auto& [fp, point] : points_) {
    (void)fp;
    if (point.armed) any_armed_ = true;
  }
  armed_flag_.store(any_armed_, std::memory_order_release);
  return Status::Ok();
}

void FailpointRegistry::Disarm() {
  MutexLock lock(&mu_);
  for (auto& [fp, point] : points_) {
    (void)fp;
    point.armed = false;
  }
  any_armed_ = false;
  armed_flag_.store(false, std::memory_order_release);
}

void FailpointRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [fp, point] : points_) {
    (void)fp;
    point.armed = false;
    point.probability = 1.0;
    point.evaluations->Reset();
    point.fires->Reset();
  }
  seed_ = 0;
  code_override_ = std::nullopt;
  any_armed_ = false;
  armed_flag_.store(false, std::memory_order_release);
}

std::optional<StatusCode> FailpointRegistry::EvalLocked(
    std::string_view name, uint64_t key, bool use_counter,
    StatusCode fallback) {
  auto it = points_.find(name);
  if (it == points_.end()) return std::nullopt;
  Point& point = it->second;
  // The pre-increment value is the decision-stream index, exactly as the
  // plain uint64 counter behaved before the metrics migration.
  uint64_t k = point.evaluations->value();
  point.evaluations->Increment();
  if (!point.armed) return std::nullopt;
  // Deterministic decision stream: per-(seed, name, evaluation-index) for
  // serial sites, per-(seed, name, caller key) for parallel ones.
  uint64_t stream = use_counter ? k : SplitMix64(key) ^ 0x5bd1e995u;
  double roll =
      HashToUnitDouble(SplitMix64(seed_ ^ Fnv64Seeded(name, stream)));
  if (roll >= point.probability) return std::nullopt;
  point.fires->Increment();
  return code_override_.value_or(fallback);
}

bool FailpointRegistry::ShouldFail(std::string_view name) {
  // The fallback is irrelevant for the boolean answer.
  return ShouldFailWithCode(name, StatusCode::kInternal).has_value();
}

std::optional<StatusCode> FailpointRegistry::ShouldFailWithCode(
    std::string_view name, StatusCode fallback) {
  if (!armed_flag_.load(std::memory_order_acquire)) return std::nullopt;
  MutexLock lock(&mu_);
  return EvalLocked(name, 0, /*use_counter=*/true, fallback);
}

std::optional<StatusCode> FailpointRegistry::ShouldFailKeyed(
    std::string_view name, uint64_t key, StatusCode fallback) {
  if (!armed_flag_.load(std::memory_order_acquire)) return std::nullopt;
  MutexLock lock(&mu_);
  return EvalLocked(name, key, /*use_counter=*/false, fallback);
}

uint64_t FailpointRegistry::evaluations(std::string_view name) const {
  MutexLock lock(&mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.evaluations->value();
}

uint64_t FailpointRegistry::fires(std::string_view name) const {
  MutexLock lock(&mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires->value();
}

std::string FailpointRegistry::StatsString() const {
  MutexLock lock(&mu_);
  std::string out = "failpoints:";
  bool any = false;
  for (const auto& [fp, point] : points_) {
    if (!point.armed && point.fires->value() == 0) continue;
    any = true;
    out += " " + fp +
           " evals=" + std::to_string(point.evaluations->value()) +
           " fires=" + std::to_string(point.fires->value());
  }
  if (!any) out += " (none armed)";
  return out;
}

Status InjectedFault(StatusCode code, std::string_view name) {
  return Status(code,
                "injected fault at failpoint '" + std::string(name) + "'");
}

}  // namespace autotest::util
