#ifndef AUTOTEST_UTIL_STRING_UTIL_H_
#define AUTOTEST_UTIL_STRING_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace autotest::util {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// True if every character is an ASCII digit (and s is non-empty).
bool IsAllDigits(std::string_view s);

/// True if every character is an ASCII letter (and s is non-empty).
bool IsAllAlpha(std::string_view s);

/// Fraction of characters that are digits (0 for empty strings).
double DigitRatio(std::string_view s);

/// Fraction of characters that are ASCII letters (0 for empty strings).
double AlphaRatio(std::string_view s);

/// Levenshtein edit distance; O(|a|*|b|).
size_t EditDistance(std::string_view a, std::string_view b);

/// True if s starts with the given prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if s ends with the given suffix.
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace autotest::util

#endif  // AUTOTEST_UTIL_STRING_UTIL_H_
