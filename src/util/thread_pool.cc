#include "util/thread_pool.h"

#include <algorithm>

namespace autotest::util {

size_t DefaultThreadCount() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads) {
  if (n == 0) return;
  if (num_threads == 0) num_threads = DefaultThreadCount();
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (size_t t = 0; t + 1 < num_threads; ++t) threads.emplace_back(worker);
  worker();
  for (auto& th : threads) th.join();
}

}  // namespace autotest::util
