#include "util/hashing.h"

namespace autotest::util {

uint64_t Fnv64(std::string_view s) { return Fnv64Seeded(s, 0); }

uint64_t Fnv64Seeded(std::string_view s, uint64_t seed) {
  uint64_t h = 14695981039346656037ULL ^ SplitMix64(seed);
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double HashToUnitDouble(uint64_t h) {
  // Finalize first: FNV of short strings perturbs mostly the low bits, and
  // the top 53 bits feed the double.
  h = SplitMix64(h);
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace autotest::util
