#ifndef AUTOTEST_UTIL_THREAD_ANNOTATIONS_H_
#define AUTOTEST_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes behind portable AT_* macros
// (DESIGN.md §4i). Annotating which mutex guards which member — and which
// functions require, acquire or release which locks — turns the serving
// tier's locking discipline into a compile-time contract: building with
// `cmake -DAT_THREAD_SAFETY=ON` (Clang only) adds `-Wthread-safety
// -Werror`, so writing a guarded member without its lock, or returning
// while still holding one, is a build break instead of a TSan lottery.
//
// On compilers without the attribute (GCC) every macro expands to nothing;
// the annotations are pure documentation there, and at_lint rules R7-R9
// (tools/at_lint) still enforce the coverage and ordering contracts that
// do not need a compiler.
//
// The vocabulary mirrors Clang's documented attribute set
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed AT_
// like every other project macro:
//
//   AT_GUARDED_BY(mu)      data member readable/writable only with mu held
//   AT_PT_GUARDED_BY(mu)   pointer member whose *pointee* mu guards
//   AT_REQUIRES(...)       function must be called with the lock(s) held
//   AT_ACQUIRE(...)        function acquires the lock(s), caller must not hold
//   AT_RELEASE(...)        function releases the lock(s)
//   AT_TRY_ACQUIRE(b, mu)  acquires mu iff the function returns b
//   AT_EXCLUDES(...)       caller must NOT hold the lock(s) (deadlock guard)
//   AT_ACQUIRED_BEFORE/AFTER(...)  global lock-order edges (R9 reads these)
//   AT_CAPABILITY(x)       class is a lockable capability (util::Mutex)
//   AT_SCOPED_CAPABILITY   RAII class that acquires in ctor / releases in dtor
//   AT_RETURN_CAPABILITY(x)  accessor returning a reference to capability x
//   AT_ASSERT_CAPABILITY(x)  function asserts (not acquires) that x is held
//   AT_NO_THREAD_SAFETY_ANALYSIS  escape hatch; every use needs a
//                          justification comment (lint-audited, see §4i)

#if defined(__clang__) && (!defined(SWIG))
#define AT_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define AT_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#define AT_CAPABILITY(x) AT_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define AT_SCOPED_CAPABILITY AT_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define AT_GUARDED_BY(x) AT_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define AT_PT_GUARDED_BY(x) AT_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define AT_ACQUIRED_BEFORE(...) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define AT_ACQUIRED_AFTER(...) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define AT_REQUIRES(...) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define AT_REQUIRES_SHARED(...) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define AT_ACQUIRE(...) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define AT_ACQUIRE_SHARED(...) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define AT_RELEASE(...) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define AT_RELEASE_SHARED(...) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define AT_TRY_ACQUIRE(...) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define AT_EXCLUDES(...) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define AT_ASSERT_CAPABILITY(x) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define AT_RETURN_CAPABILITY(x) \
  AT_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define AT_NO_THREAD_SAFETY_ANALYSIS \
  AT_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // AUTOTEST_UTIL_THREAD_ANNOTATIONS_H_
