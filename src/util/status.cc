#include "util/status.h"

namespace autotest::util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::optional<StatusCode> StatusCodeFromName(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kDeadlineExceeded); ++i) {
    StatusCode code = static_cast<StatusCode>(i);
    if (StatusCodeName(code) == name) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  for (const auto& frame : context_) {
    out += "\n  while ";
    out += frame;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

}  // namespace autotest::util
