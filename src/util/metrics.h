#ifndef AUTOTEST_UTIL_METRICS_H_
#define AUTOTEST_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

// Uniform metrics registry (DESIGN.md §4f).
//
// Every degradation and performance signal in the tree — parallel-runtime
// task/steal counts, failpoint evaluations and fires, retry attempts,
// shard-load outcomes, predictor/trainer skip counts and phase timers —
// is registered here under one `<component>.<name>` namespace (mirroring
// the failpoint convention) so serving deployments scrape one document
// instead of grepping stderr and calling five bespoke accessors.
//
// Kinds:
//   Counter    monotonically increasing uint64 (relaxed atomic adds)
//   Gauge      last-written double (relaxed store; Add is a CAS loop)
//   Histogram  fixed upper-bound buckets + count + sum (relaxed adds)
//
// Atomicity contract: increments on the hot path are single relaxed
// atomic RMWs — no locks, no fences. Snapshot() takes relaxed loads, so
// it is a per-metric-consistent, not cross-metric-consistent, picture:
// each value is some value the metric actually held, but two metrics may
// be read at slightly different instants. That is the right trade for
// diagnostics (identical to parallel::Stats before the migration).
//
// Registration is idempotent and permanent: GetCounter("a.b") always
// returns the same object, references stay valid for process lifetime,
// and re-registering under a different kind (or different histogram
// buckets) is a programmer error that AT_CHECK-fails. Components cache
// the returned reference so steady-state cost is the increment alone.
//
// Naming: two or more dot-separated segments of [a-z0-9_], first char of
// each segment a letter — `parallel.steals`, `failpoint.csv.open.fires`.
// The canonical list of statically named metrics is kAllMetrics below;
// at_lint rule R6 cross-checks registration literals against it both
// ways, exactly like R3 does for failpoints. Dynamically derived families
// (per-failpoint `failpoint.<site>.evals|fires`, per-bench `bench.*`)
// are documented as patterns in DESIGN.md §4f instead.
//
// Snapshot() is deterministically ordered (lexicographic by name), so
// text/JSON dumps are byte-stable for equal counter values and can be
// diffed or gated on in CI (tools/run_bench_ci.sh consumes the same JSON
// shape benchmarks emit via benchx::BenchMetrics).

namespace autotest::metrics {

// ---------------------------------------------------------------------------
// Canonical metric names. Keep in sync with kAllMetrics; at_lint rule R6
// checks registration literals against this catalogue both directions.
// ---------------------------------------------------------------------------

inline constexpr std::string_view kMParallelInvocations =
    "parallel.invocations";
inline constexpr std::string_view kMParallelSerialInvocations =
    "parallel.serial_invocations";
inline constexpr std::string_view kMParallelItems = "parallel.items";
inline constexpr std::string_view kMParallelChunks = "parallel.chunks";
inline constexpr std::string_view kMParallelSteals = "parallel.steals";
inline constexpr std::string_view kMParallelParticipants =
    "parallel.participants";
inline constexpr std::string_view kMParallelSlotsOffered =
    "parallel.slots_offered";
inline constexpr std::string_view kMRetryAttempts = "retry.attempts";
inline constexpr std::string_view kMRetryRetries = "retry.retries";
inline constexpr std::string_view kMRetryGiveups = "retry.giveups";
inline constexpr std::string_view kMShardLoads = "shard.loads";
inline constexpr std::string_view kMShardLoaded = "shard.loaded";
inline constexpr std::string_view kMShardLost = "shard.lost";
inline constexpr std::string_view kMShardRetries = "shard.retries";
inline constexpr std::string_view kMShardDegradedLoads =
    "shard.degraded_loads";
inline constexpr std::string_view kMShardAttempts = "shard.attempts";
inline constexpr std::string_view kMPredictorRulesSkipped =
    "predictor.rules_skipped";
inline constexpr std::string_view kMPredictorColumnsChecked =
    "predictor.columns_checked";
inline constexpr std::string_view kMPredictorDetections =
    "predictor.detections";
inline constexpr std::string_view kMTrainerEvalsSkipped =
    "trainer.evals_skipped";
inline constexpr std::string_view kMTrainerCandidatesEnumerated =
    "trainer.candidates_enumerated";
inline constexpr std::string_view kMTrainerCandidatesPruned =
    "trainer.candidates_pruned";
inline constexpr std::string_view kMTrainerCandidatesRejected =
    "trainer.candidates_rejected";
inline constexpr std::string_view kMTrainerCandidateGenSeconds =
    "trainer.candidate_gen_seconds";
inline constexpr std::string_view kMTrainerSyntheticSeconds =
    "trainer.synthetic_seconds";
inline constexpr std::string_view kMTrainerPoolValues =
    "trainer.pool_values";
inline constexpr std::string_view kMTrainerPoolArenaBytes =
    "trainer.pool_arena_bytes";
inline constexpr std::string_view kMDatagenShardsGenerated =
    "datagen.shards_generated";
inline constexpr std::string_view kMDatagenColumnsGenerated =
    "datagen.columns_generated";
inline constexpr std::string_view kMServeConnections = "serve.connections";
inline constexpr std::string_view kMServeRequests = "serve.requests";
inline constexpr std::string_view kMServeRequestsOk = "serve.requests_ok";
inline constexpr std::string_view kMServeRequestsError =
    "serve.requests_error";
inline constexpr std::string_view kMServeRequestsShed =
    "serve.requests_shed";
inline constexpr std::string_view kMServeDrainShed = "serve.drain_shed";
inline constexpr std::string_view kMServeDeadlineExpirations =
    "serve.deadline_expirations";
inline constexpr std::string_view kMServeAcceptErrors =
    "serve.accept_errors";
inline constexpr std::string_view kMServeReadErrors = "serve.read_errors";
inline constexpr std::string_view kMServeReloads = "serve.reloads";
inline constexpr std::string_view kMServeReloadFailures =
    "serve.reload_failures";
inline constexpr std::string_view kMServeRequestSeconds =
    "serve.request_seconds";
inline constexpr std::string_view kMServeBudgetCharges =
    "serve.budget_charges";
inline constexpr std::string_view kMServeBudgetRejections =
    "serve.budget_rejections";
inline constexpr std::string_view kMServeBreakerOpenTotal =
    "serve.breaker_open_total";
inline constexpr std::string_view kMServeBreakerHalfOpenTotal =
    "serve.breaker_half_open_total";
inline constexpr std::string_view kMServeBreakerClosedTotal =
    "serve.breaker_closed_total";
inline constexpr std::string_view kMServeBreakerRejections =
    "serve.breaker_rejections";
inline constexpr std::string_view kMServeTenantRejections =
    "serve.tenant_rejections";
inline constexpr std::string_view kMServeTenantQuotaReloads =
    "serve.tenant_quota_reloads";

/// Every statically named metric compiled into the binary. The per-site
/// failpoint family (`failpoint.<site>.evals` / `.fires`) is derived from
/// util::kAllFailpoints at runtime and is documented in DESIGN.md §4f.
inline constexpr std::string_view kAllMetrics[] = {
    kMParallelInvocations,
    kMParallelSerialInvocations,
    kMParallelItems,
    kMParallelChunks,
    kMParallelSteals,
    kMParallelParticipants,
    kMParallelSlotsOffered,
    kMRetryAttempts,
    kMRetryRetries,
    kMRetryGiveups,
    kMShardLoads,
    kMShardLoaded,
    kMShardLost,
    kMShardRetries,
    kMShardDegradedLoads,
    kMShardAttempts,
    kMPredictorRulesSkipped,
    kMPredictorColumnsChecked,
    kMPredictorDetections,
    kMTrainerEvalsSkipped,
    kMTrainerCandidatesEnumerated,
    kMTrainerCandidatesPruned,
    kMTrainerCandidatesRejected,
    kMTrainerCandidateGenSeconds,
    kMTrainerSyntheticSeconds,
    kMTrainerPoolValues,
    kMTrainerPoolArenaBytes,
    kMDatagenShardsGenerated,
    kMDatagenColumnsGenerated,
    kMServeConnections,
    kMServeRequests,
    kMServeRequestsOk,
    kMServeRequestsError,
    kMServeRequestsShed,
    kMServeDrainShed,
    kMServeDeadlineExpirations,
    kMServeAcceptErrors,
    kMServeReadErrors,
    kMServeReloads,
    kMServeReloadFailures,
    kMServeRequestSeconds,
    kMServeBudgetCharges,
    kMServeBudgetRejections,
    kMServeBreakerOpenTotal,
    kMServeBreakerHalfOpenTotal,
    kMServeBreakerClosedTotal,
    kMServeBreakerRejections,
    kMServeTenantRejections,
    kMServeTenantQuotaReloads,
};

// ---------------------------------------------------------------------------
// Metric objects. Handed out by reference from the Registry; increments
// are lock-free relaxed atomics. Reset() exists for tests and the
// parallel::ResetStats() shim — production code only ever adds.
// ---------------------------------------------------------------------------

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// Counts `v` into the first bucket whose upper bound is >= v (the
  /// overflow bucket otherwise) and folds it into count/sum.
  void Observe(double v);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ---------------------------------------------------------------------------
// Snapshots and serialization. The serializers are free functions over
// plain values so benchmarks (benchx::BenchMetrics) can emit hand-built
// results in the exact same shape the registry dumps.
// ---------------------------------------------------------------------------

enum class MetricKind { kCounter, kGauge, kHistogram };

struct HistogramValue {
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;  // bounds.size() + 1, last = overflow
  uint64_t count = 0;
  double sum = 0.0;
};

struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;      // kCounter
  double gauge = 0.0;        // kGauge
  HistogramValue histogram;  // kHistogram
};

/// True for a well-formed metric name (see the naming contract above).
bool IsValidMetricName(std::string_view name);

/// JSON string-escaping used by the serializer ('"', '\\', control chars).
std::string JsonEscape(std::string_view s);

/// One line per metric: `name value` (histograms render count/sum/buckets).
std::string FormatMetricsText(const std::vector<MetricValue>& values);

/// The shared JSON document shape:
///   {"schema":"autotest.metrics.v1","source":"...","metrics":[...]}
/// One metric object per line; non-finite doubles serialize as null so
/// the document is always valid JSON.
std::string FormatMetricsJson(const std::vector<MetricValue>& values,
                              std::string_view source);

// ---------------------------------------------------------------------------
// The process-wide registry.
// ---------------------------------------------------------------------------

class Registry {
 public:
  /// The process singleton.
  static Registry& Global();

  /// Idempotent lookup-or-create. AT_CHECK-fails on an invalid name or a
  /// kind mismatch with an earlier registration.
  Counter& GetCounter(std::string_view name) AT_EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name) AT_EXCLUDES(mu_);
  /// `bounds` must be non-empty and strictly ascending; a re-registration
  /// must pass identical bounds.
  Histogram& GetHistogram(std::string_view name,
                          const std::vector<double>& bounds)
      AT_EXCLUDES(mu_);

  bool IsRegistered(std::string_view name) const AT_EXCLUDES(mu_);

  /// Relaxed-load copies of every metric, ordered by name.
  std::vector<MetricValue> Snapshot() const AT_EXCLUDES(mu_);

  std::string FormatText() const;
  std::string FormatJson(std::string_view source) const;

  /// Zeroes every value but keeps all registrations (tests and the
  /// parallel::ResetStats() shim; production never resets).
  void ResetValuesForTest() AT_EXCLUDES(mu_);

 private:
  Registry() = default;

  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable util::Mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_ AT_GUARDED_BY(mu_);
};

}  // namespace autotest::metrics

#endif  // AUTOTEST_UTIL_METRICS_H_
