#ifndef AUTOTEST_UTIL_MUTEX_H_
#define AUTOTEST_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.h"

// Annotated mutex / condition-variable wrappers (DESIGN.md §4i).
//
// util::Mutex is std::mutex plus the AT_CAPABILITY attribute, so Clang's
// thread-safety analysis can prove that members marked
// `AT_GUARDED_BY(mu_)` are only touched with `mu_` held. util::MutexLock
// is the scoped holder (lock_guard with AT_SCOPED_CAPABILITY), and
// util::CondVar wraps std::condition_variable_any so waits take a Mutex
// directly — no unannotated std::unique_lock escape route.
//
// Policy (§4i): every mutex data member in src/ must be util::Mutex, not
// raw std::mutex, and every member it protects must carry AT_GUARDED_BY.
// at_lint rule R7 enforces both tree-wide even on compilers where the
// attributes are no-ops; the AT_THREAD_SAFETY=ON Clang build then checks
// the annotations themselves.

namespace autotest::util {

/// std::mutex with the capability attribute. Also satisfies C++ Lockable
/// (lower-case lock/unlock/try_lock) so std facilities can hold it, but
/// annotated code should use the RAII MutexLock or the Capitalized
/// methods, which carry the acquire/release attributes.
class AT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AT_ACQUIRE() { mu_.lock(); }
  void Unlock() AT_RELEASE() { mu_.unlock(); }
  bool TryLock() AT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Lockable aliases for std:: facilities (CondVar's wait re-lock path).
  void lock() AT_ACQUIRE() { mu_.lock(); }
  void unlock() AT_RELEASE() { mu_.unlock(); }
  bool try_lock() AT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII scope holding a Mutex (std::lock_guard with annotations). Takes a
/// pointer so the guarded mutex is syntactically obvious at the call site
/// — `MutexLock lock(&mu_);` — and greppable by at_lint's scope parser.
class AT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) AT_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() AT_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to util::Mutex. Wait/WaitFor must be called
/// with the mutex held (AT_REQUIRES); internally the wait releases and
/// re-acquires it, which is invisible to the analysis by design — the
/// bodies are AT_NO_THREAD_SAFETY_ANALYSIS because the capability state
/// is unchanged at entry and exit, exactly like absl::CondVar.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups possible; callers loop on
  /// their predicate.
  void Wait(Mutex& mu) AT_REQUIRES(mu) AT_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  /// Blocks until pred() is true (re-checked after every wakeup).
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred)
      AT_REQUIRES(mu) AT_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu, std::move(pred));
  }

  /// Blocks until notified or `micros` elapsed. Returns true when
  /// notified before the timeout (std::cv_status::no_timeout).
  bool WaitForMicros(Mutex& mu, int64_t micros)
      AT_REQUIRES(mu) AT_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, std::chrono::microseconds(micros)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any works with any Lockable, so waits hold the
  // annotated Mutex itself instead of an unannotated unique_lock.
  std::condition_variable_any cv_;
};

}  // namespace autotest::util

#endif  // AUTOTEST_UTIL_MUTEX_H_
