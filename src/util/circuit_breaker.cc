#include "util/circuit_breaker.h"

#include "util/check.h"
#include "util/failpoint.h"
#include "util/metrics.h"

namespace autotest::util {

namespace {

struct BreakerCounters {
  metrics::Counter& open_total;
  metrics::Counter& half_open_total;
  metrics::Counter& closed_total;
  metrics::Counter& rejections;
};

BreakerCounters& Counters() {
  static BreakerCounters counters{
      metrics::Registry::Global().GetCounter(
          metrics::kMServeBreakerOpenTotal),
      metrics::Registry::Global().GetCounter(
          metrics::kMServeBreakerHalfOpenTotal),
      metrics::Registry::Global().GetCounter(
          metrics::kMServeBreakerClosedTotal),
      metrics::Registry::Global().GetCounter(
          metrics::kMServeBreakerRejections),
  };
  return counters;
}

}  // namespace

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options,
                               Clock* clock)
    : options_(options), clock_(clock) {
  AT_CHECK_MSG(clock_ != nullptr, "CircuitBreaker needs a clock");
}

void CircuitBreaker::Stamp(const Transition& t) {
  BreakerCounters& counters = Counters();
  if (t.opened) counters.open_total.Increment();
  if (t.half_opened) counters.half_open_total.Increment();
  if (t.closed) counters.closed_total.Increment();
  if (t.rejected) counters.rejections.Increment();
}

bool CircuitBreaker::TryAcquire() {
  Transition t;
  bool admitted = false;
  {
    MutexLock lock(&mu_);
    switch (state_) {
      case State::kClosed:
        admitted = true;
        break;
      case State::kOpen:
        if (clock_->NowMicros() < open_until_micros_) {
          t.rejected = true;
          break;
        }
        // Cooldown lapsed: this caller becomes the half-open probe —
        // unless the failpoint denies it, which re-arms the cooldown so
        // soak runs can pin a breaker open. The registry's lock is a
        // leaf (its counters are pre-bound), so evaluating it under mu_
        // cannot invert any lock order.
        if (FailpointFires(kFpBreakerProbe)) {
          open_until_micros_ =
              clock_->NowMicros() + options_.cooldown_micros;
          t.rejected = true;
          break;
        }
        state_ = State::kHalfOpen;
        probe_outstanding_ = true;
        t.half_opened = true;
        admitted = true;
        break;
      case State::kHalfOpen:
        // One probe at a time; everyone else keeps shedding until the
        // probe's outcome is recorded.
        t.rejected = true;
        break;
    }
  }
  Stamp(t);
  return admitted;
}

void CircuitBreaker::RecordSuccess() {
  Transition t;
  {
    MutexLock lock(&mu_);
    consecutive_failures_ = 0;
    if (state_ == State::kHalfOpen) {
      state_ = State::kClosed;
      probe_outstanding_ = false;
      t.closed = true;
    }
  }
  Stamp(t);
}

void CircuitBreaker::RecordFailure() {
  const int threshold =
      options_.failure_threshold < 1 ? 1 : options_.failure_threshold;
  Transition t;
  {
    MutexLock lock(&mu_);
    ++consecutive_failures_;
    if (state_ == State::kHalfOpen) {
      // The probe failed: straight back to open, cooldown re-armed.
      state_ = State::kOpen;
      probe_outstanding_ = false;
      open_until_micros_ = clock_->NowMicros() + options_.cooldown_micros;
      t.opened = true;
    } else if (state_ == State::kClosed &&
               consecutive_failures_ >= threshold) {
      state_ = State::kOpen;
      open_until_micros_ = clock_->NowMicros() + options_.cooldown_micros;
      t.opened = true;
    }
  }
  Stamp(t);
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(&mu_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  MutexLock lock(&mu_);
  return consecutive_failures_;
}

CircuitBreakerMap::CircuitBreakerMap(const CircuitBreakerOptions& options,
                                     Clock* clock, size_t max_tracked)
    : options_(options), clock_(clock), max_tracked_(max_tracked) {
  AT_CHECK_MSG(clock_ != nullptr, "CircuitBreakerMap needs a clock");
}

CircuitBreaker& CircuitBreakerMap::For(std::string_view key) {
  MutexLock lock(&mu_);
  auto it = breakers_.find(key);
  if (it != breakers_.end()) return *it->second;
  if (breakers_.size() >= max_tracked_) {
    // Cap reached: a client inventing key material shares one overflow
    // breaker instead of growing the map without bound.
    if (overflow_ == nullptr) {
      overflow_ = std::make_unique<CircuitBreaker>(options_, clock_);
    }
    return *overflow_;
  }
  auto [inserted, _] = breakers_.emplace(
      std::string(key),
      std::make_unique<CircuitBreaker>(options_, clock_));
  return *inserted->second;
}

size_t CircuitBreakerMap::size() const {
  MutexLock lock(&mu_);
  return breakers_.size();
}

}  // namespace autotest::util
