#ifndef AUTOTEST_UTIL_BUDGET_H_
#define AUTOTEST_UTIL_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string_view>

#include "util/retry.h"
#include "util/status.h"

// Per-request resource budgets (DESIGN.md §4j).
//
// A ResourceBudget bounds one request in three countable dimensions —
// bytes resident, rows parsed, cell-work units — plus an absolute
// deadline on an injectable Clock. Charging is the contract: every layer
// that allocates or computes proportionally to untrusted input charges
// the budget *before* doing the work (TryParseCsv per row, the
// predictor per rule-group evaluation, the serve session per report
// line), so a hostile request fails fast with a structured
// kResourceExhausted status instead of OOM-ing the daemon.
//
// Charges are single relaxed atomic RMWs, so parallel predict workers
// charge one shared budget without locks. An over-limit charge is rolled
// back before returning, which keeps the accounting exact under
// concurrency: `used()` never includes a rejected charge.
//
// BudgetScope is the RAII tracking-charge API for budgets that outlive
// one consumer (e.g. a shared daemon-wide ceiling): it remembers what it
// charged and releases every held unit on destruction, so a finished
// request returns its allowance no matter which early-return path it
// took.
//
// Failpoint `budget.charge` injects a rejection at any charge site
// (default flavor kResourceExhausted), letting soak runs prove every
// charging layer propagates the structured error.

namespace autotest::util {

enum class ResourceKind { kBytes = 0, kRows = 1, kCells = 2 };

/// Stable lower-case name for diagnostics ("bytes", "rows", "cells").
std::string_view ResourceKindName(ResourceKind kind);

/// Ceilings for one budget. A zero limit disables that dimension; a null
/// clock (or zero deadline) disables the deadline.
struct ResourceLimits {
  uint64_t max_bytes = 0;
  uint64_t max_rows = 0;
  uint64_t max_cells = 0;
  /// Absolute reading of `clock` (so queue time can count against it).
  int64_t deadline_micros = 0;
  Clock* clock = nullptr;
};

/// Thread-safe tracking budget. Copying is deliberately disabled: a
/// budget is an identity (one request's allowance), not a value.
class ResourceBudget {
 public:
  /// An unlimited budget; every charge succeeds.
  ResourceBudget() = default;
  explicit ResourceBudget(const ResourceLimits& limits) : limits_(limits) {}

  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  /// Charges `amount` units of `kind`. kResourceExhausted (with the
  /// dimension, usage and `what` in the message) when the cumulative
  /// total would exceed the limit; the failed charge is rolled back, so
  /// usage stays exact. Evaluates failpoint `budget.charge`.
  [[nodiscard]] Status TryCharge(ResourceKind kind, uint64_t amount,
                                 std::string_view what);

  /// Returns previously charged units (BudgetScope's destructor; a
  /// caller releasing more than it charged is a programmer error and
  /// saturates at zero).
  void Release(ResourceKind kind, uint64_t amount);

  /// kDeadlineExceeded once the limits' deadline has passed on its
  /// clock; Ok when no deadline is configured. `phase` names the
  /// boundary for the diagnostic.
  [[nodiscard]] Status CheckDeadline(std::string_view phase) const;

  uint64_t used(ResourceKind kind) const {
    return used_[Index(kind)].load(std::memory_order_relaxed);
  }
  uint64_t limit(ResourceKind kind) const;

  /// True once any charge has been rejected (over-limit or injected).
  bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  /// Total TryCharge calls / rejected TryCharge calls.
  uint64_t charges() const {
    return charges_.load(std::memory_order_relaxed);
  }
  uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t Index(ResourceKind kind) {
    return static_cast<size_t>(kind);
  }

  ResourceLimits limits_;
  std::atomic<uint64_t> used_[3] = {{0}, {0}, {0}};
  std::atomic<uint64_t> charges_{0};
  std::atomic<uint64_t> rejections_{0};
  std::atomic<bool> exhausted_{false};
};

/// RAII charge tracker over a ResourceBudget. Forwards charges to the
/// budget, remembers what it successfully charged, and releases every
/// held unit on destruction — the pattern for budgets shared wider than
/// one request. A default-constructed (or null-budget) scope accepts
/// every charge and holds nothing. Not thread-safe: one scope belongs
/// to one consumer (the shared budget underneath does the
/// synchronization).
class BudgetScope {
 public:
  BudgetScope() = default;
  explicit BudgetScope(ResourceBudget* budget) : budget_(budget) {}
  ~BudgetScope() { ReleaseAll(); }

  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

  /// Charges the underlying budget; on success the units are held by
  /// this scope until ReleaseAll()/destruction.
  [[nodiscard]] Status TryCharge(ResourceKind kind, uint64_t amount,
                                 std::string_view what);

  /// Returns every held unit to the budget now (idempotent).
  void ReleaseAll();

  /// Units this scope currently holds.
  uint64_t held(ResourceKind kind) const {
    return held_[static_cast<size_t>(kind)];
  }

 private:
  ResourceBudget* budget_ = nullptr;
  uint64_t held_[3] = {0, 0, 0};
};

}  // namespace autotest::util

#endif  // AUTOTEST_UTIL_BUDGET_H_
