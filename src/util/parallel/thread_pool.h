#ifndef AUTOTEST_UTIL_PARALLEL_THREAD_POOL_H_
#define AUTOTEST_UTIL_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/parallel/stats.h"
#include "util/thread_annotations.h"

namespace autotest::util::parallel {

/// Per-call knobs for the parallel loops below.
struct Options {
  /// Max participants (caller included). 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Items per chunk. 0 = heuristic: ParallelFor/ParallelForEachChunk size
  /// chunks off the participant count; ParallelReduce uses a grain that
  /// depends only on n so its merge tree is identical across thread counts.
  size_t grain = 0;
};

/// Chunk body: invoked as fn(begin, end) with begin < end.
using ChunkFn = std::function<void(size_t, size_t)>;

/// Persistent work-stealing pool. Workers are lazily spawned on first use
/// and reused across calls; each parallel region partitions its chunks into
/// per-participant ranges, owners pop from the front of their own range and
/// idle participants steal single chunks from the back of a victim's range.
/// Ranges only ever shrink (front CAS up, back CAS down), which rules out
/// ABA on the packed (lo, hi) words.
///
/// Determinism contract: every chunk executes exactly once; callers write
/// results to per-index (or per-chunk) slots and merge them in index order
/// after the region ends, so results are independent of the schedule and of
/// the thread count. Nested parallel regions execute inline (serially) on
/// the calling worker.
class ThreadPool {
 public:
  /// The process-wide pool. First call constructs it; workers are spawned
  /// on demand as regions request more participants.
  static ThreadPool& Global();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every chunk [c*grain, min(n, (c+1)*grain)), c in [0, ceil(n/grain)),
  /// through body on up to num_threads participants (caller included;
  /// 0 = hardware concurrency). Blocks until all chunks are done. Safe to
  /// call from multiple external threads (regions are serialized) and from
  /// inside a running region (the nested region runs inline).
  void RunChunked(size_t n, size_t grain, size_t num_threads,
                  const ChunkFn& body);

  /// Worker threads currently alive (excludes callers).
  size_t num_workers() const;

 private:
  struct JobState;

  ThreadPool() = default;
  void EnsureWorkers(size_t want);
  void WorkerLoop();
  static void WorkOn(JobState& job, size_t slot);
  static void RunSerial(size_t n, size_t grain, const ChunkFn& body);

  /// Serializes regions from distinct external threads; always taken
  /// before mu_ (R9 edge).
  util::Mutex run_mu_ AT_ACQUIRED_BEFORE(mu_);
  mutable util::Mutex mu_;
  util::CondVar wake_cv_;  // workers: a new region was posted
  util::CondVar done_cv_;  // submitter: region fully drained
  JobState* job_ AT_GUARDED_BY(mu_) = nullptr;
  uint64_t epoch_ AT_GUARDED_BY(mu_) = 0;
  bool stop_ AT_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_ AT_GUARDED_BY(mu_);
};

/// Default participant count: hardware_concurrency, at least 1.
size_t DefaultThreadCount();

/// Runs fn(i) for every i in [0, n) exactly once; blocks until done.
/// fn must be safe to call concurrently for distinct indices; write outputs
/// to per-index slots to keep the computation deterministic.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 const Options& opt = {});

/// Runs fn(begin, end) over a chunked partition of [0, n); the partition is
/// a pure function of (n, grain), never of the thread count.
void ParallelForEachChunk(size_t n, const ChunkFn& fn,
                          const Options& opt = {});

/// Grain used by ParallelReduce when opt.grain == 0: depends only on n, so
/// chunk boundaries — and therefore floating-point merge order — are
/// identical across thread counts.
size_t ReduceGrain(size_t n);

/// Deterministic parallel reduction. map(i, acc) folds item i into a
/// chunk-local accumulator seeded with identity; chunk partials are then
/// merged serially in ascending chunk order via reduce(acc, partial).
/// Because the chunk partition depends only on (n, grain), results are
/// bit-identical across thread counts, including for floating point.
template <typename T, typename MapFn, typename ReduceFn>
T ParallelReduce(size_t n, T identity, MapFn&& map, ReduceFn&& reduce,
                 const Options& opt = {}) {
  if (n == 0) return identity;
  const size_t grain = opt.grain != 0 ? opt.grain : ReduceGrain(n);
  const size_t num_chunks = (n + grain - 1) / grain;
  std::vector<T> partials(num_chunks, identity);
  ThreadPool::Global().RunChunked(
      n, grain, opt.num_threads, [&](size_t begin, size_t end) {
        T acc = identity;
        for (size_t i = begin; i < end; ++i) map(i, acc);
        partials[begin / grain] = std::move(acc);
      });
  T out = std::move(identity);
  for (size_t c = 0; c < num_chunks; ++c) {
    out = reduce(std::move(out), std::move(partials[c]));
  }
  return out;
}

}  // namespace autotest::util::parallel

#endif  // AUTOTEST_UTIL_PARALLEL_THREAD_POOL_H_
