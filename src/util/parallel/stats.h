#ifndef AUTOTEST_UTIL_PARALLEL_STATS_H_
#define AUTOTEST_UTIL_PARALLEL_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace autotest::util::parallel {

/// Process-wide counters for the parallel runtime. All counters are
/// monotonically increasing and updated with relaxed atomics; they are
/// diagnostics, not synchronization. Benches and the CLI dump them via
/// FormatStats().
struct Stats {
  /// Parallel-region entries, including ones that fell back to serial.
  std::atomic<uint64_t> invocations{0};
  /// Subset of invocations executed inline on the caller (n too small,
  /// one thread requested, or a nested call inside a running region).
  std::atomic<uint64_t> serial_invocations{0};
  /// Loop items (indices) executed across all invocations.
  std::atomic<uint64_t> items{0};
  /// Chunks executed across all invocations.
  std::atomic<uint64_t> chunks{0};
  /// Chunks a worker claimed from another worker's range.
  std::atomic<uint64_t> steals{0};
  /// Sum over parallel invocations of participants that actually joined
  /// (submitter included).
  std::atomic<uint64_t> participants{0};
  /// Sum over parallel invocations of participant slots offered.
  std::atomic<uint64_t> slots_offered{0};
};

/// The global counter block shared by every pool invocation.
Stats& GlobalStats();

/// Copies of the counters at one instant (relaxed loads).
struct StatsSnapshot {
  uint64_t invocations = 0;
  uint64_t serial_invocations = 0;
  uint64_t items = 0;
  uint64_t chunks = 0;
  uint64_t steals = 0;
  uint64_t participants = 0;
  uint64_t slots_offered = 0;

  /// Fraction of offered participant slots that were actually manned.
  double utilization() const {
    return slots_offered == 0
               ? 1.0
               : static_cast<double>(participants) /
                     static_cast<double>(slots_offered);
  }
};

StatsSnapshot SnapshotStats();
void ResetStats();

/// One-line human-readable dump, e.g. for benches and `--parallel-stats`.
std::string FormatStats();

}  // namespace autotest::util::parallel

#endif  // AUTOTEST_UTIL_PARALLEL_STATS_H_
