#ifndef AUTOTEST_UTIL_PARALLEL_STATS_H_
#define AUTOTEST_UTIL_PARALLEL_STATS_H_

#include <cstdint>
#include <string>

#include "util/metrics.h"

namespace autotest::util::parallel {

/// Process-wide counters for the parallel runtime. Since the metrics
/// migration these are references into metrics::Registry::Global()
/// (`parallel.*` family), so one JSON dump covers them alongside every
/// other component; the accessors below are kept as thin shims so no
/// call site changed. Updates stay relaxed-atomic: diagnostics, not
/// synchronization.
struct Stats {
  /// Parallel-region entries, including ones that fell back to serial.
  metrics::Counter& invocations;
  /// Subset of invocations executed inline on the caller (n too small,
  /// one thread requested, or a nested call inside a running region).
  metrics::Counter& serial_invocations;
  /// Loop items (indices) executed across all invocations.
  metrics::Counter& items;
  /// Chunks executed across all invocations.
  metrics::Counter& chunks;
  /// Chunks a worker claimed from another worker's range.
  metrics::Counter& steals;
  /// Sum over parallel invocations of participants that actually joined
  /// (submitter included).
  metrics::Counter& participants;
  /// Sum over parallel invocations of participant slots offered.
  metrics::Counter& slots_offered;
};

/// The global counter block shared by every pool invocation.
Stats& GlobalStats();

/// Copies of the counters at one instant (relaxed loads).
struct StatsSnapshot {
  uint64_t invocations = 0;
  uint64_t serial_invocations = 0;
  uint64_t items = 0;
  uint64_t chunks = 0;
  uint64_t steals = 0;
  uint64_t participants = 0;
  uint64_t slots_offered = 0;

  /// Fraction of offered participant slots that were actually manned.
  double utilization() const {
    return slots_offered == 0
               ? 1.0
               : static_cast<double>(participants) /
                     static_cast<double>(slots_offered);
  }
};

StatsSnapshot SnapshotStats();
void ResetStats();

/// One-line human-readable dump, e.g. for benches and `--parallel-stats`.
std::string FormatStats();

}  // namespace autotest::util::parallel

#endif  // AUTOTEST_UTIL_PARALLEL_STATS_H_
