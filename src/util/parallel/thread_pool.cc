#include "util/parallel/thread_pool.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace autotest::util::parallel {

namespace {

// Hard cap on pool threads; regions requesting more are clamped. Generous
// relative to any machine this runs on while bounding oversubscription in
// tests that ask for more threads than cores.
constexpr size_t kMaxWorkers = 63;

// Target chunks per participant: enough slack for stealing to balance
// skewed items without paying a CAS per index.
constexpr size_t kChunksPerParticipant = 8;
constexpr size_t kMaxGrain = 4096;

// A claimable range of chunk indices packed as (hi << 32) | lo. Owners pop
// lo upward, thieves pop hi downward; the interval only shrinks, so a CAS
// can never succeed against a stale snapshot.
uint64_t PackRange(uint32_t lo, uint32_t hi) {
  return (static_cast<uint64_t>(hi) << 32) | lo;
}
uint32_t RangeLo(uint64_t bits) { return static_cast<uint32_t>(bits); }
uint32_t RangeHi(uint64_t bits) { return static_cast<uint32_t>(bits >> 32); }

// True while the current thread is executing inside a parallel region
// (as submitter or worker); nested regions then run inline.
thread_local bool tl_in_region = false;

size_t HeuristicGrain(size_t n, size_t participants) {
  size_t grain = n / (participants * kChunksPerParticipant);
  return std::clamp<size_t>(grain, 1, kMaxGrain);
}

}  // namespace

Stats& GlobalStats() {
  // The counters live in the global metrics registry; this block of
  // references is the pool's cached handle so the hot path never takes
  // the registry lock.
  static Stats stats{
      metrics::Registry::Global().GetCounter(metrics::kMParallelInvocations),
      metrics::Registry::Global().GetCounter(
          metrics::kMParallelSerialInvocations),
      metrics::Registry::Global().GetCounter(metrics::kMParallelItems),
      metrics::Registry::Global().GetCounter(metrics::kMParallelChunks),
      metrics::Registry::Global().GetCounter(metrics::kMParallelSteals),
      metrics::Registry::Global().GetCounter(metrics::kMParallelParticipants),
      metrics::Registry::Global().GetCounter(
          metrics::kMParallelSlotsOffered)};
  return stats;
}

StatsSnapshot SnapshotStats() {
  const Stats& s = GlobalStats();
  StatsSnapshot out;
  out.invocations = s.invocations.value();
  out.serial_invocations = s.serial_invocations.value();
  out.items = s.items.value();
  out.chunks = s.chunks.value();
  out.steals = s.steals.value();
  out.participants = s.participants.value();
  out.slots_offered = s.slots_offered.value();
  return out;
}

void ResetStats() {
  Stats& s = GlobalStats();
  s.invocations.Reset();
  s.serial_invocations.Reset();
  s.items.Reset();
  s.chunks.Reset();
  s.steals.Reset();
  s.participants.Reset();
  s.slots_offered.Reset();
}

std::string FormatStats() {
  StatsSnapshot s = SnapshotStats();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "parallel::Stats: invocations=%llu (serial=%llu) "
                "items=%llu chunks=%llu steals=%llu utilization=%.0f%% "
                "(participants %llu/%llu)",
                static_cast<unsigned long long>(s.invocations),
                static_cast<unsigned long long>(s.serial_invocations),
                static_cast<unsigned long long>(s.items),
                static_cast<unsigned long long>(s.chunks),
                static_cast<unsigned long long>(s.steals),
                100.0 * s.utilization(),
                static_cast<unsigned long long>(s.participants),
                static_cast<unsigned long long>(s.slots_offered));
  return buf;
}

size_t DefaultThreadCount() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

size_t ReduceGrain(size_t n) {
  return std::clamp<size_t>(n / 64, 1, kMaxGrain);
}

struct ThreadPool::JobState {
  const ChunkFn* body = nullptr;
  size_t n = 0;
  size_t grain = 0;
  size_t num_chunks = 0;
  size_t slots = 0;  // max participants, submitter included
  // Per-participant claimable chunk ranges, padded against false sharing.
  struct alignas(64) Range {
    std::atomic<uint64_t> bits{0};
  };
  std::vector<Range> ranges;
  // Next participant slot; the submitter holds ticket 0.
  std::atomic<uint32_t> tickets{1};
  // Chunks not yet fully executed; the region is done at zero.
  std::atomic<uint64_t> remaining{0};
  // Pool workers currently inside WorkOn for this job. The submitter waits
  // for this to drain before the JobState leaves scope.
  std::atomic<uint32_t> active{0};
};

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> workers;
  {
    MutexLock lk(&mu_);
    stop_ = true;
    workers.swap(workers_);
  }
  wake_cv_.NotifyAll();
  for (auto& t : workers) t.join();
}

size_t ThreadPool::num_workers() const {
  MutexLock lk(&mu_);
  return workers_.size();
}

void ThreadPool::EnsureWorkers(size_t want) {
  want = std::min(want, kMaxWorkers);
  MutexLock lk(&mu_);
  while (workers_.size() < want) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::RunSerial(size_t n, size_t grain, const ChunkFn& body) {
  for (size_t begin = 0; begin < n; begin += grain) {
    body(begin, std::min(n, begin + grain));
  }
}

void ThreadPool::RunChunked(size_t n, size_t grain, size_t num_threads,
                            const ChunkFn& body) {
  Stats& st = GlobalStats();
  st.invocations.Increment();
  if (n == 0) return;
  if (num_threads == 0) num_threads = DefaultThreadCount();
  num_threads = std::min(num_threads, kMaxWorkers + 1);
  if (grain == 0) grain = HeuristicGrain(n, num_threads);
  const size_t num_chunks = (n + grain - 1) / grain;
  AT_CHECK_MSG(num_chunks <= UINT32_MAX, "parallel region too large");
  const size_t slots = std::min(num_threads, num_chunks);

  st.items.Increment(n);
  st.chunks.Increment(num_chunks);

  if (tl_in_region || slots <= 1) {
    st.serial_invocations.Increment();
    RunSerial(n, grain, body);
    return;
  }

  EnsureWorkers(slots - 1);

  JobState job;
  job.body = &body;
  job.n = n;
  job.grain = grain;
  job.num_chunks = num_chunks;
  job.slots = slots;
  job.ranges = std::vector<JobState::Range>(slots);
  for (size_t s = 0; s < slots; ++s) {
    uint32_t lo = static_cast<uint32_t>(num_chunks * s / slots);
    uint32_t hi = static_cast<uint32_t>(num_chunks * (s + 1) / slots);
    job.ranges[s].bits.store(PackRange(lo, hi), std::memory_order_relaxed);
  }
  job.remaining.store(num_chunks, std::memory_order_relaxed);

  // One region at a time: concurrent external submitters queue here.
  MutexLock run_lk(&run_mu_);
  {
    MutexLock lk(&mu_);
    job_ = &job;
    ++epoch_;
  }
  wake_cv_.NotifyAll();

  tl_in_region = true;
  WorkOn(job, 0);
  tl_in_region = false;

  {
    MutexLock lk(&mu_);
    while (job.remaining.load(std::memory_order_acquire) != 0 ||
           job.active.load(std::memory_order_acquire) != 0) {
      done_cv_.Wait(mu_);
    }
    job_ = nullptr;
  }

  uint32_t joined =
      std::min<uint32_t>(job.tickets.load(std::memory_order_relaxed),
                         static_cast<uint32_t>(slots));
  st.participants.Increment(joined);
  st.slots_offered.Increment(slots);
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  mu_.Lock();
  for (;;) {
    while (!stop_ && (epoch_ == seen_epoch || job_ == nullptr)) {
      wake_cv_.Wait(mu_);
    }
    if (stop_) {
      mu_.Unlock();
      return;
    }
    seen_epoch = epoch_;
    JobState* job = job_;
    uint32_t ticket = job->tickets.fetch_add(1, std::memory_order_relaxed);
    if (ticket >= job->slots) continue;  // region already fully staffed
    job->active.fetch_add(1, std::memory_order_relaxed);
    mu_.Unlock();

    tl_in_region = true;
    WorkOn(*job, ticket);
    tl_in_region = false;

    mu_.Lock();
    job->active.fetch_sub(1, std::memory_order_release);
    done_cv_.NotifyAll();
  }
}

void ThreadPool::WorkOn(JobState& job, size_t slot) {
  const size_t n = job.n;
  const size_t grain = job.grain;
  uint64_t local_steals = 0;

  auto exec = [&](uint32_t chunk) {
    size_t begin = static_cast<size_t>(chunk) * grain;
    (*job.body)(begin, std::min(n, begin + grain));
    job.remaining.fetch_sub(1, std::memory_order_acq_rel);
  };

  for (;;) {
    // Drain the front of our own range.
    uint64_t bits = job.ranges[slot].bits.load(std::memory_order_acquire);
    while (RangeLo(bits) < RangeHi(bits)) {
      if (job.ranges[slot].bits.compare_exchange_weak(
              bits, PackRange(RangeLo(bits) + 1, RangeHi(bits)),
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        uint32_t chunk = RangeLo(bits);
        exec(chunk);
        bits = job.ranges[slot].bits.load(std::memory_order_acquire);
      }
    }
    if (job.remaining.load(std::memory_order_acquire) == 0) break;

    // Steal one chunk from the back of the first non-empty victim.
    bool stole = false;
    for (size_t k = 1; k < job.slots && !stole; ++k) {
      size_t victim = (slot + k) % job.slots;
      uint64_t vb = job.ranges[victim].bits.load(std::memory_order_acquire);
      while (RangeLo(vb) < RangeHi(vb)) {
        if (job.ranges[victim].bits.compare_exchange_weak(
                vb, PackRange(RangeLo(vb), RangeHi(vb) - 1),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          ++local_steals;
          exec(RangeHi(vb) - 1);
          stole = true;
          break;
        }
      }
    }
    // No claimable work anywhere: remaining chunks (if any) are already
    // being executed by other participants.
    if (!stole) break;
  }

  if (local_steals != 0) {
    GlobalStats().steals.Increment(local_steals);
  }
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 const Options& opt) {
  ThreadPool::Global().RunChunked(
      n, opt.grain, opt.num_threads, [&fn](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) fn(i);
      });
}

void ParallelForEachChunk(size_t n, const ChunkFn& fn, const Options& opt) {
  size_t grain = opt.grain;
  if (grain == 0) {
    size_t threads =
        opt.num_threads == 0 ? DefaultThreadCount() : opt.num_threads;
    grain = HeuristicGrain(n, threads);
  }
  ThreadPool::Global().RunChunked(n, grain, opt.num_threads, fn);
}

}  // namespace autotest::util::parallel
