#ifndef AUTOTEST_UTIL_RETRY_H_
#define AUTOTEST_UTIL_RETRY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

// Deterministic retry with exponential backoff for transient failures on
// the load/serve path (DESIGN.md §4e).
//
// Retry decisions are keyed on StatusCode: kIoError and kResourceExhausted
// are transient (the OS or a resource limit failed us — trying again can
// succeed), everything else is permanent (kDataLoss bytes stay corrupt no
// matter how often they are re-read) and fails fast on the first attempt.
//
// All time flows through an injectable Clock so unit tests run the whole
// backoff/deadline machinery in virtual time with zero real sleeping, and
// so the module satisfies at_lint R2 (the single real-clock read lives
// behind the RealClock() seam with an audited suppression). The jitter is
// a pure function of (policy.seed, stream, attempt): the same seed always
// produces a byte-identical backoff schedule.

namespace autotest::util {

/// Time source + sleeper seam. Production code uses RealClock();
/// tests inject a VirtualClock so retries take zero wall-clock time.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic timestamp in microseconds (origin unspecified).
  virtual int64_t NowMicros() = 0;
  /// Blocks (or simulates blocking) for `micros` microseconds.
  virtual void SleepMicros(int64_t micros) = 0;
};

/// The process-wide monotonic clock (std::chrono::steady_clock).
Clock& RealClock();

/// Test clock: NowMicros starts at 0 and advances only via SleepMicros /
/// Advance. Thread-safe (shard loads sleep from pool workers).
class VirtualClock final : public Clock {
 public:
  int64_t NowMicros() override {
    return now_micros_.load(std::memory_order_relaxed);
  }
  void SleepMicros(int64_t micros) override {
    if (micros <= 0) return;
    now_micros_.fetch_add(micros, std::memory_order_relaxed);
    slept_micros_.fetch_add(micros, std::memory_order_relaxed);
    sleep_calls_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Moves time forward without counting as a sleep.
  void Advance(int64_t micros) {
    now_micros_.fetch_add(micros, std::memory_order_relaxed);
  }
  /// Total virtual time spent inside SleepMicros.
  int64_t slept_micros() const {
    return slept_micros_.load(std::memory_order_relaxed);
  }
  size_t sleep_calls() const {
    return sleep_calls_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_micros_{0};
  std::atomic<int64_t> slept_micros_{0};
  std::atomic<size_t> sleep_calls_{0};
};

/// Retry knobs. Deterministic: the k-th backoff for a given (seed, stream)
/// never changes across runs, threads or machines.
struct RetryPolicy {
  /// Total attempts including the first; values < 1 behave as 1.
  int max_attempts = 4;
  /// Backoff before the first retry.
  int64_t initial_backoff_micros = 10'000;  // 10 ms
  /// Growth factor per retry (clamped at max_backoff_micros).
  double backoff_multiplier = 2.0;
  int64_t max_backoff_micros = 2'000'000;  // 2 s
  /// Backoff is scaled by a deterministic factor in
  /// [1 - jitter_fraction, 1 + jitter_fraction].
  double jitter_fraction = 0.25;
  /// Overall budget across all attempts and sleeps; 0 = unlimited. When a
  /// backoff would overrun the deadline the last error is returned
  /// immediately instead of sleeping past it.
  int64_t deadline_micros = 0;
  /// Seed for the jitter stream.
  uint64_t seed = 0;
};

/// True for codes worth retrying: kIoError, kResourceExhausted.
bool IsRetryableCode(StatusCode code);

/// Backoff (jitter applied) slept after attempt number `attempt` (1-based:
/// attempt 1 is the first failure). Pure function of its arguments.
int64_t BackoffMicros(const RetryPolicy& policy, uint64_t stream,
                      int attempt);

/// The full schedule [backoff after attempt 1, ..., after max_attempts-1].
/// Tests assert byte-identical schedules for equal seeds.
std::vector<int64_t> BackoffScheduleMicros(const RetryPolicy& policy,
                                           uint64_t stream);

namespace retry_internal {
inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
const Status& StatusOf(const Result<T>& result) {
  return result.status();
}

/// Folds one finished RetryCall into the `retry.*` metrics family:
/// attempts made, retries (attempts beyond the first) and whether the
/// call gave up (exhausted attempts or deadline). Aggregated across all
/// callers — metric names must be static for the R6 catalogue, so there
/// is deliberately no per-stream breakdown.
void RecordRetryMetrics(int attempts, bool gave_up);
}  // namespace retry_internal

/// Runs `fn` (returning Status or Result<T>) up to policy.max_attempts
/// times. Transient errors (IsRetryableCode) back off and retry; permanent
/// errors and the final attempt's error return immediately with a context
/// frame recording the attempt count. `stream` decorrelates jitter between
/// concurrent callers (e.g. the shard index); `attempts_out`, when
/// non-null, receives the number of attempts actually made.
template <typename Fn>
auto RetryCall(const RetryPolicy& policy, Clock& clock, uint64_t stream,
               Fn&& fn, size_t* attempts_out = nullptr) -> decltype(fn()) {
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  const int64_t start_micros = clock.NowMicros();
  int attempt = 0;
  while (true) {
    auto result = fn();
    ++attempt;
    if (attempts_out != nullptr) *attempts_out = static_cast<size_t>(attempt);
    if (result.ok()) {
      retry_internal::RecordRetryMetrics(attempt, /*gave_up=*/false);
      return result;
    }
    const Status& status = retry_internal::StatusOf(result);
    if (!IsRetryableCode(status.code())) {  // permanent: no retry
      retry_internal::RecordRetryMetrics(attempt, /*gave_up=*/false);
      return result;
    }
    if (attempt >= max_attempts) {
      retry_internal::RecordRetryMetrics(attempt, /*gave_up=*/true);
      Status final = status;
      return std::move(final).WithContext(
          "retrying (gave up after " + std::to_string(attempt) +
          " attempts)");
    }
    const int64_t backoff = BackoffMicros(policy, stream, attempt);
    if (policy.deadline_micros > 0 &&
        clock.NowMicros() - start_micros + backoff > policy.deadline_micros) {
      retry_internal::RecordRetryMetrics(attempt, /*gave_up=*/true);
      Status final = status;
      return std::move(final).WithContext(
          "retrying (deadline budget " +
          std::to_string(policy.deadline_micros) + "us exhausted after " +
          std::to_string(attempt) + " attempts)");
    }
    clock.SleepMicros(backoff);
  }
}

}  // namespace autotest::util

#endif  // AUTOTEST_UTIL_RETRY_H_
