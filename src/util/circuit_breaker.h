#ifndef AUTOTEST_UTIL_CIRCUIT_BREAKER_H_
#define AUTOTEST_UTIL_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/mutex.h"
#include "util/retry.h"
#include "util/thread_annotations.h"

// Deterministic circuit breaker (DESIGN.md §4j). Quarantines a repeat
// offender — the serve tier keys one breaker per (tenant, rule-set
// version) — so a client that keeps sending failing requests stops
// consuming worker time until a cooldown lapses.
//
// State machine (all transitions are a pure function of the recorded
// outcomes and the injectable Clock, so tests drive it over a
// VirtualClock with exact expectations):
//
//   closed ──(N consecutive failures)──> open
//   open   ──(cooldown lapses; next TryAcquire admits ONE probe)──> half-open
//   half-open ──(probe succeeds)──> closed
//   half-open ──(probe fails)────> open (cooldown re-arms)
//
// While open (or while a half-open probe is outstanding) TryAcquire
// returns false and the caller sheds with `reason=circuit_open`.
// Failpoint `breaker.probe` denies the half-open probe admission and
// re-arms the cooldown, so soak runs can pin a breaker open.
//
// Metrics (serve.breaker_*): open/half-open/close transition counts and
// the number of denied acquisitions, stamped outside the state lock.

namespace autotest::util {

struct CircuitBreakerOptions {
  /// Consecutive failures that trip closed -> open. Values < 1 act as 1.
  int failure_threshold = 5;
  /// How long the breaker stays open before admitting a probe.
  int64_t cooldown_micros = 5'000'000;  // 5 s
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// `clock` must be non-null and outlive the breaker.
  CircuitBreaker(const CircuitBreakerOptions& options, Clock* clock);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// True when the caller may proceed. Open: false until the cooldown
  /// lapses, then exactly one caller is admitted as the half-open probe
  /// (unless failpoint `breaker.probe` fires, which denies the probe and
  /// re-arms the cooldown). Half-open with the probe outstanding: false.
  [[nodiscard]] bool TryAcquire() AT_EXCLUDES(mu_);

  /// Outcome of an acquired request. Success closes a half-open breaker
  /// and clears the failure streak; failure re-opens a half-open breaker
  /// immediately and trips a closed one at the threshold.
  void RecordSuccess() AT_EXCLUDES(mu_);
  void RecordFailure() AT_EXCLUDES(mu_);

  State state() const AT_EXCLUDES(mu_);
  int consecutive_failures() const AT_EXCLUDES(mu_);

 private:
  /// What a state change must stamp into metrics; collected under mu_,
  /// applied after it is released.
  struct Transition {
    bool opened = false;
    bool half_opened = false;
    bool closed = false;
    bool rejected = false;
  };
  void Stamp(const Transition& t);

  const CircuitBreakerOptions options_;
  Clock* const clock_;
  mutable Mutex mu_;
  State state_ AT_GUARDED_BY(mu_) = State::kClosed;
  int consecutive_failures_ AT_GUARDED_BY(mu_) = 0;
  int64_t open_until_micros_ AT_GUARDED_BY(mu_) = 0;
  bool probe_outstanding_ AT_GUARDED_BY(mu_) = false;
};

/// Keyed breaker registry (the serve tier keys by tenant + rule-set
/// version). Breakers are created on first use and live for the
/// registry's lifetime, so returned references stay valid. The map is
/// capped: past `max_tracked` distinct keys every further key shares one
/// overflow breaker, so a client inventing tenants cannot grow the map
/// unboundedly.
class CircuitBreakerMap {
 public:
  CircuitBreakerMap(const CircuitBreakerOptions& options, Clock* clock,
                    size_t max_tracked = 1024);

  CircuitBreakerMap(const CircuitBreakerMap&) = delete;
  CircuitBreakerMap& operator=(const CircuitBreakerMap&) = delete;

  /// The breaker for `key` (created closed on first use).
  CircuitBreaker& For(std::string_view key) AT_EXCLUDES(mu_);

  size_t size() const AT_EXCLUDES(mu_);

 private:
  const CircuitBreakerOptions options_;
  Clock* const clock_;
  const size_t max_tracked_;
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>, std::less<>>
      breakers_ AT_GUARDED_BY(mu_);
  std::unique_ptr<CircuitBreaker> overflow_ AT_GUARDED_BY(mu_);
};

}  // namespace autotest::util

#endif  // AUTOTEST_UTIL_CIRCUIT_BREAKER_H_
