#ifndef AUTOTEST_UTIL_STATUS_H_
#define AUTOTEST_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.h"

// Structured, exception-free error propagation for untrusted-input surfaces
// (CSV ingestion, rule-file loading, the CLI recipe loader). The library
// stays exception-free: recoverable failures travel as `Status` / `Result<T>`
// values with an error code, a human-readable message and a chain of context
// frames ("while loading rules from rules.sdc"); programmer errors keep
// aborting through AT_CHECK (see util/check.h and DESIGN.md §4c for the
// contract of which is which).

namespace autotest::util {

enum class StatusCode : int {
  kOk = 0,
  /// The caller passed something structurally unacceptable (bad options,
  /// unsupported file version, out-of-range parameter).
  kInvalidArgument = 1,
  /// A named resource (file, rule id) does not exist.
  kNotFound = 2,
  /// Input bytes are corrupt or truncated — the payload itself is damaged.
  kDataLoss = 3,
  /// The operating system failed us: open/read/write/rename errors.
  kIoError = 4,
  /// An input exceeds a configured resource limit (field/row byte caps) or
  /// an injected allocation fault fired.
  kResourceExhausted = 5,
  /// The operation cannot run in the current state.
  kFailedPrecondition = 6,
  /// A bug on our side surfaced as a recoverable error.
  kInternal = 7,
  /// A per-request time budget expired before the work finished. Not
  /// retryable (re-running the same work under the same budget expires
  /// again); the serving tier degrades to a partial report instead.
  kDeadlineExceeded = 8,
};

/// Stable upper-case name for diagnostics, e.g. "DATA_LOSS".
std::string_view StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName: parses a stable upper-case name back to its
/// code (used by degraded-mode provenance in rule-file recipes). Returns
/// nullopt for unknown names.
std::optional<StatusCode> StatusCodeFromName(std::string_view name);

/// A success-or-error value. Default construction and `Status::Ok()` are OK;
/// error states carry a code, message, and optional context chain. Copyable
/// and cheap to move; an OK status allocates nothing.
///
/// The class itself is [[nodiscard]]: dropping a returned Status on the
/// floor silently swallows the diagnostic the whole error layer exists to
/// carry, so builds treat it as an error (-Werror=unused-result) and
/// at_lint rule R1 flags it. An intentional discard must say so with
/// `(void)`.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const std::vector<std::string>& context() const { return context_; }

  /// Appends a context frame, innermost first. Frames read as gerunds:
  /// `st.WithContext("parsing rules from " + path)` renders as
  /// "  while parsing rules from rules.sdc". No-op on OK statuses.
  Status& WithContext(std::string frame) & {
    if (!ok()) context_.push_back(std::move(frame));
    return *this;
  }
  Status&& WithContext(std::string frame) && {
    return std::move(this->WithContext(std::move(frame)));
  }

  /// "DATA_LOSS: rule line 7: field 'd_in' is not a number
  ///    while loading rules from rules.sdc"
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::vector<std::string> context_;  // innermost frame first
};

/// Error constructors, one per code.
[[nodiscard]] Status InvalidArgumentError(std::string message);
[[nodiscard]] Status NotFoundError(std::string message);
[[nodiscard]] Status DataLossError(std::string message);
[[nodiscard]] Status IoError(std::string message);
[[nodiscard]] Status ResourceExhaustedError(std::string message);
[[nodiscard]] Status FailedPreconditionError(std::string message);
[[nodiscard]] Status InternalError(std::string message);
[[nodiscard]] Status DeadlineExceededError(std::string message);

/// A value-or-error. Implicitly constructible from either a `T` or a
/// non-OK `Status`, so functions can `return value;` and
/// `return DataLossError(...);` symmetrically. Accessing `value()` on an
/// error state is a programmer error and aborts (AT_CHECK).
///
/// [[nodiscard]] for the same reason as Status: a discarded Result<T> is
/// both a lost value and a lost diagnostic.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit.
  Result(Status status) : status_(std::move(status)) {
    AT_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AT_CHECK_MSG(ok(), "Result::value() on error status");
    return *value_;
  }
  T& value() & {
    AT_CHECK_MSG(ok(), "Result::value() on error status");
    return *value_;
  }
  T&& value() && {
    AT_CHECK_MSG(ok(), "Result::value() on error status");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Collapses to the legacy `optional` shape, discarding the diagnostic.
  /// Exists for the thin compatibility shims; new code should consume the
  /// Status instead.
  std::optional<T> ToOptional() && {
    return ok() ? std::optional<T>(std::move(*value_)) : std::nullopt;
  }

 private:
  Status status_;  // OK iff value_ holds
  std::optional<T> value_;
};

}  // namespace autotest::util

/// Propagates a non-OK Status to the caller.
#define AT_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::autotest::util::Status at_st_ = (expr); \
    if (!at_st_.ok()) return at_st_;          \
  } while (0)

#define AT_STATUS_CONCAT_INNER(a, b) a##b
#define AT_STATUS_CONCAT(a, b) AT_STATUS_CONCAT_INNER(a, b)

/// `AT_ASSIGN_OR_RETURN(auto table, TryParseCsv(text));` — unwraps a Result
/// into `lhs` or propagates its Status.
#define AT_ASSIGN_OR_RETURN(lhs, expr)                           \
  AT_ASSIGN_OR_RETURN_IMPL(AT_STATUS_CONCAT(at_res_, __LINE__), \
                           lhs, expr)
#define AT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#endif  // AUTOTEST_UTIL_STATUS_H_
