#ifndef AUTOTEST_UTIL_THREAD_POOL_H_
#define AUTOTEST_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace autotest::util {

/// Runs fn(i) for every i in [0, n) on up to num_threads workers.
/// Work is handed out via an atomic counter so long items balance naturally.
/// The call blocks until all items are done. fn must be thread-safe with
/// respect to distinct indices; results should be written to per-index slots
/// so the overall computation stays deterministic.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads = 0);

/// Default worker count: hardware_concurrency, at least 1.
size_t DefaultThreadCount();

}  // namespace autotest::util

#endif  // AUTOTEST_UTIL_THREAD_POOL_H_
