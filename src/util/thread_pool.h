#ifndef AUTOTEST_UTIL_THREAD_POOL_H_
#define AUTOTEST_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>

#include "util/parallel/thread_pool.h"

namespace autotest::util {

/// Runs fn(i) for every i in [0, n) on up to num_threads workers.
/// Forwarding shim over util::parallel::ParallelFor — the persistent
/// work-stealing pool — kept so legacy call sites compile unchanged.
/// The call blocks until all items are done. fn must be thread-safe with
/// respect to distinct indices; results should be written to per-index
/// slots so the overall computation stays deterministic.
inline void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                        size_t num_threads = 0) {
  parallel::Options opt;
  opt.num_threads = num_threads;
  parallel::ParallelFor(n, fn, opt);
}

/// Default worker count: hardware_concurrency, at least 1.
inline size_t DefaultThreadCount() {
  return parallel::DefaultThreadCount();
}

}  // namespace autotest::util

#endif  // AUTOTEST_UTIL_THREAD_POOL_H_
