#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace autotest::metrics {

namespace {

// Renders a double with enough precision to round-trip, trimming the
// trailing zeros %.17g would keep. Non-finite values become `null` so
// every emitted document stays valid JSON.
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  // Prefer the shortest representation that still round-trips.
  for (int precision = 1; precision <= 16; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  return buf;
}

std::string_view KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  AT_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  AT_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                       bounds_.end(),
               "histogram bounds must be strictly ascending");
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Name validation and serialization
// ---------------------------------------------------------------------------

bool IsValidMetricName(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  int segments = 1;
  bool at_segment_start = true;
  for (char c : name) {
    if (c == '.') {
      if (at_segment_start) return false;  // empty segment ("a..b")
      ++segments;
      at_segment_start = true;
      continue;
    }
    if (at_segment_start) {
      if (c < 'a' || c > 'z') return false;
      at_segment_start = false;
      continue;
    }
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return segments >= 2;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string FormatMetricsText(const std::vector<MetricValue>& values) {
  std::ostringstream os;
  for (const MetricValue& m : values) {
    switch (m.kind) {
      case MetricKind::kCounter:
        os << m.name << " " << m.counter << "\n";
        break;
      case MetricKind::kGauge:
        os << m.name << " " << FormatDouble(m.gauge) << "\n";
        break;
      case MetricKind::kHistogram: {
        os << m.name << " count=" << m.histogram.count
           << " sum=" << FormatDouble(m.histogram.sum) << " buckets=[";
        for (size_t i = 0; i < m.histogram.buckets.size(); ++i) {
          if (i > 0) os << " ";
          if (i < m.histogram.bounds.size()) {
            os << "le" << FormatDouble(m.histogram.bounds[i]) << ":"
               << m.histogram.buckets[i];
          } else {
            os << "inf:" << m.histogram.buckets[i];
          }
        }
        os << "]\n";
        break;
      }
    }
  }
  return os.str();
}

std::string FormatMetricsJson(const std::vector<MetricValue>& values,
                              std::string_view source) {
  std::ostringstream os;
  os << "{\"schema\":\"autotest.metrics.v1\",\"source\":\""
     << JsonEscape(source) << "\",\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : values) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"" << JsonEscape(m.name) << "\",\"kind\":\""
       << KindName(m.kind) << "\",";
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "\"value\":" << m.counter << "}";
        break;
      case MetricKind::kGauge:
        os << "\"value\":" << FormatDouble(m.gauge) << "}";
        break;
      case MetricKind::kHistogram: {
        os << "\"count\":" << m.histogram.count
           << ",\"sum\":" << FormatDouble(m.histogram.sum) << ",\"buckets\":[";
        for (size_t i = 0; i < m.histogram.buckets.size(); ++i) {
          if (i > 0) os << ",";
          os << "{\"le\":";
          if (i < m.histogram.bounds.size()) {
            os << FormatDouble(m.histogram.bounds[i]);
          } else {
            os << "\"+inf\"";
          }
          os << ",\"count\":" << m.histogram.buckets[i] << "}";
        }
        os << "]}";
        break;
      }
    }
  }
  os << "\n]}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::Global() {
  // Leaked intentionally: metric references handed to components must
  // stay valid through static destruction.
  static Registry* g = new Registry();
  return *g;
}

Counter& Registry::GetCounter(std::string_view name) {
  AT_CHECK_MSG(IsValidMetricName(name), "invalid metric name");
  util::MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = MetricKind::kCounter;
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  AT_CHECK_MSG(it->second.kind == MetricKind::kCounter,
               "metric re-registered under a different kind");
  return *it->second.counter;
}

Gauge& Registry::GetGauge(std::string_view name) {
  AT_CHECK_MSG(IsValidMetricName(name), "invalid metric name");
  util::MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = MetricKind::kGauge;
    e.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  AT_CHECK_MSG(it->second.kind == MetricKind::kGauge,
               "metric re-registered under a different kind");
  return *it->second.gauge;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  const std::vector<double>& bounds) {
  AT_CHECK_MSG(IsValidMetricName(name), "invalid metric name");
  util::MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = MetricKind::kHistogram;
    e.histogram.reset(new Histogram(bounds));
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  AT_CHECK_MSG(it->second.kind == MetricKind::kHistogram,
               "metric re-registered under a different kind");
  AT_CHECK_MSG(it->second.histogram->bounds() == bounds,
               "histogram re-registered with different bounds");
  return *it->second.histogram;
}

bool Registry::IsRegistered(std::string_view name) const {
  util::MutexLock lock(&mu_);
  return entries_.find(name) != entries_.end();
}

std::vector<MetricValue> Registry::Snapshot() const {
  util::MutexLock lock(&mu_);
  std::vector<MetricValue> out;
  out.reserve(entries_.size());
  // std::map iteration is already lexicographic by name.
  for (const auto& [name, entry] : entries_) {
    MetricValue m;
    m.name = name;
    m.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        m.counter = entry.counter->value();
        break;
      case MetricKind::kGauge:
        m.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        m.histogram.bounds = entry.histogram->bounds();
        m.histogram.buckets = entry.histogram->BucketCounts();
        m.histogram.count = entry.histogram->count();
        m.histogram.sum = entry.histogram->sum();
        break;
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::string Registry::FormatText() const { return FormatMetricsText(Snapshot()); }

std::string Registry::FormatJson(std::string_view source) const {
  return FormatMetricsJson(Snapshot(), source);
}

void Registry::ResetValuesForTest() {
  util::MutexLock lock(&mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->Reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace autotest::metrics
