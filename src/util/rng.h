#ifndef AUTOTEST_UTIL_RNG_H_
#define AUTOTEST_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/check.h"

namespace autotest::util {

/// Deterministic random number generator used by every stochastic component
/// (data generators, SGD, randomized rounding). All experiments take explicit
/// seeds so results are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    AT_CHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal sample.
  double Gaussian() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    AT_CHECK(!items.empty());
    return items[static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples an index according to non-negative weights (at least one > 0).
  size_t PickWeighted(const std::vector<double>& weights);

  /// Derives a child RNG; children with different tags are independent.
  Rng Fork(uint64_t tag) {
    uint64_t s = engine_();
    return Rng(s ^ (tag * 0x9e3779b97f4a7c15ULL));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace autotest::util

#endif  // AUTOTEST_UTIL_RNG_H_
