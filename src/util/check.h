#ifndef AUTOTEST_UTIL_CHECK_H_
#define AUTOTEST_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Lightweight CHECK macros for programmer errors. The library does not use
// exceptions; invariant violations abort with a source location.

#define AT_CHECK(cond)                                                       \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "AT_CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define AT_CHECK_MSG(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "AT_CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, (msg));                                  \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // AUTOTEST_UTIL_CHECK_H_
