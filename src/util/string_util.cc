#include "util/string_util.h"

#include <algorithm>
#include <cctype>

namespace autotest::util {

namespace {

bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool IsAllAlpha(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalpha(c) != 0;
  });
}

double DigitRatio(std::string_view s) {
  if (s.empty()) return 0.0;
  size_t n = std::count_if(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
  return static_cast<double>(n) / static_cast<double>(s.size());
}

double AlphaRatio(std::string_view s) {
  if (s.empty()) return 0.0;
  size_t n = std::count_if(s.begin(), s.end(), [](unsigned char c) {
    return std::isalpha(c) != 0;
  });
  return static_cast<double>(n) / static_cast<double>(s.size());
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1);
  std::vector<size_t> cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace autotest::util
