#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/hashing.h"
#include "util/metrics.h"

namespace autotest::util {

namespace retry_internal {

void RecordRetryMetrics(int attempts, bool gave_up) {
  // Function-local statics cache the registry references; the steady-state
  // cost per finished RetryCall is three relaxed adds.
  static metrics::Counter& attempts_counter =
      metrics::Registry::Global().GetCounter(metrics::kMRetryAttempts);
  static metrics::Counter& retries_counter =
      metrics::Registry::Global().GetCounter(metrics::kMRetryRetries);
  static metrics::Counter& giveups_counter =
      metrics::Registry::Global().GetCounter(metrics::kMRetryGiveups);
  if (attempts < 1) attempts = 1;
  attempts_counter.Increment(static_cast<uint64_t>(attempts));
  retries_counter.Increment(static_cast<uint64_t>(attempts - 1));
  if (gave_up) giveups_counter.Increment();
}

}  // namespace retry_internal

namespace {

class SteadyClock final : public Clock {
 public:
  int64_t NowMicros() override {
    // The one real monotonic-clock read; everything deterministic injects
    // a VirtualClock through the Clock seam instead of reaching here.
    // at_lint: disable(R2) audited wall-clock read behind the Clock seam
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  }
  void SleepMicros(int64_t micros) override {
    if (micros <= 0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

Clock& RealClock() {
  static SteadyClock* clock = new SteadyClock();
  return *clock;
}

bool IsRetryableCode(StatusCode code) {
  return code == StatusCode::kIoError ||
         code == StatusCode::kResourceExhausted;
}

int64_t BackoffMicros(const RetryPolicy& policy, uint64_t stream,
                      int attempt) {
  if (attempt < 1) attempt = 1;
  double base = static_cast<double>(
      std::max<int64_t>(policy.initial_backoff_micros, 0));
  for (int k = 1; k < attempt; ++k) {
    base *= policy.backoff_multiplier;
    if (policy.max_backoff_micros > 0 &&
        base > static_cast<double>(policy.max_backoff_micros)) {
      base = static_cast<double>(policy.max_backoff_micros);
      break;
    }
  }
  if (policy.max_backoff_micros > 0 &&
      base > static_cast<double>(policy.max_backoff_micros)) {
    base = static_cast<double>(policy.max_backoff_micros);
  }
  // Deterministic jitter in [1 - f, 1 + f]: a pure function of
  // (seed, stream, attempt), so schedules are byte-identical across runs.
  double fraction = std::clamp(policy.jitter_fraction, 0.0, 1.0);
  if (fraction > 0.0) {
    uint64_t mix = SplitMix64(SplitMix64(policy.seed ^ stream) +
                              static_cast<uint64_t>(attempt));
    double unit = HashToUnitDouble(mix);  // [0, 1)
    base *= 1.0 + fraction * (2.0 * unit - 1.0);
  }
  return static_cast<int64_t>(base);
}

std::vector<int64_t> BackoffScheduleMicros(const RetryPolicy& policy,
                                           uint64_t stream) {
  std::vector<int64_t> schedule;
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    schedule.push_back(BackoffMicros(policy, stream, attempt));
  }
  return schedule;
}

}  // namespace autotest::util
