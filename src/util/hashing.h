#ifndef AUTOTEST_UTIL_HASHING_H_
#define AUTOTEST_UTIL_HASHING_H_

#include <cstdint>
#include <string_view>

namespace autotest::util {

/// FNV-1a 64-bit hash.
uint64_t Fnv64(std::string_view s);

/// FNV-1a seeded variant (mix the seed into the initial state).
uint64_t Fnv64Seeded(std::string_view s, uint64_t seed);

/// SplitMix64 finalizer — turns any 64-bit value into a well-mixed one.
uint64_t SplitMix64(uint64_t x);

/// Maps a 64-bit hash to a double in [0, 1).
double HashToUnitDouble(uint64_t h);

}  // namespace autotest::util

#endif  // AUTOTEST_UTIL_HASHING_H_
