#ifndef AUTOTEST_UTIL_FAILPOINT_H_
#define AUTOTEST_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

// Fault-injection framework for the load/serve path. Code at an injection
// site asks `FailpointFires("rules.parse")`; when the failpoint is armed the
// site returns a structured Status instead of doing its work, so tests (and
// soak runs) can prove the pipeline degrades gracefully under I/O failures,
// corrupt inputs and allocation pressure without mocking the filesystem.
//
// Arming:
//   - environment: AT_FAILPOINTS="rules.parse=on,csv.open:p=0.01,seed=7"
//   - CLI:         autotest --failpoints "all:p=0.01" ...
//   - tests:       FailpointRegistry::Global().Configure("rules.save=on")
//
// Spec grammar (comma-separated entries):
//   <name>=on | <name>=off | <name>:p=<prob> | all=on | all:p=<prob>
//   seed=<uint64>      (decision-stream seed; default 0)
//   code=io|exhausted|dataloss|default
//                      (StatusCode flavor every fired site injects;
//                       "default" restores each site's documented code,
//                       so specs without code= keep today's behavior.
//                       io -> kIoError and exhausted -> kResourceExhausted
//                       are transient and masked by the retry layer;
//                       dataloss -> kDataLoss is permanent and fails fast)
//
// Firing is deterministic: the decision for the k-th evaluation of failpoint
// `name` is a pure function of (seed, name, k), so a failing soak run is
// reproducible from its seed alone — no global RNG state involved. Sites
// evaluated from parallel workers (shard loads, trainer eval families) use
// the keyed variant, whose decision is a pure function of (seed, name,
// caller-chosen key) so it is independent of scheduling too.
//
// Naming scheme: `<component>.<operation>`, lower-case. The canonical list
// lives in kAllFailpoints below; sites must use these constants so the
// robustness suite can assert every registered failpoint fires somewhere.

namespace autotest::util {

inline constexpr std::string_view kFpCsvOpen = "csv.open";
inline constexpr std::string_view kFpCsvParse = "csv.parse";
inline constexpr std::string_view kFpRulesOpen = "rules.open";
inline constexpr std::string_view kFpRulesParse = "rules.parse";
inline constexpr std::string_view kFpRulesSave = "rules.save";
inline constexpr std::string_view kFpRecipeLoad = "recipe.load";
inline constexpr std::string_view kFpRecipeSave = "recipe.save";
inline constexpr std::string_view kFpTrainerEval = "trainer.eval";
inline constexpr std::string_view kFpPredictorColumn = "predictor.column";
inline constexpr std::string_view kFpShardRead = "shard.read";
inline constexpr std::string_view kFpShardRetry = "shard.retry";
inline constexpr std::string_view kFpServeAccept = "serve.accept";
inline constexpr std::string_view kFpServeRead = "serve.read";
inline constexpr std::string_view kFpServeReload = "serve.reload";
inline constexpr std::string_view kFpBudgetCharge = "budget.charge";
inline constexpr std::string_view kFpBreakerProbe = "breaker.probe";

/// Every failpoint compiled into the binary. Keep in sync with the
/// constants above; tests/robustness_test.cc walks this list.
inline constexpr std::string_view kAllFailpoints[] = {
    kFpCsvOpen,    kFpCsvParse,  kFpRulesOpen,
    kFpRulesParse, kFpRulesSave, kFpRecipeLoad,
    kFpRecipeSave, kFpTrainerEval, kFpPredictorColumn,
    kFpShardRead,  kFpShardRetry, kFpServeAccept,
    kFpServeRead,  kFpServeReload, kFpBudgetCharge,
    kFpBreakerProbe,
};

/// Process-wide registry. Thread-safe; the disarmed fast path is a single
/// relaxed atomic load, so injection sites are free in production.
class FailpointRegistry {
 public:
  /// The process singleton. Arms itself from AT_FAILPOINTS (if set) on
  /// first access.
  static FailpointRegistry& Global();

  /// Parses and applies a spec (see grammar above). Entries apply in
  /// order; later entries override earlier ones. Unknown failpoint names
  /// and malformed probabilities are kInvalidArgument.
  [[nodiscard]] Status Configure(std::string_view spec) AT_EXCLUDES(mu_);

  /// Disarms every failpoint; evaluation/fire counters are preserved.
  void Disarm() AT_EXCLUDES(mu_);

  /// Disarms and zeroes all counters (fresh-process state).
  void Reset() AT_EXCLUDES(mu_);

  /// True if the named failpoint should inject a fault at this evaluation.
  /// Counts the evaluation (and the fire, if any) either way.
  bool ShouldFail(std::string_view name) AT_EXCLUDES(mu_);

  /// Like ShouldFail, but returns the StatusCode the site should inject:
  /// the spec's `code=` flavor when set, else `fallback` (the site's
  /// documented default). nullopt when the failpoint does not fire.
  std::optional<StatusCode> ShouldFailWithCode(std::string_view name,
                                               StatusCode fallback)
      AT_EXCLUDES(mu_);

  /// Scheduling-independent variant for sites evaluated from parallel
  /// workers: the decision is a pure function of (seed, name, key) instead
  /// of the evaluation counter, so which shard/family fails is identical
  /// across thread counts and interleavings. Counters still advance.
  std::optional<StatusCode> ShouldFailKeyed(std::string_view name,
                                            uint64_t key,
                                            StatusCode fallback)
      AT_EXCLUDES(mu_);

  /// Counters, for tests and --failpoints diagnostics.
  uint64_t evaluations(std::string_view name) const AT_EXCLUDES(mu_);
  uint64_t fires(std::string_view name) const AT_EXCLUDES(mu_);

  /// "failpoints: csv.open evals=12 fires=1, ..." (armed or fired only).
  std::string StatsString() const AT_EXCLUDES(mu_);

 private:
  FailpointRegistry();

  struct Point {
    bool armed = false;
    double probability = 1.0;
    // Registry-owned counters (`failpoint.<site>.evals|fires`), bound in
    // the constructor; updated under mu_ so the decision stream still
    // sees a serialized pre-increment evaluation index.
    metrics::Counter* evaluations = nullptr;
    metrics::Counter* fires = nullptr;
  };

  /// Decision + bookkeeping shared by the counter-keyed and caller-keyed
  /// evaluation paths. Must be called under mu_ (compile-checked).
  std::optional<StatusCode> EvalLocked(std::string_view name, uint64_t key,
                                       bool use_counter,
                                       StatusCode fallback)
      AT_REQUIRES(mu_);

  mutable Mutex mu_;
  bool any_armed_ AT_GUARDED_BY(mu_) = false;  // mirrors armed_flag_
  std::atomic<bool> armed_flag_{false};
  uint64_t seed_ AT_GUARDED_BY(mu_) = 0;
  // The `code=` flavor.
  std::optional<StatusCode> code_override_ AT_GUARDED_BY(mu_);
  std::map<std::string, Point, std::less<>> points_ AT_GUARDED_BY(mu_);
};

/// Injection-site helper: true when `name` should fail now.
inline bool FailpointFires(std::string_view name) {
  return FailpointRegistry::Global().ShouldFail(name);
}

/// Injection-site helper surfacing the selected StatusCode: the spec's
/// `code=` flavor when armed with one, else `fallback`.
inline std::optional<StatusCode> FailpointFiresCode(std::string_view name,
                                                    StatusCode fallback) {
  return FailpointRegistry::Global().ShouldFailWithCode(name, fallback);
}

/// Keyed injection-site helper for parallel call sites (see
/// ShouldFailKeyed).
inline std::optional<StatusCode> FailpointFiresKeyed(std::string_view name,
                                                     uint64_t key,
                                                     StatusCode fallback) {
  return FailpointRegistry::Global().ShouldFailKeyed(name, key, fallback);
}

/// Canonical error for a fired failpoint, e.g.
/// IO_ERROR: injected fault at failpoint 'rules.open'.
[[nodiscard]] Status InjectedFault(StatusCode code, std::string_view name);

}  // namespace autotest::util

#endif  // AUTOTEST_UTIL_FAILPOINT_H_
