#include "util/budget.h"

#include <string>

#include "util/failpoint.h"

namespace autotest::util {

std::string_view ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kBytes:
      return "bytes";
    case ResourceKind::kRows:
      return "rows";
    case ResourceKind::kCells:
      return "cells";
  }
  return "unknown";
}

uint64_t ResourceBudget::limit(ResourceKind kind) const {
  switch (kind) {
    case ResourceKind::kBytes:
      return limits_.max_bytes;
    case ResourceKind::kRows:
      return limits_.max_rows;
    case ResourceKind::kCells:
      return limits_.max_cells;
  }
  return 0;
}

Status ResourceBudget::TryCharge(ResourceKind kind, uint64_t amount,
                                 std::string_view what) {
  charges_.fetch_add(1, std::memory_order_relaxed);
  if (auto injected = FailpointFiresCode(
          kFpBudgetCharge, StatusCode::kResourceExhausted)) {
    exhausted_.store(true, std::memory_order_relaxed);
    rejections_.fetch_add(1, std::memory_order_relaxed);
    return InjectedFault(*injected, kFpBudgetCharge)
        .WithContext("charging " + std::to_string(amount) + " " +
                     std::string(ResourceKindName(kind)) + " for " +
                     std::string(what));
  }
  const uint64_t cap = limit(kind);
  std::atomic<uint64_t>& used = used_[Index(kind)];
  const uint64_t before = used.fetch_add(amount, std::memory_order_relaxed);
  if (cap != 0 && before + amount > cap) {
    // Roll the failed charge back so `used()` stays exact: concurrent
    // in-budget charges observe at most a transient overshoot, never a
    // permanently inflated total.
    used.fetch_sub(amount, std::memory_order_relaxed);
    exhausted_.store(true, std::memory_order_relaxed);
    rejections_.fetch_add(1, std::memory_order_relaxed);
    return ResourceExhaustedError(
        "request budget exceeded: " + std::string(what) + " needs " +
        std::to_string(amount) + " more " +
        std::string(ResourceKindName(kind)) + " (used " +
        std::to_string(before) + " of " + std::to_string(cap) + ")");
  }
  return Status::Ok();
}

void ResourceBudget::Release(ResourceKind kind, uint64_t amount) {
  std::atomic<uint64_t>& used = used_[Index(kind)];
  uint64_t cur = used.load(std::memory_order_relaxed);
  while (true) {
    const uint64_t next = cur >= amount ? cur - amount : 0;
    if (used.compare_exchange_weak(cur, next, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

Status ResourceBudget::CheckDeadline(std::string_view phase) const {
  if (limits_.clock == nullptr || limits_.deadline_micros == 0) {
    return Status::Ok();
  }
  if (limits_.clock->NowMicros() < limits_.deadline_micros) {
    return Status::Ok();
  }
  return DeadlineExceededError("request deadline expired at " +
                               std::string(phase));
}

Status BudgetScope::TryCharge(ResourceKind kind, uint64_t amount,
                              std::string_view what) {
  if (budget_ == nullptr) return Status::Ok();
  AT_RETURN_IF_ERROR(budget_->TryCharge(kind, amount, what));
  held_[static_cast<size_t>(kind)] += amount;
  return Status::Ok();
}

void BudgetScope::ReleaseAll() {
  if (budget_ == nullptr) return;
  for (size_t i = 0; i < 3; ++i) {
    if (held_[i] == 0) continue;
    budget_->Release(static_cast<ResourceKind>(i), held_[i]);
    held_[i] = 0;
  }
}

}  // namespace autotest::util
