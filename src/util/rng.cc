#include "util/rng.h"

namespace autotest::util {

size_t Rng::PickWeighted(const std::vector<double>& weights) {
  AT_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    AT_CHECK(w >= 0.0);
    total += w;
  }
  AT_CHECK(total > 0.0);
  double x = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace autotest::util
