#ifndef AUTOTEST_BASELINES_BASELINES_H_
#define AUTOTEST_BASELINES_BASELINES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/predictor.h"
#include "embed/embedding.h"
#include "eval/detector.h"
#include "table/table.h"
#include "typedet/cta_zoo.h"
#include "typedet/validators.h"

namespace autotest::baselines {

/// Adapter exposing an SdcPredictor (any Auto-Test variant) through the
/// common detector interface; scores are rule confidences.
class SdcDetector : public eval::ErrorDetector {
 public:
  SdcDetector(std::string name, const core::SdcPredictor* predictor)
      : name_(std::move(name)), predictor_(predictor) {}
  std::string name() const override { return name_; }
  std::vector<eval::ScoredCell> Detect(
      const table::Column& column) const override;

 private:
  std::string name_;
  const core::SdcPredictor* predictor_;  // borrowed
};

/// CTA baseline (paper: Sherlock / Doduo rows): picks the best-matching
/// type for the column, z-scores the per-value classifier distances, and
/// flags high-z values (Section 6.2, "column-type detection methods").
class CtaZScoreDetector : public eval::ErrorDetector {
 public:
  CtaZScoreDetector(std::string name, const typedet::CtaModelZoo* zoo,
                    double z_cutoff = 1.0)
      : name_(std::move(name)), zoo_(zoo), z_cutoff_(z_cutoff) {}
  std::string name() const override { return name_; }
  std::vector<eval::ScoredCell> Detect(
      const table::Column& column) const override;

 private:
  std::string name_;
  const typedet::CtaModelZoo* zoo_;  // borrowed
  double z_cutoff_;
};

/// Embedding baseline (paper: Glove / SentenceBERT rows): distances to the
/// column's own embedding centroid, z-scored.
class EmbeddingZScoreDetector : public eval::ErrorDetector {
 public:
  EmbeddingZScoreDetector(std::string name,
                          const embed::EmbeddingModel* model,
                          double z_cutoff = 1.0)
      : name_(std::move(name)), model_(model), z_cutoff_(z_cutoff) {}
  std::string name() const override { return name_; }
  std::vector<eval::ScoredCell> Detect(
      const table::Column& column) const override;

 private:
  std::string name_;
  const embed::EmbeddingModel* model_;  // borrowed
  double z_cutoff_;
};

/// Regex baseline: infers the column's dominant pattern and flags values
/// that do not match it; the score is the dominant fraction.
class RegexDetector : public eval::ErrorDetector {
 public:
  explicit RegexDetector(double dominance = 0.5) : dominance_(dominance) {}
  std::string name() const override { return "regex"; }
  std::vector<eval::ScoredCell> Detect(
      const table::Column& column) const override;

 private:
  double dominance_;
};

/// Validation-function baseline (paper: DataPrep / Validators rows): picks
/// the validator the column passes most often and flags failing values.
class FunctionDetector : public eval::ErrorDetector {
 public:
  /// `library` filters validators: "dataprep-sim", "validators-sim", or ""
  /// for all.
  FunctionDetector(std::string name, std::string library,
                   double min_pass_fraction = 0.5)
      : name_(std::move(name)),
        library_(std::move(library)),
        min_pass_fraction_(min_pass_fraction) {}
  std::string name() const override { return name_; }
  std::vector<eval::ScoredCell> Detect(
      const table::Column& column) const override;

 private:
  std::string name_;
  std::string library_;
  double min_pass_fraction_;
};

/// Outlier-detection baselines over per-value character features.
enum class OutlierKind { kLof, kDbod, kRkde, kPpca, kIForest, kSvdd };

class OutlierDetectorBaseline : public eval::ErrorDetector {
 public:
  explicit OutlierDetectorBaseline(OutlierKind kind);
  std::string name() const override { return name_; }
  std::vector<eval::ScoredCell> Detect(
      const table::Column& column) const override;

 private:
  OutlierKind kind_;
  std::string name_;
};

/// Auto-Detect-style baseline: corpus pattern co-occurrence statistics;
/// values whose pattern rarely co-occurs with the column's dominant
/// pattern are flagged (Huang & He 2018, simplified).
class AutoDetectSim : public eval::ErrorDetector {
 public:
  static AutoDetectSim Train(const table::Corpus& corpus);
  std::string name() const override { return "auto-detect-sim"; }
  std::vector<eval::ScoredCell> Detect(
      const table::Column& column) const override;

 private:
  AutoDetectSim() = default;
  // pattern -> number of supporting columns; pair -> co-occurring columns.
  std::unordered_map<std::string, size_t> pattern_columns_;
  std::unordered_map<std::string, size_t> pair_columns_;  // "p\x1fq" key
};

/// Katara-style baseline: maps the column to a knowledge-base (gazetteer)
/// domain with a static coverage threshold and flags non-members.
/// Uncalibrated by design (flat scores).
class KataraSim : public eval::ErrorDetector {
 public:
  explicit KataraSim(double coverage_threshold = 0.8)
      : coverage_threshold_(coverage_threshold) {}
  std::string name() const override { return "katara-sim"; }
  std::vector<eval::ScoredCell> Detect(
      const table::Column& column) const override;

 private:
  double coverage_threshold_;
};

/// GPT-4 simulation (see DESIGN.md): a seeded noisy oracle reproducing the
/// paper's reported LLM behaviour — high recall on real errors, flat
/// confidences, and false positives on valid-but-rare values.
class LlmSim : public eval::ErrorDetector {
 public:
  struct Config {
    std::string name;
    double true_positive_rate = 0.85;  // chance a real anomaly is reported
    double fp_rate_rare = 0.12;   // chance a rare valid value is misflagged
    double fp_rate_base = 0.005;  // chance any other value is misflagged
    uint64_t seed = 9001;
  };
  explicit LlmSim(Config config) : config_(std::move(config)) {}
  std::string name() const override { return config_.name; }
  std::vector<eval::ScoredCell> Detect(
      const table::Column& column) const override;

  /// The paper's four prompt variants plus the finetuned model.
  static std::vector<Config> PaperVariants();

 private:
  Config config_;
};

/// Commercial-tool simulations: Vendor-A flags dominant-pattern violations
/// at a fixed 90% threshold; Vendor-B flags digit/punctuation intrusions
/// in mostly-alphabetic columns.
class VendorSim : public eval::ErrorDetector {
 public:
  enum class Kind { kA, kB };
  explicit VendorSim(Kind kind) : kind_(kind) {}
  std::string name() const override {
    return kind_ == Kind::kA ? "vendor-a" : "vendor-b";
  }
  std::vector<eval::ScoredCell> Detect(
      const table::Column& column) const override;

 private:
  Kind kind_;
};

}  // namespace autotest::baselines

#endif  // AUTOTEST_BASELINES_BASELINES_H_
