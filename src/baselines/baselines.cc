#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>

#include "datagen/gazetteer.h"
#include "ml/features.h"
#include "outlier/outlier.h"
#include "pattern/miner.h"
#include "stats/statistics.h"
#include "util/hashing.h"
#include "util/string_util.h"

namespace autotest::baselines {

namespace {

// Shared per-value feature extractor for the outlier baselines.
const ml::FeatureExtractor& OutlierFeatures() {
  static const auto& fx = *new ml::FeatureExtractor([] {
    ml::FeatureConfig cfg;
    cfg.hash_dim = 24;
    cfg.seed = 0x0071;
    return cfg;
  }());
  return fx;
}

// Emits one ScoredCell per row whose z-score exceeds the cutoff.
std::vector<eval::ScoredCell> FlagByZScore(
    const table::Column& column, const std::vector<double>& row_distances,
    double z_cutoff) {
  std::vector<double> z = stats::ZScores(row_distances);
  std::vector<eval::ScoredCell> out;
  for (size_t row = 0; row < z.size(); ++row) {
    if (z[row] > z_cutoff) out.push_back({row, z[row]});
  }
  return out;
}

// Maps per-distinct-value scores back to rows and keeps the top fraction.
std::vector<eval::ScoredCell> FlagTopOutliers(
    const table::Column& column, const table::DistinctValues& distinct,
    const std::vector<double>& distinct_scores, double z_cutoff = 1.0) {
  std::unordered_map<std::string, double> score_of;
  for (size_t i = 0; i < distinct.values.size(); ++i) {
    score_of.emplace(distinct.values[i], distinct_scores[i]);
  }
  std::vector<double> row_scores(column.values.size());
  for (size_t row = 0; row < column.values.size(); ++row) {
    row_scores[row] = score_of.at(column.values[row]);
  }
  return FlagByZScore(column, row_scores, z_cutoff);
}

double DeterministicCoin(const std::string& column_key,
                         const std::string& value, uint64_t seed) {
  return util::HashToUnitDouble(
      util::Fnv64Seeded(column_key + "\x1f" + value, seed));
}

}  // namespace

// ---------------------------------------------------------------------------
// SdcDetector
// ---------------------------------------------------------------------------

std::vector<eval::ScoredCell> SdcDetector::Detect(
    const table::Column& column) const {
  std::vector<eval::ScoredCell> out;
  for (const auto& d : predictor_->Predict(column)) {
    out.push_back({d.row, d.confidence});
  }
  return out;
}

// ---------------------------------------------------------------------------
// CtaZScoreDetector
// ---------------------------------------------------------------------------

std::vector<eval::ScoredCell> CtaZScoreDetector::Detect(
    const table::Column& column) const {
  if (column.values.empty()) return {};
  table::DistinctValues distinct = table::Distinct(column);
  // Macro step: the best-matching type for the column.
  size_t best_type = 0;
  double best_mean = -1.0;
  std::vector<double> best_scores;
  for (size_t t = 0; t < zoo_->num_types(); ++t) {
    std::vector<double> scores(distinct.values.size());
    double mean = 0.0;
    double weight = 0.0;
    for (size_t i = 0; i < distinct.values.size(); ++i) {
      scores[i] = zoo_->Score(t, distinct.values[i]);
      mean += scores[i] * static_cast<double>(distinct.counts[i]);
      weight += static_cast<double>(distinct.counts[i]);
    }
    mean /= weight;
    if (mean > best_mean) {
      best_mean = mean;
      best_type = t;
      best_scores = std::move(scores);
    }
  }
  (void)best_type;
  // Micro step: z-score the per-value distances (1 - score).
  std::unordered_map<std::string, double> dist_of;
  for (size_t i = 0; i < distinct.values.size(); ++i) {
    dist_of.emplace(distinct.values[i], 1.0 - best_scores[i]);
  }
  std::vector<double> row_dist(column.values.size());
  for (size_t row = 0; row < column.values.size(); ++row) {
    row_dist[row] = dist_of.at(column.values[row]);
  }
  return FlagByZScore(column, row_dist, z_cutoff_);
}

// ---------------------------------------------------------------------------
// EmbeddingZScoreDetector
// ---------------------------------------------------------------------------

std::vector<eval::ScoredCell> EmbeddingZScoreDetector::Detect(
    const table::Column& column) const {
  if (column.values.empty()) return {};
  table::DistinctValues distinct = table::Distinct(column);
  // Column centroid over embeddable values.
  embed::Vector centroid(model_->dim(), 0.0f);
  double total = 0.0;
  std::vector<std::pair<bool, embed::Vector>> embedded(distinct.size());
  for (size_t i = 0; i < distinct.values.size(); ++i) {
    embed::Vector v;
    bool ok = model_->EmbedCached(distinct.values[i], &v);
    if (ok) {
      embed::AddScaled(&centroid, v,
                       static_cast<double>(distinct.counts[i]));
      total += static_cast<double>(distinct.counts[i]);
    }
    embedded[i] = {ok, std::move(v)};
  }
  if (total > 0.0) embed::Scale(&centroid, 1.0 / total);

  std::unordered_map<std::string, double> dist_of;
  for (size_t i = 0; i < distinct.values.size(); ++i) {
    double d = embedded[i].first
                   ? embed::EuclideanDistance(embedded[i].second, centroid)
                   : model_->oov_distance();
    dist_of.emplace(distinct.values[i], d);
  }
  std::vector<double> row_dist(column.values.size());
  for (size_t row = 0; row < column.values.size(); ++row) {
    row_dist[row] = dist_of.at(column.values[row]);
  }
  return FlagByZScore(column, row_dist, z_cutoff_);
}

// ---------------------------------------------------------------------------
// RegexDetector
// ---------------------------------------------------------------------------

std::vector<eval::ScoredCell> RegexDetector::Detect(
    const table::Column& column) const {
  if (column.values.empty()) return {};
  pattern::Pattern dominant = pattern::DominantPattern(
      column, pattern::GeneralizationLevel::kGeneral, dominance_);
  if (dominant.empty()) return {};
  size_t matching = 0;
  for (const auto& v : column.values) {
    if (dominant.Matches(v)) ++matching;
  }
  double frac = static_cast<double>(matching) /
                static_cast<double>(column.values.size());
  std::vector<eval::ScoredCell> out;
  for (size_t row = 0; row < column.values.size(); ++row) {
    if (!dominant.Matches(column.values[row])) out.push_back({row, frac});
  }
  return out;
}

// ---------------------------------------------------------------------------
// FunctionDetector
// ---------------------------------------------------------------------------

std::vector<eval::ScoredCell> FunctionDetector::Detect(
    const table::Column& column) const {
  if (column.values.empty()) return {};
  table::DistinctValues distinct = table::Distinct(column);
  const typedet::NamedValidator* best = nullptr;
  double best_frac = 0.0;
  for (const auto& v : typedet::AllValidators()) {
    if (!library_.empty() && v.library != library_) continue;
    size_t pass = 0;
    for (size_t i = 0; i < distinct.values.size(); ++i) {
      if (v.fn(distinct.values[i])) pass += distinct.counts[i];
    }
    double frac = static_cast<double>(pass) /
                  static_cast<double>(distinct.total);
    if (frac > best_frac) {
      best_frac = frac;
      best = &v;
    }
  }
  if (best == nullptr || best_frac < min_pass_fraction_) return {};
  std::vector<eval::ScoredCell> out;
  for (size_t row = 0; row < column.values.size(); ++row) {
    if (!best->fn(column.values[row])) out.push_back({row, best_frac});
  }
  return out;
}

// ---------------------------------------------------------------------------
// OutlierDetectorBaseline
// ---------------------------------------------------------------------------

OutlierDetectorBaseline::OutlierDetectorBaseline(OutlierKind kind)
    : kind_(kind) {
  switch (kind) {
    case OutlierKind::kLof:
      name_ = "lof";
      break;
    case OutlierKind::kDbod:
      name_ = "dbod";
      break;
    case OutlierKind::kRkde:
      name_ = "rkde";
      break;
    case OutlierKind::kPpca:
      name_ = "ppca";
      break;
    case OutlierKind::kIForest:
      name_ = "iforest";
      break;
    case OutlierKind::kSvdd:
      name_ = "svdd";
      break;
  }
}

std::vector<eval::ScoredCell> OutlierDetectorBaseline::Detect(
    const table::Column& column) const {
  if (column.values.size() < 4) return {};
  table::DistinctValues distinct = table::Distinct(column);
  if (distinct.values.size() < 3) return {};
  std::vector<outlier::Point> points;
  points.reserve(distinct.values.size());
  for (const auto& v : distinct.values) {
    points.push_back(OutlierFeatures().Extract(v));
  }
  std::vector<double> scores;
  switch (kind_) {
    case OutlierKind::kLof:
      scores = outlier::LofScores(points, 10);
      break;
    case OutlierKind::kDbod:
      scores = outlier::KnnDistanceScores(points, 5);
      break;
    case OutlierKind::kRkde:
      scores = outlier::RkdeScores(points);
      break;
    case OutlierKind::kPpca:
      scores = outlier::PpcaScores(points, 4);
      break;
    case OutlierKind::kIForest:
      scores = outlier::IForestScores(points);
      break;
    case OutlierKind::kSvdd:
      scores = outlier::SvddScores(points);
      break;
  }
  return FlagTopOutliers(column, distinct, scores);
}

// ---------------------------------------------------------------------------
// AutoDetectSim
// ---------------------------------------------------------------------------

AutoDetectSim AutoDetectSim::Train(const table::Corpus& corpus) {
  AutoDetectSim sim;
  for (const auto& column : corpus) {
    table::DistinctValues distinct = table::Distinct(column);
    if (distinct.values.size() < 3) continue;
    // Top patterns present in the column (cap to bound memory).
    std::unordered_map<std::string, size_t> counts;
    for (size_t i = 0; i < distinct.values.size(); ++i) {
      counts[pattern::Generalize(distinct.values[i],
                                 pattern::GeneralizationLevel::kGeneral)
                 .ToString()] += distinct.counts[i];
    }
    std::vector<std::pair<size_t, std::string>> ordered;
    for (auto& [p, c] : counts) ordered.push_back({c, p});
    std::sort(ordered.rbegin(), ordered.rend());
    if (ordered.size() > 10) ordered.resize(10);
    for (size_t a = 0; a < ordered.size(); ++a) {
      ++sim.pattern_columns_[ordered[a].second];
      for (size_t b = 0; b < ordered.size(); ++b) {
        if (a == b) continue;
        ++sim.pair_columns_[ordered[a].second + "\x1f" + ordered[b].second];
      }
    }
  }
  return sim;
}

std::vector<eval::ScoredCell> AutoDetectSim::Detect(
    const table::Column& column) const {
  if (column.values.empty()) return {};
  // Dominant pattern of the column.
  std::unordered_map<std::string, size_t> counts;
  for (const auto& v : column.values) {
    ++counts[pattern::Generalize(v, pattern::GeneralizationLevel::kGeneral)
                 .ToString()];
  }
  std::string dominant;
  size_t dom_count = 0;
  for (const auto& [p, c] : counts) {
    if (c > dom_count) {
      dom_count = c;
      dominant = p;
    }
  }
  if (dom_count * 2 < column.values.size()) return {};
  auto hit = pattern_columns_.find(dominant);
  double dom_support =
      hit == pattern_columns_.end() ? 0.0 : static_cast<double>(hit->second);
  if (dom_support < 2) return {};

  std::vector<eval::ScoredCell> out;
  for (size_t row = 0; row < column.values.size(); ++row) {
    std::string p =
        pattern::Generalize(column.values[row],
                            pattern::GeneralizationLevel::kGeneral)
            .ToString();
    if (p == dominant) continue;
    auto co = pair_columns_.find(dominant + "\x1f" + p);
    double co_count =
        co == pair_columns_.end() ? 0.0 : static_cast<double>(co->second);
    // Pointwise incompatibility: patterns that rarely co-occur with the
    // dominant pattern across the corpus are suspicious.
    double prob = (co_count + 0.5) / (dom_support + 1.0);
    if (prob < 0.25) out.push_back({row, -std::log(prob)});
  }
  return out;
}

// ---------------------------------------------------------------------------
// KataraSim
// ---------------------------------------------------------------------------

namespace {

// The slice of the gazetteer a symbolic knowledge base (YAGO-style) would
// plausibly contain: encyclopedic entity types only, and only their common
// members. Rare-but-valid values are missing from the KB — the source of
// Katara's false positives in the paper's comparison.
bool InKataraKb(const datagen::Domain& domain) {
  static const char* const kKbDomains[] = {
      "country", "city_us",   "city_world", "us_state_name", "language",
      "element", "sport",     "fruit",      "month",         "weekday",
      "color",   "first_name", "last_name"};
  for (const char* name : kKbDomains) {
    if (domain.name == name) return true;
  }
  return false;
}

bool KbContains(const datagen::Domain& domain, const std::string& value) {
  std::string lowered = util::ToLower(value);
  for (const auto& v : domain.head) {
    if (v == lowered) return true;
  }
  return false;  // tails are not in the KB
}

}  // namespace

std::vector<eval::ScoredCell> KataraSim::Detect(
    const table::Column& column) const {
  if (column.values.empty()) return {};
  const auto& gaz = datagen::Gazetteer::Instance();
  table::DistinctValues distinct = table::Distinct(column);

  // Map the column to the KB type with the best (head-only) coverage.
  const datagen::Domain* best_domain = nullptr;
  size_t best_cover = 0;
  for (const auto& domain : gaz.domains()) {
    if (!InKataraKb(domain)) continue;
    size_t cover = 0;
    for (size_t i = 0; i < distinct.values.size(); ++i) {
      if (KbContains(domain, distinct.values[i])) {
        cover += distinct.counts[i];
      }
    }
    if (cover > best_cover) {
      best_cover = cover;
      best_domain = &domain;
    }
  }
  if (best_domain == nullptr ||
      static_cast<double>(best_cover) <
          coverage_threshold_ * static_cast<double>(distinct.total)) {
    return {};
  }
  std::vector<eval::ScoredCell> out;
  for (size_t row = 0; row < column.values.size(); ++row) {
    // Anything outside the KB is reported — including valid rare members
    // the KB simply does not know. Static threshold, uncalibrated score.
    if (!KbContains(*best_domain, column.values[row])) {
      out.push_back({row, 1.0});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// LlmSim
// ---------------------------------------------------------------------------

std::vector<LlmSim::Config> LlmSim::PaperVariants() {
  return {
      {"gpt-few-shot-with-cot", 0.85, 0.10, 0.004, 9001},
      {"gpt-few-shot-no-cot", 0.85, 0.14, 0.006, 9002},
      {"gpt-zero-shot-with-cot", 0.80, 0.16, 0.008, 9003},
      {"gpt-zero-shot-no-cot", 0.72, 0.22, 0.012, 9004},
      {"gpt-finetuned", 0.90, 0.28, 0.015, 9005},
  };
}

std::vector<eval::ScoredCell> LlmSim::Detect(
    const table::Column& column) const {
  if (column.values.empty()) return {};
  const auto& gaz = datagen::Gazetteer::Instance();
  table::DistinctValues distinct = table::Distinct(column);
  std::string column_key =
      column.name + "|" + std::to_string(column.values.size());

  // What the "LLM" believes about the column: majority semantic domain (if
  // any), else dominant syntactic pattern.
  std::unordered_map<size_t, size_t> domain_cover;
  for (size_t i = 0; i < distinct.values.size(); ++i) {
    const auto* m = gaz.Lookup(distinct.values[i]);
    if (m == nullptr) continue;
    for (const auto& mem : *m) {
      domain_cover[mem.domain_index] += distinct.counts[i];
    }
  }
  size_t best_domain = gaz.domains().size();
  size_t best_cover = 0;
  for (const auto& [d, c] : domain_cover) {
    if (c > best_cover) {
      best_cover = c;
      best_domain = d;
    }
  }
  bool has_domain =
      best_domain < gaz.domains().size() &&
      static_cast<double>(best_cover) >=
          0.6 * static_cast<double>(distinct.total);
  pattern::Pattern dominant = pattern::DominantPattern(
      column, pattern::GeneralizationLevel::kGeneral, 0.6);

  std::vector<eval::ScoredCell> out;
  for (size_t row = 0; row < column.values.size(); ++row) {
    const std::string& v = column.values[row];
    bool suspicious = false;
    bool rare = false;
    if (has_domain) {
      const std::string& dn = gaz.domains()[best_domain].name;
      if (!gaz.Contains(dn, v)) {
        suspicious = true;
      } else {
        const auto* m = gaz.Lookup(v);
        if (m != nullptr) {
          for (const auto& mem : *m) {
            if (mem.domain_index == best_domain &&
                mem.tier == datagen::Tier::kTail) {
              rare = true;  // valid but uncommon: the LLM's trap
            }
          }
        }
      }
    } else if (!dominant.empty()) {
      suspicious = !dominant.Matches(v);
    }
    double coin = DeterministicCoin(column_key, v, config_.seed);
    bool flagged = false;
    if (suspicious) {
      flagged = coin < config_.true_positive_rate;
    } else if (rare) {
      flagged = coin < config_.fp_rate_rare;
    } else {
      flagged = coin < config_.fp_rate_base;
    }
    // Flat scores: LLM outputs are unranked, so the PR curve has a single
    // operating point (precision below 0.8 keeps F1@P=0.8 at 0, matching
    // the paper's GPT rows).
    if (flagged) out.push_back({row, 1.0});
  }
  return out;
}

// ---------------------------------------------------------------------------
// VendorSim
// ---------------------------------------------------------------------------

std::vector<eval::ScoredCell> VendorSim::Detect(
    const table::Column& column) const {
  if (column.values.empty()) return {};
  std::vector<eval::ScoredCell> out;
  if (kind_ == Kind::kA) {
    pattern::Pattern dominant = pattern::DominantPattern(
        column, pattern::GeneralizationLevel::kExactDigits, 0.9);
    if (dominant.empty()) return {};
    for (size_t row = 0; row < column.values.size(); ++row) {
      if (!dominant.Matches(column.values[row])) out.push_back({row, 1.0});
    }
    return out;
  }
  // Vendor-B: digit/punctuation intrusions in mostly-alphabetic columns.
  size_t alpha = 0;
  for (const auto& v : column.values) {
    if (util::AlphaRatio(v) > 0.8) ++alpha;
  }
  if (alpha * 10 < column.values.size() * 9) return {};
  for (size_t row = 0; row < column.values.size(); ++row) {
    if (util::AlphaRatio(column.values[row]) <= 0.5) {
      out.push_back({row, 1.0});
    }
  }
  return out;
}

}  // namespace autotest::baselines
