#include "serve/admission.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "serve/wire.h"
#include "util/check.h"
#include "util/metrics.h"

namespace autotest::serve {

using util::MutexLock;
using util::Result;
using util::Status;

bool AdmissionQueue::TryPush(AdmittedJob job) {
  {
    MutexLock lock(&mu_);
    if (closed_ || jobs_.size() >= depth_) return false;
    jobs_.push(job);
  }
  cv_.NotifyOne();
  return true;
}

std::optional<AdmittedJob> AdmissionQueue::Pop() {
  MutexLock lock(&mu_);
  while (jobs_.empty() && !shutdown_) cv_.Wait(mu_);
  if (jobs_.empty()) return std::nullopt;
  AdmittedJob job = jobs_.front();
  jobs_.pop();
  return job;
}

void AdmissionQueue::CloseAdmissions() {
  MutexLock lock(&mu_);
  closed_ = true;
}

std::vector<AdmittedJob> AdmissionQueue::DrainRemaining() {
  std::vector<AdmittedJob> out;
  {
    MutexLock lock(&mu_);
    closed_ = true;
    while (!jobs_.empty()) {
      out.push_back(jobs_.front());
      jobs_.pop();
    }
  }
  return out;
}

void AdmissionQueue::Shutdown() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
    shutdown_ = true;
  }
  cv_.NotifyAll();
}

size_t AdmissionQueue::size() const {
  MutexLock lock(&mu_);
  return jobs_.size();
}

// ---------------------------------------------------------------------------
// Token buckets and the tenant governor (DESIGN.md §4j).
// ---------------------------------------------------------------------------

TokenBucket::TokenBucket(const TenantQuota& quota, int64_t now_micros)
    : rate_per_sec_(quota.rate_per_sec),
      burst_(quota.burst),
      tokens_(quota.burst),
      last_refill_micros_(now_micros) {}

void TokenBucket::RefillLocked(int64_t now_micros) {
  if (now_micros <= last_refill_micros_) return;
  const double elapsed_sec =
      static_cast<double>(now_micros - last_refill_micros_) / 1e6;
  tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_per_sec_);
  last_refill_micros_ = now_micros;
}

bool TokenBucket::TryTake(int64_t now_micros) {
  MutexLock lock(&mu_);
  RefillLocked(now_micros);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::AvailableTokens(int64_t now_micros) {
  MutexLock lock(&mu_);
  RefillLocked(now_micros);
  return tokens_;
}

Result<std::map<std::string, TenantQuota, std::less<>>> TryParseQuotaConfig(
    std::string_view text) {
  constexpr std::string_view kQuotaMagic = "autotest.quotas.v1";
  std::map<std::string, TenantQuota, std::less<>> quotas;
  size_t line_no = 0;
  bool saw_header = false;
  std::string_view rest = text;
  while (!rest.empty()) {
    size_t nl = rest.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view()
                                        : rest.substr(nl + 1);
    ++line_no;
    // Trim trailing \r so CRLF files parse.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                             line.back() == '\t')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (!saw_header) {
      if (line != kQuotaMagic) {
        return util::InvalidArgumentError(
            "quota file header is not '" + std::string(kQuotaMagic) +
            "' (line " + std::to_string(line_no) + ")");
      }
      saw_header = true;
      continue;
    }
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields{std::string(line)};
    std::string tenant, rate_str, burst_str, extra;
    fields >> tenant >> rate_str >> burst_str;
    const bool trailing = static_cast<bool>(fields >> extra);
    if (burst_str.empty() || trailing) {
      return util::InvalidArgumentError(
          "quota row wants '<tenant> <rate_per_sec> <burst>' (line " +
          std::to_string(line_no) + ")");
    }
    if (tenant != "default" && !IsValidTenant(tenant)) {
      return util::InvalidArgumentError(
          "quota row tenant '" + tenant + "' is not a valid tenant id or "
          "'default' (line " + std::to_string(line_no) + ")");
    }
    char* endp = nullptr;
    TenantQuota quota;
    quota.rate_per_sec = std::strtod(rate_str.c_str(), &endp);
    if (endp != rate_str.c_str() + rate_str.size() ||
        !(quota.rate_per_sec >= 0.0)) {
      return util::InvalidArgumentError(
          "quota row rate '" + rate_str + "' wants a number >= 0 (line " +
          std::to_string(line_no) + ")");
    }
    quota.burst = std::strtod(burst_str.c_str(), &endp);
    if (endp != burst_str.c_str() + burst_str.size() ||
        !(quota.burst >= 1.0)) {
      return util::InvalidArgumentError(
          "quota row burst '" + burst_str + "' wants a number >= 1 (line " +
          std::to_string(line_no) + ")");
    }
    if (!quotas.emplace(std::move(tenant), quota).second) {
      return util::InvalidArgumentError("duplicate quota row (line " +
                                        std::to_string(line_no) + ")");
    }
  }
  if (!saw_header) {
    return util::InvalidArgumentError("quota file is empty (no '" +
                                      std::string(kQuotaMagic) +
                                      "' header)");
  }
  return quotas;
}

TenantGovernor::TenantGovernor(
    const util::CircuitBreakerOptions& breaker_options, util::Clock* clock)
    : clock_(clock), breakers_(breaker_options, clock) {
  AT_CHECK_MSG(clock_ != nullptr, "TenantGovernor needs a clock");
}

Status TenantGovernor::TryLoadQuotas(const std::string& path) {
  static metrics::Counter& quota_reloads =
      metrics::Registry::Global().GetCounter(
          metrics::kMServeTenantQuotaReloads);

  // Same discipline as SnapshotStore::TryReload: reload_mu_ serializes
  // reloads only and is never taken on the admit path, so blocking file
  // I/O under it cannot stall a worker (TryAdmit only touches mu_).
  MutexLock reload_lock(&reload_mu_);
  // at_lint: disable(R8) reload-only lock, never on the request path
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::NotFoundError("cannot open quota file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return util::IoError("cannot read quota file " + path);
  }
  auto parsed = TryParseQuotaConfig(buf.str());
  if (!parsed.ok()) {
    return Status(parsed.status())
        .WithContext("loading tenant quotas from " + path);
  }
  quota_path_ = path;
  {
    MutexLock lock(&mu_);
    quotas_ = std::move(*parsed);
    // Rebuild buckets lazily against the new table; in-flight TryAdmit
    // calls finish against their shared_ptr copy of the old bucket.
    buckets_.clear();
    ++quota_version_;
  }
  quota_reloads.Increment();
  return Status::Ok();
}

Status TenantGovernor::TryReloadQuotas() {
  std::string path;
  {
    MutexLock reload_lock(&reload_mu_);
    path = quota_path_;
  }
  if (path.empty()) return Status::Ok();
  return TryLoadQuotas(path);
}

std::shared_ptr<TokenBucket> TenantGovernor::BucketFor(
    std::string_view tenant) {
  // A client inventing tenant names must not grow the bucket map without
  // bound: explicit rows are bounded by the quota file, and once the map
  // is saturated, unlisted tenants share the `default` bucket.
  constexpr size_t kMaxTrackedTenants = 4096;
  MutexLock lock(&mu_);
  auto bucket_it = buckets_.find(tenant);
  if (bucket_it != buckets_.end()) return bucket_it->second;

  auto quota_it = quotas_.find(tenant);
  if (quota_it == quotas_.end()) quota_it = quotas_.find("default");
  if (quota_it == quotas_.end()) return nullptr;  // unlimited

  std::string key(tenant);
  if (buckets_.size() >= kMaxTrackedTenants) {
    // Saturated: further tenants share the "default"-keyed bucket.
    key = "default";
    auto shared_it = buckets_.find(key);
    if (shared_it != buckets_.end()) return shared_it->second;
  }
  auto bucket =
      std::make_shared<TokenBucket>(quota_it->second, clock_->NowMicros());
  buckets_.emplace(std::move(key), bucket);
  return bucket;
}

bool TenantGovernor::TryAdmit(std::string_view tenant) {
  static metrics::Counter& tenant_rejections =
      metrics::Registry::Global().GetCounter(
          metrics::kMServeTenantRejections);
  std::shared_ptr<TokenBucket> bucket = BucketFor(tenant);
  if (bucket == nullptr) return true;  // no quota applies
  if (bucket->TryTake(clock_->NowMicros())) return true;
  tenant_rejections.Increment();
  return false;
}

util::CircuitBreaker& TenantGovernor::BreakerFor(std::string_view tenant,
                                                 uint64_t ruleset_version) {
  std::string key = std::string(tenant) + "\x1f" +
                    std::to_string(ruleset_version);
  return breakers_.For(key);
}

uint64_t TenantGovernor::quota_version() const {
  MutexLock lock(&mu_);
  return quota_version_;
}

}  // namespace autotest::serve
