#include "serve/admission.h"

namespace autotest::serve {

using util::MutexLock;

bool AdmissionQueue::TryPush(AdmittedJob job) {
  {
    MutexLock lock(&mu_);
    if (closed_ || jobs_.size() >= depth_) return false;
    jobs_.push(job);
  }
  cv_.NotifyOne();
  return true;
}

std::optional<AdmittedJob> AdmissionQueue::Pop() {
  MutexLock lock(&mu_);
  while (jobs_.empty() && !shutdown_) cv_.Wait(mu_);
  if (jobs_.empty()) return std::nullopt;
  AdmittedJob job = jobs_.front();
  jobs_.pop();
  return job;
}

void AdmissionQueue::CloseAdmissions() {
  MutexLock lock(&mu_);
  closed_ = true;
}

std::vector<AdmittedJob> AdmissionQueue::DrainRemaining() {
  std::vector<AdmittedJob> out;
  {
    MutexLock lock(&mu_);
    closed_ = true;
    while (!jobs_.empty()) {
      out.push_back(jobs_.front());
      jobs_.pop();
    }
  }
  return out;
}

void AdmissionQueue::Shutdown() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
    shutdown_ = true;
  }
  cv_.NotifyAll();
}

size_t AdmissionQueue::size() const {
  MutexLock lock(&mu_);
  return jobs_.size();
}

}  // namespace autotest::serve
