#include "serve/admission.h"

namespace autotest::serve {

bool AdmissionQueue::TryPush(AdmittedJob job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || jobs_.size() >= depth_) return false;
    jobs_.push(job);
  }
  cv_.notify_one();
  return true;
}

std::optional<AdmittedJob> AdmissionQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !jobs_.empty() || shutdown_; });
  if (jobs_.empty()) return std::nullopt;
  AdmittedJob job = jobs_.front();
  jobs_.pop();
  return job;
}

void AdmissionQueue::CloseAdmissions() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
}

std::vector<AdmittedJob> AdmissionQueue::DrainRemaining() {
  std::vector<AdmittedJob> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    while (!jobs_.empty()) {
      out.push_back(jobs_.front());
      jobs_.pop();
    }
  }
  return out;
}

void AdmissionQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    shutdown_ = true;
  }
  cv_.notify_all();
}

size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

}  // namespace autotest::serve
