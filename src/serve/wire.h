#ifndef AUTOTEST_SERVE_WIRE_H_
#define AUTOTEST_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

// Wire format for the serving tier (DESIGN.md §4h).
//
// Transport: one length-prefixed frame per direction per connection. A
// frame is a 4-byte big-endian payload length followed by that many bytes;
// frames larger than the server's --max-frame-bytes cap are rejected with
// kResourceExhausted before any allocation proportional to the claimed
// length. The `--once` CLI mode exchanges the same payloads unframed over
// stdin/stdout so tests can drive the handler without sockets.
//
// Payloads are line-oriented text (same spirit as the rules/recipe files):
//
//   request  = "autotest.serve.v1 <verb>\n" { key "=" value "\n" } "\n" body
//   response = "autotest.serve.v1 <CODE>\n" { key "=" value "\n" } "\n" body
//
// Verbs: check (body = CSV table), ping, metrics (body of the response is
// the §4f registry JSON), reload. <CODE> is the stable StatusCodeName of
// the outcome, so a shed response reads `autotest.serve.v1
// RESOURCE_EXHAUSTED` and scripts can branch without parsing prose.
// Unknown keys are kInvalidArgument — a typoed deadline must not silently
// serve with the default.

namespace autotest::serve {

inline constexpr std::string_view kWireMagic = "autotest.serve.v1";

/// Upper bound on a request's `deadline_ms` (24 h). The value is
/// client-controlled, so parse rejects anything above this before the
/// µs conversion can overflow the int64 deadline arithmetic.
inline constexpr int64_t kMaxDeadlineMs = 86'400'000;

/// Upper bound on the `tenant` field's length; the value keys per-tenant
/// quota buckets and circuit breakers, so it is validated (length and
/// charset) before it can become server-side map key material.
inline constexpr size_t kMaxTenantBytes = 64;

/// True for a well-formed tenant id: 1..kMaxTenantBytes chars drawn from
/// [A-Za-z0-9_.-]. The empty string is the anonymous default tenant and
/// is valid only by omission (no `tenant=` line at all).
bool IsValidTenant(std::string_view tenant);

/// One parsed request frame.
struct Request {
  std::string verb;       // check | ping | metrics | reload
  int64_t deadline_ms = 0;  // 0 = server default
  std::string table;      // optional display name for the report
  std::string tenant;     // optional tenant id; empty = anonymous
  std::string body;       // CSV payload for `check`
};

/// One response frame. `fields` preserve insertion order so serialized
/// responses are byte-stable.
struct Response {
  util::StatusCode code = util::StatusCode::kOk;
  std::vector<std::pair<std::string, std::string>> fields;
  std::string body;

  void AddField(std::string key, std::string value) {
    fields.emplace_back(std::move(key), std::move(value));
  }
  /// First value for `key`; empty string if absent.
  std::string_view Field(std::string_view key) const;
};

std::string SerializeRequest(const Request& request);
std::string SerializeResponse(const Response& response);

/// Parses a request payload. kInvalidArgument for a bad magic/verb line,
/// unknown keys, or a deadline that is non-numeric, negative, or above
/// kMaxDeadlineMs.
[[nodiscard]] util::Result<Request> TryParseRequest(std::string_view payload);

/// Parses a response payload (client side). kInvalidArgument for a bad
/// magic line or an unknown status-code name.
[[nodiscard]] util::Result<Response> TryParseResponse(
    std::string_view payload);

/// Frames `payload` with its 4-byte big-endian length.
std::string EncodeFrame(std::string_view payload);

/// Reads exactly one frame from `fd`. kResourceExhausted when the claimed
/// length exceeds `max_bytes`; kDataLoss on a truncated frame (peer closed
/// mid-payload); kIoError on read failures. A non-negative
/// `timeout_millis` bounds the whole frame read (header + payload) via
/// poll() — kDeadlineExceeded once it lapses — so a silent peer cannot
/// pin the calling thread; -1 blocks indefinitely (client side).
[[nodiscard]] util::Result<std::string> TryReadFrame(
    int fd, size_t max_bytes, int64_t timeout_millis = -1);

/// Writes one frame to `fd`; kIoError on short writes or socket errors.
/// Socket writes use MSG_NOSIGNAL: a peer that closed before reading its
/// response surfaces as EPIPE, never a process-killing SIGPIPE.
[[nodiscard]] util::Status TryWriteFrame(int fd, std::string_view payload);

/// Connects to host:port (IPv4 dotted or "localhost"); returns the
/// connected socket fd. kIoError with errno detail when the connection is
/// refused or times out.
[[nodiscard]] util::Result<int> TryConnect(const std::string& host,
                                           uint16_t port);

}  // namespace autotest::serve

#endif  // AUTOTEST_SERVE_WIRE_H_
