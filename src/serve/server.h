#ifndef AUTOTEST_SERVE_SERVER_H_
#define AUTOTEST_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/session.h"
#include "serve/snapshot.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

// The TCP serving tier (DESIGN.md §4h): one acceptor thread feeding a
// bounded AdmissionQueue, `max_inflight` worker threads draining it, one
// length-prefixed request/response frame per connection.
//
// Overload behavior is deterministic by construction: with every worker
// busy and the queue at depth, the acceptor itself writes the structured
// RESOURCE_EXHAUSTED shed response and closes — a saturated server answers
// "no" immediately instead of timing out slowly.
//
// Shutdown (SIGTERM -> RequestStop -> StopAndDrain): admissions stop,
// queued and in-flight requests get `drain_timeout` to finish, whatever is
// still queued after that is shed with reason=draining, workers join.
//
// Worker reads are bounded: the frame read is capped at the request's
// remaining default budget (its own deadline_ms is inside the frame being
// read), and at the drain deadline any socket still parked in a read is
// shut down — a client that connects and sends nothing can neither pin a
// worker nor stall StopAndDrain.

namespace autotest::serve {

/// What StopAndDrain observed, for the final log line and tests.
struct DrainReport {
  /// Requests fully handled over the server's lifetime.
  uint64_t completed = 0;
  /// Admission-time sheds over the server's lifetime.
  uint64_t shed = 0;
  /// Still-queued requests shed at the drain deadline.
  uint64_t drain_shed = 0;
  /// True when everything admitted was served within the drain budget.
  bool drained_clean = false;
};

class Server {
 public:
  /// `snapshots` must outlive the server and hold a loaded snapshot
  /// before Start().
  Server(SnapshotStore* snapshots, ServeOptions options);
  ~Server();

  /// Binds 127.0.0.1:<port>, spawns the acceptor and workers. kIoError
  /// when the port cannot be bound.
  [[nodiscard]] util::Status Start();

  /// The bound port (resolves port 0 to the ephemeral choice).
  uint16_t port() const { return port_; }

  /// Async trigger for StopAndDrain: stops admissions at the next
  /// acceptor poll tick. Safe to call from a signal handler (one relaxed
  /// atomic store, no locks).
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Graceful drain; idempotent. Returns lifetime counts.
  DrainReport StopAndDrain();

  /// Currently queued (admitted, not yet picked up) requests.
  size_t queue_size() const { return queue_.size(); }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(const AdmittedJob& job);

  SnapshotStore* snapshots_;
  ServeOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;

  AdmissionQueue queue_;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Admitted-but-unfinished requests; drain waits for this to hit zero.
  // Contract (§4h, compile-checked under AT_THREAD_SAFETY): no blocking
  // write ever happens under drain_mu_ — shed responses and frame I/O
  // all run outside its scopes (at_lint rule R8 cross-checks).
  util::Mutex drain_mu_;
  util::CondVar drain_cv_;
  uint64_t pending_ AT_GUARDED_BY(drain_mu_) = 0;
  uint64_t completed_ AT_GUARDED_BY(drain_mu_) = 0;
  // Sockets currently blocked in a worker's frame read; StopAndDrain
  // shuts these down at the drain deadline to unblock the workers.
  std::vector<int> reading_fds_ AT_GUARDED_BY(drain_mu_);
  std::atomic<uint64_t> shed_{0};
};

}  // namespace autotest::serve

#endif  // AUTOTEST_SERVE_SERVER_H_
