#include "serve/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace autotest::serve {

namespace {

using util::Result;
using util::Status;
using util::StatusCode;

// Splits the first line off `rest`, consuming the newline. Returns false
// when no newline remains.
bool NextLine(std::string_view* rest, std::string_view* line) {
  size_t nl = rest->find('\n');
  if (nl == std::string_view::npos) return false;
  *line = rest->substr(0, nl);
  rest->remove_prefix(nl + 1);
  return true;
}

std::string ErrnoDetail() {
  return std::string(" (") + std::strerror(errno) + ")";
}

// Full-buffer read/write loops; sockets may return short counts.
// A non-null `deadline` bounds every blocking stretch with poll():
// kDeadlineExceeded once it passes, so a silent peer frees the caller.
using ReadDeadline = std::chrono::steady_clock::time_point;

[[nodiscard]] Status ReadExact(int fd, char* buf, size_t n,
                               std::string_view what,
                               const ReadDeadline* deadline) {
  size_t done = 0;
  while (done < n) {
    if (deadline != nullptr) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      *deadline - std::chrono::steady_clock::now())
                      .count();
      if (left < 0) left = 0;
      pollfd pfd{fd, POLLIN, 0};
      int pr = ::poll(&pfd, 1,
                      static_cast<int>(std::min<long long>(left, 60'000)));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return util::IoError("poll failed mid-" + std::string(what) +
                             ErrnoDetail());
      }
      if (pr == 0) {
        if (std::chrono::steady_clock::now() >= *deadline) {
          return util::DeadlineExceededError(
              "read timed out mid-" + std::string(what) + " (" +
              std::to_string(done) + "/" + std::to_string(n) + " bytes)");
        }
        continue;
      }
    }
    ssize_t r = ::read(fd, buf + done, n - done);
    if (r == 0) {
      return util::DataLossError("connection closed mid-" +
                                 std::string(what) + " (" +
                                 std::to_string(done) + "/" +
                                 std::to_string(n) + " bytes)");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return util::IoError("read failed mid-" + std::string(what) +
                           ErrnoDetail());
    }
    done += static_cast<size_t>(r);
  }
  return Status::Ok();
}

[[nodiscard]] Status WriteExact(int fd, const char* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a peer that closed before reading its response must
    // surface as EPIPE, not a process-killing SIGPIPE. Non-socket fds
    // (tests frame through pipes) fall back to plain write().
    ssize_t w = ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, buf + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return util::IoError("write failed" + ErrnoDetail());
    }
    done += static_cast<size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

bool IsValidTenant(std::string_view tenant) {
  if (tenant.empty() || tenant.size() > kMaxTenantBytes) return false;
  for (char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string_view Response::Field(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return {};
}

std::string SerializeRequest(const Request& request) {
  std::string out(kWireMagic);
  out += ' ';
  out += request.verb;
  out += '\n';
  if (request.deadline_ms > 0) {
    out += "deadline_ms=" + std::to_string(request.deadline_ms) + "\n";
  }
  if (!request.table.empty()) out += "table=" + request.table + "\n";
  if (!request.tenant.empty()) out += "tenant=" + request.tenant + "\n";
  out += '\n';
  out += request.body;
  return out;
}

std::string SerializeResponse(const Response& response) {
  std::string out(kWireMagic);
  out += ' ';
  out += util::StatusCodeName(response.code);
  out += '\n';
  for (const auto& [k, v] : response.fields) {
    out += k + "=" + v + "\n";
  }
  out += '\n';
  out += response.body;
  return out;
}

Result<Request> TryParseRequest(std::string_view payload) {
  std::string_view rest = payload;
  std::string_view line;
  if (!NextLine(&rest, &line)) {
    return util::InvalidArgumentError("request has no header line");
  }
  size_t space = line.find(' ');
  if (space == std::string_view::npos ||
      line.substr(0, space) != kWireMagic) {
    return util::InvalidArgumentError(
        "request magic is not '" + std::string(kWireMagic) + "'");
  }
  Request request;
  request.verb = std::string(line.substr(space + 1));
  if (request.verb != "check" && request.verb != "ping" &&
      request.verb != "metrics" && request.verb != "reload") {
    return util::InvalidArgumentError("unknown verb '" + request.verb +
                                      "' (want check|ping|metrics|reload)");
  }
  while (NextLine(&rest, &line)) {
    if (line.empty()) break;  // blank separator: the rest is the body
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return util::InvalidArgumentError("request field line '" +
                                        std::string(line) + "' has no '='");
    }
    std::string_view key = line.substr(0, eq);
    std::string value(line.substr(eq + 1));
    if (key == "deadline_ms") {
      // `v` is untrusted; strtoll saturates at LLONG_MIN/MAX on overflow,
      // both of which the range check rejects before any µs arithmetic.
      char* endp = nullptr;
      long long v = std::strtoll(value.c_str(), &endp, 10);
      if (value.empty() || endp != value.c_str() + value.size() || v < 0 ||
          v > kMaxDeadlineMs) {
        return util::InvalidArgumentError(
            "field 'deadline_ms' wants an integer in [0, " +
            std::to_string(kMaxDeadlineMs) + "], got '" + value + "'");
      }
      request.deadline_ms = v;
    } else if (key == "table") {
      request.table = std::move(value);
    } else if (key == "tenant") {
      // The tenant keys server-side quota buckets and breakers, so it is
      // validated here, before it can become map key material.
      if (!IsValidTenant(value)) {
        return util::InvalidArgumentError(
            "field 'tenant' wants 1.." + std::to_string(kMaxTenantBytes) +
            " chars of [A-Za-z0-9_.-], got '" + value + "'");
      }
      request.tenant = std::move(value);
    } else {
      return util::InvalidArgumentError("unknown request field '" +
                                        std::string(key) + "'");
    }
  }
  request.body = std::string(rest);
  return request;
}

Result<Response> TryParseResponse(std::string_view payload) {
  std::string_view rest = payload;
  std::string_view line;
  if (!NextLine(&rest, &line)) {
    return util::InvalidArgumentError("response has no header line");
  }
  size_t space = line.find(' ');
  if (space == std::string_view::npos ||
      line.substr(0, space) != kWireMagic) {
    return util::InvalidArgumentError(
        "response magic is not '" + std::string(kWireMagic) + "'");
  }
  auto code = util::StatusCodeFromName(line.substr(space + 1));
  if (!code.has_value()) {
    return util::InvalidArgumentError(
        "unknown response status '" + std::string(line.substr(space + 1)) +
        "'");
  }
  Response response;
  response.code = *code;
  while (NextLine(&rest, &line)) {
    if (line.empty()) break;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return util::InvalidArgumentError("response field line '" +
                                        std::string(line) + "' has no '='");
    }
    response.AddField(std::string(line.substr(0, eq)),
                      std::string(line.substr(eq + 1)));
  }
  response.body = std::string(rest);
  return response;
}

std::string EncodeFrame(std::string_view payload) {
  uint32_t n = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out.append(payload);
  return out;
}

Result<std::string> TryReadFrame(int fd, size_t max_bytes,
                                 int64_t timeout_millis) {
  ReadDeadline deadline;
  const ReadDeadline* deadline_ptr = nullptr;
  if (timeout_millis >= 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(timeout_millis);
    deadline_ptr = &deadline;
  }
  unsigned char hdr[4];
  AT_RETURN_IF_ERROR(ReadExact(fd, reinterpret_cast<char*>(hdr), 4,
                               "frame header", deadline_ptr));
  uint32_t n = (static_cast<uint32_t>(hdr[0]) << 24) |
               (static_cast<uint32_t>(hdr[1]) << 16) |
               (static_cast<uint32_t>(hdr[2]) << 8) |
               static_cast<uint32_t>(hdr[3]);
  if (n > max_bytes) {
    return util::ResourceExhaustedError(
        "frame of " + std::to_string(n) + " bytes exceeds the " +
        std::to_string(max_bytes) + "-byte cap");
  }
  std::string payload(n, '\0');
  AT_RETURN_IF_ERROR(
      ReadExact(fd, payload.data(), n, "frame payload", deadline_ptr));
  return payload;
}

Status TryWriteFrame(int fd, std::string_view payload) {
  std::string frame = EncodeFrame(payload);
  return WriteExact(fd, frame.data(), frame.size());
}

Result<int> TryConnect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    return util::InvalidArgumentError("cannot parse host '" + host +
                                      "' as an IPv4 address");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return util::IoError("socket() failed" + ErrnoDetail());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = util::IoError("cannot connect to " + host + ":" +
                              std::to_string(port) + ErrnoDetail());
    ::close(fd);
    return st;
  }
  return fd;
}

}  // namespace autotest::serve
