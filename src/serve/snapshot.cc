#include "serve/snapshot.h"

#include <utility>

#include "core/serialization.h"
#include "util/failpoint.h"
#include "util/metrics.h"

namespace autotest::serve {

namespace {

using util::Status;
using util::StatusCode;

}  // namespace

SnapshotStore::SnapshotStore(const typedet::EvalFunctionSet* evals,
                             std::string rules_path)
    : evals_(evals), rules_path_(std::move(rules_path)) {}

Status SnapshotStore::TryReload() {
  static metrics::Counter& reloads =
      metrics::Registry::Global().GetCounter(metrics::kMServeReloads);
  static metrics::Counter& reload_failures =
      metrics::Registry::Global().GetCounter(metrics::kMServeReloadFailures);

  // Reloads serialize with each other (version numbers stay monotonic);
  // build-and-validate happens entirely outside mu_, so readers only
  // contend on the final pointer swap. The rule-file read below is
  // blocking I/O under reload_mu_ by design: reload_mu_ exists to
  // serialize reloads, is never taken on the request path, and readers
  // (Get) only ever touch mu_.
  util::MutexLock reload_lock(&reload_mu_);
  uint64_t version;
  {
    util::MutexLock lock(&mu_);
    version = next_version_;
  }

  auto attempt = [&]() -> util::Result<std::shared_ptr<RuleSetSnapshot>> {
    if (auto injected = util::FailpointFiresCode(util::kFpServeReload,
                                                 StatusCode::kIoError)) {
      return util::InjectedFault(*injected, util::kFpServeReload)
          .WithContext("reloading rules from " + rules_path_);
    }
    size_t unresolved = 0;
    // reload_mu_ serializes reloads only; it is never taken on the
    // request-serving path, so blocking file I/O under it cannot stall a
    // worker (Get() only touches mu_).
    // at_lint: disable(R8) reload-only lock, never on the request path
    auto rules = core::TryLoadRulesFromFile(rules_path_, *evals_,
                                            &unresolved);
    if (!rules.ok()) {
      return Status(rules.status())
          .WithContext("reloading rules from " + rules_path_);
    }
    auto snapshot = std::make_shared<RuleSetSnapshot>(
        version, rules_path_, std::move(*rules), unresolved);
    if (snapshot->predictor().num_rules() == 0) {
      return util::FailedPreconditionError(
                 "rule file has no servable rules (" +
                 std::to_string(snapshot->predictor().skipped_rules()) +
                 " invalid, " + std::to_string(unresolved) + " unresolved)")
          .WithContext("reloading rules from " + rules_path_);
    }
    return snapshot;
  };

  auto candidate = attempt();
  if (!candidate.ok()) {
    reload_failures.Increment();
    return candidate.status();
  }
  {
    util::MutexLock lock(&mu_);
    current_ = std::move(*candidate);
    next_version_ = version + 1;
  }
  reloads.Increment();
  return Status::Ok();
}

std::shared_ptr<const RuleSetSnapshot> SnapshotStore::Get() const {
  util::MutexLock lock(&mu_);
  return current_;
}

uint64_t SnapshotStore::version() const {
  util::MutexLock lock(&mu_);
  return current_ ? current_->version() : 0;
}

}  // namespace autotest::serve
