#ifndef AUTOTEST_SERVE_SESSION_H_
#define AUTOTEST_SERVE_SESSION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "serve/admission.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "util/budget.h"
#include "util/retry.h"

// One request's lifecycle (DESIGN.md §4h): payload -> parse -> predict ->
// report, with the per-request deadline checked at every phase boundary.
// The handler is transport-agnostic — the TCP workers and the CLI's
// `--once` stdin/stdout mode call the same HandlePayload — and every
// outcome is a structured Response, never an exception or a crash.

namespace autotest::serve {

/// Knobs for the serving tier. One struct feeds both the Server (port,
/// admission limits, drain budget) and the per-request session (deadline,
/// frame cap, clock).
struct ServeOptions {
  /// TCP port to bind on 127.0.0.1; 0 = ephemeral (Server::port() tells).
  uint16_t port = 0;
  /// Worker threads == the concurrency limit. Admitted requests beyond
  /// this wait in the queue.
  size_t max_inflight = 4;
  /// Bounded queue depth between acceptor and workers; a full queue sheds.
  size_t queue_depth = 16;
  /// Budget for requests that do not carry their own deadline_ms.
  int64_t default_deadline_micros = 10'000'000;  // 10 s
  /// How long SIGTERM waits for queued + in-flight requests to finish
  /// before shedding the still-queued remainder.
  int64_t drain_timeout_micros = 5'000'000;  // 5 s
  /// Reject request frames larger than this before allocating.
  size_t max_frame_bytes = size_t{16} << 20;  // 16 MiB
  /// Per-request resource ceilings (DESIGN.md §4j): bytes resident, rows
  /// parsed, cell-work units (one per parsed cell, one per distinct
  /// value × rule group evaluated). 0 disables a dimension. Every
  /// `check` request runs under a ResourceBudget built from these; the
  /// CsvOptions limits handed to the parser are derived from the same
  /// ceilings, so untrusted payloads always parse under explicit caps.
  uint64_t max_request_bytes = uint64_t{64} << 20;  // 64 MiB
  uint64_t max_request_rows = 1'000'000;
  uint64_t max_request_cells = 8'000'000;
  /// Per-tenant governance (token-bucket quotas + circuit breakers);
  /// nullptr disables both gates. Not owned; must outlive the server.
  TenantGovernor* governor = nullptr;
  /// Time source for deadlines and latency; nullptr = util::RealClock().
  /// Tests inject a VirtualClock so expiry is deterministic.
  util::Clock* clock = nullptr;
  /// Test seam: invoked at phase boundaries ("read", "parse", "predict",
  /// "report") from worker threads. Production leaves it empty.
  std::function<void(std::string_view)> phase_hook;
};

/// The options' clock, defaulting to the process-wide real clock.
util::Clock& EffectiveClock(const ServeOptions& options);

/// Handles one request payload end to end: counts serve.requests and
/// ok/error outcomes, observes serve.request_seconds, enforces the
/// deadline at phase boundaries (expiry after parse degrades to a
/// partial, provenance-stamped report; expiry before parse is a
/// structured DEADLINE_EXCEEDED). `admitted_micros` anchors the budget
/// (queue time counts); pass a negative value to anchor at "now".
Response HandlePayload(std::string_view payload, SnapshotStore& snapshots,
                       const ServeOptions& options, int64_t admitted_micros);

/// A structured error response carrying `status`'s code and rendering.
Response ErrorResponse(const util::Status& status);

/// The load-shedding response: RESOURCE_EXHAUSTED with a `reason` field
/// ("shed" at admission, "draining" at shutdown, "quota" when the
/// tenant's token bucket is empty, "circuit_open" while the tenant's
/// breaker is open). Requests rejected by their own resource budget
/// carry `reason=budget` on an ErrorResponse instead — that class is the
/// request's fault, not server load, and clients must not blind-retry
/// it.
Response ShedResponse(std::string_view reason);

}  // namespace autotest::serve

#endif  // AUTOTEST_SERVE_SESSION_H_
