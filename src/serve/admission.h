#ifndef AUTOTEST_SERVE_ADMISSION_H_
#define AUTOTEST_SERVE_ADMISSION_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

// Bounded admission queue between the acceptor and the worker pool
// (DESIGN.md §4h). Admission control is the whole point: TryPush never
// blocks and never grows past `depth` — when the queue is full the caller
// sheds the request with a structured RESOURCE_EXHAUSTED response instead
// of queueing unboundedly. Pop blocks workers until a job arrives or the
// queue is closed and empty.

namespace autotest::serve {

/// One admitted connection, waiting for a worker.
struct AdmittedJob {
  int fd = -1;
  /// Clock reading at admission; the request's deadline anchors here so
  /// queue time counts against the budget.
  int64_t admitted_micros = 0;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t depth) : depth_(depth) {}

  /// Admits `job` unless the queue is at depth or admissions are closed.
  /// Returns false without blocking in either case — the caller sheds.
  bool TryPush(AdmittedJob job) AT_EXCLUDES(mu_);

  /// Blocks until a job is available or the queue is closed and drained;
  /// nullopt means "no more work ever" (worker exits).
  std::optional<AdmittedJob> Pop() AT_EXCLUDES(mu_);

  /// Stops admissions (TryPush starts failing) but lets queued jobs be
  /// popped — the graceful half of drain.
  void CloseAdmissions() AT_EXCLUDES(mu_);

  /// Removes and returns every still-queued job (drain deadline passed;
  /// the caller sheds them). Also closes admissions.
  std::vector<AdmittedJob> DrainRemaining() AT_EXCLUDES(mu_);

  /// Wakes all Pop waiters permanently; combined with CloseAdmissions,
  /// workers exit once the queue is empty.
  void Shutdown() AT_EXCLUDES(mu_);

  size_t size() const AT_EXCLUDES(mu_);

 private:
  const size_t depth_;
  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::queue<AdmittedJob> jobs_ AT_GUARDED_BY(mu_);
  bool closed_ AT_GUARDED_BY(mu_) = false;    // no new admissions
  bool shutdown_ AT_GUARDED_BY(mu_) = false;  // Pop nullopt once empty
};

}  // namespace autotest::serve

#endif  // AUTOTEST_SERVE_ADMISSION_H_
