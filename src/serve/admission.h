#ifndef AUTOTEST_SERVE_ADMISSION_H_
#define AUTOTEST_SERVE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "util/circuit_breaker.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/thread_annotations.h"

// Bounded admission queue between the acceptor and the worker pool
// (DESIGN.md §4h). Admission control is the whole point: TryPush never
// blocks and never grows past `depth` — when the queue is full the caller
// sheds the request with a structured RESOURCE_EXHAUSTED response instead
// of queueing unboundedly. Pop blocks workers until a job arrives or the
// queue is closed and empty.
//
// Per-tenant governance (DESIGN.md §4j) also lives here: TenantGovernor
// gates each parsed request on its tenant's token bucket *before* any
// predictor work is scheduled, and keys circuit breakers per
// (tenant, rule-set version) so repeat offenders are quarantined without
// touching other tenants. The global queue above stays the backstop for
// aggregate overload; the governor adds the per-tenant isolation layer
// in front of the expensive phases.

namespace autotest::serve {

/// One admitted connection, waiting for a worker.
struct AdmittedJob {
  int fd = -1;
  /// Clock reading at admission; the request's deadline anchors here so
  /// queue time counts against the budget.
  int64_t admitted_micros = 0;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t depth) : depth_(depth) {}

  /// Admits `job` unless the queue is at depth or admissions are closed.
  /// Returns false without blocking in either case — the caller sheds.
  bool TryPush(AdmittedJob job) AT_EXCLUDES(mu_);

  /// Blocks until a job is available or the queue is closed and drained;
  /// nullopt means "no more work ever" (worker exits).
  std::optional<AdmittedJob> Pop() AT_EXCLUDES(mu_);

  /// Stops admissions (TryPush starts failing) but lets queued jobs be
  /// popped — the graceful half of drain.
  void CloseAdmissions() AT_EXCLUDES(mu_);

  /// Removes and returns every still-queued job (drain deadline passed;
  /// the caller sheds them). Also closes admissions.
  std::vector<AdmittedJob> DrainRemaining() AT_EXCLUDES(mu_);

  /// Wakes all Pop waiters permanently; combined with CloseAdmissions,
  /// workers exit once the queue is empty.
  void Shutdown() AT_EXCLUDES(mu_);

  size_t size() const AT_EXCLUDES(mu_);

 private:
  const size_t depth_;
  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::queue<AdmittedJob> jobs_ AT_GUARDED_BY(mu_);
  bool closed_ AT_GUARDED_BY(mu_) = false;    // no new admissions
  bool shutdown_ AT_GUARDED_BY(mu_) = false;  // Pop nullopt once empty
};

/// One tenant's rate allowance: a token bucket holding at most `burst`
/// tokens, refilled at `rate_per_sec`. rate 0 with burst B means "B
/// requests until the quota file is reloaded" (a hard allowance).
struct TenantQuota {
  double rate_per_sec = 0.0;
  double burst = 0.0;
};

/// Deterministic token bucket over caller-provided clock readings (the
/// governor passes its injected util::Clock's NowMicros, so tests refill
/// in virtual time).
class TokenBucket {
 public:
  TokenBucket(const TenantQuota& quota, int64_t now_micros);

  /// Takes one token if available after refilling to `now_micros`.
  [[nodiscard]] bool TryTake(int64_t now_micros) AT_EXCLUDES(mu_);

  /// Tokens currently available (after refilling to `now_micros`).
  double AvailableTokens(int64_t now_micros) AT_EXCLUDES(mu_);

 private:
  void RefillLocked(int64_t now_micros) AT_REQUIRES(mu_);

  const double rate_per_sec_;
  const double burst_;
  util::Mutex mu_;
  double tokens_ AT_GUARDED_BY(mu_);
  int64_t last_refill_micros_ AT_GUARDED_BY(mu_);
};

/// Parses a quota file (DESIGN.md §4j):
///
///   autotest.quotas.v1
///   # comment / blank lines ignored
///   <tenant> <rate_per_sec> <burst>
///
/// `<tenant>` is a wire-valid tenant id or the keyword `default`, which
/// applies to every tenant without an explicit row (including the
/// anonymous empty tenant). kInvalidArgument with line diagnostics on a
/// bad header, malformed row, invalid tenant, negative rate, burst < 1,
/// or duplicate tenant.
[[nodiscard]] util::Result<std::map<std::string, TenantQuota, std::less<>>>
TryParseQuotaConfig(std::string_view text);

/// Per-tenant admission gate + breaker registry for the serve tier.
/// Thread-safe; one instance is shared by every worker. With no quota
/// table loaded every tenant is admitted (breakers still apply).
class TenantGovernor {
 public:
  /// `clock` must be non-null and outlive the governor.
  TenantGovernor(const util::CircuitBreakerOptions& breaker_options,
                 util::Clock* clock);

  TenantGovernor(const TenantGovernor&) = delete;
  TenantGovernor& operator=(const TenantGovernor&) = delete;

  /// Loads (or hot-reloads) the quota table from `path`, remembering the
  /// path for TryReloadQuotas. Load-validate-then-swap: a malformed file
  /// is a structured error and the previous table keeps serving.
  /// Existing buckets are rebuilt lazily against the new table.
  [[nodiscard]] util::Status TryLoadQuotas(const std::string& path)
      AT_EXCLUDES(reload_mu_);

  /// Re-loads from the last TryLoadQuotas path; Ok no-op when no quota
  /// file was ever configured. Called alongside the rule-set reload.
  [[nodiscard]] util::Status TryReloadQuotas() AT_EXCLUDES(reload_mu_);

  /// True when `tenant`'s bucket has a token (or no quota applies to
  /// it). A denial counts serve.tenant_rejections; the caller sheds with
  /// `reason=quota`.
  [[nodiscard]] bool TryAdmit(std::string_view tenant) AT_EXCLUDES(mu_);

  /// The circuit breaker for (tenant, rule-set version). The reference
  /// stays valid for the governor's lifetime.
  util::CircuitBreaker& BreakerFor(std::string_view tenant,
                                   uint64_t ruleset_version);

  /// Monotonic count of successful quota (re)loads.
  uint64_t quota_version() const AT_EXCLUDES(mu_);

 private:
  /// The bucket for `tenant`, created on first use from its quota row
  /// (explicit row, else `default` row, else nullptr = unlimited).
  /// Shared-ptr so a hot-reload can swap the table while a concurrent
  /// TryAdmit still holds its bucket.
  std::shared_ptr<TokenBucket> BucketFor(std::string_view tenant)
      AT_EXCLUDES(mu_);

  util::Clock* const clock_;
  util::CircuitBreakerMap breakers_;

  /// Serializes reloads; never held on the admit path. Ordered before
  /// mu_ (the swap takes both).
  util::Mutex reload_mu_ AT_ACQUIRED_BEFORE(mu_);
  std::string quota_path_ AT_GUARDED_BY(reload_mu_);

  mutable util::Mutex mu_;
  std::map<std::string, TenantQuota, std::less<>> quotas_
      AT_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<TokenBucket>, std::less<>>
      buckets_ AT_GUARDED_BY(mu_);
  uint64_t quota_version_ AT_GUARDED_BY(mu_) = 0;
};

}  // namespace autotest::serve

#endif  // AUTOTEST_SERVE_ADMISSION_H_
