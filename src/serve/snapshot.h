#ifndef AUTOTEST_SERVE_SNAPSHOT_H_
#define AUTOTEST_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "core/sdc.h"
#include "typedet/eval_functions.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

// Versioned, immutable rule-set snapshots with load-validate-then-swap
// hot-reload (DESIGN.md §4h).
//
// A request takes one shared_ptr<const RuleSetSnapshot> at admission and
// keeps it for its whole lifetime, so a reload mid-request can never mix
// rule versions inside one response: the old snapshot stays alive (and
// serving) until its last in-flight request drops the reference. A reload
// that fails validation — unreadable file, corrupt bytes (the `rules.*`
// failpoints exercise both), or a file with no servable rules — leaves the
// current snapshot untouched and stamps `serve.reload_failures`.

namespace autotest::serve {

/// One immutable, versioned rule set plus its ready-to-serve predictor.
class RuleSetSnapshot {
 public:
  RuleSetSnapshot(uint64_t version, std::string source,
                  std::vector<core::Sdc> rules, size_t unresolved)
      : version_(version),
        source_(std::move(source)),
        predictor_(std::move(rules)),
        unresolved_(unresolved) {}

  uint64_t version() const { return version_; }
  const std::string& source() const { return source_; }
  const core::SdcPredictor& predictor() const { return predictor_; }
  /// Rules whose eval id did not resolve against the serving function set.
  size_t unresolved() const { return unresolved_; }

 private:
  uint64_t version_;
  std::string source_;
  core::SdcPredictor predictor_;
  size_t unresolved_;
};

/// Owns the current snapshot and the reload path. Get() is a mutex-guarded
/// shared_ptr copy (cheap, TSan-clean, portable — no reliance on
/// atomic<shared_ptr> availability); TryReload() builds and validates the
/// candidate completely before the swap, so readers only ever observe
/// fully-constructed snapshots.
class SnapshotStore {
 public:
  /// `evals` must outlive the store (rule files resolve eval ids against
  /// it; it is corpus-derived and owned by the daemon's AutoTest model).
  SnapshotStore(const typedet::EvalFunctionSet* evals,
                std::string rules_path);

  /// Loads `rules_path`, validates, and atomically swaps the new snapshot
  /// in. On any failure the previous snapshot keeps serving. The
  /// `serve.reload` failpoint fires at entry; `rules.open`/`rules.parse`
  /// fire inside the loader. Increments serve.reloads / reload_failures.
  [[nodiscard]] util::Status TryReload() AT_EXCLUDES(reload_mu_, mu_);

  /// The current snapshot; nullptr until the first successful TryReload.
  std::shared_ptr<const RuleSetSnapshot> Get() const AT_EXCLUDES(mu_);

  /// Version of the current snapshot (0 = none loaded yet).
  uint64_t version() const AT_EXCLUDES(mu_);

  const std::string& rules_path() const { return rules_path_; }

 private:
  const typedet::EvalFunctionSet* evals_;
  std::string rules_path_;

  /// Serializes TryReload calls; always taken before mu_ (R9 edge).
  util::Mutex reload_mu_ AT_ACQUIRED_BEFORE(mu_);
  mutable util::Mutex mu_;
  std::shared_ptr<const RuleSetSnapshot> current_ AT_GUARDED_BY(mu_);
  uint64_t next_version_ AT_GUARDED_BY(mu_) = 1;
};

}  // namespace autotest::serve

#endif  // AUTOTEST_SERVE_SNAPSHOT_H_
