#include "serve/session.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "table/csv.h"
#include "table/table.h"
#include "util/budget.h"
#include "util/circuit_breaker.h"
#include "util/metrics.h"
#include "util/parallel/thread_pool.h"

namespace autotest::serve {

namespace {

using util::Status;
using util::StatusCode;

metrics::Histogram& RequestSeconds() {
  static metrics::Histogram& h = metrics::Registry::Global().GetHistogram(
      metrics::kMServeRequestSeconds,
      {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
       5.0, 10.0});
  return h;
}

void Hook(const ServeOptions& options, std::string_view phase) {
  if (options.phase_hook) options.phase_hook(phase);
}

std::string FormatConfidence(double conf) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", conf);
  return buf;
}

/// The `check` verb: CSV parse -> per-column prediction on the parallel
/// pool -> report, each boundary gated on the deadline and charged
/// against the per-request ResourceBudget (DESIGN.md §4j) so an
/// over-budget request fails fast with a structured RESOURCE_EXHAUSTED
/// (`reason=budget`) instead of OOM-ing the daemon.
Response HandleCheck(const Request& request,
                     const RuleSetSnapshot& snapshot,
                     const ServeOptions& options, util::Clock& clock,
                     int64_t deadline_micros) {
  static metrics::Counter& deadline_expirations =
      metrics::Registry::Global().GetCounter(
          metrics::kMServeDeadlineExpirations);
  static metrics::Counter& budget_charges =
      metrics::Registry::Global().GetCounter(
          metrics::kMServeBudgetCharges);
  static metrics::Counter& budget_rejections =
      metrics::Registry::Global().GetCounter(
          metrics::kMServeBudgetRejections);

  auto expired = [&] { return clock.NowMicros() >= deadline_micros; };

  util::ResourceLimits limits;
  limits.max_bytes = options.max_request_bytes;
  limits.max_rows = options.max_request_rows;
  limits.max_cells = options.max_request_cells;
  util::ResourceBudget rbudget(limits);
  // The scope releases everything it charged when the request finishes
  // (any return path), so the budget's usage reads zero afterwards — the
  // invariant behind "a rejected request leaves no memory behind".
  util::BudgetScope scope(&rbudget);

  // Every exit folds the request's charge accounting into the serve
  // metrics: total charges, plus one rejection per request that went
  // over budget.
  auto stamped = [&](Response r) {
    budget_charges.Increment(rbudget.charges());
    if (rbudget.exhausted()) budget_rejections.Increment();
    return r;
  };
  auto budget_error = [&](Status status) {
    Response r = ErrorResponse(std::move(status));
    r.AddField("reason", "budget");
    return stamped(std::move(r));
  };

  Response response;
  response.AddField("version", std::to_string(snapshot.version()));
  response.AddField("rules",
                    std::to_string(snapshot.predictor().num_rules()));

  // The raw payload is the first resident copy the request pins.
  if (Status charged = scope.TryCharge(util::ResourceKind::kBytes,
                                       request.body.size(), "request body");
      !charged.ok()) {
    return budget_error(std::move(charged));
  }

  // Untrusted payloads always parse under explicit caps derived from the
  // request budget — never the parser's defaults alone.
  table::CsvOptions csv_options;
  csv_options.max_row_bytes = options.max_frame_bytes;
  if (options.max_request_bytes != 0) {
    csv_options.max_row_bytes =
        std::min<size_t>(csv_options.max_row_bytes,
                         static_cast<size_t>(options.max_request_bytes));
  }
  if (options.max_request_cells != 0) {
    // A single row cannot hold more fields than the whole-request cell
    // allowance, so the cell ceiling bounds max_columns too.
    csv_options.max_columns =
        std::min<size_t>(csv_options.max_columns,
                         static_cast<size_t>(options.max_request_cells));
  }
  csv_options.budget = &rbudget;
  auto table = table::TryParseCsv(request.body, csv_options);
  if (!table.ok()) {
    Response r = ErrorResponse(Status(table.status())
                                   .WithContext("parsing request table" +
                                                (request.table.empty()
                                                     ? std::string()
                                                     : " '" + request.table +
                                                           "'")));
    if (rbudget.exhausted()) r.AddField("reason", "budget");
    return stamped(std::move(r));
  }

  // Columns the predictor actually sees: mostly-numeric ones are skipped
  // up front (same policy as `autotest check`).
  std::vector<const table::Column*> kept;
  for (const auto& column : table->columns) {
    if (!table::IsMostlyNumeric(column)) kept.push_back(&column);
  }

  Hook(options, "predict");
  std::string provenance = "full";
  size_t columns_checked = 0;
  size_t columns_skipped = 0;
  size_t detections_total = 0;
  std::string body;
  if (expired()) {
    // Parse consumed the whole budget: report what we know (nothing was
    // predicted) instead of stalling the pool on a table we cannot
    // finish.
    deadline_expirations.Increment();
    provenance = "partial:parse";
  } else {
    core::PredictBudget budget;
    budget.clock = &clock;
    budget.deadline_micros = deadline_micros;
    budget.resources = &rbudget;
    struct Slot {
      std::optional<core::BudgetedPrediction> prediction;
      Status error;  // set when TryPredict failed (injected faults)
    };
    std::vector<Slot> slots(kept.size());
    util::parallel::ParallelFor(kept.size(), [&](size_t i) {
      auto result = snapshot.predictor().TryPredict(*kept[i], budget);
      if (result.ok()) {
        slots[i].prediction = std::move(*result);
      } else {
        slots[i].error = result.status();
      }
    });
    if (rbudget.exhausted()) {
      // The shared request budget ran out mid-predict: unlike a
      // per-column injected fault, this is a request-level failure, so
      // surface the first budget-rejected column's structured error.
      for (const Slot& slot : slots) {
        if (!slot.error.ok() &&
            slot.error.code() == StatusCode::kResourceExhausted) {
          return budget_error(Status(slot.error)
                                  .WithContext("request over resource "
                                               "budget during predict"));
        }
      }
    }
    bool any_expired = false;
    for (size_t i = 0; i < kept.size(); ++i) {
      const Slot& slot = slots[i];
      if (!slot.prediction.has_value()) {
        // Column-level degradation (injected per-column faults): skip and
        // count, exactly like the batch CLI.
        ++columns_skipped;
        continue;
      }
      if (slot.prediction->expired) {
        any_expired = true;
        if (slot.prediction->groups_evaluated == 0) {
          ++columns_skipped;
          continue;
        }
      }
      ++columns_checked;
      for (const auto& d : slot.prediction->detections) {
        std::string line = kept[i]->name + "\t" + std::to_string(d.row) +
                           "\t" + d.value + "\t" +
                           FormatConfidence(d.confidence) + "\t" +
                           d.explanation + "\n";
        // Report generation charges too: a detection-dense table must
        // not build an unbounded response body.
        if (Status charged = scope.TryCharge(util::ResourceKind::kBytes,
                                             line.size(), "report line");
            !charged.ok()) {
          return budget_error(std::move(charged));
        }
        ++detections_total;
        body += line;
      }
    }
    if (any_expired) {
      deadline_expirations.Increment();
      provenance = "partial:predict";
    }
  }

  Hook(options, "report");
  response.AddField("provenance", provenance);
  response.AddField("columns_checked", std::to_string(columns_checked));
  response.AddField("columns_skipped", std::to_string(columns_skipped));
  response.AddField("detections", std::to_string(detections_total));
  response.body = std::move(body);
  return stamped(std::move(response));
}

}  // namespace

util::Clock& EffectiveClock(const ServeOptions& options) {
  return options.clock != nullptr ? *options.clock : util::RealClock();
}

Response ErrorResponse(const Status& status) {
  Response response;
  response.code = status.ok() ? StatusCode::kInternal : status.code();
  response.body = status.ToString() + "\n";
  return response;
}

Response ShedResponse(std::string_view reason) {
  Response response;
  response.code = StatusCode::kResourceExhausted;
  response.AddField("reason", std::string(reason));
  response.body = "server is saturated; retry with backoff\n";
  return response;
}

Response HandlePayload(std::string_view payload, SnapshotStore& snapshots,
                       const ServeOptions& options,
                       int64_t admitted_micros) {
  static metrics::Counter& requests =
      metrics::Registry::Global().GetCounter(metrics::kMServeRequests);
  static metrics::Counter& requests_ok =
      metrics::Registry::Global().GetCounter(metrics::kMServeRequestsOk);
  static metrics::Counter& requests_error =
      metrics::Registry::Global().GetCounter(metrics::kMServeRequestsError);
  static metrics::Counter& deadline_expirations =
      metrics::Registry::Global().GetCounter(
          metrics::kMServeDeadlineExpirations);

  util::Clock& clock = EffectiveClock(options);
  const int64_t anchor =
      admitted_micros >= 0 ? admitted_micros : clock.NowMicros();
  requests.Increment();

  auto finish = [&](Response response) {
    if (response.code == StatusCode::kOk) {
      requests_ok.Increment();
    } else {
      requests_error.Increment();
    }
    RequestSeconds().Observe(
        static_cast<double>(clock.NowMicros() - anchor) / 1e6);
    return response;
  };

  Hook(options, "parse");
  auto request = TryParseRequest(payload);
  if (!request.ok()) return finish(ErrorResponse(request.status()));

  // The per-tenant token bucket gates every verb before any further work
  // is scheduled: one tenant hammering the daemon drains its own bucket
  // and nobody else's.
  if (options.governor != nullptr &&
      !options.governor->TryAdmit(request->tenant)) {
    return finish(ShedResponse("quota"));
  }

  const int64_t budget_micros = request->deadline_ms > 0
                                    ? request->deadline_ms * 1000
                                    : options.default_deadline_micros;
  const int64_t deadline_micros = anchor + budget_micros;
  if (clock.NowMicros() >= deadline_micros) {
    // The budget died in the queue: nothing was parsed, so there is no
    // partial result to report — fail structurally and let the client
    // retry with a bigger budget or less load.
    deadline_expirations.Increment();
    return finish(ErrorResponse(util::DeadlineExceededError(
        "deadline of " + std::to_string(budget_micros) +
        "us expired before parse")));
  }

  std::shared_ptr<const RuleSetSnapshot> snapshot = snapshots.Get();
  if (snapshot == nullptr) {
    return finish(ErrorResponse(
        util::FailedPreconditionError("no rule set loaded yet")));
  }

  if (request->verb == "ping") {
    Response response;
    response.AddField("version", std::to_string(snapshot->version()));
    response.body = "pong\n";
    return finish(response);
  }
  if (request->verb == "metrics") {
    Response response;
    response.AddField("version", std::to_string(snapshot->version()));
    response.body =
        metrics::Registry::Global().FormatJson("autotest serve");
    return finish(response);
  }
  if (request->verb == "reload") {
    Status st = snapshots.TryReload();
    if (st.ok() && options.governor != nullptr) {
      // Tenant quotas hot-reload alongside the rule-set snapshot, so one
      // `reload` (verb, SIGHUP or --reload-watch) refreshes both.
      st = options.governor->TryReloadQuotas();
    }
    if (!st.ok()) {
      Response response = ErrorResponse(st);
      response.AddField("version", std::to_string(snapshots.version()));
      return finish(response);
    }
    Response response;
    response.AddField("version", std::to_string(snapshots.version()));
    response.body = "reloaded\n";
    return finish(response);
  }

  // The `check` verb runs under the tenant's circuit breaker, keyed per
  // rule-set version: N consecutive failures quarantine that tenant (on
  // that rule set) behind `reason=circuit_open` sheds until the cooldown
  // admits a half-open probe.
  util::CircuitBreaker* breaker = nullptr;
  if (options.governor != nullptr) {
    breaker =
        &options.governor->BreakerFor(request->tenant, snapshot->version());
    if (!breaker->TryAcquire()) {
      return finish(ShedResponse("circuit_open"));
    }
  }
  Response response = HandleCheck(*request, *snapshot, options, clock,
                                  deadline_micros);
  if (breaker != nullptr) {
    if (response.code == StatusCode::kOk) {
      breaker->RecordSuccess();
    } else {
      breaker->RecordFailure();
    }
  }
  return finish(std::move(response));
}

}  // namespace autotest::serve
