#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "serve/wire.h"
#include "util/failpoint.h"
#include "util/metrics.h"

namespace autotest::serve {

namespace {

using util::Status;
using util::StatusCode;

// The acceptor wakes at least this often to notice RequestStop().
constexpr int kAcceptPollMillis = 50;

}  // namespace

Server::Server(SnapshotStore* snapshots, ServeOptions options)
    : snapshots_(snapshots),
      options_(std::move(options)),
      queue_(options_.queue_depth) {}

Server::~Server() {
  if (started_ && !stopped_) (void)StopAndDrain();
}

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::IoError(std::string("socket() failed (") +
                         std::strerror(errno) + ")");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status st = util::IoError("cannot bind 127.0.0.1:" +
                              std::to_string(options_.port) + " (" +
                              std::strerror(errno) + ")");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  // Backlog beyond queue_depth so shed connections still get their
  // structured response instead of a kernel-level RST.
  if (::listen(listen_fd_,
               static_cast<int>(options_.queue_depth +
                                options_.max_inflight + 64)) != 0) {
    Status st = util::IoError(std::string("listen() failed (") +
                              std::strerror(errno) + ")");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  const size_t workers = options_.max_inflight < 1 ? 1
                                                   : options_.max_inflight;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::Ok();
}

void Server::AcceptLoop() {
  static metrics::Counter& connections =
      metrics::Registry::Global().GetCounter(metrics::kMServeConnections);
  static metrics::Counter& accept_errors =
      metrics::Registry::Global().GetCounter(metrics::kMServeAcceptErrors);
  static metrics::Counter& requests_shed =
      metrics::Registry::Global().GetCounter(metrics::kMServeRequestsShed);

  util::Clock& clock = EffectiveClock(options_);
  while (!stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, kAcceptPollMillis);
    if (stop_requested()) break;
    if (pr <= 0) continue;  // timeout or EINTR: re-check stop flag
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (auto injected = util::FailpointFiresCode(util::kFpServeAccept,
                                                 StatusCode::kIoError)) {
      // An injected accept fault drops the connection but must never
      // take the acceptor down (the soak asserts the daemon survives).
      accept_errors.Increment();
      if (fd >= 0) ::close(fd);
      continue;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      accept_errors.Increment();
      continue;
    }
    connections.Increment();
    AdmittedJob job;
    job.fd = fd;
    job.admitted_micros = clock.NowMicros();
    // Count the job before publishing it: a fast worker may finish (and
    // decrement) the instant TryPush returns, so incrementing afterwards
    // would transiently wrap pending_ below zero.
    {
      util::MutexLock lock(&drain_mu_);
      ++pending_;
    }
    if (queue_.TryPush(job)) continue;
    {
      util::MutexLock lock(&drain_mu_);
      --pending_;
    }
    // Saturated: every worker busy and the queue at depth. Shedding is
    // the acceptor's job so the answer is immediate and deterministic.
    requests_shed.Increment();
    shed_.fetch_add(1, std::memory_order_relaxed);
    Status st = TryWriteFrame(
        fd, SerializeResponse(ShedResponse("shed")));
    if (!st.ok()) {
      // Peer vanished before reading its shed notice; nothing to do.
    }
    ::close(fd);
  }
}

void Server::WorkerLoop() {
  while (auto job = queue_.Pop()) {
    HandleConnection(*job);
    {
      util::MutexLock lock(&drain_mu_);
      --pending_;
      ++completed_;
    }
    drain_cv_.NotifyAll();
  }
}

void Server::HandleConnection(const AdmittedJob& job) {
  static metrics::Counter& read_errors =
      metrics::Registry::Global().GetCounter(metrics::kMServeReadErrors);

  if (options_.phase_hook) options_.phase_hook("read");
  // The frame read is capped at the request's remaining default budget
  // (its own deadline_ms is inside the frame being read, so the default
  // is the only budget known yet): a client that connects and sends
  // nothing gets a structured DEADLINE_EXCEEDED and frees this worker
  // instead of pinning it forever.
  util::Clock& clock = EffectiveClock(options_);
  int64_t read_budget_micros = job.admitted_micros +
                               options_.default_deadline_micros -
                               clock.NowMicros();
  if (read_budget_micros < 0) read_budget_micros = 0;
  {
    util::MutexLock lock(&drain_mu_);
    reading_fds_.push_back(job.fd);
  }
  auto payload = [&]() -> util::Result<std::string> {
    if (auto injected = util::FailpointFiresCode(util::kFpServeRead,
                                                 StatusCode::kIoError)) {
      return util::InjectedFault(*injected, util::kFpServeRead)
          .WithContext("reading request frame");
    }
    return TryReadFrame(job.fd, options_.max_frame_bytes,
                        read_budget_micros / 1000);
  }();
  {
    util::MutexLock lock(&drain_mu_);
    reading_fds_.erase(
        std::find(reading_fds_.begin(), reading_fds_.end(), job.fd));
  }

  Response response;
  if (!payload.ok()) {
    read_errors.Increment();
    response = ErrorResponse(payload.status());
  } else {
    response = HandlePayload(*payload, *snapshots_, options_,
                             job.admitted_micros);
  }
  Status st = TryWriteFrame(job.fd, SerializeResponse(response));
  if (!st.ok()) {
    // The client hung up before its response; the request itself was
    // already counted by HandlePayload.
  }
  ::close(job.fd);
}

DrainReport Server::StopAndDrain() {
  static metrics::Counter& drain_shed_counter =
      metrics::Registry::Global().GetCounter(metrics::kMServeDrainShed);

  DrainReport report;
  if (!started_ || stopped_) return report;
  stopped_ = true;

  RequestStop();
  acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  queue_.CloseAdmissions();

  // Wait (in real time, measured on the injectable clock) for admitted
  // work to finish. drain_timeout 0 sheds the queue immediately.
  util::Clock& clock = EffectiveClock(options_);
  const int64_t deadline =
      clock.NowMicros() + options_.drain_timeout_micros;
  {
    util::MutexLock lock(&drain_mu_);
    while (pending_ > 0 && clock.NowMicros() < deadline) {
      drain_cv_.WaitForMicros(drain_mu_, 10'000);
    }
    // Past the drain budget: a worker still parked in a frame read is
    // waiting on a request that never arrived, so there is no response
    // worth waiting for — shut its socket down and the read fails now
    // instead of at the read timeout. Requests past their read (already
    // computing a response) are still awaited by the joins below.
    for (int fd : reading_fds_) ::shutdown(fd, SHUT_RDWR);
  }

  // Whatever is still queued missed the drain budget: shed it with a
  // structured "draining" response. In-flight requests (already popped)
  // are always awaited — they are deadline-bounded by construction.
  std::vector<AdmittedJob> leftovers = queue_.DrainRemaining();
  for (const AdmittedJob& job : leftovers) {
    drain_shed_counter.Increment();
    ++report.drain_shed;
    Status st = TryWriteFrame(
        job.fd, SerializeResponse(ShedResponse("draining")));
    if (!st.ok()) {
      // Peer gone; the shed is still counted.
    }
    ::close(job.fd);
  }
  {
    util::MutexLock lock(&drain_mu_);
    pending_ -= leftovers.size();
  }

  queue_.Shutdown();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  {
    util::MutexLock lock(&drain_mu_);
    report.completed = completed_;
  }
  report.shed = shed_.load(std::memory_order_relaxed);
  report.drained_clean = report.drain_shed == 0;
  return report;
}

}  // namespace autotest::serve
