#include "embed/vector_math.h"

#include <cmath>
#include <string>

#include "util/check.h"
#include "util/hashing.h"
#include "util/string_util.h"

namespace autotest::embed {

double EuclideanDistanceRaw(const float* a, const float* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return std::sqrt(s);
}

double EuclideanDistance(const Vector& a, const Vector& b) {
  AT_CHECK(a.size() == b.size());
  return EuclideanDistanceRaw(a.data(), b.data(), a.size());
}

double Dot(const Vector& a, const Vector& b) {
  AT_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return s;
}

double Norm(const Vector& a) { return std::sqrt(Dot(a, a)); }

void Normalize(Vector* v) {
  double n = Norm(*v);
  if (n == 0.0) return;
  for (float& x : *v) x = static_cast<float>(x / n);
}

void Scale(Vector* v, double factor) {
  for (float& x : *v) x = static_cast<float>(x * factor);
}

void AddScaled(Vector* a, const Vector& b, double factor) {
  AT_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    (*a)[i] += static_cast<float>(factor * static_cast<double>(b[i]));
  }
}

Vector HashGaussianUnit(std::string_view key, uint64_t seed, size_t dim) {
  Vector v(dim);
  uint64_t h = util::Fnv64Seeded(key, seed);
  for (size_t i = 0; i < dim; ++i) {
    h = util::SplitMix64(h + i + 1);
    uint64_t h2 = util::SplitMix64(h ^ 0xabcdef);
    // Box-Muller from two uniform hashes.
    double u1 = util::HashToUnitDouble(h);
    double u2 = util::HashToUnitDouble(h2);
    u1 = std::max(u1, 1e-12);
    v[i] = static_cast<float>(std::sqrt(-2.0 * std::log(u1)) *
                              std::cos(2.0 * M_PI * u2));
  }
  Normalize(&v);
  return v;
}

Vector LexicalVector(std::string_view value, uint64_t seed, size_t dim) {
  Vector v(dim, 0.0f);
  std::string marked = "^" + util::ToLower(value) + "$";
  for (int n = 2; n <= 3; ++n) {
    if (marked.size() < static_cast<size_t>(n)) continue;
    for (size_t i = 0; i + static_cast<size_t>(n) <= marked.size(); ++i) {
      std::string_view gram(marked.data() + i, static_cast<size_t>(n));
      uint64_t h = util::Fnv64Seeded(gram, seed);
      float sign = (util::SplitMix64(h) & 1) ? 1.0f : -1.0f;
      v[h % dim] += sign;
    }
  }
  Normalize(&v);
  return v;
}

}  // namespace autotest::embed
