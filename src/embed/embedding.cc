#include "embed/embedding.h"

#include "datagen/gazetteer.h"
#include "util/string_util.h"

namespace autotest::embed {

namespace {

constexpr size_t kDim = 64;

// Shared machinery: domain centroids + membership-weighted composition.
// A centroid is a pure function of (domain, seed) but costs one Box-Muller
// draw per dimension, and it is requested once per membership of every
// embedded value — so memoize the few dozen (domain, seed) pairs. The
// cached vector is bit-identical to a fresh HashGaussianUnit call.
Vector DomainCentroid(const std::string& domain_name, uint64_t seed) {
  static util::Mutex mu;
  static auto* cache = new std::unordered_map<std::string, Vector>();
  std::string key = std::to_string(seed) + ":" + domain_name;
  {
    util::MutexLock lock(&mu);
    auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  // Computed outside the lock; racing threads derive identical vectors.
  Vector v = HashGaussianUnit("centroid:" + domain_name, seed, kDim);
  util::MutexLock lock(&mu);
  return cache->emplace(std::move(key), std::move(v)).first->second;
}

// Averaged centroid over a value's memberships; returns false if the value
// belongs to no NL domain. `weight` receives the semantic tier weight.
bool SemanticComponent(const std::string& value, uint64_t seed,
                       double head_weight, double tail_weight, Vector* out,
                       double* weight) {
  const auto* memberships = datagen::Gazetteer::Instance().Lookup(value);
  if (memberships == nullptr || memberships->empty()) return false;
  Vector acc(kDim, 0.0f);
  double w_acc = 0.0;
  for (const auto& m : *memberships) {
    const auto& domain =
        datagen::Gazetteer::Instance().domains()[m.domain_index];
    double w = (m.tier == datagen::Tier::kHead) ? head_weight : tail_weight;
    AddScaled(&acc, DomainCentroid(domain.name, seed), w);
    w_acc += w;
  }
  Normalize(&acc);
  *out = std::move(acc);
  *weight = w_acc / static_cast<double>(memberships->size());
  return true;
}

class GloveSim : public EmbeddingModel {
 public:
  explicit GloveSim(uint64_t seed) : seed_(seed) {}

  const std::string& name() const override {
    static const std::string& n = *new std::string("glove-sim");
    return n;
  }
  size_t dim() const override { return kDim; }
  double oov_distance() const override { return 2.0 * kScale; }

  bool Embed(const std::string& value, Vector* out) const override {
    // Closed vocabulary: head members only. Tails and unknown strings are
    // OOV, like rare names missing from GloVe's vocabulary.
    const auto* memberships = datagen::Gazetteer::Instance().Lookup(value);
    if (memberships == nullptr) return false;
    bool any_head = false;
    Vector sem(kDim, 0.0f);
    for (const auto& m : *memberships) {
      if (m.tier != datagen::Tier::kHead) continue;
      const auto& domain =
          datagen::Gazetteer::Instance().domains()[m.domain_index];
      AddScaled(&sem, DomainCentroid(domain.name, seed_), 1.0);
      any_head = true;
    }
    if (!any_head) return false;
    Normalize(&sem);
    Vector v = sem;
    AddScaled(&v, LexicalVector(value, seed_ ^ 0x11ee, kDim), 0.35);
    AddScaled(&v, HashGaussianUnit(value, seed_ ^ 0x77aa, kDim), 0.15);
    Normalize(&v);
    Scale(&v, kScale);
    *out = std::move(v);
    return true;
  }

 private:
  static constexpr double kScale = 4.0;  // paper-like GloVe distance scale
  uint64_t seed_;
};

class SbertSim : public EmbeddingModel {
 public:
  explicit SbertSim(uint64_t seed) : seed_(seed) {}

  const std::string& name() const override {
    static const std::string& n = *new std::string("sbert-sim");
    return n;
  }
  size_t dim() const override { return kDim; }
  double oov_distance() const override { return 2.0 * kScale; }  // unused

  bool Embed(const std::string& value, Vector* out) const override {
    Vector sem;
    double sem_weight = 0.0;
    bool has_sem = SemanticComponent(value, seed_, /*head_weight=*/0.8,
                                     /*tail_weight=*/0.5, &sem, &sem_weight);
    Vector v(kDim, 0.0f);
    if (has_sem) AddScaled(&v, sem, sem_weight);
    AddScaled(&v, LexicalVector(value, seed_ ^ 0x22ff, kDim),
              1.0 - (has_sem ? sem_weight : 0.0));
    AddScaled(&v, HashGaussianUnit(value, seed_ ^ 0x88bb, kDim), 0.05);
    Normalize(&v);
    Scale(&v, kScale);
    *out = std::move(v);
    return true;
  }

 private:
  static constexpr double kScale = 1.2;  // paper-like S-BERT distance scale
  uint64_t seed_;
};

}  // namespace

bool EmbeddingModel::EmbedCached(const std::string& value,
                                 Vector* out) const {
  {
    util::MutexLock lock(&cache_mu_);
    auto it = cache_.find(value);
    if (it != cache_.end()) {
      *out = it->second.second;
      return it->second.first;
    }
  }
  Vector v;
  bool ok = Embed(value, &v);
  {
    util::MutexLock lock(&cache_mu_);
    if (cache_.size() >= kMaxCacheEntries) cache_.clear();
    cache_.emplace(value, std::make_pair(ok, v));
  }
  *out = std::move(v);
  return ok;
}

void EmbeddingModel::EmbedBlockCached(
    std::span<const std::string_view> values, float* out, uint8_t* ok) const {
  const size_t d = dim();
  auto emit = [&](size_t i, bool embeddable, const Vector& v) {
    ok[i] = embeddable ? 1 : 0;
    float* row = out + i * d;
    if (embeddable && v.size() == d) {
      std::copy(v.begin(), v.end(), row);
    } else {
      std::fill(row, row + d, 0.0f);
    }
  };
  std::vector<size_t> misses;
  {
    util::MutexLock lock(&cache_mu_);
    for (size_t i = 0; i < values.size(); ++i) {
      auto it = cache_.find(values[i]);
      if (it == cache_.end()) {
        misses.push_back(i);
        continue;
      }
      emit(i, it->second.first, it->second.second);
    }
  }
  if (misses.empty()) return;
  // Misses are embedded outside the lock (pure CPU work); two threads
  // racing on the same value compute identical vectors, and emplace keeps
  // whichever landed first.
  std::vector<std::pair<bool, Vector>> computed(misses.size());
  for (size_t k = 0; k < misses.size(); ++k) {
    computed[k].first =
        Embed(std::string(values[misses[k]]), &computed[k].second);
    emit(misses[k], computed[k].first, computed[k].second);
  }
  util::MutexLock lock(&cache_mu_);
  for (size_t k = 0; k < misses.size(); ++k) {
    if (cache_.size() >= kMaxCacheEntries) cache_.clear();
    cache_.emplace(std::string(values[misses[k]]), std::move(computed[k]));
  }
}

std::shared_ptr<const EmbeddingModel::BlockEmbeds>
EmbeddingModel::EmbedBlockShared(std::span<const std::string_view> values,
                                 uint64_t pool_id,
                                 size_t block_offset) const {
  const uint64_t key = (pool_id << 32) | static_cast<uint64_t>(block_offset);
  {
    util::MutexLock lock(&block_mu_);
    auto it = block_cache_.find(key);
    if (it != block_cache_.end()) return it->second;
  }
  auto block = std::make_shared<BlockEmbeds>();
  block->rows.resize(values.size() * dim());
  block->ok.resize(values.size());
  EmbedBlockCached(values, block->rows.data(), block->ok.data());
  util::MutexLock lock(&block_mu_);
  auto [it, inserted] = block_cache_.emplace(key, block);
  if (inserted) {
    block_cache_floats_ += block->rows.size();
    if (block_cache_floats_ > kMaxBlockCacheFloats) {
      // Whole-cache eviction; in-flight readers hold shared_ptrs, and the
      // next request rebuilds from the (still warm) value cache.
      block_cache_.clear();
      block_cache_floats_ = 0;
    }
    return block;
  }
  return it->second;  // racing thread published an identical block first
}

double EmbeddingModel::Distance(const std::string& a,
                                const std::string& b) const {
  Vector va;
  Vector vb;
  if (!EmbedCached(a, &va) || !EmbedCached(b, &vb)) return oov_distance();
  return EuclideanDistance(va, vb);
}

std::unique_ptr<EmbeddingModel> MakeGloveSim(uint64_t seed) {
  return std::make_unique<GloveSim>(seed);
}

std::unique_ptr<EmbeddingModel> MakeSbertSim(uint64_t seed) {
  return std::make_unique<SbertSim>(seed);
}

std::shared_ptr<EmbeddingModel> SharedGloveSim() {
  // Leaky magic static: one process-wide default-seed model, so repeated
  // EvalFunctionSet::Build calls share a warm embedding cache.
  static const auto& model =
      *new std::shared_ptr<EmbeddingModel>(MakeGloveSim());
  return model;
}

std::shared_ptr<EmbeddingModel> SharedSbertSim() {
  static const auto& model =
      *new std::shared_ptr<EmbeddingModel>(MakeSbertSim());
  return model;
}

}  // namespace autotest::embed
