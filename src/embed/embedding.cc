#include "embed/embedding.h"

#include "datagen/gazetteer.h"
#include "util/string_util.h"

namespace autotest::embed {

namespace {

constexpr size_t kDim = 64;

// Shared machinery: domain centroids + membership-weighted composition.
Vector DomainCentroid(const std::string& domain_name, uint64_t seed) {
  return HashGaussianUnit("centroid:" + domain_name, seed, kDim);
}

// Averaged centroid over a value's memberships; returns false if the value
// belongs to no NL domain. `weight` receives the semantic tier weight.
bool SemanticComponent(const std::string& value, uint64_t seed,
                       double head_weight, double tail_weight, Vector* out,
                       double* weight) {
  const auto* memberships = datagen::Gazetteer::Instance().Lookup(value);
  if (memberships == nullptr || memberships->empty()) return false;
  Vector acc(kDim, 0.0f);
  double w_acc = 0.0;
  for (const auto& m : *memberships) {
    const auto& domain =
        datagen::Gazetteer::Instance().domains()[m.domain_index];
    double w = (m.tier == datagen::Tier::kHead) ? head_weight : tail_weight;
    AddScaled(&acc, DomainCentroid(domain.name, seed), w);
    w_acc += w;
  }
  Normalize(&acc);
  *out = std::move(acc);
  *weight = w_acc / static_cast<double>(memberships->size());
  return true;
}

class GloveSim : public EmbeddingModel {
 public:
  explicit GloveSim(uint64_t seed) : seed_(seed) {}

  const std::string& name() const override {
    static const std::string& n = *new std::string("glove-sim");
    return n;
  }
  size_t dim() const override { return kDim; }
  double oov_distance() const override { return 2.0 * kScale; }

  bool Embed(const std::string& value, Vector* out) const override {
    // Closed vocabulary: head members only. Tails and unknown strings are
    // OOV, like rare names missing from GloVe's vocabulary.
    const auto* memberships = datagen::Gazetteer::Instance().Lookup(value);
    if (memberships == nullptr) return false;
    bool any_head = false;
    Vector sem(kDim, 0.0f);
    for (const auto& m : *memberships) {
      if (m.tier != datagen::Tier::kHead) continue;
      const auto& domain =
          datagen::Gazetteer::Instance().domains()[m.domain_index];
      AddScaled(&sem, DomainCentroid(domain.name, seed_), 1.0);
      any_head = true;
    }
    if (!any_head) return false;
    Normalize(&sem);
    Vector v = sem;
    AddScaled(&v, LexicalVector(value, seed_ ^ 0x11ee, kDim), 0.35);
    AddScaled(&v, HashGaussianUnit(value, seed_ ^ 0x77aa, kDim), 0.15);
    Normalize(&v);
    Scale(&v, kScale);
    *out = std::move(v);
    return true;
  }

 private:
  static constexpr double kScale = 4.0;  // paper-like GloVe distance scale
  uint64_t seed_;
};

class SbertSim : public EmbeddingModel {
 public:
  explicit SbertSim(uint64_t seed) : seed_(seed) {}

  const std::string& name() const override {
    static const std::string& n = *new std::string("sbert-sim");
    return n;
  }
  size_t dim() const override { return kDim; }
  double oov_distance() const override { return 2.0 * kScale; }  // unused

  bool Embed(const std::string& value, Vector* out) const override {
    Vector sem;
    double sem_weight = 0.0;
    bool has_sem = SemanticComponent(value, seed_, /*head_weight=*/0.8,
                                     /*tail_weight=*/0.5, &sem, &sem_weight);
    Vector v(kDim, 0.0f);
    if (has_sem) AddScaled(&v, sem, sem_weight);
    AddScaled(&v, LexicalVector(value, seed_ ^ 0x22ff, kDim),
              1.0 - (has_sem ? sem_weight : 0.0));
    AddScaled(&v, HashGaussianUnit(value, seed_ ^ 0x88bb, kDim), 0.05);
    Normalize(&v);
    Scale(&v, kScale);
    *out = std::move(v);
    return true;
  }

 private:
  static constexpr double kScale = 1.2;  // paper-like S-BERT distance scale
  uint64_t seed_;
};

}  // namespace

bool EmbeddingModel::EmbedCached(const std::string& value,
                                 Vector* out) const {
  {
    util::MutexLock lock(&cache_mu_);
    auto it = cache_.find(value);
    if (it != cache_.end()) {
      *out = it->second.second;
      return it->second.first;
    }
  }
  Vector v;
  bool ok = Embed(value, &v);
  {
    util::MutexLock lock(&cache_mu_);
    if (cache_.size() >= kMaxCacheEntries) cache_.clear();
    cache_.emplace(value, std::make_pair(ok, v));
  }
  *out = std::move(v);
  return ok;
}

double EmbeddingModel::Distance(const std::string& a,
                                const std::string& b) const {
  Vector va;
  Vector vb;
  if (!EmbedCached(a, &va) || !EmbedCached(b, &vb)) return oov_distance();
  return EuclideanDistance(va, vb);
}

std::unique_ptr<EmbeddingModel> MakeGloveSim(uint64_t seed) {
  return std::make_unique<GloveSim>(seed);
}

std::unique_ptr<EmbeddingModel> MakeSbertSim(uint64_t seed) {
  return std::make_unique<SbertSim>(seed);
}

}  // namespace autotest::embed
