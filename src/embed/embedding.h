#ifndef AUTOTEST_EMBED_EMBEDDING_H_
#define AUTOTEST_EMBED_EMBEDDING_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "embed/vector_math.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace autotest::embed {

/// A text-embedding model mapping cell values to vectors, the paper's
/// second family of domain-evaluation functions (Equation 2).
///
/// These are *simulations* of pre-trained embeddings (GloVe /
/// Sentence-BERT); see DESIGN.md. They are built from the gazetteer's
/// domain memberships — the stand-in for what a real embedding absorbed
/// from web text — and preserve the calibration geometry the paper relies
/// on: same-domain common values cluster tightly, rare valid values form a
/// middle ring, and unrelated strings land far away.
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  virtual const std::string& name() const = 0;
  virtual size_t dim() const = 0;

  /// Embeds the value; returns false when the value is out of vocabulary
  /// (only GloveSim has a closed vocabulary).
  virtual bool Embed(const std::string& value, Vector* out) const = 0;

  /// Memoized Embed: vectors are computed once per distinct value (the
  /// embedding computation dominates distance evaluation against many
  /// centroids). Bounded cache.
  bool EmbedCached(const std::string& value, Vector* out) const;

  /// Distance reported for value pairs involving an OOV value.
  virtual double oov_distance() const = 0;

  /// Distance between two values: Euclidean between embeddings, or
  /// oov_distance() when either side is OOV.
  double Distance(const std::string& a, const std::string& b) const;

 private:
  static constexpr size_t kMaxCacheEntries = 2'000'000;
  mutable util::Mutex cache_mu_;
  mutable std::unordered_map<std::string, std::pair<bool, Vector>> cache_
      AT_GUARDED_BY(cache_mu_);
};

/// GloVe-like embedding: closed vocabulary consisting of the *head* values
/// of every natural-language domain. Rare-but-valid values (domain tails)
/// are OOV — exactly the failure mode of the paper's Example 2 ("omayra"
/// gets no vector, so naive embedding-based detectors misflag it).
std::unique_ptr<EmbeddingModel> MakeGloveSim(uint64_t seed = 0x61ce);

/// Sentence-BERT-like embedding: open vocabulary. Every value gets a
/// vector that blends a semantic component (strong for head members, weak
/// for tail members, absent for unknown strings) with a character-level
/// lexical component. Typos land measurably farther from domain centroids
/// than rare valid members.
std::unique_ptr<EmbeddingModel> MakeSbertSim(uint64_t seed = 0x5be7);

}  // namespace autotest::embed

#endif  // AUTOTEST_EMBED_EMBEDDING_H_
