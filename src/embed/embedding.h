#ifndef AUTOTEST_EMBED_EMBEDDING_H_
#define AUTOTEST_EMBED_EMBEDDING_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "embed/vector_math.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace autotest::embed {

/// A text-embedding model mapping cell values to vectors, the paper's
/// second family of domain-evaluation functions (Equation 2).
///
/// These are *simulations* of pre-trained embeddings (GloVe /
/// Sentence-BERT); see DESIGN.md. They are built from the gazetteer's
/// domain memberships — the stand-in for what a real embedding absorbed
/// from web text — and preserve the calibration geometry the paper relies
/// on: same-domain common values cluster tightly, rare valid values form a
/// middle ring, and unrelated strings land far away.
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  virtual const std::string& name() const = 0;
  virtual size_t dim() const = 0;

  /// Embeds the value; returns false when the value is out of vocabulary
  /// (only GloveSim has a closed vocabulary).
  virtual bool Embed(const std::string& value, Vector* out) const = 0;

  /// Memoized Embed: vectors are computed once per distinct value (the
  /// embedding computation dominates distance evaluation against many
  /// centroids). Bounded cache.
  bool EmbedCached(const std::string& value, Vector* out) const;

  /// Batched EmbedCached over a block of values: writes values.size()
  /// row-major dim()-wide rows into `out` and per-value embeddability
  /// flags into `ok` (rows with ok == 0 are zero-filled). One cache pass
  /// for the whole block — lookups under a single lock, misses computed
  /// outside it, then inserted under one more lock — instead of a
  /// lock/find/copy per value, which is what the per-centroid distance
  /// kernels hammer. Bit-identical to per-value EmbedCached.
  void EmbedBlockCached(std::span<const std::string_view> values, float* out,
                        uint8_t* ok) const;

  /// One memoized block of embeddings: row-major dim()-wide rows plus
  /// per-value embeddability flags, exactly as EmbedBlockCached emits
  /// them.
  struct BlockEmbeds {
    std::vector<float> rows;
    std::vector<uint8_t> ok;
  };

  /// EmbedBlockCached for a block identified as the stable pool slice
  /// [block_offset, block_offset + values.size()) of
  /// table::ColumnStore::pool_id() == pool_id. The embedded block is
  /// memoized, so the first per-centroid eval function to touch it pays
  /// the value-cache pass once and every sibling centroid reads the same
  /// rows with no hash lookups or copies. Requires pool_id != 0. Rows are
  /// bit-identical to EmbedBlockCached on the same values.
  std::shared_ptr<const BlockEmbeds> EmbedBlockShared(
      std::span<const std::string_view> values, uint64_t pool_id,
      size_t block_offset) const;

  /// Distance reported for value pairs involving an OOV value.
  virtual double oov_distance() const = 0;

  /// Distance between two values: Euclidean between embeddings, or
  /// oov_distance() when either side is OOV.
  double Distance(const std::string& a, const std::string& b) const;

 private:
  // Transparent hashing so block lookups by string_view need no temporary
  // std::string per probed value.
  struct ValueHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  static constexpr size_t kMaxCacheEntries = 2'000'000;
  mutable util::Mutex cache_mu_;
  mutable std::unordered_map<std::string, std::pair<bool, Vector>, ValueHash,
                             std::equal_to<>>
      cache_ AT_GUARDED_BY(cache_mu_);

  // Memoized blocks keyed by (pool_id << 32) | offset. Bounded with
  // whole-cache eviction; shared_ptr entries keep in-flight readers valid
  // across an eviction.
  static constexpr size_t kMaxBlockCacheFloats = 16'000'000;  // 64 MB
  mutable util::Mutex block_mu_;
  mutable std::unordered_map<uint64_t, std::shared_ptr<const BlockEmbeds>>
      block_cache_ AT_GUARDED_BY(block_mu_);
  mutable size_t block_cache_floats_ AT_GUARDED_BY(block_mu_) = 0;
};

/// GloVe-like embedding: closed vocabulary consisting of the *head* values
/// of every natural-language domain. Rare-but-valid values (domain tails)
/// are OOV — exactly the failure mode of the paper's Example 2 ("omayra"
/// gets no vector, so naive embedding-based detectors misflag it).
std::unique_ptr<EmbeddingModel> MakeGloveSim(uint64_t seed = 0x61ce);

/// Sentence-BERT-like embedding: open vocabulary. Every value gets a
/// vector that blends a semantic component (strong for head members, weak
/// for tail members, absent for unknown strings) with a character-level
/// lexical component. Typos land measurably farther from domain centroids
/// than rare valid members.
std::unique_ptr<EmbeddingModel> MakeSbertSim(uint64_t seed = 0x5be7);

/// Process-shared instances of the default-seed models, built once on
/// first use. The models are pure functions of their seeds, so every
/// EvalFunctionSet::Build can reuse one instance — and its warm embedding
/// cache — instead of constructing a cold model per corpus. Thread-safe.
std::shared_ptr<EmbeddingModel> SharedGloveSim();
std::shared_ptr<EmbeddingModel> SharedSbertSim();

}  // namespace autotest::embed

#endif  // AUTOTEST_EMBED_EMBEDDING_H_
