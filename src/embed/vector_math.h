#ifndef AUTOTEST_EMBED_VECTOR_MATH_H_
#define AUTOTEST_EMBED_VECTOR_MATH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace autotest::embed {

using Vector = std::vector<float>;

/// Euclidean distance; vectors must have equal dimension.
double EuclideanDistance(const Vector& a, const Vector& b);

/// Euclidean distance over raw rows (the block-evaluation kernels walk
/// row-major embedding matrices). EuclideanDistance delegates here, so the
/// two entry points are bit-identical by construction — the columnar
/// trainer path depends on that.
double EuclideanDistanceRaw(const float* a, const float* b, size_t n);

/// Dot product.
double Dot(const Vector& a, const Vector& b);

/// L2 norm.
double Norm(const Vector& a);

/// Normalizes in place to unit length (no-op on the zero vector).
void Normalize(Vector* v);

/// Scales in place.
void Scale(Vector* v, double factor);

/// a += factor * b.
void AddScaled(Vector* a, const Vector& b, double factor);

/// Deterministic pseudo-Gaussian unit vector derived from a string key;
/// used for domain centroids and per-value noise.
Vector HashGaussianUnit(std::string_view key, uint64_t seed, size_t dim);

/// Character-trigram lexical vector (signed hashing, unit norm). Two
/// strings within small edit distance get strongly correlated vectors.
Vector LexicalVector(std::string_view value, uint64_t seed, size_t dim);

}  // namespace autotest::embed

#endif  // AUTOTEST_EMBED_VECTOR_MATH_H_
