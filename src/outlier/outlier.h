#ifndef AUTOTEST_OUTLIER_OUTLIER_H_
#define AUTOTEST_OUTLIER_OUTLIER_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace autotest::outlier {

/// Classical outlier-detection algorithms operating on per-value feature
/// vectors (the paper's Section 6.2 baselines: LOF, DBOD, RKDE, PPCA,
/// IForest, SVDD). Each returns one score per input point; higher = more
/// outlying. All are deterministic (IForest takes an explicit seed).
using Point = std::vector<float>;

/// Local Outlier Factor (Breunig et al. 2000).
std::vector<double> LofScores(const std::vector<Point>& points, size_t k);

/// Distance-based outliers (Knorr & Ng 1998): distance to the k-th nearest
/// neighbor.
std::vector<double> KnnDistanceScores(const std::vector<Point>& points,
                                      size_t k);

/// Robust kernel density estimation (Kim & Scott 2012, simplified):
/// Gaussian KDE with iteratively reweighted points; score = -log density.
std::vector<double> RkdeScores(const std::vector<Point>& points,
                               int robust_iterations = 2);

/// Probabilistic PCA (Tipping & Bishop 1999): reconstruction error outside
/// the top principal subspace.
std::vector<double> PpcaScores(const std::vector<Point>& points,
                               size_t num_components);

/// Isolation Forest (Liu et al. 2008).
struct IForestOptions {
  size_t num_trees = 50;
  size_t sample_size = 64;
  uint64_t seed = 17;
};
std::vector<double> IForestScores(const std::vector<Point>& points,
                                  const IForestOptions& options = {});

/// Support Vector Data Description (Tax & Duin 2004), approximated by the
/// Badoiu-Clarkson minimum-enclosing-ball iteration: score = distance to
/// the ball center.
std::vector<double> SvddScores(const std::vector<Point>& points,
                               int iterations = 100);

}  // namespace autotest::outlier

#endif  // AUTOTEST_OUTLIER_OUTLIER_H_
