#include "outlier/outlier.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace autotest::outlier {

namespace {

double SqDist(const Point& a, const Point& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return s;
}

// Full pairwise distance matrix (columns have at most a few hundred
// distinct values, so O(n^2 d) is fine).
std::vector<double> DistanceMatrix(const std::vector<Point>& points) {
  size_t n = points.size();
  std::vector<double> d(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double dist = std::sqrt(SqDist(points[i], points[j]));
      d[i * n + j] = dist;
      d[j * n + i] = dist;
    }
  }
  return d;
}

// Indices of the k nearest neighbors of i (excluding i), ascending by
// distance with index tie-breaks for determinism.
std::vector<size_t> Neighbors(const std::vector<double>& dist, size_t n,
                              size_t i, size_t k) {
  std::vector<size_t> idx;
  idx.reserve(n - 1);
  for (size_t j = 0; j < n; ++j) {
    if (j != i) idx.push_back(j);
  }
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    double da = dist[i * n + a];
    double db = dist[i * n + b];
    if (da != db) return da < db;
    return a < b;
  });
  if (idx.size() > k) idx.resize(k);
  return idx;
}

}  // namespace

std::vector<double> KnnDistanceScores(const std::vector<Point>& points,
                                      size_t k) {
  size_t n = points.size();
  std::vector<double> out(n, 0.0);
  if (n <= 1) return out;
  k = std::min(k, n - 1);
  std::vector<double> dist = DistanceMatrix(points);
  for (size_t i = 0; i < n; ++i) {
    auto nb = Neighbors(dist, n, i, k);
    out[i] = dist[i * n + nb.back()];
  }
  return out;
}

std::vector<double> LofScores(const std::vector<Point>& points, size_t k) {
  size_t n = points.size();
  std::vector<double> out(n, 1.0);
  if (n <= 2) return out;
  k = std::min(k, n - 1);
  std::vector<double> dist = DistanceMatrix(points);

  std::vector<std::vector<size_t>> knn(n);
  std::vector<double> k_dist(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    knn[i] = Neighbors(dist, n, i, k);
    k_dist[i] = dist[i * n + knn[i].back()];
  }
  // Local reachability density.
  std::vector<double> lrd(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double reach_sum = 0.0;
    for (size_t j : knn[i]) {
      reach_sum += std::max(k_dist[j], dist[i * n + j]);
    }
    lrd[i] = reach_sum > 0.0
                 ? static_cast<double>(knn[i].size()) / reach_sum
                 : 1e12;  // duplicate-heavy neighborhoods
  }
  for (size_t i = 0; i < n; ++i) {
    double ratio_sum = 0.0;
    for (size_t j : knn[i]) {
      ratio_sum += lrd[j] / std::max(lrd[i], 1e-12);
    }
    out[i] = ratio_sum / static_cast<double>(knn[i].size());
  }
  return out;
}

std::vector<double> RkdeScores(const std::vector<Point>& points,
                               int robust_iterations) {
  size_t n = points.size();
  std::vector<double> out(n, 0.0);
  if (n <= 1) return out;
  std::vector<double> dist = DistanceMatrix(points);

  // Bandwidth: median positive pairwise distance (fallback 1).
  std::vector<double> positive;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (dist[i * n + j] > 0) positive.push_back(dist[i * n + j]);
    }
  }
  double h = 1.0;
  if (!positive.empty()) {
    std::nth_element(positive.begin(),
                     positive.begin() + static_cast<ptrdiff_t>(
                                            positive.size() / 2),
                     positive.end());
    h = std::max(1e-6, positive[positive.size() / 2]);
  }

  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  std::vector<double> density(n, 0.0);
  for (int iter = 0; iter <= robust_iterations; ++iter) {
    for (size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (size_t j = 0; j < n; ++j) {
        double u = dist[i * n + j] / h;
        s += weights[j] * std::exp(-0.5 * u * u);
      }
      density[i] = s;
    }
    if (iter == robust_iterations) break;
    // Robust reweighting: points in low-density regions (likely outliers)
    // contribute less to the next density estimate.
    double total = 0.0;
    for (size_t j = 0; j < n; ++j) {
      weights[j] = std::sqrt(std::max(density[j], 1e-12));
      total += weights[j];
    }
    for (size_t j = 0; j < n; ++j) weights[j] /= total;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = -std::log(std::max(density[i], 1e-300));
  }
  return out;
}

std::vector<double> PpcaScores(const std::vector<Point>& points,
                               size_t num_components) {
  size_t n = points.size();
  std::vector<double> out(n, 0.0);
  if (n <= 2) return out;
  size_t d = points[0].size();
  num_components = std::min(num_components, d);

  // Center the data.
  std::vector<double> mean(d, 0.0);
  for (const auto& p : points) {
    for (size_t j = 0; j < d; ++j) mean[j] += p[j];
  }
  for (size_t j = 0; j < d; ++j) mean[j] /= static_cast<double>(n);
  std::vector<std::vector<double>> x(n, std::vector<double>(d));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) x[i][j] = points[i][j] - mean[j];
  }

  // Principal directions via power iteration with deflation. For each
  // point we keep its projections (for the in-subspace Mahalanobis term)
  // and the final residual (the off-subspace term), giving a PPCA-style
  // negative log-likelihood score.
  std::vector<std::vector<double>> projections;  // [component][point]
  std::vector<double> lambdas;                   // per-component variance
  std::vector<std::vector<double>> residual = x;
  util::Rng rng(4242);
  for (size_t c = 0; c < num_components; ++c) {
    std::vector<double> v(d);
    for (size_t j = 0; j < d; ++j) v[j] = rng.Gaussian();
    for (int it = 0; it < 60; ++it) {
      // v <- X^T X v, normalized.
      std::vector<double> xv(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < d; ++j) xv[i] += residual[i][j] * v[j];
      }
      std::vector<double> next(d, 0.0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < d; ++j) next[j] += residual[i][j] * xv[i];
      }
      double norm = 0.0;
      for (size_t j = 0; j < d; ++j) norm += next[j] * next[j];
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;
      for (size_t j = 0; j < d; ++j) v[j] = next[j] / norm;
    }
    std::vector<double> proj(n, 0.0);
    double lambda = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) proj[i] += residual[i][j] * v[j];
      lambda += proj[i] * proj[i];
      for (size_t j = 0; j < d; ++j) residual[i][j] -= proj[i] * v[j];
    }
    lambda /= static_cast<double>(n);
    projections.push_back(std::move(proj));
    lambdas.push_back(std::max(lambda, 1e-12));
  }
  // Residual noise variance.
  double sigma2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) sigma2 += residual[i][j] * residual[i][j];
  }
  sigma2 = std::max(sigma2 / static_cast<double>(n), 1e-12);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t c = 0; c < projections.size(); ++c) {
      s += projections[c][i] * projections[c][i] / lambdas[c];
    }
    double r2 = 0.0;
    for (size_t j = 0; j < d; ++j) r2 += residual[i][j] * residual[i][j];
    out[i] = std::sqrt(s + r2 / sigma2);
  }
  return out;
}

namespace {

struct IsoNode {
  int split_dim = -1;   // -1 = leaf
  float split_value = 0.0f;
  int left = -1;
  int right = -1;
  size_t size = 0;  // leaf size
};

// Average unsuccessful-search path length in a BST of n nodes.
double AvgPathLength(size_t n) {
  if (n <= 1) return 0.0;
  double h = std::log(static_cast<double>(n - 1)) + 0.5772156649;
  return 2.0 * h - 2.0 * static_cast<double>(n - 1) /
                       static_cast<double>(n);
}

class IsoTree {
 public:
  void Build(const std::vector<Point>& points, std::vector<size_t> sample,
             size_t max_depth, util::Rng* rng) {
    nodes_.clear();
    root_ = BuildNode(points, std::move(sample), 0, max_depth, rng);
  }

  double PathLength(const Point& p) const {
    int node = root_;
    double depth = 0.0;
    while (node >= 0 && nodes_[static_cast<size_t>(node)].split_dim >= 0) {
      const IsoNode& nd = nodes_[static_cast<size_t>(node)];
      node = p[static_cast<size_t>(nd.split_dim)] < nd.split_value
                 ? nd.left
                 : nd.right;
      depth += 1.0;
    }
    if (node >= 0) {
      depth += AvgPathLength(nodes_[static_cast<size_t>(node)].size);
    }
    return depth;
  }

 private:
  int BuildNode(const std::vector<Point>& points, std::vector<size_t> sample,
                size_t depth, size_t max_depth, util::Rng* rng) {
    IsoNode node;
    if (sample.size() <= 1 || depth >= max_depth) {
      node.size = sample.size();
      nodes_.push_back(node);
      return static_cast<int>(nodes_.size() - 1);
    }
    size_t d = points[0].size();
    // Pick a dimension with spread; give up after a few tries.
    int dim = -1;
    float lo = 0;
    float hi = 0;
    for (int attempt = 0; attempt < 8; ++attempt) {
      int cand = static_cast<int>(
          rng->UniformInt(0, static_cast<int64_t>(d) - 1));
      lo = hi = points[sample[0]][static_cast<size_t>(cand)];
      for (size_t i : sample) {
        lo = std::min(lo, points[i][static_cast<size_t>(cand)]);
        hi = std::max(hi, points[i][static_cast<size_t>(cand)]);
      }
      if (hi > lo) {
        dim = cand;
        break;
      }
    }
    if (dim < 0) {
      node.size = sample.size();
      nodes_.push_back(node);
      return static_cast<int>(nodes_.size() - 1);
    }
    float split = static_cast<float>(rng->UniformDouble(lo, hi));
    std::vector<size_t> left;
    std::vector<size_t> right;
    for (size_t i : sample) {
      if (points[i][static_cast<size_t>(dim)] < split) {
        left.push_back(i);
      } else {
        right.push_back(i);
      }
    }
    if (left.empty() || right.empty()) {
      node.size = sample.size();
      nodes_.push_back(node);
      return static_cast<int>(nodes_.size() - 1);
    }
    node.split_dim = dim;
    node.split_value = split;
    nodes_.push_back(node);
    size_t self = nodes_.size() - 1;
    int l = BuildNode(points, std::move(left), depth + 1, max_depth, rng);
    int r = BuildNode(points, std::move(right), depth + 1, max_depth, rng);
    nodes_[self].left = l;
    nodes_[self].right = r;
    return static_cast<int>(self);
  }

  std::vector<IsoNode> nodes_;
  int root_ = -1;
};

}  // namespace

std::vector<double> IForestScores(const std::vector<Point>& points,
                                  const IForestOptions& options) {
  size_t n = points.size();
  std::vector<double> out(n, 0.0);
  if (n <= 2) return out;
  size_t sample_size = std::min(options.sample_size, n);
  size_t max_depth = static_cast<size_t>(
      std::ceil(std::log2(static_cast<double>(sample_size)))) + 1;
  util::Rng rng(options.seed);

  std::vector<IsoTree> trees(options.num_trees);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  for (auto& tree : trees) {
    std::vector<size_t> sample = all;
    rng.Shuffle(sample);
    sample.resize(sample_size);
    tree.Build(points, std::move(sample), max_depth, &rng);
  }
  double c = AvgPathLength(sample_size);
  for (size_t i = 0; i < n; ++i) {
    double path = 0.0;
    for (const auto& tree : trees) path += tree.PathLength(points[i]);
    path /= static_cast<double>(trees.size());
    out[i] = std::pow(2.0, -path / std::max(c, 1e-9));
  }
  return out;
}

std::vector<double> SvddScores(const std::vector<Point>& points,
                               int iterations) {
  size_t n = points.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  size_t d = points[0].size();
  // Badoiu-Clarkson: start at the mean, repeatedly step toward the
  // farthest point with decaying step size; converges to the minimum
  // enclosing ball center.
  std::vector<double> center(d, 0.0);
  for (const auto& p : points) {
    for (size_t j = 0; j < d; ++j) center[j] += p[j];
  }
  for (size_t j = 0; j < d; ++j) center[j] /= static_cast<double>(n);
  for (int t = 1; t <= iterations; ++t) {
    size_t far = 0;
    double far_d = -1.0;
    for (size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) {
        double diff = points[i][j] - center[j];
        s += diff * diff;
      }
      if (s > far_d) {
        far_d = s;
        far = i;
      }
    }
    double step = 1.0 / static_cast<double>(t + 1);
    for (size_t j = 0; j < d; ++j) {
      center[j] += step * (points[far][j] - center[j]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) {
      double diff = points[i][j] - center[j];
      s += diff * diff;
    }
    out[i] = std::sqrt(s);
  }
  return out;
}

}  // namespace autotest::outlier
