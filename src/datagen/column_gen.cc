#include "datagen/column_gen.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace autotest::datagen {

table::Column GenerateColumn(const Domain& domain,
                             const ColumnGenOptions& options,
                             util::Rng& rng) {
  AT_CHECK(options.min_values >= 1);
  AT_CHECK(options.max_values >= options.min_values);
  size_t n;
  if (options.log_uniform_length && options.max_values > options.min_values) {
    double lo = std::log(static_cast<double>(options.min_values));
    double hi = std::log(static_cast<double>(options.max_values) + 1.0);
    n = static_cast<size_t>(std::exp(rng.UniformDouble(lo, hi)));
    n = std::clamp(n, options.min_values, options.max_values);
  } else {
    n = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(options.min_values),
                       static_cast<int64_t>(options.max_values)));
  }

  table::Column col;
  col.name = domain.name + "_" + std::to_string(rng.UniformInt(0, 999999));
  col.values.reserve(n);

  if (domain.has_generator()) {
    // Machine-generated: mostly fresh values, occasional repeats.
    for (size_t i = 0; i < n; ++i) {
      if (!col.values.empty() && rng.Bernoulli(0.05)) {
        col.values.push_back(rng.Pick(col.values));
      } else {
        col.values.push_back(domain.generator(rng));
      }
    }
    return col;
  }

  // Natural-language: draw a working pool of distinct members, then sample
  // from the pool with replacement so frequencies look realistic.
  size_t pool_target = std::max<size_t>(
      2, static_cast<size_t>(static_cast<double>(n) *
                             options.distinct_fraction));
  std::vector<std::string> pool;
  std::vector<std::string> head = domain.head;
  std::vector<std::string> tail = domain.tail;
  rng.Shuffle(head);
  rng.Shuffle(tail);
  size_t tail_target = static_cast<size_t>(
      static_cast<double>(pool_target) * options.tail_fraction);
  tail_target = std::min(tail_target, tail.size());
  size_t head_target = std::min(pool_target - tail_target, head.size());
  for (size_t i = 0; i < head_target; ++i) pool.push_back(head[i]);
  for (size_t i = 0; i < tail_target; ++i) pool.push_back(tail[i]);
  if (pool.empty()) pool.push_back(domain.head.front());

  for (size_t i = 0; i < n; ++i) {
    col.values.push_back(rng.Pick(pool));
  }
  return col;
}

}  // namespace autotest::datagen
