#ifndef AUTOTEST_DATAGEN_ERROR_INJECTOR_H_
#define AUTOTEST_DATAGEN_ERROR_INJECTOR_H_

#include <optional>
#include <string>

#include "datagen/gazetteer.h"
#include "table/column.h"
#include "util/rng.h"

namespace autotest::datagen {

/// The error taxonomy of the paper's Figure 2: misspellings, semantically
/// incompatible values, metadata/placeholder strings leaking into data, and
/// format anomalies.
enum class ErrorType {
  kTypo,
  kIncompatible,
  kPlaceholder,
  kFormat,
};

/// A record of one injected error (ground truth for evaluation).
struct InjectedError {
  size_t row = 0;
  std::string original;
  std::string corrupted;
  ErrorType type = ErrorType::kTypo;
};

/// Produces a misspelled variant of the value (swap / delete / duplicate /
/// substitute one character); guaranteed to differ from the input.
std::string MakeTypo(const std::string& value, util::Rng& rng);

/// Produces a metadata-style placeholder ("n/a", "empty", "fy definition",
/// ...).
std::string MakePlaceholder(util::Rng& rng);

/// Produces a format-anomalous variant (casing flip, separator damage).
std::string MakeFormatAnomaly(const std::string& value, util::Rng& rng);

/// Produces a semantically incompatible value: a valid member of a
/// *different* domain than `own_domain` (drawn from the gazetteer).
std::string MakeIncompatible(const Gazetteer& gazetteer,
                             const std::string& own_domain, util::Rng& rng);

/// Corrupts one cell of the column in place. `own_domain` is the column's
/// true domain (used to avoid injecting values that are actually valid).
/// Returns nullopt if the column is empty or no distinct corruption could
/// be produced.
std::optional<InjectedError> InjectError(table::Column* column,
                                         ErrorType type,
                                         const Gazetteer& gazetteer,
                                         const std::string& own_domain,
                                         util::Rng& rng);

/// Draws an error type with benchmark-realistic weights (typos and
/// incompatible values dominate; placeholders common; format rare).
ErrorType SampleErrorType(util::Rng& rng);

}  // namespace autotest::datagen

#endif  // AUTOTEST_DATAGEN_ERROR_INJECTOR_H_
