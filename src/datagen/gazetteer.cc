#include "datagen/gazetteer.h"

#include "util/check.h"
#include "util/hashing.h"
#include "util/string_util.h"

namespace autotest::datagen {

Gazetteer::Gazetteer() {
  for (auto& d : BuildNaturalLanguageDomains()) {
    domains_.push_back(std::move(d));
  }
  for (auto& d : BuildNaturalLanguageDomains2()) {
    domains_.push_back(std::move(d));
  }
  for (auto& d : BuildMachineDomains()) {
    domains_.push_back(std::move(d));
  }
  for (auto& d : BuildMachineDomains2()) {
    domains_.push_back(std::move(d));
  }
  for (size_t i = 0; i < domains_.size(); ++i) {
    const Domain& d = domains_[i];
    AT_CHECK_MSG(name_to_index_.emplace(d.name, static_cast<int>(i)).second,
                 d.name.c_str());
    // Only natural-language domains contribute membership knowledge: the
    // embedding substrate must not "know" machine-generated ids, just like
    // a real text embedding does not.
    if (d.kind != DomainKind::kNaturalLanguage) continue;
    for (const auto& v : d.head) {
      memberships_[util::ToLower(v)].push_back(Membership{i, Tier::kHead});
    }
    for (const auto& v : d.tail) {
      memberships_[util::ToLower(v)].push_back(Membership{i, Tier::kTail});
    }
  }
}

const Gazetteer& Gazetteer::Instance() {
  static const Gazetteer& instance = *new Gazetteer();
  return instance;
}

int Gazetteer::FindIndex(const std::string& name) const {
  auto it = name_to_index_.find(name);
  return it == name_to_index_.end() ? -1 : it->second;
}

const Domain* Gazetteer::Find(const std::string& name) const {
  int idx = FindIndex(name);
  return idx < 0 ? nullptr : &domains_[static_cast<size_t>(idx)];
}

const std::vector<Membership>* Gazetteer::Lookup(
    const std::string& value) const {
  auto it = memberships_.find(util::ToLower(value));
  return it == memberships_.end() ? nullptr : &it->second;
}

bool Gazetteer::Contains(const std::string& domain,
                         const std::string& value) const {
  const Domain* d = Find(domain);
  if (d == nullptr) return false;
  std::string lowered = util::ToLower(value);
  for (const auto& v : d->head) {
    if (v == lowered) return true;
  }
  for (const auto& v : d->tail) {
    if (v == lowered) return true;
  }
  return false;
}

std::vector<std::string> Gazetteer::DomainNames(DomainKind kind) const {
  std::vector<std::string> names;
  for (const auto& d : domains_) {
    if (d.kind == kind) names.push_back(d.name);
  }
  return names;
}

}  // namespace autotest::datagen
