#ifndef AUTOTEST_DATAGEN_GAZETTEER_H_
#define AUTOTEST_DATAGEN_GAZETTEER_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace autotest::datagen {

/// Whether a domain is natural-language-like (names, places, ...) or
/// machine-generated (ids, dates, urls, ...). Mirrors the paper's split
/// between CTA/embedding-friendly and pattern/function-friendly columns.
enum class DomainKind {
  kNaturalLanguage,
  kMachineGenerated,
};

/// A value generator for open-ended machine domains (fresh ids per call).
using ValueGenerator = std::function<std::string(util::Rng&)>;

/// One semantic domain: the ground-truth notion of "domain of valid values"
/// that Semantic-Domain Constraints try to recover.
///
/// `head` holds common values, `tail` holds rare-but-valid values (the
/// "omayra" / "antioch" ring of the paper's Example 2 that naive detectors
/// misflag). Machine domains additionally carry a generator producing fresh
/// valid values.
struct Domain {
  std::string name;
  DomainKind kind = DomainKind::kNaturalLanguage;
  std::vector<std::string> head;
  std::vector<std::string> tail;
  ValueGenerator generator;  // null for closed NL domains

  bool has_generator() const { return static_cast<bool>(generator); }
};

/// Where a value sits inside a domain.
enum class Tier { kHead, kTail };

struct Membership {
  size_t domain_index;
  Tier tier;
};

/// The full collection of semantic domains used by the data generators and
/// by the embedding substrate (which uses membership as its "semantic
/// knowledge", the stand-in for what a pre-trained embedding learned from
/// web text).
class Gazetteer {
 public:
  /// The process-wide gazetteer (built once, immutable afterwards).
  static const Gazetteer& Instance();

  const std::vector<Domain>& domains() const { return domains_; }

  /// Index of a domain by name; -1 if absent.
  int FindIndex(const std::string& name) const;

  /// Pointer to a domain by name; nullptr if absent.
  const Domain* Find(const std::string& name) const;

  /// All memberships of a (case-folded) value across NL domains.
  const std::vector<Membership>* Lookup(const std::string& value) const;

  /// True if the value belongs to the named domain (head or tail).
  bool Contains(const std::string& domain, const std::string& value) const;

  /// Names of all domains of the given kind.
  std::vector<std::string> DomainNames(DomainKind kind) const;

 private:
  Gazetteer();

  std::vector<Domain> domains_;
  std::unordered_map<std::string, int> name_to_index_;
  std::unordered_map<std::string, std::vector<Membership>> memberships_;
};

/// Builders for the domain families (defined in gazetteer_nl.cc,
/// gazetteer_nl2.cc, gazetteer_machine.cc and gazetteer_machine2.cc).
std::vector<Domain> BuildNaturalLanguageDomains();
std::vector<Domain> BuildNaturalLanguageDomains2();
std::vector<Domain> BuildMachineDomains();
std::vector<Domain> BuildMachineDomains2();

}  // namespace autotest::datagen

#endif  // AUTOTEST_DATAGEN_GAZETTEER_H_
