#ifndef AUTOTEST_DATAGEN_CORPUS_GEN_H_
#define AUTOTEST_DATAGEN_CORPUS_GEN_H_

#include <cstdint>
#include <string>

#include "table/table.h"

namespace autotest::datagen {

/// Shape of a training corpus. The three built-in profiles mirror the
/// paper's Table 3 qualitatively: Relational-Tables = long, clean,
/// machine-heavy columns; Spreadsheet-Tables = short, noisier columns;
/// Tablib = mixed.
struct CorpusProfile {
  std::string name;
  size_t num_columns = 4000;
  size_t min_values = 50;
  size_t max_values = 400;
  /// Fraction of corpus columns containing one real error (the corpora are
  /// "generally clean": ~2% per the paper's manual analysis).
  double dirty_column_rate = 0.02;
  /// Probability of drawing tail (rare valid) members in NL columns.
  double tail_fraction = 0.10;
  /// Fraction of columns drawn from machine-generated domains.
  double machine_fraction = 0.45;
  uint64_t seed = 11;
};

CorpusProfile RelationalTablesProfile(size_t num_columns, uint64_t seed = 11);
CorpusProfile SpreadsheetTablesProfile(size_t num_columns, uint64_t seed = 22);
CorpusProfile TablibProfile(size_t num_columns, uint64_t seed = 33);

/// Generates a corpus of columns according to the profile. Deterministic in
/// the profile seed.
table::Corpus GenerateCorpus(const CorpusProfile& profile);

}  // namespace autotest::datagen

#endif  // AUTOTEST_DATAGEN_CORPUS_GEN_H_
