#ifndef AUTOTEST_DATAGEN_CORPUS_GEN_H_
#define AUTOTEST_DATAGEN_CORPUS_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/shard_loader.h"
#include "table/table.h"
#include "util/status.h"

namespace autotest::datagen {

/// Shape of a training corpus. The three built-in profiles mirror the
/// paper's Table 3 qualitatively: Relational-Tables = long, clean,
/// machine-heavy columns; Spreadsheet-Tables = short, noisier columns;
/// Tablib = mixed.
struct CorpusProfile {
  std::string name;
  size_t num_columns = 4000;
  size_t min_values = 50;
  size_t max_values = 400;
  /// Fraction of corpus columns containing one real error (the corpora are
  /// "generally clean": ~2% per the paper's manual analysis).
  double dirty_column_rate = 0.02;
  /// Probability of drawing tail (rare valid) members in NL columns.
  double tail_fraction = 0.10;
  /// Fraction of columns drawn from machine-generated domains.
  double machine_fraction = 0.45;
  uint64_t seed = 11;
};

CorpusProfile RelationalTablesProfile(size_t num_columns, uint64_t seed = 11);
CorpusProfile SpreadsheetTablesProfile(size_t num_columns, uint64_t seed = 22);
CorpusProfile TablibProfile(size_t num_columns, uint64_t seed = 33);

/// Generates a corpus of columns according to the profile. Deterministic in
/// the profile seed.
table::Corpus GenerateCorpus(const CorpusProfile& profile);

/// The per-shard slice of `profile` for shard `shard` of `num_shards`:
/// columns are split as evenly as possible and each shard derives an
/// independent seed from the profile seed and its index, so a shard's
/// contents never depend on which other shards load. With num_shards == 1
/// the profile is returned unchanged (bit-compatible with the monolithic
/// GenerateCorpus path, and with pre-sharding recipe files).
CorpusProfile ShardProfile(const CorpusProfile& profile, size_t shard,
                           size_t num_shards);

/// Generates the corpus shard-by-shard through table::LoadShards: shards
/// run on the parallel pool with per-shard retry, the shard.read /
/// shard.retry failpoints as chaos hooks, and quorum-based degradation
/// per `options`. `include_shard`, when non-empty, restricts generation
/// to those shard indices (used to rebuild a degraded corpus exactly from
/// recipe provenance). Shards are assembled in ascending index order, so
/// the result is deterministic in (profile.seed, num_shards, mask).
[[nodiscard]] util::Result<table::Corpus> TryGenerateCorpusSharded(
    const CorpusProfile& profile, size_t num_shards,
    const table::ShardLoadOptions& options,
    table::ShardLoadReport* report = nullptr,
    const std::vector<size_t>& include_shard = {});

}  // namespace autotest::datagen

#endif  // AUTOTEST_DATAGEN_CORPUS_GEN_H_
