// Natural-language semantic domains. Head lists hold common values; tail
// lists hold rare-but-valid values that a naive per-value detector tends to
// misflag (the paper's Example 2). All values are stored lowercase; the
// column generators control surface casing.

#include <initializer_list>

#include "datagen/gazetteer.h"

namespace autotest::datagen {

namespace {

std::vector<std::string> Vec(std::initializer_list<const char*> xs) {
  std::vector<std::string> out;
  out.reserve(xs.size());
  for (const char* x : xs) out.emplace_back(x);
  return out;
}

Domain NlDomain(const char* name, std::vector<std::string> head,
                std::vector<std::string> tail) {
  Domain d;
  d.name = name;
  d.kind = DomainKind::kNaturalLanguage;
  d.head = std::move(head);
  d.tail = std::move(tail);
  return d;
}

}  // namespace

std::vector<Domain> BuildNaturalLanguageDomains() {
  std::vector<Domain> domains;

  domains.push_back(NlDomain(
      "country",
      Vec({"germany",       "france",        "italy",        "spain",
           "portugal",      "austria",       "switzerland",  "belgium",
           "netherlands",   "denmark",       "sweden",       "norway",
           "finland",       "poland",        "ireland",      "greece",
           "hungary",       "romania",       "bulgaria",     "croatia",
           "serbia",        "ukraine",       "russia",       "turkey",
           "united states", "canada",        "mexico",       "brazil",
           "argentina",     "chile",         "peru",         "colombia",
           "venezuela",     "ecuador",       "bolivia",      "uruguay",
           "china",         "japan",         "india",        "indonesia",
           "thailand",      "vietnam",       "malaysia",     "singapore",
           "philippines",   "south korea",   "australia",    "new zealand",
           "egypt",         "morocco",       "nigeria",      "kenya",
           "south africa",  "ethiopia",      "ghana",        "tanzania",
           "israel",        "saudi arabia",  "iran",         "iraq",
           "pakistan",      "bangladesh",    "afghanistan",  "kazakhstan",
           "czech republic", "slovakia",     "slovenia",     "estonia",
           "latvia",        "lithuania",     "iceland",      "luxembourg",
           "cuba",          "jamaica",       "panama",       "costa rica",
           "guatemala",     "honduras",      "nicaragua",    "paraguay",
           "qatar",         "kuwait",        "oman",         "jordan",
           "lebanon",       "syria",         "yemen",        "libya",
           "algeria",       "tunisia",       "senegal",      "cameroon",
           "zambia",        "zimbabwe",      "uganda",       "mozambique",
           "nepal",         "sri lanka",     "myanmar",      "cambodia",
           "laos",          "mongolia"}),
      Vec({"liechtenstein", "andorra",     "san marino", "monaco",
           "vanuatu",       "kiribati",    "tuvalu",     "nauru",
           "palau",         "comoros",     "djibouti",   "eritrea",
           "lesotho",       "eswatini",    "bhutan",     "brunei",
           "suriname",      "guyana",      "belize",     "dominica",
           "grenada",       "seychelles",  "maldives",   "timor-leste",
           "montenegro",    "north macedonia",           "moldova",
           "burkina faso",  "togo",        "benin"})));

  domains.push_back(NlDomain(
      "us_state_code",
      Vec({"al", "az", "ar", "ca", "co", "ct", "fl", "ga", "il", "in",
           "ia", "ks", "ky", "la", "ma", "md", "mi", "mn", "mo", "nc",
           "nj", "ny", "oh", "ok", "or", "pa", "sc", "tn", "tx", "va",
           "wa", "wi"}),
      Vec({"ak", "de", "hi", "id", "me", "ms", "mt", "ne", "nv", "nh",
           "nm", "nd", "ri", "sd", "ut", "vt", "wv", "wy", "dc"})));

  domains.push_back(NlDomain(
      "us_state_name",
      Vec({"alabama",     "arizona",    "arkansas",     "california",
           "colorado",    "connecticut", "florida",     "georgia",
           "illinois",    "indiana",    "iowa",         "kansas",
           "kentucky",    "louisiana",  "massachusetts", "maryland",
           "michigan",    "minnesota",  "missouri",     "north carolina",
           "new jersey",  "new york",   "ohio",         "oklahoma",
           "oregon",      "pennsylvania", "south carolina", "tennessee",
           "texas",       "virginia",   "washington",   "wisconsin"}),
      Vec({"alaska",       "delaware",  "hawaii",       "idaho",
           "maine",        "mississippi", "montana",    "nebraska",
           "nevada",       "new hampshire", "new mexico", "north dakota",
           "rhode island", "south dakota", "utah",      "vermont",
           "west virginia", "wyoming"})));

  domains.push_back(NlDomain(
      "month",
      Vec({"january", "february", "march", "april", "may", "june", "july",
           "august", "september", "october", "november", "december"}),
      Vec({})));

  domains.push_back(NlDomain(
      "month_abbrev",
      Vec({"jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep",
           "oct", "nov", "dec"}),
      Vec({})));

  domains.push_back(NlDomain(
      "weekday",
      Vec({"monday", "tuesday", "wednesday", "thursday", "friday",
           "saturday", "sunday"}),
      Vec({})));

  domains.push_back(NlDomain(
      "color",
      Vec({"red", "blue", "green", "yellow", "orange", "purple", "black",
           "white", "brown", "pink", "gray", "violet"}),
      Vec({"magenta", "cyan", "turquoise", "beige", "maroon", "navy",
           "teal", "olive", "coral", "indigo", "lavender", "crimson",
           "salmon", "khaki", "plum", "orchid", "sienna", "ochre"})));

  domains.push_back(NlDomain(
      "first_name",
      Vec({"james",    "mary",     "john",     "patricia", "robert",
           "jennifer", "michael",  "linda",    "william",  "elizabeth",
           "david",    "barbara",  "richard",  "susan",    "joseph",
           "jessica",  "thomas",   "sarah",    "charles",  "karen",
           "daniel",   "nancy",    "matthew",  "lisa",     "anthony",
           "betty",    "mark",     "margaret", "donald",   "sandra",
           "steven",   "ashley",   "paul",     "kimberly", "andrew",
           "emily",    "joshua",   "donna",    "kenneth",  "michelle",
           "kevin",    "dorothy",  "brian",    "carol",    "george",
           "amanda",   "edward",   "melissa",  "ronald",   "deborah",
           "timothy",  "stephanie", "jason",   "rebecca",  "jeffrey",
           "sharon",   "ryan",     "laura",    "jacob",    "cynthia",
           "gary",     "kathleen", "nicholas", "amy",      "eric",
           "angela",   "jonathan", "shirley",  "stephen",  "anna",
           "larry",    "brenda",   "justin",   "pamela",   "scott",
           "emma",     "brandon",  "nicole",   "benjamin", "helen",
           "samuel",   "samantha", "gregory",  "katherine", "frank",
           "christine", "alexander", "debra",  "raymond",  "rachel",
           "patrick",  "carolyn",  "jack",     "janet",    "dennis",
           "catherine", "jerry",   "maria",    "tyler",    "heather",
           "aaron",    "diane",    "jose",     "ruth",     "adam",
           "julie",    "nathan",   "olivia",   "henry",    "joyce",
           "douglas",  "virginia", "zachary",  "victoria", "peter",
           "kelly",    "kyle",     "lauren",   "ethan",    "christina",
           "walter",   "joan",     "noah",     "evelyn",   "jeremy",
           "judith",   "christian", "megan",   "keith",    "andrea",
           "roger",    "cheryl",   "terry",    "hannah",   "austin",
           "jacqueline", "sean",   "martha",   "gerald",   "gloria",
           "carl",     "teresa",   "harold",   "ann",      "dylan",
           "bruce",    "vicky",    "angie",    "david",    "grace"}),
      Vec({"omayra",   "hyosik",   "mauricio", "thandiwe", "bartholomew",
           "xiomara",  "oluwaseun", "anoushka", "kazimierz", "svetlana",
           "yerlan",   "bogdan",   "ingrid",   "soren",    "aoife",
           "siobhan",  "tariq",    "yusuf",    "amara",    "kofi",
           "nkechi",   "takeshi",  "haruki",   "mei",      "jiro",
           "anouk",    "maarten",  "wietse",   "ilona",    "zsofia",
           "vlad",     "dragan",   "milos",    "radka",    "bozena",
           "eitan",    "shira",    "aviv",     "noa",      "idris",
           "zainab",   "femi",     "chidi",    "adaeze",   "olamide",
           "keanu",    "moana",    "aroha",    "wiremu",   "rangi",
           "desiree",  "narek",    "anahit",   "tigran",   "gayane",
           "altantsetseg", "bataar", "enkhjin", "oyuunaa", "saikhan"})));

  domains.push_back(NlDomain(
      "last_name",
      Vec({"smith",    "johnson",  "williams", "brown",    "jones",
           "garcia",   "miller",   "davis",    "rodriguez", "martinez",
           "hernandez", "lopez",   "gonzalez", "wilson",   "anderson",
           "thomas",   "taylor",   "moore",    "jackson",  "martin",
           "lee",      "perez",    "thompson", "white",    "harris",
           "sanchez",  "clark",    "ramirez",  "lewis",    "robinson",
           "walker",   "young",    "allen",    "king",     "wright",
           "scott",    "torres",   "nguyen",   "hill",     "flores",
           "green",    "adams",    "nelson",   "baker",    "hall",
           "rivera",   "campbell", "mitchell", "carter",   "roberts",
           "gomez",    "phillips", "evans",    "turner",   "diaz",
           "parker",   "cruz",     "edwards",  "collins",  "reyes",
           "stewart",  "morris",   "morales",  "murphy",   "cook",
           "rogers",   "gutierrez", "ortiz",   "morgan",   "cooper",
           "peterson", "bailey",   "reed",     "kelly",    "howard",
           "ramos",    "kim",      "cox",      "ward",     "richardson",
           "watson",   "brooks",   "chavez",   "wood",     "james",
           "bennett",  "gray",     "mendoza",  "ruiz",     "hughes",
           "price",    "alvarez",  "castillo", "sanders",  "patel",
           "myers",    "long",     "ross",     "foster",   "jimenez",
           "dominguez", "munoz",   "romero",   "rubio"}),
      Vec({"lim",        "okonkwo",  "achterberg", "bjornstad",
           "czajkowski", "dimitriou", "eriksdottir", "fitzwilliam",
           "grzybowski", "hategan",  "ivanova",   "jokinen",
           "kowalczyk",  "lindqvist", "mbeki",    "nakamura",
           "obrecht",    "papadopoulos", "quispe", "rahimi",
           "szczepanski", "tanaka",  "uchida",    "vanderberg",
           "wachowski",  "xhaka",    "yamamoto",  "zielinski",
           "abubakar",   "bhattacharya"})));

  domains.push_back(NlDomain(
      "city_us",
      Vec({"new york",     "los angeles",  "chicago",      "houston",
           "phoenix",      "philadelphia", "san antonio",  "san diego",
           "dallas",       "san jose",     "austin",       "jacksonville",
           "fort worth",   "columbus",     "charlotte",    "san francisco",
           "indianapolis", "seattle",      "denver",       "washington",
           "boston",       "el paso",      "nashville",    "detroit",
           "oklahoma city", "portland",    "las vegas",    "memphis",
           "louisville",   "baltimore",    "milwaukee",    "albuquerque",
           "tucson",       "fresno",       "sacramento",   "kansas city",
           "mesa",         "atlanta",      "omaha",        "colorado springs",
           "raleigh",      "miami",        "oakland",      "minneapolis",
           "tulsa",        "cleveland",    "wichita",      "arlington",
           "new orleans",  "bakersfield",  "tampa",        "honolulu",
           "aurora",       "anaheim",      "santa ana",    "st louis",
           "riverside",    "pittsburgh",   "cincinnati",   "anchorage",
           "henderson",    "greensboro",   "plano",        "newark",
           "lincoln",      "toledo",       "orlando",      "chula vista",
           "irvine",       "fort wayne",   "jersey city",  "durham",
           "st petersburg", "laredo",      "buffalo",      "madison",
           "lubbock",      "chandler",     "scottsdale",   "glendale",
           "reno",         "norfolk",      "winston salem", "irving",
           "chesapeake",   "gilbert",      "hialeah",      "garland",
           "fremont",      "richmond",     "boise",        "baton rouge",
           "saint paul",   "spokane",      "des moines",   "tacoma",
           "san bernardino", "modesto",    "fontana",      "santa clarita",
           "birmingham",   "oxnard",       "fayetteville", "rochester"}),
      Vec({"mankato",      "shakopee",     "antioch",      "brentwood",
           "goodlettsville", "old hickory", "mount juliet", "whites creek",
           "madisonville", "hermitage",    "fairmont",     "st peter",
           "owatonna",     "faribault",    "northfield",   "chanhassen",
           "waconia",      "chaska",       "prior lake",   "savage",
           "lakeville",    "farmington",   "rosemount",    "hastings",
           "red wing",     "winona",       "austin town",  "albert lea",
           "bemidji",      "brainerd",     "alexandria",   "fergus falls",
           "thief river falls", "ely",     "grand marais", "two harbors",
           "pipestone",    "luverne",      "windom",       "marshall"})));

  domains.push_back(NlDomain(
      "city_world",
      Vec({"london",     "paris",      "berlin",    "madrid",
           "rome",       "vienna",     "amsterdam", "brussels",
           "lisbon",     "dublin",     "prague",    "warsaw",
           "budapest",   "athens",     "stockholm", "oslo",
           "copenhagen", "helsinki",   "zurich",    "geneva",
           "munich",     "hamburg",    "frankfurt", "cologne",
           "barcelona",  "valencia",   "seville",   "milan",
           "naples",     "turin",      "florence",  "venice",
           "moscow",     "kyiv",       "istanbul",  "ankara",
           "cairo",      "lagos",      "nairobi",   "johannesburg",
           "cape town",  "casablanca", "tokyo",     "osaka",
           "kyoto",      "seoul",      "beijing",   "shanghai",
           "shenzhen",   "guangzhou",  "hong kong", "taipei",
           "singapore",  "bangkok",    "jakarta",   "manila",
           "mumbai",     "delhi",      "bangalore", "chennai",
           "sydney",     "melbourne",  "brisbane",  "perth",
           "auckland",   "wellington", "toronto",   "vancouver",
           "montreal",   "ottawa",     "mexico city", "guadalajara",
           "bogota",     "lima",       "santiago",  "buenos aires",
           "sao paulo",  "rio de janeiro", "brasilia", "montevideo",
           "dubai",      "doha",       "riyadh",    "tel aviv",
           "dortmund",   "stuttgart",  "dusseldorf", "leipzig",
           "lyon",       "marseille",  "toulouse",  "bordeaux",
           "manchester", "birmingham", "glasgow",   "edinburgh",
           "cardiff",    "belfast",    "liverpool", "leeds"}),
      Vec({"panama city",  "ljubljana",  "bratislava", "vilnius",
           "riga",         "tallinn",    "reykjavik",  "valletta",
           "podgorica",    "skopje",     "tirana",     "chisinau",
           "sarajevo",     "pristina",   "nuuk",       "thimphu",
           "paramaribo",   "georgetown", "windhoek",   "gaborone",
           "maseru",       "mbabane",    "moroni",     "apia",
           "suva",         "honiara",    "majuro",     "funafuti",
           "ulaanbaatar",  "ashgabat",   "dushanbe",   "bishkek"})));

  domains.push_back(NlDomain(
      "language",
      Vec({"english", "spanish", "french",  "german",    "italian",
           "portuguese", "dutch", "russian", "polish",    "turkish",
           "arabic",  "hebrew",  "hindi",   "bengali",   "urdu",
           "chinese", "japanese", "korean", "vietnamese", "thai",
           "indonesian", "malay", "swahili", "greek",     "czech",
           "swedish", "norwegian", "danish", "finnish",   "hungarian"}),
      Vec({"basque",   "catalan",  "galician", "welsh",    "irish",
           "icelandic", "maltese", "estonian", "latvian",  "lithuanian",
           "albanian", "macedonian", "armenian", "georgian", "azerbaijani",
           "kazakh",   "uzbek",    "tagalog",  "cebuano",  "quechua",
           "guarani",  "amharic",  "yoruba",   "igbo",     "zulu",
           "xhosa",    "maori",    "samoan",   "tongan",   "fijian"})));

  domains.push_back(NlDomain(
      "currency_code",
      Vec({"usd", "eur", "gbp", "jpy", "cny", "chf", "cad", "aud", "nzd",
           "sek", "nok", "dkk", "pln", "czk", "huf", "rub", "try", "inr",
           "brl", "mxn", "krw", "sgd", "hkd", "zar"}),
      Vec({"thb", "idr", "myr", "php", "vnd", "aed", "sar", "qar", "ils",
           "egp", "ngn", "kes", "ghs", "mad", "clp", "cop", "pen", "ars",
           "uyu", "bob", "isk", "ron", "bgn", "hrk", "uah", "kzt"})));

  domains.push_back(NlDomain(
      "job_title",
      Vec({"software engineer", "data analyst",    "project manager",
           "product manager",   "accountant",      "sales manager",
           "marketing manager", "graphic designer", "teacher",
           "nurse",             "physician",       "pharmacist",
           "electrician",       "plumber",         "carpenter",
           "mechanic",          "chef",            "waiter",
           "cashier",           "receptionist",    "office manager",
           "hr specialist",     "recruiter",       "consultant",
           "financial analyst", "auditor",         "lawyer",
           "paralegal",         "architect",       "civil engineer",
           "mechanical engineer", "data scientist", "web developer",
           "system administrator", "network engineer", "security analyst",
           "operations manager", "warehouse manager", "truck driver",
           "delivery driver"}),
      Vec({"actuary",            "horticulturist",  "oenologist",
           "glassblower",        "locksmith",       "taxidermist",
           "cartographer",       "archivist",       "conservator",
           "lexicographer",      "ethnographer",    "volcanologist",
           "hydrologist",        "metallurgist",    "falconer",
           "milliner",           "cooper",          "farrier",
           "chandler",           "wheelwright"})));

  domains.push_back(NlDomain(
      "department",
      Vec({"sales",          "marketing",     "finance",
           "human resources", "engineering",  "operations",
           "legal",          "procurement",   "customer support",
           "information technology",          "research and development",
           "quality assurance", "logistics",  "facilities",
           "accounting",     "public relations", "administration",
           "product",        "design",        "security"}),
      Vec({"internal audit",  "treasury",      "investor relations",
           "corporate strategy", "business intelligence",
           "regulatory affairs", "clinical operations",
           "supply chain",    "field services", "technical writing"})));

  domains.push_back(NlDomain(
      "gender",
      Vec({"male", "female"}),
      Vec({"nonbinary", "other", "prefer not to say"})));

  domains.push_back(NlDomain(
      "yes_no",
      Vec({"yes", "no"}),
      Vec({"n/a", "unknown"})));

  domains.push_back(NlDomain(
      "element",
      Vec({"hydrogen", "helium",   "lithium",  "carbon",   "nitrogen",
           "oxygen",   "fluorine", "neon",     "sodium",   "magnesium",
           "aluminum", "silicon",  "phosphorus", "sulfur", "chlorine",
           "argon",    "potassium", "calcium", "iron",     "copper",
           "zinc",     "silver",   "gold",     "mercury",  "lead",
           "nickel",   "tin",      "platinum", "titanium", "chromium"}),
      Vec({"scandium",  "vanadium",   "gallium",   "germanium",
           "arsenic",   "selenium",   "bromine",   "krypton",
           "rubidium",  "strontium",  "yttrium",   "zirconium",
           "niobium",   "molybdenum", "technetium", "ruthenium",
           "rhodium",   "palladium",  "cadmium",   "indium",
           "antimony",  "tellurium",  "iodine",    "xenon",
           "cesium",    "barium",     "lanthanum", "cerium",
           "praseodymium", "neodymium"})));

  domains.push_back(NlDomain(
      "sport",
      Vec({"soccer",     "basketball", "baseball",  "football",
           "tennis",     "golf",       "hockey",    "swimming",
           "volleyball", "cricket",    "rugby",     "boxing",
           "cycling",    "running",    "skiing",    "snowboarding",
           "skating",    "wrestling",  "gymnastics", "badminton"}),
      Vec({"curling",    "biathlon",   "pentathlon", "fencing",
           "archery",    "rowing",     "canoeing",  "equestrian",
           "handball",   "squash",     "lacrosse",  "softball",
           "triathlon",  "taekwondo",  "judo",      "karate",
           "weightlifting", "water polo", "sailing", "surfing"})));

  domains.push_back(NlDomain(
      "soccer_position",
      Vec({"goalkeeper", "defender", "midfielder", "forward", "striker",
           "winger", "midfield", "defense"}),
      Vec({"sweeper", "fullback", "wingback", "centre back",
           "attacking midfielder", "defensive midfielder",
           "centre forward", "second striker"})));

  domains.push_back(NlDomain(
      "fruit",
      Vec({"apple",      "banana",   "orange",    "grape",
           "strawberry", "pear",     "peach",     "cherry",
           "watermelon", "pineapple", "mango",    "lemon",
           "lime",       "kiwi",     "blueberry", "raspberry",
           "plum",       "apricot",  "melon",     "fig"}),
      Vec({"durian",     "rambutan", "lychee",    "longan",
           "mangosteen", "jackfruit", "tamarind", "persimmon",
           "quince",     "medlar",   "loquat",    "soursop",
           "cherimoya",  "feijoa",   "salak",     "pawpaw",
           "cloudberry", "lingonberry", "gooseberry", "mulberry"})));

  domains.push_back(NlDomain(
      "facility_type",
      Vec({"restaurant",    "school",        "grocery store",
           "hospital",      "bakery",        "catering",
           "daycare",       "gas station",   "convenience store",
           "mobile food vendor", "coffee shop", "bar",
           "long term care", "banquet hall", "butcher shop"}),
      Vec({"children's service facility", "shared kitchen",
           "commissary",     "tavern",       "paleteria",
           "wholesale bakery", "live poultry", "cold storage",
           "shelter",        "adult family care"})));

  domains.push_back(NlDomain(
      "hospital_type",
      Vec({"acute care hospitals", "critical access hospitals",
           "childrens hospitals", "psychiatric hospitals",
           "rehabilitation hospitals"}),
      Vec({"long term care hospitals", "veterans affairs hospitals",
           "military hospitals"})));

  domains.push_back(NlDomain(
      "race",
      Vec({"white", "black", "asian", "hispanic", "other"}),
      Vec({"amer-indian-eskimo", "asian-pac-islander", "two or more"})));

  domains.push_back(NlDomain(
      "marital_status",
      Vec({"married", "single", "divorced", "widowed", "separated"}),
      Vec({"never-married", "married-civ-spouse", "married-spouse-absent"})));

  return domains;
}

}  // namespace autotest::datagen
