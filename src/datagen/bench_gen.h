#ifndef AUTOTEST_DATAGEN_BENCH_GEN_H_
#define AUTOTEST_DATAGEN_BENCH_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/error_injector.h"
#include "table/column.h"

namespace autotest::datagen {

/// A benchmark column with cell-level ground truth.
struct LabeledColumn {
  table::Column column;
  std::string domain;  // ground-truth domain name (not visible to methods)
  std::vector<size_t> error_rows;
  std::vector<ErrorType> error_types;  // parallel to error_rows

  bool dirty() const { return !error_rows.empty(); }
  bool IsErrorRow(size_t row) const;
};

/// A labeled benchmark in the style of the paper's ST-Bench / RT-Bench:
/// 1200 real-looking columns, a small fraction dirty, every erroneous cell
/// marked.
struct LabeledBenchmark {
  std::string name;
  std::vector<LabeledColumn> columns;

  size_t TotalErrors() const;
  size_t DirtyColumns() const;
};

/// Shape of a benchmark.
struct BenchProfile {
  std::string name;
  size_t num_columns = 1200;
  /// Fraction of columns containing real errors (paper: 3.9% ST, 3.3% RT).
  double dirty_column_rate = 0.039;
  size_t min_values = 20;
  size_t max_values = 120;
  double tail_fraction = 0.12;
  double machine_fraction = 0.40;
  uint64_t seed = 101;
};

BenchProfile StBenchProfile(size_t num_columns = 1200, uint64_t seed = 101);
BenchProfile RtBenchProfile(size_t num_columns = 1200, uint64_t seed = 202);

/// Generates a labeled benchmark. Mostly-numeric domains are excluded,
/// mirroring the paper's footnote 8 (only non-numerical columns tested).
LabeledBenchmark GenerateBenchmark(const BenchProfile& profile);

/// Returns a copy of the benchmark with synthetic errors injected on top of
/// real ones: each column independently receives, with probability `rate`,
/// one extra cell whose value is sampled from a different benchmark column
/// (the paper's +5%/+10%/+20% settings).
LabeledBenchmark WithSyntheticErrors(const LabeledBenchmark& bench,
                                     double rate, uint64_t seed);

}  // namespace autotest::datagen

#endif  // AUTOTEST_DATAGEN_BENCH_GEN_H_
