#include "datagen/bench_gen.h"

#include <algorithm>

#include "datagen/column_gen.h"
#include "datagen/gazetteer.h"
#include "table/column.h"
#include "util/check.h"

namespace autotest::datagen {

namespace {

// Domains whose values are (nearly) all digits: excluded from benchmarks,
// like the paper excludes numeric columns (footnote 8).
bool IsNumericDomain(const Domain& domain) {
  if (domain.head.empty()) return false;
  size_t numeric = 0;
  for (const auto& v : domain.head) {
    if (table::LooksNumeric(v)) ++numeric;
  }
  return numeric * 2 > domain.head.size();
}

}  // namespace

bool LabeledColumn::IsErrorRow(size_t row) const {
  return std::find(error_rows.begin(), error_rows.end(), row) !=
         error_rows.end();
}

size_t LabeledBenchmark::TotalErrors() const {
  size_t n = 0;
  for (const auto& c : columns) n += c.error_rows.size();
  return n;
}

size_t LabeledBenchmark::DirtyColumns() const {
  size_t n = 0;
  for (const auto& c : columns) {
    if (c.dirty()) ++n;
  }
  return n;
}

BenchProfile StBenchProfile(size_t num_columns, uint64_t seed) {
  BenchProfile p;
  p.name = "st-bench";
  p.num_columns = num_columns;
  p.dirty_column_rate = 0.039;
  p.min_values = 10;
  p.max_values = 80;
  p.tail_fraction = 0.15;
  p.machine_fraction = 0.35;
  p.seed = seed;
  return p;
}

BenchProfile RtBenchProfile(size_t num_columns, uint64_t seed) {
  BenchProfile p;
  p.name = "rt-bench";
  p.num_columns = num_columns;
  p.dirty_column_rate = 0.033;
  p.min_values = 30;
  p.max_values = 200;
  p.tail_fraction = 0.10;
  p.machine_fraction = 0.50;
  p.seed = seed;
  return p;
}

LabeledBenchmark GenerateBenchmark(const BenchProfile& profile) {
  const Gazetteer& gaz = Gazetteer::Instance();
  util::Rng rng(profile.seed);

  std::vector<size_t> nl_indices;
  std::vector<size_t> machine_indices;
  for (size_t i = 0; i < gaz.domains().size(); ++i) {
    const Domain& d = gaz.domains()[i];
    if (IsNumericDomain(d)) continue;
    if (d.kind == DomainKind::kNaturalLanguage) {
      nl_indices.push_back(i);
    } else {
      machine_indices.push_back(i);
    }
  }
  AT_CHECK(!nl_indices.empty() && !machine_indices.empty());

  ColumnGenOptions options;
  options.min_values = profile.min_values;
  options.max_values = profile.max_values;
  options.tail_fraction = profile.tail_fraction;

  LabeledBenchmark bench;
  bench.name = profile.name;
  bench.columns.reserve(profile.num_columns);
  for (size_t i = 0; i < profile.num_columns; ++i) {
    bool machine = rng.Bernoulli(profile.machine_fraction);
    const auto& pool = machine ? machine_indices : nl_indices;
    const Domain& domain = gaz.domains()[rng.Pick(pool)];
    LabeledColumn lc;
    lc.column = GenerateColumn(domain, options, rng);
    lc.domain = domain.name;
    if (rng.Bernoulli(profile.dirty_column_rate)) {
      size_t num_errors = static_cast<size_t>(rng.UniformInt(1, 3));
      for (size_t e = 0; e < num_errors; ++e) {
        auto injected =
            InjectError(&lc.column, SampleErrorType(rng), gaz, domain.name,
                        rng);
        if (!injected) continue;
        if (lc.IsErrorRow(injected->row)) continue;  // already corrupted
        lc.error_rows.push_back(injected->row);
        lc.error_types.push_back(injected->type);
      }
    }
    bench.columns.push_back(std::move(lc));
  }
  return bench;
}

LabeledBenchmark WithSyntheticErrors(const LabeledBenchmark& bench,
                                     double rate, uint64_t seed) {
  const Gazetteer& gaz = Gazetteer::Instance();
  util::Rng rng(seed);
  LabeledBenchmark out = bench;
  out.name = bench.name + "+syn" + std::to_string(static_cast<int>(
                                       rate * 100.0 + 0.5));
  for (auto& lc : out.columns) {
    if (!rng.Bernoulli(rate)) continue;
    if (lc.column.values.empty()) continue;
    // Sample an alien value from a different benchmark column.
    std::string alien;
    for (int attempt = 0; attempt < 50; ++attempt) {
      const LabeledColumn& donor = rng.Pick(out.columns);
      if (donor.domain == lc.domain || donor.column.values.empty()) continue;
      const std::string& v = rng.Pick(donor.column.values);
      if (gaz.Contains(lc.domain, v)) continue;  // accidentally valid here
      alien = v;
      break;
    }
    if (alien.empty()) continue;
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(lc.column.values.size())));
    lc.column.values.insert(
        lc.column.values.begin() + static_cast<ptrdiff_t>(pos), alien);
    // Shift existing ground-truth rows past the insertion point.
    for (auto& row : lc.error_rows) {
      if (row >= pos) ++row;
    }
    lc.error_rows.push_back(pos);
    lc.error_types.push_back(ErrorType::kIncompatible);
  }
  return out;
}

}  // namespace autotest::datagen
