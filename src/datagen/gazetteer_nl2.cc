// Second batch of natural-language semantic domains: transportation,
// technology, education and commerce vocabularies. Same head/tail
// convention as gazetteer_nl.cc.

#include <initializer_list>

#include "datagen/gazetteer.h"

namespace autotest::datagen {

namespace {

std::vector<std::string> Vec(std::initializer_list<const char*> xs) {
  std::vector<std::string> out;
  out.reserve(xs.size());
  for (const char* x : xs) out.emplace_back(x);
  return out;
}

Domain NlDomain(const char* name, std::vector<std::string> head,
                std::vector<std::string> tail) {
  Domain d;
  d.name = name;
  d.kind = DomainKind::kNaturalLanguage;
  d.head = std::move(head);
  d.tail = std::move(tail);
  return d;
}

}  // namespace

std::vector<Domain> BuildNaturalLanguageDomains2() {
  std::vector<Domain> domains;

  domains.push_back(NlDomain(
      "airport_code",
      Vec({"jfk", "lax", "ord", "dfw", "den", "atl", "sfo", "sea", "las",
           "mco", "ewr", "mia", "phx", "iah", "bos", "msp", "dtw", "fll",
           "lga", "clt", "bwi", "slc", "iad", "dca", "mdw", "san", "tpa",
           "pdx", "hnl", "stl", "lhr", "cdg", "fra", "ams", "mad", "bcn",
           "fco", "muc", "zrh", "vie", "arn", "osl", "cph", "hel", "dub",
           "bru", "lis", "ath", "nrt", "hnd", "icn", "pek", "pvg", "hkg",
           "sin", "bkk", "kul", "del", "bom", "syd"}),
      Vec({"anc", "ogg", "bzn", "jac", "mso", "fca", "rap", "fsd", "grb",
           "atw", "azo", "cid", "dsm", "far", "bis", "mot", "gfk", "isn",
           "cod", "riw"})));

  domains.push_back(NlDomain(
      "university",
      Vec({"harvard university",       "stanford university",
           "mit",                      "yale university",
           "princeton university",     "columbia university",
           "university of chicago",    "university of pennsylvania",
           "cornell university",       "duke university",
           "northwestern university",  "johns hopkins university",
           "caltech",                  "brown university",
           "dartmouth college",        "vanderbilt university",
           "rice university",          "university of michigan",
           "uc berkeley",              "ucla",
           "university of virginia",   "georgetown university",
           "carnegie mellon university", "university of washington",
           "nyu",                      "boston university",
           "university of texas",      "georgia tech",
           "ohio state university",    "penn state university",
           "university of florida",    "university of wisconsin",
           "university of illinois",   "university of minnesota",
           "purdue university",        "texas a&m university",
           "university of oxford",     "university of cambridge",
           "imperial college london",  "eth zurich"}),
      Vec({"gustavus adolphus college", "carleton college",
           "macalester college",        "st olaf college",
           "luther college",            "beloit college",
           "knox college",              "grinnell college",
           "oberlin college",           "kenyon college",
           "reed college",              "whitman college",
           "colorado college",          "lewis & clark college",
           "university of tartu",       "university of ljubljana"})));

  domains.push_back(NlDomain(
      "car_brand",
      Vec({"toyota", "honda", "ford", "chevrolet", "nissan", "bmw",
           "mercedes-benz", "volkswagen", "audi", "hyundai", "kia",
           "subaru", "mazda", "lexus", "jeep", "dodge", "ram", "gmc",
           "volvo", "porsche", "tesla", "buick", "cadillac", "chrysler",
           "acura", "infiniti", "lincoln", "mitsubishi", "mini", "fiat"}),
      Vec({"lada", "dacia", "seat", "skoda", "saab", "lancia", "proton",
           "tata", "mahindra", "geely", "byd", "chery", "great wall",
           "ssangyong", "holden"})));

  domains.push_back(NlDomain(
      "country_capital",
      Vec({"washington", "london",   "paris",     "berlin",   "rome",
           "madrid",     "lisbon",   "dublin",    "vienna",   "bern",
           "brussels",   "amsterdam", "copenhagen", "stockholm", "oslo",
           "helsinki",   "warsaw",   "prague",    "budapest", "athens",
           "moscow",     "kyiv",     "ankara",    "cairo",    "nairobi",
           "pretoria",   "ottawa",   "mexico city", "brasilia", "buenos aires",
           "santiago",   "lima",     "bogota",    "tokyo",    "seoul",
           "beijing",    "new delhi", "bangkok",  "jakarta",  "manila",
           "canberra",   "wellington", "riyadh",  "abu dhabi", "doha"}),
      Vec({"vaduz",      "san marino", "andorra la vella", "monaco",
           "luxembourg city",          "valletta",  "nicosia",
           "reykjavik",  "tirana",     "skopje",    "podgorica",
           "sarajevo",   "chisinau",   "minsk",     "tbilisi",
           "yerevan",    "baku",       "astana",    "tashkent",
           "thimphu"})));

  domains.push_back(NlDomain(
      "programming_language",
      Vec({"python", "java", "javascript", "c++", "c#", "go", "rust",
           "ruby", "php", "swift", "kotlin", "typescript", "scala", "r",
           "matlab", "perl", "haskell", "lua", "dart", "julia", "c",
           "objective-c", "sql", "bash", "fortran", "cobol", "vba",
           "groovy", "elixir", "clojure"}),
      Vec({"ada", "apl", "forth", "prolog", "smalltalk", "erlang", "ocaml",
           "scheme", "racket", "tcl", "rexx", "abap", "pl/sql", "vhdl",
           "verilog", "nim", "zig", "crystal", "idris", "agda"})));

  domains.push_back(NlDomain(
      "browser",
      Vec({"chrome", "safari", "firefox", "edge", "opera",
           "samsung internet", "internet explorer"}),
      Vec({"brave", "vivaldi", "tor browser", "konqueror", "lynx",
           "pale moon", "seamonkey"})));

  domains.push_back(NlDomain(
      "operating_system",
      Vec({"windows 10", "windows 11", "macos", "ubuntu", "android", "ios",
           "debian", "fedora", "centos", "red hat enterprise linux",
           "windows 7", "chrome os"}),
      Vec({"freebsd", "openbsd", "netbsd", "solaris", "aix", "haiku",
           "alpine linux", "arch linux", "gentoo", "slackware"})));

  domains.push_back(NlDomain(
      "music_genre",
      Vec({"rock", "pop", "jazz", "classical", "hip hop", "country",
           "blues", "electronic", "folk", "reggae", "metal", "r&b",
           "soul", "funk", "punk", "disco", "techno", "house", "indie",
           "latin"}),
      Vec({"zydeco", "klezmer", "bluegrass", "gospel", "ska", "dub",
           "ambient", "drum and bass", "grime", "shoegaze", "flamenco",
           "bossa nova", "afrobeat", "k-pop", "mariachi"})));

  domains.push_back(NlDomain(
      "education_level",
      Vec({"high school", "associate degree", "bachelors degree",
           "masters degree", "doctorate", "some college", "no diploma"}),
      Vec({"trade school", "professional degree", "postdoctoral"})));

  domains.push_back(NlDomain(
      "employment_status",
      Vec({"employed", "unemployed", "self-employed", "retired", "student",
           "part-time", "full-time"}),
      Vec({"on leave", "furloughed", "seasonal worker"})));

  domains.push_back(NlDomain(
      "payment_method",
      Vec({"credit card", "debit card", "cash", "paypal", "bank transfer",
           "check", "apple pay", "google pay", "gift card"}),
      Vec({"money order", "cryptocurrency", "wire transfer",
           "cash on delivery", "klarna"})));

  domains.push_back(NlDomain(
      "shipping_carrier",
      Vec({"ups", "fedex", "usps", "dhl", "amazon logistics"}),
      Vec({"ontrac", "lasership", "purolator", "royal mail",
           "canada post", "tnt", "gls", "hermes"})));

  domains.push_back(NlDomain(
      "blood_type",
      Vec({"a+", "a-", "b+", "b-", "ab+", "ab-", "o+", "o-"}),
      Vec({})));

  domains.push_back(NlDomain(
      "continent",
      Vec({"africa", "antarctica", "asia", "europe", "north america",
           "oceania", "south america"}),
      Vec({})));

  domains.push_back(NlDomain(
      "zodiac_sign",
      Vec({"aries", "taurus", "gemini", "cancer", "leo", "virgo", "libra",
           "scorpio", "sagittarius", "capricorn", "aquarius", "pisces"}),
      Vec({})));

  domains.push_back(NlDomain(
      "weekday_abbrev",
      Vec({"mon", "tue", "wed", "thu", "fri", "sat", "sun"}),
      Vec({})));

  domains.push_back(NlDomain(
      "timezone",
      Vec({"utc", "est", "cst", "mst", "pst", "edt", "cdt", "mdt", "pdt",
           "gmt", "cet", "eet"}),
      Vec({"akst", "hst", "ist", "jst", "aest", "acst", "awst", "nzst",
           "wat", "eat", "msk", "bst"})));

  return domains;
}

}  // namespace autotest::datagen
