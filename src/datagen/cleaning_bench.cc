#include "datagen/cleaning_bench.h"

#include "datagen/column_gen.h"
#include "datagen/gazetteer.h"
#include "util/check.h"
#include "util/rng.h"

namespace autotest::datagen {

namespace {

// Builder for one dataset: columns are drawn from gazetteer domains, then
// specific dirty cells are applied with explicit before/after values so
// the error inventory mirrors the paper's Tables 10 and 11.
class DatasetBuilder {
 public:
  DatasetBuilder(std::string name, size_t rows, util::Rng* rng)
      : rows_(rows), rng_(rng) {
    dataset_.name = std::move(name);
    dataset_.data.name = dataset_.name;
  }

  /// Adds a column sampled from a gazetteer domain.
  size_t AddDomainColumn(const std::string& column_name,
                         const std::string& domain_name,
                         double tail_fraction = 0.10) {
    const Domain* d = Gazetteer::Instance().Find(domain_name);
    AT_CHECK_MSG(d != nullptr, domain_name.c_str());
    ColumnGenOptions options;
    options.min_values = rows_;
    options.max_values = rows_;
    options.tail_fraction = tail_fraction;
    table::Column col = GenerateColumn(*d, options, *rng_);
    col.name = column_name;
    dataset_.data.columns.push_back(std::move(col));
    return dataset_.data.columns.size() - 1;
  }

  /// Adds a column that cycles over a fixed value list.
  size_t AddFixedColumn(const std::string& column_name,
                        const std::vector<std::string>& values) {
    table::Column col;
    col.name = column_name;
    col.values.reserve(rows_);
    for (size_t i = 0; i < rows_; ++i) {
      col.values.push_back(values[i % values.size()]);
    }
    dataset_.data.columns.push_back(std::move(col));
    return dataset_.data.columns.size() - 1;
  }

  /// Corrupts one cell with an explicit dirty value.
  void Corrupt(size_t column_index, const std::string& dirty_value,
               bool in_ground_truth = true) {
    AT_CHECK(column_index < dataset_.data.columns.size());
    auto& col = dataset_.data.columns[column_index];
    AT_CHECK(!col.values.empty());
    // Pick an uncorrupted row.
    size_t row = 0;
    for (int attempt = 0; attempt < 100; ++attempt) {
      row = static_cast<size_t>(
          rng_->UniformInt(0, static_cast<int64_t>(col.values.size()) - 1));
      bool taken = false;
      for (const auto& e : dataset_.errors) {
        if (e.column_index == column_index && e.row == row) taken = true;
      }
      if (!taken) break;
    }
    CleaningCell cell;
    cell.column_index = column_index;
    cell.row = row;
    cell.clean_value = col.values[row];
    cell.dirty_value = dirty_value;
    cell.in_ground_truth = in_ground_truth;
    col.values[row] = dirty_value;
    dataset_.errors.push_back(std::move(cell));
  }

  void MarkExistingConstraint(size_t column_index) {
    dataset_.columns_with_existing_constraints.push_back(column_index);
  }

  CleaningDataset Take() { return std::move(dataset_); }

 private:
  size_t rows_;
  util::Rng* rng_;
  CleaningDataset dataset_;
};

CleaningDataset BuildAdults(util::Rng* rng) {
  DatasetBuilder b("adults", 300, rng);
  size_t race = b.AddDomainColumn("race", "race", 0.2);
  size_t sex = b.AddDomainColumn("sex", "gender", 0.0);
  b.AddDomainColumn("marital_status", "marital_status", 0.3);
  b.AddDomainColumn("occupation", "job_title");
  b.AddDomainColumn("native_country", "country");
  b.AddDomainColumn("workclass", "department");
  b.AddFixedColumn("education",
                   {"bachelors", "hs-grad", "masters", "some-college",
                    "assoc-voc", "doctorate", "11th", "9th"});
  b.AddFixedColumn("relationship",
                   {"husband", "wife", "own-child", "unmarried",
                    "not-in-family", "other-relative"});
  b.AddFixedColumn("income", {"<=50k", ">50k"});
  size_t existing = b.AddFixedColumn("fnlwgt_bucket", {"a", "b", "c", "d"});
  b.MarkExistingConstraint(existing);
  // Paper Table 10: typos and incompatible values on race / sex.
  b.Corrupt(race, "wite");
  b.Corrupt(race, "seattle");
  b.Corrupt(sex, "femele");
  b.Corrupt(sex, "finnish");
  return b.Take();
}

CleaningDataset BuildBeers(util::Rng* rng) {
  DatasetBuilder b("beers", 250, rng);
  size_t city = b.AddDomainColumn("city", "city_us", 0.15);
  size_t state = b.AddDomainColumn("state", "us_state_code", 0.3);
  b.AddFixedColumn("style", {"ipa", "stout", "lager", "pilsner", "porter",
                             "pale ale", "wheat", "saison"});
  b.AddDomainColumn("brewery_name", "last_name");
  b.AddFixedColumn("availability",
                   {"year-round", "seasonal", "limited", "rotating"});
  b.AddFixedColumn("ounces", {"12 oz", "16 oz", "24 oz", "32 oz"});
  b.MarkExistingConstraint(city);   // brewery id -> city FD
  b.MarkExistingConstraint(state);  // brewery id -> state FD, 2 letters
  b.Corrupt(state, "ax");
  b.Corrupt(state, "us");
  b.Corrupt(state, "xl", /*in_ground_truth=*/true);
  b.Corrupt(city, "louisvilla");
  b.Corrupt(city, "9th ave", /*in_ground_truth=*/false);
  return b.Take();
}

CleaningDataset BuildFlights(util::Rng* rng) {
  DatasetBuilder b("flights", 200, rng);
  size_t sched_dep = b.AddDomainColumn("sched_dep_time", "time_hm");
  size_t act_dep = b.AddDomainColumn("act_dep_time", "time_hm");
  size_t sched_arr = b.AddDomainColumn("sched_arr_time", "time_hm");
  size_t act_arr = b.AddDomainColumn("act_arr_time", "time_hm");
  b.AddDomainColumn("flight_code", "product_code");
  b.AddDomainColumn("source", "web_domain");
  b.MarkExistingConstraint(sched_dep);
  b.MarkExistingConstraint(act_dep);
  b.MarkExistingConstraint(sched_arr);
  b.MarkExistingConstraint(act_arr);
  return b.Take();
}

CleaningDataset BuildFood(util::Rng* rng) {
  DatasetBuilder b("food", 300, rng);
  size_t facility = b.AddDomainColumn("facility_type", "facility_type", 0.2);
  size_t city = b.AddDomainColumn("city", "city_us", 0.12);
  size_t state = b.AddFixedColumn("state", {"il"});
  b.AddDomainColumn("dba_name", "last_name");
  b.AddFixedColumn("risk", {"risk 1 (high)", "risk 2 (medium)",
                            "risk 3 (low)"});
  b.AddFixedColumn("results", {"pass", "fail", "pass w/ conditions"});
  b.AddFixedColumn("inspection_type", {"canvass", "license", "complaint",
                                       "re-inspection"});
  b.AddDomainColumn("inspection_date", "date_mdy");
  b.AddDomainColumn("zip", "zip_code");
  b.AddDomainColumn("license_num", "order_num");
  b.MarkExistingConstraint(state);  // city -> state FD
  b.Corrupt(city, "chiago");
  b.Corrupt(city, "upenn", /*in_ground_truth=*/false);
  b.Corrupt(state, "ilxa");
  b.Corrupt(facility, "childern's service facility",
            /*in_ground_truth=*/false);
  b.Corrupt(facility, "asia");
  return b.Take();
}

CleaningDataset BuildHospital(util::Rng* rng) {
  DatasetBuilder b("hospital", 300, rng);
  size_t sample = b.AddDomainColumn("sample", "sample_count");
  size_t state = b.AddDomainColumn("state", "us_state_code", 0.3);
  size_t type = b.AddDomainColumn("hospital_type", "hospital_type", 0.1);
  size_t emergency = b.AddDomainColumn("emergency_service", "yes_no", 0.0);
  size_t city = b.AddDomainColumn("city", "city_us", 0.15);
  b.AddDomainColumn("phone", "phone_us");
  b.AddDomainColumn("provider_id", "order_num");
  b.AddDomainColumn("measure_name", "department");
  b.AddFixedColumn("condition", {"heart attack", "heart failure",
                                 "pneumonia", "surgical infection"});
  b.AddDomainColumn("zip", "zip_code");
  b.AddDomainColumn("owner", "last_name");
  b.AddDomainColumn("address", "article_number");
  b.MarkExistingConstraint(state);      // zip -> state, county -> state
  b.MarkExistingConstraint(type);       // condition, measure -> type
  b.MarkExistingConstraint(emergency);  // zip -> emergency service
  b.MarkExistingConstraint(city);
  b.Corrupt(sample, "empty", /*in_ground_truth=*/false);
  b.Corrupt(sample, "x patients");
  b.Corrupt(state, "ax");
  b.Corrupt(type, "acute caer");
  b.Corrupt(emergency, "yxs");
  return b.Take();
}

CleaningDataset BuildMovies(util::Rng* rng) {
  DatasetBuilder b("movies", 400, rng);
  size_t id = b.AddDomainColumn("id", "movie_id");
  size_t duration = b.AddDomainColumn("duration", "duration_min");
  b.AddDomainColumn("director", "last_name");
  b.AddFixedColumn("genre", {"drama", "comedy", "action", "thriller",
                             "horror", "romance", "documentary", "sci-fi"});
  b.AddFixedColumn("rating", {"g", "pg", "pg-13", "r", "nc-17"});
  b.AddDomainColumn("release_date", "date_mdy");
  b.AddFixedColumn("country", {"usa", "uk", "france", "germany", "india",
                               "japan", "canada"});
  // The paper detects 161 cell errors on movies: ids written as names and
  // malformed durations dominate. Inject a comparable batch.
  const char* bad_ids[] = {"iron_man_3",  "dark_tide",   "the_host",
                           "warm_bodies", "movie_43",    "parker_2013",
                           "broken_city", "gangster_squad", "mama_2013",
                           "hansel_gretel", "last_stand", "texas_chainsaw"};
  for (const char* v : bad_ids) b.Corrupt(id, v);
  b.Corrupt(duration, "2 hr 30 min");
  b.Corrupt(duration, "nan");
  b.Corrupt(duration, "unknown");
  return b.Take();
}

CleaningDataset BuildRayyan(util::Rng* rng) {
  DatasetBuilder b("rayyan", 250, rng);
  size_t created = b.AddDomainColumn("article_created_at", "date_mdy");
  b.AddDomainColumn("journal_abbrev", "currency_code");
  b.AddDomainColumn("article_title", "job_title");
  b.AddDomainColumn("journal_issn", "isbn13");
  b.AddDomainColumn("author_first", "first_name");
  b.AddDomainColumn("author_last", "last_name");
  b.AddDomainColumn("language", "language");
  b.AddDomainColumn("pagination", "age_range");
  b.Corrupt(created, "nan", /*in_ground_truth=*/false);
  b.Corrupt(created, "june");
  return b.Take();
}

CleaningDataset BuildSoccer(util::Rng* rng) {
  DatasetBuilder b("soccer", 300, rng);
  size_t position = b.AddDomainColumn("position", "soccer_position", 0.15);
  size_t city = b.AddDomainColumn("city", "city_world", 0.15);
  b.AddDomainColumn("name", "last_name");
  b.AddDomainColumn("surname", "last_name");
  b.AddFixedColumn("team", {"arsenal", "chelsea", "liverpool", "barcelona",
                            "juventus", "bayern", "dortmund", "ajax"});
  b.AddDomainColumn("birth_date", "date_mdy");
  b.AddDomainColumn("country", "country");
  b.AddFixedColumn("foot", {"left", "right", "both"});
  b.MarkExistingConstraint(city);
  b.Corrupt(position, "strikor");
  b.Corrupt(position, "difensore");
  b.Corrupt(city, "cardif");
  b.Corrupt(city, "fl");
  return b.Take();
}

CleaningDataset BuildTax(util::Rng* rng) {
  DatasetBuilder b("tax", 300, rng);
  size_t state = b.AddDomainColumn("state", "us_state_code", 0.3);
  size_t zip = b.AddDomainColumn("zip", "zip_code");
  size_t area = b.AddDomainColumn("area_code", "phone_us");
  b.AddDomainColumn("city", "city_us");
  b.AddDomainColumn("f_name", "first_name");
  b.AddDomainColumn("l_name", "last_name");
  b.AddFixedColumn("gender", {"m", "f"});
  b.AddFixedColumn("has_child", {"y", "n"});
  b.MarkExistingConstraint(state);  // zip -> state, area code -> state
  b.MarkExistingConstraint(zip);
  b.MarkExistingConstraint(area);
  b.Corrupt(state, "xk");
  b.Corrupt(state, "us");
  return b.Take();
}

}  // namespace

std::vector<CleaningDataset> BuildCleaningDatasets(uint64_t seed) {
  util::Rng rng(seed);
  std::vector<CleaningDataset> out;
  out.push_back(BuildAdults(&rng));
  out.push_back(BuildBeers(&rng));
  out.push_back(BuildFlights(&rng));
  out.push_back(BuildFood(&rng));
  out.push_back(BuildHospital(&rng));
  out.push_back(BuildMovies(&rng));
  out.push_back(BuildRayyan(&rng));
  out.push_back(BuildSoccer(&rng));
  out.push_back(BuildTax(&rng));
  return out;
}

}  // namespace autotest::datagen
