// Machine-generated semantic domains: ids, dates, urls, codes. Each open
// domain carries a generator producing fresh valid values; head/tail lists
// are pre-sampled from the generator so lookups and closed-list uses work.
//
// A few closed "semi-structured" domains (age ranges, pay ranges, unit
// sizes) live here as well: they are the paper's Figure-3 examples where a
// value that breaks the dominant pattern is still valid ("65 & Above",
// "Less than $50k"), which is exactly the false-positive trap for naive
// pattern detectors.

#include <cstdio>
#include <initializer_list>
#include <string>

#include "datagen/gazetteer.h"
#include "util/hashing.h"

namespace autotest::datagen {

namespace {

std::vector<std::string> Vec(std::initializer_list<const char*> xs) {
  std::vector<std::string> out;
  out.reserve(xs.size());
  for (const char* x : xs) out.emplace_back(x);
  return out;
}

const std::vector<std::string>& CompanyWords() {
  static const auto& words = *new std::vector<std::string>(Vec(
      {"apple",   "google",  "amazon",   "contoso", "fabrikam", "acme",
       "globex",  "initech", "umbrella", "stark",   "wayne",    "hooli",
       "vandelay", "dunder", "wonka",    "cyberdyne", "tyrell", "massive",
       "aperture", "black mesa", "northwind", "adventure", "litware",
       "proseware", "wingtip", "tailspin", "margie", "lucerne",
       "southridge", "alpine"}));
  return words;
}

const std::vector<std::string>& Tlds() {
  static const auto& tlds = *new std::vector<std::string>(
      Vec({"com", "net", "org", "io", "co", "info", "biz", "us", "uk",
           "de", "fr", "jp", "cn", "in", "br", "edu", "gov"}));
  return tlds;
}

const std::vector<std::string>& UrlPathWords() {
  static const auto& words = *new std::vector<std::string>(
      Vec({"status", "posts", "articles", "items", "products", "users",
           "docs", "reports", "files", "news", "blog", "media"}));
  return words;
}

std::string NoSpace(std::string s) {
  std::string out;
  for (char c : s) {
    if (c != ' ') out.push_back(c);
  }
  return out;
}

std::string Digits(util::Rng& rng, int n) {
  std::string out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('0' + rng.UniformInt(0, 9)));
  }
  return out;
}

int LuhnCheckDigit(const std::string& digits) {
  // Check digit so that the full number (digits + d) passes Luhn.
  int sum = 0;
  bool dbl = true;  // position right-to-left starting after the check digit
  for (size_t i = digits.size(); i > 0; --i) {
    int d = digits[i - 1] - '0';
    if (dbl) {
      d *= 2;
      if (d > 9) d -= 9;
    }
    sum += d;
    dbl = !dbl;
  }
  return (10 - sum % 10) % 10;
}

int UpcCheckDigit(const std::string& digits11) {
  int odd = 0;
  int even = 0;
  for (size_t i = 0; i < digits11.size(); ++i) {
    if (i % 2 == 0) {
      odd += digits11[i] - '0';
    } else {
      even += digits11[i] - '0';
    }
  }
  int total = odd * 3 + even;
  return (10 - total % 10) % 10;
}

int Isbn13CheckDigit(const std::string& digits12) {
  int sum = 0;
  for (size_t i = 0; i < digits12.size(); ++i) {
    int d = digits12[i] - '0';
    sum += (i % 2 == 0) ? d : 3 * d;
  }
  return (10 - sum % 10) % 10;
}

Domain MachineDomain(const char* name, ValueGenerator gen) {
  Domain d;
  d.name = name;
  d.kind = DomainKind::kMachineGenerated;
  d.generator = std::move(gen);
  // Pre-sample a head list so closed-list uses (lookups, Katara-sim
  // gazetteer matching) have something to work with.
  util::Rng rng(util::Fnv64Seeded(name, 0xfeedULL));
  d.head.reserve(200);
  for (int i = 0; i < 200; ++i) d.head.push_back(d.generator(rng));
  return d;
}

Domain ClosedDomain(const char* name, std::vector<std::string> head,
                    std::vector<std::string> tail) {
  Domain d;
  d.name = name;
  d.kind = DomainKind::kNaturalLanguage;
  d.head = std::move(head);
  d.tail = std::move(tail);
  return d;
}

}  // namespace

std::vector<Domain> BuildMachineDomains() {
  std::vector<Domain> domains;

  // Machine-generated values come with realistic format variation (e.g.
  // zero-padded vs plain dates within the same column): a valid value that
  // breaks the column's *dominant* pattern is common in real data, which
  // is exactly what defeats naive dominant-pattern detectors.
  domains.push_back(MachineDomain("date_mdy", [](util::Rng& rng) {
    int m = static_cast<int>(rng.UniformInt(1, 12));
    int d = static_cast<int>(rng.UniformInt(1, 28));
    int y = static_cast<int>(rng.UniformInt(1995, 2025));
    char buf[16];
    if (rng.Bernoulli(0.25)) {
      std::snprintf(buf, sizeof(buf), "%02d/%02d/%04d", m, d, y);
    } else if (rng.Bernoulli(0.12)) {
      std::snprintf(buf, sizeof(buf), "%d/%d/%02d", m, d, y % 100);
    } else {
      std::snprintf(buf, sizeof(buf), "%d/%d/%04d", m, d, y);
    }
    return std::string(buf);
  }));

  domains.push_back(MachineDomain("date_iso", [](util::Rng& rng) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                  static_cast<int>(rng.UniformInt(1995, 2025)),
                  static_cast<int>(rng.UniformInt(1, 12)),
                  static_cast<int>(rng.UniformInt(1, 28)));
    return std::string(buf);
  }));

  domains.push_back(MachineDomain("time_hm", [](util::Rng& rng) {
    char buf[12];
    if (rng.Bernoulli(0.2)) {
      std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d",
                    static_cast<int>(rng.UniformInt(0, 23)),
                    static_cast<int>(rng.UniformInt(0, 59)),
                    static_cast<int>(rng.UniformInt(0, 59)));
    } else {
      std::snprintf(buf, sizeof(buf), "%02d:%02d",
                    static_cast<int>(rng.UniformInt(0, 23)),
                    static_cast<int>(rng.UniformInt(0, 59)));
    }
    return std::string(buf);
  }));

  domains.push_back(MachineDomain("datetime_iso", [](util::Rng& rng) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                  static_cast<int>(rng.UniformInt(1995, 2025)),
                  static_cast<int>(rng.UniformInt(1, 12)),
                  static_cast<int>(rng.UniformInt(1, 28)),
                  static_cast<int>(rng.UniformInt(0, 23)),
                  static_cast<int>(rng.UniformInt(0, 59)),
                  static_cast<int>(rng.UniformInt(0, 59)));
    return std::string(buf);
  }));

  domains.push_back(MachineDomain("url", [](util::Rng& rng) {
    std::string scheme = rng.Bernoulli(0.15) ? "http://" : "https://";
    std::string www = rng.Bernoulli(0.6) ? "www." : "";
    std::string host = NoSpace(rng.Pick(CompanyWords()));
    std::string tld = rng.Pick(Tlds());
    std::string out = scheme + www + host + "." + tld;
    if (!rng.Bernoulli(0.1)) {
      out += "/" + rng.Pick(UrlPathWords()) + "/" + Digits(rng, 8);
    }
    return out;
  }));

  domains.push_back(MachineDomain("email", [](util::Rng& rng) {
    std::string user = NoSpace(rng.Pick(CompanyWords()));
    return user + Digits(rng, 2) + "@" + NoSpace(rng.Pick(CompanyWords())) +
           "." + rng.Pick(Tlds());
  }));

  domains.push_back(MachineDomain("ipv4", [](util::Rng& rng) {
    return std::to_string(rng.UniformInt(1, 254)) + "." +
           std::to_string(rng.UniformInt(0, 255)) + "." +
           std::to_string(rng.UniformInt(0, 255)) + "." +
           std::to_string(rng.UniformInt(1, 254));
  }));

  domains.push_back(MachineDomain("uuid", [](util::Rng& rng) {
    const char* hex = "0123456789abcdef";
    std::string out;
    for (int block : {8, 4, 4, 4, 12}) {
      if (!out.empty()) out.push_back('-');
      for (int i = 0; i < block; ++i) {
        out.push_back(hex[rng.UniformInt(0, 15)]);
      }
    }
    return out;
  }));

  domains.push_back(MachineDomain("credit_card", [](util::Rng& rng) {
    std::string body = "4" + Digits(rng, 14);
    return body + std::to_string(LuhnCheckDigit(body));
  }));

  domains.push_back(MachineDomain("upc", [](util::Rng& rng) {
    std::string body = Digits(rng, 11);
    return body + std::to_string(UpcCheckDigit(body));
  }));

  domains.push_back(MachineDomain("isbn13", [](util::Rng& rng) {
    std::string body = "978" + Digits(rng, 9);
    return body + std::to_string(Isbn13CheckDigit(body));
  }));

  domains.push_back(MachineDomain("phone_us", [](util::Rng& rng) {
    int a = static_cast<int>(rng.UniformInt(201, 989));
    int b = static_cast<int>(rng.UniformInt(200, 999));
    int c = static_cast<int>(rng.UniformInt(0, 9999));
    char buf[20];
    if (rng.Bernoulli(0.25)) {
      std::snprintf(buf, sizeof(buf), "(%03d) %03d-%04d", a, b, c);
    } else {
      std::snprintf(buf, sizeof(buf), "%03d-%03d-%04d", a, b, c);
    }
    return std::string(buf);
  }));

  domains.push_back(MachineDomain("zip_code", [](util::Rng& rng) {
    return Digits(rng, 5);
  }));

  domains.push_back(MachineDomain("percent", [](util::Rng& rng) {
    char buf[16];
    double x = rng.UniformDouble(0.0, 100.0);
    switch (rng.UniformInt(0, 2)) {
      case 0:
        std::snprintf(buf, sizeof(buf), "%.0f%%", x);
        break;
      case 1:
        std::snprintf(buf, sizeof(buf), "%.1f%%", x);
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%.2f%%", x);
        break;
    }
    return std::string(buf);
  }));

  domains.push_back(MachineDomain("money_usd", [](util::Rng& rng) {
    int64_t whole = rng.UniformInt(1, 99999);
    std::string digits = std::to_string(whole);
    if (rng.Bernoulli(0.3) && digits.size() > 3) {
      digits.insert(digits.size() - 3, ",");  // thousands separator
    }
    std::string out = "$" + digits;
    if (rng.Bernoulli(0.3)) {
      out += "." + Digits(rng, 2);  // cents
    }
    return out;
  }));

  domains.push_back(MachineDomain("unit_oz", [](util::Rng& rng) {
    int whole = static_cast<int>(rng.UniformInt(1, 64));
    if (rng.Bernoulli(0.3)) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%d.%d oz", whole,
                    static_cast<int>(rng.UniformInt(0, 9)));
      return std::string(buf);
    }
    return std::to_string(whole) + " oz";
  }));

  domains.push_back(MachineDomain("fiscal_year", [](util::Rng& rng) {
    return "fy" + std::to_string(rng.UniformInt(10, 26));
  }));

  domains.push_back(MachineDomain("movie_id", [](util::Rng& rng) {
    return "tt" + Digits(rng, 7);
  }));

  domains.push_back(MachineDomain("contract_no", [](util::Rng& rng) {
    return "b" + std::to_string(rng.UniformInt(5, 6)) + "000" +
           Digits(rng, 4);
  }));

  domains.push_back(MachineDomain("order_num", [](util::Rng& rng) {
    return "num" + Digits(rng, 6);
  }));

  domains.push_back(MachineDomain("gene", [](util::Rng& rng) {
    if (rng.Bernoulli(0.25)) {
      // Clone-style ids like "RP11-6L6.2".
      return "RP" + std::to_string(rng.UniformInt(1, 13)) + "-" +
             Digits(rng, static_cast<int>(rng.UniformInt(1, 3))) +
             std::string(1, static_cast<char>('A' + rng.UniformInt(0, 25))) +
             Digits(rng, 1) + "." + Digits(rng, 1);
    }
    std::string sym;
    int letters = static_cast<int>(rng.UniformInt(3, 6));
    for (int i = 0; i < letters; ++i) {
      sym.push_back(static_cast<char>('A' + rng.UniformInt(0, 25)));
    }
    return sym + Digits(rng, static_cast<int>(rng.UniformInt(0, 2)));
  }));

  domains.push_back(MachineDomain("web_domain", [](util::Rng& rng) {
    return NoSpace(rng.Pick(CompanyWords())) + "." + rng.Pick(Tlds());
  }));

  domains.push_back(MachineDomain("article_number", [](util::Rng& rng) {
    std::string out = std::to_string(rng.UniformInt(1, 9));
    for (int i = 0; i < 4; ++i) {
      out += "-" + Digits(rng, 2);
    }
    out += "-";
    for (int i = 0; i < 3; ++i) {
      out.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
    }
    return out;
  }));

  domains.push_back(MachineDomain("sample_count", [](util::Rng& rng) {
    return std::to_string(rng.UniformInt(0, 500)) + " patients";
  }));

  domains.push_back(MachineDomain("duration_min", [](util::Rng& rng) {
    return std::to_string(rng.UniformInt(60, 220)) + " min";
  }));

  domains.push_back(MachineDomain("hex_color", [](util::Rng& rng) {
    const char* hex = "0123456789abcdef";
    std::string out = "#";
    for (int i = 0; i < 6; ++i) out.push_back(hex[rng.UniformInt(0, 15)]);
    return out;
  }));

  domains.push_back(MachineDomain("mac_address", [](util::Rng& rng) {
    const char* hex = "0123456789abcdef";
    std::string out;
    for (int b = 0; b < 6; ++b) {
      if (b > 0) out.push_back(':');
      out.push_back(hex[rng.UniformInt(0, 15)]);
      out.push_back(hex[rng.UniformInt(0, 15)]);
    }
    return out;
  }));

  domains.push_back(MachineDomain("product_code", [](util::Rng& rng) {
    std::string out;
    for (int i = 0; i < 3; ++i) {
      out.push_back(static_cast<char>('A' + rng.UniformInt(0, 25)));
    }
    return out + "-" + Digits(rng, 4);
  }));

  // Closed, semi-structured domains (Figure 3 of the paper): the last
  // members intentionally break the dominant pattern but are valid.
  domains.push_back(ClosedDomain(
      "age_range",
      Vec({"16-18", "19-24", "25-29", "30-34", "35-54", "55-64"}),
      Vec({"65 & above", "under 16"})));

  domains.push_back(ClosedDomain(
      "pay_range",
      Vec({"$50-100k", "$100-200k", "$200-300k", "$300-500k", "$500-700k",
           "$700-900k"}),
      Vec({"less than $50k", "more than $900k"})));

  domains.push_back(ClosedDomain(
      "clothing_size",
      Vec({"xs", "s", "m", "l", "xl", "xxl"}),
      Vec({"one size", "3xl"})));

  return domains;
}

}  // namespace autotest::datagen
