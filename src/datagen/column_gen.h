#ifndef AUTOTEST_DATAGEN_COLUMN_GEN_H_
#define AUTOTEST_DATAGEN_COLUMN_GEN_H_

#include <cstddef>

#include "datagen/gazetteer.h"
#include "table/column.h"
#include "util/rng.h"

namespace autotest::datagen {

/// Controls how a synthetic column is drawn from a domain.
struct ColumnGenOptions {
  size_t min_values = 20;
  size_t max_values = 200;
  /// Draw the column length log-uniformly between min and max (real table
  /// corpora are dominated by short columns with a long tail of big ones).
  bool log_uniform_length = true;
  /// Probability that an NL draw comes from the domain's tail (rare valid
  /// values). Real columns mix common and uncommon members.
  double tail_fraction = 0.12;
  /// For NL domains: number of distinct values drawn into the column's
  /// working pool, as a fraction of the requested length (values repeat).
  double distinct_fraction = 0.6;
};

/// Generates one column of values from the given domain. Machine domains
/// produce fresh generator values; NL domains sample head/tail members.
/// The column name is the domain name plus a deterministic suffix.
table::Column GenerateColumn(const Domain& domain,
                             const ColumnGenOptions& options, util::Rng& rng);

}  // namespace autotest::datagen

#endif  // AUTOTEST_DATAGEN_COLUMN_GEN_H_
