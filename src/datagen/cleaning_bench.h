#ifndef AUTOTEST_DATAGEN_CLEANING_BENCH_H_
#define AUTOTEST_DATAGEN_CLEANING_BENCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/table.h"

namespace autotest::datagen {

/// One erroneous cell in a cleaning dataset.
struct CleaningCell {
  size_t column_index = 0;
  size_t row = 0;
  std::string dirty_value;
  std::string clean_value;
  /// Whether this error is labeled in the dataset's "existing ground
  /// truth". Errors with in_ground_truth == false are the paper's Table-11
  /// cases: real errors that the benchmark's own labels miss, which make a
  /// strict precision evaluation under-estimate the true precision.
  bool in_ground_truth = true;
};

/// A mini version of one of the nine data-cleaning benchmark datasets
/// (adults, beers, flights, food, hospital, movies, rayyan, soccer, tax)
/// used in the paper's Section 6.7.
struct CleaningDataset {
  std::string name;
  table::Table data;  // dirty table (errors already applied)
  std::vector<CleaningCell> errors;
  /// Column indices covered by the dataset's pre-existing expert
  /// constraints (FDs etc.), per the paper's Table 9 "cols covered by
  /// existing ground-truth" row.
  std::vector<size_t> columns_with_existing_constraints;

  size_t NumCategoricalColumns() const { return data.columns.size(); }
};

/// Builds all nine datasets deterministically.
std::vector<CleaningDataset> BuildCleaningDatasets(uint64_t seed = 4242);

}  // namespace autotest::datagen

#endif  // AUTOTEST_DATAGEN_CLEANING_BENCH_H_
