#include "datagen/corpus_gen.h"

#include "datagen/column_gen.h"
#include "datagen/error_injector.h"
#include "datagen/gazetteer.h"

namespace autotest::datagen {

CorpusProfile RelationalTablesProfile(size_t num_columns, uint64_t seed) {
  CorpusProfile p;
  p.name = "relational-tables";
  p.num_columns = num_columns;
  p.min_values = 12;
  p.max_values = 400;
  p.dirty_column_rate = 0.02;
  p.tail_fraction = 0.10;
  p.machine_fraction = 0.50;
  p.seed = seed;
  return p;
}

CorpusProfile SpreadsheetTablesProfile(size_t num_columns, uint64_t seed) {
  CorpusProfile p;
  p.name = "spreadsheet-tables";
  p.num_columns = num_columns;
  p.min_values = 8;
  p.max_values = 80;
  p.dirty_column_rate = 0.06;  // human-made spreadsheets are noisier
  p.tail_fraction = 0.15;
  p.machine_fraction = 0.35;
  p.seed = seed;
  return p;
}

CorpusProfile TablibProfile(size_t num_columns, uint64_t seed) {
  CorpusProfile p;
  p.name = "tablib";
  p.num_columns = num_columns;
  p.min_values = 10;
  p.max_values = 200;
  p.dirty_column_rate = 0.03;
  p.tail_fraction = 0.12;
  p.machine_fraction = 0.45;
  p.seed = seed;
  return p;
}

table::Corpus GenerateCorpus(const CorpusProfile& profile) {
  const Gazetteer& gaz = Gazetteer::Instance();
  util::Rng rng(profile.seed);

  std::vector<size_t> nl_indices;
  std::vector<size_t> machine_indices;
  for (size_t i = 0; i < gaz.domains().size(); ++i) {
    if (gaz.domains()[i].kind == DomainKind::kNaturalLanguage) {
      nl_indices.push_back(i);
    } else {
      machine_indices.push_back(i);
    }
  }

  ColumnGenOptions options;
  options.min_values = profile.min_values;
  options.max_values = profile.max_values;
  options.tail_fraction = profile.tail_fraction;

  table::Corpus corpus;
  corpus.reserve(profile.num_columns);
  for (size_t i = 0; i < profile.num_columns; ++i) {
    bool machine = rng.Bernoulli(profile.machine_fraction);
    const auto& pool = machine ? machine_indices : nl_indices;
    const Domain& domain = gaz.domains()[rng.Pick(pool)];
    table::Column col = GenerateColumn(domain, options, rng);
    if (rng.Bernoulli(profile.dirty_column_rate)) {
      InjectError(&col, SampleErrorType(rng), gaz, domain.name, rng);
    }
    corpus.push_back(std::move(col));
  }
  return corpus;
}

}  // namespace autotest::datagen
