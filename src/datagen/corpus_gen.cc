#include "datagen/corpus_gen.h"

#include "datagen/column_gen.h"
#include "datagen/error_injector.h"
#include "datagen/gazetteer.h"
#include "util/hashing.h"
#include "util/metrics.h"

namespace autotest::datagen {

CorpusProfile RelationalTablesProfile(size_t num_columns, uint64_t seed) {
  CorpusProfile p;
  p.name = "relational-tables";
  p.num_columns = num_columns;
  p.min_values = 12;
  p.max_values = 400;
  p.dirty_column_rate = 0.02;
  p.tail_fraction = 0.10;
  p.machine_fraction = 0.50;
  p.seed = seed;
  return p;
}

CorpusProfile SpreadsheetTablesProfile(size_t num_columns, uint64_t seed) {
  CorpusProfile p;
  p.name = "spreadsheet-tables";
  p.num_columns = num_columns;
  p.min_values = 8;
  p.max_values = 80;
  p.dirty_column_rate = 0.06;  // human-made spreadsheets are noisier
  p.tail_fraction = 0.15;
  p.machine_fraction = 0.35;
  p.seed = seed;
  return p;
}

CorpusProfile TablibProfile(size_t num_columns, uint64_t seed) {
  CorpusProfile p;
  p.name = "tablib";
  p.num_columns = num_columns;
  p.min_values = 10;
  p.max_values = 200;
  p.dirty_column_rate = 0.03;
  p.tail_fraction = 0.12;
  p.machine_fraction = 0.45;
  p.seed = seed;
  return p;
}

table::Corpus GenerateCorpus(const CorpusProfile& profile) {
  const Gazetteer& gaz = Gazetteer::Instance();
  util::Rng rng(profile.seed);

  std::vector<size_t> nl_indices;
  std::vector<size_t> machine_indices;
  for (size_t i = 0; i < gaz.domains().size(); ++i) {
    if (gaz.domains()[i].kind == DomainKind::kNaturalLanguage) {
      nl_indices.push_back(i);
    } else {
      machine_indices.push_back(i);
    }
  }

  ColumnGenOptions options;
  options.min_values = profile.min_values;
  options.max_values = profile.max_values;
  options.tail_fraction = profile.tail_fraction;

  table::Corpus corpus;
  corpus.reserve(profile.num_columns);
  for (size_t i = 0; i < profile.num_columns; ++i) {
    bool machine = rng.Bernoulli(profile.machine_fraction);
    const auto& pool = machine ? machine_indices : nl_indices;
    const Domain& domain = gaz.domains()[rng.Pick(pool)];
    table::Column col = GenerateColumn(domain, options, rng);
    if (rng.Bernoulli(profile.dirty_column_rate)) {
      InjectError(&col, SampleErrorType(rng), gaz, domain.name, rng);
    }
    corpus.push_back(std::move(col));
  }
  metrics::Registry::Global()
      .GetCounter(metrics::kMDatagenColumnsGenerated)
      .Increment(corpus.size());
  return corpus;
}

CorpusProfile ShardProfile(const CorpusProfile& profile, size_t shard,
                           size_t num_shards) {
  if (num_shards <= 1) return profile;
  CorpusProfile shard_profile = profile;
  const size_t base = profile.num_columns / num_shards;
  const size_t rem = profile.num_columns % num_shards;
  shard_profile.num_columns = base + (shard < rem ? 1 : 0);
  shard_profile.seed = util::SplitMix64(
      profile.seed ^ ((shard + 1) * 0x9e3779b97f4a7c15ULL));
  shard_profile.name = profile.name + ".shard" + std::to_string(shard);
  return shard_profile;
}

util::Result<table::Corpus> TryGenerateCorpusSharded(
    const CorpusProfile& profile, size_t num_shards,
    const table::ShardLoadOptions& options, table::ShardLoadReport* report,
    const std::vector<size_t>& include_shard) {
  if (num_shards == 0) {
    return util::InvalidArgumentError("num_shards must be positive");
  }
  // The effective shard list: all of them, or the caller's mask (original
  // indices, so a shard's seed — and therefore its bytes — is identical
  // whether or not its siblings are loaded).
  std::vector<size_t> shards = include_shard;
  if (shards.empty()) {
    shards.resize(num_shards);
    for (size_t i = 0; i < num_shards; ++i) shards[i] = i;
  }
  for (size_t shard : shards) {
    if (shard >= num_shards) {
      return util::InvalidArgumentError(
          "shard index " + std::to_string(shard) + " out of range (have " +
          std::to_string(num_shards) + " shards)");
    }
  }
  std::function<util::Result<table::Corpus>(size_t)> load_shard =
      [&](size_t slot) -> util::Result<table::Corpus> {
    return GenerateCorpus(ShardProfile(profile, shards[slot], num_shards));
  };
  AT_ASSIGN_OR_RETURN(
      auto loaded, table::LoadShards(shards.size(), load_shard, options,
                                     report));
  metrics::Registry::Global()
      .GetCounter(metrics::kMDatagenShardsGenerated)
      .Increment(loaded.size());
  table::Corpus corpus;
  for (table::Corpus& shard_corpus : loaded) {
    for (table::Column& column : shard_corpus) {
      corpus.push_back(std::move(column));
    }
  }
  return corpus;
}

}  // namespace autotest::datagen
