#include "datagen/error_injector.h"

#include <cctype>

#include "util/check.h"
#include "util/string_util.h"

namespace autotest::datagen {

namespace {

const std::vector<std::string>& Placeholders() {
  static const auto& xs = *new std::vector<std::string>{
      "n/a",        "nan",       "null",       "empty",     "unknown",
      "-",          "tbd",       "see note",   "missing",   "#ref!",
      "#value!",    "none",      "fy definition", "new facility",
      "sample_size", "dummy_type", "pending",  "deleted",   "test",
      "na"};
  return xs;
}

char RandomLetter(util::Rng& rng) {
  return static_cast<char>('a' + rng.UniformInt(0, 25));
}

}  // namespace

std::string MakeTypo(const std::string& value, util::Rng& rng) {
  AT_CHECK(!value.empty());
  for (int attempt = 0; attempt < 20; ++attempt) {
    std::string out = value;
    size_t i = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
    switch (rng.UniformInt(0, 3)) {
      case 0:  // delete
        if (out.size() > 1) out.erase(i, 1);
        break;
      case 1:  // swap adjacent
        if (i + 1 < out.size()) std::swap(out[i], out[i + 1]);
        break;
      case 2:  // duplicate
        out.insert(out.begin() + static_cast<ptrdiff_t>(i), out[i]);
        break;
      default: {  // substitute
        char c = RandomLetter(rng);
        if (std::isupper(static_cast<unsigned char>(out[i]))) {
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
        out[i] = c;
        break;
      }
    }
    if (out != value && !out.empty()) return out;
  }
  return value + "x";  // deterministic fallback corruption
}

std::string MakePlaceholder(util::Rng& rng) {
  return rng.Pick(Placeholders());
}

std::string MakeFormatAnomaly(const std::string& value, util::Rng& rng) {
  std::string out = value;
  if (util::DigitRatio(value) > 0.3) {
    // Damage a separator or turn a digit into a letter: machine-format
    // values become syntactically malformed.
    for (int attempt = 0; attempt < 20; ++attempt) {
      std::string candidate = value;
      size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(candidate.size()) - 1));
      if (std::isdigit(static_cast<unsigned char>(candidate[i]))) {
        candidate[i] = RandomLetter(rng);
      } else {
        candidate.erase(i, 1);
      }
      if (candidate != value && !candidate.empty()) return candidate;
    }
  }
  // Text values: casing flip or space damage.
  if (rng.Bernoulli(0.5)) {
    for (char& c : out) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    if (out != value) return out;
  }
  std::string squashed;
  for (char c : value) {
    if (c != ' ') squashed.push_back(c);
  }
  if (!squashed.empty() && squashed != value) return squashed;
  return MakeTypo(value, rng);
}

std::string MakeIncompatible(const Gazetteer& gazetteer,
                             const std::string& own_domain, util::Rng& rng) {
  const auto& domains = gazetteer.domains();
  AT_CHECK(domains.size() > 1);
  for (int attempt = 0; attempt < 50; ++attempt) {
    const Domain& d = domains[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(domains.size()) - 1))];
    if (d.name == own_domain) continue;
    std::string v =
        d.has_generator() ? d.generator(rng) : rng.Pick(d.head);
    // Avoid values that happen to be valid in the column's own domain
    // (e.g. "may" is both a month and a name).
    if (!own_domain.empty() && gazetteer.Contains(own_domain, v)) continue;
    return v;
  }
  return "zzqx-9917";  // deterministic fallback, valid nowhere
}

ErrorType SampleErrorType(util::Rng& rng) {
  double x = rng.UniformDouble();
  if (x < 0.40) return ErrorType::kTypo;
  if (x < 0.70) return ErrorType::kIncompatible;
  if (x < 0.92) return ErrorType::kPlaceholder;
  return ErrorType::kFormat;
}

std::optional<InjectedError> InjectError(table::Column* column,
                                         ErrorType type,
                                         const Gazetteer& gazetteer,
                                         const std::string& own_domain,
                                         util::Rng& rng) {
  if (column == nullptr || column->values.empty()) return std::nullopt;
  size_t row = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(column->values.size()) - 1));
  InjectedError err;
  err.row = row;
  err.original = column->values[row];
  err.type = type;
  switch (type) {
    case ErrorType::kTypo:
      if (err.original.empty()) return std::nullopt;
      err.corrupted = MakeTypo(err.original, rng);
      break;
    case ErrorType::kIncompatible:
      err.corrupted = MakeIncompatible(gazetteer, own_domain, rng);
      break;
    case ErrorType::kPlaceholder:
      err.corrupted = MakePlaceholder(rng);
      break;
    case ErrorType::kFormat:
      if (err.original.empty()) return std::nullopt;
      err.corrupted = MakeFormatAnomaly(err.original, rng);
      break;
  }
  if (err.corrupted == err.original) return std::nullopt;
  // A corruption that is still a valid member of the column's own domain is
  // not an error; skip it rather than poison the ground truth.
  if (!own_domain.empty() && gazetteer.Contains(own_domain, err.corrupted)) {
    return std::nullopt;
  }
  column->values[row] = err.corrupted;
  return err;
}

}  // namespace autotest::datagen
