// Second batch of machine-generated domains: software artifacts, logistics
// ids, finance codes and geo coordinates. Same conventions as
// gazetteer_machine.cc (generators emit realistic format variation).

#include <cstdio>
#include <string>

#include "datagen/gazetteer.h"
#include "util/hashing.h"

namespace autotest::datagen {

namespace {

std::string Digits(util::Rng& rng, int n) {
  std::string out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('0' + rng.UniformInt(0, 9)));
  }
  return out;
}

std::string UpperLetters(util::Rng& rng, int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('A' + rng.UniformInt(0, 25)));
  }
  return out;
}

// mod-97 remainder of a (possibly long) digit string.
int Mod97(const std::string& digits) {
  int rem = 0;
  for (char c : digits) {
    rem = (rem * 10 + (c - '0')) % 97;
  }
  return rem;
}

Domain MachineDomain(const char* name, ValueGenerator gen) {
  Domain d;
  d.name = name;
  d.kind = DomainKind::kMachineGenerated;
  d.generator = std::move(gen);
  util::Rng rng(util::Fnv64Seeded(name, 0xfeedULL));
  d.head.reserve(200);
  for (int i = 0; i < 200; ++i) d.head.push_back(d.generator(rng));
  return d;
}

}  // namespace

std::string MakeValidIban(util::Rng& rng) {
  // German-style IBAN: DE + check digits + 18-digit BBAN, with valid
  // ISO-7064 mod-97 check digits.
  std::string bban = Digits(rng, 18);
  // Rearrange: BBAN + "DE00" with letters mapped (D=13, E=14).
  std::string numeric = bban + "131400";
  int check = 98 - Mod97(numeric);
  char buf[4];
  std::snprintf(buf, sizeof(buf), "%02d", check);
  return "DE" + std::string(buf) + bban;
}

std::vector<Domain> BuildMachineDomains2() {
  std::vector<Domain> domains;

  domains.push_back(MachineDomain("version_number", [](util::Rng& rng) {
    std::string out;
    if (rng.Bernoulli(0.3)) out = "v";
    out += std::to_string(rng.UniformInt(0, 12)) + "." +
           std::to_string(rng.UniformInt(0, 20));
    if (rng.Bernoulli(0.7)) {
      out += "." + std::to_string(rng.UniformInt(0, 40));
    }
    return out;
  }));

  domains.push_back(MachineDomain("file_size", [](util::Rng& rng) {
    const char* units[] = {"KB", "MB", "GB"};
    const char* unit = units[rng.UniformInt(0, 2)];
    if (rng.Bernoulli(0.5)) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%.1f %s",
                    rng.UniformDouble(0.1, 900.0), unit);
      return std::string(buf);
    }
    return std::to_string(rng.UniformInt(1, 900)) + " " +
           std::string(unit);
  }));

  domains.push_back(MachineDomain("lat_lon", [](util::Rng& rng) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f,%.4f",
                  rng.UniformDouble(-90.0, 90.0),
                  rng.UniformDouble(-180.0, 180.0));
    return std::string(buf);
  }));

  domains.push_back(MachineDomain("date_dmy_dots", [](util::Rng& rng) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%02d.%02d.%04d",
                  static_cast<int>(rng.UniformInt(1, 28)),
                  static_cast<int>(rng.UniformInt(1, 12)),
                  static_cast<int>(rng.UniformInt(1995, 2025)));
    return std::string(buf);
  }));

  domains.push_back(MachineDomain("iban", [](util::Rng& rng) {
    return MakeValidIban(rng);
  }));

  domains.push_back(MachineDomain("tracking_number", [](util::Rng& rng) {
    // UPS-style 1Z tracking ids.
    return "1Z" + UpperLetters(rng, 3) + Digits(rng, 11);
  }));

  domains.push_back(MachineDomain("sku", [](util::Rng& rng) {
    return "SKU-" + Digits(rng, static_cast<int>(rng.UniformInt(5, 7)));
  }));

  domains.push_back(MachineDomain("ticket_id", [](util::Rng& rng) {
    const char* projects[] = {"ENG", "OPS", "DATA", "WEB", "INFRA", "QA"};
    return std::string(projects[rng.UniformInt(0, 5)]) + "-" +
           Digits(rng, static_cast<int>(rng.UniformInt(3, 5)));
  }));

  domains.push_back(MachineDomain("invoice_no", [](util::Rng& rng) {
    return "INV/" + std::to_string(rng.UniformInt(2015, 2025)) + "/" +
           Digits(rng, 5);
  }));

  domains.push_back(MachineDomain("rating", [](util::Rng& rng) {
    if (rng.Bernoulli(0.5)) {
      char buf[12];
      std::snprintf(buf, sizeof(buf), "%.1f/5",
                    rng.UniformDouble(1.0, 5.0));
      return std::string(buf);
    }
    return std::to_string(rng.UniformInt(1, 5)) + "/5";
  }));

  domains.push_back(MachineDomain("percent_change", [](util::Rng& rng) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%+.1f%%",
                  rng.UniformDouble(-20.0, 20.0));
    return std::string(buf);
  }));

  domains.push_back(MachineDomain("season_year", [](util::Rng& rng) {
    int y = static_cast<int>(rng.UniformInt(1990, 2024));
    char buf[12];
    std::snprintf(buf, sizeof(buf), "%d-%02d", y, (y + 1) % 100);
    return std::string(buf);
  }));

  domains.push_back(MachineDomain("file_path", [](util::Rng& rng) {
    const char* dirs[] = {"usr", "var", "home", "opt", "etc", "data"};
    const char* files[] = {"report", "config", "data", "index", "main",
                           "readme"};
    const char* exts[] = {"txt", "csv", "json", "log", "cfg", "md"};
    std::string out = "/";
    int depth = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < depth; ++i) {
      out += std::string(dirs[rng.UniformInt(0, 5)]) + "/";
    }
    out += std::string(files[rng.UniformInt(0, 5)]) + "." +
           exts[rng.UniformInt(0, 5)];
    return out;
  }));

  domains.push_back(MachineDomain("user_handle", [](util::Rng& rng) {
    const char* stems[] = {"data", "sky", "blue", "fast", "tech", "cloud",
                           "pixel", "nova", "echo", "lumen"};
    return "@" + std::string(stems[rng.UniformInt(0, 9)]) +
           std::string(stems[rng.UniformInt(0, 9)]) + Digits(rng, 2);
  }));

  domains.push_back(MachineDomain("hashtag", [](util::Rng& rng) {
    const char* stems[] = {"data",   "monday", "travel", "foodie",
                           "fitness", "news",  "music",  "art",
                           "science", "nature"};
    std::string out = "#" + std::string(stems[rng.UniformInt(0, 9)]);
    if (rng.Bernoulli(0.3)) out += std::string(stems[rng.UniformInt(0, 9)]);
    return out;
  }));

  return domains;
}

}  // namespace autotest::datagen
