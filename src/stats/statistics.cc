#include "stats/statistics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace autotest::stats {

double ContingencyTable::TriggerRateCovered() const {
  int64_t c = covered();
  return c == 0 ? 0.0
               : static_cast<double>(covered_triggered) /
                     static_cast<double>(c);
}

double ContingencyTable::TriggerRateUncovered() const {
  int64_t u = uncovered();
  return u == 0 ? 0.0
               : static_cast<double>(uncovered_triggered) /
                     static_cast<double>(u);
}

double CohensH(double p1, double p2) {
  AT_CHECK(p1 >= 0.0 && p1 <= 1.0);
  AT_CHECK(p2 >= 0.0 && p2 <= 1.0);
  return 2.0 * (std::asin(std::sqrt(p1)) - std::asin(std::sqrt(p2)));
}

double CohensH(const ContingencyTable& table) {
  return CohensH(table.TriggerRateUncovered(), table.TriggerRateCovered());
}

double ChiSquaredStatistic(const ContingencyTable& table) {
  double a = static_cast<double>(table.covered_triggered);
  double b = static_cast<double>(table.uncovered_triggered);
  double c = static_cast<double>(table.covered_not_triggered);
  double d = static_cast<double>(table.uncovered_not_triggered);
  double n = a + b + c + d;
  double r1 = a + b;  // triggered row
  double r2 = c + d;  // not-triggered row
  double c1 = a + c;  // covered col
  double c2 = b + d;  // uncovered col
  if (n == 0 || r1 == 0 || r2 == 0 || c1 == 0 || c2 == 0) return 0.0;
  double det = a * d - b * c;
  return n * det * det / (r1 * r2 * c1 * c2);
}

double ChiSquaredPValue1Dof(double statistic) {
  if (statistic <= 0.0) return 1.0;
  return std::erfc(std::sqrt(statistic / 2.0));
}

double ChiSquaredTestPValue(const ContingencyTable& table) {
  return ChiSquaredPValue1Dof(ChiSquaredStatistic(table));
}

double WilsonLowerBound(int64_t successes, int64_t trials, double z) {
  if (trials <= 0) return 0.0;
  AT_CHECK(successes >= 0 && successes <= trials);
  double n = static_cast<double>(trials);
  double ns = static_cast<double>(successes);
  double nf = n - ns;
  double z2 = z * z;
  double center = (ns + 0.5 * z2) / (n + z2);
  double margin = (z / (n + z2)) * std::sqrt(ns * nf / n + z2 / 4.0);
  double lo = center - margin;
  return std::clamp(lo, 0.0, 1.0);
}

double SdcConfidence(const ContingencyTable& table, double z) {
  // Paper Eq. 9: c = 1 - Wilson-upper-bound of the false-trigger rate,
  // which equals the Wilson lower bound of the non-trigger rate.
  return WilsonLowerBound(table.covered_not_triggered, table.covered(), z);
}

double SdcConfidenceUpperBound(int64_t covered, double z) {
  if (covered <= 0) return 0.0;
  double z2 = z * z;
  return 1.0 - z2 / (static_cast<double>(covered) + z2);
}

int64_t MinCoverageForConfidence(double threshold, double z) {
  AT_CHECK(threshold >= 0.0 && threshold < 1.0);
  // 1 - z^2/(n + z^2) >= t  <=>  n >= z^2 * t / (1 - t).
  double z2 = z * z;
  double n = z2 * threshold / (1.0 - threshold);
  return static_cast<int64_t>(std::ceil(n));
}

Moments ComputeMoments(const std::vector<double>& xs) {
  Moments m;
  if (xs.empty()) return m;
  double sum = 0.0;
  for (double x : xs) sum += x;
  m.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - m.mean) * (x - m.mean);
  var /= static_cast<double>(xs.size());
  m.stddev = std::sqrt(var);
  return m;
}

std::vector<double> ZScores(const std::vector<double>& xs) {
  Moments m = ComputeMoments(xs);
  std::vector<double> out(xs.size(), 0.0);
  if (m.stddev == 0.0) return out;
  for (size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - m.mean) / m.stddev;
  return out;
}

double Quantile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  AT_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(xs.begin(), xs.end());
  double pos = p * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace autotest::stats
