#ifndef AUTOTEST_STATS_STATISTICS_H_
#define AUTOTEST_STATS_STATISTICS_H_

#include <cstdint>
#include <vector>

namespace autotest::stats {

/// 2x2 contingency table over corpus columns for one SDC candidate
/// (paper Table 2). "Covered" = pre-condition holds; "triggered" =
/// post-condition produced detections.
struct ContingencyTable {
  int64_t covered_triggered = 0;        // |C_{C,T}|
  int64_t covered_not_triggered = 0;    // |C_{C,notT}|
  int64_t uncovered_triggered = 0;      // |C_{notC,T}|
  int64_t uncovered_not_triggered = 0;  // |C_{notC,notT}|

  int64_t covered() const { return covered_triggered + covered_not_triggered; }
  int64_t uncovered() const {
    return uncovered_triggered + uncovered_not_triggered;
  }
  int64_t total() const { return covered() + uncovered(); }

  /// rho(r) = covered_triggered / covered (0 if nothing covered).
  double TriggerRateCovered() const;
  /// rho-bar(r) = uncovered_triggered / uncovered (0 if nothing uncovered).
  double TriggerRateUncovered() const;
};

/// Cohen's h effect size between two proportions (paper Eq. 8):
///   h = 2 (arcsin sqrt(p1) - arcsin sqrt(p2)).
/// Sign convention: positive when p1 > p2. The paper compares
/// |h(rho, rho-bar)| against a large-effect threshold of 0.8.
double CohensH(double p1, double p2);

/// Cohen's h for a contingency table: h(rho-bar, rho) — large positive
/// values mean the rule triggers much less often on covered (in-domain)
/// columns than on the out-of-domain background, i.e., a clean separation.
double CohensH(const ContingencyTable& table);

/// Pearson chi-squared statistic for a 2x2 contingency table (no Yates
/// correction). Returns 0 when any marginal is 0.
double ChiSquaredStatistic(const ContingencyTable& table);

/// Upper-tail p-value of the chi-squared distribution with 1 degree of
/// freedom: P(X >= x) = erfc(sqrt(x/2)).
double ChiSquaredPValue1Dof(double statistic);

/// Chi-squared independence test p-value for a 2x2 table.
double ChiSquaredTestPValue(const ContingencyTable& table);

/// Lower bound of the Wilson score interval for a binomial proportion with
/// `successes` successes out of `trials` trials, at normal quantile z.
/// Returns 0 for trials == 0.
double WilsonLowerBound(int64_t successes, int64_t trials, double z);

/// The paper's confidence estimate (Eq. 9): a "safe" lower bound on the
/// probability that a covered column is NOT falsely triggered, i.e., the
/// Wilson lower bound of (covered_not_triggered / covered) with z = 1.65
/// by default.
double SdcConfidence(const ContingencyTable& table, double z = 1.65);

/// Confidence upper bound when assuming zero false triggers (Appendix B,
/// Eq. 19): ub = 1 - z^2 / (covered + z^2).
double SdcConfidenceUpperBound(int64_t covered, double z = 1.65);

/// Minimum number of covered columns required for the confidence upper
/// bound to reach `threshold` (Appendix B.1 pruning).
int64_t MinCoverageForConfidence(double threshold, double z = 1.65);

/// Descriptive statistics of a sample.
struct Moments {
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
};
Moments ComputeMoments(const std::vector<double>& xs);

/// Z-scores of a sample ((x - mean) / stddev); all zeros if stddev == 0.
std::vector<double> ZScores(const std::vector<double>& xs);

/// p-quantile (0 <= p <= 1) of a sample by linear interpolation on the
/// sorted values. Returns 0 for an empty sample.
double Quantile(std::vector<double> xs, double p);

}  // namespace autotest::stats

#endif  // AUTOTEST_STATS_STATISTICS_H_
