#ifndef AUTOTEST_CORE_TRAINER_H_
#define AUTOTEST_CORE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "core/sdc.h"
#include "table/table.h"
#include "typedet/eval_functions.h"

namespace autotest::core {

/// Offline-training options (paper Sections 5.1-5.2).
struct TrainOptions {
  /// Matching-percentage grid (descending), step 0.05 like the paper.
  std::vector<double> m_grid = {1.0, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7};
  /// Inner/outer thresholds as fractions of each evaluation function's
  /// max_distance (binary families collapse to a single pair).
  std::vector<double> d_in_fracs = {0.05, 0.1, 0.15, 0.2, 0.25, 0.3,
                                    0.35, 0.4};
  std::vector<double> d_out_fracs = {0.5,  0.55, 0.6,  0.65, 0.7,
                                     0.75, 0.8,  0.85, 0.9,  0.95};

  /// Statistical-test thresholds (Section 5.2).
  double h_threshold = 0.8;   // Cohen's h "large effect"
  double p_threshold = 0.05;  // chi-squared significance
  /// Minimal calibrated confidence to keep a candidate. Also implies a
  /// coverage floor via the Appendix-B.1 bound (the paper's worked example
  /// uses c_thres = 0.9); low values would let statistically meaningless
  /// micro-coverage candidates through.
  double min_confidence = 0.8;
  double wilson_z = 1.65;
  /// "Natural separation" screen (operationalizing the paper's Figure 6):
  /// a good inner ball splits corpus columns bimodally — a column is either
  /// mostly inside (in-domain) or mostly outside. Candidates for which more
  /// than `max_middle_band_fraction` of columns have an inner-ball fraction
  /// in the ambiguous middle band [m/2, m) are rejected. This is what
  /// rejects adversarial random-hash functions, whose inner-ball fractions
  /// smear binomially instead of separating.
  bool use_separation_test = true;
  double max_middle_band_fraction = 0.05;
  /// Corpus columns with fewer distinct values are excluded from training
  /// statistics: a near-constant column is trivially "covered" by any
  /// random partition of the value space and carries no evidence (see the
  /// paper's Appendix A on short/low-distinct columns hindering learning).
  size_t min_distinct_values = 5;
  /// Drop candidates whose estimated recall is zero (empty D(r)): they can
  /// never contribute to the recall-maximization objective of Definition 3
  /// and carry no evidence of detecting anything.
  bool drop_zero_recall = true;

  /// Ablation switches (paper Table 8 / Figures 20-21).
  bool use_wilson = true;       // false -> raw ratio confidence estimate
  bool use_cohens_h = true;     // false -> skip effect-size test
  bool use_chi_squared = true;  // false -> skip significance test

  /// Appendix B.1 pruning: skip statistical evaluation of candidates whose
  /// coverage cannot reach min_confidence.
  bool enable_pruning = true;

  /// Synthetic columns for distant-supervision recall estimation
  /// (Section 5.3).
  size_t synthetic_count = 800;

  uint64_t seed = 77;
  size_t num_threads = 0;  // 0 = hardware concurrency

  /// Columnar training path (DESIGN.md §4k): intern all distinct corpus
  /// values into a shared arena-backed pool and score each evaluation
  /// function once per distinct value via BatchDistance, instead of one
  /// profile (and one virtual call per value) per column. Byte-identical
  /// models to the scalar path; `false` keeps the legacy per-column
  /// profiles as the differential reference.
  bool use_columnar = true;
  /// Values handed to DomainEvalFunction::BatchDistance per call on the
  /// columnar path. Large enough to amortize the per-call cache pass,
  /// small enough that a block's distances stay in L1/L2.
  size_t eval_batch_size = 256;

  /// In-memory retry budget for a family whose evaluation pass hits a
  /// transient injected fault (failpoint "trainer.eval" with a retryable
  /// code). Evaluation is pure CPU work, so retries are immediate — no
  /// backoff or sleeping — and the retry decision is keyed on the family
  /// index, independent of pool scheduling. Permanent codes, or exhausting
  /// the budget, degrade to skipping the family (evals_skipped).
  size_t eval_retry_attempts = 3;
};

/// One synthetic error column C(v_e) = C union {v_e} (Section 5.3).
struct SyntheticColumn {
  uint32_t base_column = 0;
  std::string error_value;
};

/// Builds the synthetic corpus: count columns, each pairing a random base
/// column with an alien value from a different column.
std::vector<SyntheticColumn> BuildSyntheticCorpus(const table::Corpus& corpus,
                                                  size_t count,
                                                  uint64_t seed);

struct TrainTimings {
  double candidate_gen_seconds = 0.0;  // enumeration + statistical tests
  double synthetic_seconds = 0.0;      // recall estimation pass
};

/// Result of offline training: the surviving candidates R_all with their
/// calibrated confidences, plus everything the selection step needs.
struct TrainedModel {
  /// Surviving SDCs ("All-Constraints" in the paper's terminology).
  std::vector<Sdc> constraints;
  /// detections[i] = ids of synthetic columns whose constructed error
  /// constraint i detects (D(r_i), paper Eq. 10).
  std::vector<std::vector<uint32_t>> detections;
  size_t num_synthetic = 0;
  /// conf(C_j, R_all): best confidence over constraints detecting j; used
  /// by Fine-Select's confidence-approximation requirement.
  std::vector<double> synthetic_conf_all;

  // Diagnostics.
  size_t candidates_enumerated = 0;
  size_t candidates_pruned = 0;    // skipped by the Appendix-B.1 bound
  size_t candidates_rejected = 0;  // failed the statistical tests
  /// Evaluation families dropped under injected faults (failpoint
  /// "trainer.eval"): training degrades to the remaining families instead
  /// of crashing; callers should surface a warning when non-zero.
  size_t evals_skipped = 0;
  TrainTimings timings;
};

/// Runs offline training (candidate generation + statistical assessment +
/// recall estimation) against the corpus. Deterministic in options.seed.
TrainedModel TrainAutoTest(const table::Corpus& corpus,
                           const typedet::EvalFunctionSet& evals,
                           const TrainOptions& options = {});

}  // namespace autotest::core

#endif  // AUTOTEST_CORE_TRAINER_H_
