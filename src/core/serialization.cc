#include "core/serialization.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/failpoint.h"
#include "util/string_util.h"

namespace autotest::core {

namespace {

using util::DataLossError;
using util::InvalidArgumentError;
using util::IoError;
using util::NotFoundError;
using util::Result;
using util::Status;

constexpr char kHeader[] = "# autotest-sdc v1";
constexpr char kHeaderPrefix[] = "# autotest-sdc ";

// Column names of a rule line, indexed like the split fields (0 = record
// type). Used to name the offending field in diagnostics.
constexpr const char* kFieldNames[13] = {
    "record-type", "eval-id",  "d_in",
    "d_out",       "m",        "conf",
    "fpr",         "covered_triggered", "covered_not_triggered",
    "uncovered_triggered", "uncovered_not_triggered", "cohens_h",
    "chi_squared_p"};

std::string EscapeId(std::string_view id) {
  std::string out;
  for (char c : id) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeId(std::string_view s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 't':
          out.push_back('\t');
          break;
        case 'n':
          out.push_back('\n');
          break;
        default:
          out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string FieldError(size_t line, size_t field, const std::string& value,
                       const char* what) {
  return "rule line " + std::to_string(line) + ": field '" +
         kFieldNames[field] + "' " + what + ": '" + value + "'";
}

// Strict double parse: the whole token must be consumed.
bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* endp = nullptr;
  *out = std::strtod(s.c_str(), &endp);
  return endp == s.c_str() + s.size();
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* endp = nullptr;
  *out = std::strtoll(s.c_str(), &endp, 10);
  return endp == s.c_str() + s.size();
}

// Semantic validation of one parsed rule (satellite: never load garbage
// rules). `line` is the 1-based line number for diagnostics.
Status ValidateRule(const Sdc& r, size_t line) {
  auto err = [&](const char* field, const char* what,
                 double value) -> Status {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", value);
    return InvalidArgumentError("rule line " + std::to_string(line) +
                                ": field '" + field + "' " + what + ": '" +
                                buf + "'");
  };
  struct {
    const char* name;
    double value;
  } finite_fields[] = {
      {"d_in", r.d_in},         {"d_out", r.d_out},
      {"m", r.m},               {"conf", r.confidence},
      {"fpr", r.fpr},           {"cohens_h", r.cohens_h},
      {"chi_squared_p", r.chi_squared_p},
  };
  for (const auto& f : finite_fields) {
    if (!std::isfinite(f.value)) {
      return err(f.name, "is not finite", f.value);
    }
  }
  if (r.d_in > r.d_out) {
    return InvalidArgumentError(
        "rule line " + std::to_string(line) +
        ": inner radius d_in exceeds outer radius d_out (" +
        std::to_string(r.d_in) + " > " + std::to_string(r.d_out) + ")");
  }
  struct {
    const char* name;
    double value;
  } unit_fields[] = {
      {"m", r.m}, {"conf", r.confidence}, {"fpr", r.fpr}};
  for (const auto& f : unit_fields) {
    if (f.value < 0.0 || f.value > 1.0) {
      return err(f.name, "is outside [0,1]", f.value);
    }
  }
  struct {
    const char* name;
    int64_t value;
  } count_fields[] = {
      {"covered_triggered", r.contingency.covered_triggered},
      {"covered_not_triggered", r.contingency.covered_not_triggered},
      {"uncovered_triggered", r.contingency.uncovered_triggered},
      {"uncovered_not_triggered", r.contingency.uncovered_not_triggered},
  };
  for (const auto& f : count_fields) {
    if (f.value < 0) {
      return InvalidArgumentError("rule line " + std::to_string(line) +
                                  ": field '" + f.name + "' is negative: " +
                                  std::to_string(f.value));
    }
  }
  return Status::Ok();
}

}  // namespace

const typedet::DomainEvalFunction* FindEvalById(
    const typedet::EvalFunctionSet& evals, std::string_view id) {
  for (const auto& f : evals.functions()) {
    if (f->id() == id) return f.get();
  }
  return nullptr;
}

std::string SerializeRules(const std::vector<Sdc>& rules) {
  std::string out = kHeader;
  out += "\n";
  char buf[256];
  for (const auto& r : rules) {
    out += "rule\t";
    out += EscapeId(r.eval != nullptr ? r.eval->id() : "<null>");
    std::snprintf(
        buf, sizeof(buf),
        "\t%.17g\t%.17g\t%.17g\t%.17g\t%.17g\t%lld\t%lld\t%lld\t%lld\t%"
        ".17g\t%.17g\n",
        r.d_in, r.d_out, r.m, r.confidence, r.fpr,
        static_cast<long long>(r.contingency.covered_triggered),
        static_cast<long long>(r.contingency.covered_not_triggered),
        static_cast<long long>(r.contingency.uncovered_triggered),
        static_cast<long long>(r.contingency.uncovered_not_triggered),
        r.cohens_h, r.chi_squared_p);
    out += buf;
  }
  return out;
}

Result<std::vector<Sdc>> TryDeserializeRules(
    std::string_view text, const typedet::EvalFunctionSet& evals,
    size_t* unresolved) {
  if (unresolved != nullptr) *unresolved = 0;
  if (auto injected = util::FailpointFiresCode(
          util::kFpRulesParse, util::StatusCode::kDataLoss)) {
    return util::InjectedFault(*injected, util::kFpRulesParse);
  }
  std::vector<Sdc> rules;
  bool saw_header = false;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (line[0] == '#') {
      if (line == kHeader) {
        saw_header = true;
      } else if (util::StartsWith(line, kHeaderPrefix)) {
        return InvalidArgumentError(
            "unsupported rule-file version '" +
            std::string(line.substr(sizeof(kHeaderPrefix) - 1)) +
            "' (expected 'v1')");
      }
      continue;
    }
    if (!saw_header) {
      return InvalidArgumentError(
          "missing '# autotest-sdc v1' header before line " +
          std::to_string(line_no));
    }
    auto fields = util::Split(line, '\t');
    if (fields[0] != "rule") {
      return DataLossError("rule line " + std::to_string(line_no) +
                           ": unknown record type '" + fields[0] + "'");
    }
    if (fields.size() != 13) {
      return DataLossError("rule line " + std::to_string(line_no) +
                           ": expected 13 tab-separated fields, got " +
                           std::to_string(fields.size()));
    }
    Sdc r;
    auto field_err = [&](size_t f, const char* what) {
      return DataLossError(FieldError(line_no, f, fields[f], what));
    };
    struct {
      size_t field;
      double* out;
    } doubles[] = {{2, &r.d_in},        {3, &r.d_out},
                   {4, &r.m},           {5, &r.confidence},
                   {6, &r.fpr},         {11, &r.cohens_h},
                   {12, &r.chi_squared_p}};
    for (const auto& d : doubles) {
      if (!ParseDouble(fields[d.field], d.out)) {
        return field_err(d.field, "is not a number");
      }
    }
    struct {
      size_t field;
      int64_t* out;
    } counts[] = {{7, &r.contingency.covered_triggered},
                  {8, &r.contingency.covered_not_triggered},
                  {9, &r.contingency.uncovered_triggered},
                  {10, &r.contingency.uncovered_not_triggered}};
    for (const auto& c : counts) {
      if (!ParseInt64(fields[c.field], c.out)) {
        return field_err(c.field, "is not an integer");
      }
    }
    AT_RETURN_IF_ERROR(ValidateRule(r, line_no));
    const typedet::DomainEvalFunction* eval =
        FindEvalById(evals, UnescapeId(fields[1]));
    if (eval == nullptr) {
      if (unresolved != nullptr) ++*unresolved;
      continue;
    }
    r.eval = eval;
    // Recover the index within the set for completeness.
    for (size_t i = 0; i < evals.size(); ++i) {
      if (&evals.at(i) == eval) {
        r.eval_index = i;
        break;
      }
    }
    rules.push_back(std::move(r));
  }
  if (!saw_header) {
    return InvalidArgumentError(
        "missing '# autotest-sdc v1' header (is this a rules.sdc file?)");
  }
  return rules;
}

util::Status TrySaveRulesToFile(const std::vector<Sdc>& rules,
                                const std::string& path) {
  if (auto injected = util::FailpointFiresCode(util::kFpRulesSave,
                                               util::StatusCode::kIoError)) {
    return util::InjectedFault(*injected, util::kFpRulesSave)
        .WithContext("saving rules to " + path);
  }
  // Write-then-rename so a failure mid-write never truncates an existing
  // rules file; readers see either the old or the new content.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return IoError("cannot open temp file " + tmp + " for writing");
    }
    out << SerializeRules(rules);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return IoError("write failure on temp file " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::Ok();
}

Result<std::vector<Sdc>> TryLoadRulesFromFile(
    const std::string& path, const typedet::EvalFunctionSet& evals,
    size_t* unresolved) {
  if (unresolved != nullptr) *unresolved = 0;
  if (auto injected = util::FailpointFiresCode(util::kFpRulesOpen,
                                               util::StatusCode::kIoError)) {
    return util::InjectedFault(*injected, util::kFpRulesOpen)
        .WithContext("loading rules from " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) {
    return IoError("read failure on " + path);
  }
  auto rules = TryDeserializeRules(ss.str(), evals, unresolved);
  if (!rules.ok()) {
    return Status(rules.status()).WithContext("loading rules from " + path);
  }
  return rules;
}

bool SaveRulesToFile(const std::vector<Sdc>& rules,
                     const std::string& path) {
  return TrySaveRulesToFile(rules, path).ok();
}

std::optional<std::vector<Sdc>> DeserializeRules(
    std::string_view text, const typedet::EvalFunctionSet& evals,
    size_t* unresolved) {
  return TryDeserializeRules(text, evals, unresolved).ToOptional();
}

std::optional<std::vector<Sdc>> LoadRulesFromFile(
    const std::string& path, const typedet::EvalFunctionSet& evals,
    size_t* unresolved) {
  return TryLoadRulesFromFile(path, evals, unresolved).ToOptional();
}

}  // namespace autotest::core
