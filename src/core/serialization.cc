#include "core/serialization.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace autotest::core {

namespace {

constexpr char kHeader[] = "# autotest-sdc v1";

std::string EscapeId(std::string_view id) {
  std::string out;
  for (char c : id) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeId(std::string_view s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 't':
          out.push_back('\t');
          break;
        case 'n':
          out.push_back('\n');
          break;
        default:
          out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

const typedet::DomainEvalFunction* FindEvalById(
    const typedet::EvalFunctionSet& evals, std::string_view id) {
  for (const auto& f : evals.functions()) {
    if (f->id() == id) return f.get();
  }
  return nullptr;
}

std::string SerializeRules(const std::vector<Sdc>& rules) {
  std::string out = kHeader;
  out += "\n";
  char buf[256];
  for (const auto& r : rules) {
    out += "rule\t";
    out += EscapeId(r.eval != nullptr ? r.eval->id() : "<null>");
    std::snprintf(
        buf, sizeof(buf),
        "\t%.17g\t%.17g\t%.17g\t%.17g\t%.17g\t%lld\t%lld\t%lld\t%lld\t%"
        ".17g\t%.17g\n",
        r.d_in, r.d_out, r.m, r.confidence, r.fpr,
        static_cast<long long>(r.contingency.covered_triggered),
        static_cast<long long>(r.contingency.covered_not_triggered),
        static_cast<long long>(r.contingency.uncovered_triggered),
        static_cast<long long>(r.contingency.uncovered_not_triggered),
        r.cohens_h, r.chi_squared_p);
    out += buf;
  }
  return out;
}

std::optional<std::vector<Sdc>> DeserializeRules(
    std::string_view text, const typedet::EvalFunctionSet& evals,
    size_t* unresolved) {
  if (unresolved != nullptr) *unresolved = 0;
  std::vector<Sdc> rules;
  bool saw_header = false;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (line[0] == '#') {
      if (line == kHeader) saw_header = true;
      continue;
    }
    auto fields = util::Split(std::string(line), '\t');
    if (fields.size() != 13 || fields[0] != "rule") return std::nullopt;
    Sdc r;
    const typedet::DomainEvalFunction* eval =
        FindEvalById(evals, UnescapeId(fields[1]));
    if (eval == nullptr) {
      if (unresolved != nullptr) ++*unresolved;
      continue;
    }
    r.eval = eval;
    char* endp = nullptr;
    auto parse_double = [&](const std::string& s, double* out) {
      *out = std::strtod(s.c_str(), &endp);
      return endp != s.c_str();
    };
    auto parse_ll = [&](const std::string& s, int64_t* out) {
      *out = std::strtoll(s.c_str(), &endp, 10);
      return endp != s.c_str();
    };
    if (!parse_double(fields[2], &r.d_in) ||
        !parse_double(fields[3], &r.d_out) ||
        !parse_double(fields[4], &r.m) ||
        !parse_double(fields[5], &r.confidence) ||
        !parse_double(fields[6], &r.fpr) ||
        !parse_ll(fields[7], &r.contingency.covered_triggered) ||
        !parse_ll(fields[8], &r.contingency.covered_not_triggered) ||
        !parse_ll(fields[9], &r.contingency.uncovered_triggered) ||
        !parse_ll(fields[10], &r.contingency.uncovered_not_triggered) ||
        !parse_double(fields[11], &r.cohens_h) ||
        !parse_double(fields[12], &r.chi_squared_p)) {
      return std::nullopt;
    }
    // Recover the index within the set for completeness.
    for (size_t i = 0; i < evals.size(); ++i) {
      if (&evals.at(i) == eval) {
        r.eval_index = i;
        break;
      }
    }
    rules.push_back(std::move(r));
  }
  if (!saw_header) return std::nullopt;
  return rules;
}

bool SaveRulesToFile(const std::vector<Sdc>& rules,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << SerializeRules(rules);
  return static_cast<bool>(out);
}

std::optional<std::vector<Sdc>> LoadRulesFromFile(
    const std::string& path, const typedet::EvalFunctionSet& evals,
    size_t* unresolved) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return DeserializeRules(ss.str(), evals, unresolved);
}

}  // namespace autotest::core
