#include "core/report.h"

#include <cstdio>

namespace autotest::core {

size_t TableReport::TotalDetections() const {
  size_t n = 0;
  for (const auto& c : columns) n += c.detections.size();
  return n;
}

std::string TableReport::ToText() const {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "table \"%s\": %zu column(s) checked, %zu skipped "
                "(numeric), %zu potential error(s)\n",
                table_name.c_str(), columns_checked,
                columns_skipped_numeric, TotalDetections());
  out += buf;
  size_t card = 0;
  for (const auto& col : columns) {
    for (const auto& d : col.detections) {
      ++card;
      std::snprintf(buf, sizeof(buf),
                    "--- suggestion %zu ---------------------------\n"
                    "column : %s\n"
                    "cell   : row %zu = \"%s\"\n"
                    "conf   : %.2f\n"
                    "why    : %s\n",
                    card, col.column_name.c_str(), d.row, d.value.c_str(),
                    d.confidence, d.explanation.c_str());
      out += buf;
    }
  }
  return out;
}

TableReport AnalyzeTable(const SdcPredictor& predictor,
                         const table::Table& table,
                         const AnalyzeOptions& options) {
  TableReport report;
  report.table_name = table.name;
  for (size_t c = 0; c < table.columns.size(); ++c) {
    const auto& column = table.columns[c];
    if (options.skip_numeric_columns && table::IsMostlyNumeric(column)) {
      ++report.columns_skipped_numeric;
      continue;
    }
    ++report.columns_checked;
    ColumnReport col;
    col.column_index = c;
    col.column_name = column.name;
    for (auto& d : predictor.Predict(column)) {
      if (d.confidence < options.min_confidence) continue;
      col.detections.push_back(std::move(d));
    }
    if (!col.detections.empty()) report.columns.push_back(std::move(col));
  }
  return report;
}

}  // namespace autotest::core
