#ifndef AUTOTEST_CORE_SDC_H_
#define AUTOTEST_CORE_SDC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "stats/statistics.h"
#include "table/column.h"
#include "typedet/domain_eval.h"

namespace autotest::core {

/// A Semantic-Domain Constraint (paper Definition 2): r = (P, S, c) with
/// parameters (f_t, d_in, d_out, m).
///
///   pre-condition  P: at least an m-fraction of column values v satisfy
///                     f_t(v) <= d_in (the "inner ball");
///   post-condition S: values with f_t(v) > d_out (outside the "outer
///                     ball") are predicted as errors;
///   confidence     c: Wilson-lower-bounded probability that a triggered
///                     detection is not a false positive (paper Eq. 9).
struct Sdc {
  /// Index of the domain-evaluation function in the owning EvalFunctionSet.
  size_t eval_index = 0;
  /// Borrowed pointer into the EvalFunctionSet (outlives the Sdc).
  const typedet::DomainEvalFunction* eval = nullptr;

  double d_in = 0.0;
  double d_out = 1.0;
  double m = 1.0;

  double confidence = 0.0;
  /// Estimated false-positive rate |C_{C,T}| / |C| (Section 5.3).
  double fpr = 0.0;
  /// Statistical-test artifacts from offline assessment (Section 5.2).
  stats::ContingencyTable contingency;
  double cohens_h = 0.0;
  double chi_squared_p = 1.0;

  /// Table-1-style human-readable rendering, e.g.
  /// "85% col vals have their sbert-sim distance to "seattle" < 1.2".
  std::string Describe() const;
};

/// Weighted distance profile of one column under one evaluation function:
/// distances of distinct values plus their multiplicities. The sorted form
/// lets every (d_in, d_out, m) grid cell be evaluated with binary searches.
struct ColumnDistanceProfile {
  std::vector<double> sorted_distances;  // parallel to sorted_weights
  std::vector<size_t> sorted_weights;
  std::vector<size_t> prefix_weights;  // cumulative weights
  size_t total_weight = 0;

  /// Number of values (with multiplicity) whose distance is <= d.
  size_t CountWithin(double d) const;
  /// True if a fraction >= m of values lies within distance d_in.
  bool PreconditionHolds(double d_in, double m) const;
  /// Number of values (with multiplicity) with distance > d_out.
  size_t CountBeyond(double d_out) const;
};

/// Computes the distance profile of a column under one evaluation function.
ColumnDistanceProfile ComputeProfile(const typedet::DomainEvalFunction& eval,
                                     const table::DistinctValues& distinct);

/// Pre-condition check directly on a column (used by the online path).
bool PreconditionHolds(const Sdc& sdc, const ColumnDistanceProfile& profile);

}  // namespace autotest::core

#endif  // AUTOTEST_CORE_SDC_H_
