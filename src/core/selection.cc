#include "core/selection.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>

#include "util/check.h"
#include "util/hashing.h"
#include "util/parallel/thread_pool.h"
#include "util/rng.h"

namespace autotest::core {

namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kNoVar = 0xffffffffu;

uint64_t HashIds(const std::vector<uint32_t>& ids) {
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t x : ids) {
    h ^= x;
    h *= 1099511628211ULL;
    h = util::SplitMix64(h);
  }
  return h ^ ids.size();
}

// Deterministic tie-break perturbation on the x objectives: strictly
// negative and unique per rule, ~1e-5 in magnitude. It makes the LP
// optimum generically unique, which is what lets the dense tableau, the
// revised simplex, and warm re-solves land on the same vertex and
// therefore the same rounded selection. The scale matters on both sides:
// pairwise (and small-subset) perturbation differences must stay well
// above the simplex pricing tolerance (1e-9) or alternate optima within
// tolerance survive, while the worst-case total (max_lp_variables x 2e-5
// = 0.05) must stay below the unit coverage weight so the perturbation
// can never trade away a genuinely covered column.
double PerturbObjective(size_t rule) {
  uint64_t h = util::SplitMix64(0x61757465737471ULL ^
                                (rule * 0x9e3779b97f4a7c15ULL));
  double frac = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return -1e-5 * (1.0 + frac);
}

// Collapse solver-level noise at the bound vertices so Bernoulli rounding
// sees exact 0/1 probabilities there.
double Snap01(double v) {
  if (v > 1.0 - 1e-6) return 1.0;
  if (v < 1e-6) return 0.0;
  return v;
}

}  // namespace

IncrementalSelector::IncrementalSelector(const TrainedModel& model,
                                         const SelectionOptions& options,
                                         double delta)
    : model_(model), options_(options), delta_(delta) {}

IncrementalSelector::~IncrementalSelector() = default;

void IncrementalSelector::SetDelta(double delta) {
  if (delta == delta_) return;
  bool narrowing = delta < delta_;
  delta_ = delta;
  if (num_seen_ == 0) return;
  util::parallel::Options par_opt;
  par_opt.num_threads = options_.num_threads;
  if (narrowing) {
    // Eligible sets are monotone in delta: filter the state in place
    // instead of rescanning every detection list.
    util::parallel::ParallelFor(
        num_seen_,
        [&](size_t i) {
          double c = model_.constraints[i].confidence;
          auto& e = eligible_[i];
          e.erase(std::remove_if(e.begin(), e.end(),
                                 [&](uint32_t j) {
                                   return c <
                                          model_.synthetic_conf_all[j] - delta_;
                                 }),
                  e.end());
        },
        par_opt);
  } else {
    util::parallel::ParallelFor(
        num_seen_,
        [&](size_t i) {
          double c = model_.constraints[i].confidence;
          eligible_[i].clear();
          for (uint32_t j : model_.detections[i]) {
            if (c >= model_.synthetic_conf_all[j] - delta_) {
              eligible_[i].push_back(j);
            }
          }
        },
        par_opt);
  }
  RebuildDedup();
}

void IncrementalSelector::IngestCandidates(size_t upto) {
  upto = std::min(upto, model_.constraints.size());
  AT_CHECK(upto >= num_seen_);
  if (upto == num_seen_) return;
  size_t lo = num_seen_;
  eligible_.resize(upto);
  util::parallel::Options par_opt;
  par_opt.num_threads = options_.num_threads;
  util::parallel::ParallelFor(
      upto - lo,
      [&](size_t k) {
        size_t i = lo + k;
        double c = model_.constraints[i].confidence;
        for (uint32_t j : model_.detections[i]) {
          if (c >= model_.synthetic_conf_all[j] - delta_) {
            eligible_[i].push_back(j);
          }
        }
      },
      par_opt);
  num_seen_ = upto;
  DedupStream(lo, upto);
}

void IncrementalSelector::DedupStream(size_t lo, size_t hi) {
  // Deduplicate rules with identical eligible sets: for the LP they are
  // interchangeable columns, so keep the cheapest (min FPR, then max
  // confidence). Replacements rewrite the representative's column in
  // place, preserving positions, so the LP column order stays a pure
  // function of the candidate prefix.
  for (size_t i = lo; i < hi; ++i) {
    if (eligible_[i].empty()) continue;
    uint64_t h = HashIds(eligible_[i]);
    auto it = best_by_set_.find(h);
    if (it == best_by_set_.end()) {
      best_by_set_.emplace(h, kept_.size());
      kept_.push_back(i);
      continue;
    }
    size_t pos = it->second;
    size_t prev = kept_[pos];
    // Hash collision guard: only merge when the sets really match.
    if (eligible_[prev] != eligible_[i]) {
      kept_.push_back(i);
      continue;
    }
    const Sdc& a = model_.constraints[i];
    const Sdc& b = model_.constraints[prev];
    bool better =
        a.fpr < b.fpr || (a.fpr == b.fpr && a.confidence > b.confidence);
    if (!better) continue;
    kept_[pos] = i;
    if (!structure_dirty_ && pos < lp_cols_built_ && lp_.solver != nullptr) {
      std::vector<std::pair<size_t, double>> terms;
      terms.reserve(eligible_[i].size() + 2);
      for (uint32_t j : eligible_[i]) terms.push_back({j, -1.0});
      terms.push_back({model_.num_synthetic, 1.0});
      terms.push_back({model_.num_synthetic + 1, a.fpr});
      lp_.solver->ReplaceVariable(lp_.x_vars[pos], PerturbObjective(i), 1.0,
                                  terms);
    }
  }
}

void IncrementalSelector::RebuildDedup() {
  best_by_set_.clear();
  kept_.clear();
  lp_.solver.reset();
  lp_.x_vars.clear();
  lp_.y_var_of_j.clear();
  lp_cols_built_ = 0;
  structure_dirty_ = true;
  DedupStream(0, num_seen_);
}

IncrementalSelector::BuiltLp IncrementalSelector::BuildProgram(
    const std::vector<size_t>& rules) const {
  // Row skeleton, fixed for the selector's lifetime: one coverage row per
  // synthetic column (y_j <= sum of covering x_i), then the size budget,
  // then the FPR budget. Uncovered columns leave a trivially slack row —
  // the sparse solver prices them at zero cost, and the stable row space
  // is what makes candidate additions pure column operations.
  lp::LinearProgram base;
  for (size_t j = 0; j < model_.num_synthetic; ++j) {
    lp::Constraint c;
    c.type = lp::ConstraintType::kLessEq;
    c.rhs = 0.0;
    base.AddConstraint(std::move(c));
  }
  lp::Constraint size_c;
  size_c.type = lp::ConstraintType::kLessEq;
  size_c.rhs = static_cast<double>(options_.size_budget);
  base.AddConstraint(std::move(size_c));
  lp::Constraint fpr_c;
  fpr_c.type = lp::ConstraintType::kLessEq;
  fpr_c.rhs = options_.fpr_budget;
  base.AddConstraint(std::move(fpr_c));

  lp::RevisedSimplexOptions lp_opt;
  lp_opt.refactor_interval = options_.refactor_interval;
  BuiltLp built;
  built.solver =
      std::make_unique<lp::IncrementalSolver>(std::move(base), lp_opt);
  built.y_var_of_j.assign(model_.num_synthetic, kNoVar);
  for (size_t r : rules) AppendColumn(&built, r);
  return built;
}

void IncrementalSelector::AppendColumn(BuiltLp* built, size_t rule) const {
  // Lazy y columns: a coverage variable appears the first time some
  // candidate can cover its synthetic column. Interleaving y's before
  // their first covering x keeps the column order reproducible from the
  // candidate prefix alone (cold rebuilds replay the same sequence).
  for (uint32_t j : eligible_[rule]) {
    if (built->y_var_of_j[j] == kNoVar) {
      built->y_var_of_j[j] = static_cast<uint32_t>(
          built->solver->AddVariable(1.0, 1.0, {{j, 1.0}}));
    }
  }
  std::vector<std::pair<size_t, double>> terms;
  terms.reserve(eligible_[rule].size() + 2);
  for (uint32_t j : eligible_[rule]) terms.push_back({j, -1.0});
  terms.push_back({model_.num_synthetic, 1.0});
  terms.push_back({model_.num_synthetic + 1, model_.constraints[rule].fpr});
  built->x_vars.push_back(built->solver->AddVariable(
      PerturbObjective(rule), 1.0, terms));
}

lp::Solution IncrementalSelector::RunSolver(BuiltLp* built,
                                            bool* warm_out) const {
  if (options_.solver == SelectionSolver::kDenseTableau) {
    *warm_out = false;
    return lp::SolveLpDense(built->solver->program());
  }
  lp::Solution sol = built->solver->Solve();
  *warm_out = built->solver->last_solve_was_warm();
  return sol;
}

void IncrementalSelector::RoundAndFinish(const lp::Solution& sol,
                                         const std::vector<size_t>& active_rules,
                                         const std::vector<size_t>& x_vars,
                                         SelectionResult* result) const {
  result->lp_objective = sol.objective;
  // Randomized rounding (Algorithm 1, lines 4-7).
  util::Rng rng(options_.seed);
  std::vector<std::pair<size_t, double>> chosen;  // (rule, lp value)
  for (size_t idx = 0; idx < active_rules.size(); ++idx) {
    double x = Snap01(std::clamp(sol.values[x_vars[idx]], 0.0, 1.0));
    if (rng.Bernoulli(x)) chosen.push_back({active_rules[idx], x});
  }

  if (options_.repair_to_budgets) {
    // Drop the weakest picks until both budgets hold deterministically.
    auto weakest = [&]() {
      size_t arg = 0;
      double best = 1e18;
      for (size_t i = 0; i < chosen.size(); ++i) {
        double v = chosen[i].second /
                   (model_.constraints[chosen[i].first].fpr + 1e-4);
        if (v < best) {
          best = v;
          arg = i;
        }
      }
      return arg;
    };
    double fpr_sum = 0.0;
    for (const auto& [r, x] : chosen) fpr_sum += model_.constraints[r].fpr;
    while (!chosen.empty() && (chosen.size() > options_.size_budget ||
                               fpr_sum > options_.fpr_budget)) {
      size_t i = weakest();
      fpr_sum -= model_.constraints[chosen[i].first].fpr;
      chosen.erase(chosen.begin() + static_cast<ptrdiff_t>(i));
    }
  }

  result->selected.reserve(chosen.size());
  for (const auto& [r, x] : chosen) result->selected.push_back(r);
  std::sort(result->selected.begin(), result->selected.end());
}

std::vector<size_t> IncrementalSelector::PrefilteredRules() const {
  // Greedy pre-filter when the LP would be too large: rank by detection
  // count per unit FPR (scores cached per rule, so the sort compares the
  // exact same doubles regardless of thread count).
  std::vector<double> score(model_.constraints.size(), 0.0);
  util::parallel::Options par_opt;
  par_opt.num_threads = options_.num_threads;
  util::parallel::ParallelFor(
      kept_.size(),
      [&](size_t idx) {
        size_t r = kept_[idx];
        score[r] = static_cast<double>(eligible_[r].size()) /
                   (model_.constraints[r].fpr + 1e-4);
      },
      par_opt);
  std::vector<size_t> rules = kept_;
  std::stable_sort(rules.begin(), rules.end(),
                   [&](size_t a, size_t b) { return score[a] > score[b]; });
  rules.resize(options_.max_lp_variables);
  std::sort(rules.begin(), rules.end());
  return rules;
}

SelectionResult IncrementalSelector::RunGreedy() const {
  // Lazy greedy (CELF-style) weighted max coverage: each pop either acts
  // on a gain recomputed at the current selection epoch or refreshes a
  // stale one. Deterministic: ties on gain break towards the earlier
  // kept position, and there is no rounding step.
  SelectionResult result;
  result.used_greedy = true;
  result.lp_status = lp::SolveStatus::kOptimal;
  result.lp_num_variables = kept_.size();

  struct Entry {
    double gain;
    size_t pos;
    bool operator<(const Entry& o) const {
      if (gain != o.gain) return gain < o.gain;
      return pos > o.pos;  // prefer earlier positions on ties
    }
  };
  std::priority_queue<Entry> pq;
  for (size_t pos = 0; pos < kept_.size(); ++pos) {
    pq.push({static_cast<double>(eligible_[kept_[pos]].size()), pos});
  }
  std::vector<uint8_t> covered(model_.num_synthetic, 0);
  std::vector<size_t> epoch(kept_.size(), static_cast<size_t>(-1));
  size_t cur_epoch = 0;
  double fpr_sum = 0.0;
  double coverage = 0.0;
  while (!pq.empty() && result.selected.size() < options_.size_budget) {
    Entry e = pq.top();
    pq.pop();
    size_t rule = kept_[e.pos];
    double fpr = model_.constraints[rule].fpr;
    if (fpr_sum + fpr > options_.fpr_budget + 1e-12) continue;  // never fits
    if (epoch[e.pos] != cur_epoch) {
      double g = 0.0;
      for (uint32_t j : eligible_[rule]) g += covered[j] ? 0.0 : 1.0;
      epoch[e.pos] = cur_epoch;
      if (g > 0.0) pq.push({g, e.pos});
      continue;
    }
    for (uint32_t j : eligible_[rule]) covered[j] = 1;
    coverage += e.gain;
    fpr_sum += fpr;
    result.selected.push_back(rule);
    ++cur_epoch;
  }
  std::sort(result.selected.begin(), result.selected.end());
  result.lp_objective = coverage;
  result.greedy_opt_bound = coverage / (1.0 - 1.0 / std::exp(1.0));
  return result;
}

SelectionResult IncrementalSelector::Reselect(size_t num_candidates) {
  auto t0 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing
  auto finish = [&](SelectionResult result) {
    // at_lint: disable(R2) wall-clock phase timing
    result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return result;
  };
  IngestCandidates(num_candidates);
  if (kept_.empty()) {
    SelectionResult result;
    result.lp_status = lp::SolveStatus::kOptimal;
    return finish(result);
  }

  if (options_.solver == SelectionSolver::kGreedy ||
      (options_.greedy_fallback_threshold > 0 &&
       kept_.size() > options_.greedy_fallback_threshold)) {
    return finish(RunGreedy());
  }

  SelectionResult result;
  bool warm = false;
  if (kept_.size() > options_.max_lp_variables) {
    // Prefiltered one-shot: the active set is no longer a prefix of the
    // kept stream, so warm reuse is off and the persistent LP is dropped.
    lp_.solver.reset();
    lp_.x_vars.clear();
    lp_.y_var_of_j.clear();
    lp_cols_built_ = 0;
    structure_dirty_ = true;
    std::vector<size_t> active = PrefilteredRules();
    BuiltLp built = BuildProgram(active);
    lp::Solution sol = RunSolver(&built, &warm);
    result.lp_status = sol.status;
    result.lp_num_variables = built.solver->num_vars();
    result.lp_num_rows = built.solver->num_rows();
    result.warm_started = warm;
    if (sol.status != lp::SolveStatus::kOptimal) return finish(result);
    RoundAndFinish(sol, active, built.x_vars, &result);
    return finish(result);
  }

  if (structure_dirty_ || lp_.solver == nullptr) {
    lp_ = BuildProgram(kept_);
    lp_cols_built_ = kept_.size();
    structure_dirty_ = false;
  } else {
    for (size_t pos = lp_cols_built_; pos < kept_.size(); ++pos) {
      AppendColumn(&lp_, kept_[pos]);
    }
    lp_cols_built_ = kept_.size();
  }
  lp::Solution sol = RunSolver(&lp_, &warm);
  result.lp_status = sol.status;
  result.lp_num_variables = lp_.solver->num_vars();
  result.lp_num_rows = lp_.solver->num_rows();
  result.warm_started = warm;
  if (sol.status != lp::SolveStatus::kOptimal) return finish(result);
  RoundAndFinish(sol, kept_, lp_.x_vars, &result);
  return finish(result);
}

SelectionResult IncrementalSelector::SelectAll() {
  return Reselect(model_.constraints.size());
}

SelectionResult SelectWithDelta(const TrainedModel& model,
                                const SelectionOptions& options,
                                double delta) {
  IncrementalSelector selector(model, options, delta);
  return selector.SelectAll();
}

SelectionResult CoarseSelect(const TrainedModel& model,
                             const SelectionOptions& options) {
  return SelectWithDelta(model, options, /*delta=*/1.0);
}

SelectionResult FineSelect(const TrainedModel& model,
                           const SelectionOptions& options) {
  return SelectWithDelta(model, options, options.delta);
}

SelectionResult CoarseThenFineSelect(const TrainedModel& model,
                                     const SelectionOptions& options,
                                     SelectionResult* coarse_out) {
  IncrementalSelector selector(model, options, /*delta=*/1.0);
  SelectionResult coarse = selector.SelectAll();
  if (coarse_out != nullptr) *coarse_out = coarse;
  selector.SetDelta(options.delta);
  return selector.SelectAll();
}

}  // namespace autotest::core
