#include "core/selection.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>

#include "util/check.h"
#include "util/hashing.h"
#include "util/parallel/thread_pool.h"
#include "util/rng.h"

namespace autotest::core {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t HashIds(const std::vector<uint32_t>& ids) {
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t x : ids) {
    h ^= x;
    h *= 1099511628211ULL;
    h = util::SplitMix64(h);
  }
  return h ^ ids.size();
}

}  // namespace

SelectionResult SelectWithDelta(const TrainedModel& model,
                                const SelectionOptions& options,
                                double delta) {
  auto t0 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing
  SelectionResult result;
  const size_t num_rules = model.constraints.size();
  if (num_rules == 0) return result;

  // Eligible detection sets under the Fine-Select confidence requirement:
  // rule i counts for synthetic column j iff it detects j and its
  // confidence is within delta of conf(C_j, R_all). Per-rule slots keep
  // the parallel scoring deterministic.
  util::parallel::Options par_opt;
  par_opt.num_threads = options.num_threads;
  std::vector<std::vector<uint32_t>> eligible(num_rules);
  util::parallel::ParallelFor(
      num_rules,
      [&](size_t i) {
        double c = model.constraints[i].confidence;
        for (uint32_t j : model.detections[i]) {
          if (c >= model.synthetic_conf_all[j] - delta) {
            eligible[i].push_back(j);
          }
        }
      },
      par_opt);

  // Deduplicate rules with identical eligible sets: for the LP they are
  // interchangeable columns, so keep the cheapest (min FPR, then max
  // confidence). This collapses the grid-adjacent candidates massively.
  std::unordered_map<uint64_t, size_t> best_by_set;
  std::vector<size_t> kept;
  for (size_t i = 0; i < num_rules; ++i) {
    if (eligible[i].empty()) continue;
    uint64_t h = HashIds(eligible[i]);
    auto it = best_by_set.find(h);
    if (it == best_by_set.end()) {
      best_by_set.emplace(h, i);
      kept.push_back(i);
    } else {
      size_t prev = it->second;
      // Hash collision guard: only merge when the sets really match.
      if (eligible[prev] != eligible[i]) {
        kept.push_back(i);
        continue;
      }
      const Sdc& a = model.constraints[i];
      const Sdc& b = model.constraints[prev];
      bool better = a.fpr < b.fpr ||
                    (a.fpr == b.fpr && a.confidence > b.confidence);
      if (better) {
        it->second = i;
        std::replace(kept.begin(), kept.end(), prev, i);
      }
    }
  }

  // Greedy pre-filter if the LP would be too large. Scores are computed
  // in parallel once per rule, then the sort compares the cached values
  // (same doubles the old in-comparator computation produced).
  if (kept.size() > options.max_lp_variables) {
    std::vector<double> score(num_rules, 0.0);
    util::parallel::ParallelFor(
        kept.size(),
        [&](size_t idx) {
          size_t r = kept[idx];
          score[r] = static_cast<double>(eligible[r].size()) /
                     (model.constraints[r].fpr + 1e-4);
        },
        par_opt);
    std::stable_sort(kept.begin(), kept.end(),
                     [&](size_t a, size_t b) { return score[a] > score[b]; });
    kept.resize(options.max_lp_variables);
    std::sort(kept.begin(), kept.end());
  }

  // Build K_j over kept rules, then aggregate synthetic columns with
  // identical K_j into weighted coverage constraints.
  std::vector<std::vector<uint32_t>> k_of_j(model.num_synthetic);
  for (size_t idx = 0; idx < kept.size(); ++idx) {
    for (uint32_t j : eligible[kept[idx]]) {
      k_of_j[j].push_back(static_cast<uint32_t>(idx));
    }
  }
  std::map<std::vector<uint32_t>, double> groups;  // K set -> weight
  for (size_t j = 0; j < model.num_synthetic; ++j) {
    if (k_of_j[j].empty()) continue;
    groups[k_of_j[j]] += 1.0;
  }

  // CSS-LP (paper Eq. 14-18) on the reduced instance.
  lp::LinearProgram prog;
  std::vector<size_t> x_vars(kept.size());
  for (size_t idx = 0; idx < kept.size(); ++idx) {
    x_vars[idx] = prog.AddVariable(0.0, 1.0);
  }
  for (const auto& [k_set, weight] : groups) {
    size_t y = prog.AddVariable(weight, 1.0);
    lp::Constraint c;
    c.type = lp::ConstraintType::kLessEq;
    c.rhs = 0.0;
    c.terms.push_back({y, 1.0});
    for (uint32_t idx : k_set) c.terms.push_back({x_vars[idx], -1.0});
    prog.AddConstraint(std::move(c));
  }
  {
    lp::Constraint size_c;
    size_c.type = lp::ConstraintType::kLessEq;
    size_c.rhs = static_cast<double>(options.size_budget);
    for (size_t idx = 0; idx < kept.size(); ++idx) {
      size_c.terms.push_back({x_vars[idx], 1.0});
    }
    prog.AddConstraint(std::move(size_c));

    lp::Constraint fpr_c;
    fpr_c.type = lp::ConstraintType::kLessEq;
    fpr_c.rhs = options.fpr_budget;
    for (size_t idx = 0; idx < kept.size(); ++idx) {
      fpr_c.terms.push_back(
          {x_vars[idx], model.constraints[kept[idx]].fpr});
    }
    prog.AddConstraint(std::move(fpr_c));
  }

  lp::Solution sol = lp::SolveLp(prog);
  result.lp_status = sol.status;
  result.lp_num_variables = prog.num_vars;
  result.lp_num_rows = prog.constraints.size();
  if (sol.status != lp::SolveStatus::kOptimal) {
    // at_lint: disable(R2) wall-clock phase timing
    result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return result;
  }
  result.lp_objective = sol.objective;

  // Randomized rounding (Algorithm 1, lines 4-7).
  util::Rng rng(options.seed);
  std::vector<std::pair<size_t, double>> chosen;  // (rule, lp value)
  for (size_t idx = 0; idx < kept.size(); ++idx) {
    double x = std::clamp(sol.values[x_vars[idx]], 0.0, 1.0);
    if (rng.Bernoulli(x)) chosen.push_back({kept[idx], x});
  }

  if (options.repair_to_budgets) {
    // Drop the weakest picks until both budgets hold deterministically.
    auto weakest = [&]() {
      size_t arg = 0;
      double best = 1e18;
      for (size_t i = 0; i < chosen.size(); ++i) {
        double v = chosen[i].second /
                   (model.constraints[chosen[i].first].fpr + 1e-4);
        if (v < best) {
          best = v;
          arg = i;
        }
      }
      return arg;
    };
    double fpr_sum = 0.0;
    for (const auto& [r, x] : chosen) fpr_sum += model.constraints[r].fpr;
    while (!chosen.empty() && (chosen.size() > options.size_budget ||
                               fpr_sum > options.fpr_budget)) {
      size_t i = weakest();
      fpr_sum -= model.constraints[chosen[i].first].fpr;
      chosen.erase(chosen.begin() + static_cast<ptrdiff_t>(i));
    }
  }

  result.selected.reserve(chosen.size());
  for (const auto& [r, x] : chosen) result.selected.push_back(r);
  std::sort(result.selected.begin(), result.selected.end());
  // at_lint: disable(R2) wall-clock phase timing
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

SelectionResult CoarseSelect(const TrainedModel& model,
                             const SelectionOptions& options) {
  return SelectWithDelta(model, options, /*delta=*/1.0);
}

SelectionResult FineSelect(const TrainedModel& model,
                           const SelectionOptions& options) {
  return SelectWithDelta(model, options, options.delta);
}

}  // namespace autotest::core
