#include "core/sdc.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace autotest::core {

size_t ColumnDistanceProfile::CountWithin(double d) const {
  auto it = std::upper_bound(sorted_distances.begin(), sorted_distances.end(),
                             d);
  size_t idx = static_cast<size_t>(it - sorted_distances.begin());
  return idx == 0 ? 0 : prefix_weights[idx - 1];
}

bool ColumnDistanceProfile::PreconditionHolds(double d_in, double m) const {
  if (total_weight == 0) return false;
  return static_cast<double>(CountWithin(d_in)) >=
         m * static_cast<double>(total_weight) - 1e-9;
}

size_t ColumnDistanceProfile::CountBeyond(double d_out) const {
  return total_weight - CountWithin(d_out);
}

ColumnDistanceProfile ComputeProfile(const typedet::DomainEvalFunction& eval,
                                     const table::DistinctValues& distinct) {
  ColumnDistanceProfile p;
  size_t n = distinct.values.size();
  std::vector<std::pair<double, size_t>> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pairs.emplace_back(eval.Distance(distinct.values[i]), distinct.counts[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  p.sorted_distances.reserve(n);
  p.sorted_weights.reserve(n);
  p.prefix_weights.reserve(n);
  size_t acc = 0;
  for (const auto& [d, w] : pairs) {
    p.sorted_distances.push_back(d);
    p.sorted_weights.push_back(w);
    acc += w;
    p.prefix_weights.push_back(acc);
  }
  p.total_weight = acc;
  AT_CHECK(acc == distinct.total);
  return p;
}

bool PreconditionHolds(const Sdc& sdc, const ColumnDistanceProfile& profile) {
  return profile.PreconditionHolds(sdc.d_in, sdc.m);
}

std::string Sdc::Describe() const {
  char buf[320];
  if (eval != nullptr && eval->binary()) {
    std::snprintf(buf, sizeof(buf),
                  "%.0f%% col vals %s (dist=0); errors: values with dist=1 "
                  "(conf=%.2f)",
                  m * 100.0, eval->Describe().c_str(), confidence);
  } else if (eval != nullptr && eval->family() == typedet::Family::kCta) {
    // CTA distances are 1 - classifier score; render in score form like
    // the paper's Table 1 ("85% col vals have country-classifier > 0.75").
    std::snprintf(buf, sizeof(buf),
                  "%.0f%% col vals have %s > %.2f; errors: values with "
                  "score < %.2f (conf=%.2f)",
                  m * 100.0, eval->Describe().c_str(), 1.0 - d_in,
                  1.0 - d_out, confidence);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%.0f%% col vals have %s <= %.3f; errors: values with "
                  "distance > %.3f (conf=%.2f)",
                  m * 100.0,
                  eval != nullptr ? eval->Describe().c_str() : "<null>", d_in,
                  d_out, confidence);
  }
  return buf;
}

}  // namespace autotest::core
