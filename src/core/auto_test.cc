#include "core/auto_test.h"

#include <numeric>

#include "util/check.h"

namespace autotest::core {

const char* VariantName(Variant variant) {
  switch (variant) {
    case Variant::kAllConstraints:
      return "all-constraints";
    case Variant::kCoarseSelect:
      return "coarse-select";
    case Variant::kFineSelect:
      return "fine-select";
  }
  return "unknown";
}

AutoTest AutoTest::Train(const table::Corpus& corpus,
                         const AutoTestConfig& config) {
  AutoTest at;
  at.config_ = config;
  at.evals_ = std::make_unique<typedet::EvalFunctionSet>(
      typedet::EvalFunctionSet::Build(corpus, config.eval_options));
  at.model_ = TrainAutoTest(corpus, *at.evals_, config.train_options);
  return at;
}

SelectionResult AutoTest::Select(
    Variant variant, const SelectionOptions* override_options) const {
  const SelectionOptions& opt =
      override_options != nullptr ? *override_options
                                  : config_.selection_options;
  switch (variant) {
    case Variant::kAllConstraints: {
      SelectionResult r;
      r.selected.resize(model_.constraints.size());
      std::iota(r.selected.begin(), r.selected.end(), 0);
      r.lp_status = lp::SolveStatus::kOptimal;
      return r;
    }
    case Variant::kCoarseSelect:
      return CoarseSelect(model_, opt);
    case Variant::kFineSelect:
      // The paper pipeline's CSS -> FSS rounds share one selector so the
      // fine round narrows the coarse round's eligibility state in place;
      // the result is identical to FineSelect(model_, opt).
      return CoarseThenFineSelect(model_, opt);
  }
  AT_CHECK(false);
  return SelectionResult{};
}

SdcPredictor AutoTest::MakePredictor(
    Variant variant, const SelectionOptions* override_options) const {
  return MakePredictorFor(Select(variant, override_options).selected);
}

SdcPredictor AutoTest::MakePredictorFor(
    const std::vector<size_t>& rule_indices) const {
  std::vector<Sdc> rules;
  rules.reserve(rule_indices.size());
  for (size_t i : rule_indices) {
    AT_CHECK(i < model_.constraints.size());
    rules.push_back(model_.constraints[i]);
  }
  return SdcPredictor(std::move(rules));
}

}  // namespace autotest::core
