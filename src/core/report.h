#ifndef AUTOTEST_CORE_REPORT_H_
#define AUTOTEST_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/predictor.h"
#include "table/table.h"

namespace autotest::core {

/// Detections for one column of a table.
struct ColumnReport {
  size_t column_index = 0;
  std::string column_name;
  std::vector<CellDetection> detections;
};

/// A whole-table data-quality report: the end-user surface of the paper's
/// Figure 1 (Excel-style suggestion cards), produced by running the SDC
/// predictor over every applicable column.
struct TableReport {
  std::string table_name;
  size_t columns_checked = 0;
  size_t columns_skipped_numeric = 0;
  std::vector<ColumnReport> columns;  // only columns with detections

  size_t TotalDetections() const;

  /// Renders suggestion-card-style text (one card per detection).
  std::string ToText() const;
};

/// Options for table analysis.
struct AnalyzeOptions {
  /// Skip mostly-numeric columns (the paper's footnote 8: numeric columns
  /// are trivial to validate by other means).
  bool skip_numeric_columns = true;
  /// Only report detections at or above this confidence.
  double min_confidence = 0.0;
};

/// Runs the predictor over every column of the table.
TableReport AnalyzeTable(const SdcPredictor& predictor,
                         const table::Table& table,
                         const AnalyzeOptions& options = {});

}  // namespace autotest::core

#endif  // AUTOTEST_CORE_REPORT_H_
