#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <unordered_set>

#include "stats/statistics.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/parallel/thread_pool.h"
#include "util/retry.h"
#include "util/rng.h"

namespace autotest::core {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct FunctionResult {
  std::vector<Sdc> survivors;
  std::vector<std::vector<uint32_t>> detections;
  size_t enumerated = 0;
  size_t pruned = 0;
  size_t rejected = 0;
  bool skipped = false;  // dropped under an injected fault
  double candidate_seconds = 0.0;
  double synthetic_seconds = 0.0;
};

// Grid thresholds for one evaluation function.
struct Thresholds {
  std::vector<double> d_ins;
  std::vector<double> d_outs;
};

Thresholds MakeThresholds(const typedet::DomainEvalFunction& eval,
                          const TrainOptions& opt) {
  Thresholds t;
  if (eval.binary()) {
    // Binary distances {0, 1}: the only meaningful inner/outer pair.
    t.d_ins = {0.0};
    t.d_outs = {0.5};
    return t;
  }
  double range = eval.max_distance();
  for (double f : opt.d_in_fracs) t.d_ins.push_back(f * range);
  for (double f : opt.d_out_fracs) t.d_outs.push_back(f * range);
  return t;
}

}  // namespace

std::vector<SyntheticColumn> BuildSyntheticCorpus(const table::Corpus& corpus,
                                                  size_t count,
                                                  uint64_t seed) {
  AT_CHECK(corpus.size() >= 2);
  util::Rng rng(seed);
  // Per-column value sets to reject alien values that are actually valid
  // members of the base column.
  std::vector<std::unordered_set<std::string>> value_sets(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    value_sets[i].insert(corpus[i].values.begin(), corpus[i].values.end());
  }
  std::vector<SyntheticColumn> out;
  out.reserve(count);
  int64_t n = static_cast<int64_t>(corpus.size());
  // If every donor value is already present in every base column (e.g. a
  // corpus of identical columns), no alien value exists and the rejection
  // loop below would spin forever; cap the attempts instead.
  size_t attempts = 0;
  const size_t max_attempts = 1000 * count + 100000;
  while (out.size() < count) {
    AT_CHECK_MSG(++attempts <= max_attempts,
                 "BuildSyntheticCorpus: could not find alien donor values "
                 "(do all corpus columns share the same value set?)");
    size_t base = static_cast<size_t>(rng.UniformInt(0, n - 1));
    size_t donor = static_cast<size_t>(rng.UniformInt(0, n - 1));
    if (base == donor || corpus[base].values.empty() ||
        corpus[donor].values.empty()) {
      continue;
    }
    const std::string& v = rng.Pick(corpus[donor].values);
    if (value_sets[base].count(v) > 0) continue;  // not an error in base
    out.push_back(SyntheticColumn{static_cast<uint32_t>(base), v});
  }
  return out;
}

TrainedModel TrainAutoTest(const table::Corpus& corpus,
                           const typedet::EvalFunctionSet& evals,
                           const TrainOptions& options) {
  AT_CHECK(!corpus.empty());
  AT_CHECK(!options.m_grid.empty());
  for (size_t k = 1; k < options.m_grid.size(); ++k) {
    AT_CHECK_MSG(options.m_grid[k] < options.m_grid[k - 1],
                 "m_grid must be strictly descending");
  }

  // Shared precomputation: distinct values per corpus column.
  util::parallel::Options par_opt;
  par_opt.num_threads = options.num_threads;
  std::vector<table::DistinctValues> distinct(corpus.size());
  util::parallel::ParallelFor(
      corpus.size(),
      [&](size_t i) { distinct[i] = table::Distinct(corpus[i]); }, par_opt);

  std::vector<SyntheticColumn> synthetic = BuildSyntheticCorpus(
      corpus, options.synthetic_count, options.seed ^ 0x5f5f5f5fULL);

  const size_t num_cols = corpus.size();
  const size_t num_m = options.m_grid.size();
  const int64_t min_cov =
      options.enable_pruning
          ? stats::MinCoverageForConfidence(options.min_confidence,
                                            options.wilson_z)
          : 0;

  std::vector<FunctionResult> results(evals.size());

  // One evaluation function per chunk: per-function cost is highly skewed
  // (embedding families dominate), so let the pool steal at item
  // granularity instead of batching functions together.
  util::parallel::Options eval_opt = par_opt;
  eval_opt.grain = 1;
  util::parallel::ParallelFor(
      evals.size(),
      [&](size_t fi) {
        FunctionResult& res = results[fi];
        // Injected allocation/compute fault for this evaluation family.
        // The decision is keyed on the family index so which family faults
        // is independent of pool scheduling; retryable codes are retried
        // in place (pure CPU work — no backoff needed), permanent codes or
        // an exhausted budget drop the family (counted) and train on the
        // rest.
        const size_t budget = options.eval_retry_attempts > 0
                                  ? options.eval_retry_attempts
                                  : 1;
        for (size_t attempt = 0; attempt < budget; ++attempt) {
          auto injected = util::FailpointFiresKeyed(
              util::kFpTrainerEval,
              fi * 0x9e3779b97f4a7c15ULL + attempt,
              util::StatusCode::kResourceExhausted);
          if (!injected) break;
          if (!util::IsRetryableCode(*injected) || attempt + 1 == budget) {
            res.skipped = true;
            return;
          }
        }
        auto t0 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing
        const auto& eval = evals.at(fi);
        Thresholds th = MakeThresholds(eval, options);
        const size_t ni = th.d_ins.size();
        const size_t no = th.d_outs.size();

        // Pass over columns: coverage counts per d_in, trigger bits per
        // d_out, bucketed by the largest matching-percentage satisfied.
        std::vector<uint32_t> cov_count(num_cols * ni, 0);
        std::vector<uint32_t> col_total(num_cols, 0);
        std::vector<uint32_t> trig_total(no, 0);
        // bucketC[i][k], bucketCT[i][o][k]: columns whose coverage fraction
        // first satisfies m_grid[k] at inner threshold i.
        std::vector<uint32_t> bucket_c(ni * num_m, 0);
        std::vector<uint32_t> bucket_ct(ni * no * num_m, 0);
        // middle_band[i][k]: columns whose fraction falls in the ambiguous
        // band [m/2, m) — evidence against a natural domain separation.
        std::vector<uint32_t> middle_band(ni * num_m, 0);

        size_t eligible_cols = 0;
        for (size_t c = 0; c < num_cols; ++c) {
          if (distinct[c].total == 0 ||
              distinct[c].size() < options.min_distinct_values) {
            continue;
          }
          ++eligible_cols;
          ColumnDistanceProfile profile = ComputeProfile(eval, distinct[c]);
          col_total[c] = static_cast<uint32_t>(profile.total_weight);
          std::vector<bool> trig(no);
          for (size_t o = 0; o < no; ++o) {
            trig[o] = profile.CountBeyond(th.d_outs[o]) > 0;
            if (trig[o]) ++trig_total[o];
          }
          for (size_t i = 0; i < ni; ++i) {
            uint32_t cov =
                static_cast<uint32_t>(profile.CountWithin(th.d_ins[i]));
            cov_count[c * ni + i] = cov;
            double frac = static_cast<double>(cov) /
                          static_cast<double>(profile.total_weight);
            // First m-grid index satisfied (grid is descending).
            size_t k0 = num_m;
            for (size_t k = 0; k < num_m; ++k) {
              if (options.m_grid[k] <= frac + 1e-9) {
                k0 = k;
                break;
              }
            }
            for (size_t k = 0; k < num_m; ++k) {
              double m = options.m_grid[k];
              if (frac + 1e-9 < m && frac >= 0.5 * m) {
                ++middle_band[i * num_m + k];
              }
            }
            if (k0 == num_m) continue;  // not covered at any m
            ++bucket_c[i * num_m + k0];
            for (size_t o = 0; o < no; ++o) {
              if (trig[o]) ++bucket_ct[(i * no + o) * num_m + k0];
            }
          }
        }
        // Prefix sums over the m axis: covered(i,k) counts all columns
        // whose fraction satisfies m_grid[k] (k' <= k satisfied => covered
        // for the looser m too).
        for (size_t i = 0; i < ni; ++i) {
          for (size_t k = 1; k < num_m; ++k) {
            bucket_c[i * num_m + k] += bucket_c[i * num_m + k - 1];
          }
          for (size_t o = 0; o < no; ++o) {
            for (size_t k = 1; k < num_m; ++k) {
              bucket_ct[(i * no + o) * num_m + k] +=
                  bucket_ct[(i * no + o) * num_m + k - 1];
            }
          }
        }
        auto t1 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing
        res.candidate_seconds += Seconds(t0, t1);

        // Distances of the synthetic alien values (recall estimation).
        std::vector<double> syn_dist(synthetic.size());
        for (size_t j = 0; j < synthetic.size(); ++j) {
          syn_dist[j] = eval.Distance(synthetic[j].error_value);
        }

        auto t2 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing
        res.synthetic_seconds += Seconds(t1, t2);

        // Candidate loop. The statistical tests are timed as one block
        // (t2..t3 below) rather than per candidate: two steady-clock reads
        // per enumerated candidate used to dominate small-grid profiles.
        // Only the rare survivor detection pass reads the clock, and its
        // cost is reattributed from candidate time to synthetic time.
        double detect_seconds = 0.0;
        const int64_t n_total = static_cast<int64_t>(eligible_cols);
        for (size_t i = 0; i < ni; ++i) {
          for (size_t o = 0; o < no; ++o) {
            if (th.d_outs[o] <= th.d_ins[i]) continue;
            for (size_t k = 0; k < num_m; ++k) {
              ++res.enumerated;
              int64_t covered = bucket_c[i * num_m + k];
              int64_t covered_trig = bucket_ct[(i * no + o) * num_m + k];
              if (covered < min_cov) {
                ++res.pruned;
                continue;
              }
              stats::ContingencyTable table;
              table.covered_triggered = covered_trig;
              table.covered_not_triggered = covered - covered_trig;
              int64_t trig_all = trig_total[o];
              table.uncovered_triggered = trig_all - covered_trig;
              table.uncovered_not_triggered =
                  (n_total - covered) - table.uncovered_triggered;

              double confidence =
                  options.use_wilson
                      ? stats::SdcConfidence(table, options.wilson_z)
                      : (covered > 0
                             ? 1.0 - static_cast<double>(covered_trig) /
                                         static_cast<double>(covered)
                             : 0.0);
              double h = stats::CohensH(table);
              double p = stats::ChiSquaredTestPValue(table);
              bool pass = confidence >= options.min_confidence;
              if (options.use_cohens_h && h < options.h_threshold) {
                pass = false;
              }
              if (options.use_chi_squared && p >= options.p_threshold) {
                pass = false;
              }
              if (options.use_separation_test &&
                  static_cast<double>(middle_band[i * num_m + k]) >
                      options.max_middle_band_fraction *
                          static_cast<double>(n_total)) {
                pass = false;
              }
              if (!pass) {
                ++res.rejected;
                continue;
              }
              auto tc1 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing

              Sdc sdc;
              sdc.eval_index = fi;
              sdc.eval = &eval;
              sdc.d_in = th.d_ins[i];
              sdc.d_out = th.d_outs[o];
              sdc.m = options.m_grid[k];
              sdc.confidence = confidence;
              sdc.fpr = static_cast<double>(covered_trig) /
                        static_cast<double>(n_total);
              sdc.contingency = table;
              sdc.cohens_h = h;
              sdc.chi_squared_p = p;

              // Distant-supervision detections (paper Eq. 10).
              std::vector<uint32_t> det;
              for (size_t j = 0; j < synthetic.size(); ++j) {
                if (syn_dist[j] <= sdc.d_out) continue;
                size_t b = synthetic[j].base_column;
                double total_with_err =
                    static_cast<double>(col_total[b]) + 1.0;
                double cov_with_err =
                    static_cast<double>(cov_count[b * ni + i]) +
                    (syn_dist[j] <= sdc.d_in ? 1.0 : 0.0);
                if (cov_with_err >= sdc.m * total_with_err - 1e-9) {
                  det.push_back(static_cast<uint32_t>(j));
                }
              }
              detect_seconds += Seconds(tc1, Clock::now());  // at_lint: disable(R2) wall-clock phase timing
              if (options.drop_zero_recall && det.empty()) {
                ++res.rejected;
                continue;
              }
              res.survivors.push_back(std::move(sdc));
              res.detections.push_back(std::move(det));
            }
          }
        }
        auto t3 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing
        res.candidate_seconds += Seconds(t2, t3) - detect_seconds;
        res.synthetic_seconds += detect_seconds;
      },
      eval_opt);

  // Deterministic merge in function order.
  TrainedModel model;
  model.num_synthetic = synthetic.size();
  for (auto& res : results) {
    if (res.skipped) ++model.evals_skipped;
    model.candidates_enumerated += res.enumerated;
    model.candidates_pruned += res.pruned;
    model.candidates_rejected += res.rejected;
    model.timings.candidate_gen_seconds += res.candidate_seconds;
    model.timings.synthetic_seconds += res.synthetic_seconds;
    for (size_t s = 0; s < res.survivors.size(); ++s) {
      model.constraints.push_back(std::move(res.survivors[s]));
      model.detections.push_back(std::move(res.detections[s]));
    }
  }

  model.synthetic_conf_all.assign(model.num_synthetic, 0.0);
  for (size_t r = 0; r < model.constraints.size(); ++r) {
    double c = model.constraints[r].confidence;
    for (uint32_t j : model.detections[r]) {
      model.synthetic_conf_all[j] =
          std::max(model.synthetic_conf_all[j], c);
    }
  }

  // Export the per-run totals through the uniform registry; the counters
  // accumulate across trainings, the phase timers report the latest run.
  metrics::Registry& reg = metrics::Registry::Global();
  reg.GetCounter(metrics::kMTrainerEvalsSkipped)
      .Increment(static_cast<uint64_t>(model.evals_skipped));
  reg.GetCounter(metrics::kMTrainerCandidatesEnumerated)
      .Increment(static_cast<uint64_t>(model.candidates_enumerated));
  reg.GetCounter(metrics::kMTrainerCandidatesPruned)
      .Increment(static_cast<uint64_t>(model.candidates_pruned));
  reg.GetCounter(metrics::kMTrainerCandidatesRejected)
      .Increment(static_cast<uint64_t>(model.candidates_rejected));
  reg.GetGauge(metrics::kMTrainerCandidateGenSeconds)
      .Set(model.timings.candidate_gen_seconds);
  reg.GetGauge(metrics::kMTrainerSyntheticSeconds)
      .Set(model.timings.synthetic_seconds);
  return model;
}

}  // namespace autotest::core
