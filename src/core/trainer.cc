#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_set>

#include "stats/statistics.h"
#include "table/column_store.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/parallel/thread_pool.h"
#include "util/retry.h"
#include "util/rng.h"

namespace autotest::core {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct FunctionResult {
  std::vector<Sdc> survivors;
  std::vector<std::vector<uint32_t>> detections;
  size_t enumerated = 0;
  size_t pruned = 0;
  size_t rejected = 0;
  bool skipped = false;  // dropped under an injected fault
  double candidate_seconds = 0.0;
  double synthetic_seconds = 0.0;
};

// Grid thresholds for one evaluation function.
struct Thresholds {
  std::vector<double> d_ins;
  std::vector<double> d_outs;
};

Thresholds MakeThresholds(const typedet::DomainEvalFunction& eval,
                          const TrainOptions& opt) {
  Thresholds t;
  if (eval.binary()) {
    // Binary distances {0, 1}: the only meaningful inner/outer pair.
    t.d_ins = {0.0};
    t.d_outs = {0.5};
    return t;
  }
  double range = eval.max_distance();
  for (double f : opt.d_in_fracs) t.d_ins.push_back(f * range);
  for (double f : opt.d_out_fracs) t.d_outs.push_back(f * range);
  return t;
}

// Per-eval-function accumulators over the corpus pass: coverage counts per
// (column, d_in), trigger tallies per d_out, and the m-grid buckets the
// candidate grid is scored from. Built by either the scalar
// (profile-per-column) or the columnar (pool-memoized) pass; the two MUST
// fill it identically — FoldColumn below is the shared bucketing step that
// guarantees the non-arithmetic part of that by construction.
struct EvalPass {
  size_t ni = 0;
  size_t no = 0;
  size_t eligible_cols = 0;
  std::vector<uint32_t> cov_count;    // num_cols * ni
  std::vector<uint32_t> col_total;    // num_cols
  std::vector<uint32_t> trig_total;   // no
  // bucket_c[i][k], bucket_ct[i][o][k]: columns whose coverage fraction
  // first satisfies m_grid[k] at inner threshold i.
  std::vector<uint32_t> bucket_c;     // ni * num_m
  std::vector<uint32_t> bucket_ct;    // ni * no * num_m
  // middle_band[i][k]: columns whose fraction falls in the ambiguous band
  // [m/2, m) — evidence against a natural domain separation.
  std::vector<uint32_t> middle_band;  // ni * num_m
};

EvalPass MakeEvalPass(size_t num_cols, size_t num_m, size_t ni, size_t no) {
  EvalPass pass;
  pass.ni = ni;
  pass.no = no;
  pass.cov_count.assign(num_cols * ni, 0);
  pass.col_total.assign(num_cols, 0);
  pass.trig_total.assign(no, 0);
  pass.bucket_c.assign(ni * num_m, 0);
  pass.bucket_ct.assign(ni * no * num_m, 0);
  pass.middle_band.assign(ni * num_m, 0);
  return pass;
}

// Folds one eligible column — its inner-ball coverage counts `cov` (one
// per d_in) and outer-ball trigger flags `trig` (one per d_out) — into the
// pass accumulators. Bucketing by the largest matching percentage
// satisfied, the middle-band screen, and the trigger tallies live here so
// the scalar and columnar passes share them verbatim.
void FoldColumn(const TrainOptions& options, size_t c, uint32_t total_weight,
                const uint32_t* cov, const uint8_t* trig, EvalPass* pass) {
  const size_t ni = pass->ni;
  const size_t no = pass->no;
  const size_t num_m = options.m_grid.size();
  ++pass->eligible_cols;
  pass->col_total[c] = total_weight;
  for (size_t o = 0; o < no; ++o) {
    if (trig[o] != 0) ++pass->trig_total[o];
  }
  for (size_t i = 0; i < ni; ++i) {
    pass->cov_count[c * ni + i] = cov[i];
    double frac =
        static_cast<double>(cov[i]) / static_cast<double>(total_weight);
    // First m-grid index satisfied (grid is descending).
    size_t k0 = num_m;
    for (size_t k = 0; k < num_m; ++k) {
      if (options.m_grid[k] <= frac + 1e-9) {
        k0 = k;
        break;
      }
    }
    for (size_t k = 0; k < num_m; ++k) {
      double m = options.m_grid[k];
      if (frac + 1e-9 < m && frac >= 0.5 * m) {
        ++pass->middle_band[i * num_m + k];
      }
    }
    if (k0 == num_m) continue;  // not covered at any m
    ++pass->bucket_c[i * num_m + k0];
    for (size_t o = 0; o < no; ++o) {
      if (trig[o] != 0) ++pass->bucket_ct[(i * no + o) * num_m + k0];
    }
  }
}

// Prefix sums over the m axis: covered(i,k) counts all columns whose
// fraction satisfies m_grid[k] (k' <= k satisfied => covered for the
// looser m too).
void PrefixSumBuckets(size_t num_m, EvalPass* pass) {
  for (size_t i = 0; i < pass->ni; ++i) {
    for (size_t k = 1; k < num_m; ++k) {
      pass->bucket_c[i * num_m + k] += pass->bucket_c[i * num_m + k - 1];
    }
    for (size_t o = 0; o < pass->no; ++o) {
      for (size_t k = 1; k < num_m; ++k) {
        pass->bucket_ct[(i * pass->no + o) * num_m + k] +=
            pass->bucket_ct[(i * pass->no + o) * num_m + k - 1];
      }
    }
  }
}

bool ColumnEligible(const table::DistinctValues& distinct,
                    const TrainOptions& options) {
  return distinct.total != 0 &&
         distinct.size() >= options.min_distinct_values;
}

// Legacy scalar pass: one ColumnDistanceProfile per (eval, column), each
// distance through the scalar virtual. Kept as the differential reference
// for the columnar path (TrainOptions::use_columnar = false).
EvalPass BuildPassScalar(const typedet::DomainEvalFunction& eval,
                         const std::vector<table::DistinctValues>& distinct,
                         const Thresholds& th, const TrainOptions& options) {
  const size_t num_cols = distinct.size();
  const size_t ni = th.d_ins.size();
  const size_t no = th.d_outs.size();
  EvalPass pass = MakeEvalPass(num_cols, options.m_grid.size(), ni, no);
  std::vector<uint32_t> cov(ni);
  std::vector<uint8_t> trig(no);
  for (size_t c = 0; c < num_cols; ++c) {
    if (!ColumnEligible(distinct[c], options)) continue;
    ColumnDistanceProfile profile = ComputeProfile(eval, distinct[c]);
    for (size_t o = 0; o < no; ++o) {
      trig[o] = profile.CountBeyond(th.d_outs[o]) > 0 ? 1 : 0;
    }
    for (size_t i = 0; i < ni; ++i) {
      cov[i] = static_cast<uint32_t>(profile.CountWithin(th.d_ins[i]));
    }
    FoldColumn(options, c, static_cast<uint32_t>(profile.total_weight),
               cov.data(), trig.data(), &pass);
  }
  PrefixSumBuckets(options.m_grid.size(), &pass);
  return pass;
}

// Weighted count of column values at or under each ascending threshold:
// for every (id, weight) pair the first threshold >= its distance gets a
// histogram increment, and a prefix sum turns the histogram into
// cumulative counts — one bucket scan per value instead of one comparison
// per (value, threshold). Thresholds outside ascending order (possible
// with a user-supplied grid) fall back to the direct quadratic loop. Both
// forms compute exactly `weight where distance <= threshold`, the same
// comparison ComputeProfile's sorted upper_bound evaluates.
void CountWithinThresholds(std::span<const uint32_t> ids,
                           std::span<const uint32_t> counts,
                           const std::vector<double>& pool_dist,
                           const std::vector<double>& thresholds,
                           bool ascending, uint64_t* within) {
  const size_t nt = thresholds.size();
  for (size_t t = 0; t < nt; ++t) within[t] = 0;
  if (ascending) {
    // hist[b]: weight whose first satisfied threshold is b (nt = none).
    std::vector<uint64_t> hist(nt + 1, 0);
    for (size_t j = 0; j < ids.size(); ++j) {
      double d = pool_dist[ids[j]];
      size_t b = 0;
      while (b < nt && d > thresholds[b]) ++b;
      hist[b] += counts[j];
    }
    uint64_t acc = 0;
    for (size_t t = 0; t < nt; ++t) {
      acc += hist[t];
      within[t] = acc;
    }
    return;
  }
  for (size_t j = 0; j < ids.size(); ++j) {
    double d = pool_dist[ids[j]];
    for (size_t t = 0; t < nt; ++t) {
      if (d <= thresholds[t]) within[t] += counts[j];
    }
  }
}

// Columnar pass (DESIGN.md §4k): the eval function is scored once per
// distinct pool value via BatchDistance blocks, then per-column statistics
// are gathered from the distance array by pool id — no per-column
// profiles, no per-value virtual calls.
EvalPass BuildPassColumnar(const typedet::DomainEvalFunction& eval,
                           const table::ColumnStore& store,
                           const Thresholds& th, const TrainOptions& options,
                           std::vector<double>* pool_dist) {
  const size_t num_cols = store.num_columns();
  const size_t ni = th.d_ins.size();
  const size_t no = th.d_outs.size();
  EvalPass pass = MakeEvalPass(num_cols, options.m_grid.size(), ni, no);

  pool_dist->resize(store.pool_size());
  const std::span<const std::string_view> pool = store.pool();
  const size_t block = std::max<size_t>(1, options.eval_batch_size);
  for (size_t off = 0; off < pool.size(); off += block) {
    size_t n = std::min(block, pool.size() - off);
    eval.BatchDistance(pool.subspan(off, n),
                       std::span<double>(*pool_dist).subspan(off, n),
                       store.pool_id(), off);
  }

  const bool in_ascending =
      std::is_sorted(th.d_ins.begin(), th.d_ins.end());
  const bool out_ascending =
      std::is_sorted(th.d_outs.begin(), th.d_outs.end());
  std::vector<uint64_t> within_in(ni);
  std::vector<uint64_t> within_out(no);
  std::vector<uint32_t> cov(ni);
  std::vector<uint8_t> trig(no);
  for (size_t c = 0; c < num_cols; ++c) {
    table::ColumnStore::ColumnRef col = store.column(c);
    if (col.total_weight == 0 ||
        col.size() < options.min_distinct_values) {
      continue;
    }
    CountWithinThresholds(col.ids, col.counts, *pool_dist, th.d_ins,
                          in_ascending, within_in.data());
    CountWithinThresholds(col.ids, col.counts, *pool_dist, th.d_outs,
                          out_ascending, within_out.data());
    for (size_t i = 0; i < ni; ++i) {
      cov[i] = static_cast<uint32_t>(within_in[i]);
    }
    for (size_t o = 0; o < no; ++o) {
      trig[o] = col.total_weight - within_out[o] > 0 ? 1 : 0;
    }
    FoldColumn(options, c, static_cast<uint32_t>(col.total_weight),
               cov.data(), trig.data(), &pass);
  }
  PrefixSumBuckets(options.m_grid.size(), &pass);
  return pass;
}

// A candidate that survived the statistical tests; its synthetic-recall
// detection pass is deferred to DetectSynthetic so the candidate phase
// needs no per-candidate clock reads.
struct PendingCandidate {
  size_t i = 0;  // inner-threshold index (for cov_count lookups)
  Sdc sdc;
};

// The candidate grid: enumeration, pruning and statistical assessment.
// Pure arithmetic over the pass accumulators — no clocks, no detection.
std::vector<PendingCandidate> EnumerateCandidates(
    const TrainOptions& options, const Thresholds& th, const EvalPass& pass,
    size_t fi, const typedet::DomainEvalFunction& eval, int64_t min_cov,
    FunctionResult* res) {
  std::vector<PendingCandidate> pending;
  const size_t ni = pass.ni;
  const size_t no = pass.no;
  const size_t num_m = options.m_grid.size();
  const int64_t n_total = static_cast<int64_t>(pass.eligible_cols);
  for (size_t i = 0; i < ni; ++i) {
    for (size_t o = 0; o < no; ++o) {
      if (th.d_outs[o] <= th.d_ins[i]) continue;
      for (size_t k = 0; k < num_m; ++k) {
        ++res->enumerated;
        int64_t covered = pass.bucket_c[i * num_m + k];
        int64_t covered_trig = pass.bucket_ct[(i * no + o) * num_m + k];
        if (covered < min_cov) {
          ++res->pruned;
          continue;
        }
        stats::ContingencyTable table;
        table.covered_triggered = covered_trig;
        table.covered_not_triggered = covered - covered_trig;
        int64_t trig_all = pass.trig_total[o];
        table.uncovered_triggered = trig_all - covered_trig;
        table.uncovered_not_triggered =
            (n_total - covered) - table.uncovered_triggered;

        double confidence =
            options.use_wilson
                ? stats::SdcConfidence(table, options.wilson_z)
                : (covered > 0
                       ? 1.0 - static_cast<double>(covered_trig) /
                                   static_cast<double>(covered)
                       : 0.0);
        double h = stats::CohensH(table);
        double p = stats::ChiSquaredTestPValue(table);
        bool keep = confidence >= options.min_confidence;
        if (options.use_cohens_h && h < options.h_threshold) {
          keep = false;
        }
        if (options.use_chi_squared && p >= options.p_threshold) {
          keep = false;
        }
        if (options.use_separation_test &&
            static_cast<double>(pass.middle_band[i * num_m + k]) >
                options.max_middle_band_fraction *
                    static_cast<double>(n_total)) {
          keep = false;
        }
        if (!keep) {
          ++res->rejected;
          continue;
        }

        PendingCandidate cand;
        cand.i = i;
        cand.sdc.eval_index = fi;
        cand.sdc.eval = &eval;
        cand.sdc.d_in = th.d_ins[i];
        cand.sdc.d_out = th.d_outs[o];
        cand.sdc.m = options.m_grid[k];
        cand.sdc.confidence = confidence;
        cand.sdc.fpr = static_cast<double>(covered_trig) /
                       static_cast<double>(n_total);
        cand.sdc.contingency = table;
        cand.sdc.cohens_h = h;
        cand.sdc.chi_squared_p = p;
        pending.push_back(std::move(cand));
      }
    }
  }
  return pending;
}

// Distant-supervision detections (paper Eq. 10) for the surviving
// candidates: its own phase, timed as recall estimation by the caller —
// candidate timing no longer absorbs a clock-pair per survivor.
void DetectSynthetic(const TrainOptions& options, const EvalPass& pass,
                     const std::vector<SyntheticColumn>& synthetic,
                     const std::vector<double>& syn_dist,
                     std::vector<PendingCandidate> pending,
                     FunctionResult* res) {
  const size_t ni = pass.ni;
  for (PendingCandidate& cand : pending) {
    const Sdc& sdc = cand.sdc;
    std::vector<uint32_t> det;
    for (size_t j = 0; j < synthetic.size(); ++j) {
      if (syn_dist[j] <= sdc.d_out) continue;
      size_t b = synthetic[j].base_column;
      double total_with_err =
          static_cast<double>(pass.col_total[b]) + 1.0;
      double cov_with_err =
          static_cast<double>(pass.cov_count[b * ni + cand.i]) +
          (syn_dist[j] <= sdc.d_in ? 1.0 : 0.0);
      if (cov_with_err >= sdc.m * total_with_err - 1e-9) {
        det.push_back(static_cast<uint32_t>(j));
      }
    }
    if (options.drop_zero_recall && det.empty()) {
      ++res->rejected;
      continue;
    }
    res->survivors.push_back(std::move(cand.sdc));
    res->detections.push_back(std::move(det));
  }
}

}  // namespace

std::vector<SyntheticColumn> BuildSyntheticCorpus(const table::Corpus& corpus,
                                                  size_t count,
                                                  uint64_t seed) {
  AT_CHECK(corpus.size() >= 2);
  util::Rng rng(seed);
  // Per-column value sets to reject alien values that are actually valid
  // members of the base column.
  std::vector<std::unordered_set<std::string>> value_sets(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    value_sets[i].insert(corpus[i].values.begin(), corpus[i].values.end());
  }
  std::vector<SyntheticColumn> out;
  out.reserve(count);
  int64_t n = static_cast<int64_t>(corpus.size());
  // If every donor value is already present in every base column (e.g. a
  // corpus of identical columns), no alien value exists and the rejection
  // loop below would spin forever; cap the attempts instead.
  size_t attempts = 0;
  const size_t max_attempts = 1000 * count + 100000;
  while (out.size() < count) {
    AT_CHECK_MSG(++attempts <= max_attempts,
                 "BuildSyntheticCorpus: could not find alien donor values "
                 "(do all corpus columns share the same value set?)");
    size_t base = static_cast<size_t>(rng.UniformInt(0, n - 1));
    size_t donor = static_cast<size_t>(rng.UniformInt(0, n - 1));
    if (base == donor || corpus[base].values.empty() ||
        corpus[donor].values.empty()) {
      continue;
    }
    const std::string& v = rng.Pick(corpus[donor].values);
    if (value_sets[base].count(v) > 0) continue;  // not an error in base
    out.push_back(SyntheticColumn{static_cast<uint32_t>(base), v});
  }
  return out;
}

TrainedModel TrainAutoTest(const table::Corpus& corpus,
                           const typedet::EvalFunctionSet& evals,
                           const TrainOptions& options) {
  AT_CHECK(!corpus.empty());
  AT_CHECK(!options.m_grid.empty());
  for (size_t k = 1; k < options.m_grid.size(); ++k) {
    AT_CHECK_MSG(options.m_grid[k] < options.m_grid[k - 1],
                 "m_grid must be strictly descending");
  }

  // Shared precomputation: distinct values per corpus column.
  util::parallel::Options par_opt;
  par_opt.num_threads = options.num_threads;
  std::vector<table::DistinctValues> distinct(corpus.size());
  util::parallel::ParallelFor(
      corpus.size(),
      [&](size_t i) { distinct[i] = table::Distinct(corpus[i]); }, par_opt);

  std::vector<SyntheticColumn> synthetic = BuildSyntheticCorpus(
      corpus, options.synthetic_count, options.seed ^ 0x5f5f5f5fULL);

  // Columnar path setup: intern every distinct value once into the shared
  // arena-backed pool. Synthetic error values are donor values from the
  // corpus, so they resolve to pool ids and their distances come free with
  // the pool evaluation.
  std::optional<table::ColumnStore> store;
  std::vector<uint32_t> syn_ids;
  if (options.use_columnar) {
    store.emplace(table::ColumnStore::Build(distinct));
    syn_ids.resize(synthetic.size());
    for (size_t j = 0; j < synthetic.size(); ++j) {
      uint32_t id = store->Find(synthetic[j].error_value);
      AT_CHECK_MSG(id != table::ColumnStore::kNotFound,
                   "synthetic error value missing from the interned pool");
      syn_ids[j] = id;
    }
  }

  const int64_t min_cov =
      options.enable_pruning
          ? stats::MinCoverageForConfidence(options.min_confidence,
                                            options.wilson_z)
          : 0;

  std::vector<FunctionResult> results(evals.size());

  // One evaluation function per chunk: per-function cost is highly skewed
  // (embedding families dominate), so let the pool steal at item
  // granularity instead of batching functions together.
  util::parallel::Options eval_opt = par_opt;
  eval_opt.grain = 1;
  util::parallel::ParallelFor(
      evals.size(),
      [&](size_t fi) {
        FunctionResult& res = results[fi];
        // Injected allocation/compute fault for this evaluation family.
        // The decision is keyed on the family index so which family faults
        // is independent of pool scheduling; retryable codes are retried
        // in place (pure CPU work — no backoff needed), permanent codes or
        // an exhausted budget drop the family (counted) and train on the
        // rest.
        const size_t budget = options.eval_retry_attempts > 0
                                  ? options.eval_retry_attempts
                                  : 1;
        for (size_t attempt = 0; attempt < budget; ++attempt) {
          auto injected = util::FailpointFiresKeyed(
              util::kFpTrainerEval,
              fi * 0x9e3779b97f4a7c15ULL + attempt,
              util::StatusCode::kResourceExhausted);
          if (!injected) break;
          if (!util::IsRetryableCode(*injected) || attempt + 1 == budget) {
            res.skipped = true;
            return;
          }
        }
        auto t0 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing
        const auto& eval = evals.at(fi);
        Thresholds th = MakeThresholds(eval, options);

        // Corpus pass: coverage/trigger accumulators, via the columnar
        // pool-memoized kernels or the legacy per-column profiles.
        std::vector<double> pool_dist;
        EvalPass pass =
            options.use_columnar
                ? BuildPassColumnar(eval, *store, th, options, &pool_dist)
                : BuildPassScalar(eval, distinct, th, options);
        auto t1 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing
        res.candidate_seconds += Seconds(t0, t1);

        // Distances of the synthetic alien values (recall estimation). In
        // the columnar path these are gathered from the pool evaluation.
        std::vector<double> syn_dist(synthetic.size());
        if (options.use_columnar) {
          for (size_t j = 0; j < synthetic.size(); ++j) {
            syn_dist[j] = pool_dist[syn_ids[j]];
          }
        } else {
          for (size_t j = 0; j < synthetic.size(); ++j) {
            syn_dist[j] = eval.Distance(synthetic[j].error_value);
          }
        }
        auto t2 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing
        res.synthetic_seconds += Seconds(t1, t2);

        // Candidate grid: enumeration + statistical tests, no clock reads.
        std::vector<PendingCandidate> pending = EnumerateCandidates(
            options, th, pass, fi, eval, min_cov, &res);
        auto t3 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing
        res.candidate_seconds += Seconds(t2, t3);

        // Deferred detection pass for the survivors, attributed to recall
        // estimation as one block (the per-candidate clock pair this
        // replaces leaked detect time into candidate_gen on small grids).
        DetectSynthetic(options, pass, synthetic, syn_dist,
                        std::move(pending), &res);
        auto t4 = Clock::now();  // at_lint: disable(R2) wall-clock phase timing
        res.synthetic_seconds += Seconds(t3, t4);
      },
      eval_opt);

  // Deterministic merge in function order.
  TrainedModel model;
  model.num_synthetic = synthetic.size();
  for (auto& res : results) {
    if (res.skipped) ++model.evals_skipped;
    model.candidates_enumerated += res.enumerated;
    model.candidates_pruned += res.pruned;
    model.candidates_rejected += res.rejected;
    model.timings.candidate_gen_seconds += res.candidate_seconds;
    model.timings.synthetic_seconds += res.synthetic_seconds;
    for (size_t s = 0; s < res.survivors.size(); ++s) {
      model.constraints.push_back(std::move(res.survivors[s]));
      model.detections.push_back(std::move(res.detections[s]));
    }
  }

  model.synthetic_conf_all.assign(model.num_synthetic, 0.0);
  for (size_t r = 0; r < model.constraints.size(); ++r) {
    double c = model.constraints[r].confidence;
    for (uint32_t j : model.detections[r]) {
      model.synthetic_conf_all[j] =
          std::max(model.synthetic_conf_all[j], c);
    }
  }

  // Export the per-run totals through the uniform registry; the counters
  // accumulate across trainings, the phase timers report the latest run.
  metrics::Registry& reg = metrics::Registry::Global();
  reg.GetCounter(metrics::kMTrainerEvalsSkipped)
      .Increment(static_cast<uint64_t>(model.evals_skipped));
  reg.GetCounter(metrics::kMTrainerCandidatesEnumerated)
      .Increment(static_cast<uint64_t>(model.candidates_enumerated));
  reg.GetCounter(metrics::kMTrainerCandidatesPruned)
      .Increment(static_cast<uint64_t>(model.candidates_pruned));
  reg.GetCounter(metrics::kMTrainerCandidatesRejected)
      .Increment(static_cast<uint64_t>(model.candidates_rejected));
  reg.GetGauge(metrics::kMTrainerCandidateGenSeconds)
      .Set(model.timings.candidate_gen_seconds);
  reg.GetGauge(metrics::kMTrainerSyntheticSeconds)
      .Set(model.timings.synthetic_seconds);
  if (store.has_value()) {
    reg.GetGauge(metrics::kMTrainerPoolValues)
        .Set(static_cast<double>(store->pool_size()));
    reg.GetGauge(metrics::kMTrainerPoolArenaBytes)
        .Set(static_cast<double>(store->arena_bytes()));
  }
  return model;
}

}  // namespace autotest::core
