#ifndef AUTOTEST_CORE_PREDICTOR_H_
#define AUTOTEST_CORE_PREDICTOR_H_

#include <string>
#include <vector>

#include "core/sdc.h"
#include "table/column.h"
#include "util/budget.h"
#include "util/retry.h"
#include "util/status.h"

namespace autotest::core {

/// One predicted erroneous cell.
struct CellDetection {
  size_t row = 0;
  std::string value;
  /// Confidence of the most confident SDC that flagged the value (the
  /// paper assigns predictions the confidence of their best rule).
  double confidence = 0.0;
  /// Index (within the predictor's rule list) of that rule.
  size_t rule_index = 0;
  /// Human-readable explanation, e.g. the rule's Table-1-style rendering.
  std::string explanation;
};

/// Time budget for a deadline-aware prediction (the serving tier's
/// per-request deadline, DESIGN.md §4h). The deadline is an absolute
/// reading of `clock` (so queue time can count against it); a null clock
/// means "no deadline".
struct PredictBudget {
  util::Clock* clock = nullptr;
  int64_t deadline_micros = 0;
  /// Optional request-wide resource budget (DESIGN.md §4j). When set,
  /// each rule group charges its candidate evaluations (one cell-work
  /// unit per distinct value) before computing distances, so a column
  /// that would explode evaluation work fails with the budget's
  /// structured kResourceExhausted instead of burning the pool. Shared
  /// across the request's parallel column workers (charges are atomic).
  /// Not owned.
  util::ResourceBudget* resources = nullptr;
};

/// Outcome of a budgeted prediction. Expiry is a *partial result*, not an
/// error: detections found before the deadline are returned with
/// `expired` set, and the group counts record how much of the rule set
/// was actually consulted (degraded-provenance reporting).
struct BudgetedPrediction {
  std::vector<CellDetection> detections;
  bool expired = false;
  size_t groups_evaluated = 0;
  size_t groups_total = 0;
};

/// Online prediction (paper Figure 5, right side; Appendix B.2).
///
/// Rules are grouped by their evaluation function so each distinct value's
/// distance is computed once per function, and identical pre-conditions
/// within a group are checked once ("compressing" pre-condition checks).
class SdcPredictor {
 public:
  /// `rules` reference evaluation functions owned elsewhere (the
  /// EvalFunctionSet must outlive the predictor).
  ///
  /// Rules that cannot be served — unresolved evaluation function (null
  /// eval, e.g. from a rule file loaded against a mismatched function set)
  /// or semantically invalid parameters (non-finite, d_in > d_out) — are
  /// dropped and counted in skipped_rules() instead of aborting: the online
  /// stage degrades to the rules it can trust (Figure 5's serve path must
  /// survive stale/corrupt rule files).
  explicit SdcPredictor(std::vector<Sdc> rules);

  /// Detects erroneous cells in a column. Returns one entry per offending
  /// row, each carrying the best-rule confidence and explanation.
  std::vector<CellDetection> Predict(const table::Column& column) const;

  /// Predict with an error channel: fails only under injected faults
  /// (failpoint "predictor.column", simulating per-column resource
  /// exhaustion) so callers can exercise column-level skip logic.
  [[nodiscard]] util::Result<std::vector<CellDetection>> TryPredict(
      const table::Column& column) const;

  /// Deadline-aware variant for the serving tier: the budget is checked
  /// before each rule group (the natural phase boundary — one group = one
  /// evaluation function over all distinct values), so expiry yields the
  /// detections found so far instead of stalling. Fails under injected
  /// faults, exactly like TryPredict above, and with the resource
  /// budget's structured kResourceExhausted when a rule group's
  /// candidate-evaluation charge is rejected (budget.resources set).
  [[nodiscard]] util::Result<BudgetedPrediction> TryPredict(
      const table::Column& column, const PredictBudget& budget) const;

  size_t num_rules() const { return rules_.size(); }
  /// Rules rejected at construction (unresolved or invalid).
  size_t skipped_rules() const { return skipped_rules_; }
  const std::vector<Sdc>& rules() const { return rules_; }

 private:
  struct Group {
    const typedet::DomainEvalFunction* eval;
    std::vector<size_t> rule_ids;
  };

  /// Shared implementation: evaluates rule groups until done or (when
  /// `budget` is non-null) the deadline passes. A rejected resource
  /// charge stops evaluation and lands in `resource_error` (when
  /// non-null); the caller turns it into a request-level error.
  BudgetedPrediction PredictInternal(const table::Column& column,
                                     const PredictBudget* budget,
                                     util::Status* resource_error) const;

  std::vector<Sdc> rules_;
  std::vector<Group> groups_;
  size_t skipped_rules_ = 0;
};

}  // namespace autotest::core

#endif  // AUTOTEST_CORE_PREDICTOR_H_
