#ifndef AUTOTEST_CORE_SELECTION_H_
#define AUTOTEST_CORE_SELECTION_H_

#include <cstdint>
#include <vector>

#include "core/trainer.h"
#include "lp/simplex.h"

namespace autotest::core {

/// Options for the CSS / FSS selection step (paper Section 5.3).
struct SelectionOptions {
  size_t size_budget = 500;  // B_size
  double fpr_budget = 0.1;   // B_FPR
  /// Fine-Select confidence-approximation tolerance; delta >= 1 makes FSS
  /// degenerate to CSS (paper Definition 5).
  double delta = 1e-3;
  uint64_t seed = 1234;
  /// LP-size guard: candidates beyond this are pre-filtered greedily by
  /// detection count per unit FPR before the LP is built.
  size_t max_lp_variables = 2500;
  /// Optional post-rounding repair to meet the budgets deterministically
  /// (the paper's guarantees hold in expectation without repair).
  bool repair_to_budgets = false;
  /// Workers for the per-candidate scoring passes (0 = hardware
  /// concurrency). Results are written to per-candidate slots, so the
  /// selection outcome is independent of this setting.
  size_t num_threads = 0;
};

struct SelectionResult {
  /// Indices into TrainedModel::constraints.
  std::vector<size_t> selected;
  double lp_objective = 0.0;
  lp::SolveStatus lp_status = lp::SolveStatus::kIterationLimit;
  size_t lp_num_variables = 0;
  size_t lp_num_rows = 0;
  double seconds = 0.0;
};

/// Coarse-grained SDC Selection (Algorithm 1): LP-relaxation of the
/// max-coverage ILP with size and FPR budgets, then randomized rounding.
SelectionResult CoarseSelect(const TrainedModel& model,
                             const SelectionOptions& options = {});

/// Fine-grained SDC Selection: like CSS, but a constraint only counts as
/// covering synthetic column j if its confidence is within delta of
/// conf(C_j, R_all), preserving the confidence calibration of the full set.
SelectionResult FineSelect(const TrainedModel& model,
                           const SelectionOptions& options = {});

/// Shared implementation; delta >= 1 reproduces CoarseSelect exactly.
SelectionResult SelectWithDelta(const TrainedModel& model,
                                const SelectionOptions& options,
                                double delta);

}  // namespace autotest::core

#endif  // AUTOTEST_CORE_SELECTION_H_
