#ifndef AUTOTEST_CORE_SELECTION_H_
#define AUTOTEST_CORE_SELECTION_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/trainer.h"
#include "lp/incremental.h"
#include "lp/simplex.h"

namespace autotest::core {

/// Which engine solves the CSS-LP relaxation (paper Eq. 14-18).
enum class SelectionSolver {
  /// Sparse revised simplex (lp::SolveLp); warm-startable across
  /// candidate additions via lp::IncrementalSolver. Default.
  kRevisedSimplex,
  /// Retained dense tableau reference (lp::SolveLpDense), kept for
  /// equivalence checking while the deprecation window is open.
  kDenseTableau,
  /// Skip the LP entirely: lazy greedy weighted max coverage under both
  /// budgets, with the classic (1 - 1/e) approximation guarantee on the
  /// size-budget relaxation. Deterministic (no randomized rounding).
  kGreedy,
};

/// Options for the CSS / FSS selection step (paper Section 5.3).
struct SelectionOptions {
  size_t size_budget = 500;  // B_size
  double fpr_budget = 0.1;   // B_FPR
  /// Fine-Select confidence-approximation tolerance; delta >= 1 makes FSS
  /// degenerate to CSS (paper Definition 5).
  double delta = 1e-3;
  uint64_t seed = 1234;
  /// LP-size guard: candidates beyond this are pre-filtered greedily by
  /// detection count per unit FPR before the LP is built.
  size_t max_lp_variables = 2500;
  /// Optional post-rounding repair to meet the budgets deterministically
  /// (the paper's guarantees hold in expectation without repair).
  bool repair_to_budgets = false;
  /// Workers for the per-candidate scoring passes (0 = hardware
  /// concurrency). Results are written to per-candidate slots, so the
  /// selection outcome is independent of this setting.
  size_t num_threads = 0;
  /// Engine for the LP relaxation (or the greedy bypass).
  SelectionSolver solver = SelectionSolver::kRevisedSimplex;
  /// When > 0 and more than this many deduplicated candidates survive,
  /// selection drops to the greedy path regardless of `solver` (the LP is
  /// O(iterations x nonzeros); greedy is near-linear in the candidates).
  size_t greedy_fallback_threshold = 0;
  /// Revised-simplex basis refactorization cadence: number of eta updates
  /// between sparse-LU rebuilds.
  size_t refactor_interval = 64;
};

struct SelectionResult {
  /// Indices into TrainedModel::constraints.
  std::vector<size_t> selected;
  double lp_objective = 0.0;
  lp::SolveStatus lp_status = lp::SolveStatus::kIterationLimit;
  size_t lp_num_variables = 0;
  size_t lp_num_rows = 0;
  double seconds = 0.0;
  /// True when the greedy path produced the selection (no LP, no rounding).
  bool used_greedy = false;
  /// True when the LP re-priced from a previous optimal basis instead of
  /// running the full two-phase method.
  bool warm_started = false;
  /// Greedy path only: upper bound on the optimal coverage implied by the
  /// (1 - 1/e) guarantee, i.e. achieved coverage / (1 - 1/e).
  double greedy_opt_bound = 0.0;
};

/// Coarse-grained SDC Selection (Algorithm 1): LP-relaxation of the
/// max-coverage ILP with size and FPR budgets, then randomized rounding.
SelectionResult CoarseSelect(const TrainedModel& model,
                             const SelectionOptions& options = {});

/// Fine-grained SDC Selection: like CSS, but a constraint only counts as
/// covering synthetic column j if its confidence is within delta of
/// conf(C_j, R_all), preserving the confidence calibration of the full set.
SelectionResult FineSelect(const TrainedModel& model,
                           const SelectionOptions& options = {});

/// Shared implementation; delta >= 1 reproduces CoarseSelect exactly.
SelectionResult SelectWithDelta(const TrainedModel& model,
                                const SelectionOptions& options,
                                double delta);

/// The paper pipeline's two-round flow: a coarse round (delta = 1)
/// followed by a fine round (options.delta), run through one
/// IncrementalSelector so the fine round narrows the coarse round's
/// eligibility state in place instead of rescanning every detection list.
/// Returns the fine result; the coarse result is written to `coarse_out`
/// when non-null. The fine result is identical to FineSelect(...).
SelectionResult CoarseThenFineSelect(const TrainedModel& model,
                                     const SelectionOptions& options,
                                     SelectionResult* coarse_out = nullptr);

/// Incremental CSS/FSS selector over a growing candidate stream.
///
/// The LP row skeleton (one coverage row per synthetic column plus the
/// size and FPR budget rows) is fixed at construction, so considering
/// more candidates is a pure column addition: Reselect re-prices from the
/// previous optimal basis instead of solving from scratch. The candidate
/// processing order, deduplication, LP column order, and rounding draws
/// are all pure functions of (model, options, delta, num_candidates), so
/// a warm Reselect returns the same SelectionResult as a cold
/// SelectWithDelta over the same prefix — the property suite enforces it.
class IncrementalSelector {
 public:
  IncrementalSelector(const TrainedModel& model, const SelectionOptions& options,
                      double delta);
  ~IncrementalSelector();

  /// Selects over the first `num_candidates` rules of the model. Counts
  /// are clamped to the model size and must not shrink across calls.
  SelectionResult Reselect(size_t num_candidates);

  /// Selects over every candidate in the model.
  SelectionResult SelectAll();

  /// Switches the Fine-Select tolerance. When delta shrinks, eligibility
  /// sets are narrowed in place (they are monotone in delta); the LP is
  /// rebuilt cold on the next solve because dedup representatives can
  /// change non-monotonically.
  void SetDelta(double delta);

  double delta() const { return delta_; }
  size_t num_candidates_seen() const { return num_seen_; }

 private:
  // The LP mirror plus the bookkeeping to map kept candidates to columns.
  struct BuiltLp {
    std::unique_ptr<lp::IncrementalSolver> solver;
    std::vector<size_t> x_vars;        // parallel to the rule list built
    std::vector<uint32_t> y_var_of_j;  // kNoVar when the column is absent
  };

  void IngestCandidates(size_t upto);
  void RebuildDedup();
  void DedupStream(size_t lo, size_t hi);
  BuiltLp BuildProgram(const std::vector<size_t>& rules) const;
  void AppendColumn(BuiltLp* built, size_t rule) const;
  lp::Solution RunSolver(BuiltLp* built, bool* warm_out) const;
  void RoundAndFinish(const lp::Solution& sol,
                      const std::vector<size_t>& active_rules,
                      const std::vector<size_t>& x_vars,
                      SelectionResult* result) const;
  SelectionResult RunGreedy() const;
  std::vector<size_t> PrefilteredRules() const;

  const TrainedModel& model_;
  SelectionOptions options_;
  double delta_;
  size_t num_seen_ = 0;
  // Per seen rule: synthetic columns it may cover under delta_.
  std::vector<std::vector<uint32_t>> eligible_;
  // Dedup state: eligible-set hash -> position in kept_.
  std::unordered_map<uint64_t, size_t> best_by_set_;
  std::vector<size_t> kept_;  // representative rules, stable positions
  // Persistent warm program over kept_ (absent when dirty or prefiltered).
  BuiltLp lp_;
  size_t lp_cols_built_ = 0;  // kept_ positions already in lp_
  bool structure_dirty_ = true;
};

}  // namespace autotest::core

#endif  // AUTOTEST_CORE_SELECTION_H_
