#ifndef AUTOTEST_CORE_AUTO_TEST_H_
#define AUTOTEST_CORE_AUTO_TEST_H_

#include <memory>
#include <vector>

#include "core/predictor.h"
#include "core/selection.h"
#include "core/trainer.h"
#include "table/table.h"
#include "typedet/eval_functions.h"

namespace autotest::core {

/// The three Auto-Test variants evaluated in the paper (Section 6.2).
enum class Variant {
  kAllConstraints,  // R_all after statistical pruning
  kCoarseSelect,    // Algorithm 1 (CSS)
  kFineSelect,      // FSS with confidence approximation
};

const char* VariantName(Variant variant);

/// End-to-end configuration.
struct AutoTestConfig {
  typedet::EvalFunctionSetOptions eval_options;
  TrainOptions train_options;
  SelectionOptions selection_options;
};

/// Facade tying the offline stage together: build evaluation functions
/// from a corpus, learn SDC candidates with statistical tests, and expose
/// selected rule sets as online predictors (paper Figure 5).
class AutoTest {
 public:
  /// Runs the full offline stage on a training corpus.
  static AutoTest Train(const table::Corpus& corpus,
                        const AutoTestConfig& config = {});

  AutoTest(AutoTest&&) = default;
  AutoTest& operator=(AutoTest&&) = default;

  const TrainedModel& model() const { return model_; }
  const typedet::EvalFunctionSet& evals() const { return *evals_; }
  const AutoTestConfig& config() const { return config_; }

  /// Runs selection for a variant (no-op for kAllConstraints). Uses the
  /// stored selection options unless an override is provided.
  SelectionResult Select(Variant variant,
                         const SelectionOptions* override_options =
                             nullptr) const;

  /// Builds an online predictor over the variant's rule set.
  SdcPredictor MakePredictor(Variant variant,
                             const SelectionOptions* override_options =
                                 nullptr) const;

  /// Builds a predictor over an explicit subset of model constraints.
  SdcPredictor MakePredictorFor(const std::vector<size_t>& rule_indices)
      const;

 private:
  AutoTest() = default;

  AutoTestConfig config_;
  // unique_ptr keeps DomainEvalFunction addresses stable across moves.
  std::unique_ptr<typedet::EvalFunctionSet> evals_;
  TrainedModel model_;
};

}  // namespace autotest::core

#endif  // AUTOTEST_CORE_AUTO_TEST_H_
