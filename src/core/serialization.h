#ifndef AUTOTEST_CORE_SERIALIZATION_H_
#define AUTOTEST_CORE_SERIALIZATION_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/sdc.h"
#include "typedet/eval_functions.h"

namespace autotest::core {

/// Persistence for learned rule sets: the offline stage runs once, and the
/// online stage loads the distilled rules (paper Figure 5's deployment
/// split).
///
/// Format: a line-oriented text file. Each rule line carries the stable
/// evaluation-function id plus the learned parameters and calibration
/// statistics. Rule files are valid against an EvalFunctionSet built the
/// same way as at save time (same corpus, options and seed) — embedding
/// centroids are corpus-derived, so the ids must match.
///
///   # autotest-sdc v1
///   rule <eval-id> <d_in> <d_out> <m> <conf> <fpr> <ct> <cnt> <ut> <unt>
///        <h> <p>
///
/// Fields are tab-separated; ids are escaped (\t, \n, \\).

/// Serializes rules to the text format.
std::string SerializeRules(const std::vector<Sdc>& rules);

/// Parses rules and resolves their evaluation functions against `evals`.
/// Returns nullopt on malformed input. Rules whose eval id is unknown are
/// skipped and counted in *unresolved (if non-null).
std::optional<std::vector<Sdc>> DeserializeRules(
    std::string_view text, const typedet::EvalFunctionSet& evals,
    size_t* unresolved = nullptr);

/// File helpers.
bool SaveRulesToFile(const std::vector<Sdc>& rules, const std::string& path);
std::optional<std::vector<Sdc>> LoadRulesFromFile(
    const std::string& path, const typedet::EvalFunctionSet& evals,
    size_t* unresolved = nullptr);

/// Finds an evaluation function by id; nullptr if absent. (Declared here
/// to keep EvalFunctionSet's surface minimal.)
const typedet::DomainEvalFunction* FindEvalById(
    const typedet::EvalFunctionSet& evals, std::string_view id);

}  // namespace autotest::core

#endif  // AUTOTEST_CORE_SERIALIZATION_H_
