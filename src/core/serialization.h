#ifndef AUTOTEST_CORE_SERIALIZATION_H_
#define AUTOTEST_CORE_SERIALIZATION_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/sdc.h"
#include "typedet/eval_functions.h"
#include "util/status.h"

namespace autotest::core {

/// Persistence for learned rule sets: the offline stage runs once, and the
/// online stage loads the distilled rules (paper Figure 5's deployment
/// split).
///
/// Format: a line-oriented text file. Each rule line carries the stable
/// evaluation-function id plus the learned parameters and calibration
/// statistics. Rule files are valid against an EvalFunctionSet built the
/// same way as at save time (same corpus, options and seed) — embedding
/// centroids are corpus-derived, so the ids must match.
///
///   # autotest-sdc v1
///   rule <eval-id> <d_in> <d_out> <m> <conf> <fpr> <ct> <cnt> <ut> <unt>
///        <h> <p>
///
/// Fields are tab-separated; ids are escaped (\t, \n, \\).

/// Serializes rules to the text format.
std::string SerializeRules(const std::vector<Sdc>& rules);

/// Parses rules and resolves their evaluation functions against `evals`.
/// Rules whose eval id is unknown are skipped and counted in *unresolved
/// (if non-null) — a counted degradation, not an error.
///
/// Everything else about the input is treated as untrusted: errors carry
/// the 1-based line number and the offending field name. kInvalidArgument
/// for a missing or wrong-version header and for semantically invalid
/// parameters (non-finite values, d_in > d_out, m/conf/fpr outside [0,1],
/// negative contingency counts); kDataLoss for truncated or corrupt rule
/// lines.
[[nodiscard]] util::Result<std::vector<Sdc>> TryDeserializeRules(
    std::string_view text, const typedet::EvalFunctionSet& evals,
    size_t* unresolved = nullptr);

/// Loads rules from a file; kNotFound/kIoError for unreadable files, else
/// TryDeserializeRules diagnostics with the path as context.
[[nodiscard]] util::Result<std::vector<Sdc>> TryLoadRulesFromFile(
    const std::string& path, const typedet::EvalFunctionSet& evals,
    size_t* unresolved = nullptr);

/// Atomically writes rules to `path`: serializes into `path` + ".tmp" and
/// renames over the target, so a failed save never leaves a truncated
/// rules.sdc behind. kIoError on any write/rename failure.
[[nodiscard]] util::Status TrySaveRulesToFile(const std::vector<Sdc>& rules,
                                              const std::string& path);

/// Legacy shims over the Try* functions; they discard the diagnostic.
bool SaveRulesToFile(const std::vector<Sdc>& rules, const std::string& path);
std::optional<std::vector<Sdc>> DeserializeRules(
    std::string_view text, const typedet::EvalFunctionSet& evals,
    size_t* unresolved = nullptr);
std::optional<std::vector<Sdc>> LoadRulesFromFile(
    const std::string& path, const typedet::EvalFunctionSet& evals,
    size_t* unresolved = nullptr);

/// Finds an evaluation function by id; nullptr if absent. (Declared here
/// to keep EvalFunctionSet's surface minimal.)
const typedet::DomainEvalFunction* FindEvalById(
    const typedet::EvalFunctionSet& evals, std::string_view id);

}  // namespace autotest::core

#endif  // AUTOTEST_CORE_SERIALIZATION_H_
