#include "core/predictor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string_view>
#include <unordered_map>

#include "util/failpoint.h"
#include "util/metrics.h"

namespace autotest::core {

namespace {

// A rule the online stage can serve: resolved eval and sane parameters.
// Anything else is dropped with a counted warning (graceful degradation)
// rather than aborting the serve path.
bool IsServableRule(const Sdc& rule) {
  return rule.eval != nullptr && std::isfinite(rule.d_in) &&
         std::isfinite(rule.d_out) && std::isfinite(rule.m) &&
         std::isfinite(rule.confidence) && rule.d_in <= rule.d_out;
}

}  // namespace

SdcPredictor::SdcPredictor(std::vector<Sdc> rules) {
  rules_.reserve(rules.size());
  for (Sdc& rule : rules) {
    if (!IsServableRule(rule)) {
      ++skipped_rules_;
      continue;
    }
    rules_.push_back(std::move(rule));
  }
  if (skipped_rules_ > 0) {
    metrics::Registry::Global()
        .GetCounter(metrics::kMPredictorRulesSkipped)
        .Increment(static_cast<uint64_t>(skipped_rules_));
  }
  std::unordered_map<const typedet::DomainEvalFunction*, size_t> group_of;
  for (size_t r = 0; r < rules_.size(); ++r) {
    auto it = group_of.find(rules_[r].eval);
    if (it == group_of.end()) {
      group_of.emplace(rules_[r].eval, groups_.size());
      groups_.push_back(Group{rules_[r].eval, {r}});
    } else {
      groups_[it->second].rule_ids.push_back(r);
    }
  }
}

std::vector<CellDetection> SdcPredictor::Predict(
    const table::Column& column) const {
  return PredictInternal(column, nullptr, nullptr).detections;
}

BudgetedPrediction SdcPredictor::PredictInternal(
    const table::Column& column, const PredictBudget* budget,
    util::Status* resource_error) const {
  static metrics::Counter& columns_checked =
      metrics::Registry::Global().GetCounter(
          metrics::kMPredictorColumnsChecked);
  static metrics::Counter& detections = metrics::Registry::Global()
      .GetCounter(metrics::kMPredictorDetections);
  columns_checked.Increment();
  BudgetedPrediction result;
  result.groups_total = groups_.size();
  std::vector<CellDetection>& out = result.detections;
  if (column.values.empty()) return result;
  table::DistinctValues distinct = table::Distinct(column);

  // Best detection per distinct value index.
  std::vector<double> best_conf(distinct.values.size(), 0.0);
  std::vector<size_t> best_rule(distinct.values.size(), 0);
  std::vector<bool> flagged(distinct.values.size(), false);

  // Stable views of the distinct values, built once and handed to each
  // group's BatchDistance (vectorized families skip the per-value virtual
  // dispatch and string materialization).
  std::vector<std::string_view> views(distinct.values.begin(),
                                      distinct.values.end());

  for (const Group& group : groups_) {
    // The deadline gate: one rule group (one evaluation function over all
    // distinct values) is the unit of work a budget can cut between.
    if (budget != nullptr && budget->clock != nullptr &&
        budget->clock->NowMicros() >= budget->deadline_micros) {
      result.expired = true;
      break;
    }
    // The resource gate: candidate evaluation costs one cell-work unit
    // per distinct value per group, charged before the distances are
    // computed so an over-budget column stops here, not after the work.
    if (budget != nullptr && budget->resources != nullptr) {
      util::Status charged = budget->resources->TryCharge(
          util::ResourceKind::kCells, distinct.values.size(),
          "rule-group evaluation for column '" + column.name + "'");
      if (!charged.ok()) {
        if (resource_error != nullptr) *resource_error = std::move(charged);
        break;
      }
    }
    ++result.groups_evaluated;
    // One distance computation per distinct value per evaluation function.
    std::vector<double> dist(distinct.values.size());
    group.eval->BatchDistance(views, dist);
    double total = static_cast<double>(distinct.total);

    // Appendix B.2: evaluate each distinct pre-condition once.
    std::map<std::pair<double, double>, bool> precond_cache;
    auto precondition = [&](double d_in, double m) {
      auto key = std::make_pair(d_in, m);
      auto it = precond_cache.find(key);
      if (it != precond_cache.end()) return it->second;
      double covered = 0.0;
      for (size_t i = 0; i < distinct.values.size(); ++i) {
        if (dist[i] <= d_in) {
          covered += static_cast<double>(distinct.counts[i]);
        }
      }
      bool holds = covered >= m * total - 1e-9;
      precond_cache.emplace(key, holds);
      return holds;
    };

    for (size_t r : group.rule_ids) {
      const Sdc& rule = rules_[r];
      if (!precondition(rule.d_in, rule.m)) continue;
      for (size_t i = 0; i < distinct.values.size(); ++i) {
        if (dist[i] > rule.d_out && rule.confidence > best_conf[i]) {
          best_conf[i] = rule.confidence;
          best_rule[i] = r;
          flagged[i] = true;
        }
      }
    }
  }

  // Expand distinct-value detections to rows.
  std::unordered_map<std::string, size_t> value_index;
  for (size_t i = 0; i < distinct.values.size(); ++i) {
    value_index.emplace(distinct.values[i], i);
  }
  for (size_t row = 0; row < column.values.size(); ++row) {
    size_t i = value_index.at(column.values[row]);
    if (!flagged[i]) continue;
    CellDetection d;
    d.row = row;
    d.value = column.values[row];
    d.confidence = best_conf[i];
    d.rule_index = best_rule[i];
    d.explanation = rules_[best_rule[i]].Describe();
    out.push_back(std::move(d));
  }
  detections.Increment(out.size());
  return result;
}

util::Result<std::vector<CellDetection>> SdcPredictor::TryPredict(
    const table::Column& column) const {
  if (auto injected = util::FailpointFiresCode(
          util::kFpPredictorColumn, util::StatusCode::kResourceExhausted)) {
    return util::InjectedFault(*injected, util::kFpPredictorColumn)
        .WithContext("predicting column '" + column.name + "'");
  }
  return Predict(column);
}

util::Result<BudgetedPrediction> SdcPredictor::TryPredict(
    const table::Column& column, const PredictBudget& budget) const {
  if (auto injected = util::FailpointFiresCode(
          util::kFpPredictorColumn, util::StatusCode::kResourceExhausted)) {
    return util::InjectedFault(*injected, util::kFpPredictorColumn)
        .WithContext("predicting column '" + column.name + "'");
  }
  util::Status resource_error;
  BudgetedPrediction prediction =
      PredictInternal(column, &budget, &resource_error);
  if (!resource_error.ok()) {
    return std::move(resource_error)
        .WithContext("predicting column '" + column.name + "'");
  }
  return prediction;
}

}  // namespace autotest::core

