#ifndef AUTOTEST_TABLE_COLUMN_H_
#define AUTOTEST_TABLE_COLUMN_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace autotest::table {

/// A single table column: the unit of work throughout Auto-Test.
/// Values are kept as raw strings; semantic interpretation is the job of the
/// domain-evaluation functions in typedet/.
struct Column {
  std::string name;
  std::vector<std::string> values;

  size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }
};

/// Distinct values of a column with their multiplicities, in first-seen
/// order. Distance computations are performed once per distinct value.
struct DistinctValues {
  std::vector<std::string> values;
  std::vector<size_t> counts;
  size_t total = 0;

  size_t size() const { return values.size(); }
};

/// Computes the distinct values (first-seen order) of a column.
DistinctValues Distinct(const Column& column);

/// Summary statistics used for corpus profiling (paper Table 3).
struct ColumnStats {
  size_t num_values = 0;
  size_t num_distinct = 0;
  double mean_length = 0.0;
  double digit_ratio = 0.0;   // mean per-value digit character ratio
  double alpha_ratio = 0.0;   // mean per-value alpha character ratio
  double numeric_fraction = 0.0;  // fraction of values that parse as numbers
};

/// Computes summary statistics for a column.
ColumnStats ComputeStats(const Column& column);

/// True if the value parses as an integer or decimal number (optionally
/// signed, with thousands separators disallowed).
bool LooksNumeric(const std::string& value);

/// True if a majority (>= threshold) of a column's values look numeric.
/// The paper's benchmarks exclude numeric columns (footnote 8).
bool IsMostlyNumeric(const Column& column, double threshold = 0.8);

}  // namespace autotest::table

#endif  // AUTOTEST_TABLE_COLUMN_H_
