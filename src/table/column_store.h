#ifndef AUTOTEST_TABLE_COLUMN_STORE_H_
#define AUTOTEST_TABLE_COLUMN_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "table/table.h"

namespace autotest::table {

/// Columnar view of a corpus for batched evaluation (DESIGN.md §4k).
///
/// Every distinct value of every column is interned exactly once into an
/// arena-backed string pool: one set of contiguous character buffers plus a
/// `string_view` index. Each column is stored as two parallel arrays of
/// pool ids and multiplicities, flattened into shared vectors so a scan
/// over a column touches contiguous memory.
///
/// The pool is the unit of memoization for the trainer: a domain-evaluation
/// function is scored once per pool value (`BatchDistance` over blocks of
/// the pool), and per-column statistics are gathered from the resulting
/// distance array by pool id. Because the corpus repeats values heavily
/// both within and across columns, this turns O(sum of per-column distinct
/// values) distance computations per eval family into O(pool size).
///
/// Immutable after Build; safe to share across threads without locking.
class ColumnStore {
 public:
  /// Sentinel returned by Find for values absent from the pool.
  static constexpr uint32_t kNotFound = UINT32_MAX;

  /// One column as pool ids + multiplicities (first-seen order, matching
  /// table::Distinct on the same column).
  struct ColumnRef {
    std::span<const uint32_t> ids;
    std::span<const uint32_t> counts;
    uint64_t total_weight = 0;  // sum of counts == column size

    size_t size() const { return ids.size(); }
  };

  /// Builds the store from per-column distinct-value summaries (the
  /// trainer already computes these in parallel; interning is a single
  /// sequential pass over them).
  static ColumnStore Build(std::span<const DistinctValues> columns);

  /// Convenience: computes the distinct summaries itself, then interns.
  static ColumnStore FromCorpus(const Corpus& corpus);

  ColumnStore(ColumnStore&&) = default;
  ColumnStore& operator=(ColumnStore&&) = default;
  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  /// The interned pool, in first-interned order. Views point into the
  /// arena and stay valid for the store's lifetime (moves included).
  std::span<const std::string_view> pool() const { return pool_; }
  size_t pool_size() const { return pool_.size(); }

  size_t num_columns() const { return col_offsets_.size() - 1; }
  ColumnRef column(size_t c) const;

  /// Pool id of an interned value, or kNotFound.
  uint32_t Find(std::string_view value) const;

  /// Process-unique identity of this store's value pool (never 0). Passed
  /// to DomainEvalFunction::BatchDistance so shared backends (CTA zoos,
  /// embedding models) can key dense block memos on (pool_id, offset)
  /// instead of hashing every value again for every sibling function.
  uint64_t pool_id() const { return pool_id_; }

  /// Bytes of value data held by the arena (diagnostics).
  size_t arena_bytes() const { return arena_bytes_; }

 private:
  ColumnStore() = default;

  /// Copies the value into the arena and returns a stable view.
  std::string_view ArenaCopy(std::string_view value);

  static constexpr size_t kChunkBytes = 1 << 18;

  // Arena chunks: stable heap buffers the pool's views point into.
  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_used_ = 0;
  size_t chunk_capacity_ = 0;
  size_t arena_bytes_ = 0;

  struct ViewHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string_view> pool_;
  std::unordered_map<std::string_view, uint32_t, ViewHash, std::equal_to<>>
      index_;

  // Flattened per-column id/count arrays; column c spans
  // [col_offsets_[c], col_offsets_[c + 1]).
  std::vector<uint32_t> ids_;
  std::vector<uint32_t> counts_;
  std::vector<size_t> col_offsets_;
  std::vector<uint64_t> totals_;

  uint64_t pool_id_ = 0;
};

}  // namespace autotest::table

#endif  // AUTOTEST_TABLE_COLUMN_STORE_H_
