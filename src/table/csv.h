#ifndef AUTOTEST_TABLE_CSV_H_
#define AUTOTEST_TABLE_CSV_H_

#include <optional>
#include <string>
#include <string_view>

#include "table/table.h"
#include "util/budget.h"
#include "util/status.h"

namespace autotest::table {

/// Options for CSV parsing/serialization (RFC-4180-style quoting).
///
/// The byte limits bound what untrusted input can make the parser allocate;
/// a value of 0 disables that limit. Exceeding a limit is a
/// kResourceExhausted error from TryParseCsv, with the offending line and
/// field in the message.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Maximum bytes in a single (unquoted or quoted) field.
  size_t max_field_bytes = size_t{1} << 20;  // 1 MiB
  /// Maximum bytes in a single row (sum of its field payloads).
  size_t max_row_bytes = size_t{16} << 20;  // 16 MiB
  /// Maximum number of columns (fields in the widest row).
  size_t max_columns = size_t{1} << 16;
  /// Optional per-request budget (DESIGN.md §4j). When set, the parser
  /// charges each completed row (1 row, its cell count, its payload
  /// bytes) before materializing it, so a request-wide ceiling fails the
  /// parse fast with the budget's structured kResourceExhausted — in
  /// addition to the per-row/per-field limits above. Not owned.
  util::ResourceBudget* budget = nullptr;
};

/// Parses CSV text into a Table. Handles quoted fields with embedded
/// delimiters, quotes ("" escape) and newlines. Short rows are padded with
/// empty strings; long rows are truncated to the header width.
///
/// Errors carry precise diagnostics: kDataLoss for malformed input
/// (unterminated quote, with the line/field/byte offset where the quote
/// opened) and kResourceExhausted for inputs exceeding CsvOptions limits.
[[nodiscard]] util::Result<Table> TryParseCsv(std::string_view text,
                                              const CsvOptions& options = {});

/// Reads and parses a CSV file. kIoError / kNotFound if the file is
/// unreadable, else TryParseCsv's diagnostics with the path as context.
[[nodiscard]] util::Result<Table> TryReadCsvFile(
    const std::string& path, const CsvOptions& options = {});

/// Writes a table as a CSV file; kIoError on failure.
[[nodiscard]] util::Status TryWriteCsvFile(const Table& table,
                                           const std::string& path,
                                           const CsvOptions& options = {});

/// Serializes a Table to CSV text, quoting fields when necessary.
std::string WriteCsv(const Table& table, const CsvOptions& options = {});

/// Legacy shims over the Try* functions; they discard the diagnostic.
/// Prefer the Result-returning forms in new code.
std::optional<Table> ParseCsv(std::string_view text,
                              const CsvOptions& options = {});
std::optional<Table> ReadCsvFile(const std::string& path,
                                 const CsvOptions& options = {});
bool WriteCsvFile(const Table& table, const std::string& path,
                  const CsvOptions& options = {});

}  // namespace autotest::table

#endif  // AUTOTEST_TABLE_CSV_H_
