#ifndef AUTOTEST_TABLE_CSV_H_
#define AUTOTEST_TABLE_CSV_H_

#include <optional>
#include <string>
#include <string_view>

#include "table/table.h"

namespace autotest::table {

/// Options for CSV parsing/serialization (RFC-4180-style quoting).
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
};

/// Parses CSV text into a Table. Handles quoted fields with embedded
/// delimiters, quotes ("" escape) and newlines. Short rows are padded with
/// empty strings; long rows are truncated to the header width.
/// Returns nullopt on malformed input (unterminated quote).
std::optional<Table> ParseCsv(std::string_view text,
                              const CsvOptions& options = {});

/// Serializes a Table to CSV text, quoting fields when necessary.
std::string WriteCsv(const Table& table, const CsvOptions& options = {});

/// Reads and parses a CSV file; nullopt if the file is unreadable or
/// malformed.
std::optional<Table> ReadCsvFile(const std::string& path,
                                 const CsvOptions& options = {});

/// Writes a table as a CSV file; returns false on I/O failure.
bool WriteCsvFile(const Table& table, const std::string& path,
                  const CsvOptions& options = {});

}  // namespace autotest::table

#endif  // AUTOTEST_TABLE_CSV_H_
