#include "table/column.h"

#include <cctype>

#include "util/string_util.h"

namespace autotest::table {

DistinctValues Distinct(const Column& column) {
  DistinctValues out;
  std::unordered_map<std::string, size_t> index;
  index.reserve(column.values.size());
  for (const auto& v : column.values) {
    auto it = index.find(v);
    if (it == index.end()) {
      index.emplace(v, out.values.size());
      out.values.push_back(v);
      out.counts.push_back(1);
    } else {
      ++out.counts[it->second];
    }
    ++out.total;
  }
  return out;
}

ColumnStats ComputeStats(const Column& column) {
  ColumnStats s;
  s.num_values = column.values.size();
  if (column.values.empty()) return s;
  DistinctValues d = Distinct(column);
  s.num_distinct = d.values.size();
  double len_sum = 0.0;
  double digit_sum = 0.0;
  double alpha_sum = 0.0;
  size_t numeric = 0;
  for (const auto& v : column.values) {
    len_sum += static_cast<double>(v.size());
    digit_sum += util::DigitRatio(v);
    alpha_sum += util::AlphaRatio(v);
    if (LooksNumeric(v)) ++numeric;
  }
  double n = static_cast<double>(column.values.size());
  s.mean_length = len_sum / n;
  s.digit_ratio = digit_sum / n;
  s.alpha_ratio = alpha_sum / n;
  s.numeric_fraction = static_cast<double>(numeric) / n;
  return s;
}

bool LooksNumeric(const std::string& value) {
  std::string_view s = util::Trim(value);
  if (s.empty()) return false;
  size_t i = 0;
  if (s[i] == '+' || s[i] == '-') ++i;
  bool digits = false;
  bool dot = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digits = true;
    } else if (c == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits;
}

bool IsMostlyNumeric(const Column& column, double threshold) {
  if (column.values.empty()) return false;
  size_t numeric = 0;
  for (const auto& v : column.values) {
    if (LooksNumeric(v)) ++numeric;
  }
  return static_cast<double>(numeric) >=
         threshold * static_cast<double>(column.values.size());
}

}  // namespace autotest::table
