#include "table/column_store.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "util/check.h"

namespace autotest::table {

std::string_view ColumnStore::ArenaCopy(std::string_view value) {
  if (value.empty()) return std::string_view();
  if (value.size() > kChunkBytes) {
    // Oversized values get a dedicated chunk, inserted behind the current
    // one so the current chunk's free tail stays usable.
    auto chunk = std::make_unique<char[]>(value.size());
    std::memcpy(chunk.get(), value.data(), value.size());
    std::string_view out(chunk.get(), value.size());
    chunks_.insert(chunks_.empty() ? chunks_.end() : chunks_.end() - 1,
                   std::move(chunk));
    arena_bytes_ += value.size();
    return out;
  }
  if (chunk_used_ + value.size() > chunk_capacity_) {
    chunks_.push_back(std::make_unique<char[]>(kChunkBytes));
    chunk_used_ = 0;
    chunk_capacity_ = kChunkBytes;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, value.data(), value.size());
  chunk_used_ += value.size();
  arena_bytes_ += value.size();
  return std::string_view(dst, value.size());
}

ColumnStore ColumnStore::Build(std::span<const DistinctValues> columns) {
  // Ids start at 1 so 0 can mean "no pool identity" in BatchDistance.
  static std::atomic<uint64_t> next_pool_id{1};
  ColumnStore store;
  store.pool_id_ = next_pool_id.fetch_add(1, std::memory_order_relaxed);
  size_t total_entries = 0;
  for (const auto& col : columns) total_entries += col.size();
  store.ids_.reserve(total_entries);
  store.counts_.reserve(total_entries);
  store.col_offsets_.reserve(columns.size() + 1);
  store.totals_.reserve(columns.size());
  store.col_offsets_.push_back(0);
  for (const auto& col : columns) {
    AT_CHECK(col.values.size() == col.counts.size());
    for (size_t i = 0; i < col.values.size(); ++i) {
      const std::string& v = col.values[i];
      uint32_t id;
      auto it = store.index_.find(std::string_view(v));
      if (it != store.index_.end()) {
        id = it->second;
      } else {
        AT_CHECK_MSG(store.pool_.size() < kNotFound,
                     "ColumnStore: pool id space exhausted");
        id = static_cast<uint32_t>(store.pool_.size());
        std::string_view interned = store.ArenaCopy(v);
        store.pool_.push_back(interned);
        store.index_.emplace(interned, id);
      }
      AT_CHECK_MSG(col.counts[i] <= UINT32_MAX,
                   "ColumnStore: per-value multiplicity overflows uint32");
      store.ids_.push_back(id);
      store.counts_.push_back(static_cast<uint32_t>(col.counts[i]));
    }
    store.col_offsets_.push_back(store.ids_.size());
    store.totals_.push_back(static_cast<uint64_t>(col.total));
  }
  return store;
}

ColumnStore ColumnStore::FromCorpus(const Corpus& corpus) {
  std::vector<DistinctValues> distinct(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    distinct[i] = Distinct(corpus[i]);
  }
  return Build(distinct);
}

ColumnStore::ColumnRef ColumnStore::column(size_t c) const {
  AT_CHECK(c + 1 < col_offsets_.size());
  size_t begin = col_offsets_[c];
  size_t end = col_offsets_[c + 1];
  ColumnRef ref;
  ref.ids = std::span<const uint32_t>(ids_).subspan(begin, end - begin);
  ref.counts = std::span<const uint32_t>(counts_).subspan(begin, end - begin);
  ref.total_weight = totals_[c];
  return ref;
}

uint32_t ColumnStore::Find(std::string_view value) const {
  auto it = index_.find(value);
  return it == index_.end() ? kNotFound : it->second;
}

}  // namespace autotest::table
