#ifndef AUTOTEST_TABLE_SHARD_LOADER_H_
#define AUTOTEST_TABLE_SHARD_LOADER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "table/csv.h"
#include "table/table.h"
#include "util/failpoint.h"
#include "util/parallel/thread_pool.h"
#include "util/retry.h"
#include "util/status.h"

// Fault-tolerant sharded ingestion (DESIGN.md §4e). A corpus is many
// independently-failing inputs, and partial availability is the norm at
// serving scale: this layer loads shards in parallel, retries transient
// failures (kIoError / kResourceExhausted) with deterministic backoff,
// fails fast on permanent ones (kDataLoss / kInvalidArgument), and
// degrades gracefully to a configurable quorum instead of dying on the
// first bad shard. Every outcome is recorded in a ShardLoadReport so
// degradation is observable, never silent.
//
// Chaos hooks: the `shard.read` failpoint fires on first attempts, the
// `shard.retry` failpoint on retry attempts; both honor the arming spec's
// `code=` flavor, and their decisions are keyed on (shard, attempt) so
// which shard fails is independent of pool scheduling.

namespace autotest::table {

struct ShardLoadOptions {
  util::RetryPolicy retry;
  /// Quorum: the fraction of shards that must load for the overall load to
  /// succeed. 1.0 (default) = all-or-nothing, today's monolithic behavior.
  /// At least one shard must always load. Outside [0, 1] is
  /// kInvalidArgument.
  double min_shard_fraction = 1.0;
  /// Parallelism for the shard loads; 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Time source for retry backoff; nullptr = util::RealClock(). Tests
  /// inject a VirtualClock so retries sleep zero real time.
  util::Clock* clock = nullptr;
};

/// Per-shard outcome, in shard-index order.
struct ShardOutcome {
  size_t shard = 0;
  /// Attempts made (1 = no retries).
  size_t attempts = 0;
  /// Final status code; kOk when the shard loaded.
  util::StatusCode code = util::StatusCode::kOk;
  /// Final diagnostic for failed shards; empty on success.
  std::string error;
};

/// What happened during a sharded load: per-shard outcomes plus totals.
struct ShardLoadReport {
  size_t num_shards = 0;
  size_t num_loaded = 0;
  size_t num_failed = 0;
  /// Attempts beyond each shard's first, summed over all shards.
  size_t total_retries = 0;
  std::vector<ShardOutcome> outcomes;

  bool degraded() const { return num_failed > 0; }
  /// Indices of shards that failed to load.
  std::vector<size_t> LostShards() const;
  /// One line, e.g. "shard-load: 7/8 shards loaded, retries=3, lost:
  /// 3:DATA_LOSS".
  std::string Summary() const;
};

namespace shard_internal {
/// Evaluates the shard failpoints for (shard, attempt): `shard.read` on
/// the first attempt, `shard.retry` on retries. Returns the injected
/// fault, or OK.
[[nodiscard]] util::Status InjectShardFault(size_t shard, size_t attempt);
/// Quorum arithmetic + failure synthesis shared by the LoadShards
/// template; returns OK when `num_loaded` meets the quorum.
[[nodiscard]] util::Status CheckQuorum(const ShardLoadReport& report,
                                       double min_shard_fraction);
/// Folds a finished load's report into the `shard.*` metrics family
/// (loads, loaded, lost, retries, degraded_loads and the per-shard
/// attempts histogram).
void RecordShardLoad(const ShardLoadReport& report);
}  // namespace shard_internal

/// Loads `num_shards` shards via `load_shard(shard_index)` on the parallel
/// pool, retrying each shard per `options.retry`. Returns the successfully
/// loaded shards in ascending shard-index order (so assembly is
/// deterministic and independent of scheduling) when the quorum is met,
/// else the dominant failure Status. `report`, when non-null, receives the
/// full per-shard picture either way.
template <typename T>
[[nodiscard]] util::Result<std::vector<T>> LoadShards(
    size_t num_shards,
    const std::function<util::Result<T>(size_t)>& load_shard,
    const ShardLoadOptions& options, ShardLoadReport* report = nullptr) {
  if (options.min_shard_fraction < 0.0 || options.min_shard_fraction > 1.0) {
    return util::InvalidArgumentError(
        "min_shard_fraction must be in [0, 1], got " +
        std::to_string(options.min_shard_fraction));
  }
  ShardLoadReport local;
  ShardLoadReport& rep = report != nullptr ? *report : local;
  rep = ShardLoadReport{};
  rep.num_shards = num_shards;
  rep.outcomes.assign(num_shards, ShardOutcome{});
  std::vector<std::optional<T>> slots(num_shards);
  if (num_shards > 0) {
    util::Clock& clock =
        options.clock != nullptr ? *options.clock : util::RealClock();
    util::parallel::Options par;
    par.num_threads = options.num_threads;
    par.grain = 1;  // shard loads are coarse; steal at shard granularity
    util::parallel::ParallelFor(
        num_shards,
        [&](size_t shard) {
          size_t attempt_index = 0;
          size_t attempts = 0;
          auto one_attempt = [&]() -> util::Result<T> {
            util::Status injected =
                shard_internal::InjectShardFault(shard, attempt_index++);
            if (!injected.ok()) return injected;
            return load_shard(shard);
          };
          auto result = util::RetryCall(options.retry, clock,
                                        /*stream=*/shard, one_attempt,
                                        &attempts);
          ShardOutcome& outcome = rep.outcomes[shard];
          outcome.shard = shard;
          outcome.attempts = attempts;
          if (result.ok()) {
            slots[shard] = std::move(result).value();
          } else {
            outcome.code = result.status().code();
            outcome.error = result.status().ToString();
          }
        },
        par);
  }
  for (const ShardOutcome& outcome : rep.outcomes) {
    rep.total_retries += outcome.attempts > 0 ? outcome.attempts - 1 : 0;
    if (outcome.code == util::StatusCode::kOk) {
      ++rep.num_loaded;
    } else {
      ++rep.num_failed;
    }
  }
  shard_internal::RecordShardLoad(rep);
  AT_RETURN_IF_ERROR(
      shard_internal::CheckQuorum(rep, options.min_shard_fraction));
  std::vector<T> loaded;
  loaded.reserve(rep.num_loaded);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    if (slots[shard].has_value()) loaded.push_back(std::move(*slots[shard]));
  }
  return loaded;
}

/// Loads a corpus from CSV shard files, one shard per path, flattening
/// every loaded table's columns (in shard-index order) into one corpus.
/// Each shard read retries per `options.retry`; a corrupt shard
/// (kDataLoss) fails fast and is skipped when the quorum allows.
[[nodiscard]] util::Result<Corpus> TryLoadCorpusFromCsvShards(
    const std::vector<std::string>& paths, const CsvOptions& csv_options,
    const ShardLoadOptions& options, ShardLoadReport* report = nullptr);

}  // namespace autotest::table

#endif  // AUTOTEST_TABLE_SHARD_LOADER_H_
