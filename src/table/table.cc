#include "table/table.h"

namespace autotest::table {

Corpus ToCorpus(const std::vector<Table>& tables) {
  Corpus corpus;
  for (const auto& t : tables) {
    for (const auto& c : t.columns) corpus.push_back(c);
  }
  return corpus;
}

}  // namespace autotest::table
