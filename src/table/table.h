#ifndef AUTOTEST_TABLE_TABLE_H_
#define AUTOTEST_TABLE_TABLE_H_

#include <string>
#include <vector>

#include "table/column.h"

namespace autotest::table {

/// A relational table: a set of equally-long named columns.
struct Table {
  std::string name;
  std::vector<Column> columns;

  size_t num_rows() const {
    return columns.empty() ? 0 : columns.front().values.size();
  }
  size_t num_columns() const { return columns.size(); }
};

/// A corpus is modeled (like in the paper, Section 4) as a flat collection
/// of individual columns.
using Corpus = std::vector<Column>;

/// Flattens tables into a corpus of columns.
Corpus ToCorpus(const std::vector<Table>& tables);

}  // namespace autotest::table

#endif  // AUTOTEST_TABLE_TABLE_H_
