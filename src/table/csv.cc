#include "table/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/failpoint.h"

namespace autotest::table {

namespace {

using util::DataLossError;
using util::IoError;
using util::NotFoundError;
using util::ResourceExhaustedError;
using util::Result;
using util::Status;

// Cursor state threaded through the cell parser so limit violations and
// malformed input report the exact line (1-based, physical), field (1-based
// within the row) and byte offset.
struct ParsePos {
  size_t line = 1;
  size_t field = 1;
  size_t row_bytes = 0;
};

std::string At(size_t line, size_t field, size_t byte) {
  return "line " + std::to_string(line) + ", field " +
         std::to_string(field) + ", byte offset " + std::to_string(byte);
}

// Parses the raw grid of cells with resource limits applied as the input
// streams through (a hostile input fails fast, before large allocations).
Status ParseCells(std::string_view text, const CsvOptions& opt,
                  std::vector<std::vector<std::string>>* rows) {
  std::vector<std::string> row;
  std::string field;
  size_t i = 0;
  bool in_row = false;
  ParsePos pos;

  auto check_field = [&](size_t at_byte) -> Status {
    if (opt.max_field_bytes != 0 && field.size() > opt.max_field_bytes) {
      return ResourceExhaustedError(
          "field exceeds max_field_bytes=" +
          std::to_string(opt.max_field_bytes) + " at " +
          At(pos.line, pos.field, at_byte));
    }
    if (opt.max_row_bytes != 0 &&
        pos.row_bytes + field.size() > opt.max_row_bytes) {
      return ResourceExhaustedError(
          "row exceeds max_row_bytes=" + std::to_string(opt.max_row_bytes) +
          " at " + At(pos.line, pos.field, at_byte));
    }
    return Status::Ok();
  };
  auto end_field = [&](size_t at_byte) -> Status {
    AT_RETURN_IF_ERROR(check_field(at_byte));
    if (opt.max_columns != 0 && row.size() >= opt.max_columns) {
      return ResourceExhaustedError(
          "row exceeds max_columns=" + std::to_string(opt.max_columns) +
          " at " + At(pos.line, pos.field, at_byte));
    }
    pos.row_bytes += field.size();
    row.push_back(std::move(field));
    field.clear();
    ++pos.field;
    return Status::Ok();
  };
  auto end_row = [&](size_t at_byte) -> Status {
    AT_RETURN_IF_ERROR(end_field(at_byte));
    if (opt.budget != nullptr) {
      // One batched charge per row (row + cells + payload bytes) keeps
      // the budget's atomics off the per-character path while still
      // failing mid-parse, before the next row is materialized.
      const std::string what =
          "csv row at " + At(pos.line, pos.field, at_byte);
      AT_RETURN_IF_ERROR(
          opt.budget->TryCharge(util::ResourceKind::kRows, 1, what));
      AT_RETURN_IF_ERROR(opt.budget->TryCharge(util::ResourceKind::kCells,
                                               row.size(), what));
      AT_RETURN_IF_ERROR(opt.budget->TryCharge(util::ResourceKind::kBytes,
                                               pos.row_bytes, what));
    }
    rows->push_back(std::move(row));
    row.clear();
    pos.field = 1;
    pos.row_bytes = 0;
    in_row = false;
    return Status::Ok();
  };

  while (i < text.size()) {
    char c = text[i];
    if (c == '"') {
      // Quoted field.
      size_t open_line = pos.line;
      size_t open_field = pos.field;
      size_t open_byte = i;
      ++i;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '"') {
          if (i + 1 < text.size() && text[i + 1] == '"') {
            field.push_back('"');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          if (text[i] == '\n') ++pos.line;
          field.push_back(text[i]);
          ++i;
        }
        AT_RETURN_IF_ERROR(check_field(i));
      }
      if (!closed) {
        return DataLossError("unterminated quoted field (quote opened at " +
                             At(open_line, open_field, open_byte) + ")");
      }
      in_row = true;
    } else if (c == opt.delimiter) {
      AT_RETURN_IF_ERROR(end_field(i));
      in_row = true;
      ++i;
    } else if (c == '\r') {
      ++i;  // handled together with the following \n (or alone)
      if (i < text.size() && text[i] == '\n') ++i;
      AT_RETURN_IF_ERROR(end_row(i));
      ++pos.line;
    } else if (c == '\n') {
      ++i;
      AT_RETURN_IF_ERROR(end_row(i));
      ++pos.line;
    } else {
      field.push_back(c);
      in_row = true;
      ++i;
      AT_RETURN_IF_ERROR(check_field(i));
    }
  }
  if (in_row || !field.empty()) {
    AT_RETURN_IF_ERROR(end_row(text.size()));
  }
  return Status::Ok();
}

bool NeedsQuoting(const std::string& s, char delim) {
  for (char c : s) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const std::string& s, char delim, std::string* out) {
  if (!NeedsQuoting(s, delim)) {
    out->append(s);
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<Table> TryParseCsv(std::string_view text, const CsvOptions& options) {
  if (auto injected = util::FailpointFiresCode(util::kFpCsvParse,
                                               util::StatusCode::kDataLoss)) {
    return util::InjectedFault(*injected, util::kFpCsvParse);
  }
  std::vector<std::vector<std::string>> rows;
  AT_RETURN_IF_ERROR(ParseCells(text, options, &rows));
  Table t;
  if (rows.empty()) return t;

  size_t width = rows.front().size();
  size_t first_data_row = 0;
  if (options.has_header) {
    for (size_t j = 0; j < width; ++j) {
      Column c;
      c.name = rows[0][j];
      t.columns.push_back(std::move(c));
    }
    first_data_row = 1;
  } else {
    for (size_t j = 0; j < width; ++j) {
      Column c;
      c.name = "col" + std::to_string(j);
      t.columns.push_back(std::move(c));
    }
  }
  for (size_t i = first_data_row; i < rows.size(); ++i) {
    for (size_t j = 0; j < width; ++j) {
      t.columns[j].values.push_back(j < rows[i].size() ? rows[i][j]
                                                       : std::string());
    }
  }
  return t;
}

std::string WriteCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (size_t j = 0; j < table.columns.size(); ++j) {
      if (j > 0) out.push_back(options.delimiter);
      AppendField(table.columns[j].name, options.delimiter, &out);
    }
    out.push_back('\n');
  }
  size_t rows = table.num_rows();
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < table.columns.size(); ++j) {
      if (j > 0) out.push_back(options.delimiter);
      const auto& col = table.columns[j].values;
      AppendField(i < col.size() ? col[i] : std::string(), options.delimiter,
                  &out);
    }
    out.push_back('\n');
  }
  return out;
}

Result<Table> TryReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  if (auto injected = util::FailpointFiresCode(util::kFpCsvOpen,
                                               util::StatusCode::kIoError)) {
    return util::InjectedFault(*injected, util::kFpCsvOpen)
        .WithContext("reading CSV file " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) {
    return IoError("read failure on " + path);
  }
  auto t = TryParseCsv(ss.str(), options);
  if (!t.ok()) {
    return Status(t.status()).WithContext("parsing CSV file " + path);
  }
  t->name = path;
  return t;
}

util::Status TryWriteCsvFile(const Table& table, const std::string& path,
                             const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return IoError("cannot open " + path + " for writing");
  out << WriteCsv(table, options);
  out.flush();
  if (!out) return IoError("write failure on " + path);
  return Status::Ok();
}

std::optional<Table> ParseCsv(std::string_view text,
                              const CsvOptions& options) {
  return TryParseCsv(text, options).ToOptional();
}

std::optional<Table> ReadCsvFile(const std::string& path,
                                 const CsvOptions& options) {
  return TryReadCsvFile(path, options).ToOptional();
}

bool WriteCsvFile(const Table& table, const std::string& path,
                  const CsvOptions& options) {
  return TryWriteCsvFile(table, path, options).ok();
}

}  // namespace autotest::table
