#include "table/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace autotest::table {

namespace {

// Parses the raw grid of cells; returns false on unterminated quote.
bool ParseCells(std::string_view text, char delim,
                std::vector<std::vector<std::string>>* rows) {
  std::vector<std::string> row;
  std::string field;
  size_t i = 0;
  bool in_row = false;
  while (i < text.size()) {
    char c = text[i];
    if (c == '"') {
      // Quoted field.
      ++i;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '"') {
          if (i + 1 < text.size() && text[i + 1] == '"') {
            field.push_back('"');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          field.push_back(text[i]);
          ++i;
        }
      }
      if (!closed) return false;
      in_row = true;
    } else if (c == delim) {
      row.push_back(std::move(field));
      field.clear();
      in_row = true;
      ++i;
    } else if (c == '\r') {
      ++i;  // handled together with the following \n (or alone)
      if (i < text.size() && text[i] == '\n') ++i;
      row.push_back(std::move(field));
      field.clear();
      rows->push_back(std::move(row));
      row.clear();
      in_row = false;
    } else if (c == '\n') {
      ++i;
      row.push_back(std::move(field));
      field.clear();
      rows->push_back(std::move(row));
      row.clear();
      in_row = false;
    } else {
      field.push_back(c);
      in_row = true;
      ++i;
    }
  }
  if (in_row || !field.empty()) {
    row.push_back(std::move(field));
    rows->push_back(std::move(row));
  }
  return true;
}

bool NeedsQuoting(const std::string& s, char delim) {
  for (char c : s) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const std::string& s, char delim, std::string* out) {
  if (!NeedsQuoting(s, delim)) {
    out->append(s);
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::optional<Table> ParseCsv(std::string_view text,
                              const CsvOptions& options) {
  std::vector<std::vector<std::string>> rows;
  if (!ParseCells(text, options.delimiter, &rows)) return std::nullopt;
  Table t;
  if (rows.empty()) return t;

  size_t width = rows.front().size();
  size_t first_data_row = 0;
  if (options.has_header) {
    for (size_t j = 0; j < width; ++j) {
      Column c;
      c.name = rows[0][j];
      t.columns.push_back(std::move(c));
    }
    first_data_row = 1;
  } else {
    for (size_t j = 0; j < width; ++j) {
      Column c;
      c.name = "col" + std::to_string(j);
      t.columns.push_back(std::move(c));
    }
  }
  for (size_t i = first_data_row; i < rows.size(); ++i) {
    for (size_t j = 0; j < width; ++j) {
      t.columns[j].values.push_back(j < rows[i].size() ? rows[i][j]
                                                       : std::string());
    }
  }
  return t;
}

std::string WriteCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (size_t j = 0; j < table.columns.size(); ++j) {
      if (j > 0) out.push_back(options.delimiter);
      AppendField(table.columns[j].name, options.delimiter, &out);
    }
    out.push_back('\n');
  }
  size_t rows = table.num_rows();
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < table.columns.size(); ++j) {
      if (j > 0) out.push_back(options.delimiter);
      const auto& col = table.columns[j].values;
      AppendField(i < col.size() ? col[i] : std::string(), options.delimiter,
                  &out);
    }
    out.push_back('\n');
  }
  return out;
}

std::optional<Table> ReadCsvFile(const std::string& path,
                                 const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  auto t = ParseCsv(ss.str(), options);
  if (t) t->name = path;
  return t;
}

bool WriteCsvFile(const Table& table, const std::string& path,
                  const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << WriteCsv(table, options);
  return static_cast<bool>(out);
}

}  // namespace autotest::table
