#include "table/shard_loader.h"

#include <algorithm>

#include "util/metrics.h"

namespace autotest::table {

namespace shard_internal {

namespace metrics = ::autotest::metrics;

void RecordShardLoad(const ShardLoadReport& report) {
  static metrics::Counter& loads =
      metrics::Registry::Global().GetCounter(metrics::kMShardLoads);
  static metrics::Counter& loaded =
      metrics::Registry::Global().GetCounter(metrics::kMShardLoaded);
  static metrics::Counter& lost =
      metrics::Registry::Global().GetCounter(metrics::kMShardLost);
  static metrics::Counter& retries =
      metrics::Registry::Global().GetCounter(metrics::kMShardRetries);
  static metrics::Counter& degraded_loads =
      metrics::Registry::Global().GetCounter(metrics::kMShardDegradedLoads);
  // Attempts-per-shard distribution; bounds follow the doubling backoff
  // (1 = clean first read, 16 covers any sane max_attempts).
  static metrics::Histogram& attempts = metrics::Registry::Global()
      .GetHistogram(metrics::kMShardAttempts, {1.0, 2.0, 4.0, 8.0, 16.0});
  loads.Increment();
  loaded.Increment(report.num_loaded);
  lost.Increment(report.num_failed);
  retries.Increment(report.total_retries);
  if (report.degraded()) degraded_loads.Increment();
  for (const ShardOutcome& outcome : report.outcomes) {
    attempts.Observe(static_cast<double>(outcome.attempts));
  }
}

util::Status InjectShardFault(size_t shard, size_t attempt) {
  // Key the decision on (shard, attempt) so the fault pattern is a pure
  // function of the registry seed — independent of pool scheduling.
  const uint64_t key =
      static_cast<uint64_t>(shard) * 0x9e3779b97f4a7c15ULL +
      static_cast<uint64_t>(attempt);
  std::string_view name =
      attempt == 0 ? util::kFpShardRead : util::kFpShardRetry;
  if (auto code = util::FailpointFiresKeyed(name, key,
                                            util::StatusCode::kIoError)) {
    return util::InjectedFault(*code, name)
        .WithContext("reading shard " + std::to_string(shard) +
                     " (attempt " + std::to_string(attempt + 1) + ")");
  }
  return util::Status::Ok();
}

util::Status CheckQuorum(const ShardLoadReport& report,
                         double min_shard_fraction) {
  if (report.num_shards == 0) return util::Status::Ok();
  // ceil(fraction * n), but never less than one shard: an entirely lost
  // corpus is useless at any quorum.
  size_t need = static_cast<size_t>(
      min_shard_fraction * static_cast<double>(report.num_shards));
  if (static_cast<double>(need) <
      min_shard_fraction * static_cast<double>(report.num_shards)) {
    ++need;
  }
  need = std::max<size_t>(need, 1);
  if (report.num_loaded >= need) return util::Status::Ok();
  // Dominant failure code: prefer a permanent code (the actionable
  // diagnosis — retries cannot help) over transient ones.
  util::StatusCode code = util::StatusCode::kIoError;
  bool found = false;
  for (const ShardOutcome& outcome : report.outcomes) {
    if (outcome.code == util::StatusCode::kOk) continue;
    if (!found) {
      code = outcome.code;
      found = true;
    }
    if (!util::IsRetryableCode(outcome.code)) {
      code = outcome.code;
      break;
    }
  }
  std::string message =
      "shard quorum missed: " + std::to_string(report.num_loaded) + "/" +
      std::to_string(report.num_shards) + " shards loaded, need " +
      std::to_string(need);
  for (const ShardOutcome& outcome : report.outcomes) {
    if (outcome.code == util::StatusCode::kOk) continue;
    message += "; shard " + std::to_string(outcome.shard) + ": " +
               std::string(util::StatusCodeName(outcome.code)) + " after " +
               std::to_string(outcome.attempts) + " attempt(s)";
  }
  return util::Status(code, std::move(message));
}

}  // namespace shard_internal

std::vector<size_t> ShardLoadReport::LostShards() const {
  std::vector<size_t> lost;
  for (const ShardOutcome& outcome : outcomes) {
    if (outcome.code != util::StatusCode::kOk) lost.push_back(outcome.shard);
  }
  return lost;
}

std::string ShardLoadReport::Summary() const {
  std::string out = "shard-load: " + std::to_string(num_loaded) + "/" +
                    std::to_string(num_shards) + " shards loaded, retries=" +
                    std::to_string(total_retries);
  if (num_failed > 0) {
    out += ", lost:";
    for (const ShardOutcome& outcome : outcomes) {
      if (outcome.code == util::StatusCode::kOk) continue;
      out += " " + std::to_string(outcome.shard) + ":" +
             std::string(util::StatusCodeName(outcome.code));
    }
  }
  return out;
}

util::Result<Corpus> TryLoadCorpusFromCsvShards(
    const std::vector<std::string>& paths, const CsvOptions& csv_options,
    const ShardLoadOptions& options, ShardLoadReport* report) {
  std::function<util::Result<std::vector<Column>>(size_t)> load_shard =
      [&](size_t shard) -> util::Result<std::vector<Column>> {
    AT_ASSIGN_OR_RETURN(Table table,
                        TryReadCsvFile(paths[shard], csv_options));
    return std::move(table.columns);
  };
  AT_ASSIGN_OR_RETURN(auto shards,
                      LoadShards(paths.size(), load_shard, options, report));
  Corpus corpus;
  for (std::vector<Column>& columns : shards) {
    for (Column& column : columns) corpus.push_back(std::move(column));
  }
  return corpus;
}

}  // namespace autotest::table
