#ifndef AUTOTEST_TYPEDET_DOMAIN_EVAL_H_
#define AUTOTEST_TYPEDET_DOMAIN_EVAL_H_

#include <string>

namespace autotest::typedet {

/// The four column-type detection families the paper unifies (Section 3),
/// plus the adversarial random-hash family used in the robustness study
/// (Section 6.5).
enum class Family {
  kCta,
  kEmbedding,
  kPattern,
  kFunction,
  kHash,
};

const char* FamilyName(Family family);

/// Domain-evaluation function (paper Definition 1): a distance between a
/// candidate value and a semantic type. Smaller distance = more likely "in"
/// the type's domain. Concrete subclasses adapt CTA classifiers (1 - score),
/// embeddings (distance to a centroid), patterns (0/1 match), validation
/// functions (0/1) and random hashes.
class DomainEvalFunction {
 public:
  virtual ~DomainEvalFunction() = default;

  /// Unique stable identifier, e.g. "cta:sherlock-sim:country" or
  /// "emb:sbert-sim:seattle".
  const std::string& id() const { return id_; }

  Family family() const { return family_; }

  /// Distance between the type represented by this function and `value`.
  /// Must be deterministic and thread-safe.
  virtual double Distance(const std::string& value) const = 0;

  /// Smallest / largest distance this function can produce; the candidate
  /// generator enumerates thresholds inside this range.
  virtual double min_distance() const = 0;
  virtual double max_distance() const = 0;

  /// True if the function only emits {min_distance, max_distance} (pattern
  /// and function families): the threshold grid degenerates to one cell.
  virtual bool binary() const { return false; }

  /// Human-readable description used in rule explanations, mirroring the
  /// paper's Table 1 wording.
  virtual std::string Describe() const = 0;

 protected:
  DomainEvalFunction(std::string id, Family family)
      : id_(std::move(id)), family_(family) {}

 private:
  std::string id_;
  Family family_;
};

}  // namespace autotest::typedet

#endif  // AUTOTEST_TYPEDET_DOMAIN_EVAL_H_
