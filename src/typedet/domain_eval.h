#ifndef AUTOTEST_TYPEDET_DOMAIN_EVAL_H_
#define AUTOTEST_TYPEDET_DOMAIN_EVAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace autotest::typedet {

/// The four column-type detection families the paper unifies (Section 3),
/// plus the adversarial random-hash family used in the robustness study
/// (Section 6.5).
enum class Family {
  kCta,
  kEmbedding,
  kPattern,
  kFunction,
  kHash,
};

const char* FamilyName(Family family);

/// Domain-evaluation function (paper Definition 1): a distance between a
/// candidate value and a semantic type. Smaller distance = more likely "in"
/// the type's domain. Concrete subclasses adapt CTA classifiers (1 - score),
/// embeddings (distance to a centroid), patterns (0/1 match), validation
/// functions (0/1) and random hashes.
class DomainEvalFunction {
 public:
  virtual ~DomainEvalFunction() = default;

  /// Unique stable identifier, e.g. "cta:sherlock-sim:country" or
  /// "emb:sbert-sim:seattle".
  const std::string& id() const { return id_; }

  Family family() const { return family_; }

  /// Distance between the type represented by this function and `value`.
  /// Must be deterministic and thread-safe.
  virtual double Distance(const std::string& value) const = 0;

  /// Batched distance over a block of values: out[i] receives the distance
  /// of values[i]. The default walks the block through the scalar virtual,
  /// so every existing subclass keeps working; hot families override it
  /// with block kernels (one lock acquisition per block in the cached
  /// zoos/embeddings, contiguous SIMD-friendly inner loops). Overrides
  /// MUST be value-for-value bit-identical to Distance — the trainer's
  /// columnar path (DESIGN.md §4k) relies on it, and the differential
  /// determinism suite enforces it.
  ///
  /// `pool_id`/`block_offset` optionally identify the block as a stable
  /// slice [block_offset, block_offset + values.size()) of an interned
  /// value pool (table::ColumnStore::pool_id()). A non-zero pool id lets
  /// backends that share state across many eval functions (a CTA zoo's
  /// dozens of per-type functions, an embedding model's dozens of
  /// per-centroid functions) memoize dense per-block results once and
  /// serve every sibling function from the same matrix, skipping the
  /// per-value hash lookups entirely. pool_id == 0 means "no identity":
  /// backends fall back to their per-value caches. Results are identical
  /// either way; the key only changes where the memoization happens.
  virtual void BatchDistance(std::span<const std::string_view> values,
                             std::span<double> out, uint64_t pool_id = 0,
                             size_t block_offset = 0) const {
    (void)pool_id;
    (void)block_offset;
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = Distance(std::string(values[i]));
    }
  }

  /// Smallest / largest distance this function can produce; the candidate
  /// generator enumerates thresholds inside this range.
  virtual double min_distance() const = 0;
  virtual double max_distance() const = 0;

  /// True if the function only emits {min_distance, max_distance} (pattern
  /// and function families): the threshold grid degenerates to one cell.
  virtual bool binary() const { return false; }

  /// Human-readable description used in rule explanations, mirroring the
  /// paper's Table 1 wording.
  virtual std::string Describe() const = 0;

 protected:
  DomainEvalFunction(std::string id, Family family)
      : id_(std::move(id)), family_(family) {}

 private:
  std::string id_;
  Family family_;
};

}  // namespace autotest::typedet

#endif  // AUTOTEST_TYPEDET_DOMAIN_EVAL_H_
