#include "typedet/validators.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace autotest::typedet {

namespace {

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

bool IsHex(char c) {
  return IsDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

// Parses a run of 1..max_len digits at *pos; returns -1 on failure.
int ParseInt(std::string_view v, size_t* pos, size_t min_len,
             size_t max_len) {
  size_t start = *pos;
  int out = 0;
  while (*pos < v.size() && IsDigit(v[*pos]) && *pos - start < max_len) {
    out = out * 10 + (v[*pos] - '0');
    ++*pos;
  }
  size_t len = *pos - start;
  if (len < min_len || len > max_len) return -1;
  return out;
}

bool ConsumeChar(std::string_view v, size_t* pos, char c) {
  if (*pos < v.size() && v[*pos] == c) {
    ++*pos;
    return true;
  }
  return false;
}

bool IsLeapYear(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

bool ValidYmd(int y, int m, int d) {
  if (y < 1000 || y > 2200 || m < 1 || m > 12 || d < 1) return false;
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  int max_d = kDays[m - 1];
  if (m == 2 && IsLeapYear(y)) max_d = 29;
  return d <= max_d;
}

// m/d/yyyy with 1-2 digit month/day (also accepts yy years 2 digits).
bool ParseMdy(std::string_view v) {
  size_t pos = 0;
  int m = ParseInt(v, &pos, 1, 2);
  if (m < 0 || !ConsumeChar(v, &pos, '/')) return false;
  int d = ParseInt(v, &pos, 1, 2);
  if (d < 0 || !ConsumeChar(v, &pos, '/')) return false;
  size_t year_start = pos;
  int y = ParseInt(v, &pos, 2, 4);
  if (y < 0 || pos != v.size()) return false;
  size_t year_len = pos - year_start;
  if (year_len == 2) y += (y < 50) ? 2000 : 1900;
  if (year_len == 3) return false;
  return ValidYmd(y, m, d);
}

// yyyy-mm-dd.
bool ParseIso(std::string_view v) {
  size_t pos = 0;
  int y = ParseInt(v, &pos, 4, 4);
  if (y < 0 || !ConsumeChar(v, &pos, '-')) return false;
  int m = ParseInt(v, &pos, 1, 2);
  if (m < 0 || !ConsumeChar(v, &pos, '-')) return false;
  int d = ParseInt(v, &pos, 1, 2);
  if (d < 0 || pos != v.size()) return false;
  return ValidYmd(y, m, d);
}

bool ParseTimeAt(std::string_view v, size_t* pos) {
  int h = ParseInt(v, pos, 1, 2);
  if (h < 0 || h > 23 || !ConsumeChar(v, pos, ':')) return false;
  int m = ParseInt(v, pos, 2, 2);
  if (m < 0 || m > 59) return false;
  if (*pos < v.size() && v[*pos] == ':') {
    ++*pos;
    int s = ParseInt(v, pos, 2, 2);
    if (s < 0 || s > 59) return false;
  }
  return true;
}

bool AllDigits(std::string_view v) {
  if (v.empty()) return false;
  for (char c : v) {
    if (!IsDigit(c)) return false;
  }
  return true;
}

bool LuhnValid(std::string_view digits) {
  int sum = 0;
  bool dbl = false;
  for (size_t i = digits.size(); i > 0; --i) {
    int d = digits[i - 1] - '0';
    if (dbl) {
      d *= 2;
      if (d > 9) d -= 9;
    }
    sum += d;
    dbl = !dbl;
  }
  return sum % 10 == 0;
}

bool ValidHostname(std::string_view host) {
  if (host.empty() || host.size() > 253) return false;
  auto labels = util::Split(std::string(host), '.');
  if (labels.size() < 2) return false;
  for (const auto& label : labels) {
    if (label.empty() || label.size() > 63) return false;
    for (char c : label) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') {
        return false;
      }
    }
    if (label.front() == '-' || label.back() == '-') return false;
  }
  // TLD must be alphabetic, 2..12 chars.
  const auto& tld = labels.back();
  if (tld.size() < 2 || tld.size() > 12) return false;
  for (char c : tld) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

bool ValidateDate(std::string_view v) {
  v = util::Trim(v);
  if (v.empty()) return false;
  return ParseMdy(v) || ParseIso(v);
}

bool ValidateTime(std::string_view v) {
  v = util::Trim(v);
  size_t pos = 0;
  return !v.empty() && ParseTimeAt(v, &pos) && pos == v.size();
}

bool ValidateDateTime(std::string_view v) {
  v = util::Trim(v);
  size_t space = v.find(' ');
  if (space == std::string_view::npos) return false;
  std::string_view date = v.substr(0, space);
  std::string_view time = v.substr(space + 1);
  size_t pos = 0;
  return ValidateDate(date) && !time.empty() && ParseTimeAt(time, &pos) &&
         pos == time.size();
}

bool ValidateUrl(std::string_view v) {
  v = util::Trim(v);
  size_t host_start = 0;
  if (util::StartsWith(v, "https://")) {
    host_start = 8;
  } else if (util::StartsWith(v, "http://")) {
    host_start = 7;
  } else {
    return false;
  }
  std::string_view rest = v.substr(host_start);
  if (rest.empty()) return false;
  size_t slash = rest.find('/');
  std::string_view host =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  if (!ValidHostname(host)) return false;
  // Path: printable, no spaces.
  if (slash != std::string_view::npos) {
    for (char c : rest.substr(slash)) {
      if (c == ' ' || !std::isprint(static_cast<unsigned char>(c))) {
        return false;
      }
    }
  }
  return true;
}

bool ValidateEmail(std::string_view v) {
  v = util::Trim(v);
  size_t at = v.find('@');
  if (at == std::string_view::npos || at == 0) return false;
  if (v.find('@', at + 1) != std::string_view::npos) return false;
  std::string_view local = v.substr(0, at);
  std::string_view domain = v.substr(at + 1);
  for (char c : local) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' &&
        c != '_' && c != '-' && c != '+') {
      return false;
    }
  }
  return ValidHostname(domain);
}

bool ValidateIpv4(std::string_view v) {
  v = util::Trim(v);
  auto parts = util::Split(std::string(v), '.');
  if (parts.size() != 4) return false;
  for (const auto& p : parts) {
    if (!AllDigits(p) || p.size() > 3) return false;
    if (p.size() > 1 && p[0] == '0') return false;  // no leading zeros
    int x = std::stoi(p);
    if (x < 0 || x > 255) return false;
  }
  return true;
}

bool ValidateUuid(std::string_view v) {
  v = util::Trim(v);
  if (v.size() != 36) return false;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (v[i] != '-') return false;
    } else if (!IsHex(v[i])) {
      return false;
    }
  }
  return true;
}

bool ValidateCreditCard(std::string_view v) {
  v = util::Trim(v);
  std::string digits;
  for (char c : v) {
    if (IsDigit(c)) {
      digits.push_back(c);
    } else if (c != ' ' && c != '-') {
      return false;
    }
  }
  if (digits.size() < 13 || digits.size() > 19) return false;
  return LuhnValid(digits);
}

bool ValidateUpc(std::string_view v) {
  v = util::Trim(v);
  if (v.size() != 12 || !AllDigits(v)) return false;
  int odd = 0;
  int even = 0;
  for (size_t i = 0; i + 1 < v.size(); ++i) {
    if (i % 2 == 0) {
      odd += v[i] - '0';
    } else {
      even += v[i] - '0';
    }
  }
  int check = (10 - (odd * 3 + even) % 10) % 10;
  return v.back() - '0' == check;
}

bool ValidateIsbn13(std::string_view v) {
  v = util::Trim(v);
  if (v.size() != 13 || !AllDigits(v)) return false;
  if (!util::StartsWith(v, "978") && !util::StartsWith(v, "979")) {
    return false;
  }
  int sum = 0;
  for (size_t i = 0; i < 12; ++i) {
    int d = v[i] - '0';
    sum += (i % 2 == 0) ? d : 3 * d;
  }
  int check = (10 - sum % 10) % 10;
  return v.back() - '0' == check;
}

bool ValidatePhoneUs(std::string_view v) {
  v = util::Trim(v);
  // Accepted: ddd-ddd-dddd, (ddd) ddd-dddd, ddd.ddd.dddd, 10 digits.
  std::string digits;
  size_t i = 0;
  bool paren = false;
  if (i < v.size() && v[i] == '(') {
    paren = true;
    ++i;
  }
  for (; i < v.size(); ++i) {
    char c = v[i];
    if (IsDigit(c)) {
      digits.push_back(c);
    } else if (c == ')' && paren && digits.size() == 3) {
      paren = false;
    } else if ((c == '-' || c == '.' || c == ' ') &&
               (digits.size() == 3 || digits.size() == 6)) {
      // separator at a group boundary
    } else {
      return false;
    }
  }
  if (paren) return false;
  return digits.size() == 10 && digits[0] >= '2';
}

bool ValidatePercent(std::string_view v) {
  v = util::Trim(v);
  if (v.size() < 2 || v.back() != '%') return false;
  std::string_view num = v.substr(0, v.size() - 1);
  size_t i = 0;
  if (num[i] == '+' || num[i] == '-') ++i;
  bool digits = false;
  bool dot = false;
  for (; i < num.size(); ++i) {
    if (IsDigit(num[i])) {
      digits = true;
    } else if (num[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits;
}

bool ValidateHexColor(std::string_view v) {
  v = util::Trim(v);
  if (v.size() != 7 && v.size() != 4) return false;
  if (v[0] != '#') return false;
  for (size_t i = 1; i < v.size(); ++i) {
    if (!IsHex(v[i])) return false;
  }
  return true;
}

bool ValidateMacAddress(std::string_view v) {
  v = util::Trim(v);
  if (v.size() != 17) return false;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i % 3 == 2) {
      if (v[i] != ':' && v[i] != '-') return false;
    } else if (!IsHex(v[i])) {
      return false;
    }
  }
  return true;
}

bool ValidateWebDomain(std::string_view v) {
  v = util::Trim(v);
  if (v.find("://") != std::string_view::npos) return false;
  if (v.find('/') != std::string_view::npos) return false;
  return ValidHostname(v);
}

bool ValidateIban(std::string_view v) {
  v = util::Trim(v);
  // Strip spaces (pretty-printed IBANs group digits in fours).
  std::string compact;
  for (char c : v) {
    if (c == ' ') continue;
    compact.push_back(c);
  }
  if (compact.size() < 15 || compact.size() > 34) return false;
  for (size_t i = 0; i < 2; ++i) {
    if (!std::isupper(static_cast<unsigned char>(compact[i]))) return false;
  }
  if (!IsDigit(compact[2]) || !IsDigit(compact[3])) return false;
  // ISO 7064 mod-97: move the first four chars to the end, map letters to
  // numbers (A=10..Z=35), and the remainder must be 1.
  std::string rearranged = compact.substr(4) + compact.substr(0, 4);
  int rem = 0;
  for (char c : rearranged) {
    if (IsDigit(c)) {
      rem = (rem * 10 + (c - '0')) % 97;
    } else if (std::isupper(static_cast<unsigned char>(c))) {
      rem = (rem * 100 + (c - 'A' + 10)) % 97;
    } else {
      return false;
    }
  }
  return rem == 1;
}

bool ValidateVersion(std::string_view v) {
  v = util::Trim(v);
  size_t i = 0;
  if (i < v.size() && (v[i] == 'v' || v[i] == 'V')) ++i;
  int parts = 0;
  while (parts < 4) {
    size_t start = i;
    while (i < v.size() && IsDigit(v[i])) ++i;
    if (i == start) return false;
    ++parts;
    if (i == v.size()) return parts >= 2;
    if (v[i] != '.') return false;
    ++i;
  }
  return false;
}

bool ValidateLatLon(std::string_view v) {
  v = util::Trim(v);
  size_t comma = v.find(',');
  if (comma == std::string_view::npos) return false;
  auto parse = [](std::string_view s, double lo, double hi) {
    s = util::Trim(s);
    if (s.empty()) return false;
    size_t i = 0;
    if (s[i] == '+' || s[i] == '-') ++i;
    bool digits = false;
    bool dot = false;
    for (; i < s.size(); ++i) {
      if (IsDigit(s[i])) {
        digits = true;
      } else if (s[i] == '.' && !dot) {
        dot = true;
      } else {
        return false;
      }
    }
    if (!digits) return false;
    double x = std::strtod(std::string(s).c_str(), nullptr);
    return x >= lo && x <= hi;
  };
  return parse(v.substr(0, comma), -90.0, 90.0) &&
         parse(v.substr(comma + 1), -180.0, 180.0);
}

const std::vector<NamedValidator>& AllValidators() {
  static const auto& validators = *new std::vector<NamedValidator>{
      {"validate_date", "dataprep-sim", &ValidateDate},
      {"validate_time", "dataprep-sim", &ValidateTime},
      {"validate_datetime", "dataprep-sim", &ValidateDateTime},
      {"validate_url", "dataprep-sim", &ValidateUrl},
      {"validate_email", "dataprep-sim", &ValidateEmail},
      {"validate_phone_us", "dataprep-sim", &ValidatePhoneUs},
      {"validate_percent", "dataprep-sim", &ValidatePercent},
      {"validate_web_domain", "dataprep-sim", &ValidateWebDomain},
      {"validate_ipv4", "validators-sim", &ValidateIpv4},
      {"validate_uuid", "validators-sim", &ValidateUuid},
      {"validate_credit_card", "validators-sim", &ValidateCreditCard},
      {"validate_upc", "validators-sim", &ValidateUpc},
      {"validate_isbn13", "validators-sim", &ValidateIsbn13},
      {"validate_hex_color", "validators-sim", &ValidateHexColor},
      {"validate_mac_address", "validators-sim", &ValidateMacAddress},
      {"validate_iban", "validators-sim", &ValidateIban},
      {"validate_version", "dataprep-sim", &ValidateVersion},
      {"validate_lat_lon", "dataprep-sim", &ValidateLatLon},
  };
  return validators;
}

}  // namespace autotest::typedet
