#include "typedet/eval_functions.h"

#include <algorithm>
#include <unordered_set>

#include "pattern/miner.h"
#include "table/column.h"
#include "util/check.h"
#include "util/hashing.h"
#include "util/rng.h"

namespace autotest::typedet {

namespace {

class CtaEval : public DomainEvalFunction {
 public:
  CtaEval(const CtaModelZoo* zoo, size_t type_index)
      : DomainEvalFunction(
            "cta:" + zoo->name() + ":" + zoo->type_names()[type_index],
            Family::kCta),
        zoo_(zoo),
        type_index_(type_index) {}

  double Distance(const std::string& value) const override {
    // Paper Eq. 1: distance = 1 - classifier score.
    return 1.0 - zoo_->Score(type_index_, value);
  }

  void BatchDistance(std::span<const std::string_view> values,
                     std::span<double> out, uint64_t pool_id,
                     size_t block_offset) const override {
    // The zoo's block memo (keyed on pool identity) serves the sibling
    // per-type functions from one dense matrix; pool_id == 0 falls back
    // to its per-value score cache. Bit-identical either way.
    zoo_->BatchScore(type_index_, values, out, pool_id, block_offset);
    for (size_t i = 0; i < values.size(); ++i) out[i] = 1.0 - out[i];
  }
  double min_distance() const override { return 0.0; }
  double max_distance() const override { return 1.0; }

  std::string Describe() const override {
    return zoo_->name() + " " + zoo_->type_names()[type_index_] +
           "-classifier score";
  }

 private:
  const CtaModelZoo* zoo_;
  size_t type_index_;
};

class EmbeddingEval : public DomainEvalFunction {
 public:
  EmbeddingEval(const embed::EmbeddingModel* model,
                std::string centroid_value, embed::Vector centroid)
      : DomainEvalFunction("emb:" + model->name() + ":" + centroid_value,
                           Family::kEmbedding),
        model_(model),
        centroid_value_(std::move(centroid_value)),
        centroid_(std::move(centroid)) {}

  double Distance(const std::string& value) const override {
    embed::Vector v;
    if (!model_->EmbedCached(value, &v)) return model_->oov_distance();
    return embed::EuclideanDistance(v, centroid_);
  }

  void BatchDistance(std::span<const std::string_view> values,
                     std::span<double> out, uint64_t pool_id,
                     size_t block_offset) const override {
    // Embed the block once (single cache pass), then run the distance
    // kernel over contiguous rows. With a pool identity the embedded
    // block itself is memoized in the model and shared across all
    // per-centroid functions — no per-value lookups or row copies at
    // all. EuclideanDistanceRaw is the same function the scalar path
    // reaches through EuclideanDistance, so the paths are bit-identical.
    const size_t d = model_->dim();
    std::shared_ptr<const embed::EmbeddingModel::BlockEmbeds> shared;
    std::vector<float> local_rows;
    std::vector<uint8_t> local_ok;
    const float* rows = nullptr;
    const uint8_t* ok = nullptr;
    if (pool_id != 0) {
      shared = model_->EmbedBlockShared(values, pool_id, block_offset);
      rows = shared->rows.data();
      ok = shared->ok.data();
    } else {
      local_rows.resize(values.size() * d);
      local_ok.resize(values.size());
      model_->EmbedBlockCached(values, local_rows.data(), local_ok.data());
      rows = local_rows.data();
      ok = local_ok.data();
    }
    const double oov = model_->oov_distance();
    const float* centroid = centroid_.data();
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = ok[i] != 0
                   ? embed::EuclideanDistanceRaw(&rows[i * d], centroid, d)
                   : oov;
    }
  }
  double min_distance() const override { return 0.0; }
  double max_distance() const override { return model_->oov_distance(); }

  std::string Describe() const override {
    return model_->name() + " distance to \"" + centroid_value_ + "\"";
  }

 private:
  const embed::EmbeddingModel* model_;
  std::string centroid_value_;
  embed::Vector centroid_;
};

class PatternEval : public DomainEvalFunction {
 public:
  explicit PatternEval(pattern::Pattern pattern)
      : DomainEvalFunction("pat:" + pattern.ToString(), Family::kPattern),
        pattern_(std::move(pattern)) {}

  double Distance(const std::string& value) const override {
    // Paper Eq. 3: match -> 0, non-match -> 1.
    return pattern_.Matches(value) ? 0.0 : 1.0;
  }

  void BatchDistance(std::span<const std::string_view> values,
                     std::span<double> out, uint64_t /*pool_id*/,
                     size_t /*block_offset*/) const override {
    // The matcher takes string_view natively; the override only skips the
    // default loop's per-value std::string materialization. Matching is
    // cheap enough that a pool-keyed memo would cost more than it saves.
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = pattern_.Matches(values[i]) ? 0.0 : 1.0;
    }
  }
  double min_distance() const override { return 0.0; }
  double max_distance() const override { return 1.0; }
  bool binary() const override { return true; }

  std::string Describe() const override {
    return "match pattern \"" + pattern_.ToString() + "\"";
  }

 private:
  pattern::Pattern pattern_;
};

class FunctionEval : public DomainEvalFunction {
 public:
  explicit FunctionEval(NamedValidator validator)
      : DomainEvalFunction("fun:" + validator.name, Family::kFunction),
        validator_(validator) {}

  double Distance(const std::string& value) const override {
    // Paper Eq. 4: returns-true -> 0, returns-false -> 1.
    return validator_.fn(value) ? 0.0 : 1.0;
  }

  void BatchDistance(std::span<const std::string_view> values,
                     std::span<double> out, uint64_t /*pool_id*/,
                     size_t /*block_offset*/) const override {
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = validator_.fn(values[i]) ? 0.0 : 1.0;
    }
  }
  double min_distance() const override { return 0.0; }
  double max_distance() const override { return 1.0; }
  bool binary() const override { return true; }

  std::string Describe() const override {
    return "function " + validator_.name + "() [" + validator_.library + "]";
  }

 private:
  NamedValidator validator_;
};

class RandomHashEval : public DomainEvalFunction {
 public:
  explicit RandomHashEval(uint64_t seed)
      : DomainEvalFunction("hash:" + std::to_string(seed), Family::kHash),
        seed_(seed) {}

  double Distance(const std::string& value) const override {
    // A hash function maps every value to an arbitrary number in [0, 1]:
    // it corresponds to no meaningful domain (paper Section 6.5).
    return util::HashToUnitDouble(util::Fnv64Seeded(value, seed_));
  }

  void BatchDistance(std::span<const std::string_view> values,
                     std::span<double> out, uint64_t /*pool_id*/,
                     size_t /*block_offset*/) const override {
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = util::HashToUnitDouble(util::Fnv64Seeded(values[i], seed_));
    }
  }
  double min_distance() const override { return 0.0; }
  double max_distance() const override { return 1.0; }

  std::string Describe() const override {
    return "random hash #" + std::to_string(seed_);
  }

 private:
  uint64_t seed_;
};

// Samples centroid values from the corpus, occurrence-weighted like the
// paper ("randomly sample 1000 values"): values common across many columns
// (countries, months, cities) are proportionally more likely to become
// centroids than one-off ids. Duplicates are skipped, and a value is kept
// only if the model can embed it (an OOV centroid yields a constant
// function).
std::vector<std::string> SampleCentroids(const table::Corpus& corpus,
                                         const embed::EmbeddingModel& model,
                                         size_t count, uint64_t seed) {
  std::vector<const std::string*> pool;
  for (const auto& column : corpus) {
    for (const auto& v : column.values) {
      if (v.size() >= 2) pool.push_back(&v);
    }
  }
  util::Rng rng(seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  embed::Vector tmp;
  size_t attempts = 0;
  const size_t max_attempts = pool.size() * 2 + 1000;
  while (out.size() < count && attempts++ < max_attempts && !pool.empty()) {
    const std::string& v = *pool[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
    if (!seen.insert(v).second) continue;
    if (model.Embed(v, &tmp)) out.push_back(v);
  }
  return out;
}

}  // namespace

const char* FamilyName(Family family) {
  switch (family) {
    case Family::kCta:
      return "cta";
    case Family::kEmbedding:
      return "embedding";
    case Family::kPattern:
      return "pattern";
    case Family::kFunction:
      return "function";
    case Family::kHash:
      return "hash";
  }
  return "unknown";
}

std::unique_ptr<DomainEvalFunction> MakeCtaEval(const CtaModelZoo* zoo,
                                                size_t type_index) {
  AT_CHECK(zoo != nullptr && type_index < zoo->num_types());
  return std::make_unique<CtaEval>(zoo, type_index);
}

std::unique_ptr<DomainEvalFunction> MakeEmbeddingEval(
    const embed::EmbeddingModel* model, const std::string& centroid_value) {
  AT_CHECK(model != nullptr);
  embed::Vector centroid;
  AT_CHECK_MSG(model->Embed(centroid_value, &centroid),
               "centroid value must be embeddable");
  return std::make_unique<EmbeddingEval>(model, centroid_value,
                                         std::move(centroid));
}

std::unique_ptr<DomainEvalFunction> MakePatternEval(
    const pattern::Pattern& pattern) {
  return std::make_unique<PatternEval>(pattern);
}

std::unique_ptr<DomainEvalFunction> MakeFunctionEval(
    const NamedValidator& validator) {
  return std::make_unique<FunctionEval>(validator);
}

std::unique_ptr<DomainEvalFunction> MakeRandomHashEval(uint64_t seed) {
  return std::make_unique<RandomHashEval>(seed);
}

EvalFunctionSet EvalFunctionSet::Build(const table::Corpus& corpus,
                                       const EvalFunctionSetOptions& options) {
  EvalFunctionSet set;

  if (options.include_cta) {
    set.cta_zoos_.push_back(SharedSherlockSim());
    set.cta_zoos_.push_back(SharedDoduoSim());
    for (const auto& zoo : set.cta_zoos_) {
      for (size_t t = 0; t < zoo->num_types(); ++t) {
        set.functions_.push_back(MakeCtaEval(zoo.get(), t));
      }
    }
  }

  if (options.include_embedding) {
    set.embedding_models_.push_back(embed::SharedGloveSim());
    set.embedding_models_.push_back(embed::SharedSbertSim());
    uint64_t seed = options.seed;
    for (const auto& model : set.embedding_models_) {
      auto centroids =
          SampleCentroids(corpus, *model,
                          options.embedding_centroids_per_model, seed++);
      for (const auto& c : centroids) {
        set.functions_.push_back(MakeEmbeddingEval(model.get(), c));
      }
    }
  }

  if (options.include_pattern) {
    pattern::MinerOptions miner;
    miner.max_patterns = options.max_patterns;
    for (const auto& mined : pattern::MinePatterns(corpus, miner)) {
      set.functions_.push_back(MakePatternEval(mined.pattern));
    }
  }

  if (options.include_function) {
    for (const auto& v : AllValidators()) {
      set.functions_.push_back(MakeFunctionEval(v));
    }
  }

  for (size_t i = 0; i < options.num_random_hash; ++i) {
    set.functions_.push_back(
        MakeRandomHashEval(options.seed ^ (0x1000 + i)));
  }

  return set;
}

void EvalFunctionSet::Add(std::unique_ptr<DomainEvalFunction> function) {
  AT_CHECK(function != nullptr);
  for (const auto& f : functions_) {
    AT_CHECK_MSG(f->id() != function->id(), "duplicate eval function id");
  }
  functions_.push_back(std::move(function));
}

std::vector<const DomainEvalFunction*> EvalFunctionSet::FamilyFunctions(
    Family family) const {
  std::vector<const DomainEvalFunction*> out;
  for (const auto& f : functions_) {
    if (f->family() == family) out.push_back(f.get());
  }
  return out;
}

}  // namespace autotest::typedet
