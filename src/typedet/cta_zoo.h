#ifndef AUTOTEST_TYPEDET_CTA_ZOO_H_
#define AUTOTEST_TYPEDET_CTA_ZOO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/features.h"
#include "ml/logistic_regression.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace autotest::typedet {

/// Configuration of one CTA classifier zoo (a simulated Sherlock / Doduo).
struct CtaZooConfig {
  std::string name;  // "sherlock-sim" | "doduo-sim"
  /// Gazetteer domain names to train one binary classifier for.
  std::vector<std::string> type_names;
  ml::FeatureConfig feature_config;
  ml::LogRegConfig train_config;
  /// Negative examples sampled per type (from other domains).
  size_t negatives_per_type = 500;
  uint64_t seed = 1;
};

/// A zoo of per-type binary classifiers (CTA as per the paper's Section 3:
/// multi-class CTA viewed as one binary classifier per type). Classifiers
/// are trained in-process on gazetteer *head* values, which reproduces the
/// real-world miscalibration on rare values: a valid-but-uncommon member
/// can score low even when the column-level (macro) prediction is right.
class CtaModelZoo {
 public:
  /// Trains all classifiers (parallelized over types). Deterministic in
  /// the config seed.
  static std::unique_ptr<CtaModelZoo> Train(const CtaZooConfig& config);

  /// P(value belongs to type) in [0, 1]. Scores for all types of a value
  /// are computed on first use and memoized (feature extraction dominates
  /// the cost and is shared across the zoo's types).
  double Score(size_t type_index, const std::string& value) const;

  const std::string& name() const { return config_.name; }
  const std::vector<std::string>& type_names() const {
    return config_.type_names;
  }
  size_t num_types() const { return config_.type_names.size(); }

 private:
  explicit CtaModelZoo(CtaZooConfig config)
      : config_(std::move(config)), extractor_(config_.feature_config) {}

  CtaZooConfig config_;
  ml::FeatureExtractor extractor_;
  std::vector<ml::LogisticRegression> models_;

  // Per-value score cache (all types at once), bounded to keep memory flat
  // across long benchmark sweeps.
  static constexpr size_t kMaxCacheEntries = 2'000'000;
  mutable util::Mutex cache_mu_;
  mutable std::unordered_map<std::string, std::vector<float>> score_cache_
      AT_GUARDED_BY(cache_mu_);
};

/// The two built-in zoos. Sherlock-sim covers a subset of NL domains
/// (Sherlock: 78 DBpedia types); Doduo-sim covers all NL domains with a
/// different feature space (Doduo: 121 Freebase types).
std::unique_ptr<CtaModelZoo> TrainSherlockSim();
std::unique_ptr<CtaModelZoo> TrainDoduoSim();

}  // namespace autotest::typedet

#endif  // AUTOTEST_TYPEDET_CTA_ZOO_H_
