#ifndef AUTOTEST_TYPEDET_CTA_ZOO_H_
#define AUTOTEST_TYPEDET_CTA_ZOO_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ml/features.h"
#include "ml/logistic_regression.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace autotest::typedet {

/// Configuration of one CTA classifier zoo (a simulated Sherlock / Doduo).
struct CtaZooConfig {
  std::string name;  // "sherlock-sim" | "doduo-sim"
  /// Gazetteer domain names to train one binary classifier for.
  std::vector<std::string> type_names;
  ml::FeatureConfig feature_config;
  ml::LogRegConfig train_config;
  /// Negative examples sampled per type (from other domains).
  size_t negatives_per_type = 500;
  uint64_t seed = 1;
};

/// A zoo of per-type binary classifiers (CTA as per the paper's Section 3:
/// multi-class CTA viewed as one binary classifier per type). Classifiers
/// are trained in-process on gazetteer *head* values, which reproduces the
/// real-world miscalibration on rare values: a valid-but-uncommon member
/// can score low even when the column-level (macro) prediction is right.
class CtaModelZoo {
 public:
  /// Trains all classifiers (parallelized over types). Deterministic in
  /// the config seed.
  static std::unique_ptr<CtaModelZoo> Train(const CtaZooConfig& config);

  /// P(value belongs to type) in [0, 1]. Scores for all types of a value
  /// are computed on first use and memoized (feature extraction dominates
  /// the cost and is shared across the zoo's types).
  double Score(size_t type_index, const std::string& value) const;

  /// Batched Score over a block of values: out[i] receives the type's
  /// score for values[i]. One cache pass per block (lookups under a single
  /// lock, feature extraction for misses outside it) instead of a
  /// lock/find per value. Bit-identical to per-value Score.
  ///
  /// A non-zero (pool_id, block_offset) identifies the block as a stable
  /// slice of an interned value pool (table::ColumnStore). The zoo then
  /// memoizes the block's dense all-type score matrix, so the first
  /// per-type function to touch the block pays the value-cache pass once
  /// and every sibling type's call is a contiguous strided read — no hash
  /// lookups at all. Scores are bit-identical either way: the matrix rows
  /// are the same per-value score vectors the value cache holds.
  void BatchScore(size_t type_index,
                  std::span<const std::string_view> values,
                  std::span<double> out, uint64_t pool_id = 0,
                  size_t block_offset = 0) const;

  const std::string& name() const { return config_.name; }
  const std::vector<std::string>& type_names() const {
    return config_.type_names;
  }
  size_t num_types() const { return config_.type_names.size(); }

 private:
  explicit CtaModelZoo(CtaZooConfig config)
      : config_(std::move(config)), extractor_(config_.feature_config) {}

  /// All-type scores for one feature vector through the packed transposed
  /// weight matrix: feature-index outer, type inner, so every type's
  /// accumulation order matches LogisticRegression::Predict exactly
  /// (bit-identical scores) while the inner loop runs independent
  /// multiply-add chains across types instead of one serial dot product
  /// per model.
  void ScoreAllTypes(const std::vector<float>& features,
                     std::vector<float>* scores) const;

  /// Packs models_ into wt_/biases_/trained_ after training.
  void PackWeights();

  /// Fetches (or builds and memoizes) the dense num_types-wide score
  /// matrix for one identified pool block. Row i holds all type scores of
  /// values[i], in type order.
  std::shared_ptr<const std::vector<float>> ScoreBlock(
      std::span<const std::string_view> values, uint64_t pool_id,
      size_t block_offset) const;

  CtaZooConfig config_;
  ml::FeatureExtractor extractor_;
  std::vector<ml::LogisticRegression> models_;

  // Transposed weights: wt_[j * num_types + t] = models_[t].weights()[j].
  std::vector<double> wt_;
  std::vector<double> biases_;
  std::vector<uint8_t> trained_;

  // Transparent hashing so block lookups by string_view need no temporary
  // std::string per probed value.
  struct ValueHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  // Per-value score cache (all types at once), bounded to keep memory flat
  // across long benchmark sweeps.
  static constexpr size_t kMaxCacheEntries = 2'000'000;
  mutable util::Mutex cache_mu_;
  mutable std::unordered_map<std::string, std::vector<float>, ValueHash,
                             std::equal_to<>>
      score_cache_ AT_GUARDED_BY(cache_mu_);

  // Dense per-block score matrices keyed by (pool_id << 32) | offset,
  // shared across the zoo's per-type eval functions. Bounded; whole-cache
  // eviction like the value cache. shared_ptr entries let readers keep a
  // matrix alive across an eviction without holding the lock.
  static constexpr size_t kMaxBlockCacheFloats = 8'000'000;  // 32 MB
  mutable util::Mutex block_mu_;
  mutable std::unordered_map<uint64_t,
                             std::shared_ptr<const std::vector<float>>>
      block_cache_ AT_GUARDED_BY(block_mu_);
  mutable size_t block_cache_floats_ AT_GUARDED_BY(block_mu_) = 0;
};

/// The two built-in zoos. Sherlock-sim covers a subset of NL domains
/// (Sherlock: 78 DBpedia types); Doduo-sim covers all NL domains with a
/// different feature space (Doduo: 121 Freebase types).
std::unique_ptr<CtaModelZoo> TrainSherlockSim();
std::unique_ptr<CtaModelZoo> TrainDoduoSim();

/// Process-shared instances of the built-in zoos, trained once on first
/// use. The zoos are pure functions of their fixed configs (gazetteer +
/// seeds), so every EvalFunctionSet::Build can reuse one instance — and
/// with it the warm per-value score cache — instead of retraining per
/// corpus. Thread-safe (magic statics + internally synchronized caches).
std::shared_ptr<CtaModelZoo> SharedSherlockSim();
std::shared_ptr<CtaModelZoo> SharedDoduoSim();

}  // namespace autotest::typedet

#endif  // AUTOTEST_TYPEDET_CTA_ZOO_H_
