#ifndef AUTOTEST_TYPEDET_VALIDATORS_H_
#define AUTOTEST_TYPEDET_VALIDATORS_H_

#include <string>
#include <string_view>
#include <vector>

namespace autotest::typedet {

/// Validation functions for rich semantic types (paper Section 3, category
/// 4) — our stand-ins for the DataPrep / Validators libraries. Each returns
/// true iff the value is a well-formed member of the type, including
/// check-digit and calendar validation where applicable.

bool ValidateDate(std::string_view v);       // m/d/yyyy or yyyy-mm-dd
bool ValidateTime(std::string_view v);       // HH:MM or HH:MM:SS (24h)
bool ValidateDateTime(std::string_view v);   // yyyy-mm-dd HH:MM:SS
bool ValidateUrl(std::string_view v);        // scheme://host/path
bool ValidateEmail(std::string_view v);
bool ValidateIpv4(std::string_view v);
bool ValidateUuid(std::string_view v);
bool ValidateCreditCard(std::string_view v);  // 13-19 digits + Luhn
bool ValidateUpc(std::string_view v);         // 12 digits + check digit
bool ValidateIsbn13(std::string_view v);
bool ValidatePhoneUs(std::string_view v);     // ddd-ddd-dddd etc.
bool ValidatePercent(std::string_view v);     // number + %
bool ValidateHexColor(std::string_view v);    // #rrggbb
bool ValidateMacAddress(std::string_view v);
bool ValidateWebDomain(std::string_view v);   // host.tld
bool ValidateIban(std::string_view v);        // ISO 13616 + mod-97 check
bool ValidateVersion(std::string_view v);     // v?1.2[.3]
bool ValidateLatLon(std::string_view v);      // "44.98,-93.27"

/// A named validator, grouped by the library it simulates ("dataprep-sim"
/// or "validators-sim").
struct NamedValidator {
  std::string name;     // e.g. "validate_date"
  std::string library;  // "dataprep-sim" | "validators-sim"
  bool (*fn)(std::string_view);
};

/// All validators (the paper uses 8 functions; we ship 15).
const std::vector<NamedValidator>& AllValidators();

}  // namespace autotest::typedet

#endif  // AUTOTEST_TYPEDET_VALIDATORS_H_
