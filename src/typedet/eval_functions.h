#ifndef AUTOTEST_TYPEDET_EVAL_FUNCTIONS_H_
#define AUTOTEST_TYPEDET_EVAL_FUNCTIONS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "embed/embedding.h"
#include "pattern/pattern.h"
#include "table/table.h"
#include "typedet/cta_zoo.h"
#include "typedet/domain_eval.h"
#include "typedet/validators.h"

namespace autotest::typedet {

/// Options for assembling the full set of domain-evaluation functions
/// (paper Section 5.1). Family switches support the Table-7/Figure-23
/// ablations; `num_random_hash` supports the Section-6.5 robustness study.
struct EvalFunctionSetOptions {
  bool include_cta = true;
  bool include_embedding = true;
  bool include_pattern = true;
  bool include_function = true;
  /// Centroid values sampled from the corpus per embedding model (paper:
  /// 1000 across two models; scaled to our corpus sizes).
  size_t embedding_centroids_per_model = 120;
  /// Corpus-mined patterns to keep (paper: 45).
  size_t max_patterns = 45;
  /// Adversarial random-hash functions to inject (0 in normal operation).
  size_t num_random_hash = 0;
  uint64_t seed = 99;
};

/// Owns the evaluation functions plus the models backing them (CTA zoos and
/// embedding models). Movable, non-copyable.
class EvalFunctionSet {
 public:
  /// Builds the set: trains the CTA zoos, samples embedding centroids from
  /// the corpus, mines corpus patterns, and wraps the validators.
  static EvalFunctionSet Build(const table::Corpus& corpus,
                               const EvalFunctionSetOptions& options = {});

  EvalFunctionSet(EvalFunctionSet&&) = default;
  EvalFunctionSet& operator=(EvalFunctionSet&&) = default;
  EvalFunctionSet(const EvalFunctionSet&) = delete;
  EvalFunctionSet& operator=(const EvalFunctionSet&) = delete;

  /// Registers an additional evaluation function (paper feature 3:
  /// extensibility to new column-type detection techniques). Must be
  /// called before training; the function id must be unique.
  void Add(std::unique_ptr<DomainEvalFunction> function);

  const std::vector<std::unique_ptr<DomainEvalFunction>>& functions() const {
    return functions_;
  }
  size_t size() const { return functions_.size(); }
  const DomainEvalFunction& at(size_t i) const { return *functions_[i]; }

  /// Functions of one family (for per-family baselines and ablations).
  std::vector<const DomainEvalFunction*> FamilyFunctions(
      Family family) const;

  /// The CTA zoos backing the set (for baselines that need raw scores).
  /// Shared: the built-in zoos and embedding models are process-wide
  /// singletons (SharedSherlockSim etc.), so repeated Build calls reuse
  /// trained models and warm value caches instead of starting cold.
  const std::vector<std::shared_ptr<CtaModelZoo>>& cta_zoos() const {
    return cta_zoos_;
  }
  const std::vector<std::shared_ptr<embed::EmbeddingModel>>&
  embedding_models() const {
    return embedding_models_;
  }

 private:
  EvalFunctionSet() = default;

  std::vector<std::shared_ptr<CtaModelZoo>> cta_zoos_;
  std::vector<std::shared_ptr<embed::EmbeddingModel>> embedding_models_;
  std::vector<std::unique_ptr<DomainEvalFunction>> functions_;
};

/// Factory helpers (exposed for tests and custom extensions).
std::unique_ptr<DomainEvalFunction> MakeCtaEval(const CtaModelZoo* zoo,
                                                size_t type_index);
std::unique_ptr<DomainEvalFunction> MakeEmbeddingEval(
    const embed::EmbeddingModel* model, const std::string& centroid_value);
std::unique_ptr<DomainEvalFunction> MakePatternEval(
    const pattern::Pattern& pattern);
std::unique_ptr<DomainEvalFunction> MakeFunctionEval(
    const NamedValidator& validator);
std::unique_ptr<DomainEvalFunction> MakeRandomHashEval(uint64_t seed);

}  // namespace autotest::typedet

#endif  // AUTOTEST_TYPEDET_EVAL_FUNCTIONS_H_
