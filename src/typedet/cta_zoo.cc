#include "typedet/cta_zoo.h"

#include <cctype>

#include "datagen/gazetteer.h"
#include "util/check.h"
#include "util/hashing.h"
#include "util/parallel/thread_pool.h"
#include "util/rng.h"

namespace autotest::typedet {

namespace {

std::string TitleCase(const std::string& s) {
  std::string out = s;
  bool start = true;
  for (char& c : out) {
    if (start && std::isalpha(static_cast<unsigned char>(c))) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    start = (c == ' ' || c == '-');
  }
  return out;
}

// Collects negative examples: head values of other domains plus fresh
// machine-generated values, so classifiers see both text and id shapes.
std::vector<std::string> SampleNegatives(const std::string& own_domain,
                                         size_t count, util::Rng* rng) {
  const auto& gaz = datagen::Gazetteer::Instance();
  std::vector<std::string> out;
  out.reserve(count);
  const auto& domains = gaz.domains();
  while (out.size() < count) {
    const datagen::Domain& d = domains[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(domains.size()) - 1))];
    if (d.name == own_domain) continue;
    std::string v = d.has_generator() && rng->Bernoulli(0.5)
                        ? d.generator(*rng)
                        : rng->Pick(d.head);
    if (gaz.Contains(own_domain, v)) continue;
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace

std::unique_ptr<CtaModelZoo> CtaModelZoo::Train(const CtaZooConfig& config) {
  AT_CHECK(!config.type_names.empty());
  auto zoo = std::unique_ptr<CtaModelZoo>(new CtaModelZoo(config));
  zoo->models_.resize(config.type_names.size());

  const auto& gaz = datagen::Gazetteer::Instance();
  // One classifier per chunk: training cost varies with domain size, so
  // work stealing at item granularity keeps the pool busy.
  util::parallel::Options par_opt;
  par_opt.grain = 1;
  util::parallel::ParallelFor(config.type_names.size(), [&](size_t t) {
    const std::string& type_name = config.type_names[t];
    const datagen::Domain* domain = gaz.Find(type_name);
    AT_CHECK_MSG(domain != nullptr, type_name.c_str());
    util::Rng rng(config.seed ^ util::Fnv64(type_name));

    // Positives: head values (with casing variants), oversampled to
    // balance the negatives, plus tail values added once with low weight.
    // Like a real pre-trained CTA model, the classifier is confident on
    // common members and lukewarm on rare ones — the micro-level
    // miscalibration of the paper's Example 2: rare valid values score in
    // the middle, so naive per-value thresholds misflag them while SDCs'
    // calibrated outer balls spare them.
    std::vector<std::string> positives;
    for (const auto& v : domain->head) {
      positives.push_back(v);
      positives.push_back(TitleCase(v));
    }
    if (domain->has_generator()) {
      for (int i = 0; i < 150; ++i) positives.push_back(domain->generator(rng));
    }
    size_t neg_count =
        std::max(config.negatives_per_type, positives.size());
    std::vector<std::string> negatives =
        SampleNegatives(type_name, neg_count, &rng);
    // Balance the classes: small domains would otherwise be swamped by
    // negatives and the classifier would underfit toward "no".
    size_t base_positives = positives.size();
    while (positives.size() < negatives.size()) {
      positives.push_back(positives[positives.size() % base_positives]);
    }
    for (const auto& v : domain->tail) {
      positives.push_back(v);  // once: rare values are weakly represented
    }

    std::vector<std::vector<float>> x;
    std::vector<int> y;
    x.reserve(positives.size() + negatives.size());
    for (const auto& v : positives) {
      x.push_back(zoo->extractor_.Extract(v));
      y.push_back(1);
    }
    for (const auto& v : negatives) {
      x.push_back(zoo->extractor_.Extract(v));
      y.push_back(0);
    }
    ml::LogRegConfig train = config.train_config;
    train.seed = config.seed ^ (t * 0x9e37ULL);
    zoo->models_[t].Train(x, y, train);
  }, par_opt);
  zoo->PackWeights();
  return zoo;
}

void CtaModelZoo::PackWeights() {
  const size_t nt = models_.size();
  const size_t dim = extractor_.dim();
  wt_.assign(dim * nt, 0.0);
  biases_.assign(nt, 0.0);
  trained_.assign(nt, 0);
  for (size_t t = 0; t < nt; ++t) {
    if (!models_[t].trained()) continue;  // scores 0.5 like Predict
    AT_CHECK(models_[t].dim() == dim);
    trained_[t] = 1;
    biases_[t] = models_[t].bias();
    const std::vector<double>& w = models_[t].weights();
    for (size_t j = 0; j < dim; ++j) wt_[j * nt + t] = w[j];
  }
}

void CtaModelZoo::ScoreAllTypes(const std::vector<float>& features,
                                std::vector<float>* scores) const {
  const size_t nt = models_.size();
  const size_t dim = extractor_.dim();
  AT_CHECK(features.size() == dim);
  std::vector<double> acc(biases_);
  for (size_t j = 0; j < dim; ++j) {
    const double xj = static_cast<double>(features[j]);
    const double* row = &wt_[j * nt];
    for (size_t t = 0; t < nt; ++t) acc[t] += row[t] * xj;
  }
  scores->resize(nt);
  for (size_t t = 0; t < nt; ++t) {
    (*scores)[t] =
        trained_[t] != 0 ? static_cast<float>(ml::Sigmoid(acc[t])) : 0.5f;
  }
}

double CtaModelZoo::Score(size_t type_index, const std::string& value) const {
  AT_CHECK(type_index < models_.size());
  {
    util::MutexLock lock(&cache_mu_);
    auto it = score_cache_.find(value);
    if (it != score_cache_.end()) {
      return static_cast<double>(it->second[type_index]);
    }
  }
  std::vector<float> features = extractor_.Extract(value);
  std::vector<float> scores;
  ScoreAllTypes(features, &scores);
  double out = static_cast<double>(scores[type_index]);
  util::MutexLock lock(&cache_mu_);
  if (score_cache_.size() >= kMaxCacheEntries) score_cache_.clear();
  score_cache_.emplace(value, std::move(scores));
  return out;
}

std::shared_ptr<const std::vector<float>> CtaModelZoo::ScoreBlock(
    std::span<const std::string_view> values, uint64_t pool_id,
    size_t block_offset) const {
  const uint64_t key = (pool_id << 32) | static_cast<uint64_t>(block_offset);
  {
    util::MutexLock lock(&block_mu_);
    auto it = block_cache_.find(key);
    if (it != block_cache_.end()) return it->second;
  }
  const size_t nt = models_.size();
  auto matrix = std::make_shared<std::vector<float>>(values.size() * nt);
  // Row-fill from the value cache; misses are scored outside the lock, so
  // the matrix rows are exactly the vectors per-value Score would cache.
  std::vector<size_t> misses;
  {
    util::MutexLock lock(&cache_mu_);
    for (size_t i = 0; i < values.size(); ++i) {
      auto it = score_cache_.find(values[i]);
      if (it == score_cache_.end()) {
        misses.push_back(i);
        continue;
      }
      std::copy(it->second.begin(), it->second.end(),
                matrix->begin() + static_cast<ptrdiff_t>(i * nt));
    }
  }
  if (!misses.empty()) {
    std::vector<std::vector<float>> computed(misses.size());
    for (size_t k = 0; k < misses.size(); ++k) {
      std::vector<float> features = extractor_.Extract(values[misses[k]]);
      ScoreAllTypes(features, &computed[k]);
      std::copy(computed[k].begin(), computed[k].end(),
                matrix->begin() + static_cast<ptrdiff_t>(misses[k] * nt));
    }
    util::MutexLock lock(&cache_mu_);
    for (size_t k = 0; k < misses.size(); ++k) {
      if (score_cache_.size() >= kMaxCacheEntries) score_cache_.clear();
      score_cache_.emplace(std::string(values[misses[k]]),
                           std::move(computed[k]));
    }
  }
  util::MutexLock lock(&block_mu_);
  auto [it, inserted] = block_cache_.emplace(key, matrix);
  if (inserted) {
    block_cache_floats_ += matrix->size();
    if (block_cache_floats_ > kMaxBlockCacheFloats) {
      // Whole-cache eviction; the caller's shared_ptr stays valid, and the
      // next request simply rebuilds from the (still warm) value cache.
      block_cache_.clear();
      block_cache_floats_ = 0;
    }
    return matrix;
  }
  return it->second;  // racing thread published an identical matrix first
}

void CtaModelZoo::BatchScore(size_t type_index,
                             std::span<const std::string_view> values,
                             std::span<double> out, uint64_t pool_id,
                             size_t block_offset) const {
  AT_CHECK(type_index < models_.size() && out.size() >= values.size());
  if (pool_id != 0) {
    const std::shared_ptr<const std::vector<float>> matrix =
        ScoreBlock(values, pool_id, block_offset);
    const size_t nt = models_.size();
    const float* m = matrix->data();
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = static_cast<double>(m[i * nt + type_index]);
    }
    return;
  }
  std::vector<size_t> misses;
  {
    util::MutexLock lock(&cache_mu_);
    for (size_t i = 0; i < values.size(); ++i) {
      auto it = score_cache_.find(values[i]);
      if (it == score_cache_.end()) {
        misses.push_back(i);
        continue;
      }
      out[i] = static_cast<double>(it->second[type_index]);
    }
  }
  if (misses.empty()) return;
  // Feature extraction + all per-type predictions happen outside the lock;
  // racing threads compute identical score vectors.
  std::vector<std::vector<float>> computed(misses.size());
  for (size_t k = 0; k < misses.size(); ++k) {
    std::vector<float> features = extractor_.Extract(values[misses[k]]);
    ScoreAllTypes(features, &computed[k]);
    out[misses[k]] = static_cast<double>(computed[k][type_index]);
  }
  util::MutexLock lock(&cache_mu_);
  for (size_t k = 0; k < misses.size(); ++k) {
    if (score_cache_.size() >= kMaxCacheEntries) score_cache_.clear();
    score_cache_.emplace(std::string(values[misses[k]]),
                         std::move(computed[k]));
  }
}

std::unique_ptr<CtaModelZoo> TrainSherlockSim() {
  const auto& gaz = datagen::Gazetteer::Instance();
  std::vector<std::string> all =
      gaz.DomainNames(datagen::DomainKind::kNaturalLanguage);
  CtaZooConfig config;
  config.name = "sherlock-sim";
  // Sherlock covers fewer types than Doduo: take ~60% of the NL domains.
  for (size_t i = 0; i < all.size(); ++i) {
    if (i % 5 != 4 && i % 5 != 2) config.type_names.push_back(all[i]);
  }
  config.feature_config.hash_dim = 248;
  config.feature_config.seed = 0x5e1;
  config.train_config.epochs = 25;
  config.seed = 0x5e1f00d;
  return CtaModelZoo::Train(config);
}

std::unique_ptr<CtaModelZoo> TrainDoduoSim() {
  const auto& gaz = datagen::Gazetteer::Instance();
  CtaZooConfig config;
  config.name = "doduo-sim";
  config.type_names = gaz.DomainNames(datagen::DomainKind::kNaturalLanguage);
  config.feature_config.hash_dim = 312;
  config.feature_config.seed = 0xd0d;
  config.train_config.epochs = 25;
  config.seed = 0xd0d0f00d;
  return CtaModelZoo::Train(config);
}

std::shared_ptr<CtaModelZoo> SharedSherlockSim() {
  // Leaky magic static: the zoo is a pure function of its fixed config, so
  // one process-wide instance (with its warm score cache) serves every
  // EvalFunctionSet::Build.
  static const auto& zoo =
      *new std::shared_ptr<CtaModelZoo>(TrainSherlockSim());
  return zoo;
}

std::shared_ptr<CtaModelZoo> SharedDoduoSim() {
  static const auto& zoo = *new std::shared_ptr<CtaModelZoo>(TrainDoduoSim());
  return zoo;
}

}  // namespace autotest::typedet
