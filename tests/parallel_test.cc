// Tests for the persistent work-stealing pool in util/parallel: exactly-once
// execution across edge-case shapes, nested regions, reuse across many
// calls, contention under skewed per-item cost, and the determinism
// contract of ParallelReduce (bit-identical merges across thread counts).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/hashing.h"
#include "util/parallel/thread_pool.h"
#include "util/thread_pool.h"

namespace autotest::util::parallel {
namespace {

Options Threads(size_t n, size_t grain = 0) {
  Options opt;
  opt.num_threads = n;
  opt.grain = grain;
  return opt;
}

// Every index in [0, n) must execute exactly once.
void ExpectExactlyOnce(size_t n, const Options& opt) {
  std::vector<std::atomic<uint32_t>> hits(n);
  for (auto& h : hits) h.store(0);
  ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); }, opt);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroItems) {
  std::atomic<uint32_t> calls{0};
  ParallelFor(0, [&](size_t) { calls.fetch_add(1); }, Threads(8));
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ParallelForTest, SingleItem) { ExpectExactlyOnce(1, Threads(8)); }

TEST(ParallelForTest, FewerItemsThanThreads) {
  ExpectExactlyOnce(3, Threads(8));
}

TEST(ParallelForTest, NotDivisibleByGrain) {
  // 1000 = 142 * 7 + 6: last chunk is a partial one.
  ExpectExactlyOnce(1000, Threads(4, /*grain=*/7));
}

TEST(ParallelForTest, GrainLargerThanN) {
  ExpectExactlyOnce(5, Threads(4, /*grain=*/100));
}

TEST(ParallelForTest, ManyThreadCountGrainCombos) {
  for (size_t threads : {1, 2, 3, 8, 16}) {
    for (size_t grain : {0, 1, 3, 64}) {
      ExpectExactlyOnce(257, Threads(threads, grain));
    }
  }
}

TEST(ParallelForTest, NestedCallsRunInline) {
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 100;
  std::vector<uint64_t> sums(kOuter, 0);
  ParallelFor(
      kOuter,
      [&](size_t o) {
        // The nested region must execute serially on this worker without
        // deadlocking or touching other outer iterations' slots.
        ParallelFor(
            kInner, [&](size_t i) { sums[o] += i + 1; }, Threads(8));
      },
      Threads(8, /*grain=*/1));
  for (size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(sums[o], kInner * (kInner + 1) / 2);
  }
}

TEST(ParallelForTest, ReuseAcrossThousandCalls) {
  // The pool is persistent: 1000 successive regions reuse the same
  // workers. Mix shapes so ranges/tickets are re-initialized every time.
  std::atomic<uint64_t> total{0};
  uint64_t expected = 0;
  for (size_t call = 0; call < 1000; ++call) {
    size_t n = 1 + (call % 37);
    expected += n;
    ParallelFor(n, [&](size_t) { total.fetch_add(1); },
                Threads(1 + call % 5));
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ParallelForTest, ConcurrentExternalSubmitters) {
  // Regions submitted from distinct external threads serialize on the
  // pool but must all complete correctly.
  constexpr size_t kSubmitters = 4;
  constexpr size_t kN = 500;
  std::vector<std::atomic<uint64_t>> counts(kSubmitters);
  for (auto& c : counts) c.store(0);
  std::vector<std::thread> threads;
  for (size_t s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&, s] {
      for (int rep = 0; rep < 20; ++rep) {
        ParallelFor(kN, [&](size_t) { counts[s].fetch_add(1); },
                    Threads(4));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(counts[s].load(), 20u * kN);
  }
}

TEST(ParallelForTest, ContentionStressSkewedCost) {
  // Skewed per-item cost: a few indices are ~1000x more expensive, so
  // naive static partitioning would leave most workers idle; stealing
  // must still execute every index exactly once.
  constexpr size_t kN = 20000;
  std::vector<std::atomic<uint32_t>> hits(kN);
  for (auto& h : hits) h.store(0);
  std::atomic<uint64_t> sink{0};
  ParallelFor(
      kN,
      [&](size_t i) {
        uint64_t spin = (i % 1024 == 0) ? 20000 : 20;
        uint64_t acc = i;
        for (uint64_t s = 0; s < spin; ++s) acc = SplitMix64(acc);
        sink.fetch_add(acc & 1, std::memory_order_relaxed);
        hits[i].fetch_add(1);
      },
      Threads(8, /*grain=*/16));
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ParallelForEachChunkTest, ChunksTileTheRange) {
  constexpr size_t kN = 1003;
  constexpr size_t kGrain = 17;
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelForEachChunk(
      kN,
      [&](size_t b, size_t e) {
        std::lock_guard<std::mutex> lk(mu);
        chunks.push_back({b, e});
      },
      Threads(8, kGrain));
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), (kN + kGrain - 1) / kGrain);
  size_t expect_begin = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_GT(e, b);
    EXPECT_LE(e - b, kGrain);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, kN);
}

// ---------------------------------------------------------------------------
// ParallelReduce golden tests: the chunk partition depends only on n (and
// an explicit grain), so floating-point sums must be bit-identical across
// thread counts.
// ---------------------------------------------------------------------------

double NoisyValue(size_t i) {
  // Values spanning many magnitudes so float addition is order-sensitive:
  // any change in merge order would change the bits of the sum.
  uint64_t h = SplitMix64(i + 1);
  double mant = static_cast<double>(h % 1000003) / 1000003.0;
  int exp = static_cast<int>(h >> 60) - 8;
  return std::ldexp(mant, exp);
}

double ReduceSum(size_t n, const Options& opt) {
  return ParallelReduce(
      n, 0.0, [](size_t i, double& acc) { acc += NoisyValue(i); },
      [](double a, double b) { return a + b; }, opt);
}

TEST(ParallelReduceTest, SumBitIdenticalAcrossThreadCounts) {
  for (size_t n : {0ul, 1ul, 63ul, 64ul, 65ul, 10000ul}) {
    double reference = ReduceSum(n, Threads(1));
    for (size_t threads : {2, 3, 8}) {
      double got = ReduceSum(n, Threads(threads));
      EXPECT_EQ(got, reference) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelReduceTest, ExplicitGrainStillDeterministic) {
  constexpr size_t kN = 5000;
  double reference = ReduceSum(kN, Threads(1, /*grain=*/13));
  for (size_t threads : {2, 8}) {
    EXPECT_EQ(ReduceSum(kN, Threads(threads, /*grain=*/13)), reference);
  }
}

TEST(ParallelReduceTest, MatchesSerialChunkedReference) {
  constexpr size_t kN = 4096;
  const size_t grain = ReduceGrain(kN);
  // The documented merge order: fold each chunk serially, then fold the
  // chunk partials in ascending chunk order.
  double expected = 0.0;
  for (size_t b = 0; b < kN; b += grain) {
    double partial = 0.0;
    for (size_t i = b; i < std::min(kN, b + grain); ++i) {
      partial += NoisyValue(i);
    }
    expected += partial;
  }
  EXPECT_EQ(ReduceSum(kN, Threads(8)), expected);
}

TEST(ParallelReduceTest, NonCommutativeMergeKeepsIndexOrder) {
  // Concatenation makes merge order visible directly.
  constexpr size_t kN = 300;
  auto run = [&](size_t threads) {
    return ParallelReduce(
        kN, std::string(),
        [](size_t i, std::string& acc) {
          acc += static_cast<char>('a' + (SplitMix64(i) % 26));
        },
        [](std::string a, std::string b) { return a + b; },
        Threads(threads, /*grain=*/7));
  };
  std::string reference = run(1);
  ASSERT_EQ(reference.size(), kN);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(8), reference);
}

// ---------------------------------------------------------------------------
// Stats and shim.
// ---------------------------------------------------------------------------

TEST(ParallelStatsTest, CountersAdvance) {
  ResetStats();
  ParallelFor(1000, [](size_t) {}, Threads(4, /*grain=*/10));
  StatsSnapshot s = SnapshotStats();
  EXPECT_EQ(s.invocations, 1u);
  EXPECT_EQ(s.items, 1000u);
  EXPECT_EQ(s.chunks, 100u);
  EXPECT_LE(s.participants, s.slots_offered);
  EXPECT_GE(s.utilization(), 0.0);
  EXPECT_LE(s.utilization(), 1.0);
  std::string text = FormatStats();
  EXPECT_NE(text.find("invocations=1"), std::string::npos);
  EXPECT_NE(text.find("items=1000"), std::string::npos);
}

TEST(ParallelStatsTest, SerialFallbackCounted) {
  ResetStats();
  ParallelFor(50, [](size_t) {}, Threads(1));
  StatsSnapshot s = SnapshotStats();
  EXPECT_EQ(s.serial_invocations, 1u);
  EXPECT_EQ(s.items, 50u);
}

TEST(LegacyShimTest, ForwardsToPool) {
  std::vector<std::atomic<uint32_t>> hits(101);
  for (auto& h : hits) h.store(0);
  util::ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); }, 8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1u);
  EXPECT_GE(util::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace autotest::util::parallel
