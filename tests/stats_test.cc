#include <gtest/gtest.h>

#include <cmath>

#include "stats/statistics.h"

namespace autotest::stats {
namespace {

TEST(ContingencyTest, Rates) {
  ContingencyTable t;
  t.covered_triggered = 10;
  t.covered_not_triggered = 990;
  t.uncovered_triggered = 160000;
  t.uncovered_not_triggered = 40000;
  EXPECT_DOUBLE_EQ(t.TriggerRateCovered(), 0.01);
  EXPECT_DOUBLE_EQ(t.TriggerRateUncovered(), 0.8);
  EXPECT_EQ(t.covered(), 1000);
  EXPECT_EQ(t.total(), 201000);
}

TEST(CohensHTest, PaperExample5) {
  // The paper's Example 5: rho = 0.01, rho-bar = 0.8 gives h ~= 2.01.
  double h = CohensH(0.8, 0.01);
  EXPECT_NEAR(h, 2.01, 0.02);
}

TEST(CohensHTest, ZeroForEqualProportions) {
  EXPECT_DOUBLE_EQ(CohensH(0.3, 0.3), 0.0);
}

TEST(CohensHTest, Antisymmetric) {
  EXPECT_DOUBLE_EQ(CohensH(0.7, 0.2), -CohensH(0.2, 0.7));
}

TEST(CohensHTest, MaxAtExtremes) {
  // h(1, 0) = 2 * (pi/2 - 0) = pi.
  EXPECT_NEAR(CohensH(1.0, 0.0), M_PI, 1e-12);
}

TEST(CohensHTest, TableOverload) {
  ContingencyTable t;
  t.covered_triggered = 10;
  t.covered_not_triggered = 990;
  t.uncovered_triggered = 160000;
  t.uncovered_not_triggered = 40000;
  EXPECT_NEAR(CohensH(t), 2.01, 0.02);
}

TEST(ChiSquaredTest, IndependentTableIsInsignificant) {
  // Perfectly proportional table: statistic 0, p-value 1.
  ContingencyTable t;
  t.covered_triggered = 50;
  t.covered_not_triggered = 50;
  t.uncovered_triggered = 500;
  t.uncovered_not_triggered = 500;
  EXPECT_NEAR(ChiSquaredStatistic(t), 0.0, 1e-9);
  EXPECT_NEAR(ChiSquaredTestPValue(t), 1.0, 1e-9);
}

TEST(ChiSquaredTest, StrongAssociationIsSignificant) {
  ContingencyTable t;
  t.covered_triggered = 5;
  t.covered_not_triggered = 995;
  t.uncovered_triggered = 8000;
  t.uncovered_not_triggered = 2000;
  EXPECT_GT(ChiSquaredStatistic(t), 100.0);
  EXPECT_LT(ChiSquaredTestPValue(t), 0.001);
}

TEST(ChiSquaredTest, KnownPValues) {
  // Chi-squared(1): critical value 3.841 corresponds to p = 0.05.
  EXPECT_NEAR(ChiSquaredPValue1Dof(3.841), 0.05, 0.001);
  // Critical value 6.635 corresponds to p = 0.01.
  EXPECT_NEAR(ChiSquaredPValue1Dof(6.635), 0.01, 0.001);
  EXPECT_DOUBLE_EQ(ChiSquaredPValue1Dof(0.0), 1.0);
}

TEST(WilsonTest, BasicProperties) {
  // Lower bound is below the raw proportion and within [0, 1].
  double lb = WilsonLowerBound(90, 100, 1.65);
  EXPECT_LT(lb, 0.9);
  EXPECT_GT(lb, 0.8);
  EXPECT_DOUBLE_EQ(WilsonLowerBound(0, 0, 1.65), 0.0);
  EXPECT_GE(WilsonLowerBound(0, 10, 1.65), 0.0);
  EXPECT_LE(WilsonLowerBound(10, 10, 1.65), 1.0);
}

TEST(WilsonTest, MoreTrialsTightenBound) {
  double small = WilsonLowerBound(9, 10, 1.65);
  double large = WilsonLowerBound(900, 1000, 1.65);
  EXPECT_LT(small, large);  // same proportion, more evidence -> higher LB
}

TEST(WilsonTest, PerfectRecordStillBelowOne) {
  // Even with all successes, a finite sample can't certify certainty.
  EXPECT_LT(WilsonLowerBound(50, 50, 1.65), 1.0);
  EXPECT_GT(WilsonLowerBound(50, 50, 1.65), 0.9);
}

TEST(SdcConfidenceTest, MatchesWilsonOnNonTriggerRate) {
  ContingencyTable t;
  t.covered_triggered = 10;
  t.covered_not_triggered = 990;
  double c = SdcConfidence(t);
  EXPECT_DOUBLE_EQ(c, WilsonLowerBound(990, 1000, 1.65));
  EXPECT_GT(c, 0.97);
  EXPECT_LT(c, 0.99);
}

TEST(SdcConfidenceTest, UpperBoundMonotoneInCoverage) {
  double ub10 = SdcConfidenceUpperBound(10);
  double ub100 = SdcConfidenceUpperBound(100);
  EXPECT_LT(ub10, ub100);
  EXPECT_DOUBLE_EQ(SdcConfidenceUpperBound(0), 0.0);
}

TEST(SdcConfidenceTest, MinCoverageMatchesAppendixExample) {
  // Appendix B.1: with c_thres = 0.9 and z = 1.65, at least ~25 covered
  // columns are needed (the paper's text says 34 with its z; with z = 1.65
  // the bound is z^2 * 0.9 / 0.1 = 24.5 -> 25). Verify self-consistency
  // instead of the paper's constant.
  int64_t n = MinCoverageForConfidence(0.9);
  EXPECT_GE(SdcConfidenceUpperBound(n), 0.9);
  EXPECT_LT(SdcConfidenceUpperBound(n - 1), 0.9);
}

TEST(MomentsTest, MeanAndStddev) {
  Moments m = ComputeMoments({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(m.mean, 5.0);
  EXPECT_DOUBLE_EQ(m.stddev, 2.0);
}

TEST(ZScoreTest, StandardizesSample) {
  auto z = ZScores({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(z[0], -1.5);
  EXPECT_DOUBLE_EQ(z[7], 2.0);
}

TEST(ZScoreTest, ConstantSampleAllZero) {
  auto z = ZScores({3, 3, 3});
  for (double x : z) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(QuantileTest, Interpolation) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace autotest::stats
