// R3 fixture use site: one registered failpoint used correctly, one
// unregistered literal at an injection-site call.
#include "failpoint.h"

namespace fixture {

bool FailpointFires(std::string_view name);

bool Good() { return FailpointFires(kFpGood); }

bool Bad() {
  return FailpointFires("fixture.unknown");  // line 12: the violation
}

// A registered serve.*-style literal at a call site is clean: R3 resolves
// dotted names against kAllFailpoints, it does not pattern-match prefixes.
bool ServeRead() { return FailpointFires("serve.read"); }

}  // namespace fixture
