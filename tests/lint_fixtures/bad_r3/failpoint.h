// R3 fixture registry: mirrors the real src/util/failpoint.h shape. The
// kAllFailpoints marker is what makes at_lint treat this as the registry.
#ifndef FIXTURE_FAILPOINT_H_
#define FIXTURE_FAILPOINT_H_

#include <string_view>

namespace fixture {

inline constexpr std::string_view kFpGood = "good.point";
inline constexpr std::string_view kFpDead = "dead.point";  // line 11: dead
// Dotted serving-tier-shaped name: registered and used, so R3 must treat
// it as clean (regression guard for serve.* failpoints).
inline constexpr std::string_view kFpServeRead = "serve.read";

inline constexpr std::string_view kAllFailpoints[] = {kFpGood, kFpDead,
                                                      kFpServeRead};

}  // namespace fixture

#endif  // FIXTURE_FAILPOINT_H_
