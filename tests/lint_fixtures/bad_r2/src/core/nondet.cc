// R2 fixture: raw nondeterminism inside a deterministic subsystem (the
// fixture path contains src/core, which puts it in scope).
#include <cstdlib>

namespace fixture {

int Roll() {
  return std::rand();  // line 8: the violation
}

}  // namespace fixture
