// R9 fixture, file 1 of 2: the annotation says a_ is acquired before b_.
// pair_use.cc nests the scopes in the opposite order, closing the cycle
// a_ -> b_ -> a_ across the two files.
namespace fixture {

class Pair {
 public:
  void Reversed();

 private:
  Mutex a_ AT_ACQUIRED_BEFORE(b_);
  Mutex b_;
};

}  // namespace fixture
