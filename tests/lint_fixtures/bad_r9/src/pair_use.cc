// R9 fixture, file 2 of 2: acquires b_ with a_ nested inside — the
// reverse of pair.h's AT_ACQUIRED_BEFORE(b_) on a_.
namespace fixture {

void Pair::Reversed() {
  MutexLock outer(&b_);
  MutexLock inner(&a_);
  (void)inner;
}

}  // namespace fixture
