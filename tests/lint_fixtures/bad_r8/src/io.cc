// R8 fixture: blocking file I/O inside a lock scope. The annotated
// member write is fine (near-miss for R7b); the fopen under the lock is
// the violation.
namespace fixture {

class Logger {
 public:
  void Append(const char* path);

 private:
  Mutex mu_;
  int lines_ AT_GUARDED_BY(mu_) = 0;
};

void Logger::Append(const char* path) {
  MutexLock lock(&mu_);
  void* f = fopen(path, "a");
  (void)f;
  lines_ += 1;
}

}  // namespace fixture
