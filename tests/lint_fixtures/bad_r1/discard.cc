// R1 fixture: a Try* call whose Result is dropped on the floor.
#include <string>

namespace fixture {

struct Result {
  bool ok() const { return true; }
};

Result TryParseThing(const std::string& text);

void Discards(const std::string& text) {
  TryParseThing(text);  // line 13: the violation
}

}  // namespace fixture
