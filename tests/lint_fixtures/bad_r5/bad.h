// R5 fixture: Status- and Result-returning declarations missing
// [[nodiscard]].
#ifndef FIXTURE_BAD_H_
#define FIXTURE_BAD_H_

#include <string>

namespace fixture {

class [[nodiscard]] Status {};
template <typename T>
class Result {};

Status TrySave(const std::string& path);  // line 14: the violation

Result<int> TryCount(const std::string& path);  // line 16: the violation

}  // namespace fixture

#endif  // FIXTURE_BAD_H_
