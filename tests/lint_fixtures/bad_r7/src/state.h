// R7 fixture: a raw std::mutex member (R7a — the tree uses util::Mutex so
// Clang thread-safety analysis sees the capability) and a member written
// under a lock scope without AT_GUARDED_BY (R7b).
#include <mutex>

namespace fixture {

class Counter {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += 1;
  }

 private:
  std::mutex mu_;
  long total_ = 0;
};

}  // namespace fixture
