// R4 fixture: an AT_CHECK on an untrusted-input file (the csv.cc basename
// puts it in scope) — corrupt bytes must return a Status, not abort.
#define AT_CHECK(cond) ((void)(cond))

namespace fixture {

void Parse(const char* bytes) {
  AT_CHECK(bytes != nullptr);  // line 8: the violation
}

}  // namespace fixture
