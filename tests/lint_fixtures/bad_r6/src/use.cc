// R6 fixture use site: registered metrics used correctly, plus one
// unregistered metric-shaped literal minted at a registration call.
#include "metrics.h"

namespace fixture {

struct Registry {
  int& GetCounter(std::string_view name);
};

int Use(Registry& reg) {
  int total = reg.GetCounter(kMGoodCount);
  total += reg.GetCounter(kMUnlisted);
  total += reg.GetCounter("fixture.unknown_metric");  // line 14: violation
  // Registered serve.* literal: clean — R6 resolves it via kAllMetrics.
  total += reg.GetCounter("serve.requests_shed");
  // Governance metrics, one via constant and one via literal: both clean.
  total += reg.GetCounter(kMServeBreakerOpen);
  total += reg.GetCounter("serve.tenant_rejections");
  return total;
}

}  // namespace fixture
