// R6 fixture catalogue: mirrors the real src/util/metrics.h shape. The
// kAllMetrics marker is what makes at_lint treat this as the catalogue.
#ifndef FIXTURE_METRICS_H_
#define FIXTURE_METRICS_H_

#include <string_view>

namespace fixture {

inline constexpr std::string_view kMGoodCount = "fixture.good_count";
inline constexpr std::string_view kMDeadCount = "fixture.dead_count";
// Wrapped registration, line 13: absent from the kAllMetrics array below.
inline constexpr std::string_view kMUnlisted =
    "fixture.unlisted";
// Serving-tier-shaped name: registered and used, so R6 must treat it as
// clean (regression guard for the serve.* metric family).
inline constexpr std::string_view kMServeShed = "serve.requests_shed";
// Governance-tier names (DESIGN.md §4j): registered and used, so R6 must
// treat them as clean too.
inline constexpr std::string_view kMServeBreakerOpen =
    "serve.breaker_open_total";
inline constexpr std::string_view kMServeTenantRej =
    "serve.tenant_rejections";

inline constexpr std::string_view kAllMetrics[] = {
    kMGoodCount, kMDeadCount, kMServeShed, kMServeBreakerOpen,
    kMServeTenantRej};

}  // namespace fixture

#endif  // FIXTURE_METRICS_H_
