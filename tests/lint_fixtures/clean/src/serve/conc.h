// Clean fixture: concurrency near-misses for R7-R9 that must NOT fire.
namespace fixture {

class Worker {
 public:
  void Update();
  void Flush(const char* path);

 private:
  // R7a near-miss: the util wrapper types, not raw std:: primitives.
  Mutex mu_;
  CondVar cv_;
  // R9 near-miss: an acyclic diamond a_ -> {b_, c_} -> d_.
  Mutex a_ AT_ACQUIRED_BEFORE(b_, c_);
  Mutex b_ AT_ACQUIRED_BEFORE(d_);
  Mutex c_ AT_ACQUIRED_BEFORE(d_);
  Mutex d_;
  // R7b near-misses: annotated member, and a self-synchronizing atomic.
  int generation_ AT_GUARDED_BY(mu_) = 0;
  std::atomic<int> hits_{0};
};

void Worker::Update() {
  MutexLock lock(&mu_);
  generation_ += 1;
  hits_ += 1;
}

// R8 near-miss on the AT_REQUIRES path: lock held, nothing blocks.
void Worker::RepaintLocked() AT_REQUIRES(mu_) {
  generation_ += 1;
}

void Worker::Flush(const char* path) {
  {
    MutexLock lock(&mu_);
    generation_ += 1;
  }
  // R8 near-miss: the blocking call sits after the scope closed.
  void* f = fopen(path, "a");
  (void)f;
}

}  // namespace fixture
