#ifndef FIXTURE_CLEAN_H_
#define FIXTURE_CLEAN_H_

#include <string>

namespace fixture {

class [[nodiscard]] Status {};

// R5 near-miss: annotated declaration.
[[nodiscard]] Status TryAnnotated(const std::string& text);

// R5 near-miss: reference return carries no owned diagnostic.
Status& MutableStatus();

// R5 near-miss: StatusCode is a different type despite the prefix.
enum class StatusCode { kOk };
StatusCode CodeOf(const Status& s);

}  // namespace fixture

#endif  // FIXTURE_CLEAN_H_
