// Clean fixture: every rule has a near-miss here that must NOT fire.
#include <string>

namespace fixture {

struct Result {
  bool ok() const { return true; }
};

Result TryParseThing(const std::string& text);

// R1 near-miss: the Try* result is consumed.
bool Consume(const std::string& text) {
  return TryParseThing(text).ok();
}

struct Clock {
  static int now();
};

// R2 near-miss: a wall-clock read with the sanctioned suppression.
int PhaseTimer() {
  return Clock::now();  // at_lint: disable(R2) wall-clock phase timing
}

// R2 near-miss: "rand(" inside a comment and a string must not match.
// A call like rand() here is commentary, not code.
const char* kDoc = "rand() and srand() are banned in deterministic code";

}  // namespace fixture
