// R1 line-reporting fixture: the wrapped discard below must be reported
// at its first physical line (the line naming the call), and the ternary
// whose continuation line ends in a Try* call must not fire at all — the
// value is consumed by the assignment.
namespace fixture {

struct Obj {
  int TryConfigure(int level);
};

void Use(Obj& obj, int* out, bool c) {
  *out = c ? 1 :
         obj.TryConfigure(2);
  obj.TryConfigure(
      3);
}

}  // namespace fixture
