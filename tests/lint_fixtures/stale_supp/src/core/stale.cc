// Suppression-audit fixture: the first tag excuses a real R2 hit and is
// used; the second excuses nothing and must be reported as stale.
namespace fixture {

struct Clock {
  static int now();
};

int UsedTag() {
  return Clock::now();  // at_lint: disable(R2) wall-clock telemetry
}

int StaleTag() {
  return 42;  // at_lint: disable(R2) nothing nondeterministic here
}

}  // namespace fixture
