// End-to-end integration: train Auto-Test on a corpus, evaluate on a
// labeled benchmark through the harness, and assert the headline shape of
// the paper's Table 4 — the calibrated SDC detector beats representative
// uncalibrated baselines.

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/auto_test.h"
#include "datagen/bench_gen.h"
#include "datagen/corpus_gen.h"
#include "eval/harness.h"

namespace autotest {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto corpus =
        datagen::GenerateCorpus(datagen::RelationalTablesProfile(1200, 77));
    core::AutoTestConfig config;
    config.eval_options.embedding_centroids_per_model = 80;
    config.train_options.synthetic_count = 500;
    at_ = new core::AutoTest(core::AutoTest::Train(corpus, config));
    st_ = new datagen::LabeledBenchmark(
        datagen::GenerateBenchmark(datagen::StBenchProfile(400, 5151)));
    rt_ = new datagen::LabeledBenchmark(
        datagen::GenerateBenchmark(datagen::RtBenchProfile(400, 6161)));
  }
  static void TearDownTestSuite() {
    delete rt_;
    rt_ = nullptr;
    delete st_;
    st_ = nullptr;
    delete at_;
    at_ = nullptr;
  }
  static core::AutoTest* at_;
  static datagen::LabeledBenchmark* st_;
  static datagen::LabeledBenchmark* rt_;
};

core::AutoTest* IntegrationTest::at_ = nullptr;
datagen::LabeledBenchmark* IntegrationTest::st_ = nullptr;
datagen::LabeledBenchmark* IntegrationTest::rt_ = nullptr;

TEST_F(IntegrationTest, FineSelectBeatsUncalibratedBaselines) {
  auto pred = at_->MakePredictor(core::Variant::kFineSelect);
  baselines::SdcDetector fine("fine-select", &pred);
  auto fine_rt = RunDetector(fine, *rt_, 1);
  EXPECT_GT(fine_rt.pr_auc, 0.25);
  EXPECT_GT(fine_rt.f1_at_p08, 0.3);

  baselines::KataraSim katara;
  auto katara_rt = RunDetector(katara, *rt_, 1);
  EXPECT_GT(fine_rt.pr_auc, katara_rt.pr_auc);

  auto glove = embed::MakeGloveSim();
  baselines::EmbeddingZScoreDetector glove_det("glove", glove.get());
  auto glove_rt = RunDetector(glove_det, *rt_, 1);
  EXPECT_GT(fine_rt.pr_auc, glove_rt.pr_auc);

  baselines::LlmSim llm(baselines::LlmSim::PaperVariants().front());
  auto llm_rt = RunDetector(llm, *rt_, 1);
  // The LLM-sim has flat confidences: it cannot reach the high-precision
  // regime (the paper's GPT rows all have F1@P=0.8 = 0).
  EXPECT_DOUBLE_EQ(llm_rt.f1_at_p08, 0.0);
  EXPECT_GT(fine_rt.f1_at_p08, llm_rt.f1_at_p08);
}

TEST_F(IntegrationTest, GeneralizesAcrossBenchmarkStyles) {
  // Trained on relational-style columns, still detects on spreadsheet-style
  // columns (the paper's ST-vs-RT generalizability claim).
  auto pred = at_->MakePredictor(core::Variant::kFineSelect);
  baselines::SdcDetector fine("fine-select", &pred);
  auto st = RunDetector(fine, *st_, 1);
  EXPECT_GT(st.pr_auc, 0.1);
}

TEST_F(IntegrationTest, SyntheticErrorInjectionRaisesRecallOpportunity) {
  auto pred = at_->MakePredictor(core::Variant::kFineSelect);
  baselines::SdcDetector fine("fine-select", &pred);
  auto real = RunDetector(fine, *rt_, 1);
  auto noisy =
      RunDetector(fine, datagen::WithSyntheticErrors(*rt_, 0.2, 99), 1);
  // More (easy, cross-domain) errors -> equal or better summary metrics,
  // like the left-to-right trend in the paper's Table 4 rows.
  EXPECT_GE(noisy.pr_auc + 0.05, real.pr_auc);
}

TEST_F(IntegrationTest, HighConfidenceDetectionsAreMostlyCorrect) {
  // The confidence calibration claim: among detections with rule
  // confidence >= 0.95, the large majority are true errors.
  auto pred = at_->MakePredictor(core::Variant::kAllConstraints);
  size_t high_conf = 0;
  size_t high_conf_correct = 0;
  for (const auto& lc : rt_->columns) {
    for (const auto& d : pred.Predict(lc.column)) {
      if (d.confidence < 0.95) continue;
      ++high_conf;
      if (lc.IsErrorRow(d.row)) ++high_conf_correct;
    }
  }
  if (high_conf >= 10) {
    EXPECT_GT(static_cast<double>(high_conf_correct) /
                  static_cast<double>(high_conf),
              0.6);
  }
}

}  // namespace
}  // namespace autotest
