#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <set>

#include "util/failpoint.h"
#include "util/hashing.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

// Compile-fail harness for the [[nodiscard]] contract. The ctest entry
// `nodiscard_compile_fail` re-compiles this file with -fsyntax-only and
// AT_NODISCARD_COMPILE_FAIL defined, and is registered WILL_FAIL: the
// build MUST reject a discarded TryLoadRulesFromFile(...) result under
// -Werror=unused-result. The twin entry `nodiscard_compile_fail_control`
// compiles without the define to prove the harness itself is well-formed.
#ifdef AT_NODISCARD_COMPILE_FAIL
#include "core/serialization.h"
namespace autotest::core {
void DiscardsNodiscardResult(const typedet::EvalFunctionSet& evals) {
  // at_lint: disable(R1) deliberate discard; this must fail to compile
  TryLoadRulesFromFile("rules.sdc", evals);
}
}  // namespace autotest::core
#endif  // AT_NODISCARD_COMPILE_FAIL

namespace autotest::util {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t x = rng.UniformInt(-3, 5);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 5);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, PickCoversAllElements) {
  Rng rng(3);
  std::vector<int> items = {1, 2, 3};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(3);
  std::vector<int> items = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, PickWeightedRespectsZeroWeight) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.PickWeighted(weights), 1u);
  }
}

TEST(RngTest, ForkIndependence) {
  Rng base(9);
  Rng a = base.Fork(1);
  Rng b = base.Fork(2);
  // Different tags should diverge quickly.
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Predicates) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_TRUE(IsAllAlpha("abcXYZ"));
  EXPECT_FALSE(IsAllAlpha("ab1"));
  EXPECT_FALSE(IsAllAlpha(""));
}

TEST(StringUtilTest, Ratios) {
  EXPECT_DOUBLE_EQ(DigitRatio("a1b2"), 0.5);
  EXPECT_DOUBLE_EQ(AlphaRatio("a1b2"), 0.5);
  EXPECT_DOUBLE_EQ(DigitRatio(""), 0.0);
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("february", "febuary"), 1u);
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("https://x", "https://"));
  EXPECT_FALSE(StartsWith("http://x", "https://"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(HashingTest, FnvStableAndDistinct) {
  EXPECT_EQ(Fnv64("abc"), Fnv64("abc"));
  EXPECT_NE(Fnv64("abc"), Fnv64("abd"));
  EXPECT_NE(Fnv64Seeded("abc", 1), Fnv64Seeded("abc", 2));
}

TEST(HashingTest, HashToUnitDoubleRange) {
  for (uint64_t i = 0; i < 1000; ++i) {
    double x = HashToUnitDouble(SplitMix64(i));
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = DataLossError("truncated at byte 17");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(st.message(), "truncated at byte 17");
  EXPECT_EQ(st.ToString(), "DATA_LOSS: truncated at byte 17");
}

TEST(StatusTest, ContextChainRendersInnermostFirst) {
  Status st = IoError("read failed")
                  .WithContext("loading rules from rules.sdc")
                  .WithContext("serving request");
  EXPECT_EQ(st.ToString(),
            "IO_ERROR: read failed\n  while loading rules from rules.sdc"
            "\n  while serving request");
  ASSERT_EQ(st.context().size(), 2u);
  EXPECT_EQ(st.context()[0], "loading rules from rules.sdc");
}

TEST(StatusTest, ContextOnOkIsNoOp) {
  Status st = Status::Ok().WithContext("ignored");
  EXPECT_TRUE(st.ok());
  EXPECT_TRUE(st.context().empty());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
}

TEST(StatusTest, EveryCodeHasADistinctNameAndRoundTrips) {
  // Exhaustive over the enum: a new StatusCode without a name (or with a
  // colliding one) breaks diagnostics and the recipe provenance format.
  const StatusCode all[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kDataLoss,
      StatusCode::kIoError,      StatusCode::kResourceExhausted,
      StatusCode::kFailedPrecondition, StatusCode::kInternal,
      StatusCode::kDeadlineExceeded,
  };
  std::set<std::string> names;
  for (StatusCode code : all) {
    std::string_view name = StatusCodeName(code);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "UNKNOWN") << static_cast<int>(code);
    names.insert(std::string(name));
    // Round-trip through the parser used by degraded-mode provenance.
    auto parsed = StatusCodeFromName(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_EQ(names.size(), std::size(all));
  EXPECT_FALSE(StatusCodeFromName("NO_SUCH_CODE").has_value());
  EXPECT_FALSE(StatusCodeFromName("").has_value());
  EXPECT_FALSE(StatusCodeFromName("io_error").has_value());  // case matters
}

TEST(StatusTest, DeepContextChainPreservesOrderAndFormatting) {
  // Depth >= 3: innermost frame first, each rendered on its own
  // "  while ..." line, in the exact order the frames were attached.
  Status st = IoError("read failed")
                  .WithContext("reading shard 3 (attempt 2)")
                  .WithContext("building training corpus")
                  .WithContext("training on tablib corpus")
                  .WithContext("serving train command");
  ASSERT_EQ(st.context().size(), 4u);
  EXPECT_EQ(st.context()[0], "reading shard 3 (attempt 2)");
  EXPECT_EQ(st.context()[1], "building training corpus");
  EXPECT_EQ(st.context()[2], "training on tablib corpus");
  EXPECT_EQ(st.context()[3], "serving train command");
  EXPECT_EQ(st.ToString(),
            "IO_ERROR: read failed"
            "\n  while reading shard 3 (attempt 2)"
            "\n  while building training corpus"
            "\n  while training on tablib corpus"
            "\n  while serving train command");
  // The chain survives copies intact (statuses cross thread boundaries in
  // shard reports).
  Status copy = st;
  EXPECT_EQ(copy.ToString(), st.ToString());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgumentError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ToOptionalShimShape) {
  EXPECT_EQ(Result<int>(5).ToOptional(), std::optional<int>(5));
  EXPECT_EQ(Result<int>(NotFoundError("gone")).ToOptional(), std::nullopt);
}

Result<int> NeedsPositive(int x) {
  if (x <= 0) return InvalidArgumentError("x must be positive");
  return x * 2;
}

Result<int> MacroChain(int x) {
  AT_ASSIGN_OR_RETURN(int doubled, NeedsPositive(x));
  AT_RETURN_IF_ERROR(Status::Ok());
  return doubled + 1;
}

TEST(ResultTest, MacrosPropagateAndUnwrap) {
  auto ok = MacroChain(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  auto err = MacroChain(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

// Programmer-error invariants stay aborts (DESIGN.md §4c): unwrapping an
// error Result is a bug in the caller, not a recoverable condition.
using StatusDeathTest = ::testing::Test;

TEST(StatusDeathTest, ValueOnErrorAborts) {
  Result<int> r = InternalError("boom");
  EXPECT_DEATH({ (void)r.value(); }, "Result::value\\(\\) on error status");
}

TEST(StatusDeathTest, ResultFromOkStatusAborts) {
  EXPECT_DEATH({ Result<int> r(Status::Ok()); (void)r; },
               "Result constructed from OK status");
}

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().Reset(); }
};

TEST_F(FailpointTest, DisarmedByDefault) {
  EXPECT_FALSE(FailpointFires(kFpCsvOpen));
  EXPECT_FALSE(FailpointFires(kFpRulesParse));
}

TEST_F(FailpointTest, ArmOnAlwaysFires) {
  auto& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("rules.parse=on").ok());
  EXPECT_TRUE(FailpointFires(kFpRulesParse));
  EXPECT_TRUE(FailpointFires(kFpRulesParse));
  EXPECT_FALSE(FailpointFires(kFpCsvOpen));  // others stay disarmed
  EXPECT_EQ(reg.fires(kFpRulesParse), 2u);
  EXPECT_EQ(reg.evaluations(kFpRulesParse), 2u);
}

TEST_F(FailpointTest, OffDisarms) {
  auto& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("rules.parse=on").ok());
  ASSERT_TRUE(reg.Configure("rules.parse=off").ok());
  EXPECT_FALSE(FailpointFires(kFpRulesParse));
}

TEST_F(FailpointTest, AllArmsEveryPoint) {
  auto& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("all=on").ok());
  for (std::string_view fp : kAllFailpoints) {
    EXPECT_TRUE(FailpointFires(fp)) << fp;
  }
}

TEST_F(FailpointTest, ProbabilisticFiringIsDeterministicPerSeed) {
  auto& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("csv.parse:p=0.5,seed=42").ok());
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(FailpointFires(kFpCsvParse));
  uint64_t fires_first = reg.fires(kFpCsvParse);
  // Same seed, fresh counters: identical decision stream.
  reg.Reset();
  ASSERT_TRUE(reg.Configure("csv.parse:p=0.5,seed=42").ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(FailpointFires(kFpCsvParse), first[i]) << "i=" << i;
  }
  EXPECT_EQ(reg.fires(kFpCsvParse), fires_first);
  // p=0.5 over 64 draws should both fire and not fire at least once.
  EXPECT_GT(fires_first, 0u);
  EXPECT_LT(fires_first, 64u);
}

TEST_F(FailpointTest, DifferentSeedsDiverge) {
  auto& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("csv.parse:p=0.5,seed=1").ok());
  std::vector<bool> a;
  for (int i = 0; i < 64; ++i) a.push_back(FailpointFires(kFpCsvParse));
  reg.Reset();
  ASSERT_TRUE(reg.Configure("csv.parse:p=0.5,seed=2").ok());
  std::vector<bool> b;
  for (int i = 0; i < 64; ++i) b.push_back(FailpointFires(kFpCsvParse));
  EXPECT_NE(a, b);
}

TEST_F(FailpointTest, BadSpecsRejected) {
  auto& reg = FailpointRegistry::Global();
  Status unknown = reg.Configure("no.such.point=on");
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.message().find("unknown failpoint"), std::string::npos);
  EXPECT_EQ(reg.Configure("csv.parse:p=1.5").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("csv.parse:p=abc").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("csv.parse=maybe").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("seed=notanumber").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("garbage").code(), StatusCode::kInvalidArgument);
  // A rejected spec must not leave anything half-armed... entries before
  // the bad one may have applied; a disarmed registry stays usable.
  reg.Reset();
  EXPECT_FALSE(FailpointFires(kFpCsvParse));
}

TEST_F(FailpointTest, ZeroProbabilityNeverFires) {
  auto& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("csv.parse:p=0").ok());
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(FailpointFires(kFpCsvParse));
}

TEST(ThreadPoolTest, RunsAllIndices) {
  std::vector<int> hits(1000, 0);
  ParallelFor(hits.size(), [&](size_t i) { hits[i] = 1; }, 8);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EmptyAndSingle) {
  std::atomic<int> count{0};
  ParallelFor(0, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  ParallelFor(1, [&](size_t) { count++; }, 4);
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace autotest::util
