#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/hashing.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace autotest::util {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t x = rng.UniformInt(-3, 5);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 5);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, PickCoversAllElements) {
  Rng rng(3);
  std::vector<int> items = {1, 2, 3};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(3);
  std::vector<int> items = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, PickWeightedRespectsZeroWeight) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.PickWeighted(weights), 1u);
  }
}

TEST(RngTest, ForkIndependence) {
  Rng base(9);
  Rng a = base.Fork(1);
  Rng b = base.Fork(2);
  // Different tags should diverge quickly.
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Predicates) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_TRUE(IsAllAlpha("abcXYZ"));
  EXPECT_FALSE(IsAllAlpha("ab1"));
  EXPECT_FALSE(IsAllAlpha(""));
}

TEST(StringUtilTest, Ratios) {
  EXPECT_DOUBLE_EQ(DigitRatio("a1b2"), 0.5);
  EXPECT_DOUBLE_EQ(AlphaRatio("a1b2"), 0.5);
  EXPECT_DOUBLE_EQ(DigitRatio(""), 0.0);
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("february", "febuary"), 1u);
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("https://x", "https://"));
  EXPECT_FALSE(StartsWith("http://x", "https://"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(HashingTest, FnvStableAndDistinct) {
  EXPECT_EQ(Fnv64("abc"), Fnv64("abc"));
  EXPECT_NE(Fnv64("abc"), Fnv64("abd"));
  EXPECT_NE(Fnv64Seeded("abc", 1), Fnv64Seeded("abc", 2));
}

TEST(HashingTest, HashToUnitDoubleRange) {
  for (uint64_t i = 0; i < 1000; ++i) {
    double x = HashToUnitDouble(SplitMix64(i));
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(ThreadPoolTest, RunsAllIndices) {
  std::vector<int> hits(1000, 0);
  ParallelFor(hits.size(), [&](size_t i) { hits[i] = 1; }, 8);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EmptyAndSingle) {
  std::atomic<int> count{0};
  ParallelFor(0, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  ParallelFor(1, [&](size_t) { count++; }, 4);
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace autotest::util
