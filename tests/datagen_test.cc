#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "datagen/bench_gen.h"
#include "datagen/cleaning_bench.h"
#include "datagen/column_gen.h"
#include "datagen/corpus_gen.h"
#include "datagen/error_injector.h"
#include "datagen/gazetteer.h"
#include "table/column.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace autotest::datagen {
namespace {

TEST(GazetteerTest, HasBothKinds) {
  const Gazetteer& g = Gazetteer::Instance();
  EXPECT_GE(g.DomainNames(DomainKind::kNaturalLanguage).size(), 20u);
  EXPECT_GE(g.DomainNames(DomainKind::kMachineGenerated).size(), 20u);
}

TEST(GazetteerTest, LookupByName) {
  const Gazetteer& g = Gazetteer::Instance();
  const Domain* country = g.Find("country");
  ASSERT_NE(country, nullptr);
  EXPECT_GE(country->head.size(), 80u);
  EXPECT_GE(country->tail.size(), 20u);
  EXPECT_EQ(g.Find("nonexistent_domain"), nullptr);
}

TEST(GazetteerTest, ContainsHeadAndTail) {
  const Gazetteer& g = Gazetteer::Instance();
  EXPECT_TRUE(g.Contains("country", "germany"));
  EXPECT_TRUE(g.Contains("country", "Germany"));        // case-insensitive
  EXPECT_TRUE(g.Contains("country", "liechtenstein"));  // tail member
  EXPECT_FALSE(g.Contains("country", "liechstein"));    // typo
  EXPECT_FALSE(g.Contains("country", "seattle"));
}

TEST(GazetteerTest, MembershipsOnlyForNlDomains) {
  const Gazetteer& g = Gazetteer::Instance();
  const auto* m = g.Lookup("germany");
  ASSERT_NE(m, nullptr);
  bool in_country = false;
  for (const auto& mem : *m) {
    if (g.domains()[mem.domain_index].name == "country") {
      in_country = true;
      EXPECT_EQ(mem.tier, Tier::kHead);
    }
  }
  EXPECT_TRUE(in_country);
  // Machine-generated ids are not "known" to the membership map.
  const Domain* movie = g.Find("movie_id");
  ASSERT_NE(movie, nullptr);
  EXPECT_EQ(g.Lookup(movie->head.front()), nullptr);
}

TEST(GazetteerTest, TailTierRecorded) {
  const Gazetteer& g = Gazetteer::Instance();
  const auto* m = g.Lookup("omayra");
  ASSERT_NE(m, nullptr);
  bool tail_name = false;
  for (const auto& mem : *m) {
    if (g.domains()[mem.domain_index].name == "first_name" &&
        mem.tier == Tier::kTail) {
      tail_name = true;
    }
  }
  EXPECT_TRUE(tail_name);
}

TEST(GazetteerTest, GeneratorsProduceFreshValidValues) {
  const Gazetteer& g = Gazetteer::Instance();
  util::Rng rng(5);
  for (const char* name : {"date_mdy", "url", "email", "ipv4", "uuid",
                           "credit_card", "movie_id", "gene"}) {
    const Domain* d = g.Find(name);
    ASSERT_NE(d, nullptr) << name;
    ASSERT_TRUE(d->has_generator()) << name;
    std::set<std::string> vals;
    for (int i = 0; i < 50; ++i) vals.insert(d->generator(rng));
    EXPECT_GE(vals.size(), 30u) << name;  // mostly distinct
  }
}

TEST(ColumnGenTest, NlColumnDrawsFromDomain) {
  const Gazetteer& g = Gazetteer::Instance();
  const Domain* d = g.Find("month");
  util::Rng rng(1);
  ColumnGenOptions opt;
  opt.min_values = 30;
  opt.max_values = 30;
  table::Column col = GenerateColumn(*d, opt, rng);
  EXPECT_EQ(col.values.size(), 30u);
  for (const auto& v : col.values) {
    EXPECT_TRUE(g.Contains("month", v)) << v;
  }
}

TEST(ColumnGenTest, TailFractionControlsRareValues) {
  const Gazetteer& g = Gazetteer::Instance();
  const Domain* d = g.Find("first_name");
  util::Rng rng(2);
  ColumnGenOptions opt;
  opt.min_values = 200;
  opt.max_values = 200;
  opt.tail_fraction = 0.0;
  table::Column col = GenerateColumn(*d, opt, rng);
  for (const auto& v : col.values) {
    bool in_tail = false;
    for (const auto& t : d->tail) {
      if (t == v) in_tail = true;
    }
    EXPECT_FALSE(in_tail) << v;
  }
}

TEST(ColumnGenTest, MachineColumnHighDistinct) {
  const Gazetteer& g = Gazetteer::Instance();
  util::Rng rng(3);
  ColumnGenOptions opt;
  opt.min_values = 100;
  opt.max_values = 100;
  table::Column col = GenerateColumn(*g.Find("uuid"), opt, rng);
  table::DistinctValues d = table::Distinct(col);
  EXPECT_GE(d.values.size(), 80u);
}

TEST(ErrorInjectorTest, TypoDiffersAndClose) {
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    std::string t = MakeTypo("february", rng);
    EXPECT_NE(t, "february");
    EXPECT_LE(util::EditDistance(t, "february"), 2u);
  }
}

TEST(ErrorInjectorTest, IncompatibleNotInOwnDomain) {
  const Gazetteer& g = Gazetteer::Instance();
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    std::string v = MakeIncompatible(g, "month", rng);
    EXPECT_FALSE(g.Contains("month", v)) << v;
  }
}

TEST(ErrorInjectorTest, InjectErrorRecordsGroundTruth) {
  const Gazetteer& g = Gazetteer::Instance();
  util::Rng rng(4);
  table::Column col;
  col.values = {"january", "february", "march", "april"};
  auto err = InjectError(&col, ErrorType::kPlaceholder, g, "month", rng);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(col.values[err->row], err->corrupted);
  EXPECT_NE(err->corrupted, err->original);
}

TEST(ErrorInjectorTest, EmptyColumnRejected) {
  const Gazetteer& g = Gazetteer::Instance();
  util::Rng rng(4);
  table::Column col;
  EXPECT_FALSE(
      InjectError(&col, ErrorType::kTypo, g, "month", rng).has_value());
}

TEST(CorpusGenTest, ProfilesShapeTheCorpus) {
  auto rel = GenerateCorpus(RelationalTablesProfile(200, 1));
  auto spr = GenerateCorpus(SpreadsheetTablesProfile(200, 2));
  ASSERT_EQ(rel.size(), 200u);
  ASSERT_EQ(spr.size(), 200u);
  double rel_len = 0;
  double spr_len = 0;
  for (const auto& c : rel) rel_len += static_cast<double>(c.values.size());
  for (const auto& c : spr) spr_len += static_cast<double>(c.values.size());
  // Relational columns are much longer on average (paper Table 3).
  EXPECT_GT(rel_len / 200.0, 2.0 * spr_len / 200.0);
}

TEST(CorpusGenTest, Deterministic) {
  auto a = GenerateCorpus(TablibProfile(50, 7));
  auto b = GenerateCorpus(TablibProfile(50, 7));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].values, b[i].values);
  }
}

TEST(BenchGenTest, DirtyRateApproximatelyRespected) {
  auto bench = GenerateBenchmark(StBenchProfile(1200, 101));
  EXPECT_EQ(bench.columns.size(), 1200u);
  size_t dirty = bench.DirtyColumns();
  // 3.9% of 1200 = ~47; allow generous slack for Bernoulli noise.
  EXPECT_GE(dirty, 25u);
  EXPECT_LE(dirty, 75u);
  EXPECT_GE(bench.TotalErrors(), dirty);
}

TEST(BenchGenTest, ErrorRowsPointAtCorruptedCells) {
  auto bench = GenerateBenchmark(RtBenchProfile(300, 9));
  const Gazetteer& g = Gazetteer::Instance();
  for (const auto& lc : bench.columns) {
    for (size_t row : lc.error_rows) {
      ASSERT_LT(row, lc.column.values.size());
      // The corrupted cell must not be a valid member of the column domain.
      EXPECT_FALSE(g.Contains(lc.domain, lc.column.values[row]))
          << lc.domain << " / " << lc.column.values[row];
    }
  }
}

TEST(BenchGenTest, NoNumericColumns) {
  auto bench = GenerateBenchmark(StBenchProfile(400, 11));
  for (const auto& lc : bench.columns) {
    EXPECT_FALSE(table::IsMostlyNumeric(lc.column)) << lc.domain;
  }
}

TEST(BenchGenTest, SyntheticInjectionAddsLabeledErrors) {
  auto bench = GenerateBenchmark(StBenchProfile(400, 12));
  auto noisy = WithSyntheticErrors(bench, 0.2, 55);
  EXPECT_GT(noisy.TotalErrors(), bench.TotalErrors());
  // Injection shifts rows correctly: every labeled row stays in range.
  for (const auto& lc : noisy.columns) {
    for (size_t row : lc.error_rows) {
      ASSERT_LT(row, lc.column.values.size());
    }
  }
}

TEST(BenchGenTest, SyntheticInjectionPreservesOriginalLabels) {
  auto bench = GenerateBenchmark(StBenchProfile(200, 13));
  auto noisy = WithSyntheticErrors(bench, 1.0, 56);
  const Gazetteer& g = Gazetteer::Instance();
  for (const auto& lc : noisy.columns) {
    for (size_t row : lc.error_rows) {
      EXPECT_FALSE(g.Contains(lc.domain, lc.column.values[row]));
    }
  }
}

TEST(CleaningBenchTest, AllNineDatasets) {
  auto datasets = BuildCleaningDatasets();
  ASSERT_EQ(datasets.size(), 9u);
  std::set<std::string> names;
  for (const auto& d : datasets) names.insert(d.name);
  for (const char* expected : {"adults", "beers", "flights", "food",
                               "hospital", "movies", "rayyan", "soccer",
                               "tax"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(CleaningBenchTest, ErrorsAppliedToCells) {
  auto datasets = BuildCleaningDatasets();
  for (const auto& d : datasets) {
    for (const auto& e : d.errors) {
      ASSERT_LT(e.column_index, d.data.columns.size());
      ASSERT_LT(e.row, d.data.columns[e.column_index].values.size());
      EXPECT_EQ(d.data.columns[e.column_index].values[e.row], e.dirty_value);
      EXPECT_NE(e.dirty_value, e.clean_value);
    }
  }
}

TEST(CleaningBenchTest, MoviesHasManyIdErrors) {
  auto datasets = BuildCleaningDatasets();
  const CleaningDataset* movies = nullptr;
  for (const auto& d : datasets) {
    if (d.name == "movies") movies = &d;
  }
  ASSERT_NE(movies, nullptr);
  EXPECT_GE(movies->errors.size(), 12u);
}

TEST(CleaningBenchTest, SomeErrorsMissingFromGroundTruth) {
  auto datasets = BuildCleaningDatasets();
  size_t missed = 0;
  for (const auto& d : datasets) {
    for (const auto& e : d.errors) {
      if (!e.in_ground_truth) ++missed;
    }
  }
  EXPECT_GE(missed, 3u);  // the paper's Table-11 phenomenon
}

}  // namespace
}  // namespace autotest::datagen
