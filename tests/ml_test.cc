#include <gtest/gtest.h>

#include <cmath>

#include "ml/features.h"
#include "ml/logistic_regression.h"
#include "util/rng.h"

namespace autotest::ml {
namespace {

TEST(FeaturesTest, DimensionAndDeterminism) {
  FeatureConfig cfg;
  cfg.hash_dim = 64;
  FeatureExtractor fx(cfg);
  EXPECT_EQ(fx.dim(), 64u + FeatureExtractor::kShapeDims);
  auto a = fx.Extract("hello");
  auto b = fx.Extract("hello");
  EXPECT_EQ(a, b);
}

TEST(FeaturesTest, CaseFoldedNgramsButShapeDiffers) {
  FeatureConfig cfg;
  cfg.hash_dim = 64;
  FeatureExtractor fx(cfg);
  auto lower = fx.Extract("abc");
  auto upper = fx.Extract("ABC");
  // N-gram block identical (case-folded)...
  for (size_t i = 0; i < cfg.hash_dim; ++i) EXPECT_FLOAT_EQ(lower[i], upper[i]);
  // ...but the upper-ratio shape feature differs.
  EXPECT_NE(lower[cfg.hash_dim + 3], upper[cfg.hash_dim + 3]);
}

TEST(FeaturesTest, NgramBlockIsUnitNorm) {
  FeatureConfig cfg;
  FeatureExtractor fx(cfg);
  auto v = fx.Extract("germany");
  double norm = 0;
  for (size_t i = 0; i < cfg.hash_dim; ++i) norm += v[i] * v[i];
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(FeaturesTest, SimilarStringsHaveSimilarNgrams) {
  FeatureConfig cfg;
  FeatureExtractor fx(cfg);
  auto a = fx.Extract("february");
  auto b = fx.Extract("febuary");   // typo: mostly shared n-grams
  auto c = fx.Extract("zxqwvjkp");  // unrelated
  auto dot = [&](const std::vector<float>& x, const std::vector<float>& y) {
    double d = 0;
    for (size_t i = 0; i < cfg.hash_dim; ++i) d += x[i] * y[i];
    return d;
  };
  EXPECT_GT(dot(a, b), dot(a, c));
  EXPECT_GT(dot(a, b), 0.5);
}

TEST(FeaturesTest, DifferentSeedsDecorrelate) {
  FeatureConfig c1;
  c1.seed = 1;
  FeatureConfig c2;
  c2.seed = 2;
  auto a = FeatureExtractor(c1).Extract("hello");
  auto b = FeatureExtractor(c2).Extract("hello");
  bool same = true;
  for (size_t i = 0; i < c1.hash_dim; ++i) {
    if (a[i] != b[i]) same = false;
  }
  EXPECT_FALSE(same);
}

TEST(FeaturesTest, EmptyStringSafe) {
  FeatureExtractor fx(FeatureConfig{});
  auto v = fx.Extract("");
  EXPECT_EQ(v.size(), fx.dim());
  for (float x : v) EXPECT_TRUE(std::isfinite(x));
}

TEST(SigmoidTest, StableAtExtremes) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-9);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-9);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
}

TEST(LogRegTest, LearnsLinearlySeparableData) {
  // y = 1 iff x0 > x1.
  util::Rng rng(1);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    float a = static_cast<float>(rng.UniformDouble(-1, 1));
    float b = static_cast<float>(rng.UniformDouble(-1, 1));
    x.push_back({a, b});
    y.push_back(a > b ? 1 : 0);
  }
  LogisticRegression lr;
  LogRegConfig cfg;
  cfg.epochs = 50;
  lr.Train(x, y, cfg);
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    double p = lr.Predict(x[i]);
    if ((p > 0.5) == (y[i] == 1)) ++correct;
  }
  EXPECT_GT(correct, 380);
}

TEST(LogRegTest, UntrainedPredictsHalf) {
  LogisticRegression lr;
  EXPECT_DOUBLE_EQ(lr.Predict({1.0f, 2.0f}), 0.5);
  EXPECT_FALSE(lr.trained());
}

TEST(LogRegTest, DeterministicTraining) {
  std::vector<std::vector<float>> x = {{0.f, 1.f}, {1.f, 0.f}, {0.2f, 0.9f},
                                       {0.9f, 0.1f}};
  std::vector<int> y = {0, 1, 0, 1};
  LogisticRegression a;
  LogisticRegression b;
  LogRegConfig cfg;
  a.Train(x, y, cfg);
  b.Train(x, y, cfg);
  EXPECT_DOUBLE_EQ(a.Predict({0.5f, 0.5f}), b.Predict({0.5f, 0.5f}));
}

TEST(LogRegTest, SeparatesStringClassesViaFeatures) {
  // Country-like words vs numeric ids: a tiny end-to-end check of the
  // feature + classifier stack used by the CTA-sim zoos.
  FeatureExtractor fx(FeatureConfig{});
  std::vector<std::string> pos = {"germany", "france",  "italy", "spain",
                                  "austria", "belgium", "norway", "sweden",
                                  "poland",  "ireland", "greece", "hungary"};
  std::vector<std::string> neg = {"tt001234", "12/3/2020", "b5000123",
                                  "fy17",     "12 oz",     "#a3f2c1",
                                  "num00001", "10:23",     "55416",
                                  "4-55-01",  "a@b.com",   "1.2.3.4"};
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (const auto& s : pos) {
    x.push_back(fx.Extract(s));
    y.push_back(1);
  }
  for (const auto& s : neg) {
    x.push_back(fx.Extract(s));
    y.push_back(0);
  }
  LogisticRegression lr;
  LogRegConfig cfg;
  cfg.epochs = 60;
  lr.Train(x, y, cfg);
  EXPECT_GT(lr.Predict(fx.Extract("portugal")), 0.5);
  EXPECT_LT(lr.Predict(fx.Extract("zz99817")), 0.5);
}

}  // namespace
}  // namespace autotest::ml
