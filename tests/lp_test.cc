#include <gtest/gtest.h>

#include "lp/simplex.h"
#include "util/rng.h"

namespace autotest::lp {
namespace {

Constraint Le(std::vector<std::pair<size_t, double>> terms, double rhs) {
  return Constraint{std::move(terms), ConstraintType::kLessEq, rhs};
}
Constraint Ge(std::vector<std::pair<size_t, double>> terms, double rhs) {
  return Constraint{std::move(terms), ConstraintType::kGreaterEq, rhs};
}
Constraint Eq(std::vector<std::pair<size_t, double>> terms, double rhs) {
  return Constraint{std::move(terms), ConstraintType::kEqual, rhs};
}

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y, x <= 4, 2y <= 12, 3x + 2y <= 18 -> opt 36 at (2, 6).
  LinearProgram lp;
  size_t x = lp.AddVariable(3.0);
  size_t y = lp.AddVariable(5.0);
  lp.AddConstraint(Le({{x, 1.0}}, 4.0));
  lp.AddConstraint(Le({{y, 2.0}}, 12.0));
  lp.AddConstraint(Le({{x, 3.0}, {y, 2.0}}, 18.0));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
  EXPECT_NEAR(s.values[x], 2.0, 1e-7);
  EXPECT_NEAR(s.values[y], 6.0, 1e-7);
}

TEST(SimplexTest, UpperBoundsViaBoundFlips) {
  // max x + y with x, y in [0, 1], x + y <= 1.5 -> 1.5.
  LinearProgram lp;
  size_t x = lp.AddVariable(1.0, 1.0);
  size_t y = lp.AddVariable(1.0, 1.0);
  lp.AddConstraint(Le({{x, 1.0}, {y, 1.0}}, 1.5));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-7);
  EXPECT_LE(s.values[x], 1.0 + 1e-9);
  EXPECT_LE(s.values[y], 1.0 + 1e-9);
}

TEST(SimplexTest, PureBoundProblem) {
  // No constraints at all: every variable goes to its upper bound.
  LinearProgram lp;
  lp.AddVariable(2.0, 3.0);
  lp.AddVariable(1.0, 5.0);
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 11.0, 1e-7);
}

TEST(SimplexTest, UnboundedDetected) {
  LinearProgram lp;
  size_t x = lp.AddVariable(1.0);
  lp.AddConstraint(Ge({{x, 1.0}}, 1.0));
  Solution s = SolveLp(lp);
  EXPECT_EQ(s.status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, InfeasibleDetected) {
  LinearProgram lp;
  size_t x = lp.AddVariable(1.0, 1.0);
  lp.AddConstraint(Ge({{x, 1.0}}, 2.0));  // x >= 2 but x <= 1
  Solution s = SolveLp(lp);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, GreaterEqAndEquality) {
  // min x + y s.t. x + 2y >= 4, x = 1  ->  y = 1.5 (as max of -(x+y)).
  LinearProgram lp;
  size_t x = lp.AddVariable(-1.0);
  size_t y = lp.AddVariable(-1.0);
  lp.AddConstraint(Ge({{x, 1.0}, {y, 2.0}}, 4.0));
  lp.AddConstraint(Eq({{x, 1.0}}, 1.0));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 1.0, 1e-7);
  EXPECT_NEAR(s.values[y], 1.5, 1e-7);
  EXPECT_NEAR(s.objective, -2.5, 1e-7);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // -x <= -2  <=>  x >= 2; max -x -> x = 2.
  LinearProgram lp;
  size_t x = lp.AddVariable(-1.0);
  lp.AddConstraint(Le({{x, -1.0}}, -2.0));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-7);
}

TEST(SimplexTest, DegenerateProblem) {
  // Multiple constraints active at the optimum; must not cycle.
  LinearProgram lp;
  size_t x = lp.AddVariable(1.0);
  size_t y = lp.AddVariable(1.0);
  lp.AddConstraint(Le({{x, 1.0}, {y, 1.0}}, 1.0));
  lp.AddConstraint(Le({{x, 1.0}}, 1.0));
  lp.AddConstraint(Le({{y, 1.0}}, 1.0));
  lp.AddConstraint(Le({{x, 2.0}, {y, 1.0}}, 2.0));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-7);
}

TEST(SimplexTest, MaxCoverageLpRelaxationStructure) {
  // The CSS-LP shape: y_j <= sum_{i in K_j} x_i, budget on x.
  // 3 rules, 4 columns; K = {0:{0}, 1:{0,1}, 2:{1,2}, 3:{2}}; budget 2.
  // LP optimum: pick x0 = x2 = 1 -> covers all 4 columns.
  LinearProgram lp;
  std::vector<size_t> x;
  std::vector<size_t> y;
  for (int i = 0; i < 3; ++i) x.push_back(lp.AddVariable(0.0, 1.0));
  for (int j = 0; j < 4; ++j) y.push_back(lp.AddVariable(1.0, 1.0));
  std::vector<std::vector<size_t>> k = {{0}, {0, 1}, {1, 2}, {2}};
  for (int j = 0; j < 4; ++j) {
    Constraint c;
    c.type = ConstraintType::kLessEq;
    c.rhs = 0.0;
    c.terms.push_back({y[static_cast<size_t>(j)], 1.0});
    for (size_t i : k[static_cast<size_t>(j)]) c.terms.push_back({x[i], -1.0});
    lp.AddConstraint(std::move(c));
  }
  lp.AddConstraint(Le({{x[0], 1.0}, {x[1], 1.0}, {x[2], 1.0}}, 2.0));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST(SimplexTest, RandomizedAgainstBruteForce) {
  // Property test: on random small LPs with box bounds, simplex must match
  // brute-force over vertex candidates (grid search refinement).
  util::Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    LinearProgram lp;
    size_t n = 2;
    std::vector<size_t> vars;
    for (size_t j = 0; j < n; ++j) {
      vars.push_back(lp.AddVariable(rng.UniformDouble(-1, 1), 1.0));
    }
    for (int c = 0; c < 3; ++c) {
      Constraint con;
      con.type = ConstraintType::kLessEq;
      con.rhs = rng.UniformDouble(0.5, 2.0);
      for (size_t j = 0; j < n; ++j) {
        con.terms.push_back({vars[j], rng.UniformDouble(0, 1)});
      }
      lp.AddConstraint(std::move(con));
    }
    Solution s = SolveLp(lp);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    // Grid check: no feasible grid point beats the simplex optimum.
    double best = -1e18;
    const int kGrid = 40;
    for (int a = 0; a <= kGrid; ++a) {
      for (int b = 0; b <= kGrid; ++b) {
        double xv = static_cast<double>(a) / kGrid;
        double yv = static_cast<double>(b) / kGrid;
        bool feasible = true;
        for (const auto& con : lp.constraints) {
          double lhs = con.terms[0].second * xv + con.terms[1].second * yv;
          if (lhs > con.rhs + 1e-9) feasible = false;
        }
        if (feasible) {
          best = std::max(best, lp.objective[0] * xv + lp.objective[1] * yv);
        }
      }
    }
    EXPECT_GE(s.objective, best - 1e-6) << "trial " << trial;
  }
}

TEST(SimplexTest, LargerRandomFeasibility) {
  // 60 vars, 40 constraints: solution must satisfy every constraint.
  util::Rng rng(7);
  LinearProgram lp;
  for (int j = 0; j < 60; ++j) lp.AddVariable(rng.UniformDouble(0, 1), 1.0);
  for (int c = 0; c < 40; ++c) {
    Constraint con;
    con.type = ConstraintType::kLessEq;
    con.rhs = rng.UniformDouble(1.0, 5.0);
    for (size_t j = 0; j < 60; ++j) {
      if (rng.Bernoulli(0.2)) con.terms.push_back({j, rng.UniformDouble(0, 1)});
    }
    if (con.terms.empty()) con.terms.push_back({0, 0.5});
    lp.AddConstraint(std::move(con));
  }
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  for (const auto& con : lp.constraints) {
    double lhs = 0;
    for (const auto& [j, coef] : con.terms) lhs += coef * s.values[j];
    EXPECT_LE(lhs, con.rhs + 1e-6);
  }
  for (double v : s.values) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST(SimplexTest, StatusNames) {
  EXPECT_STREQ(SolveStatusName(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(SolveStatusName(SolveStatus::kInfeasible), "infeasible");
}

}  // namespace
}  // namespace autotest::lp
