#include <gtest/gtest.h>

#include "lp/incremental.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace autotest::lp {
namespace {

Constraint Le(std::vector<std::pair<size_t, double>> terms, double rhs) {
  return Constraint{std::move(terms), ConstraintType::kLessEq, rhs};
}
Constraint Ge(std::vector<std::pair<size_t, double>> terms, double rhs) {
  return Constraint{std::move(terms), ConstraintType::kGreaterEq, rhs};
}
Constraint Eq(std::vector<std::pair<size_t, double>> terms, double rhs) {
  return Constraint{std::move(terms), ConstraintType::kEqual, rhs};
}

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y, x <= 4, 2y <= 12, 3x + 2y <= 18 -> opt 36 at (2, 6).
  LinearProgram lp;
  size_t x = lp.AddVariable(3.0);
  size_t y = lp.AddVariable(5.0);
  lp.AddConstraint(Le({{x, 1.0}}, 4.0));
  lp.AddConstraint(Le({{y, 2.0}}, 12.0));
  lp.AddConstraint(Le({{x, 3.0}, {y, 2.0}}, 18.0));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
  EXPECT_NEAR(s.values[x], 2.0, 1e-7);
  EXPECT_NEAR(s.values[y], 6.0, 1e-7);
}

TEST(SimplexTest, UpperBoundsViaBoundFlips) {
  // max x + y with x, y in [0, 1], x + y <= 1.5 -> 1.5.
  LinearProgram lp;
  size_t x = lp.AddVariable(1.0, 1.0);
  size_t y = lp.AddVariable(1.0, 1.0);
  lp.AddConstraint(Le({{x, 1.0}, {y, 1.0}}, 1.5));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-7);
  EXPECT_LE(s.values[x], 1.0 + 1e-9);
  EXPECT_LE(s.values[y], 1.0 + 1e-9);
}

TEST(SimplexTest, PureBoundProblem) {
  // No constraints at all: every variable goes to its upper bound.
  LinearProgram lp;
  lp.AddVariable(2.0, 3.0);
  lp.AddVariable(1.0, 5.0);
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 11.0, 1e-7);
}

TEST(SimplexTest, UnboundedDetected) {
  LinearProgram lp;
  size_t x = lp.AddVariable(1.0);
  lp.AddConstraint(Ge({{x, 1.0}}, 1.0));
  Solution s = SolveLp(lp);
  EXPECT_EQ(s.status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, InfeasibleDetected) {
  LinearProgram lp;
  size_t x = lp.AddVariable(1.0, 1.0);
  lp.AddConstraint(Ge({{x, 1.0}}, 2.0));  // x >= 2 but x <= 1
  Solution s = SolveLp(lp);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, GreaterEqAndEquality) {
  // min x + y s.t. x + 2y >= 4, x = 1  ->  y = 1.5 (as max of -(x+y)).
  LinearProgram lp;
  size_t x = lp.AddVariable(-1.0);
  size_t y = lp.AddVariable(-1.0);
  lp.AddConstraint(Ge({{x, 1.0}, {y, 2.0}}, 4.0));
  lp.AddConstraint(Eq({{x, 1.0}}, 1.0));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 1.0, 1e-7);
  EXPECT_NEAR(s.values[y], 1.5, 1e-7);
  EXPECT_NEAR(s.objective, -2.5, 1e-7);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // -x <= -2  <=>  x >= 2; max -x -> x = 2.
  LinearProgram lp;
  size_t x = lp.AddVariable(-1.0);
  lp.AddConstraint(Le({{x, -1.0}}, -2.0));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-7);
}

TEST(SimplexTest, DegenerateProblem) {
  // Multiple constraints active at the optimum; must not cycle.
  LinearProgram lp;
  size_t x = lp.AddVariable(1.0);
  size_t y = lp.AddVariable(1.0);
  lp.AddConstraint(Le({{x, 1.0}, {y, 1.0}}, 1.0));
  lp.AddConstraint(Le({{x, 1.0}}, 1.0));
  lp.AddConstraint(Le({{y, 1.0}}, 1.0));
  lp.AddConstraint(Le({{x, 2.0}, {y, 1.0}}, 2.0));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-7);
}

TEST(SimplexTest, MaxCoverageLpRelaxationStructure) {
  // The CSS-LP shape: y_j <= sum_{i in K_j} x_i, budget on x.
  // 3 rules, 4 columns; K = {0:{0}, 1:{0,1}, 2:{1,2}, 3:{2}}; budget 2.
  // LP optimum: pick x0 = x2 = 1 -> covers all 4 columns.
  LinearProgram lp;
  std::vector<size_t> x;
  std::vector<size_t> y;
  for (int i = 0; i < 3; ++i) x.push_back(lp.AddVariable(0.0, 1.0));
  for (int j = 0; j < 4; ++j) y.push_back(lp.AddVariable(1.0, 1.0));
  std::vector<std::vector<size_t>> k = {{0}, {0, 1}, {1, 2}, {2}};
  for (int j = 0; j < 4; ++j) {
    Constraint c;
    c.type = ConstraintType::kLessEq;
    c.rhs = 0.0;
    c.terms.push_back({y[static_cast<size_t>(j)], 1.0});
    for (size_t i : k[static_cast<size_t>(j)]) c.terms.push_back({x[i], -1.0});
    lp.AddConstraint(std::move(c));
  }
  lp.AddConstraint(Le({{x[0], 1.0}, {x[1], 1.0}, {x[2], 1.0}}, 2.0));
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST(SimplexTest, RandomizedAgainstBruteForce) {
  // Property test: on random small LPs with box bounds, simplex must match
  // brute-force over vertex candidates (grid search refinement).
  util::Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    LinearProgram lp;
    size_t n = 2;
    std::vector<size_t> vars;
    for (size_t j = 0; j < n; ++j) {
      vars.push_back(lp.AddVariable(rng.UniformDouble(-1, 1), 1.0));
    }
    for (int c = 0; c < 3; ++c) {
      Constraint con;
      con.type = ConstraintType::kLessEq;
      con.rhs = rng.UniformDouble(0.5, 2.0);
      for (size_t j = 0; j < n; ++j) {
        con.terms.push_back({vars[j], rng.UniformDouble(0, 1)});
      }
      lp.AddConstraint(std::move(con));
    }
    Solution s = SolveLp(lp);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    // Grid check: no feasible grid point beats the simplex optimum.
    double best = -1e18;
    const int kGrid = 40;
    for (int a = 0; a <= kGrid; ++a) {
      for (int b = 0; b <= kGrid; ++b) {
        double xv = static_cast<double>(a) / kGrid;
        double yv = static_cast<double>(b) / kGrid;
        bool feasible = true;
        for (const auto& con : lp.constraints) {
          double lhs = con.terms[0].second * xv + con.terms[1].second * yv;
          if (lhs > con.rhs + 1e-9) feasible = false;
        }
        if (feasible) {
          best = std::max(best, lp.objective[0] * xv + lp.objective[1] * yv);
        }
      }
    }
    EXPECT_GE(s.objective, best - 1e-6) << "trial " << trial;
  }
}

TEST(SimplexTest, LargerRandomFeasibility) {
  // 60 vars, 40 constraints: solution must satisfy every constraint.
  util::Rng rng(7);
  LinearProgram lp;
  for (int j = 0; j < 60; ++j) lp.AddVariable(rng.UniformDouble(0, 1), 1.0);
  for (int c = 0; c < 40; ++c) {
    Constraint con;
    con.type = ConstraintType::kLessEq;
    con.rhs = rng.UniformDouble(1.0, 5.0);
    for (size_t j = 0; j < 60; ++j) {
      if (rng.Bernoulli(0.2)) con.terms.push_back({j, rng.UniformDouble(0, 1)});
    }
    if (con.terms.empty()) con.terms.push_back({0, 0.5});
    lp.AddConstraint(std::move(con));
  }
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  for (const auto& con : lp.constraints) {
    double lhs = 0;
    for (const auto& [j, coef] : con.terms) lhs += coef * s.values[j];
    EXPECT_LE(lhs, con.rhs + 1e-6);
  }
  for (double v : s.values) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST(SimplexTest, StatusNames) {
  EXPECT_STREQ(SolveStatusName(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(SolveStatusName(SolveStatus::kInfeasible), "infeasible");
}

TEST(SimplexTest, EmptyLpIsOptimalNotIterationLimit) {
  // Regression: the Solution struct defaults status to kIterationLimit;
  // the early-exit for a 0-var/0-constraint program must overwrite it.
  LinearProgram lp;
  Solution s = SolveLp(lp);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.objective, 0.0);
  EXPECT_TRUE(s.values.empty());
  Solution d = SolveLpDense(lp);
  EXPECT_EQ(d.status, SolveStatus::kOptimal);
  EXPECT_EQ(d.objective, 0.0);
}

TEST(SimplexTest, NoConstraintsBoundedVarsIsOptimal) {
  // No rows at all: the answer is the bound-respecting greedy assignment.
  LinearProgram lp;
  lp.AddVariable(2.0, 1.5);                       // at upper
  lp.AddVariable(-1.0, 4.0);                      // at lower
  lp.AddVariable(0.0, LinearProgram::kInfinity);  // free to stay at 0
  Solution s = SolveLp(lp);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.values[0], 1.5, 1e-9);
  EXPECT_NEAR(s.values[1], 0.0, 1e-9);
}

TEST(SimplexTest, DenseSolverStillAvailableAsReference) {
  // SolveLpDense is the retained tableau implementation; spot-check that
  // it matches the revised simplex on a small mixed program.
  LinearProgram lp;
  size_t x = lp.AddVariable(3.0, LinearProgram::kInfinity);
  size_t y = lp.AddVariable(2.0, 5.0);
  Constraint c1;
  c1.type = ConstraintType::kLessEq;
  c1.rhs = 10.0;
  c1.terms = {{x, 1.0}, {y, 2.0}};
  lp.AddConstraint(std::move(c1));
  Constraint c2;
  c2.type = ConstraintType::kGreaterEq;
  c2.rhs = 1.0;
  c2.terms = {{x, 1.0}};
  lp.AddConstraint(std::move(c2));
  Solution sparse = SolveLp(lp);
  Solution dense = SolveLpDense(lp);
  ASSERT_EQ(sparse.status, SolveStatus::kOptimal);
  ASSERT_EQ(dense.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sparse.objective, dense.objective, 1e-9);
}

TEST(IncrementalSolverTest, WarmSolveAfterColumnAddition) {
  // Rows fixed up front; columns stream in. The second Solve must reuse
  // the optimal basis (warm) and still match a cold solve of the mirror.
  LinearProgram base;
  Constraint budget;
  budget.type = ConstraintType::kLessEq;
  budget.rhs = 2.0;
  base.AddConstraint(std::move(budget));
  IncrementalSolver inc(base);
  inc.AddVariable(1.0, 1.0, {{0, 1.0}});
  inc.AddVariable(2.0, 1.0, {{0, 1.0}});
  const Solution& first = inc.Solve();
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_FALSE(inc.last_solve_was_warm());
  EXPECT_NEAR(first.objective, 3.0, 1e-9);

  inc.AddVariable(5.0, 1.0, {{0, 1.0}});  // better column arrives
  const Solution& second = inc.Solve();
  ASSERT_EQ(second.status, SolveStatus::kOptimal);
  EXPECT_TRUE(inc.last_solve_was_warm());
  EXPECT_NEAR(second.objective, 7.0, 1e-9);
  Solution cold = SolveLp(inc.program());
  EXPECT_NEAR(cold.objective, second.objective, 1e-9);
}

TEST(IncrementalSolverTest, EmptyBaseThenColumns) {
  // Zero initial columns is the selection layer's startup shape.
  LinearProgram base;
  Constraint row;
  row.type = ConstraintType::kLessEq;
  row.rhs = 1.0;
  base.AddConstraint(std::move(row));
  IncrementalSolver inc(base);
  const Solution& empty = inc.Solve();
  EXPECT_EQ(empty.status, SolveStatus::kOptimal);
  EXPECT_EQ(empty.objective, 0.0);
  inc.AddVariable(4.0, LinearProgram::kInfinity, {{0, 2.0}});
  const Solution& s = inc.Solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
  EXPECT_NEAR(s.values[0], 0.5, 1e-9);
}

}  // namespace
}  // namespace autotest::lp
