#include <gtest/gtest.h>

#include "core/report.h"
#include "core/sdc.h"
#include "typedet/eval_functions.h"
#include "typedet/validators.h"

namespace autotest::core {
namespace {

// A predictor with one hand-built rule: validate_date with m = 0.9.
SdcPredictor MakeDatePredictor(
    const std::unique_ptr<typedet::DomainEvalFunction>& eval) {
  Sdc rule;
  rule.eval = eval.get();
  rule.d_in = 0.0;
  rule.d_out = 0.5;
  rule.m = 0.9;
  rule.confidence = 0.95;
  return SdcPredictor({rule});
}

table::Table MakeTable() {
  table::Table t;
  t.name = "orders";
  table::Column dates;
  dates.name = "order date";
  for (int i = 1; i <= 19; ++i) {
    dates.values.push_back("4/" + std::to_string(i) + "/2022");
  }
  dates.values.push_back("pending");  // the error
  table::Column amounts;
  amounts.name = "amount";
  for (int i = 0; i < 20; ++i) amounts.values.push_back(std::to_string(i));
  table::Column notes;
  notes.name = "note";
  for (int i = 0; i < 20; ++i) notes.values.push_back("ok");
  t.columns = {dates, amounts, notes};
  return t;
}

TEST(ReportTest, AnalyzeTableFindsTheError) {
  auto eval = typedet::MakeFunctionEval(typedet::NamedValidator{
      "validate_date", "dataprep-sim", &typedet::ValidateDate});
  SdcPredictor pred = MakeDatePredictor(eval);
  table::Table t = MakeTable();
  TableReport report = AnalyzeTable(pred, t);
  EXPECT_EQ(report.table_name, "orders");
  EXPECT_EQ(report.columns_skipped_numeric, 1u);  // "amount"
  EXPECT_EQ(report.columns_checked, 2u);
  ASSERT_EQ(report.columns.size(), 1u);
  EXPECT_EQ(report.columns[0].column_name, "order date");
  ASSERT_EQ(report.columns[0].detections.size(), 1u);
  EXPECT_EQ(report.columns[0].detections[0].value, "pending");
  EXPECT_EQ(report.TotalDetections(), 1u);
}

TEST(ReportTest, MinConfidenceFilters) {
  auto eval = typedet::MakeFunctionEval(typedet::NamedValidator{
      "validate_date", "dataprep-sim", &typedet::ValidateDate});
  SdcPredictor pred = MakeDatePredictor(eval);
  table::Table t = MakeTable();
  AnalyzeOptions opt;
  opt.min_confidence = 0.99;  // above the rule's 0.95
  TableReport report = AnalyzeTable(pred, t, opt);
  EXPECT_EQ(report.TotalDetections(), 0u);
}

TEST(ReportTest, KeepNumericColumnsWhenAsked) {
  auto eval = typedet::MakeFunctionEval(typedet::NamedValidator{
      "validate_date", "dataprep-sim", &typedet::ValidateDate});
  SdcPredictor pred = MakeDatePredictor(eval);
  table::Table t = MakeTable();
  AnalyzeOptions opt;
  opt.skip_numeric_columns = false;
  TableReport report = AnalyzeTable(pred, t, opt);
  EXPECT_EQ(report.columns_checked, 3u);
  EXPECT_EQ(report.columns_skipped_numeric, 0u);
}

TEST(ReportTest, TextRenderingContainsCard) {
  auto eval = typedet::MakeFunctionEval(typedet::NamedValidator{
      "validate_date", "dataprep-sim", &typedet::ValidateDate});
  SdcPredictor pred = MakeDatePredictor(eval);
  TableReport report = AnalyzeTable(pred, MakeTable());
  std::string text = report.ToText();
  EXPECT_NE(text.find("pending"), std::string::npos);
  EXPECT_NE(text.find("order date"), std::string::npos);
  EXPECT_NE(text.find("suggestion 1"), std::string::npos);
}

TEST(ReportTest, EmptyTable) {
  auto eval = typedet::MakeFunctionEval(typedet::NamedValidator{
      "validate_date", "dataprep-sim", &typedet::ValidateDate});
  SdcPredictor pred = MakeDatePredictor(eval);
  table::Table t;
  t.name = "empty";
  TableReport report = AnalyzeTable(pred, t);
  EXPECT_EQ(report.TotalDetections(), 0u);
  EXPECT_EQ(report.columns_checked, 0u);
}

}  // namespace
}  // namespace autotest::core
