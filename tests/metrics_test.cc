// Tests for the uniform metrics registry (DESIGN.md §4f): registration
// idempotence and kind safety, name validation, deterministic snapshot
// ordering, text/JSON serialization (including escaping and non-finite
// handling), lock-free concurrent increments, histogram bucketing, and
// equivalence of the parallel::Stats shims with the registry values.

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "util/parallel/thread_pool.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AT_METRICS_TEST_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define AT_METRICS_TEST_TSAN 1
#endif

namespace autotest::metrics {
namespace {

TEST(MetricNameTest, AcceptsWellFormedNames) {
  EXPECT_TRUE(IsValidMetricName("parallel.steals"));
  EXPECT_TRUE(IsValidMetricName("failpoint.csv.open.fires"));
  EXPECT_TRUE(IsValidMetricName("bench.fig12.fine_select_s_per_col"));
  EXPECT_TRUE(IsValidMetricName("a.b0_c"));
  for (std::string_view name : kAllMetrics) {
    EXPECT_TRUE(IsValidMetricName(name)) << name;
  }
}

TEST(MetricNameTest, RejectsMalformedNames) {
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("noscope"));       // needs >= 2 segments
  EXPECT_FALSE(IsValidMetricName(".leading.dot"));  // empty first segment
  EXPECT_FALSE(IsValidMetricName("trailing.dot."));
  EXPECT_FALSE(IsValidMetricName("a..b"));          // empty middle segment
  EXPECT_FALSE(IsValidMetricName("Upper.case"));
  EXPECT_FALSE(IsValidMetricName("a.1starts_with_digit"));
  EXPECT_FALSE(IsValidMetricName("a._starts_with_underscore"));
  EXPECT_FALSE(IsValidMetricName("a.b-c"));  // '-' not in the alphabet
  EXPECT_FALSE(IsValidMetricName("a.b c"));
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  Registry& reg = Registry::Global();
  Counter& a = reg.GetCounter("test.idempotent_counter");
  Counter& b = reg.GetCounter("test.idempotent_counter");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g1 = reg.GetGauge("test.idempotent_gauge");
  Gauge& g2 = reg.GetGauge("test.idempotent_gauge");
  EXPECT_EQ(&g1, &g2);

  std::vector<double> bounds = {1.0, 2.0, 4.0};
  Histogram& h1 = reg.GetHistogram("test.idempotent_hist", bounds);
  Histogram& h2 = reg.GetHistogram("test.idempotent_hist", bounds);
  EXPECT_EQ(&h1, &h2);
  EXPECT_TRUE(reg.IsRegistered("test.idempotent_counter"));
  EXPECT_FALSE(reg.IsRegistered("test.never_registered"));
}

// Programmer-error invariants stay aborts (DESIGN.md §4c). Death tests
// fork, which ThreadSanitizer does not support reliably; the TSan CI shard
// covers the concurrency tests instead.
#if GTEST_HAS_DEATH_TEST && !defined(AT_METRICS_TEST_TSAN)
TEST(RegistryDeathTest, KindMismatchAborts) {
  Registry& reg = Registry::Global();
  reg.GetCounter("test.kind_mismatch");
  EXPECT_DEATH((void)reg.GetGauge("test.kind_mismatch"), "kind");
}

TEST(RegistryDeathTest, InvalidNameAborts) {
  EXPECT_DEATH((void)Registry::Global().GetCounter("BadName"), "name");
}

TEST(RegistryDeathTest, HistogramBoundsMismatchAborts) {
  Registry& reg = Registry::Global();
  reg.GetHistogram("test.bounds_mismatch", {1.0, 2.0});
  EXPECT_DEATH((void)reg.GetHistogram("test.bounds_mismatch", {1.0, 3.0}),
               "bounds");
}
#endif

TEST(RegistryTest, SnapshotIsSortedByName) {
  Registry& reg = Registry::Global();
  // Register in reverse lexicographic order; Snapshot must still sort.
  reg.GetCounter("test.sort_c");
  reg.GetCounter("test.sort_b");
  reg.GetCounter("test.sort_a");
  std::vector<MetricValue> snap = reg.Snapshot();
  ASSERT_GE(snap.size(), 3u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
}

TEST(HistogramTest, BucketsCountAndOverflow) {
  Registry& reg = Registry::Global();
  Histogram& h = reg.GetHistogram("test.hist_buckets", {1.0, 4.0, 16.0});
  h.Reset();
  h.Observe(0.5);   // le=1
  h.Observe(1.0);   // le=1 (bounds are inclusive upper limits)
  h.Observe(3.0);   // le=4
  h.Observe(16.0);  // le=16
  h.Observe(99.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 3.0 + 16.0 + 99.0);
  std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(SerializationTest, JsonEscapesControlAndSpecialChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(SerializationTest, JsonDocumentShape) {
  MetricValue c;
  c.name = "test.doc_counter";
  c.kind = MetricKind::kCounter;
  c.counter = 7;
  MetricValue g;
  g.name = "test.doc_gauge";
  g.kind = MetricKind::kGauge;
  g.gauge = 1.5;
  MetricValue h;
  h.name = "test.doc_hist";
  h.kind = MetricKind::kHistogram;
  h.histogram.bounds = {1.0, 2.0};
  h.histogram.buckets = {3, 0, 1};
  h.histogram.count = 4;
  h.histogram.sum = 5.25;
  std::string json = FormatMetricsJson({c, g, h}, "unit \"test\"");

  EXPECT_NE(json.find("\"schema\":\"autotest.metrics.v1\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"source\":\"unit \\\"test\\\"\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"name\":\"test.doc_counter\",\"kind\":"
                      "\"counter\",\"value\":7}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"name\":\"test.doc_gauge\",\"kind\":\"gauge\","
                      "\"value\":1.5}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":5.25"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\":1,\"count\":3}"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\":\"+inf\",\"count\":1}"), std::string::npos)
      << json;
}

TEST(SerializationTest, NonFiniteGaugesSerializeAsNull) {
  MetricValue g;
  g.name = "test.doc_nonfinite";
  g.kind = MetricKind::kGauge;
  g.gauge = std::numeric_limits<double>::quiet_NaN();
  std::string json = FormatMetricsJson({g}, "t");
  EXPECT_NE(json.find("\"value\":null"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

TEST(SerializationTest, GaugeValuesRoundTripExactly) {
  // The serializer must emit the shortest decimal that parses back to the
  // exact double — probe a few awkward values through strtod.
  for (double v : {0.1, 1.0 / 3.0, 1e-9, 123456.789, 6.02214076e23}) {
    MetricValue g;
    g.name = "test.doc_roundtrip";
    g.kind = MetricKind::kGauge;
    g.gauge = v;
    std::string json = FormatMetricsJson({g}, "t");
    size_t pos = json.find("\"value\":");
    ASSERT_NE(pos, std::string::npos) << json;
    double parsed = std::strtod(json.c_str() + pos + 8, nullptr);
    EXPECT_EQ(parsed, v) << json;
  }
}

TEST(SerializationTest, TextFormatOneLinePerMetric) {
  MetricValue c;
  c.name = "test.text_counter";
  c.kind = MetricKind::kCounter;
  c.counter = 42;
  std::string text = FormatMetricsText({c});
  EXPECT_NE(text.find("test.text_counter 42"), std::string::npos) << text;
}

TEST(RegistryTest, ConcurrentIncrementsSumExactly) {
  Registry& reg = Registry::Global();
  Counter& c = reg.GetCounter("test.concurrent_counter");
  Histogram& h = reg.GetHistogram("test.concurrent_hist", {10.0, 100.0});
  c.Reset();
  h.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Observe(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.count(), uint64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(h.BucketCounts()[0], uint64_t{kThreads} * kPerThread);
}

TEST(RegistryTest, GaugeAddIsAtomic) {
  Gauge& g = Registry::Global().GetGauge("test.concurrent_gauge");
  g.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
}

// The parallel::Stats shims must report exactly what the registry holds:
// they are the same storage.
TEST(ShimTest, ParallelStatsMatchRegistry) {
  namespace par = util::parallel;
  par::ResetStats();
  std::vector<std::atomic<uint32_t>> hits(512);
  for (auto& hit : hits) hit.store(0);
  par::Options opt;
  opt.num_threads = 4;
  par::ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
                   opt);

  par::StatsSnapshot snap = par::SnapshotStats();
  EXPECT_GE(snap.invocations, 1u);
  EXPECT_GE(snap.items, hits.size());
  Registry& reg = Registry::Global();
  EXPECT_EQ(reg.GetCounter(kMParallelInvocations).value(), snap.invocations);
  EXPECT_EQ(reg.GetCounter(kMParallelSerialInvocations).value(),
            snap.serial_invocations);
  EXPECT_EQ(reg.GetCounter(kMParallelItems).value(), snap.items);
  EXPECT_EQ(reg.GetCounter(kMParallelChunks).value(), snap.chunks);
  EXPECT_EQ(reg.GetCounter(kMParallelSteals).value(), snap.steals);
  EXPECT_EQ(reg.GetCounter(kMParallelParticipants).value(),
            snap.participants);
  EXPECT_EQ(reg.GetCounter(kMParallelSlotsOffered).value(),
            snap.slots_offered);

  // FormatStats renders the same snapshot.
  std::string line = par::FormatStats();
  EXPECT_NE(line.find(std::to_string(snap.items)), std::string::npos)
      << line;
}

TEST(RegistryTest, ResetValuesForTestKeepsRegistrations) {
  Registry& reg = Registry::Global();
  Counter& c = reg.GetCounter("test.reset_counter");
  c.Increment(9);
  reg.ResetValuesForTest();
  EXPECT_TRUE(reg.IsRegistered("test.reset_counter"));
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.GetCounter("test.reset_counter"), &c);
}

}  // namespace
}  // namespace autotest::metrics
