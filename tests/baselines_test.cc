#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "datagen/corpus_gen.h"
#include "embed/embedding.h"
#include "typedet/cta_zoo.h"

namespace autotest::baselines {
namespace {

table::Column MonthColumnWithError() {
  table::Column c;
  c.name = "month";
  for (const char* m : {"january", "february", "march", "april", "may",
                        "june", "july", "august", "september", "october",
                        "november", "december", "january", "march"}) {
    c.values.push_back(m);
  }
  c.values.push_back("febuary");  // typo at the last row
  return c;
}

table::Column FiscalYearColumnWithError() {
  table::Column c;
  c.name = "fy";
  for (int i = 10; i < 24; ++i) c.values.push_back("fy" + std::to_string(i));
  c.values.push_back("fy definition");  // metadata leak (paper C5)
  return c;
}

bool Flags(const std::vector<eval::ScoredCell>& cells, size_t row) {
  for (const auto& c : cells) {
    if (c.row == row) return true;
  }
  return false;
}

TEST(RegexDetectorTest, FlagsPatternBreaker) {
  RegexDetector regex;
  table::Column c = FiscalYearColumnWithError();
  auto cells = regex.Detect(c);
  EXPECT_TRUE(Flags(cells, c.values.size() - 1));
  // Scores are the dominant fraction.
  for (const auto& cell : cells) {
    EXPECT_GT(cell.score, 0.8);
    EXPECT_LE(cell.score, 1.0);
  }
}

TEST(RegexDetectorTest, NoDominantPatternNoFlags) {
  RegexDetector regex;
  table::Column c;
  c.values = {"a1", "bb", "c-3", "dd dd", "12", "x@y"};
  EXPECT_TRUE(regex.Detect(c).empty());
}

TEST(FunctionDetectorTest, FlagsInvalidDate) {
  FunctionDetector det("dataprep", "dataprep-sim");
  table::Column c;
  for (int i = 1; i <= 20; ++i) {
    c.values.push_back("5/" + std::to_string(i) + "/2022");
  }
  c.values.push_back("june");
  auto cells = det.Detect(c);
  EXPECT_TRUE(Flags(cells, c.values.size() - 1));
  EXPECT_EQ(cells.size(), 1u);
}

TEST(FunctionDetectorTest, SilentWhenNoValidatorMatches) {
  FunctionDetector det("validators", "validators-sim");
  table::Column c = MonthColumnWithError();
  EXPECT_TRUE(det.Detect(c).empty());
}

TEST(KataraSimTest, FlagsNonMembers) {
  KataraSim katara;
  table::Column c = MonthColumnWithError();
  auto cells = katara.Detect(c);
  EXPECT_TRUE(Flags(cells, c.values.size() - 1));
}

TEST(KataraSimTest, SilentOnUnknownDomains) {
  KataraSim katara;
  table::Column c;
  c.values = {"zz1", "zz2", "zz3", "zz4"};
  EXPECT_TRUE(katara.Detect(c).empty());
}

TEST(KataraSimTest, StaticThresholdFlagsRareValuesToo) {
  // Katara's weakness (motivates calibrated SDCs): a rare-but-valid tail
  // value that the KB happens to miss... here tail members ARE in the KB,
  // so instead verify typos are flagged while members are not.
  KataraSim katara;
  table::Column c = MonthColumnWithError();
  auto cells = katara.Detect(c);
  EXPECT_EQ(cells.size(), 1u);
}

TEST(VendorSimTest, VendorAFlagsPatternViolation) {
  VendorSim a(VendorSim::Kind::kA);
  table::Column c = FiscalYearColumnWithError();
  EXPECT_TRUE(Flags(a.Detect(c), c.values.size() - 1));
}

TEST(VendorSimTest, VendorBFlagsDigitIntrusion) {
  VendorSim b(VendorSim::Kind::kB);
  table::Column c = MonthColumnWithError();
  c.values.push_back("12345");
  EXPECT_TRUE(Flags(b.Detect(c), c.values.size() - 1));
}

TEST(LlmSimTest, DeterministicAndFlatScores) {
  LlmSim llm(LlmSim::PaperVariants().front());
  table::Column c = MonthColumnWithError();
  auto a = llm.Detect(c);
  auto b = llm.Detect(c);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_DOUBLE_EQ(a[i].score, 1.0);
  }
}

TEST(LlmSimTest, VariantsDiffer) {
  auto variants = LlmSim::PaperVariants();
  EXPECT_EQ(variants.size(), 5u);
  EXPECT_NE(variants[0].name, variants[1].name);
}

TEST(CtaZScoreTest, FlagsIncompatibleValue) {
  auto zoo = typedet::TrainSherlockSim();
  CtaZScoreDetector det("sherlock", zoo.get());
  table::Column c;
  c.name = "state";
  for (const char* s : {"fl", "az", "ca", "ok", "al", "ga", "tx", "ny",
                        "wa", "or", "il", "mi", "oh", "pa", "nc", "va"}) {
    c.values.push_back(s);
  }
  c.values.push_back("germany");
  EXPECT_TRUE(Flags(det.Detect(c), c.values.size() - 1));
}

TEST(EmbeddingZScoreTest, FlagsFarValueButAlsoRareOnes) {
  auto glove = embed::MakeGloveSim();
  EmbeddingZScoreDetector det("glove", glove.get());
  table::Column c;
  c.name = "name";
  for (const char* s : {"james", "mary", "john", "linda", "sarah", "karen",
                        "kevin", "brian", "laura", "emma", "peter",
                        "helen"}) {
    c.values.push_back(s);
  }
  c.values.push_back("omayra");  // rare valid name: OOV for GloVe
  auto cells = det.Detect(c);
  // This is the paper's Example-2 false positive: the naive embedding
  // baseline flags the rare-but-valid name.
  EXPECT_TRUE(Flags(cells, c.values.size() - 1));
}

TEST(OutlierBaselineTest, AllKindsRun) {
  table::Column c = MonthColumnWithError();
  for (OutlierKind kind :
       {OutlierKind::kLof, OutlierKind::kDbod, OutlierKind::kRkde,
        OutlierKind::kPpca, OutlierKind::kIForest, OutlierKind::kSvdd}) {
    OutlierDetectorBaseline det(kind);
    auto cells = det.Detect(c);  // must not crash; may or may not flag
    for (const auto& cell : cells) {
      EXPECT_LT(cell.row, c.values.size());
    }
  }
}

TEST(AutoDetectSimTest, FlagsRareCooccurrence) {
  auto corpus = datagen::GenerateCorpus(datagen::TablibProfile(400, 51));
  AutoDetectSim sim = AutoDetectSim::Train(corpus);
  table::Column c = FiscalYearColumnWithError();
  auto cells = sim.Detect(c);
  EXPECT_TRUE(Flags(cells, c.values.size() - 1));
}

}  // namespace
}  // namespace autotest::baselines
