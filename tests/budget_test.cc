// util/budget + util/circuit_breaker: per-request resource budgets and
// the deterministic tenant circuit breaker (DESIGN.md §4j).
//
// Everything runs over a VirtualClock — breaker cooldowns and budget
// deadlines are exercised with exact expectations and zero real sleeping.
// Metric assertions are delta-based (value snapshots before/after) so the
// suite stays order-independent.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/budget.h"
#include "util/circuit_breaker.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/retry.h"
#include "util/status.h"

namespace autotest::util {
namespace {

uint64_t CounterValue(std::string_view name) {
  return metrics::Registry::Global().GetCounter(name).value();
}

// ---------------------------------------------------------------------------
// ResourceBudget
// ---------------------------------------------------------------------------

TEST(ResourceBudgetTest, UnlimitedBudgetAcceptsEverything) {
  ResourceBudget budget;  // all limits zero = disabled
  EXPECT_TRUE(budget.TryCharge(ResourceKind::kBytes, ~uint64_t{0} / 2,
                               "huge")
                  .ok());
  EXPECT_TRUE(budget.TryCharge(ResourceKind::kRows, 1'000'000, "rows").ok());
  EXPECT_TRUE(budget.CheckDeadline("any").ok());
  EXPECT_FALSE(budget.exhausted());
}

TEST(ResourceBudgetTest, OverLimitChargeIsRejectedAndRolledBack) {
  ResourceLimits limits;
  limits.max_bytes = 100;
  ResourceBudget budget(limits);

  EXPECT_TRUE(budget.TryCharge(ResourceKind::kBytes, 60, "first").ok());
  EXPECT_EQ(budget.used(ResourceKind::kBytes), 60u);

  Status over = budget.TryCharge(ResourceKind::kBytes, 41, "second");
  ASSERT_EQ(over.code(), StatusCode::kResourceExhausted);
  // The rejected charge must not linger in the accounting.
  EXPECT_EQ(budget.used(ResourceKind::kBytes), 60u);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.rejections(), 1u);
  EXPECT_EQ(budget.charges(), 2u);
  // The diagnostic names the dimension, the culprit and the usage.
  EXPECT_NE(over.ToString().find("bytes"), std::string::npos)
      << over.ToString();
  EXPECT_NE(over.ToString().find("second"), std::string::npos)
      << over.ToString();

  // Exactly at the cap is still in budget.
  EXPECT_TRUE(budget.TryCharge(ResourceKind::kBytes, 40, "third").ok());
  EXPECT_EQ(budget.used(ResourceKind::kBytes), 100u);
}

TEST(ResourceBudgetTest, DimensionsAreIndependent) {
  ResourceLimits limits;
  limits.max_rows = 2;
  ResourceBudget budget(limits);
  EXPECT_TRUE(budget.TryCharge(ResourceKind::kRows, 2, "rows").ok());
  EXPECT_EQ(budget.TryCharge(ResourceKind::kRows, 1, "rows").code(),
            StatusCode::kResourceExhausted);
  // Bytes and cells are unlimited in this budget.
  EXPECT_TRUE(budget.TryCharge(ResourceKind::kBytes, 1 << 20, "bytes").ok());
  EXPECT_TRUE(budget.TryCharge(ResourceKind::kCells, 1 << 20, "cells").ok());
}

TEST(ResourceBudgetTest, ReleaseReturnsUnitsAndSaturatesAtZero) {
  ResourceLimits limits;
  limits.max_cells = 10;
  ResourceBudget budget(limits);
  EXPECT_TRUE(budget.TryCharge(ResourceKind::kCells, 10, "fill").ok());
  EXPECT_EQ(budget.TryCharge(ResourceKind::kCells, 1, "over").code(),
            StatusCode::kResourceExhausted);
  budget.Release(ResourceKind::kCells, 4);
  EXPECT_EQ(budget.used(ResourceKind::kCells), 6u);
  EXPECT_TRUE(budget.TryCharge(ResourceKind::kCells, 4, "refill").ok());
  // Releasing more than was charged is a bug but must not wrap.
  budget.Release(ResourceKind::kCells, 1'000'000);
  EXPECT_EQ(budget.used(ResourceKind::kCells), 0u);
}

TEST(ResourceBudgetTest, DeadlineChecksAgainstInjectedClock) {
  VirtualClock clock;
  ResourceLimits limits;
  limits.clock = &clock;
  limits.deadline_micros = 1'000;
  ResourceBudget budget(limits);
  EXPECT_TRUE(budget.CheckDeadline("parse").ok());
  clock.Advance(999);
  EXPECT_TRUE(budget.CheckDeadline("parse").ok());
  clock.Advance(2);
  Status late = budget.CheckDeadline("predict");
  ASSERT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(late.ToString().find("predict"), std::string::npos)
      << late.ToString();
}

TEST(ResourceBudgetTest, ConcurrentChargesNeverOvershootTheCap) {
  ResourceLimits limits;
  limits.max_cells = 1000;
  ResourceBudget budget(limits);
  constexpr int kThreads = 4;
  constexpr int kChargesPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget] {
      for (int i = 0; i < kChargesPerThread; ++i) {
        (void)budget.TryCharge(ResourceKind::kCells, 1, "worker");
      }
    });
  }
  for (auto& th : threads) th.join();
  // Rollback keeps the accounting exact under contention: used() is the
  // cap, never above, and accepted + rejected == attempted.
  EXPECT_EQ(budget.used(ResourceKind::kCells), 1000u);
  EXPECT_EQ(budget.charges(), uint64_t{kThreads} * kChargesPerThread);
  EXPECT_EQ(budget.rejections(),
            uint64_t{kThreads} * kChargesPerThread - 1000u);
}

// ---------------------------------------------------------------------------
// BudgetScope
// ---------------------------------------------------------------------------

TEST(BudgetScopeTest, ReleasesEverythingOnDestruction) {
  ResourceLimits limits;
  limits.max_bytes = 100;
  ResourceBudget shared(limits);
  {
    BudgetScope scope(&shared);
    EXPECT_TRUE(scope.TryCharge(ResourceKind::kBytes, 80, "req A").ok());
    EXPECT_EQ(scope.held(ResourceKind::kBytes), 80u);
    // A second consumer cannot fit while the first holds its allowance.
    EXPECT_EQ(shared.TryCharge(ResourceKind::kBytes, 30, "req B").code(),
              StatusCode::kResourceExhausted);
  }
  // Scope death returned the allowance; the next request fits again.
  EXPECT_EQ(shared.used(ResourceKind::kBytes), 0u);
  EXPECT_TRUE(shared.TryCharge(ResourceKind::kBytes, 30, "req B").ok());
}

TEST(BudgetScopeTest, FailedChargeHoldsNothing) {
  ResourceLimits limits;
  limits.max_rows = 5;
  ResourceBudget budget(limits);
  BudgetScope scope(&budget);
  EXPECT_TRUE(scope.TryCharge(ResourceKind::kRows, 5, "fits").ok());
  EXPECT_EQ(scope.TryCharge(ResourceKind::kRows, 1, "over").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(scope.held(ResourceKind::kRows), 5u);
  scope.ReleaseAll();
  EXPECT_EQ(budget.used(ResourceKind::kRows), 0u);
  scope.ReleaseAll();  // idempotent
  EXPECT_EQ(budget.used(ResourceKind::kRows), 0u);
}

TEST(BudgetScopeTest, NullBudgetScopeIsANoOp) {
  BudgetScope scope;
  EXPECT_TRUE(scope.TryCharge(ResourceKind::kBytes, 1 << 30, "any").ok());
  EXPECT_EQ(scope.held(ResourceKind::kBytes), 0u);
}

TEST(BudgetScopeTest, ChargeFailpointInjectsRejection) {
  FailpointRegistry::Global().Reset();
  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("budget.charge=on").ok());
  ResourceBudget unlimited;
  Status injected =
      unlimited.TryCharge(ResourceKind::kBytes, 1, "tiny charge");
  EXPECT_EQ(injected.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(unlimited.exhausted());
  FailpointRegistry::Global().Reset();
  EXPECT_TRUE(
      unlimited.TryCharge(ResourceKind::kBytes, 1, "tiny charge").ok());
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

struct BreakerMetricsSnapshot {
  uint64_t opened = CounterValue(metrics::kMServeBreakerOpenTotal);
  uint64_t half_opened = CounterValue(metrics::kMServeBreakerHalfOpenTotal);
  uint64_t closed = CounterValue(metrics::kMServeBreakerClosedTotal);
  uint64_t rejected = CounterValue(metrics::kMServeBreakerRejections);
};

TEST(CircuitBreakerTest, FullLifecycleIsDeterministic) {
  VirtualClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.cooldown_micros = 1'000'000;
  CircuitBreaker breaker(options, &clock);
  const BreakerMetricsSnapshot before;

  // Closed: failures below the threshold keep admitting.
  EXPECT_TRUE(breaker.TryAcquire());
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.TryAcquire());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2);

  // A success clears the streak — it takes N *consecutive* failures.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.consecutive_failures(), 0);

  // Exactly N consecutive failures trip the breaker.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.TryAcquire());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(CounterValue(metrics::kMServeBreakerOpenTotal),
            before.opened + 1);

  // Open: everything is rejected until the cooldown lapses.
  EXPECT_FALSE(breaker.TryAcquire());
  clock.Advance(999'999);
  EXPECT_FALSE(breaker.TryAcquire());
  EXPECT_EQ(CounterValue(metrics::kMServeBreakerRejections),
            before.rejected + 2);

  // Cooldown done: exactly one probe is admitted, the next caller is not.
  clock.Advance(2);
  EXPECT_TRUE(breaker.TryAcquire());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(CounterValue(metrics::kMServeBreakerHalfOpenTotal),
            before.half_opened + 1);
  EXPECT_FALSE(breaker.TryAcquire());

  // The probe failing re-opens and re-arms the full cooldown.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(CounterValue(metrics::kMServeBreakerOpenTotal),
            before.opened + 2);
  EXPECT_FALSE(breaker.TryAcquire());
  clock.Advance(1'000'001);
  EXPECT_TRUE(breaker.TryAcquire());  // second probe

  // The probe succeeding closes the breaker for good.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(CounterValue(metrics::kMServeBreakerClosedTotal),
            before.closed + 1);
  EXPECT_TRUE(breaker.TryAcquire());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreakerTest, ProbeFailpointPinsTheBreakerOpen) {
  VirtualClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_micros = 1'000;
  CircuitBreaker breaker(options, &clock);
  EXPECT_TRUE(breaker.TryAcquire());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  FailpointRegistry::Global().Reset();
  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("breaker.probe=on").ok());
  // Every would-be probe is denied and the cooldown re-arms, so the
  // breaker never leaves open while the failpoint is armed.
  for (int i = 0; i < 3; ++i) {
    clock.Advance(1'001);
    EXPECT_FALSE(breaker.TryAcquire());
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  }
  FailpointRegistry::Global().Reset();
  clock.Advance(1'001);
  EXPECT_TRUE(breaker.TryAcquire());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerMapTest, KeysAreIsolatedAndOverflowShares) {
  VirtualClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_micros = 1'000'000;
  CircuitBreakerMap map(options, &clock, /*max_tracked=*/2);

  CircuitBreaker& a = map.For("tenant-a\x1f" "1");
  CircuitBreaker& b = map.For("tenant-b\x1f" "1");
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &map.For("tenant-a\x1f" "1"));  // stable reference

  EXPECT_TRUE(a.TryAcquire());
  a.RecordFailure();
  EXPECT_FALSE(a.TryAcquire());
  // Tripping tenant-a leaves tenant-b untouched.
  EXPECT_TRUE(b.TryAcquire());
  b.RecordSuccess();

  // Past the cap, distinct keys collapse onto one overflow breaker so a
  // key-inventing client cannot grow the map unboundedly.
  EXPECT_EQ(map.size(), 2u);
  CircuitBreaker& c = map.For("tenant-c\x1f" "1");
  CircuitBreaker& d = map.For("tenant-d\x1f" "1");
  EXPECT_EQ(&c, &d);
  EXPECT_EQ(map.size(), 2u);
}

}  // namespace
}  // namespace autotest::util
