#include <gtest/gtest.h>

#include <set>

#include "core/auto_test.h"
#include "core/predictor.h"
#include "core/sdc.h"
#include "core/selection.h"
#include "core/trainer.h"
#include "datagen/corpus_gen.h"
#include "typedet/eval_functions.h"

namespace autotest::core {
namespace {

// A deterministic toy evaluation function: distance = |value| / 10, capped
// at 1. Short values are "in domain", long values are "out".
class LengthEval : public typedet::DomainEvalFunction {
 public:
  LengthEval() : DomainEvalFunction("test:length", typedet::Family::kCta) {}
  double Distance(const std::string& value) const override {
    return std::min(1.0, static_cast<double>(value.size()) / 10.0);
  }
  double min_distance() const override { return 0.0; }
  double max_distance() const override { return 1.0; }
  std::string Describe() const override { return "length/10"; }
};

TEST(ProfileTest, CountsAndPrecondition) {
  LengthEval eval;
  table::Column c;
  c.values = {"ab", "ab", "abcd", "abcdefghijkl"};
  ColumnDistanceProfile p = ComputeProfile(eval, table::Distinct(c));
  EXPECT_EQ(p.total_weight, 4u);
  EXPECT_EQ(p.CountWithin(0.2), 2u);   // "ab" x2 at distance 0.2
  EXPECT_EQ(p.CountWithin(0.4), 3u);   // plus "abcd" at 0.4
  EXPECT_EQ(p.CountBeyond(0.9), 1u);   // the 12-char value has distance 1.0
  EXPECT_TRUE(p.PreconditionHolds(0.4, 0.75));
  EXPECT_FALSE(p.PreconditionHolds(0.4, 0.8));
}

TEST(ProfileTest, EmptyColumn) {
  LengthEval eval;
  table::Column c;
  ColumnDistanceProfile p = ComputeProfile(eval, table::Distinct(c));
  EXPECT_EQ(p.total_weight, 0u);
  EXPECT_FALSE(p.PreconditionHolds(1.0, 0.0));
}

TEST(SdcTest, DescribeMentionsParameters) {
  LengthEval eval;
  Sdc sdc;
  sdc.eval = &eval;
  sdc.d_in = 0.2;
  sdc.d_out = 0.8;
  sdc.m = 0.9;
  sdc.confidence = 0.93;
  std::string text = sdc.Describe();
  EXPECT_NE(text.find("90%"), std::string::npos);
  EXPECT_NE(text.find("length/10"), std::string::npos);
  EXPECT_NE(text.find("0.93"), std::string::npos);
}

TEST(SyntheticCorpusTest, AlienValuesAreAlien) {
  auto corpus = datagen::GenerateCorpus(datagen::TablibProfile(200, 3));
  auto syn = BuildSyntheticCorpus(corpus, 300, 42);
  EXPECT_EQ(syn.size(), 300u);
  for (const auto& s : syn) {
    ASSERT_LT(s.base_column, corpus.size());
    // The alien value must not already occur in the base column.
    const auto& base = corpus[s.base_column];
    for (const auto& v : base.values) EXPECT_NE(v, s.error_value);
  }
}

TEST(SyntheticCorpusTest, IdenticalColumnsAbortInsteadOfSpinning) {
  // Regression: when every donor value is present in every base column no
  // alien value exists; the rejection loop used to spin forever. It must
  // now hit the attempt cap and abort with a diagnostic.
  table::Corpus corpus;
  table::Column c;
  c.name = "dup";
  c.values = {"a", "b", "c"};
  corpus.push_back(c);
  corpus.push_back(c);
  EXPECT_DEATH(BuildSyntheticCorpus(corpus, 4, 7),
               "alien donor values");
}

TEST(SyntheticCorpusTest, Deterministic) {
  auto corpus = datagen::GenerateCorpus(datagen::TablibProfile(100, 3));
  auto a = BuildSyntheticCorpus(corpus, 100, 7);
  auto b = BuildSyntheticCorpus(corpus, 100, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].base_column, b[i].base_column);
    EXPECT_EQ(a[i].error_value, b[i].error_value);
  }
}

// Shared small end-to-end fixture: training is expensive, do it once.
class TrainedFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new table::Corpus(
        datagen::GenerateCorpus(datagen::RelationalTablesProfile(1200, 11)));
    AutoTestConfig config;
    config.eval_options.embedding_centroids_per_model = 60;
    config.train_options.synthetic_count = 400;
    at_ = new AutoTest(AutoTest::Train(*corpus_, config));
  }
  static void TearDownTestSuite() {
    delete at_;
    at_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }
  static table::Corpus* corpus_;
  static AutoTest* at_;
};

table::Corpus* TrainedFixture::corpus_ = nullptr;
AutoTest* TrainedFixture::at_ = nullptr;

TEST_F(TrainedFixture, SurvivorsExistAndAreSane) {
  const TrainedModel& m = at_->model();
  EXPECT_GT(m.constraints.size(), 50u);
  EXPECT_GT(m.candidates_enumerated, 10000u);
  EXPECT_EQ(m.constraints.size(), m.detections.size());
  for (const auto& sdc : m.constraints) {
    EXPECT_GE(sdc.confidence, 0.8);
    EXPECT_LE(sdc.confidence, 1.0);
    EXPECT_GE(sdc.fpr, 0.0);
    EXPECT_LT(sdc.fpr, 0.5);
    EXPECT_GT(sdc.d_out, sdc.d_in);
    EXPECT_GE(sdc.m, 0.69);
    EXPECT_NE(sdc.eval, nullptr);
    EXPECT_GE(sdc.cohens_h, 0.8);
    EXPECT_LT(sdc.chi_squared_p, 0.05);
  }
}

TEST_F(TrainedFixture, AllFamiliesContribute) {
  std::set<typedet::Family> families;
  for (const auto& sdc : at_->model().constraints) {
    families.insert(sdc.eval->family());
  }
  EXPECT_TRUE(families.count(typedet::Family::kPattern));
  EXPECT_TRUE(families.count(typedet::Family::kFunction));
  EXPECT_TRUE(families.count(typedet::Family::kEmbedding));
  EXPECT_TRUE(families.count(typedet::Family::kCta));
}

TEST_F(TrainedFixture, PredictorDetectsPlantedErrors) {
  auto predictor = at_->MakePredictor(Variant::kAllConstraints);
  // A date column with a metadata placeholder (paper column C7).
  table::Column dates;
  dates.name = "date";
  for (int i = 1; i <= 25; ++i) {
    dates.values.push_back("3/" + std::to_string(i) + "/2021");
  }
  dates.values.push_back("new facility");
  auto detections = predictor.Predict(dates);
  bool found = false;
  for (const auto& d : detections) {
    if (d.value == "new facility") found = true;
    EXPECT_GT(d.confidence, 0.0);
    EXPECT_FALSE(d.explanation.empty());
  }
  EXPECT_TRUE(found);
  // No valid date should be flagged.
  for (const auto& d : detections) {
    EXPECT_EQ(d.value, "new facility") << d.value;
  }
}

TEST_F(TrainedFixture, PredictorDetectsIncompatibleInStateColumn) {
  auto predictor = at_->MakePredictor(Variant::kAllConstraints);
  table::Column states;
  states.name = "state";
  for (const char* s : {"fl", "az", "ca", "ok", "al", "ga", "tx", "ny",
                        "wa", "or", "il", "mi", "oh", "pa", "nc", "va",
                        "tn", "mo", "md", "ma"}) {
    states.values.push_back(s);
  }
  states.values.push_back("germany");  // paper column C2
  auto detections = predictor.Predict(states);
  bool found = false;
  for (const auto& d : detections) {
    if (d.value == "germany") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TrainedFixture, PredictorSparesRareValidValues) {
  auto predictor = at_->MakePredictor(Variant::kAllConstraints);
  // The paper's Figure-3 trap: uncommon names are NOT errors.
  table::Column names;
  names.name = "first_name";
  for (const char* s : {"aaron", "vicky", "david", "angie", "bruce",
                        "james", "mary", "john", "linda", "sarah",
                        "karen", "kevin", "brian", "laura", "emma",
                        "peter", "helen", "anna", "grace", "ruth"}) {
    names.values.push_back(s);
  }
  names.values.push_back("omayra");  // rare but valid
  auto detections = predictor.Predict(names);
  for (const auto& d : detections) {
    EXPECT_NE(d.value, "omayra") << "rare valid value misflagged";
  }
}

TEST_F(TrainedFixture, SelectionRespectsIndices) {
  SelectionOptions opt;
  opt.size_budget = 50;
  opt.fpr_budget = 0.05;
  auto coarse = CoarseSelect(at_->model(), opt);
  ASSERT_EQ(coarse.lp_status, lp::SolveStatus::kOptimal);
  for (size_t i : coarse.selected) {
    EXPECT_LT(i, at_->model().constraints.size());
  }
  // Rounding is in expectation; allow generous slack over the budget.
  EXPECT_LE(coarse.selected.size(), 2 * opt.size_budget + 20);
}

TEST_F(TrainedFixture, FineSelectWithDeltaOneEqualsCoarse) {
  SelectionOptions opt;
  opt.size_budget = 60;
  opt.seed = 99;
  auto coarse = CoarseSelect(at_->model(), opt);
  opt.delta = 1.0;
  auto fine = FineSelect(at_->model(), opt);
  EXPECT_EQ(coarse.selected, fine.selected);
}

TEST_F(TrainedFixture, RepairEnforcesBudgets) {
  SelectionOptions opt;
  opt.size_budget = 30;
  opt.fpr_budget = 0.03;
  opt.repair_to_budgets = true;
  auto r = FineSelect(at_->model(), opt);
  EXPECT_LE(r.selected.size(), opt.size_budget);
  double fpr = 0.0;
  for (size_t i : r.selected) fpr += at_->model().constraints[i].fpr;
  EXPECT_LE(fpr, opt.fpr_budget + 1e-9);
}

TEST_F(TrainedFixture, FineSelectKeepsQualityWithFewRules) {
  // Fine-Select with a tight budget should still detect the easy errors.
  SelectionOptions opt;
  opt.size_budget = 100;
  auto predictor = at_->MakePredictor(Variant::kFineSelect, &opt);
  EXPECT_GT(predictor.num_rules(), 0u);
  EXPECT_LE(predictor.num_rules(), 300u);

  table::Column dates;
  dates.name = "d";
  for (int i = 1; i <= 30; ++i) {
    dates.values.push_back("4/" + std::to_string(i % 28 + 1) + "/2019");
  }
  dates.values.push_back("n/a");
  bool found = false;
  for (const auto& d : predictor.Predict(dates)) {
    if (d.value == "n/a") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TrainedFixture, SelectionDeterministicInSeed) {
  SelectionOptions opt;
  opt.seed = 5;
  auto a = FineSelect(at_->model(), opt);
  auto b = FineSelect(at_->model(), opt);
  EXPECT_EQ(a.selected, b.selected);
}

TEST_F(TrainedFixture, VariantNames) {
  EXPECT_STREQ(VariantName(Variant::kAllConstraints), "all-constraints");
  EXPECT_STREQ(VariantName(Variant::kFineSelect), "fine-select");
}

TEST(RobustnessTest, RandomHashCandidatesAllRejected) {
  // Paper Section 6.5: adversarial random-hash SDCs must be filtered out
  // by the statistical tests.
  auto corpus = datagen::GenerateCorpus(datagen::TablibProfile(400, 21));
  typedet::EvalFunctionSetOptions eval_opt;
  eval_opt.include_cta = false;
  eval_opt.include_embedding = false;
  eval_opt.include_pattern = false;
  eval_opt.include_function = false;
  eval_opt.num_random_hash = 100;
  auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);
  TrainOptions topt;
  topt.synthetic_count = 100;
  // The paper's Appendix-B.1 worked example uses c_thres = 0.9.
  topt.min_confidence = 0.9;
  auto model = TrainAutoTest(corpus, evals, topt);
  EXPECT_EQ(model.constraints.size(), 0u);
}

TEST(TrainerTest, PruningOnlySkipsHopelessCandidates) {
  // With and without the Appendix-B.1 bound, the surviving set must be
  // identical (the bound is a pure optimization).
  auto corpus = datagen::GenerateCorpus(datagen::TablibProfile(250, 31));
  typedet::EvalFunctionSetOptions eval_opt;
  eval_opt.include_cta = false;
  eval_opt.include_embedding = false;
  auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);
  TrainOptions with;
  with.synthetic_count = 100;
  with.enable_pruning = true;
  TrainOptions without = with;
  without.enable_pruning = false;
  auto a = TrainAutoTest(corpus, evals, with);
  auto b = TrainAutoTest(corpus, evals, without);
  EXPECT_GT(a.candidates_pruned, 0u);
  EXPECT_EQ(b.candidates_pruned, 0u);
  ASSERT_EQ(a.constraints.size(), b.constraints.size());
  for (size_t i = 0; i < a.constraints.size(); ++i) {
    EXPECT_EQ(a.constraints[i].eval_index, b.constraints[i].eval_index);
    EXPECT_DOUBLE_EQ(a.constraints[i].confidence,
                     b.constraints[i].confidence);
  }
}

TEST(PredictorTest, EmptyColumnAndEmptyRules) {
  SdcPredictor empty({});
  table::Column c;
  c.values = {"a", "b"};
  EXPECT_TRUE(empty.Predict(c).empty());
  table::Column none;
  EXPECT_TRUE(empty.Predict(none).empty());
}

}  // namespace
}  // namespace autotest::core
