#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "datagen/corpus_gen.h"
#include "table/column_store.h"
#include "typedet/cta_zoo.h"
#include "typedet/eval_functions.h"
#include "typedet/validators.h"

namespace autotest::typedet {
namespace {

// ---------------------------------------------------------------------------
// Validators
// ---------------------------------------------------------------------------

TEST(ValidatorsTest, Date) {
  EXPECT_TRUE(ValidateDate("12/3/2020"));
  EXPECT_TRUE(ValidateDate("1/31/1999"));
  EXPECT_TRUE(ValidateDate("2020-02-29"));  // leap year
  EXPECT_TRUE(ValidateDate("4/2/15"));      // 2-digit year
  EXPECT_FALSE(ValidateDate("2019-02-29"));  // not a leap year
  EXPECT_FALSE(ValidateDate("13/1/2020"));
  EXPECT_FALSE(ValidateDate("2/30/2020"));
  EXPECT_FALSE(ValidateDate("new facility"));
  EXPECT_FALSE(ValidateDate("nan"));
  EXPECT_FALSE(ValidateDate("june"));
  EXPECT_FALSE(ValidateDate(""));
}

TEST(ValidatorsTest, Time) {
  EXPECT_TRUE(ValidateTime("14:35"));
  EXPECT_TRUE(ValidateTime("0:00"));
  EXPECT_TRUE(ValidateTime("23:59:59"));
  EXPECT_FALSE(ValidateTime("24:00"));
  EXPECT_FALSE(ValidateTime("12:60"));
  EXPECT_FALSE(ValidateTime("12:5"));
  EXPECT_FALSE(ValidateTime("noon"));
}

TEST(ValidatorsTest, DateTime) {
  EXPECT_TRUE(ValidateDateTime("2020-03-04 12:33:01"));
  EXPECT_FALSE(ValidateDateTime("2020-03-04"));
  EXPECT_FALSE(ValidateDateTime("2020-13-04 12:33:01"));
}

TEST(ValidatorsTest, Url) {
  EXPECT_TRUE(ValidateUrl("https://www.apple.com/products/123"));
  EXPECT_TRUE(ValidateUrl("http://a.io"));
  EXPECT_TRUE(
      ValidateUrl("https://twitter.com/#!/nyctbus/status/803706869944"));
  EXPECT_FALSE(ValidateUrl("_/status/799512626703323140"));
  EXPECT_FALSE(ValidateUrl("new facility"));
  EXPECT_FALSE(ValidateUrl("https://"));
  EXPECT_FALSE(ValidateUrl("ftp://host.com/x"));
  EXPECT_FALSE(ValidateUrl("https://nodot/x"));
}

TEST(ValidatorsTest, Email) {
  EXPECT_TRUE(ValidateEmail("john.doe@example.com"));
  EXPECT_TRUE(ValidateEmail("a+b@sub.domain.org"));
  EXPECT_FALSE(ValidateEmail("@example.com"));
  EXPECT_FALSE(ValidateEmail("a@b"));
  EXPECT_FALSE(ValidateEmail("a b@c.com"));
  EXPECT_FALSE(ValidateEmail("a@@c.com"));
}

TEST(ValidatorsTest, Ipv4) {
  EXPECT_TRUE(ValidateIpv4("192.168.1.1"));
  EXPECT_TRUE(ValidateIpv4("8.8.8.8"));
  EXPECT_FALSE(ValidateIpv4("256.1.1.1"));
  EXPECT_FALSE(ValidateIpv4("1.2.3"));
  EXPECT_FALSE(ValidateIpv4("01.2.3.4"));
  EXPECT_FALSE(ValidateIpv4("a.b.c.d"));
}

TEST(ValidatorsTest, Uuid) {
  EXPECT_TRUE(ValidateUuid("123e4567-e89b-12d3-a456-426614174000"));
  EXPECT_FALSE(ValidateUuid("123e4567e89b12d3a456426614174000"));
  EXPECT_FALSE(ValidateUuid("123e4567-e89b-12d3-a456-42661417400g"));
}

TEST(ValidatorsTest, CreditCardLuhn) {
  EXPECT_TRUE(ValidateCreditCard("4539578763621486"));  // Luhn-valid
  EXPECT_TRUE(ValidateCreditCard("4539 5787 6362 1486"));
  EXPECT_FALSE(ValidateCreditCard("4539578763621487"));  // bad check digit
  EXPECT_FALSE(ValidateCreditCard("123"));
  EXPECT_FALSE(ValidateCreditCard("abcd578763621486"));
}

TEST(ValidatorsTest, Upc) {
  EXPECT_TRUE(ValidateUpc("036000291452"));   // classic example UPC
  EXPECT_FALSE(ValidateUpc("036000291453"));  // bad check digit
  EXPECT_FALSE(ValidateUpc("03600029145"));   // 11 digits
}

TEST(ValidatorsTest, Isbn13) {
  EXPECT_TRUE(ValidateIsbn13("9780306406157"));
  EXPECT_FALSE(ValidateIsbn13("9780306406158"));
  EXPECT_FALSE(ValidateIsbn13("1234567890123"));
}

TEST(ValidatorsTest, PhoneUs) {
  EXPECT_TRUE(ValidatePhoneUs("612-555-0184"));
  EXPECT_TRUE(ValidatePhoneUs("(612) 555-0184"));
  EXPECT_TRUE(ValidatePhoneUs("6125550184"));
  EXPECT_FALSE(ValidatePhoneUs("612-555-018"));
  EXPECT_FALSE(ValidatePhoneUs("112-555-0184"));  // area code starts with 1
  EXPECT_FALSE(ValidatePhoneUs("call me"));
}

TEST(ValidatorsTest, Percent) {
  EXPECT_TRUE(ValidatePercent("12.5%"));
  EXPECT_TRUE(ValidatePercent("0.05%"));
  EXPECT_TRUE(ValidatePercent("-3%"));
  EXPECT_FALSE(ValidatePercent("12.5"));
  EXPECT_FALSE(ValidatePercent("%"));
  EXPECT_FALSE(ValidatePercent("a%"));
}

TEST(ValidatorsTest, HexColor) {
  EXPECT_TRUE(ValidateHexColor("#a3f2c1"));
  EXPECT_TRUE(ValidateHexColor("#fff"));
  EXPECT_FALSE(ValidateHexColor("a3f2c1"));
  EXPECT_FALSE(ValidateHexColor("#a3f2cg"));
}

TEST(ValidatorsTest, MacAddress) {
  EXPECT_TRUE(ValidateMacAddress("00:1a:2b:3c:4d:5e"));
  EXPECT_TRUE(ValidateMacAddress("00-1A-2B-3C-4D-5E"));
  EXPECT_FALSE(ValidateMacAddress("00:1a:2b:3c:4d"));
  EXPECT_FALSE(ValidateMacAddress("00:1a:2b:3c:4d:5g"));
}

TEST(ValidatorsTest, WebDomain) {
  EXPECT_TRUE(ValidateWebDomain("apple.com"));
  EXPECT_TRUE(ValidateWebDomain("google.com.hk"));
  EXPECT_TRUE(ValidateWebDomain("dyndns.info"));
  EXPECT_FALSE(ValidateWebDomain("https://apple.com"));
  EXPECT_FALSE(ValidateWebDomain("no_dot"));
  EXPECT_FALSE(ValidateWebDomain("bad..dot.com"));
}

TEST(ValidatorsTest, Iban) {
  // Valid German IBAN (ISO 7064 mod-97 == 1).
  EXPECT_TRUE(ValidateIban("DE89370400440532013000"));
  EXPECT_TRUE(ValidateIban("DE89 3704 0044 0532 0130 00"));
  EXPECT_FALSE(ValidateIban("DE88370400440532013000"));  // bad check
  EXPECT_FALSE(ValidateIban("D989370400440532013000"));  // bad country
  EXPECT_FALSE(ValidateIban("DE8937040"));               // too short
}

TEST(ValidatorsTest, Version) {
  EXPECT_TRUE(ValidateVersion("1.2.3"));
  EXPECT_TRUE(ValidateVersion("v2.0"));
  EXPECT_TRUE(ValidateVersion("10.4.1.2"));
  EXPECT_FALSE(ValidateVersion("1"));
  EXPECT_FALSE(ValidateVersion("1."));
  EXPECT_FALSE(ValidateVersion("a.b.c"));
  EXPECT_FALSE(ValidateVersion("1.2.3.4.5"));
}

TEST(ValidatorsTest, LatLon) {
  EXPECT_TRUE(ValidateLatLon("44.9778,-93.2650"));
  EXPECT_TRUE(ValidateLatLon("-90,180"));
  EXPECT_FALSE(ValidateLatLon("91,0"));
  EXPECT_FALSE(ValidateLatLon("44.9778"));
  EXPECT_FALSE(ValidateLatLon("north,west"));
}

TEST(ValidatorsTest, RegistryComplete) {
  EXPECT_GE(AllValidators().size(), 8u);  // paper uses 8; we ship more
  for (const auto& v : AllValidators()) {
    EXPECT_TRUE(v.library == "dataprep-sim" || v.library == "validators-sim");
    EXPECT_NE(v.fn, nullptr);
  }
}

// ---------------------------------------------------------------------------
// CTA zoos
// ---------------------------------------------------------------------------

class CtaZooTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sherlock_ = TrainSherlockSim().release();
    doduo_ = TrainDoduoSim().release();
  }
  static CtaModelZoo* sherlock_;
  static CtaModelZoo* doduo_;

  static size_t TypeIndex(const CtaModelZoo& zoo, const std::string& name) {
    for (size_t i = 0; i < zoo.type_names().size(); ++i) {
      if (zoo.type_names()[i] == name) return i;
    }
    ADD_FAILURE() << "type not in zoo: " << name;
    return 0;
  }
};

CtaModelZoo* CtaZooTest::sherlock_ = nullptr;
CtaModelZoo* CtaZooTest::doduo_ = nullptr;

TEST_F(CtaZooTest, ZooSizes) {
  EXPECT_GT(doduo_->num_types(), sherlock_->num_types());
  EXPECT_GE(sherlock_->num_types(), 10u);
}

TEST_F(CtaZooTest, CountryClassifierSeparates) {
  size_t t = TypeIndex(*doduo_, "country");
  EXPECT_GT(doduo_->Score(t, "germany"), 0.6);
  EXPECT_GT(doduo_->Score(t, "france"), 0.6);
  EXPECT_LT(doduo_->Score(t, "tt0054215"), 0.3);
  EXPECT_LT(doduo_->Score(t, "12/3/2020"), 0.3);
}

TEST_F(CtaZooTest, StateClassifierFlagsIncompatibles) {
  // The paper's C2 example: "Germany" inside a state-code column.
  size_t t = TypeIndex(*sherlock_, "us_state_code");
  EXPECT_GT(sherlock_->Score(t, "fl"), 0.5);
  EXPECT_GT(sherlock_->Score(t, "ca"), 0.5);
  EXPECT_LT(sherlock_->Score(t, "germany"), 0.2);
}

TEST_F(CtaZooTest, ScoresInRange) {
  for (const char* v : {"germany", "x", "", "12345", "hello world"}) {
    double s = doduo_->Score(0, v);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Evaluation functions & registry
// ---------------------------------------------------------------------------

TEST(EvalFunctionTest, PatternEvalBinaryDistance) {
  auto p = pattern::Pattern::Parse("[a-zA-Z]+\\d+");
  auto f = MakePatternEval(*p);
  EXPECT_EQ(f->family(), Family::kPattern);
  EXPECT_TRUE(f->binary());
  EXPECT_DOUBLE_EQ(f->Distance("fy17"), 0.0);
  EXPECT_DOUBLE_EQ(f->Distance("fy definition"), 1.0);
}

TEST(EvalFunctionTest, FunctionEvalUsesValidator) {
  auto f = MakeFunctionEval(AllValidators().front());  // validate_date
  EXPECT_EQ(f->family(), Family::kFunction);
  EXPECT_DOUBLE_EQ(f->Distance("12/3/2020"), 0.0);
  EXPECT_DOUBLE_EQ(f->Distance("new facility"), 1.0);
}

TEST(EvalFunctionTest, HashEvalUniform) {
  auto f = MakeRandomHashEval(77);
  double d1 = f->Distance("a");
  double d2 = f->Distance("b");
  EXPECT_GE(d1, 0.0);
  EXPECT_LE(d1, 1.0);
  EXPECT_NE(d1, d2);
  EXPECT_DOUBLE_EQ(f->Distance("a"), d1);  // deterministic
}

TEST(EvalFunctionSetTest, BuildAllFamilies) {
  auto corpus = datagen::GenerateCorpus(datagen::TablibProfile(300, 5));
  EvalFunctionSetOptions opt;
  opt.embedding_centroids_per_model = 30;
  auto set = EvalFunctionSet::Build(corpus, opt);
  EXPECT_FALSE(set.FamilyFunctions(Family::kCta).empty());
  EXPECT_FALSE(set.FamilyFunctions(Family::kEmbedding).empty());
  EXPECT_FALSE(set.FamilyFunctions(Family::kPattern).empty());
  EXPECT_FALSE(set.FamilyFunctions(Family::kFunction).empty());
  EXPECT_TRUE(set.FamilyFunctions(Family::kHash).empty());
  // Unique ids.
  std::set<std::string> ids;
  for (const auto& f : set.functions()) ids.insert(f->id());
  EXPECT_EQ(ids.size(), set.size());
}

TEST(EvalFunctionSetTest, AblationSwitches) {
  auto corpus = datagen::GenerateCorpus(datagen::TablibProfile(150, 6));
  EvalFunctionSetOptions opt;
  opt.include_cta = false;
  opt.include_embedding = false;
  opt.embedding_centroids_per_model = 10;
  auto set = EvalFunctionSet::Build(corpus, opt);
  EXPECT_TRUE(set.FamilyFunctions(Family::kCta).empty());
  EXPECT_TRUE(set.FamilyFunctions(Family::kEmbedding).empty());
  EXPECT_FALSE(set.FamilyFunctions(Family::kPattern).empty());
}

TEST(EvalFunctionSetTest, RandomHashInjection) {
  auto corpus = datagen::GenerateCorpus(datagen::TablibProfile(100, 7));
  EvalFunctionSetOptions opt;
  opt.include_cta = false;
  opt.include_embedding = false;
  opt.include_pattern = false;
  opt.include_function = false;
  opt.num_random_hash = 25;
  auto set = EvalFunctionSet::Build(corpus, opt);
  EXPECT_EQ(set.size(), 25u);
  for (const auto& f : set.functions()) {
    EXPECT_EQ(f->family(), Family::kHash);
  }
}

// ---------------------------------------------------------------------------
// BatchDistance parity: for every family in a full eval set, the batched
// override (both without a pool identity and keyed on a ColumnStore pool)
// must be bit-identical to the scalar Distance virtual. This is the
// contract the trainer's columnar path and the zoo/embedding block memos
// rely on (DESIGN.md §4k).
// ---------------------------------------------------------------------------

TEST(EvalFunctionTest, BatchDistanceMatchesScalarAcrossFamilies) {
  // 40 columns: the smallest profile whose mined patterns are non-empty,
  // so the sweep really covers all five families.
  auto corpus = datagen::GenerateCorpus(datagen::RelationalTablesProfile(40));
  EvalFunctionSetOptions opt;
  opt.embedding_centroids_per_model = 5;
  opt.num_random_hash = 2;
  auto set = EvalFunctionSet::Build(corpus, opt);

  table::ColumnStore store = table::ColumnStore::FromCorpus(corpus);
  const std::span<const std::string_view> pool = store.pool();
  ASSERT_GT(pool.size(), 0u);
  // Cap the probe set: parity over a prefix is as binding as the full pool
  // and keeps the sweep over every eval function fast.
  const size_t n = std::min<size_t>(pool.size(), 400);

  bool saw_family[5] = {false, false, false, false, false};
  std::vector<double> keyless(n);
  std::vector<double> keyed(n);
  const size_t block = 64;
  for (const auto& f : set.functions()) {
    saw_family[static_cast<size_t>(f->family())] = true;
    for (size_t off = 0; off < n; off += block) {
      size_t len = std::min(block, n - off);
      f->BatchDistance(pool.subspan(off, len),
                       std::span<double>(keyless).subspan(off, len));
      f->BatchDistance(pool.subspan(off, len),
                       std::span<double>(keyed).subspan(off, len),
                       store.pool_id(), off);
    }
    for (size_t i = 0; i < n; ++i) {
      double scalar = f->Distance(std::string(pool[i]));
      ASSERT_EQ(keyless[i], scalar) << f->id() << " value " << pool[i];
      ASSERT_EQ(keyed[i], scalar) << f->id() << " value " << pool[i];
    }
  }
  for (bool seen : saw_family) EXPECT_TRUE(seen);
}

TEST(SharedZooTest, ProcessSingletonsScoreLikeFresh) {
  EXPECT_EQ(SharedSherlockSim().get(), SharedSherlockSim().get());
  EXPECT_EQ(SharedDoduoSim().get(), SharedDoduoSim().get());
  // The shared instance is trained from the same fixed config, so its
  // scores match a freshly trained zoo exactly.
  auto fresh = TrainSherlockSim();
  auto shared = SharedSherlockSim();
  ASSERT_EQ(fresh->num_types(), shared->num_types());
  for (const std::string v : {"france", "seattle", "not-a-real-value"}) {
    for (size_t t = 0; t < fresh->num_types(); t += 7) {
      EXPECT_EQ(fresh->Score(t, v), shared->Score(t, v)) << v;
    }
  }
}

}  // namespace
}  // namespace autotest::typedet
