// Self-test for tools/at_lint: every rule R1-R9 must fire on its
// violation fixture at exactly the expected location, and the clean
// fixture (which is packed with near-misses — suppressed R2, consumed
// Try* results, annotated declarations, guarded members, post-scope
// I/O, an acyclic lock diamond) must pass. The --audit-suppressions
// pass must flag exactly the disable tags that cover nothing.
//
// The binary path and fixture directory come in via compile definitions
// (see tests/CMakeLists.txt); the test shells out to the real binary so
// the exit-code contract and output format are covered too.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::vector<std::string> lines;  // stdout, one violation per line
};

struct ParsedViolation {
  std::string file;
  size_t line = 0;
  std::string rule;
};

LintRun RunLint(const std::string& args) {
  std::string cmd = std::string(AT_LINT_BINARY) + " --quiet " + args;
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buf[4096];
  std::string current;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    current += buf;
    size_t nl;
    while ((nl = current.find('\n')) != std::string::npos) {
      run.lines.push_back(current.substr(0, nl));
      current.erase(0, nl + 1);
    }
  }
  int rc = pclose(pipe);
  run.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return run;
}

std::string Fixture(const std::string& name) {
  return std::string(AT_LINT_FIXTURES) + "/" + name;
}

// "path/to/file.cc:13: [R1] message" -> {file, 13, "R1"}.
ParsedViolation Parse(const std::string& line) {
  ParsedViolation v;
  size_t bracket = line.find("[R");
  size_t close = line.find(']', bracket);
  EXPECT_NE(bracket, std::string::npos) << line;
  EXPECT_NE(close, std::string::npos) << line;
  v.rule = line.substr(bracket + 1, close - bracket - 1);
  size_t colon2 = line.rfind(':', bracket);
  size_t colon1 = line.rfind(':', colon2 - 1);
  EXPECT_NE(colon1, std::string::npos) << line;
  v.file = line.substr(0, colon1);
  v.line = std::strtoull(line.c_str() + colon1 + 1, nullptr, 10);
  return v;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

TEST(LintTest, CleanFixturePasses) {
  LintRun run = RunLint(Fixture("clean"));
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_TRUE(run.lines.empty())
      << "unexpected violation: " << run.lines.front();
}

TEST(LintTest, R1FiresOnDiscardedTryCall) {
  LintRun run = RunLint(Fixture("bad_r1"));
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.lines.size(), 1u);
  ParsedViolation v = Parse(run.lines[0]);
  EXPECT_EQ(v.rule, "R1");
  EXPECT_TRUE(EndsWith(v.file, "discard.cc")) << v.file;
  EXPECT_EQ(v.line, 13u);
}

TEST(LintTest, R2FiresOnRawNondeterminism) {
  LintRun run = RunLint(Fixture("bad_r2"));
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.lines.size(), 1u);
  ParsedViolation v = Parse(run.lines[0]);
  EXPECT_EQ(v.rule, "R2");
  EXPECT_TRUE(EndsWith(v.file, "nondet.cc")) << v.file;
  EXPECT_EQ(v.line, 8u);
}

TEST(LintTest, R3FiresOnUnknownNameAndDeadRegistration) {
  LintRun run = RunLint(Fixture("bad_r3"));
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.lines.size(), 2u);
  // Output is sorted by file: failpoint.h (dead) before use.cc (unknown).
  ParsedViolation dead = Parse(run.lines[0]);
  EXPECT_EQ(dead.rule, "R3");
  EXPECT_TRUE(EndsWith(dead.file, "failpoint.h")) << dead.file;
  EXPECT_EQ(dead.line, 11u);
  EXPECT_NE(run.lines[0].find("dead.point"), std::string::npos);
  EXPECT_NE(run.lines[0].find("dead registration"), std::string::npos);
  ParsedViolation unknown = Parse(run.lines[1]);
  EXPECT_EQ(unknown.rule, "R3");
  EXPECT_TRUE(EndsWith(unknown.file, "use.cc")) << unknown.file;
  EXPECT_EQ(unknown.line, 12u);
  EXPECT_NE(run.lines[1].find("fixture.unknown"), std::string::npos);
  // The registered-and-used serve.read entry in the fixture must not
  // appear: dotted serving-tier names resolve like any other failpoint.
  for (const std::string& line : run.lines) {
    EXPECT_EQ(line.find("serve.read"), std::string::npos) << line;
  }
}

TEST(LintTest, R4FiresOnAtCheckInUntrustedInputFile) {
  LintRun run = RunLint(Fixture("bad_r4"));
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.lines.size(), 1u);
  ParsedViolation v = Parse(run.lines[0]);
  EXPECT_EQ(v.rule, "R4");
  EXPECT_TRUE(EndsWith(v.file, "csv.cc")) << v.file;
  EXPECT_EQ(v.line, 8u);
}

TEST(LintTest, R5FiresOnMissingNodiscard) {
  LintRun run = RunLint(Fixture("bad_r5"));
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.lines.size(), 2u);
  ParsedViolation status_decl = Parse(run.lines[0]);
  EXPECT_EQ(status_decl.rule, "R5");
  EXPECT_TRUE(EndsWith(status_decl.file, "bad.h")) << status_decl.file;
  EXPECT_EQ(status_decl.line, 14u);
  ParsedViolation result_decl = Parse(run.lines[1]);
  EXPECT_EQ(result_decl.rule, "R5");
  EXPECT_EQ(result_decl.line, 16u);
  EXPECT_NE(run.lines[1].find("Result<T>"), std::string::npos);
}

TEST(LintTest, R6FiresOnUnknownMissingAndDeadMetrics) {
  LintRun run = RunLint(Fixture("bad_r6"));
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.lines.size(), 3u);
  // Output is sorted by file: metrics.h (dead + unlisted) before use.cc
  // (unknown literal).
  ParsedViolation dead = Parse(run.lines[0]);
  EXPECT_EQ(dead.rule, "R6");
  EXPECT_TRUE(EndsWith(dead.file, "metrics.h")) << dead.file;
  EXPECT_EQ(dead.line, 11u);
  EXPECT_NE(run.lines[0].find("fixture.dead_count"), std::string::npos);
  EXPECT_NE(run.lines[0].find("dead registration"), std::string::npos);
  ParsedViolation unlisted = Parse(run.lines[1]);
  EXPECT_EQ(unlisted.rule, "R6");
  EXPECT_EQ(unlisted.line, 13u);
  EXPECT_NE(run.lines[1].find("fixture.unlisted"), std::string::npos);
  EXPECT_NE(run.lines[1].find("missing from the kAllMetrics"),
            std::string::npos);
  ParsedViolation unknown = Parse(run.lines[2]);
  EXPECT_EQ(unknown.rule, "R6");
  EXPECT_TRUE(EndsWith(unknown.file, "use.cc")) << unknown.file;
  EXPECT_EQ(unknown.line, 14u);
  EXPECT_NE(run.lines[2].find("fixture.unknown_metric"), std::string::npos);
  // The registered-and-used serve.* entries must not appear: serve-tier
  // and governance metric names resolve against kAllMetrics like any
  // other.
  for (const std::string& line : run.lines) {
    EXPECT_EQ(line.find("serve.requests_shed"), std::string::npos) << line;
    EXPECT_EQ(line.find("serve.breaker_open_total"), std::string::npos)
        << line;
    EXPECT_EQ(line.find("serve.tenant_rejections"), std::string::npos)
        << line;
  }
}

TEST(LintTest, R1ReportsWrappedStatementAtItsFirstLine) {
  // Regression: a Try* call whose argument list wraps onto the next line
  // must be reported at the line naming the call, and a ternary whose
  // continuation line ends in a Try* call must not fire at all (the
  // continuation used to be re-detected as a fresh statement start).
  LintRun run = RunLint(Fixture("bad_r1_wrap"));
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.lines.size(), 1u);
  ParsedViolation v = Parse(run.lines[0]);
  EXPECT_EQ(v.rule, "R1");
  EXPECT_TRUE(EndsWith(v.file, "span.cc")) << v.file;
  EXPECT_EQ(v.line, 14u);
}

TEST(LintTest, R7FiresOnRawMutexAndUnguardedWrite) {
  LintRun run = RunLint(Fixture("bad_r7"));
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.lines.size(), 2u);
  ParsedViolation unguarded = Parse(run.lines[0]);
  EXPECT_EQ(unguarded.rule, "R7");
  EXPECT_TRUE(EndsWith(unguarded.file, "state.h")) << unguarded.file;
  EXPECT_EQ(unguarded.line, 12u);
  EXPECT_NE(run.lines[0].find("Counter::total_"), std::string::npos);
  EXPECT_NE(run.lines[0].find("AT_GUARDED_BY"), std::string::npos);
  ParsedViolation raw = Parse(run.lines[1]);
  EXPECT_EQ(raw.rule, "R7");
  EXPECT_EQ(raw.line, 16u);
  EXPECT_NE(run.lines[1].find("Counter::mu_"), std::string::npos);
  EXPECT_NE(run.lines[1].find("util::Mutex"), std::string::npos);
}

TEST(LintTest, R8FiresOnBlockingCallUnderLock) {
  LintRun run = RunLint(Fixture("bad_r8"));
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.lines.size(), 1u);
  ParsedViolation v = Parse(run.lines[0]);
  EXPECT_EQ(v.rule, "R8");
  EXPECT_TRUE(EndsWith(v.file, "io.cc")) << v.file;
  EXPECT_EQ(v.line, 17u);
  EXPECT_NE(run.lines[0].find("fopen()"), std::string::npos);
  EXPECT_NE(run.lines[0].find("Logger::mu_"), std::string::npos);
}

TEST(LintTest, R9FiresOnCrossFileLockOrderCycle) {
  LintRun run = RunLint(Fixture("bad_r9"));
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.lines.size(), 1u);
  ParsedViolation v = Parse(run.lines[0]);
  EXPECT_EQ(v.rule, "R9");
  EXPECT_TRUE(EndsWith(v.file, "pair.h")) << v.file;
  EXPECT_EQ(v.line, 11u);
  // The message names the full chain with per-edge provenance from both
  // files: the annotation edge and the reversed nesting edge.
  EXPECT_NE(run.lines[0].find("Pair::a_ -> Pair::b_"), std::string::npos);
  EXPECT_NE(run.lines[0].find("Pair::b_ -> Pair::a_"), std::string::npos);
  EXPECT_NE(run.lines[0].find("pair_use.cc:7"), std::string::npos);
}

TEST(LintTest, AuditReportsOnlyTheStaleSuppression) {
  LintRun run =
      RunLint("--audit-suppressions " + Fixture("stale_supp"));
  // Stale tags are warnings: exit code stays 0.
  EXPECT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.lines.size(), 1u);
  EXPECT_NE(run.lines[0].find("stale suppression"), std::string::npos);
  EXPECT_NE(run.lines[0].find("stale.cc:14"), std::string::npos);
  EXPECT_NE(run.lines[0].find("disable(R2)"), std::string::npos);
}

TEST(LintTest, WithoutAuditFlagStaleTagsAreSilent) {
  LintRun run = RunLint(Fixture("stale_supp"));
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_TRUE(run.lines.empty()) << run.lines.front();
}

TEST(LintTest, AllFixturesTogetherReportEveryRuleOnce) {
  LintRun run = RunLint(Fixture("bad_r1") + " " + Fixture("bad_r2") + " " +
                        Fixture("bad_r3") + " " + Fixture("bad_r4") + " " +
                        Fixture("bad_r5") + " " + Fixture("bad_r6") + " " +
                        Fixture("bad_r7") + " " + Fixture("bad_r8") + " " +
                        Fixture("bad_r9") + " " + Fixture("bad_r1_wrap"));
  EXPECT_EQ(run.exit_code, 1);
  std::vector<std::string> rules;
  for (const auto& line : run.lines) rules.push_back(Parse(line).rule);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "R1"), 2);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "R2"), 1);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "R3"), 2);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "R4"), 1);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "R5"), 2);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "R6"), 3);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "R7"), 2);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "R8"), 1);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "R9"), 1);
}

TEST(LintTest, NoArgumentsIsAUsageError) {
  LintRun run = RunLint("");
  EXPECT_EQ(run.exit_code, 2);
}

TEST(LintTest, ListRulesNamesEveryRule) {
  LintRun run = RunLint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  std::string all;
  for (const auto& line : run.lines) all += line + "\n";
  for (const char* rule :
       {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"}) {
    EXPECT_NE(all.find(rule), std::string::npos) << rule;
  }
}

}  // namespace
