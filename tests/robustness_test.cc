// Deterministic corruption harness for the load/serve path (ISSUE 2).
//
// Two attack surfaces take untrusted bytes: CSV tables (the online check
// stage) and serialized rule files (the offline/online hand-off). This
// suite byte-mutates and truncates both under a seeded RNG — 1,000
// mutations total — and asserts the pipeline always returns a structured
// Status diagnostic: no abort, no hang, no garbage rules served.
//
// It also proves every registered failpoint fires and is survived: each
// injected fault surfaces as an error (or a counted degradation for the
// trainer), never a crash.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "core/serialization.h"
#include "core/trainer.h"
#include "datagen/corpus_gen.h"
#include "table/csv.h"
#include "table/shard_loader.h"
#include "typedet/eval_functions.h"
#include "util/budget.h"
#include "util/circuit_breaker.h"
#include "util/failpoint.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"

namespace autotest::core {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new table::Corpus(
        datagen::GenerateCorpus(datagen::TablibProfile(400, 5)));
    typedet::EvalFunctionSetOptions opt;
    opt.embedding_centroids_per_model = 30;
    evals_ = new typedet::EvalFunctionSet(
        typedet::EvalFunctionSet::Build(*corpus_, opt));
    TrainOptions topt;
    topt.synthetic_count = 200;
    model_ = new TrainedModel(TrainAutoTest(*corpus_, *evals_, topt));
  }

  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete evals_;
    evals_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  // Failpoint state is process-global: scrub it on both sides of every
  // test so a failing test can't leak armed failpoints (or counter state)
  // into its neighbors.
  void SetUp() override { util::FailpointRegistry::Global().Reset(); }
  void TearDown() override { util::FailpointRegistry::Global().Reset(); }

  static table::Corpus* corpus_;
  static typedet::EvalFunctionSet* evals_;
  static TrainedModel* model_;
};

table::Corpus* RobustnessTest::corpus_ = nullptr;
typedet::EvalFunctionSet* RobustnessTest::evals_ = nullptr;
TrainedModel* RobustnessTest::model_ = nullptr;

// Applies 1-4 random byte-level operations (flip, insert, delete,
// truncate) to `text`, deterministically in `rng`.
std::string Mutate(const std::string& text, util::Rng& rng) {
  std::string out = text;
  int ops = static_cast<int>(rng.UniformInt(1, 4));
  for (int k = 0; k < ops && !out.empty(); ++k) {
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
    switch (rng.UniformInt(0, 3)) {
      case 0:  // flip to an arbitrary byte (NUL and \xff included)
        out[pos] = static_cast<char>(rng.UniformInt(0, 255));
        break;
      case 1:  // insert
        out.insert(pos, 1, static_cast<char>(rng.UniformInt(0, 255)));
        break;
      case 2:  // delete
        out.erase(pos, 1);
        break;
      case 3:  // truncate
        out.resize(pos);
        break;
    }
  }
  return out;
}

// The core invariant: whatever the bytes, the result is either a valid
// value or a structured diagnostic. Any crash/hang fails the whole binary.
void CheckRuleBytes(const std::string& bytes,
                    const typedet::EvalFunctionSet& evals) {
  size_t unresolved = 0;
  auto r = TryDeserializeRules(bytes, evals, &unresolved);
  if (r.ok()) {
    // Whatever loaded must be servable end-to-end: the predictor must
    // accept every surviving rule without dropping any (loader-level
    // validation is a superset of the predictor's serving checks).
    SdcPredictor predictor(std::move(r).value());
    EXPECT_EQ(predictor.skipped_rules(), 0u);
  } else {
    EXPECT_NE(r.status().code(), util::StatusCode::kOk);
    EXPECT_FALSE(r.status().message().empty());
  }
}

void CheckCsvBytes(const std::string& bytes) {
  table::CsvOptions opt;
  opt.max_field_bytes = 1 << 16;
  opt.max_row_bytes = 1 << 20;
  auto r = table::TryParseCsv(bytes, opt);
  if (!r.ok()) {
    EXPECT_NE(r.status().code(), util::StatusCode::kOk);
    EXPECT_FALSE(r.status().message().empty());
  }
}

TEST_F(RobustnessTest, FiveHundredCorruptRuleFilesNeverCrash) {
  ASSERT_FALSE(model_->constraints.empty());
  const std::string good = SerializeRules(model_->constraints);
  ASSERT_TRUE(TryDeserializeRules(good, *evals_).ok());
  size_t diagnostics = 0;
  for (uint64_t seed = 0; seed < 500; ++seed) {
    util::Rng rng(seed ^ 0xc0ffee);
    std::string bad = Mutate(good, rng);
    size_t unresolved = 0;
    auto r = TryDeserializeRules(bad, *evals_, &unresolved);
    if (!r.ok()) ++diagnostics;
    CheckRuleBytes(bad, *evals_);
  }
  // Most 1-4 byte corruptions of a rule file must be caught, not silently
  // absorbed (a benign mutation inside an escaped id or a float's low
  // digits can legitimately survive).
  EXPECT_GT(diagnostics, 250u);
}

TEST_F(RobustnessTest, FiveHundredCorruptCsvsNeverCrash) {
  // A representative CSV: quoting, embedded delimiters, CRLF.
  std::string good =
      "city,population,motto\r\n"
      "seattle,737015,\"the \"\"emerald\"\" city\"\r\n"
      "\"new york\",8336817,\"empire, state\"\r\n"
      "tokyo,13960000,sakura\r\n";
  for (size_t i = 0; i < 60; ++i) {
    good += "row" + std::to_string(i) + "," + std::to_string(i * 37) +
            ",value " + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(table::TryParseCsv(good).ok());
  for (uint64_t seed = 0; seed < 500; ++seed) {
    util::Rng rng(seed ^ 0xbadf00d);
    CheckCsvBytes(Mutate(good, rng));
  }
}

TEST_F(RobustnessTest, EveryPrefixTruncationIsHandled) {
  const std::string good = SerializeRules(model_->constraints);
  // Every truncation point in the first lines plus a spread over the rest.
  for (size_t cut = 0; cut < good.size();
       cut += (cut < 256 ? 1 : good.size() / 97 + 1)) {
    CheckRuleBytes(good.substr(0, cut), *evals_);
  }
}

TEST_F(RobustnessTest, CorruptRulesNeverServeGarbage) {
  // Splice hostile rule lines into a valid file: every line that loads
  // must satisfy the predictor's serving invariants.
  const std::string hostile =
      "# autotest-sdc v1\n"
      "rule\tfun:unknown\tnan\t0.9\t0.8\t0.9\t0.01\t1\t2\t3\t4\t1\t0.01\n";
  auto r = TryDeserializeRules(hostile, *evals_);
  EXPECT_FALSE(r.ok());  // nan must be rejected at load time
  const std::string inverted =
      "# autotest-sdc v1\n"
      "rule\tfun:unknown\t0.9\t0.1\t0.8\t0.9\t0.01\t1\t2\t3\t4\t1\t0.01\n";
  EXPECT_FALSE(TryDeserializeRules(inverted, *evals_).ok());
}

TEST_F(RobustnessTest, PredictorDegradesOnUnservableRules) {
  // Rules that bypass the loader (constructed in-process) still can't
  // crash the serve path: they are dropped and counted.
  ASSERT_FALSE(model_->constraints.empty());
  std::vector<Sdc> rules = {model_->constraints.front()};
  Sdc null_eval = rules[0];
  null_eval.eval = nullptr;
  rules.push_back(null_eval);
  Sdc bad_radius = rules[0];
  bad_radius.d_in = 2.0;
  bad_radius.d_out = 1.0;
  rules.push_back(bad_radius);
  Sdc non_finite = rules[0];
  non_finite.m = std::nan("");
  rules.push_back(non_finite);

  SdcPredictor predictor(std::move(rules));
  EXPECT_EQ(predictor.num_rules(), 1u);
  EXPECT_EQ(predictor.skipped_rules(), 3u);

  table::Column col;
  col.name = "c";
  col.values = {"a", "b", "c", "d", "e"};
  auto detections = predictor.TryPredict(col);
  EXPECT_TRUE(detections.ok());
}

// --- failpoint coverage: every registered failpoint fires somewhere and
// the pipeline reports instead of crashing ---

TEST_F(RobustnessTest, CsvFailpointsSurfaceAsErrors) {
  auto& reg = util::FailpointRegistry::Global();
  const std::string path = "/tmp/autotest_robust_fp.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,2\n";
  }

  ASSERT_TRUE(reg.Configure("csv.open=on").ok());
  auto r1 = table::TryReadCsvFile(path);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), util::StatusCode::kIoError);
  EXPECT_GE(reg.fires(util::kFpCsvOpen), 1u);
  reg.Disarm();

  ASSERT_TRUE(reg.Configure("csv.parse=on").ok());
  auto r2 = table::TryParseCsv("a\n1\n");
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), util::StatusCode::kDataLoss);
  EXPECT_GE(reg.fires(util::kFpCsvParse), 1u);
  reg.Disarm();

  // Disarmed again: the same inputs succeed.
  EXPECT_TRUE(table::TryReadCsvFile(path).ok());
  std::remove(path.c_str());
}

TEST_F(RobustnessTest, RuleFailpointsSurfaceAsErrors) {
  auto& reg = util::FailpointRegistry::Global();
  const std::string path = "/tmp/autotest_robust_fp.sdc";
  ASSERT_TRUE(TrySaveRulesToFile(model_->constraints, path).ok());

  ASSERT_TRUE(reg.Configure("rules.open=on").ok());
  ASSERT_FALSE(TryLoadRulesFromFile(path, *evals_).ok());
  EXPECT_GE(reg.fires(util::kFpRulesOpen), 1u);
  reg.Disarm();

  ASSERT_TRUE(reg.Configure("rules.parse=on").ok());
  ASSERT_FALSE(TryDeserializeRules("# autotest-sdc v1\n", *evals_).ok());
  EXPECT_GE(reg.fires(util::kFpRulesParse), 1u);
  reg.Disarm();

  ASSERT_TRUE(reg.Configure("rules.save=on").ok());
  ASSERT_FALSE(TrySaveRulesToFile(model_->constraints, path).ok());
  EXPECT_GE(reg.fires(util::kFpRulesSave), 1u);
  reg.Disarm();

  EXPECT_TRUE(TryLoadRulesFromFile(path, *evals_).ok());
  std::remove(path.c_str());
}

TEST_F(RobustnessTest, PredictorFailpointSurfacesAsError) {
  auto& reg = util::FailpointRegistry::Global();
  SdcPredictor predictor(model_->constraints);
  table::Column col;
  col.name = "dates";
  col.values = {"6/1/2022", "6/2/2022", "junk"};

  ASSERT_TRUE(reg.Configure("predictor.column=on").ok());
  auto r = predictor.TryPredict(col);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_GE(reg.fires(util::kFpPredictorColumn), 1u);
  reg.Disarm();
  EXPECT_TRUE(predictor.TryPredict(col).ok());
}

TEST_F(RobustnessTest, TrainerFailpointDegradesGracefully) {
  auto& reg = util::FailpointRegistry::Global();
  // Fire for every evaluation family: training must survive (no crash)
  // and report the degradation instead of fabricating constraints.
  ASSERT_TRUE(reg.Configure("trainer.eval=on").ok());
  TrainOptions topt;
  topt.synthetic_count = 50;
  TrainedModel degraded = TrainAutoTest(*corpus_, *evals_, topt);
  reg.Disarm();
  EXPECT_EQ(degraded.evals_skipped, evals_->size());
  EXPECT_TRUE(degraded.constraints.empty());
  EXPECT_GE(reg.fires(util::kFpTrainerEval), evals_->size());
}

TEST_F(RobustnessTest, RecipeFailpointsAreRegistered) {
  // recipe.load / recipe.save sit in the CLI layer (tools/autotest_cli);
  // here we verify they are armable and deterministic so the CLI soak can
  // rely on them.
  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("recipe.load=on,recipe.save=on").ok());
  EXPECT_TRUE(util::FailpointFires(util::kFpRecipeLoad));
  EXPECT_TRUE(util::FailpointFires(util::kFpRecipeSave));
  EXPECT_GE(reg.fires(util::kFpRecipeLoad), 1u);
  EXPECT_GE(reg.fires(util::kFpRecipeSave), 1u);
}

TEST_F(RobustnessTest, ServeFailpointsAreRegistered) {
  // serve.accept / serve.read / serve.reload sit in the serving tier
  // (src/serve, exercised end to end by serve_test and the serve soak);
  // here we verify they are armable and deterministic so those harnesses
  // can rely on them.
  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(
      reg.Configure("serve.accept=on,serve.read=on,serve.reload=on").ok());
  EXPECT_TRUE(util::FailpointFires(util::kFpServeAccept));
  EXPECT_TRUE(util::FailpointFires(util::kFpServeRead));
  EXPECT_TRUE(util::FailpointFires(util::kFpServeReload));
  EXPECT_GE(reg.fires(util::kFpServeAccept), 1u);
  EXPECT_GE(reg.fires(util::kFpServeRead), 1u);
  EXPECT_GE(reg.fires(util::kFpServeReload), 1u);
}

TEST_F(RobustnessTest, ShardReadFailpointIsMaskedByRetry) {
  // shard.read fires on first attempts only; with shard.retry disarmed the
  // retry layer masks the transient fault and the load still succeeds.
  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("shard.read=on").ok());
  util::VirtualClock clock;
  table::ShardLoadOptions opt;
  opt.clock = &clock;
  opt.retry.max_attempts = 2;
  std::function<util::Result<int>(size_t)> load =
      [](size_t shard) -> util::Result<int> {
    return static_cast<int>(shard);
  };
  table::ShardLoadReport report;
  auto r = table::LoadShards<int>(4, load, opt, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 4u);
  EXPECT_EQ(report.total_retries, 4u);  // one retry per shard
  EXPECT_GE(reg.fires(util::kFpShardRead), 4u);
  EXPECT_GT(clock.slept_micros(), 0);  // backoff happened, in virtual time
}

TEST_F(RobustnessTest, ShardRetryFailpointExhaustsTheBudget) {
  // Both shard failpoints armed: every attempt fails, the quorum is
  // missed, and the failure is a structured status naming each shard.
  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("shard.read=on,shard.retry=on").ok());
  util::VirtualClock clock;
  table::ShardLoadOptions opt;
  opt.clock = &clock;
  opt.retry.max_attempts = 3;
  std::function<util::Result<int>(size_t)> load =
      [](size_t) -> util::Result<int> { return 1; };
  table::ShardLoadReport report;
  auto r = table::LoadShards<int>(2, load, opt, &report);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
  EXPECT_NE(r.status().message().find("quorum"), std::string::npos);
  EXPECT_EQ(report.num_failed, 2u);
  EXPECT_GE(reg.fires(util::kFpShardRead), 2u);
  EXPECT_GE(reg.fires(util::kFpShardRetry), 4u);  // 2 retries x 2 shards
  for (const table::ShardOutcome& outcome : report.outcomes) {
    EXPECT_EQ(outcome.attempts, 3u);
  }
}

TEST_F(RobustnessTest, CodeFlavorOverridesTheSiteDefault) {
  // code=dataloss turns a (default transient) shard fault permanent: the
  // retry layer must fail fast instead of burning its budget.
  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("shard.read=on,code=dataloss").ok());
  util::VirtualClock clock;
  table::ShardLoadOptions opt;
  opt.clock = &clock;
  opt.retry.max_attempts = 4;
  std::function<util::Result<int>(size_t)> load =
      [](size_t) -> util::Result<int> { return 1; };
  table::ShardLoadReport report;
  auto r = table::LoadShards<int>(2, load, opt, &report);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  for (const table::ShardOutcome& outcome : report.outcomes) {
    EXPECT_EQ(outcome.attempts, 1u);  // permanent: no retries
    EXPECT_EQ(outcome.code, util::StatusCode::kDataLoss);
  }
  EXPECT_EQ(clock.slept_micros(), 0);  // fail-fast never sleeps

  // code=default restores each site's documented code (transient again).
  ASSERT_TRUE(reg.Configure("code=default").ok());
  auto r2 = table::LoadShards<int>(2, load, opt, &report);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  for (const table::ShardOutcome& outcome : report.outcomes) {
    EXPECT_GT(outcome.attempts, 1u);  // transient: retry kicked in
  }
}

TEST_F(RobustnessTest, CodeFlavorAppliesAtSerialSitesToo) {
  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("csv.open=on,code=exhausted").ok());
  auto r = table::TryReadCsvFile("/nonexistent.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kResourceExhausted);

  ASSERT_TRUE(reg.Configure("code=io").ok());
  auto r2 = table::TryReadCsvFile("/nonexistent.csv");
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), util::StatusCode::kIoError);

  EXPECT_FALSE(reg.Configure("code=bogus").ok());
}

TEST_F(RobustnessTest, KeyedFailpointDecisionIsSchedulingIndependent) {
  // The keyed decision is a pure function of (seed, name, key): evaluating
  // the same keys in any order, any number of times, yields the same
  // fire/no-fire pattern.
  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("shard.read:p=0.5,seed=99").ok());
  std::vector<bool> first;
  for (uint64_t key = 0; key < 64; ++key) {
    first.push_back(util::FailpointFiresKeyed(util::kFpShardRead, key,
                                              util::StatusCode::kIoError)
                        .has_value());
  }
  for (uint64_t key = 64; key-- > 0;) {  // reverse order
    EXPECT_EQ(util::FailpointFiresKeyed(util::kFpShardRead, key,
                                        util::StatusCode::kIoError)
                  .has_value(),
              first[key])
        << "key " << key;
  }
  // Both outcomes occur at p=0.5 over 64 keys.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(RobustnessTest, InjectedBudgetChargeRejectionIsSurvived) {
  // `budget.charge` makes any charge site report exhaustion: the charge
  // must surface as a structured kResourceExhausted, never a crash, and
  // disarming restores normal accounting.
  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("budget.charge=on").ok());
  util::ResourceBudget unlimited;
  util::Status injected =
      unlimited.TryCharge(util::ResourceKind::kBytes, 1, "soak charge");
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.code(), util::StatusCode::kResourceExhausted);
  reg.Disarm();
  EXPECT_TRUE(
      unlimited.TryCharge(util::ResourceKind::kBytes, 1, "soak charge")
          .ok());
}

TEST_F(RobustnessTest, InjectedProbeDenialKeepsBreakerOpen) {
  // `breaker.probe` denies half-open probe admission and re-arms the
  // cooldown: the breaker stays open for as long as the fault is armed.
  util::VirtualClock clock;
  util::CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_micros = 100;
  util::CircuitBreaker breaker(options, &clock);
  ASSERT_TRUE(breaker.TryAcquire());
  breaker.RecordFailure();

  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("breaker.probe=on").ok());
  clock.Advance(200);
  EXPECT_FALSE(breaker.TryAcquire());
  EXPECT_EQ(breaker.state(), util::CircuitBreaker::State::kOpen);
  reg.Disarm();
  clock.Advance(200);
  EXPECT_TRUE(breaker.TryAcquire());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), util::CircuitBreaker::State::kClosed);
}

TEST_F(RobustnessTest, AllRegisteredFailpointsCoveredByThisSuite) {
  // Meta-check: if a new failpoint is added to kAllFailpoints without a
  // firing test above, this list must be extended.
  const std::vector<std::string> covered = {
      "csv.open",    "csv.parse",  "rules.open",
      "rules.parse", "rules.save", "recipe.load",
      "recipe.save", "trainer.eval", "predictor.column",
      "shard.read",  "shard.retry", "serve.accept",
      "serve.read",  "serve.reload", "budget.charge",
      "breaker.probe",
  };
  ASSERT_EQ(covered.size(), std::size(util::kAllFailpoints));
  for (std::string_view fp : util::kAllFailpoints) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), std::string(fp)),
              covered.end())
        << "failpoint " << fp << " has no firing test";
  }
}

TEST_F(RobustnessTest, FailpointSoakSurvivesRandomFaults) {
  // The CI soak in miniature: everything armed at p=0.05, the load path
  // exercised repeatedly. Any outcome is fine except a crash or a silent
  // wrong answer; errors must be structured.
  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("all:p=0.05,seed=1234").ok());
  const std::string good = SerializeRules(model_->constraints);
  const std::string csv = "a,b\nx,1\ny,2\n";
  size_t injected = 0;
  for (int i = 0; i < 200; ++i) {
    auto rules = TryDeserializeRules(good, *evals_);
    if (!rules.ok()) {
      ++injected;
      EXPECT_FALSE(rules.status().message().empty());
    }
    auto t = table::TryParseCsv(csv);
    if (!t.ok()) ++injected;
  }
  reg.Disarm();
  EXPECT_GT(injected, 0u);  // p=0.05 over 400 draws: fires w.p. ~1
}

// Exit-code contract for the serving client (DESIGN.md §4h, README exit
// codes): a query that the server refuses — or cannot even reach — exits
// 7, a class scripts can distinguish from bad input (2) and transient I/O
// (4) when deciding whether to retry with backoff.
TEST_F(RobustnessTest, QueryAgainstUnreachableServerExitsWithShedCode) {
  // Find a port that is currently free by binding an ephemeral one and
  // releasing it; the query then races nothing (no daemon is started).
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t port = ntohs(addr.sin_port);
  ::close(probe);

  const std::string cmd = std::string(AT_AUTOTEST_CLI) +
                          " query --ping --port " + std::to_string(port) +
                          " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 7);

  // --retries only re-sends the shed class; against a server that never
  // appears every attempt sheds, and the exhausted retry budget still
  // exits 7 (the class is unchanged, just attempted more than once).
  const std::string retried = std::string(AT_AUTOTEST_CLI) +
                              " query --ping --retries 2 --port " +
                              std::to_string(port) + " >/dev/null 2>&1";
  const int rc2 = std::system(retried.c_str());
  ASSERT_TRUE(WIFEXITED(rc2));
  EXPECT_EQ(WEXITSTATUS(rc2), 7);
}

// Death tests documenting the AT_CHECKs that remain programmer-error
// invariants on the training path: these guard API misuse, not input.
using RobustnessDeathTest = RobustnessTest;

TEST_F(RobustnessDeathTest, TrainOnEmptyCorpusAborts) {
  TrainOptions topt;
  EXPECT_DEATH(
      { TrainAutoTest(table::Corpus{}, *evals_, topt); }, "AT_CHECK");
}

TEST_F(RobustnessDeathTest, NonDescendingMGridAborts) {
  TrainOptions topt;
  topt.m_grid = {0.7, 0.9};  // must be strictly descending
  EXPECT_DEATH({ TrainAutoTest(*corpus_, *evals_, topt); },
               "m_grid must be strictly descending");
}

}  // namespace
}  // namespace autotest::core
