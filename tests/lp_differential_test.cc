// Differential test harness for the LP solvers: thousands of seeded
// random programs — degenerate, unbounded, infeasible, upper-bounded and
// max-coverage-shaped — are pushed through the reference dense tableau
// (SolveLpDense) and the sparse revised simplex (SolveLp), asserting
// matching status, matching objective within tolerance, and primal
// feasibility of the sparse solution. A further section proves the
// warm-started IncrementalSolver equivalent to cold solves, and the
// golden selection tests prove byte-identical SelectionResults between
// the two solvers on the paper pipeline, across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/auto_test.h"
#include "core/trainer.h"
#include "core/selection.h"
#include "datagen/corpus_gen.h"
#include "lp/incremental.h"
#include "typedet/eval_functions.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace autotest {
namespace {

constexpr double kObjTol = 1e-6;
constexpr double kFeasTol = 1e-6;

double ConstraintLhs(const lp::Constraint& c, const std::vector<double>& x) {
  double lhs = 0.0;
  for (const auto& [var, coef] : c.terms) lhs += coef * x[var];
  return lhs;
}

// Asserts the two solvers agree on `prog`; on optimal also asserts the
// sparse solution is primal feasible. `tag` identifies the failing seed.
void ExpectEquivalent(const lp::LinearProgram& prog, const std::string& tag) {
  lp::Solution dense = lp::SolveLpDense(prog);
  lp::Solution sparse = lp::SolveLp(prog);
  ASSERT_EQ(dense.status, sparse.status)
      << tag << ": dense=" << lp::SolveStatusName(dense.status)
      << " sparse=" << lp::SolveStatusName(sparse.status);
  if (dense.status != lp::SolveStatus::kOptimal) return;
  double scale = std::max({1.0, std::fabs(dense.objective),
                           std::fabs(sparse.objective)});
  EXPECT_LE(std::fabs(dense.objective - sparse.objective), kObjTol * scale)
      << tag << ": dense obj=" << dense.objective
      << " sparse obj=" << sparse.objective;
  ASSERT_EQ(sparse.values.size(), prog.num_vars) << tag;
  for (size_t j = 0; j < prog.num_vars; ++j) {
    EXPECT_GE(sparse.values[j], -kFeasTol) << tag << " var " << j;
    if (prog.upper_bounds[j] != lp::LinearProgram::kInfinity) {
      EXPECT_LE(sparse.values[j], prog.upper_bounds[j] + kFeasTol)
          << tag << " var " << j;
    }
  }
  for (size_t i = 0; i < prog.constraints.size(); ++i) {
    const lp::Constraint& c = prog.constraints[i];
    double lhs = ConstraintLhs(c, sparse.values);
    double slack_tol = kFeasTol * std::max(1.0, std::fabs(c.rhs));
    switch (c.type) {
      case lp::ConstraintType::kLessEq:
        EXPECT_LE(lhs, c.rhs + slack_tol) << tag << " row " << i;
        break;
      case lp::ConstraintType::kGreaterEq:
        EXPECT_GE(lhs, c.rhs - slack_tol) << tag << " row " << i;
        break;
      case lp::ConstraintType::kEqual:
        EXPECT_NEAR(lhs, c.rhs, slack_tol) << tag << " row " << i;
        break;
    }
  }
}

lp::ConstraintType RandomType(util::Rng& rng) {
  int64_t t = rng.UniformInt(0, 5);
  if (t <= 3) return lp::ConstraintType::kLessEq;  // bias towards feasible
  if (t == 4) return lp::ConstraintType::kGreaterEq;
  return lp::ConstraintType::kEqual;
}

// Class A: general random LPs with mixed senses, signs, and bounds.
lp::LinearProgram MakeGeneral(util::Rng& rng) {
  lp::LinearProgram prog;
  size_t n = static_cast<size_t>(rng.UniformInt(1, 8));
  size_t m = static_cast<size_t>(rng.UniformInt(0, 8));
  for (size_t j = 0; j < n; ++j) {
    double upper = rng.Bernoulli(0.5) ? rng.UniformDouble(0.2, 3.0)
                                      : lp::LinearProgram::kInfinity;
    prog.AddVariable(rng.UniformDouble(-2.0, 2.0), upper);
  }
  for (size_t i = 0; i < m; ++i) {
    lp::Constraint c;
    c.type = RandomType(rng);
    c.rhs = rng.UniformDouble(-1.0, 3.0);
    for (size_t j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.6)) c.terms.push_back({j, rng.UniformDouble(-2, 2)});
    }
    if (c.terms.empty()) c.terms.push_back({0, rng.UniformDouble(0.1, 1.0)});
    prog.AddConstraint(std::move(c));
  }
  return prog;
}

// Class B: degenerate LPs — duplicated and scaled rows, zero right-hand
// sides, duplicated columns; many ties in the ratio test.
lp::LinearProgram MakeDegenerate(util::Rng& rng) {
  lp::LinearProgram prog;
  size_t n = static_cast<size_t>(rng.UniformInt(2, 6));
  for (size_t j = 0; j < n; ++j) prog.AddVariable(rng.UniformDouble(0, 1), 1.0);
  size_t base_rows = static_cast<size_t>(rng.UniformInt(1, 4));
  std::vector<lp::Constraint> base;
  for (size_t i = 0; i < base_rows; ++i) {
    lp::Constraint c;
    c.type = lp::ConstraintType::kLessEq;
    c.rhs = rng.Bernoulli(0.3) ? 0.0 : rng.UniformDouble(0.0, 2.0);
    for (size_t j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.7)) {
        // Small-integer coefficients breed exact ties.
        c.terms.push_back({j, static_cast<double>(rng.UniformInt(0, 2))});
      }
    }
    if (c.terms.empty()) c.terms.push_back({0, 1.0});
    base.push_back(c);
  }
  for (const auto& c : base) {
    prog.AddConstraint(c);
    if (rng.Bernoulli(0.5)) {
      lp::Constraint dup = c;  // duplicated row
      prog.AddConstraint(std::move(dup));
    }
    if (rng.Bernoulli(0.3)) {
      lp::Constraint scaled = c;  // scaled row
      for (auto& [var, coef] : scaled.terms) coef *= 2.0;
      scaled.rhs *= 2.0;
      prog.AddConstraint(std::move(scaled));
    }
  }
  return prog;
}

// Class C: unbounded-biased — unbounded variables with positive objective
// and only lower-bounding constraints.
lp::LinearProgram MakeUnboundedBiased(util::Rng& rng) {
  lp::LinearProgram prog;
  size_t n = static_cast<size_t>(rng.UniformInt(1, 5));
  for (size_t j = 0; j < n; ++j) {
    prog.AddVariable(rng.UniformDouble(-0.5, 1.5),
                     rng.Bernoulli(0.3) ? rng.UniformDouble(0.5, 2.0)
                                        : lp::LinearProgram::kInfinity);
  }
  size_t m = static_cast<size_t>(rng.UniformInt(0, 3));
  for (size_t i = 0; i < m; ++i) {
    lp::Constraint c;
    c.type = lp::ConstraintType::kGreaterEq;
    c.rhs = rng.UniformDouble(0.0, 1.0);
    for (size_t j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.5)) c.terms.push_back({j, rng.UniformDouble(0, 1)});
    }
    if (c.terms.empty()) c.terms.push_back({0, 1.0});
    prog.AddConstraint(std::move(c));
  }
  return prog;
}

// Class D: infeasible-biased — contradictory sandwich constraints and
// demands exceeding the variable bounds.
lp::LinearProgram MakeInfeasibleBiased(util::Rng& rng) {
  lp::LinearProgram prog;
  size_t n = static_cast<size_t>(rng.UniformInt(1, 5));
  for (size_t j = 0; j < n; ++j) {
    prog.AddVariable(rng.UniformDouble(-1, 1), rng.UniformDouble(0.3, 1.5));
  }
  lp::Constraint demand;
  demand.type = lp::ConstraintType::kGreaterEq;
  demand.rhs = rng.UniformDouble(0.0, static_cast<double>(2 * n));
  for (size_t j = 0; j < n; ++j) demand.terms.push_back({j, 1.0});
  prog.AddConstraint(std::move(demand));
  if (rng.Bernoulli(0.5)) {
    lp::Constraint lo;
    lo.type = lp::ConstraintType::kLessEq;
    lo.rhs = rng.UniformDouble(0.0, 0.5);
    for (size_t j = 0; j < n; ++j) lo.terms.push_back({j, 1.0});
    prog.AddConstraint(std::move(lo));
  }
  if (rng.Bernoulli(0.4)) {
    lp::Constraint eq;
    eq.type = lp::ConstraintType::kEqual;
    eq.rhs = rng.UniformDouble(-0.5, 1.5);
    eq.terms.push_back({0, 1.0});
    prog.AddConstraint(std::move(eq));
  }
  return prog;
}

// Class E: fully box-bounded problems exercising bound flips.
lp::LinearProgram MakeUpperBounded(util::Rng& rng) {
  lp::LinearProgram prog;
  size_t n = static_cast<size_t>(rng.UniformInt(2, 10));
  for (size_t j = 0; j < n; ++j) {
    prog.AddVariable(rng.UniformDouble(-1, 2), rng.UniformDouble(0.1, 1.0));
  }
  size_t m = static_cast<size_t>(rng.UniformInt(1, 5));
  for (size_t i = 0; i < m; ++i) {
    lp::Constraint c;
    c.type = lp::ConstraintType::kLessEq;
    c.rhs = rng.UniformDouble(0.5, 3.0);
    for (size_t j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.5)) c.terms.push_back({j, rng.UniformDouble(0, 1)});
    }
    if (c.terms.empty()) c.terms.push_back({0, 0.5});
    prog.AddConstraint(std::move(c));
  }
  return prog;
}

// Class F: the CSS-LP shape — coverage rows y_j <= sum_{i in K_j} x_i with
// a size budget and an FPR-like weighted budget.
lp::LinearProgram MakeMaxCoverage(util::Rng& rng) {
  lp::LinearProgram prog;
  size_t n = static_cast<size_t>(rng.UniformInt(3, 25));
  std::vector<size_t> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = prog.AddVariable(0.0, 1.0);
  size_t cols = 2 * n;
  for (size_t j = 0; j < cols; ++j) {
    size_t y = prog.AddVariable(1.0, 1.0);
    lp::Constraint c;
    c.rhs = 0.0;
    c.terms.push_back({y, 1.0});
    size_t covers = static_cast<size_t>(rng.UniformInt(1, 3));
    for (size_t k = 0; k < covers; ++k) {
      c.terms.push_back(
          {x[static_cast<size_t>(
               rng.UniformInt(0, static_cast<int64_t>(n) - 1))],
           -1.0});
    }
    prog.AddConstraint(std::move(c));
  }
  lp::Constraint size_c;
  size_c.rhs = std::max(1.0, static_cast<double>(n) / 4.0);
  for (size_t i = 0; i < n; ++i) size_c.terms.push_back({x[i], 1.0});
  prog.AddConstraint(std::move(size_c));
  lp::Constraint fpr_c;
  fpr_c.rhs = rng.UniformDouble(0.05, 0.5);
  for (size_t i = 0; i < n; ++i) {
    fpr_c.terms.push_back({x[i], rng.UniformDouble(0.001, 0.1)});
  }
  prog.AddConstraint(std::move(fpr_c));
  return prog;
}

struct FuzzClass {
  const char* name;
  lp::LinearProgram (*make)(util::Rng&);
  int count;
};

TEST(LpDifferentialTest, FuzzDenseVsRevised) {
  // >= 2,000 seeded LPs across the six adversarial classes.
  const FuzzClass classes[] = {
      {"general", MakeGeneral, 500},
      {"degenerate", MakeDegenerate, 400},
      {"unbounded", MakeUnboundedBiased, 350},
      {"infeasible", MakeInfeasibleBiased, 350},
      {"upper_bounded", MakeUpperBounded, 400},
      {"max_coverage", MakeMaxCoverage, 400},
  };
  int statuses[4] = {0, 0, 0, 0};
  for (const auto& cls : classes) {
    for (int t = 0; t < cls.count; ++t) {
      util::Rng rng(0x5eed0000 + static_cast<uint64_t>(t) * 131 +
                    static_cast<uint64_t>(cls.name[0]));
      lp::LinearProgram prog = cls.make(rng);
      std::string tag = std::string(cls.name) + "/" + std::to_string(t);
      ExpectEquivalent(prog, tag);
      if (HasFatalFailure()) return;
      statuses[static_cast<int>(lp::SolveLp(prog).status)]++;
    }
  }
  // The corpus genuinely exercises every terminal status.
  EXPECT_GT(statuses[static_cast<int>(lp::SolveStatus::kOptimal)], 500);
  EXPECT_GT(statuses[static_cast<int>(lp::SolveStatus::kInfeasible)], 50);
  EXPECT_GT(statuses[static_cast<int>(lp::SolveStatus::kUnbounded)], 50);
  EXPECT_EQ(statuses[static_cast<int>(lp::SolveStatus::kIterationLimit)], 0);
}

TEST(LpDifferentialTest, EmptyAndTrivialLps) {
  // Regression: the Solution default of kIterationLimit must not leak out
  // of early-exit paths — an empty LP is optimal with objective 0.
  lp::LinearProgram empty;
  for (auto* solve : {lp::SolveLp, lp::SolveLpDense}) {
    lp::Solution s = solve(empty);
    EXPECT_EQ(s.status, lp::SolveStatus::kOptimal);
    EXPECT_EQ(s.objective, 0.0);
    EXPECT_TRUE(s.values.empty());
  }
  // 0 variables but a trivially satisfied constraint.
  lp::LinearProgram no_vars;
  lp::Constraint c;
  c.type = lp::ConstraintType::kLessEq;
  c.rhs = 1.0;
  no_vars.AddConstraint(std::move(c));
  for (auto* solve : {lp::SolveLp, lp::SolveLpDense}) {
    lp::Solution s = solve(no_vars);
    EXPECT_EQ(s.status, lp::SolveStatus::kOptimal);
    EXPECT_EQ(s.objective, 0.0);
  }
  // 0 variables and an unsatisfiable constraint: infeasible, not a limit.
  lp::LinearProgram bad;
  lp::Constraint g;
  g.type = lp::ConstraintType::kGreaterEq;
  g.rhs = 1.0;
  bad.AddConstraint(std::move(g));
  for (auto* solve : {lp::SolveLp, lp::SolveLpDense}) {
    EXPECT_EQ(solve(bad).status, lp::SolveStatus::kInfeasible);
  }
}

// ---------------------------------------------------------------------------
// IncrementalSolver: warm-started column addition must agree with a cold
// solve of the final program, across many seeded growth schedules.
// ---------------------------------------------------------------------------

TEST(LpDifferentialTest, IncrementalWarmStartMatchesColdSolve) {
  for (uint64_t seed = 0; seed < 120; ++seed) {
    util::Rng rng(9000 + seed);
    size_t rows = static_cast<size_t>(rng.UniformInt(3, 20));
    lp::LinearProgram base;
    for (size_t i = 0; i < rows; ++i) {
      lp::Constraint c;
      c.type = lp::ConstraintType::kLessEq;
      c.rhs = rng.UniformDouble(0.0, 2.0);
      base.AddConstraint(std::move(c));
    }
    lp::IncrementalSolver inc(base);
    size_t waves = static_cast<size_t>(rng.UniformInt(2, 5));
    size_t added = 0;
    for (size_t w = 0; w < waves; ++w) {
      size_t batch = static_cast<size_t>(rng.UniformInt(1, 8));
      for (size_t b = 0; b < batch; ++b) {
        std::vector<std::pair<size_t, double>> terms;
        for (size_t i = 0; i < rows; ++i) {
          if (rng.Bernoulli(0.4)) {
            terms.push_back({i, rng.UniformDouble(-1.0, 1.0)});
          }
        }
        inc.AddVariable(rng.UniformDouble(-0.5, 1.5),
                        rng.Bernoulli(0.7) ? 1.0
                                           : lp::LinearProgram::kInfinity,
                        terms);
        ++added;
      }
      const lp::Solution& warm = inc.Solve();
      lp::Solution cold = lp::SolveLp(inc.program());
      ASSERT_EQ(warm.status, cold.status) << "seed " << seed << " wave " << w;
      if (warm.status == lp::SolveStatus::kOptimal) {
        double scale = std::max(1.0, std::fabs(cold.objective));
        EXPECT_LE(std::fabs(warm.objective - cold.objective), kObjTol * scale)
            << "seed " << seed << " wave " << w;
      }
      if (w > 0 && warm.status == lp::SolveStatus::kOptimal) {
        // After the first optimal wave, later waves should re-price.
      }
    }
    EXPECT_GT(added, 0u);
  }
}

TEST(LpDifferentialTest, IncrementalReplaceVariable) {
  // Replacing a nonbasic-at-lower column keeps warm starts; replacing a
  // basic column forces a cold restart. Either way the result must match
  // a cold solve of the mirror program.
  for (uint64_t seed = 0; seed < 60; ++seed) {
    util::Rng rng(7700 + seed);
    lp::LinearProgram base;
    size_t rows = static_cast<size_t>(rng.UniformInt(2, 8));
    for (size_t i = 0; i < rows; ++i) {
      lp::Constraint c;
      c.type = lp::ConstraintType::kLessEq;
      c.rhs = rng.UniformDouble(0.5, 2.0);
      base.AddConstraint(std::move(c));
    }
    lp::IncrementalSolver inc(base);
    size_t n = static_cast<size_t>(rng.UniformInt(3, 10));
    for (size_t j = 0; j < n; ++j) {
      std::vector<std::pair<size_t, double>> terms;
      for (size_t i = 0; i < rows; ++i) {
        if (rng.Bernoulli(0.5)) terms.push_back({i, rng.UniformDouble(0, 1)});
      }
      inc.AddVariable(rng.UniformDouble(0, 1), 1.0, terms);
    }
    ASSERT_EQ(inc.Solve().status, lp::SolveStatus::kOptimal);
    size_t victim = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    std::vector<std::pair<size_t, double>> new_terms;
    for (size_t i = 0; i < rows; ++i) {
      if (rng.Bernoulli(0.5)) new_terms.push_back({i, rng.UniformDouble(0, 1)});
    }
    inc.ReplaceVariable(victim, rng.UniformDouble(0, 1), 1.0, new_terms);
    const lp::Solution& after = inc.Solve();
    lp::Solution cold = lp::SolveLp(inc.program());
    ASSERT_EQ(after.status, cold.status) << "seed " << seed;
    double scale = std::max(1.0, std::fabs(cold.objective));
    EXPECT_LE(std::fabs(after.objective - cold.objective), kObjTol * scale)
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Golden selections on the paper pipeline: train a real model from the
// synthetic corpus generator, then require the sparse revised simplex and
// the dense tableau to produce byte-identical SelectionResults, across
// CSS and FSS, thread counts, and warm incremental re-selection.
// ---------------------------------------------------------------------------

class GoldenSelectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto corpus =
        datagen::GenerateCorpus(datagen::RelationalTablesProfile(150));
    typedet::EvalFunctionSetOptions eval_opt;
    eval_opt.embedding_centroids_per_model = 20;
    auto evals = typedet::EvalFunctionSet::Build(corpus, eval_opt);
    core::TrainOptions topt;
    topt.synthetic_count = 200;
    model_ = new core::TrainedModel(core::TrainAutoTest(corpus, evals, topt));
    ASSERT_GT(model_->constraints.size(), 0u);
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }
  static core::TrainedModel* model_;
};

core::TrainedModel* GoldenSelectionTest::model_ = nullptr;

void ExpectByteIdentical(const core::SelectionResult& a,
                         const core::SelectionResult& b, const char* tag) {
  EXPECT_EQ(a.selected, b.selected) << tag;
  EXPECT_EQ(a.lp_status, b.lp_status) << tag;
  EXPECT_EQ(a.lp_num_variables, b.lp_num_variables) << tag;
  EXPECT_EQ(a.lp_num_rows, b.lp_num_rows) << tag;
  EXPECT_EQ(a.used_greedy, b.used_greedy) << tag;
}

TEST_F(GoldenSelectionTest, DenseAndSparseSelectByteIdentically) {
  for (double delta : {1.0, 1e-3}) {
    core::SelectionOptions opt;
    opt.delta = delta;
    core::SelectionResult sparse = core::SelectWithDelta(*model_, opt, delta);
    opt.solver = core::SelectionSolver::kDenseTableau;
    core::SelectionResult dense = core::SelectWithDelta(*model_, opt, delta);
    ASSERT_EQ(sparse.lp_status, lp::SolveStatus::kOptimal);
    ExpectByteIdentical(sparse, dense, delta == 1.0 ? "css" : "fss");
    // The deterministic objective perturbation is ~1e-5 per selected
    // column; both solvers must sit on the same optimal vertex.
    EXPECT_LE(std::fabs(sparse.lp_objective - dense.lp_objective),
              1e-6 * std::max(1.0, std::fabs(dense.lp_objective)));
  }
}

TEST_F(GoldenSelectionTest, ThreadCountInvariantAcrossSolvers) {
  for (auto solver : {core::SelectionSolver::kRevisedSimplex,
                      core::SelectionSolver::kDenseTableau,
                      core::SelectionSolver::kGreedy}) {
    core::SelectionOptions opt;
    opt.solver = solver;
    opt.num_threads = 1;
    core::SelectionResult s1 = core::FineSelect(*model_, opt);
    opt.num_threads = 8;
    core::SelectionResult s8 = core::FineSelect(*model_, opt);
    ExpectByteIdentical(s1, s8, "threads");
    EXPECT_EQ(s1.lp_objective, s8.lp_objective);
  }
}

TEST_F(GoldenSelectionTest, WarmIncrementalMatchesOneShotOnPipeline) {
  // Stream the trained model's candidates into the selector in four
  // chunks; the final warm re-priced selection must equal the one-shot.
  core::SelectionOptions opt;
  core::SelectionResult one_shot =
      core::SelectWithDelta(*model_, opt, opt.delta);
  core::IncrementalSelector selector(*model_, opt, opt.delta);
  size_t n = model_->constraints.size();
  core::SelectionResult streamed;
  for (size_t k = 1; k <= 4; ++k) {
    streamed = selector.Reselect(k * n / 4 + (k == 4 ? n % 4 : 0));
  }
  ExpectByteIdentical(streamed, one_shot, "warm-pipeline");
}

TEST_F(GoldenSelectionTest, PipelineVariantMatchesFineSelect) {
  core::SelectionOptions opt;
  core::SelectionResult coarse;
  core::SelectionResult fine =
      core::CoarseThenFineSelect(*model_, opt, &coarse);
  core::SelectionResult reference = core::FineSelect(*model_, opt);
  ExpectByteIdentical(fine, reference, "pipeline");
  core::SelectionResult coarse_ref = core::CoarseSelect(*model_, opt);
  ExpectByteIdentical(coarse, coarse_ref, "pipeline-coarse");
}

}  // namespace
}  // namespace autotest
