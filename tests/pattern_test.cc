#include <gtest/gtest.h>

#include "pattern/miner.h"
#include "pattern/pattern.h"
#include "table/table.h"

namespace autotest::pattern {
namespace {

TEST(PatternParseTest, BasicClasses) {
  auto p = Pattern::Parse("\\d+");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->Matches("12345"));
  EXPECT_FALSE(p->Matches("123a"));
  EXPECT_FALSE(p->Matches(""));
}

TEST(PatternParseTest, PaperPatterns) {
  // r5 from the paper's Table 1: "[a-zA-Z]+\d+" (fiscal years like fy17).
  auto r5 = Pattern::Parse("[a-zA-Z]+\\d+");
  ASSERT_TRUE(r5.has_value());
  EXPECT_TRUE(r5->Matches("fy17"));
  EXPECT_TRUE(r5->Matches("tt0054215"));
  EXPECT_FALSE(r5->Matches("fy definition"));
  EXPECT_FALSE(r5->Matches("17fy"));

  // r6: "\d+ [a-zA-Z]+" (units like "12 oz").
  auto r6 = Pattern::Parse("\\d+ [a-zA-Z]+");
  ASSERT_TRUE(r6.has_value());
  EXPECT_TRUE(r6->Matches("12 oz"));
  EXPECT_TRUE(r6->Matches("107 patients"));
  EXPECT_FALSE(r6->Matches("0.05%"));
}

TEST(PatternParseTest, DatePattern) {
  auto p = Pattern::Parse("\\d{1,2}/\\d{1,2}/\\d{4}");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->Matches("12/3/2020"));
  EXPECT_TRUE(p->Matches("1/13/1999"));
  EXPECT_FALSE(p->Matches("12/3/20"));
  EXPECT_FALSE(p->Matches("new facility"));
}

TEST(PatternParseTest, FixedLength) {
  auto p = Pattern::Parse("\\d{3}");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->Matches("123"));
  EXPECT_FALSE(p->Matches("12"));
  EXPECT_FALSE(p->Matches("1234"));
}

TEST(PatternParseTest, CaseClasses) {
  auto lower = Pattern::Parse("[a-z]+");
  auto upper = Pattern::Parse("[A-Z]+");
  ASSERT_TRUE(lower.has_value());
  ASSERT_TRUE(upper.has_value());
  EXPECT_TRUE(lower->Matches("abc"));
  EXPECT_FALSE(lower->Matches("Abc"));
  EXPECT_TRUE(upper->Matches("ABC"));
  EXPECT_FALSE(upper->Matches("AbC"));
}

TEST(PatternParseTest, EscapedLiterals) {
  auto p = Pattern::Parse("\\d+\\+\\d+");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->Matches("1+2"));
  EXPECT_FALSE(p->Matches("1-2"));
}

TEST(PatternParseTest, MalformedInputs) {
  EXPECT_FALSE(Pattern::Parse("\\").has_value());
  EXPECT_FALSE(Pattern::Parse("\\d{").has_value());
  EXPECT_FALSE(Pattern::Parse("\\d{a}").has_value());
  EXPECT_FALSE(Pattern::Parse("\\d{3,1}").has_value());
  EXPECT_FALSE(Pattern::Parse("[a-c]+").has_value());
  EXPECT_FALSE(Pattern::Parse("+").has_value());
}

TEST(PatternMatchTest, BacktrackingAcrossAdjacentClasses) {
  // \d+\d{2} requires the + to give back characters.
  auto p = Pattern::Parse("\\d+\\d{2}");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->Matches("123"));
  EXPECT_FALSE(p->Matches("12"));
}

TEST(PatternMatchTest, EmptyPatternMatchesEmptyOnly) {
  Pattern p;
  EXPECT_TRUE(p.Matches(""));
  EXPECT_FALSE(p.Matches("a"));
}

TEST(PatternRoundTripTest, ParseToStringStable) {
  for (const char* text :
       {"\\d+", "[a-zA-Z]+\\d+", "\\d{1,2}/\\d{1,2}/\\d{4}",
        "[a-z]{2}\\d{2}", "\\d+ [a-zA-Z]+", "#[a-z]+"}) {
    auto p = Pattern::Parse(text);
    ASSERT_TRUE(p.has_value()) << text;
    EXPECT_EQ(p->ToString(), text);
    auto again = Pattern::Parse(p->ToString());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *p);
  }
}

TEST(GeneralizeTest, ExactDigitsLevel) {
  Pattern p = Generalize("fy17", GeneralizationLevel::kExactDigits);
  EXPECT_EQ(p.ToString(), "[a-zA-Z]+\\d{2}");
  EXPECT_TRUE(p.Matches("fy18"));
  EXPECT_FALSE(p.Matches("fy2017"));
}

TEST(GeneralizeTest, GeneralLevel) {
  Pattern p = Generalize("fy17", GeneralizationLevel::kGeneral);
  EXPECT_EQ(p.ToString(), "[a-zA-Z]+\\d+");
  EXPECT_TRUE(p.Matches("fy2017"));
}

TEST(GeneralizeTest, MixedSeparators) {
  Pattern p = Generalize("12/3/2020", GeneralizationLevel::kExactDigits);
  EXPECT_EQ(p.ToString(), "\\d{2}/\\d/\\d{4}");
  EXPECT_TRUE(p.Matches("11/4/2021"));
  EXPECT_FALSE(p.Matches("1/13/2021"));
}

TEST(GeneralizeTest, SelfMatchProperty) {
  // Every value must match its own generalization at both levels.
  const char* values[] = {"fy17",       "12/3/2020", "https://a.b/c",
                          "b50005237",  "12 oz",     "RP11-6L6.2",
                          "hello world", "#a3f2c1",  "0.05%"};
  for (const char* v : values) {
    EXPECT_TRUE(
        Generalize(v, GeneralizationLevel::kExactDigits).Matches(v))
        << v;
    EXPECT_TRUE(Generalize(v, GeneralizationLevel::kGeneral).Matches(v))
        << v;
  }
}

TEST(MinerTest, FindsDominantPatterns) {
  table::Corpus corpus;
  // 5 columns of fiscal years, 4 of dates.
  for (int c = 0; c < 5; ++c) {
    table::Column col;
    col.name = "fy";
    for (int i = 10; i < 25; ++i) col.values.push_back("fy" + std::to_string(i));
    corpus.push_back(col);
  }
  for (int c = 0; c < 4; ++c) {
    table::Column col;
    col.name = "date";
    for (int i = 10; i < 22; ++i) {
      col.values.push_back("11/" + std::to_string(i) + "/2020");
    }
    corpus.push_back(col);
  }
  MinerOptions opt;
  opt.min_column_support = 3;
  auto mined = MinePatterns(corpus, opt);
  ASSERT_FALSE(mined.empty());
  bool has_fy = false;
  bool has_date = false;
  for (const auto& m : mined) {
    std::string s = m.pattern.ToString();
    if (s == "[a-zA-Z]+\\d+" || s == "[a-zA-Z]+\\d{2}") has_fy = true;
    if (s == "\\d{2}/\\d{2}/\\d{4}" || s == "\\d+/\\d+/\\d+") has_date = true;
  }
  EXPECT_TRUE(has_fy);
  EXPECT_TRUE(has_date);
}

TEST(MinerTest, RespectsSupportThreshold) {
  table::Corpus corpus;
  table::Column col;
  col.name = "only_one";
  for (int i = 0; i < 10; ++i) col.values.push_back("zz" + std::to_string(i));
  corpus.push_back(col);
  MinerOptions opt;
  opt.min_column_support = 3;
  EXPECT_TRUE(MinePatterns(corpus, opt).empty());
}

TEST(MinerTest, DropsTrivialPatterns) {
  table::Corpus corpus;
  for (int c = 0; c < 6; ++c) {
    table::Column col;
    col.name = "words";
    for (const char* w : {"apple", "pear", "plum", "fig", "kiwi", "melon"}) {
      col.values.push_back(w);
    }
    corpus.push_back(col);
  }
  auto mined = MinePatterns(corpus);
  for (const auto& m : mined) {
    EXPECT_NE(m.pattern.ToString(), "[a-zA-Z]+");
  }
}

TEST(MinerTest, DominantPatternPerColumn) {
  table::Column col;
  col.values = {"a1", "b2", "c3", "d4", "e5", "hello"};
  Pattern p = DominantPattern(col, GeneralizationLevel::kGeneral, 0.8);
  EXPECT_EQ(p.ToString(), "[a-zA-Z]+\\d+");
  Pattern none = DominantPattern(col, GeneralizationLevel::kGeneral, 0.95);
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace autotest::pattern
