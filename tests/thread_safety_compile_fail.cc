// Compile-time proof that the thread-safety annotations are live: with
// AT_TS_COMPILE_FAIL defined, this TU writes an AT_GUARDED_BY member
// without holding its mutex, and the Clang -Werror=thread-safety build
// must refuse to compile it (registered as a WILL_FAIL ctest entry when
// AT_THREAD_SAFETY=ON). Without the define the TU is well-formed — the
// twin `thread_safety_compile_fail_control` entry proves the harness
// itself compiles.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace autotest {

class Guarded {
 public:
  void Correct() {
    util::MutexLock lock(&mu_);
    value_ += 1;
  }
#ifdef AT_TS_COMPILE_FAIL
  void Unlocked() {
    value_ += 1;  // write without mu_: -Wthread-safety rejects this
  }
#endif

 private:
  util::Mutex mu_;
  int value_ AT_GUARDED_BY(mu_) = 0;
};

// Instantiate so the class is not discarded as unused.
void TouchGuarded() {
  Guarded g;
  g.Correct();
}

}  // namespace autotest
