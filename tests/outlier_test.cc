#include <gtest/gtest.h>

#include <algorithm>

#include "outlier/outlier.h"
#include "util/rng.h"

namespace autotest::outlier {
namespace {

// A tight Gaussian cluster plus one far-away outlier at the last index.
std::vector<Point> ClusterWithOutlier(size_t n, size_t dim, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Point> points;
  for (size_t i = 0; i + 1 < n; ++i) {
    Point p(dim);
    for (size_t j = 0; j < dim; ++j) {
      p[j] = static_cast<float>(rng.Gaussian() * 0.1);
    }
    points.push_back(std::move(p));
  }
  Point out(dim, 0.0f);
  out[0] = 5.0f;
  out[1] = 5.0f;
  points.push_back(std::move(out));
  return points;
}

// The planted outlier (last point) must receive the highest score.
void ExpectOutlierWins(const std::vector<double>& scores) {
  ASSERT_FALSE(scores.empty());
  size_t best = static_cast<size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
  EXPECT_EQ(best, scores.size() - 1);
}

TEST(OutlierTest, LofFindsPlantedOutlier) {
  auto points = ClusterWithOutlier(40, 8, 1);
  ExpectOutlierWins(LofScores(points, 10));
}

TEST(OutlierTest, DbodFindsPlantedOutlier) {
  auto points = ClusterWithOutlier(40, 8, 2);
  ExpectOutlierWins(KnnDistanceScores(points, 5));
}

TEST(OutlierTest, RkdeFindsPlantedOutlier) {
  auto points = ClusterWithOutlier(40, 8, 3);
  ExpectOutlierWins(RkdeScores(points));
}

TEST(OutlierTest, PpcaFindsPlantedOutlier) {
  auto points = ClusterWithOutlier(40, 8, 4);
  ExpectOutlierWins(PpcaScores(points, 3));
}

TEST(OutlierTest, IForestFindsPlantedOutlier) {
  auto points = ClusterWithOutlier(60, 8, 5);
  ExpectOutlierWins(IForestScores(points));
}

TEST(OutlierTest, SvddFindsPlantedOutlier) {
  auto points = ClusterWithOutlier(40, 8, 6);
  ExpectOutlierWins(SvddScores(points));
}

TEST(OutlierTest, DegenerateInputsSafe) {
  std::vector<Point> one = {{1.0f, 2.0f}};
  EXPECT_EQ(LofScores(one, 5).size(), 1u);
  EXPECT_EQ(KnnDistanceScores(one, 5).size(), 1u);
  EXPECT_EQ(RkdeScores(one).size(), 1u);
  EXPECT_EQ(PpcaScores(one, 2).size(), 1u);
  EXPECT_EQ(IForestScores(one).size(), 1u);
  EXPECT_EQ(SvddScores(one).size(), 1u);
  std::vector<Point> empty;
  EXPECT_TRUE(SvddScores(empty).empty());
}

TEST(OutlierTest, DuplicatePointsNoNan) {
  std::vector<Point> dup(10, Point{1.0f, 1.0f, 1.0f});
  for (double s : LofScores(dup, 3)) EXPECT_TRUE(std::isfinite(s));
  for (double s : RkdeScores(dup)) EXPECT_TRUE(std::isfinite(s));
  for (double s : KnnDistanceScores(dup, 3)) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(OutlierTest, IForestDeterministicInSeed) {
  auto points = ClusterWithOutlier(50, 8, 7);
  IForestOptions opt;
  opt.seed = 5;
  auto a = IForestScores(points, opt);
  auto b = IForestScores(points, opt);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace autotest::outlier
