#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/predictor.h"
#include "core/serialization.h"
#include "core/trainer.h"
#include "datagen/corpus_gen.h"
#include "typedet/eval_functions.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace autotest::core {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new table::Corpus(
        datagen::GenerateCorpus(datagen::TablibProfile(400, 5)));
    typedet::EvalFunctionSetOptions opt;
    opt.embedding_centroids_per_model = 30;
    evals_ = new typedet::EvalFunctionSet(
        typedet::EvalFunctionSet::Build(*corpus_, opt));
    TrainOptions topt;
    topt.synthetic_count = 200;
    model_ = new TrainedModel(TrainAutoTest(*corpus_, *evals_, topt));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete evals_;
    evals_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }
  static table::Corpus* corpus_;
  static typedet::EvalFunctionSet* evals_;
  static TrainedModel* model_;
};

table::Corpus* SerializationTest::corpus_ = nullptr;
typedet::EvalFunctionSet* SerializationTest::evals_ = nullptr;
TrainedModel* SerializationTest::model_ = nullptr;

TEST_F(SerializationTest, RoundTripPreservesRules) {
  ASSERT_FALSE(model_->constraints.empty());
  std::string text = SerializeRules(model_->constraints);
  size_t unresolved = 123;
  auto loaded = DeserializeRules(text, *evals_, &unresolved);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(unresolved, 0u);
  ASSERT_EQ(loaded->size(), model_->constraints.size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    const Sdc& a = model_->constraints[i];
    const Sdc& b = (*loaded)[i];
    EXPECT_EQ(a.eval, b.eval);
    EXPECT_DOUBLE_EQ(a.d_in, b.d_in);
    EXPECT_DOUBLE_EQ(a.d_out, b.d_out);
    EXPECT_DOUBLE_EQ(a.m, b.m);
    EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
    EXPECT_DOUBLE_EQ(a.fpr, b.fpr);
    EXPECT_EQ(a.contingency.covered_triggered,
              b.contingency.covered_triggered);
    EXPECT_DOUBLE_EQ(a.cohens_h, b.cohens_h);
  }
}

TEST_F(SerializationTest, FileRoundTrip) {
  std::string path = "/tmp/autotest_rules_test.sdc";
  ASSERT_TRUE(SaveRulesToFile(model_->constraints, path));
  auto loaded = LoadRulesFromFile(path, *evals_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), model_->constraints.size());
}

TEST_F(SerializationTest, UnknownIdsSkippedAndCounted) {
  std::string text = SerializeRules(model_->constraints);
  text += "rule\tfun:does_not_exist\t0\t0.5\t0.9\t0.9\t0.001\t1\t2\t3\t4\t1"
          "\t0.01\n";
  size_t unresolved = 0;
  auto loaded = DeserializeRules(text, *evals_, &unresolved);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(unresolved, 1u);
  EXPECT_EQ(loaded->size(), model_->constraints.size());
}

TEST_F(SerializationTest, MalformedInputsRejected) {
  EXPECT_FALSE(DeserializeRules("", *evals_).has_value());  // no header
  EXPECT_FALSE(DeserializeRules("# autotest-sdc v1\nrule\tx\t1\n", *evals_)
                   .has_value());  // wrong field count
  EXPECT_FALSE(
      DeserializeRules("# autotest-sdc v1\nbogus line\n", *evals_)
          .has_value());
}

// --- structured diagnostics on the Try* surface ---

namespace {

// A syntactically and semantically valid rule line with an unknown eval id
// (so it parses and validates without needing a resolvable function).
std::string RuleLine(const std::string& d_in = "0.1",
                     const std::string& d_out = "0.9",
                     const std::string& m = "0.8",
                     const std::string& conf = "0.95",
                     const std::string& fpr = "0.01",
                     const std::string& ct = "1") {
  return "rule\tfun:unknown\t" + d_in + "\t" + d_out + "\t" + m + "\t" +
         conf + "\t" + fpr + "\t" + ct + "\t2\t3\t4\t1\t0.01\n";
}

constexpr char kV1[] = "# autotest-sdc v1\n";

}  // namespace

TEST_F(SerializationTest, MissingHeaderDiagnostic) {
  auto r = TryDeserializeRules("", *evals_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("header"), std::string::npos);
}

TEST_F(SerializationTest, WrongVersionHeaderDiagnostic) {
  auto r = TryDeserializeRules("# autotest-sdc v2\n" + RuleLine(), *evals_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("unsupported rule-file version 'v2'"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(SerializationTest, RuleBeforeHeaderRejected) {
  auto r = TryDeserializeRules(RuleLine() + kV1, *evals_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, TruncatedRuleLineDiagnostic) {
  std::string text = SerializeRules(model_->constraints);
  // Cut the last line in half: field count drops below 13.
  text.resize(text.size() - text.size() / 4);
  while (!text.empty() && text.back() != '\t') text.pop_back();
  auto r = TryDeserializeRules(text, *evals_);
  if (!r.ok()) {
    EXPECT_NE(r.status().ToString().find("rule line"), std::string::npos)
        << r.status().ToString();
  }
}

TEST_F(SerializationTest, BadNumberNamesFieldAndLine) {
  auto r =
      TryDeserializeRules(kV1 + RuleLine("zzz"), *evals_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("rule line 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("field 'd_in'"), std::string::npos)
      << r.status().ToString();
}

TEST_F(SerializationTest, TrailingGarbageInNumberRejected) {
  auto r = TryDeserializeRules(kV1 + RuleLine("0.1abc"), *evals_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
}

TEST_F(SerializationTest, NonFiniteValuesRejected) {
  for (const char* bad : {"nan", "inf", "-inf"}) {
    auto r = TryDeserializeRules(kV1 + RuleLine(bad), *evals_);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(r.status().message().find("not finite"), std::string::npos)
        << r.status().ToString();
  }
}

TEST_F(SerializationTest, InvertedRadiiRejected) {
  auto r = TryDeserializeRules(kV1 + RuleLine("0.9", "0.1"), *evals_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("d_in exceeds outer radius"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(SerializationTest, OutOfRangeUnitFieldsRejected) {
  // m, conf, fpr each outside [0, 1].
  EXPECT_FALSE(
      TryDeserializeRules(kV1 + RuleLine("0.1", "0.9", "1.5"), *evals_)
          .ok());
  EXPECT_FALSE(TryDeserializeRules(
                   kV1 + RuleLine("0.1", "0.9", "0.8", "-0.2"), *evals_)
                   .ok());
  EXPECT_FALSE(
      TryDeserializeRules(
          kV1 + RuleLine("0.1", "0.9", "0.8", "0.95", "2.0"), *evals_)
          .ok());
}

TEST_F(SerializationTest, NegativeCountsRejected) {
  auto r = TryDeserializeRules(
      kV1 + RuleLine("0.1", "0.9", "0.8", "0.95", "0.01", "-5"), *evals_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("is negative"), std::string::npos);
}

TEST_F(SerializationTest, LoadMissingFileIsNotFound) {
  auto r = TryLoadRulesFromFile("/nonexistent/rules.sdc", *evals_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotFound);
}

TEST_F(SerializationTest, LoadErrorCarriesPathContext) {
  const std::string path = "/tmp/autotest_rules_corrupt.sdc";
  {
    std::ofstream out(path);
    out << "# autotest-sdc v1\nrule\tx\t1\n";
  }
  auto r = TryLoadRulesFromFile(path, *evals_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find(path), std::string::npos)
      << r.status().ToString();
  std::remove(path.c_str());
}

// --- atomic save (satellite: temp-file + rename) ---

TEST_F(SerializationTest, SaveIsAtomicUnderInjectedFault) {
  const std::string path = "/tmp/autotest_rules_atomic.sdc";
  ASSERT_TRUE(TrySaveRulesToFile(model_->constraints, path).ok());
  std::string before;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    before = ss.str();
  }
  ASSERT_FALSE(before.empty());

  auto& reg = util::FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("rules.save=on").ok());
  util::Status st = TrySaveRulesToFile({}, path);
  reg.Reset();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kIoError);

  // The failed save must not have touched the existing file.
  std::string after;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    after = ss.str();
  }
  EXPECT_EQ(before, after);
  std::remove(path.c_str());
}

TEST_F(SerializationTest, SaveToUnwritableDirFailsCleanly) {
  util::Status st =
      TrySaveRulesToFile(model_->constraints, "/nonexistent/dir/rules.sdc");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kIoError);
}

// Death tests documenting which AT_CHECKs remain programmer-error
// invariants after the Result migration (DESIGN.md §4c): corrupt *input*
// must never abort, but API misuse still does.
using SerializationDeathTest = SerializationTest;

TEST_F(SerializationDeathTest, UnwrappingErrorResultAborts) {
  auto r = TryDeserializeRules("", *evals_);
  ASSERT_FALSE(r.ok());
  EXPECT_DEATH({ (void)r.value(); }, "Result::value\\(\\) on error status");
}

TEST_F(SerializationTest, EmptyRuleSetRoundTrips) {
  auto loaded = DeserializeRules(SerializeRules({}), *evals_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(SerializationTest, FindEvalById) {
  ASSERT_GT(evals_->size(), 0u);
  const auto& first = evals_->at(0);
  EXPECT_EQ(FindEvalById(*evals_, first.id()), &first);
  EXPECT_EQ(FindEvalById(*evals_, "nope:nope"), nullptr);
}

TEST_F(SerializationTest, LoadedRulesPredictIdentically) {
  std::string text = SerializeRules(model_->constraints);
  auto loaded = DeserializeRules(text, *evals_);
  ASSERT_TRUE(loaded.has_value());
  SdcPredictor original(model_->constraints);
  SdcPredictor reloaded(*loaded);
  table::Column col;
  col.name = "dates";
  for (int i = 1; i <= 20; ++i) {
    col.values.push_back("6/" + std::to_string(i) + "/2022");
  }
  col.values.push_back("unknown");
  auto a = original.Predict(col);
  auto b = reloaded.Predict(col);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_DOUBLE_EQ(a[i].confidence, b[i].confidence);
  }
}

}  // namespace
}  // namespace autotest::core
