#include <gtest/gtest.h>

#include "core/predictor.h"
#include "core/serialization.h"
#include "core/trainer.h"
#include "datagen/corpus_gen.h"
#include "typedet/eval_functions.h"

namespace autotest::core {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new table::Corpus(
        datagen::GenerateCorpus(datagen::TablibProfile(400, 5)));
    typedet::EvalFunctionSetOptions opt;
    opt.embedding_centroids_per_model = 30;
    evals_ = new typedet::EvalFunctionSet(
        typedet::EvalFunctionSet::Build(*corpus_, opt));
    TrainOptions topt;
    topt.synthetic_count = 200;
    model_ = new TrainedModel(TrainAutoTest(*corpus_, *evals_, topt));
  }
  static table::Corpus* corpus_;
  static typedet::EvalFunctionSet* evals_;
  static TrainedModel* model_;
};

table::Corpus* SerializationTest::corpus_ = nullptr;
typedet::EvalFunctionSet* SerializationTest::evals_ = nullptr;
TrainedModel* SerializationTest::model_ = nullptr;

TEST_F(SerializationTest, RoundTripPreservesRules) {
  ASSERT_FALSE(model_->constraints.empty());
  std::string text = SerializeRules(model_->constraints);
  size_t unresolved = 123;
  auto loaded = DeserializeRules(text, *evals_, &unresolved);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(unresolved, 0u);
  ASSERT_EQ(loaded->size(), model_->constraints.size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    const Sdc& a = model_->constraints[i];
    const Sdc& b = (*loaded)[i];
    EXPECT_EQ(a.eval, b.eval);
    EXPECT_DOUBLE_EQ(a.d_in, b.d_in);
    EXPECT_DOUBLE_EQ(a.d_out, b.d_out);
    EXPECT_DOUBLE_EQ(a.m, b.m);
    EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
    EXPECT_DOUBLE_EQ(a.fpr, b.fpr);
    EXPECT_EQ(a.contingency.covered_triggered,
              b.contingency.covered_triggered);
    EXPECT_DOUBLE_EQ(a.cohens_h, b.cohens_h);
  }
}

TEST_F(SerializationTest, FileRoundTrip) {
  std::string path = "/tmp/autotest_rules_test.sdc";
  ASSERT_TRUE(SaveRulesToFile(model_->constraints, path));
  auto loaded = LoadRulesFromFile(path, *evals_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), model_->constraints.size());
}

TEST_F(SerializationTest, UnknownIdsSkippedAndCounted) {
  std::string text = SerializeRules(model_->constraints);
  text += "rule\tfun:does_not_exist\t0\t0.5\t0.9\t0.9\t0.001\t1\t2\t3\t4\t1"
          "\t0.01\n";
  size_t unresolved = 0;
  auto loaded = DeserializeRules(text, *evals_, &unresolved);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(unresolved, 1u);
  EXPECT_EQ(loaded->size(), model_->constraints.size());
}

TEST_F(SerializationTest, MalformedInputsRejected) {
  EXPECT_FALSE(DeserializeRules("", *evals_).has_value());  // no header
  EXPECT_FALSE(DeserializeRules("# autotest-sdc v1\nrule\tx\t1\n", *evals_)
                   .has_value());  // wrong field count
  EXPECT_FALSE(
      DeserializeRules("# autotest-sdc v1\nbogus line\n", *evals_)
          .has_value());
}

TEST_F(SerializationTest, EmptyRuleSetRoundTrips) {
  auto loaded = DeserializeRules(SerializeRules({}), *evals_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(SerializationTest, FindEvalById) {
  ASSERT_GT(evals_->size(), 0u);
  const auto& first = evals_->at(0);
  EXPECT_EQ(FindEvalById(*evals_, first.id()), &first);
  EXPECT_EQ(FindEvalById(*evals_, "nope:nope"), nullptr);
}

TEST_F(SerializationTest, LoadedRulesPredictIdentically) {
  std::string text = SerializeRules(model_->constraints);
  auto loaded = DeserializeRules(text, *evals_);
  ASSERT_TRUE(loaded.has_value());
  SdcPredictor original(model_->constraints);
  SdcPredictor reloaded(*loaded);
  table::Column col;
  col.name = "dates";
  for (int i = 1; i <= 20; ++i) {
    col.values.push_back("6/" + std::to_string(i) + "/2022");
  }
  col.values.push_back("unknown");
  auto a = original.Predict(col);
  auto b = reloaded.Predict(col);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_DOUBLE_EQ(a[i].confidence, b[i].confidence);
  }
}

}  // namespace
}  // namespace autotest::core
